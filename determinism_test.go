package repro_test

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// TestFig7Determinism pins the engine's end-to-end contract at the top
// of the stack: the full Fig. 7 campaign — per-N pair construction,
// counter windows, variance estimates, quadratic fit — is bit-identical
// whether it runs sequentially (Jobs = 1) or fanned out across a wide
// worker pool, and so is the rendered table. This is what makes the
// regenerated evaluation artifacts citable from (scale, seed) alone.
//
// It lives in the root package rather than internal/experiments to keep
// each test binary comfortably inside the default per-package timeout:
// two Quick Fig. 7 campaigns are a few CPU-minutes.
func TestFig7Determinism(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	if raceEnabled {
		// Two Quick Fig. 7 campaigns cost ~1 CPU-hour under the race
		// detector. All concurrency Fig. 7 adds over the sequential
		// seed lives in measure.SweepParallel + engine, which the
		// measure package's Determinism/Race tests exercise under
		// -race at reduced scale; the full-scale bit-identity below is
		// verified by the plain (non-race) suite.
		t.Skip("full-scale campaign identity is covered without -race; see measure.TestSweepParallelDeterminism for the raced path")
	}
	const seed = 1
	seq, err := experiments.Fig7Opts(experiments.Quick, seed, experiments.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := runtime.NumCPU()
	if jobs < 4 {
		jobs = 4 // exercise a real pool even on small hosts
	}
	par, err := experiments.Fig7Opts(experiments.Quick, seed, experiments.Options{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("Fig7 results differ between Jobs=1 and Jobs=%d:\nseq %+v\npar %+v", jobs, seq, par)
	}
	if seq.Table() != par.Table() {
		t.Fatal("rendered tables differ across worker-pool widths")
	}
}
