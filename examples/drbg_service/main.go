// DRBG service walkthrough: the SP 800-90C construction end to end —
// a sharded, health-gated physical entropy pool (the paper's eRO-TRNG
// physics), per-shard SP 800-90B assessment, vetted conditioning of
// the assessed raw bits into full-entropy seed material, and SP
// 800-90A DRBG lanes expanding it at crypto throughput. Shows the
// honest economics (how few raw bits a reseed costs vs how many output
// bytes it funds), a prediction-resistance request, and the fail-
// closed path: quarantine everything and watch the expansion layer
// refuse to stretch a stale seed, then heal through recalibration and
// a fresh assessment.
//
//	go run ./examples/drbg_service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/entropyd"
)

func show(p *entropyd.Pool, dp *entropyd.DRBGPool, label string) {
	st := p.Stats()
	ds := dp.Stats()
	fmt.Printf("\n%s (%d/%d healthy; drbg: %d generates, %d reseeds, %d reseed failures)\n",
		label, st.Healthy, len(st.Shards), ds.Generates, ds.Reseeds, ds.ReseedFailures)
	for _, sh := range st.Shards {
		assessed := "unassessed"
		if sh.AssessRuns > 0 {
			assessed = fmt.Sprintf("h=%.3f (epoch %d, %.1fs old)",
				sh.AssessMinEntropy, sh.AssessEpoch, sh.AssessAgeSeconds)
		}
		fmt.Printf("  shard %d: %-11s epoch %d  %s  tap %dB used\n",
			sh.Index, sh.State, sh.Epoch, assessed, sh.SeedBytesUsed)
	}
}

func main() {
	// 1. The physical layer: the paper model with jitter amplified
	//    100× so the demo assesses and seeds in seconds (at calibrated
	//    physics the same pipeline runs with ~tens of seconds to the
	//    first assessment). The seed tap mirrors healthy raw bits for
	//    the conditioner; the tight assessment cadence makes the
	//    entropy accounting input available quickly.
	model := core.PaperModel().ScaleJitter(100)
	pool, err := entropyd.New(entropyd.Config{
		Shards: 2,
		Seed:   90,
		Source: entropyd.SourceConfig{
			Kind:    entropyd.SourceERO,
			Model:   model.Phase,
			Divider: 64,
		},
		Health: entropyd.HealthConfig{
			AssessBits:       10000,
			AssessEveryBits:  10000,
			AssessMinEntropy: 0.3,
		},
		SeedTapBytes: 1 << 13,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The expansion layer: one CTR_DRBG-AES-256 lane per shard,
	//    seeded through HMAC-SHA-256 vetted conditioning (the default)
	//    with the 90C full-entropy margin (64 bits of headroom), and a
	//    deliberately short reseed interval so the demo shows reseeds.
	dp, err := pool.DRBGPool(entropyd.DRBGConfig{
		Kind:           entropyd.DRBGCTR,
		ReseedInterval: 8,
		BlockBytes:     4096,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Before any assessment there is NO seed material: the vetted
	//    conditioning formula needs the shard's assessed min-entropy,
	//    so the DRBG fails closed rather than seed blind.
	if _, err := dp.Generate(make([]byte, 64), false, 50*time.Millisecond); errors.Is(err, entropyd.ErrSeedStarved) {
		fmt.Println("before first assessment: generate refused (no entropy accounting input) — correct")
	}

	// 4. Push raw bits through the pool until every shard is assessed
	//    (a daemon does this continuously; batch mode drives it with
	//    Fill), then serve. 1 MiB of DRBG output costs each lane just
	//    a few hundred tapped raw bytes of seed material.
	if _, err := pool.Fill(make([]byte, 2*4096)); err != nil {
		log.Fatal(err)
	}
	out := make([]byte, 1<<20)
	if _, err := dp.Generate(out, false, time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved %d KiB of DRBG output; first 16: %x\n", len(out)>>10, out[:16])
	show(pool, dp, "after serving")

	// 5. Prediction resistance: fresh conditioned entropy immediately
	//    before every output block — the 90A pr flow, paid in physics.
	if _, err := dp.Generate(out[:8192], true, time.Second); err != nil {
		log.Fatal(err)
	}
	show(pool, dp, "after a prediction-resistance request (reseed per block)")

	// 6. Fail closed: quarantine EVERY shard. Seeded lanes honour the
	//    90A contract until their reseed interval is exhausted, then
	//    output stops with a typed error — stale seeds are never
	//    stretched.
	for i := 0; i < pool.NumShards(); i++ {
		if err := pool.InjectAlarm(i); err != nil {
			log.Fatal(err)
		}
	}
	pool.Fill(make([]byte, 256)) // trips the injected alarms
	served := 0
	for {
		n, err := dp.Generate(out[:4096], false, 50*time.Millisecond)
		served += n
		if err != nil {
			fmt.Printf("\nall shards quarantined: %d KiB more served to the reseed deadline, then: %v\n", served>>10, err)
			break
		}
	}

	// 7. Heal: recalibration re-admits the shards, but seed material
	//    stays refused until a FRESH same-epoch assessment exists —
	//    then the expansion layer recovers on its own.
	pool.Recalibrate(context.Background())
	if _, err := dp.Generate(out[:64], false, 50*time.Millisecond); errors.Is(err, entropyd.ErrSeedStarved) {
		fmt.Println("after recalibration, before reassessment: still refused — old epoch's assessment does not count")
	}
	if _, err := pool.Fill(make([]byte, 2*4096)); err != nil {
		log.Fatal(err)
	}
	if _, err := dp.Generate(out[:4096], false, time.Second); err != nil {
		log.Fatal(err)
	}
	show(pool, dp, "after recalibration + fresh assessment (healed)")
}
