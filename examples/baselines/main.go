// Baselines: the three P-TRNG classes surveyed in the paper's §II —
// elementary RO (Baudet/Amaki style), PLL coherent sampling (Bernard
// et al. [5]) and Sunar's multi-ring [7] — all assessed twice: with the
// classical independence assumption and with the paper's refined
// thermal-only accounting. The flicker blind spot is architectural:
// every naive model overclaims.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/multiring"
	"repro/internal/pll"
)

func main() {
	model := core.PaperModel()
	fmt.Println("common entropy source: the paper's 103 MHz ring pair")
	fmt.Printf("  thermal σ = %.2f ps, flicker corner a/b = %.0f periods\n\n",
		model.SigmaThermal()*1e12, model.Phase.CornerN())

	// 1. eRO-TRNG (the paper's Fig. 4).
	cmp, err := model.AssessEntropy(3000, 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eRO-TRNG, divider K = 3000:")
	fmt.Printf("  naive H = %.4f   refined H = %.4f   overclaim %.2e\n\n",
		cmp.HNaive, cmp.HRefined, cmp.Overestimate)

	// 2. PLL-TRNG: coherent sampling with KM/KD = 157/32. The
	//    exploitable jitter per pattern is the THERMAL tracking
	//    jitter; a naive designer would plug in the total measured
	//    jitter (inflated by flicker at long accumulations).
	sigmaTh := 3e-12        // per-pattern thermal tracking jitter of the PLL
	naiveSigma := 3 * 3e-12 // what a long (flicker-inflated) measurement suggests
	pcfg := pll.Config{F0: 125e6, KM: 157, KD: 32, SigmaThermal: sigmaTh, Seed: 1}
	gRef, err := pll.New(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	pcfg.SigmaThermal = naiveSigma
	gNaive, err := pll.New(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	mRef := gRef.Analyze()
	mNaive := gNaive.Analyze()
	fmt.Println("PLL-TRNG, KM/KD = 157/32:")
	fmt.Printf("  refined (thermal σ=%.1f ps): critical samples %d, H = %.4f\n",
		sigmaTh*1e12, mRef.Critical, mRef.EntropyPerBit)
	fmt.Printf("  naive   (total  σ=%.1f ps): critical samples %d, H = %.4f  <- overclaim\n\n",
		naiveSigma*1e12, mNaive.Critical, mNaive.EntropyPerBit)
	s997, err := pll.RequiredSigma(pll.Config{F0: 125e6, KM: 157, KD: 32, Seed: 1}, 0.997)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  jitter needed for H >= 0.997: %.1f ps (refined budget must supply it thermally)\n\n", s997*1e12)

	// 3. Multi-ring (Sunar): 8 rings, slow sampling.
	mcfg := multiring.Config{
		Model:          model.PerRing().Phase,
		Rings:          8,
		SampleRate:     model.Phase.F0 / 20000,
		RelativeSpread: 0.01,
		Seed:           2,
	}
	a, err := multiring.Assess(mcfg, 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multi-ring TRNG (Sunar), R = 8, K = 20000:")
	fmt.Printf("  naive:   per-sample σ = %.3f cycles, XOR bias bound %.3g, H = %.6f\n",
		a.SigmaNaive, a.BiasNaive, a.EntropyNaive)
	fmt.Printf("  refined: per-sample σ = %.3f cycles, XOR bias bound %.3g, H = %.6f\n",
		a.SigmaRefined, a.BiasRefined, a.EntropyRefined)
	fmt.Println("\nmoral: whatever the architecture, only the thermal share of the")
	fmt.Println("jitter renews itself independently; flicker noise is memory, not entropy.")
}
