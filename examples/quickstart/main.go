// Quickstart: build the paper's stochastic model, query its headline
// quantities, and run a miniature version of the §IV measurement.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/jitter"
)

func main() {
	// 1. The model the paper measured on its Cyclone III board:
	//    f0 = 103 MHz, b_th = 276.04 Hz, a/b = 5354.
	model := core.PaperModel()
	fmt.Print(model.Report())

	// 2. The independence threshold: below N*(95%), 2N consecutive
	//    jitter realizations are ~mutually independent; above it the
	//    flicker-noise dependence dominates (the paper's core claim).
	n95, _ := model.IndependenceThreshold(0.95)
	fmt.Printf("\njitter realizations ~independent for N < %d (paper: 281)\n", n95)

	// 3. Reproduce the measurement chain end to end on simulated
	//    hardware: oscillator pair → Fig. 6 counter → quadratic fit.
	pair, err := model.RingPair(42)
	if err != nil {
		log.Fatal(err)
	}
	measured, sweep, err := core.Measure(pair, core.MeasureConfig{
		Ns:          jitter.LogSpacedNs(16, 16384, 3),
		WindowsPerN: 2500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured from %d-point counter sweep:\n", len(sweep))
	fmt.Print(measured.Report())

	// 4. The security consequence: entropy per bit under the naive
	//    (independence-assuming) model vs the refined thermal-only
	//    model, for a TRNG sampling every K = 3000 periods.
	cmp, err := model.AssessEntropy(3000, 30000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nentropy per raw bit at K=3000: naive %.4f vs refined %.4f (overestimate %.2e)\n",
		cmp.HNaive, cmp.HRefined, cmp.Overestimate)
}
