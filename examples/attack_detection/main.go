// Attack detection: the paper's §V proposal — an embedded online test
// that monitors the THERMAL noise contribution via small-N counter
// statistics — against a frequency-injection attack (Markettos & Moore)
// that sets in mid-run.
//
//	go run ./examples/attack_detection
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/onlinetest"
)

func main() {
	model := core.PaperModel()
	pair, err := model.RingPair(99)
	if err != nil {
		log.Fatal(err)
	}

	// Attack switches on after 2 ms of clean operation: an injected
	// tone near 1 MHz entrains both rings and squeezes 90 % of the
	// thermal jitter.
	const onset = 2e-3
	atk := attack.Injection{FInj: 1e6, Depth: 0.002, Sched: attack.At(onset), JitterSuppression: 0.9}
	atk.Arm(pair.Osc1)
	atk.Arm(pair.Osc2)
	fmt.Printf("armed: %s\n", atk.Describe())

	const n = 64 // inside the independence zone N < 281
	c, err := measure.NewCounterConfig(pair, n, measure.Config{Subdivide: 64})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := onlinetest.New(onlinetest.Config{
		N:          n,
		Window:     256,
		RefSigmaN2: model.Phase.SigmaN2Thermal(n) + c.QuantizationFloor(),
	})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := mon.Bounds()
	fmt.Printf("monitor: N=%d window=256 bounds=(%.3g, %.3g) s^2\n", n, lo, hi)

	res, err := onlinetest.Run(mon, c, 8000)
	if err != nil {
		log.Fatal(err)
	}
	onsetSample := int(onset * model.Phase.F0 / float64(n))
	fmt.Printf("attack onset at s_N sample ~%d (t = %.1f ms)\n", onsetSample, onset*1e3)
	if res.FirstAlarmWindow < 0 {
		fmt.Println("NOT DETECTED — the entropy source died silently")
		return
	}
	tAlarm := float64(res.FirstAlarmSamples) * float64(n) / model.Phase.F0
	fmt.Printf("ALARM at s_N sample %d (t = %.2f ms): detection latency %.2f ms\n",
		res.FirstAlarmSamples, tAlarm*1e3, (tAlarm-onset)*1e3)
	fmt.Printf("alarm windows: %d low-side, %d high-side out of %d evaluated\n",
		res.LowAlarms, res.HighAlarms, res.Windows)
	fmt.Println("\nthe same monitor calibrated against TOTAL long-accumulation jitter")
	fmt.Println("(flicker included) would need a far larger N and would blind itself —")
	fmt.Println("the reason the paper insists on the thermal-only reference.")
}
