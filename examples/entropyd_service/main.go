// Entropyd service walkthrough: build a sharded, health-gated entropy
// pool, read from it like any io.Reader, run an operator quarantine
// drill, and watch the pool degrade gracefully and heal.
//
//	go run ./examples/entropyd_service
package main

import (
	"context"
	"fmt"
	"io"
	"log"

	"repro/internal/core"
	"repro/internal/entropyd"
	"repro/internal/postproc"
)

func show(p *entropyd.Pool, label string) {
	st := p.Stats()
	fmt.Printf("\n%s (%d/%d healthy)\n", label, st.Healthy, len(st.Shards))
	for _, sh := range st.Shards {
		fmt.Printf("  shard %d: %-11s epoch %d  bytes %6d  quarantines %d (last reason %s)\n",
			sh.Index, sh.State, sh.Epoch, sh.BytesOut, sh.Quarantines, sh.Reason)
	}
}

func main() {
	// 1. The paper model with jitter amplified 100×: every ratio of
	//    the paper's analysis (r_N, the a/b corner, N*(95%)) is
	//    preserved, but the eRO-TRNG reaches full entropy at divider
	//    64 instead of ~10⁵, so the demo runs in seconds. Each of the
	//    4 shards gets its own generator, tot test, startup test and
	//    §V thermal monitor.
	model := core.PaperModel().ScaleJitter(100)
	pool, err := entropyd.New(entropyd.Config{
		Shards: 4,
		Seed:   2014,
		Source: entropyd.SourceConfig{
			Kind:    entropyd.SourceERO,
			Model:   model.Phase,
			Divider: 64,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	show(pool, "after startup tests")

	// 2. The pool is an io.Reader of gated entropy.
	buf := make([]byte, 4096)
	if _, err := io.ReadFull(pool, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread %d gated bytes; bias %+.4f, first 16: %x\n",
		len(buf), postproc.Bias(postproc.Unpack(buf)), buf[:16])

	// 3. Operator drill: force an alarm into shard 1. The next fill
	//    quarantines it, drains its undelivered output and serves the
	//    request from the surviving shards — degradation, not outage.
	if err := pool.InjectAlarm(1); err != nil {
		log.Fatal(err)
	}
	if _, err := io.ReadFull(pool, buf); err != nil {
		log.Fatal(err)
	}
	show(pool, "after injected alarm (service continued)")

	// 4. Recalibration: a fresh epoch seed, a fresh startup test, and
	//    the shard rejoins the rotation.
	healed := pool.Recalibrate(context.Background())
	fmt.Printf("\nrecalibrated %d shard(s)\n", healed)
	if _, err := io.ReadFull(pool, buf); err != nil {
		log.Fatal(err)
	}
	show(pool, "after recalibration")
}
