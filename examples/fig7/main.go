// Fig. 7 reproduction: the accumulated jitter variance f0²·σ²_N versus
// N measured with the differential counter circuit, the quadratic fit,
// and an ASCII log-log rendering of the figure.
//
//	go run ./examples/fig7
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/experiments"
)

func main() {
	res, err := experiments.Fig7(experiments.Quick, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	fmt.Println()
	fmt.Println(render(res))
	fmt.Println("legend: o measured   · eq. 11 model   (log-log axes)")
}

// render draws the measured points and the model curve on a log-log
// ASCII canvas, the shape of the paper's Fig. 7.
func render(res experiments.Fig7Result) string {
	const (
		w = 72
		h = 24
	)
	minX := math.Log10(float64(res.Rows[0].N))
	maxX := math.Log10(float64(res.Rows[len(res.Rows)-1].N))
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, r := range res.Rows {
		for _, v := range []float64{r.MeasuredNorm, r.TheoryNorm} {
			if v <= 0 {
				continue
			}
			l := math.Log10(v)
			minY = math.Min(minY, l)
			maxY = math.Max(maxY, l)
		}
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, c byte) {
		if y <= 0 {
			return
		}
		cx := int((math.Log10(x) - minX) / (maxX - minX) * float64(w-1))
		cy := int((math.Log10(y) - minY) / (maxY - minY) * float64(h-1))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			return
		}
		row := h - 1 - cy
		if grid[row][cx] == ' ' || c == 'o' {
			grid[row][cx] = c
		}
	}
	// model curve: dense sampling
	for i := 0; i <= 200; i++ {
		n := math.Pow(10, minX+(maxX-minX)*float64(i)/200)
		y := res.Model.SigmaN2(int(math.Max(1, n))) * res.Model.F0 * res.Model.F0
		put(n, y, '.')
	}
	for _, r := range res.Rows {
		put(float64(r.N), r.MeasuredNorm, 'o')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "f0^2*sigma_N^2 (log), %2.0e .. %2.0e\n", math.Pow(10, minY), math.Pow(10, maxY))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&b, " N (log): %d .. %d\n", res.Rows[0].N, res.Rows[len(res.Rows)-1].N)
	return b.String()
}
