// Entropy assessment: how badly does the mutual-independence assumption
// overestimate entropy? This walkthrough contrasts the naive and
// refined assessments across sampling dividers and shows the unsafe
// design decision the naive model would endorse, plus the technology
// shrink trend the paper's conclusion warns about.
//
//	go run ./examples/entropy_assessment
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/entropy"
	"repro/internal/experiments"
	"repro/internal/phys"
)

func main() {
	res, err := experiments.EntropyComparison(experiments.Quick)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())

	// The design question: a vendor wants H >= 0.997 per raw bit.
	// What divider does each model prescribe?
	model := core.PaperModel()
	rel := model.RelativeModel()
	refined, err := entropy.RequiredDivider(rel, 0.997, 2048)
	if err != nil {
		log.Fatal(err)
	}
	// The naive designer replaces σ_th by the inflated estimate from
	// a long accumulation measurement.
	naive := rel
	naive.Bth = naive.SigmaN2(30000) / (2 * 30000) * naive.F0 * naive.F0 * naive.F0
	naive.Bfl = 0
	naiveK, err := entropy.RequiredDivider(naive, 0.997, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndivider needed for H >= 0.997: refined model K = %d, naive model K = %d\n", refined, naiveK)
	fmt.Printf("a naive design under-accumulates by a factor %.1f — the entropy shortfall the paper warns about\n",
		float64(refined)/float64(naiveK))

	// Technology shrink trend (paper conclusion): flicker PSD ∝ 1/L²,
	// so shrinking increases the flicker share and pushes the
	// independence threshold N* down.
	fmt.Printf("\ntechnology shrink trend (device path):\n")
	fmt.Printf("%8s %14s %14s %10s\n", "shrink", "b_th [Hz]", "b_fl [Hz^2]", "N*(95%)")
	for _, s := range []float64{1.0, 0.7, 0.5, 0.35} {
		ring := phys.DefaultRing()
		ring.Stage.NMOS = device.ShrinkTechnology(ring.Stage.NMOS, s)
		ring.Stage.PMOS = device.ShrinkTechnology(ring.Stage.PMOS, s)
		m, err := core.FromDevice(ring, device.Options{})
		if err != nil {
			log.Fatal(err)
		}
		n95, ok := m.IndependenceThreshold(0.95)
		n95s := fmt.Sprintf("%d", n95)
		if !ok {
			n95s = "inf"
		}
		fmt.Printf("%8.2f %14.4g %14.4g %10s\n", s, m.Phase.Bth, m.Phase.Bfl, n95s)
	}
}
