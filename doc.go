// Package repro reproduces "On the assumption of mutual independence of
// jitter realizations in P-TRNG stochastic models" (Haddad, Teglia,
// Bernard, Fischer — DATE 2014) as a production-quality Go library.
//
// The repository implements the paper's multilevel stochastic modeling
// approach for ring-oscillator true random number generators end to
// end: transistor-level noise PSDs, Hajimiri ISF phase-noise
// conversion, calibrated edge-time oscillator simulation, the
// differential counter measurement circuit, the σ²_N = a·N + b·N²
// analysis with its independence diagnostics, thermal-jitter
// extraction, naive-vs-refined entropy assessment, the proposed online
// thermal-noise monitor, and the AIS31 statistical test context.
//
// Entry points:
//
//   - internal/core.Model — the multilevel model façade
//   - internal/experiments — regenerates every paper artifact
//   - cmd/* — command-line tools
//   - examples/* — runnable walkthroughs
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro
