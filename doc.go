// Package repro reproduces "On the assumption of mutual independence of
// jitter realizations in P-TRNG stochastic models" (Haddad, Teglia,
// Bernard, Fischer — DATE 2014) as a production-quality Go library.
//
// The repository implements the paper's multilevel stochastic modeling
// approach for ring-oscillator true random number generators end to
// end: transistor-level noise PSDs, Hajimiri ISF phase-noise
// conversion, calibrated edge-time oscillator simulation, the
// differential counter measurement circuit, the σ²_N = a·N + b·N²
// analysis with its independence diagnostics, thermal-jitter
// extraction, naive-vs-refined entropy assessment, the proposed online
// thermal-noise monitor, and the AIS31 statistical test context.
//
// Campaign execution: every evaluation artifact is a counter campaign
// over many accumulation lengths N — embarrassingly parallel per
// (N, seed) cell. The campaigns run on internal/engine, a
// deterministic worker-pool layer: one task per cell, each cell's
// randomness derived from the campaign root seed with
// engine.DeriveSeed, results written to per-task slots. Tables are
// therefore bit-identical for every worker count (the -jobs flag of
// cmd/experiments and cmd/trngsim), which keeps parallel reproduction
// runs citable from (scale, seed) alone. Underneath, the oscillators
// generate edge times in chunks (osc.Oscillator.NextEdges) so each
// worker's hot loop is amortized as well as parallel.
//
// Fast path: the leapfrog layer advances a window of N oscillator
// periods at O(poles) cost instead of O(N·poles) —
// flicker.OUGenerator.AdvanceSum draws each pole's (end state, window
// sum) from its exact joint Gaussian law, osc.Oscillator.Leapfrog
// builds the window jump on top (plus a canonical guard band of
// exactly-walked edges for boundary interpolation), and
// measure.Counter, trng.Generator, multiring.Generator and the
// entropyd shards expose it as a Leapfrog option. The fast path is
// exact in distribution, deterministic in the seed, and falls back to
// bit-exact edge stepping whenever an attack Modulator is installed;
// it is what lets cmd/trngd serve the paper's calibrated physics
// (K ≈ 10⁵ periods per bit) at real throughput.
//
// Serving: internal/entropyd composes the generators (internal/trng,
// internal/multiring — both io.Readers), the post-processing blocks
// and the embedded tests (AIS31 tot/startup tests plus the paper's §V
// thermal monitor) into a sharded, health-gated entropy pool: shards
// that alarm are quarantined, drained and recalibrated while the pool
// keeps serving. cmd/trngd exposes the pool over HTTP (/random,
// /healthz, /assess, /metrics) with bounded-queue backpressure.
//
// Assessment: internal/sp90b implements the SP 800-90B non-IID
// min-entropy estimator suite (the US certification counterpart of
// the AIS 31 track the paper targets) over binary raw streams, plus
// the restart-matrix procedure. experiments.EntropyAssessment runs
// the black-box suite against simulated streams whose exact
// conditional entropy internal/entropy knows in closed form — the
// paper's overestimation story in certification language — while the
// entropyd shards assess their own raw bits periodically in the
// health lifecycle (low min-entropy quarantines like any alarm) and
// cmd/ea assesses captured raw-bit files offline.
//
// Expansion: internal/conditioner (SP 800-90B §3.1.5 vetted
// conditioning — HMAC-SHA-256, CBC-MAC/AES-256 — with the
// output-entropy credit formula) and internal/drbg (SP 800-90A
// HMAC_DRBG and CTR_DRBG-AES-256, pinned against NIST CAVP vectors)
// complete the SP 800-90C construction over the pool: entropyd's
// SeedSource distills assessed raw bits into full-entropy seed
// material — each shard's own latest assessment is the accounting
// input — and its DRBGPool runs one DRBG lane per shard, reseeding
// under the same health gates and failing closed on quarantine or
// starvation. Served output rate is then bounded by AES/SHA
// throughput instead of oscillator physics; cmd/trngd serves this by
// default (-mode drbg, with /random?pr=1 prediction resistance) and
// the raw gated stream with -mode raw. The DRBG lanes produce blocks
// through a demand-driven per-lane pipeline (bounded block queues, a
// cursor-ordered consumer stitching the round-robin schedule), so
// aggregate throughput scales with cores while the served stream stays
// bit-identical to sequential rotation.
//
// Load and measurement: internal/loadstat is the latency layer — a
// lock-free log-bucketed HDR-style histogram cheap enough for the
// daemon's per-request hot path. cmd/trngd records every /random
// service time into it and exports the Prometheus
// trngd_request_duration_seconds histogram; cmd/loadgen drives
// closed-loop (fixed concurrency) or open-loop (fixed arrival rate,
// shed-not-queue) load against a running daemon, reports
// p50/p99/p999 from the same histogram type, sweeps concurrency,
// rate and request size, and locates the goodput knee — the
// saturation point. The daemon's request path itself is
// allocation-free at steady state (pooled chunked response buffers,
// cached headers).
//
// Entry points:
//
//   - internal/core.Model — the multilevel model façade
//   - internal/experiments — regenerates every paper artifact
//   - internal/engine — the deterministic campaign runner
//   - internal/entropyd — the sharded, health-gated serving pool
//     (SeedSource + DRBGPool are its expansion layer)
//   - internal/sp90b — the SP 800-90B black-box assessment suite
//   - internal/conditioner, internal/drbg — vetted conditioning and
//     the SP 800-90A DRBG mechanisms
//   - internal/loadstat — the serving-latency histogram (daemon
//     /metrics and cmd/loadgen share it)
//   - cmd/* — command-line tools (cmd/trngd is the entropy daemon,
//     cmd/loadgen its load harness)
//   - examples/* — runnable walkthroughs
//
// See README.md for the architecture overview and layer map.
package repro
