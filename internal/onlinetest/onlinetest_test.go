package onlinetest

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/measure"
	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/rng"
)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{N: 64, Window: 128, RefSigmaN2: 1e-20}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 0, Window: 128, RefSigmaN2: 1e-20},
		{N: 64, Window: 4, RefSigmaN2: 1e-20},
		{N: 64, Window: 128, RefSigmaN2: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBoundsOrdering(t *testing.T) {
	m, err := New(Config{N: 64, Window: 256, RefSigmaN2: 1e-20})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Bounds()
	if !(lo < 1e-20 && 1e-20 < hi) {
		t.Fatalf("bounds (%g, %g) do not bracket the reference", lo, hi)
	}
}

func TestNoFalseAlarmsUnderNull(t *testing.T) {
	// Feed Gaussian s_N with exactly the reference variance: with
	// α = 1e-6 per side, thousands of windows must not alarm.
	const ref = 4e-21
	m, err := New(Config{N: 64, Window: 128, RefSigmaN2: ref})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	sd := math.Sqrt(ref)
	for i := 0; i < 20000; i++ {
		if st := m.Push(r.NormScaled(0, sd)); st != OK {
			t.Fatalf("false alarm %v at sample %d (var %g)", st, i, m.LastVariance())
		}
	}
	w, lo, hi := m.Counts()
	if w == 0 || lo != 0 || hi != 0 {
		t.Fatalf("counts: %d windows, %d low, %d high", w, lo, hi)
	}
}

func TestAlarmLowOnCollapse(t *testing.T) {
	const ref = 4e-21
	m, err := New(Config{N: 64, Window: 128, RefSigmaN2: ref})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	// Healthy phase.
	sd := math.Sqrt(ref)
	for i := 0; i < 1000; i++ {
		m.Push(r.NormScaled(0, sd))
	}
	// Entropy-source collapse: jitter drops to 10% amplitude.
	fired := false
	for i := 0; i < 1000 && !fired; i++ {
		fired = m.Push(r.NormScaled(0, sd/10)) == AlarmLow
	}
	if !fired {
		t.Fatal("no low alarm after collapse")
	}
}

func TestAlarmHighOnInflation(t *testing.T) {
	const ref = 4e-21
	m, err := New(Config{N: 64, Window: 128, RefSigmaN2: ref})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	sd := math.Sqrt(ref)
	fired := false
	for i := 0; i < 2000 && !fired; i++ {
		fired = m.Push(r.NormScaled(0, sd*10)) == AlarmHigh
	}
	if !fired {
		t.Fatal("no high alarm on 100× variance")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{OK, AlarmLow, AlarmHigh, Status(9)} {
		if s.String() == "" {
			t.Fatalf("empty name for %d", s)
		}
	}
}

func TestRunCleanOscillators(t *testing.T) {
	mdl := paperModel()
	pair, err := osc.NewPair(mdl, 0, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	rel := pair.RelativeModel()
	c, err := measure.NewCounterConfig(pair, n, measure.Config{Subdivide: 64})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(Config{N: n, Window: 256, RefSigmaN2: rel.SigmaN2(n) + c.QuantizationFloor()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mon, c, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.LowAlarms+res.HighAlarms > 0 {
		t.Fatalf("alarms on clean hardware: %+v", res)
	}
	if res.Windows == 0 {
		t.Fatal("no windows evaluated")
	}
}

func TestRunDetectsThermalSuppression(t *testing.T) {
	mdl := paperModel()
	pair, err := osc.NewPair(mdl, 0, osc.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Attack switches on immediately (onset 0) on both rings.
	attack.ThermalSuppression{Factor: 0.95}.Arm(pair.Osc1)
	attack.ThermalSuppression{Factor: 0.95}.Arm(pair.Osc2)
	const n = 64
	rel := pair.RelativeModel()
	c, err := measure.NewCounterConfig(pair, n, measure.Config{Subdivide: 64})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(Config{N: n, Window: 256, RefSigmaN2: rel.SigmaN2(n) + c.QuantizationFloor()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mon, c, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstAlarmWindow < 0 {
		t.Fatal("suppression attack not detected")
	}
	if res.LowAlarms == 0 {
		t.Fatalf("expected low-side alarms, got %+v", res)
	}
}

func TestRunMismatchedN(t *testing.T) {
	mdl := paperModel()
	pair, err := osc.NewPair(mdl, 0, osc.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	c, err := measure.NewCounter(pair, 32)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := New(Config{N: 64, Window: 64, RefSigmaN2: 1e-20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mon, c, 100); err == nil {
		t.Fatal("mismatched N accepted")
	}
}
