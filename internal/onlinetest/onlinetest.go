// Package onlinetest implements the generator-specific online test the
// paper proposes in its conclusion: an embedded, counter-based monitor
// of the THERMAL noise contribution to the jitter.
//
// Rationale (paper §IV–V): the thermal-only jitter σ = sqrt(b_th/f0³) is
// the quantity entropy certification rests on, and it can be measured
// with nothing but the Fig.-6 counter at a small accumulation length
// N < N*(95 %) where jitter realizations are still effectively
// independent and σ²_N ≈ 2·N·σ². A drop of the measured σ²_N below a
// calibrated alarm threshold signals an attack on the entropy source
// (frequency injection, cooling, locking) — quickly, because small-N
// windows are short.
//
// The monitor keeps a sliding window of W counter-derived s_N samples,
// computes their variance, and compares it against chi-square alarm
// bounds calibrated from the reference σ²_N. Crucially — and this is
// the paper's point — the reference must be the THERMAL part only,
// extracted with the quadratic fit; calibrating against total measured
// jitter at large N would bake flicker noise into the reference and
// blind the test to thermal-noise loss.
//
// In the serving stack the monitor runs embedded: internal/entropyd
// attaches one Monitor (fed by a dedicated measure.Counter) to every
// pool shard and quarantines the shard on any alarm.
package onlinetest

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/stats"
)

// Config parameterizes a Monitor.
type Config struct {
	// N is the accumulation length per counter window; keep it below
	// the model's independence threshold (paper: N < 281 for
	// r_N > 95 %).
	N int
	// Window is the number of s_N samples per variance estimate.
	Window int
	// RefSigmaN2 is the expected (thermal) σ²_N at this N, from the
	// calibrated model: 2·N·b_th/f0³.
	RefSigmaN2 float64
	// AlphaLow is the false-alarm probability of the low-side alarm
	// (entropy loss). Default 1e-6 per window.
	AlphaLow float64
	// AlphaHigh is the false-alarm probability of the high-side
	// alarm (total failure / stuck counter produces zero variance,
	// but a strong injected beat can also inflate variance).
	// Default 1e-6.
	AlphaHigh float64
}

// Monitor is a running online test.
type Monitor struct {
	cfg      Config
	loBound  float64 // variance alarm threshold, low side
	hiBound  float64 // high side
	buf      []float64
	pos      int
	filled   bool
	lastVar  float64
	windows  int
	alarms   int
	lowSide  int
	highSide int
}

// New validates the configuration and builds a Monitor. The chi-square
// bounds assume approximately Gaussian s_N with (Window−1) degrees of
// freedom: Var̂·(W−1)/σ²_ref ~ χ²(W−1) under the null.
func New(cfg Config) (*Monitor, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("onlinetest: N = %d must be >= 1", cfg.N)
	}
	if cfg.Window < 8 {
		return nil, fmt.Errorf("onlinetest: window %d too small (need >= 8)", cfg.Window)
	}
	if cfg.RefSigmaN2 <= 0 {
		return nil, fmt.Errorf("onlinetest: reference σ²_N = %g must be > 0", cfg.RefSigmaN2)
	}
	if cfg.AlphaLow == 0 {
		cfg.AlphaLow = 1e-6
	}
	if cfg.AlphaHigh == 0 {
		cfg.AlphaHigh = 1e-6
	}
	dof := float64(cfg.Window - 1)
	lo := stats.ChiSquareQuantile(cfg.AlphaLow, dof) / dof * cfg.RefSigmaN2
	hi := stats.ChiSquareQuantile(1-cfg.AlphaHigh, dof) / dof * cfg.RefSigmaN2
	return &Monitor{
		cfg:     cfg,
		loBound: lo,
		hiBound: hi,
		buf:     make([]float64, cfg.Window),
	}, nil
}

// Bounds returns the calibrated variance alarm thresholds.
func (m *Monitor) Bounds() (lo, hi float64) { return m.loBound, m.hiBound }

// Status is the monitor verdict after one s_N sample.
type Status int

// Monitor statuses.
const (
	// OK: within bounds or window not yet filled.
	OK Status = iota
	// AlarmLow: measured thermal jitter variance below the low
	// threshold — entropy source degraded (attack, locking, cooling).
	AlarmLow
	// AlarmHigh: variance above the high threshold — injected beat
	// or measurement fault.
	AlarmHigh
)

// String names the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case AlarmLow:
		return "alarm-low"
	case AlarmHigh:
		return "alarm-high"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Push feeds one s_N observation (seconds) and returns the current
// status. The variance is recomputed over the sliding window each time
// the buffer is full.
func (m *Monitor) Push(sn float64) Status {
	m.buf[m.pos] = sn
	m.pos++
	if m.pos == len(m.buf) {
		m.pos = 0
		m.filled = true
	}
	if !m.filled {
		return OK
	}
	_, v := stats.MeanVariance(m.buf)
	m.lastVar = v
	m.windows++
	switch {
	case v < m.loBound:
		m.alarms++
		m.lowSide++
		return AlarmLow
	case v > m.hiBound:
		m.alarms++
		m.highSide++
		return AlarmHigh
	default:
		return OK
	}
}

// LastVariance returns the most recent windowed variance estimate.
func (m *Monitor) LastVariance() float64 { return m.lastVar }

// Counts returns (windows evaluated, low alarms, high alarms).
func (m *Monitor) Counts() (windows, low, high int) {
	return m.windows, m.lowSide, m.highSide
}

// RunResult summarizes a monitored run.
type RunResult struct {
	// Windows is the number of evaluated sliding windows.
	Windows int
	// FirstAlarmWindow is the index (in evaluated windows) of the
	// first alarm, or −1.
	FirstAlarmWindow int
	// FirstAlarmTimeBits is the same expressed in s_N samples
	// consumed before the alarm fired.
	FirstAlarmSamples int
	// LowAlarms and HighAlarms count alarm windows.
	LowAlarms, HighAlarms int
}

// Run drives the monitor from a counter for total s_N samples, returning
// the alarm summary. The counter must be configured with the same N.
func Run(m *Monitor, c *measure.Counter, samples int) (RunResult, error) {
	if c.N() != m.cfg.N {
		return RunResult{}, fmt.Errorf("onlinetest: counter N=%d does not match monitor N=%d", c.N(), m.cfg.N)
	}
	res := RunResult{FirstAlarmWindow: -1, FirstAlarmSamples: -1}
	scale := c.PeriodOsc1() / float64(c.Subdivision())
	prevQ := c.NextQ()
	for i := 0; i < samples; i++ {
		q := c.NextQ()
		sn := float64(q-prevQ) * scale
		prevQ = q
		st := m.Push(sn)
		if st != OK {
			if res.FirstAlarmWindow < 0 {
				res.FirstAlarmWindow = res.Windows
				res.FirstAlarmSamples = i + 1
			}
			if st == AlarmLow {
				res.LowAlarms++
			} else {
				res.HighAlarms++
			}
		}
	}
	res.Windows, _, _ = m.Counts()
	return res, nil
}
