package trng

import (
	"bytes"
	"io"
	"math"
	"testing"

	"repro/internal/phase"
	"repro/internal/postproc"
)

var _ io.Reader = (*Generator)(nil)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Model: paperModel(), Divider: 0}); err == nil {
		t.Fatal("divider 0 accepted")
	}
	if _, err := New(Config{Model: phase.Model{}, Divider: 8}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestBitsAreBinary(t *testing.T) {
	g, err := New(Config{Model: paperModel(), Divider: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(10000)
	for i, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("bit %d = %d", i, b)
		}
	}
	if g.BitsEmitted() != 10000 {
		t.Fatalf("BitsEmitted = %d", g.BitsEmitted())
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, _ := New(Config{Model: paperModel(), Divider: 32, Seed: 7})
	b, _ := New(Config{Model: paperModel(), Divider: 32, Seed: 7})
	ba := a.Bits(5000)
	bb := b.Bits(5000)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

// hotModel is a thermal-only model with 100× the paper's b_th (10× the
// period jitter). Statistical TRNG tests use it so the per-bit phase
// diffusion reaches the well-mixed regime with computationally feasible
// dividers: the paper model needs K ≈ 10⁵ periods/bit for full entropy,
// which is physically realistic but needlessly slow for unit tests.
func hotModel() phase.Model {
	m := paperModel()
	m.Bth *= 100
	m.Bfl = 0
	return m
}

func TestLargeDividerBalancedBits(t *testing.T) {
	// With enough accumulation the output must be nearly balanced.
	// σ per sample = sqrt(2K)·σ_th·f0 ≈ 0.73 cycles at K = 1000.
	g, err := New(Config{Model: hotModel(), Divider: 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(20000)
	bias := postproc.Bias(bits)
	if math.Abs(bias) > 0.02 {
		t.Fatalf("bias = %g with large divider", bias)
	}
}

func TestLargeDividerLowAutocorrelation(t *testing.T) {
	g, err := New(Config{Model: hotModel(), Divider: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(20000)
	// lag-1 correlation of ±1-mapped bits
	var n01 [2][2]int
	for i := 1; i < len(bits); i++ {
		n01[bits[i-1]][bits[i]]++
	}
	total := float64(len(bits) - 1)
	pSame := float64(n01[0][0]+n01[1][1]) / total
	if math.Abs(pSame-0.5) > 0.03 {
		t.Fatalf("P(same as previous) = %g, want ~0.5", pSame)
	}
}

func TestSmallDividerPredictable(t *testing.T) {
	// With divider 1 and (nearly) identical frequencies the sampling
	// point barely moves between samples: consecutive bits repeat —
	// visibly low entropy. This is the regime the entropy models
	// guard against.
	g, err := New(Config{Model: paperModel(), Divider: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(20000)
	var same int
	for i := 1; i < len(bits); i++ {
		if bits[i] == bits[i-1] {
			same++
		}
	}
	frac := float64(same) / float64(len(bits)-1)
	if frac < 0.9 {
		t.Fatalf("P(repeat) = %g; divider-1 output should be strongly correlated", frac)
	}
}

func TestMismatchWalksSamplingPoint(t *testing.T) {
	// With a deliberate frequency mismatch, the sampling point sweeps
	// the waveform deterministically: the bit stream shows the beat
	// pattern (long alternating blocks ~ 1/(2·mismatch·K) bits).
	g, err := New(Config{Model: paperModel(), Divider: 1, Mismatch: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(4000)
	// Beat period in samples: waveform advances by K·mismatch ≈ 0.01
	// cycles per sample → full cycle every ~100 samples, half-high.
	transitions := 0
	for i := 1; i < len(bits); i++ {
		if bits[i] != bits[i-1] {
			transitions++
		}
	}
	// Expect ≈ 2 transitions per 100-sample beat → ~80; pure noise
	// would give ~2000, frozen output 0.
	if transitions < 20 || transitions > 400 {
		t.Fatalf("transitions = %d, want beat-dominated ~80", transitions)
	}
}

func TestBytesPacking(t *testing.T) {
	g, err := New(Config{Model: paperModel(), Divider: 64, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	bs := g.Bytes(100)
	if len(bs) != 100 {
		t.Fatalf("%d bytes", len(bs))
	}
	if g.BitsEmitted() != 800 {
		t.Fatalf("BitsEmitted = %d after Bytes(100)", g.BitsEmitted())
	}
	// Must not be constant.
	allSame := true
	for _, b := range bs[1:] {
		if b != bs[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("byte output constant")
	}
}

func TestReadMatchesBytes(t *testing.T) {
	// Read is Bytes in io.Reader clothing: same seed, same stream,
	// regardless of how the reads are chunked.
	a, err := New(Config{Model: paperModel(), Divider: 64, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Model: paperModel(), Divider: 64, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	want := a.Bytes(64)
	got := make([]byte, 64)
	if _, err := io.ReadFull(b, got[:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, got[10:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Read stream diverges from Bytes")
	}
	if b.BitsEmitted() != 512 {
		t.Fatalf("BitsEmitted = %d after reading 64 bytes", b.BitsEmitted())
	}
}

func TestReadPacksBitsMSBFirst(t *testing.T) {
	a, _ := New(Config{Model: paperModel(), Divider: 64, Seed: 13})
	b, _ := New(Config{Model: paperModel(), Divider: 64, Seed: 13})
	bits := a.Bits(32)
	var buf [4]byte
	if n, err := b.Read(buf[:]); n != 4 || err != nil {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	if packed := postproc.Pack(bits); !bytes.Equal(packed, buf[:]) {
		t.Fatalf("packing mismatch: bits %v -> %v, Read %v", bits, packed, buf)
	}
}

func TestAccumulatedJitterVariance(t *testing.T) {
	g, err := New(Config{Model: paperModel(), Divider: 128, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	av := g.AccumulatedJitterVariance()
	if av.SamplePeriods != 128 {
		t.Fatalf("sample periods = %d", av.SamplePeriods)
	}
	if av.Thermal <= 0 || av.Total <= av.Thermal {
		t.Fatalf("accumulated variance split broken: %+v", av)
	}
	// Thermal part: rel model has 2·Bth; Var(ΣJ) = K·σ²_rel.
	rel := g.Pair().RelativeModel()
	want := rel.SigmaN2Thermal(128) / 2
	if math.Abs(av.Thermal-want) > 1e-12*want {
		t.Fatalf("thermal accumulation = %g, want %g", av.Thermal, want)
	}
}

func TestDividerAccessors(t *testing.T) {
	g, err := New(Config{Model: paperModel(), Divider: 9, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g.Divider() != 9 {
		t.Fatalf("divider = %d", g.Divider())
	}
	if g.Pair() == nil {
		t.Fatal("nil pair")
	}
}
