package trng

import (
	"math"
	"testing"

	"repro/internal/osc"
	"repro/internal/phase"
)

func leapConfig(divider int, seed uint64) Config {
	return Config{
		Model:    phase.Model{Bth: 138, Bfl: 2.6e-2, F0: 103e6},
		Divider:  divider,
		Mismatch: 2e-3,
		Seed:     seed,
		Leapfrog: true,
	}
}

// TestLeapfrogStreamInvariantToChunking pins the fast path's
// determinism contract: the bit stream is a pure function of
// (Config, Seed) — how a consumer groups its reads (single bits, bit
// batches, packed-byte reads of any size) must not be observable.
func TestLeapfrogStreamInvariantToChunking(t *testing.T) {
	const total = 512 // bits; divider large enough that every bit jumps
	ref, err := New(leapConfig(20000, 77))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Bits(total)

	batched, err := New(leapConfig(20000, 77))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for _, chunk := range []int{1, 7, 120, 256, total} {
		if len(got)+chunk > total {
			chunk = total - len(got)
		}
		got = append(got, batched.Bits(chunk)...)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("bit %d differs between chunkings", i)
		}
	}

	reader, err := New(leapConfig(20000, 77))
	if err != nil {
		t.Fatal(err)
	}
	var packed []byte
	for _, chunk := range []int{3, 11, 50} {
		buf := make([]byte, chunk)
		if _, err := reader.Read(buf); err != nil {
			t.Fatal(err)
		}
		packed = append(packed, buf...)
	}
	for i, b := range packed {
		var wantByte byte
		for k := 0; k < 8; k++ {
			wantByte = wantByte<<1 | want[8*i+k]
		}
		if b != wantByte {
			t.Fatalf("packed byte %d = %08b, want %08b", i, b, wantByte)
		}
	}
}

// TestLeapfrogBalancedBitsAtPaperOperatingPoint exercises the point of
// the whole fast path: raw bits at the paper's honest operating point
// (calibrated physics, K = 10⁵ periods of accumulated jitter per bit)
// are affordable to generate and come out balanced. The edge-level
// path needs ~10⁹ Gaussian draws for the same check.
func TestLeapfrogBalancedBitsAtPaperOperatingPoint(t *testing.T) {
	g, err := New(leapConfig(100_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	bits := g.Bits(n)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	frac := float64(ones) / n
	// 5σ binomial band around 1/2.
	if math.Abs(frac-0.5) > 5*0.5/math.Sqrt(n) {
		t.Fatalf("ones fraction %g at K=1e5 calibrated physics", frac)
	}
}

// TestLeapfrogMatchesEdgeStatistics compares the two paths'
// distributions at a mid-size divider: bias and lag-1 autocorrelation
// agree within Monte-Carlo error.
func TestLeapfrogMatchesEdgeStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("edge-path reference stream is long")
	}
	const (
		divider = 1024
		n       = 10000
	)
	stats := func(leap bool, seed uint64) (bias, lag1 float64) {
		cfg := leapConfig(divider, seed)
		cfg.Leapfrog = leap
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bits := g.Bits(n)
		var ones, agree int
		for i, b := range bits {
			ones += int(b)
			if i > 0 && b == bits[i-1] {
				agree++
			}
		}
		return float64(ones)/n - 0.5, float64(agree)/float64(n-1) - 0.5
	}
	eb, el := stats(false, 3)
	lb, ll := stats(true, 3)
	band := 5 * 0.5 / math.Sqrt(n) // 5σ binomial
	if math.Abs(eb-lb) > 2*band {
		t.Fatalf("bias: edge %g vs leapfrog %g", eb, lb)
	}
	if math.Abs(el-ll) > 2*band {
		t.Fatalf("lag-1 agreement: edge %g vs leapfrog %g", el, ll)
	}
}

// TestLeapfrogModulatorFallsBackToEdgeStream pins the fallback
// contract end to end: with a Modulator installed on the rings, a
// leapfrog-configured generator emits EXACTLY the edge-path stream —
// the attack sees every period, bit for bit.
func TestLeapfrogModulatorFallsBackToEdgeStream(t *testing.T) {
	mod := osc.SineInjection(1e4, 1e-3, 1/103e6)
	mk := func(leap bool) *Generator {
		cfg := leapConfig(2000, 13)
		cfg.Leapfrog = leap
		cfg.OscOptions.Modulator = mod
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(true), mk(false)
	ab, bb := a.Bits(400), b.Bits(400)
	for i := range ab {
		if ab[i] != bb[i] {
			t.Fatalf("bit %d: leapfrog-with-modulator %d != edge %d — fallback is not bit-exact", i, ab[i], bb[i])
		}
	}
}
