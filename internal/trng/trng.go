// Package trng implements the elementary ring-oscillator TRNG
// (eRO-TRNG) of paper Fig. 4: two classical ring oscillators, a
// frequency divider and a D flip-flop. The output of Osc1 is sampled at
// (divided) rising edges of Osc2; the raw random analog signal (RRAS) is
// the relative jitter between the rings, and the digitizer is the DFF.
//
// Following AIS31 terminology (paper Fig. 1), the package separates the
// entropy source (the oscillator pair), the digitizer (the sampler) and
// leaves post-processing to internal/postproc.
package trng

import (
	"fmt"

	"repro/internal/osc"
	"repro/internal/phase"
)

// Config describes an eRO-TRNG instance.
type Config struct {
	// Model is the per-oscillator phase-noise model. Both rings use
	// it (the paper's rings are nominally identical).
	Model phase.Model
	// Divider K divides Osc2: one output bit is produced every K
	// Osc2 periods. Larger K accumulates more relative jitter per
	// bit and therefore more entropy per bit.
	Divider int
	// Mismatch is the relative frequency mismatch between the rings
	// (process variation). The mean number of Osc1 half-periods per
	// sample interval shifts accordingly, moving the sampling point
	// across the waveform.
	Mismatch float64
	// Seed seeds the two oscillators.
	Seed uint64
	// Leapfrog selects the O(1)-per-bit fast path: each bit jumps
	// Osc2 across the whole divider window in closed form
	// (osc.Leapfrog) and jumps Osc1 to just short of the sampling
	// instant (osc.LeapfrogToBefore), walking only the few remaining
	// edges exactly for the DFF phase interpolation. The bit stream is
	// exact in distribution and deterministic in (Config, Seed) —
	// invariant to how reads are chunked — but is a different
	// realization than the edge-level path, which remains the golden
	// reference. Rings that cannot leapfrog (installed Modulator,
	// Kasdin flicker backend) transparently fall back to edge stepping
	// inside internal/osc.
	Leapfrog bool
	// OscOptions forwards simulator options (flicker generator
	// selection, attack modulators) to both rings.
	OscOptions osc.Options
}

// Generator is a running eRO-TRNG.
type Generator struct {
	pair    *osc.Pair
	divider int
	leap    bool
	// sampled-oscillator waveform tracking: time of the last Osc1
	// rising edge and the period that started there.
	lastEdge1   float64
	nextEdge1   float64
	bitsEmitted uint64
}

// New builds the eRO-TRNG.
func New(cfg Config) (*Generator, error) {
	if cfg.Divider < 1 {
		return nil, fmt.Errorf("trng: divider %d must be >= 1", cfg.Divider)
	}
	opt := cfg.OscOptions
	opt.Seed = cfg.Seed
	pair, err := osc.NewPair(cfg.Model, cfg.Mismatch, opt)
	if err != nil {
		return nil, err
	}
	g := &Generator{pair: pair, divider: cfg.Divider, leap: cfg.Leapfrog}
	g.lastEdge1 = 0
	g.nextEdge1 = pair.Osc1.NextEdge()
	return g, nil
}

// Pair exposes the underlying oscillators (for attack experiments that
// need to manipulate them mid-run).
func (g *Generator) Pair() *osc.Pair { return g.pair }

// Divider returns the configured sampling divider.
func (g *Generator) Divider() int { return g.divider }

// BitsEmitted returns the number of raw bits produced so far.
func (g *Generator) BitsEmitted() uint64 { return g.bitsEmitted }

// NextBit advances Osc2 by Divider periods and samples the Osc1 square
// waveform at the resulting edge time: the bit is 1 during the first
// half-period after each Osc1 rising edge (the 2π-periodic square
// function P of paper eq. 2). In leapfrog mode both advances are
// closed-form jumps plus a short exact walk (see Config.Leapfrog).
func (g *Generator) NextBit() byte {
	if g.leap {
		g.pair.Osc2.Leapfrog(g.divider)
	} else {
		for i := 0; i < g.divider; i++ {
			g.pair.Osc2.NextPeriod()
		}
	}
	t := g.pair.Osc2.Now()
	if g.leap && g.nextEdge1 <= t {
		// Osc1's cursor sits exactly on the already-pulled nextEdge1
		// (the generator reads no further ahead), so jump it to just
		// short of the sampling instant; the walk below closes the
		// remaining slack exactly.
		if j := g.pair.Osc1.LeapfrogToBefore(t); j > 0 {
			g.lastEdge1 = g.pair.Osc1.Now()
			g.nextEdge1 = g.pair.Osc1.NextEdge()
		}
	}
	for g.nextEdge1 <= t {
		g.lastEdge1 = g.nextEdge1
		g.nextEdge1 = g.pair.Osc1.NextEdge()
	}
	g.bitsEmitted++
	// Fractional position inside the current Osc1 period.
	frac := (t - g.lastEdge1) / (g.nextEdge1 - g.lastEdge1)
	if frac < 0.5 {
		return 1
	}
	return 0
}

// Bits produces n raw bits.
func (g *Generator) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = g.NextBit()
	}
	return out
}

// Bytes packs 8·n raw bits MSB-first into n bytes.
func (g *Generator) Bytes(n int) []byte {
	out := make([]byte, n)
	g.mustRead(out)
	return out
}

// Read implements io.Reader: it fills p entirely with packed raw bits
// (8 bits per byte, MSB-first) and never fails — the simulated source
// cannot run dry. It lets a generator compose directly with the
// standard library (io.ReadFull, io.CopyN, bufio) and with the
// internal/entropyd serving layer.
func (g *Generator) Read(p []byte) (int, error) {
	g.mustRead(p)
	return len(p), nil
}

// mustRead fills p with packed raw bits.
func (g *Generator) mustRead(p []byte) {
	for i := range p {
		var b byte
		for k := 0; k < 8; k++ {
			b = b<<1 | g.NextBit()
		}
		p[i] = b
	}
}

// AccumulatedJitterVariance returns the variance of the relative phase
// accumulated between two consecutive samples, expressed in seconds².
// It is the model-level quantity that determines entropy per bit: with
// divider K both rings contribute, and only the thermal part grows
// linearly with K (the flicker part is autocorrelated — the paper's
// point).
//
// The returned struct separates the thermal-only accumulation (the
// entropy-bearing part under the refined model) from the total
// accumulated variance a naive independence-assuming model would use.
func (g *Generator) AccumulatedJitterVariance() AccumulatedVariance {
	rel := g.pair.RelativeModel()
	k := g.divider
	th := rel.SigmaN2Thermal(k) / 2 // one-sided accumulation: Var(ΣJ) = N·σ²
	tot := rel.SigmaN2(k) / 2
	return AccumulatedVariance{Thermal: th, Total: tot, SamplePeriods: k}
}

// AccumulatedVariance carries the per-sample accumulated jitter variance
// split used by the entropy models. Values are in s².
type AccumulatedVariance struct {
	Thermal       float64
	Total         float64
	SamplePeriods int
}
