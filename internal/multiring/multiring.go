// Package multiring implements the Sunar–Martin–Stinson multi-ring
// TRNG [7] ("A provably secure true random number generator with
// built-in tolerance to active attacks"): R free-running rings are
// XOR-ed together and sampled at a fixed rate; the security argument
// counts how many rings have an edge inside each sampling interval
// ("filled urns").
//
// It serves as the third modeled baseline of the paper's §II survey,
// and demonstrates the same blind spot: Sunar's bound assumes the ring
// phases perform INDEPENDENT diffusion between samples, i.e. white
// jitter. Flicker noise correlates each ring's phase across samples,
// so the effective fresh randomness per sample is governed by the
// thermal component only — exactly the paper's thesis, in a different
// architecture.
package multiring

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/stats"
)

// ringChunk is the per-ring edge read-ahead (osc.NextEdges) chunk size.
const ringChunk = 256

// Config describes the generator.
type Config struct {
	// Model is the per-ring phase-noise model.
	Model phase.Model
	// Rings is the number of free-running rings R.
	Rings int
	// SampleRate is the output bit rate in Hz.
	SampleRate float64
	// RelativeSpread is the rms relative frequency spread across
	// rings (process variation); each ring's f0 is drawn once from
	// a uniform ±spread·√3 band so distinct rings do not phase-lock.
	RelativeSpread float64
	// Seed seeds all rings.
	Seed uint64
	// Leapfrog selects the O(1)-per-sample fast path: between sample
	// instants each ring jumps most of its stride in closed form
	// (osc.LeapfrogToBefore) and walks only the last few edges exactly
	// for the waveform interpolation. Worth enabling when the
	// per-sample stride f0/SampleRate is large (slow sampling of fast
	// rings); with short strides the jump primitive declines to engage
	// and the path degenerates to plain stepping. The output is exact
	// in distribution but a different realization than the edge-level
	// reference; rings that cannot leapfrog (Modulator, Kasdin
	// backend) fall back to edge stepping inside internal/osc.
	Leapfrog bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.Rings < 1:
		return fmt.Errorf("multiring: rings = %d must be >= 1", c.Rings)
	case c.SampleRate <= 0:
		return fmt.Errorf("multiring: sample rate %g must be > 0", c.SampleRate)
	case c.SampleRate >= 10*c.Model.F0:
		return fmt.Errorf("multiring: sample rate %g implausibly above f0 %g", c.SampleRate, c.Model.F0)
	case c.RelativeSpread < 0 || c.RelativeSpread > 0.5:
		return fmt.Errorf("multiring: spread %g out of [0, 0.5]", c.RelativeSpread)
	}
	return nil
}

// ringState tracks one ring's waveform between samples. Edges are
// pulled through a chunk buffer (osc.NextEdges) so sampling pays one
// oscillator call per ringChunk edges. Each ringState is mutated only
// by the goroutine that owns its ring — the property BitsParallel's
// per-replica tasks rely on.
type ringState struct {
	o        *osc.Oscillator
	leap     bool
	lastEdge float64
	nextEdge float64
	buf      []float64
	pos      int
}

// popEdge returns the ring's next rising-edge time. The leapfrog path
// pulls single edges: bitAt's jump advances the oscillator's own
// cursor, so any unconsumed read-ahead would be skipped over.
func (st *ringState) popEdge() float64 {
	if st.leap {
		return st.o.NextEdge()
	}
	if st.pos == len(st.buf) {
		if st.buf == nil {
			st.buf = make([]float64, ringChunk)
		}
		st.o.NextEdges(st.buf)
		st.pos = 0
	}
	e := st.buf[st.pos]
	st.pos++
	return e
}

// bitAt advances the ring's waveform to the sample instant t and
// returns the sampled square-wave bit.
func (st *ringState) bitAt(t float64) byte {
	if st.leap && st.nextEdge <= t {
		// The ring's cursor sits exactly on the already-pulled
		// nextEdge; jump it to just short of the sample instant and
		// let the loop below walk the remaining slack exactly.
		if j := st.o.LeapfrogToBefore(t); j > 0 {
			st.lastEdge = st.o.Now()
			st.nextEdge = st.popEdge()
		}
	}
	for st.nextEdge <= t {
		st.lastEdge = st.nextEdge
		st.nextEdge = st.popEdge()
	}
	frac := 0.0
	if st.nextEdge > st.lastEdge {
		frac = (t - st.lastEdge) / (st.nextEdge - st.lastEdge)
	}
	if frac < 0.5 {
		return 1
	}
	return 0
}

// Generator is a running multi-ring TRNG.
type Generator struct {
	cfg   Config
	rings []ringState
	tick  uint64
}

// New builds the generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg}
	// Deterministic per-ring frequency offsets from the seed.
	mix := cfg.Seed
	for r := 0; r < cfg.Rings; r++ {
		mix = mix*6364136223846793005 + 1442695040888963407
		frac := float64(mix>>11) / (1 << 53) // uniform [0,1)
		m := cfg.Model
		m.F0 *= 1 + cfg.RelativeSpread*math.Sqrt(3)*(2*frac-1)
		o, err := osc.New(m, osc.Options{Seed: mix ^ 0x9e3779b97f4a7c15})
		if err != nil {
			return nil, err
		}
		st := ringState{o: o, leap: cfg.Leapfrog}
		st.nextEdge = st.popEdge()
		g.rings = append(g.rings, st)
	}
	return g, nil
}

// Rings returns R.
func (g *Generator) Rings() int { return len(g.rings) }

// NextBit advances wall-clock time by one sample interval, reads each
// ring's square waveform at the sample instant, and XORs them.
func (g *Generator) NextBit() byte {
	g.tick++
	t := float64(g.tick) / g.cfg.SampleRate
	var bit byte
	for i := range g.rings {
		bit ^= g.rings[i].bitAt(t)
	}
	return bit
}

// Bits produces n output bits.
func (g *Generator) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = g.NextBit()
	}
	return out
}

// Read implements io.Reader: it fills p entirely with packed output
// bits (8 bits per byte, MSB-first) and never fails — the simulated
// source cannot run dry. It lets the generator compose directly with
// the standard library and with the internal/entropyd serving layer.
func (g *Generator) Read(p []byte) (int, error) {
	for i := range p {
		var b byte
		for k := 0; k < 8; k++ {
			b = b<<1 | g.NextBit()
		}
		p[i] = b
	}
	return len(p), nil
}

// BitsParallel produces the same n output bits as Bits, but runs each
// ring replica as one engine task: every ring samples its own square
// waveform for the whole span (touching only its own ringState), and
// the streams are XOR-reduced afterwards. Because the per-ring streams
// and the sample instants are independent of scheduling, the output is
// bit-identical to the sequential Bits for every worker-pool width
// (jobs: 0 = NumCPU, 1 = sequential).
//
// If the context is cancelled mid-span the error is returned and the
// generator must be discarded: rings that already ran sit n samples
// ahead of rings that never started, so no subsequent output would
// correspond to any reproducible (seed, n) layout.
func (g *Generator) BitsParallel(ctx context.Context, n, jobs int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("multiring: bit count %d must be >= 0", n)
	}
	if err := ctx.Err(); err != nil {
		// Fail before any ring advances: a pre-cancelled context must
		// not leave the generator in the discard-only state above.
		return nil, err
	}
	base := g.tick
	fs := g.cfg.SampleRate
	streams, err := engine.Map(ctx, len(g.rings), func(_ context.Context, r int) ([]byte, error) {
		st := &g.rings[r]
		out := make([]byte, n)
		for i := range out {
			out[i] = st.bitAt(float64(base+uint64(i)+1) / fs)
		}
		return out, nil
	}, engine.Jobs(jobs))
	if err != nil {
		return nil, err
	}
	g.tick = base + uint64(n)
	out := make([]byte, n)
	for _, s := range streams {
		for i := range out {
			out[i] ^= s[i]
		}
	}
	return out, nil
}

// FilledUrns counts, over one sampling interval, how many rings had at
// least one rising edge — Sunar's urn statistic. With f0 ≫ fs every
// urn is filled; the statistic matters for fast sampling.
func (g *Generator) FilledUrns() int {
	g.tick++
	t := float64(g.tick) / g.cfg.SampleRate
	filled := 0
	for i := range g.rings {
		st := &g.rings[i]
		had := false
		for st.nextEdge <= t {
			st.lastEdge = st.nextEdge
			st.nextEdge = st.popEdge()
			had = true
		}
		if had {
			filled++
		}
	}
	return filled
}

// SunarBias returns the classical (independence-assuming) bound on the
// per-ring sampled-bit bias: for phase diffusion with accumulated
// variance σ²_acc (cycles²) per sample interval, the first-harmonic
// bias is (2/π)·exp(−2π²σ²_acc); XOR of R rings piles up to
// 2^{R−1}·bias^R.
func SunarBias(sigmaAccCycles float64, rings int) float64 {
	per := 2 / math.Pi * math.Exp(-2*math.Pi*math.Pi*sigmaAccCycles*sigmaAccCycles)
	return math.Pow(2, float64(rings-1)) * math.Pow(per, float64(rings))
}

// Assessment contrasts the naive and refined bias bounds of the XOR-ed
// output, mirroring internal/entropy for this architecture.
type Assessment struct {
	// SigmaNaive / SigmaRefined: per-sample accumulated phase rms in
	// cycles under each model.
	SigmaNaive, SigmaRefined float64
	// BiasNaive / BiasRefined: piled-up bias bounds.
	BiasNaive, BiasRefined float64
	// EntropyNaive / EntropyRefined: first-order entropy 1 − 2b²/ln2.
	EntropyNaive, EntropyRefined float64
}

// Assess evaluates the bounds for the configuration: the naive path
// accumulates the TOTAL per-period jitter variance inferred at nMeas
// (inflated by flicker), the refined path only the thermal part.
func Assess(cfg Config, nMeas int) (Assessment, error) {
	if err := cfg.Validate(); err != nil {
		return Assessment{}, err
	}
	if nMeas < 1 {
		return Assessment{}, fmt.Errorf("multiring: nMeas %d must be >= 1", nMeas)
	}
	k := cfg.Model.F0 / cfg.SampleRate // periods per sample
	perNaive := cfg.Model.SigmaN2(nMeas) / (2 * float64(nMeas))
	varNaive := k * perNaive * cfg.Model.F0 * cfg.Model.F0
	sigTh := cfg.Model.SigmaThermal()
	varRef := k * sigTh * sigTh * cfg.Model.F0 * cfg.Model.F0
	a := Assessment{
		SigmaNaive:   math.Sqrt(varNaive),
		SigmaRefined: math.Sqrt(varRef),
	}
	a.BiasNaive = SunarBias(a.SigmaNaive, cfg.Rings)
	a.BiasRefined = SunarBias(a.SigmaRefined, cfg.Rings)
	a.EntropyNaive = clampEntropy(1 - 2*a.BiasNaive*a.BiasNaive/math.Ln2)
	a.EntropyRefined = clampEntropy(1 - 2*a.BiasRefined*a.BiasRefined/math.Ln2)
	return a, nil
}

func clampEntropy(h float64) float64 {
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// EmpiricalBias measures the output bias over n samples.
func (g *Generator) EmpiricalBias(n int) float64 {
	bits := g.Bits(n)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	return float64(ones)/float64(n) - 0.5
}

// LagCorrelation returns the lag-1 autocorrelation of ±1-mapped output
// bits over n samples — the cheap dependence witness.
func (g *Generator) LagCorrelation(n int) float64 {
	bits := g.Bits(n)
	xs := make([]float64, len(bits))
	for i, b := range bits {
		xs[i] = float64(int(b)*2 - 1)
	}
	rho := stats.Autocorrelation(xs, 1)
	return rho[1]
}
