package multiring

import (
	"bytes"
	"context"
	"io"
	"math"
	"testing"

	"repro/internal/phase"
	"repro/internal/postproc"
)

var _ io.Reader = (*Generator)(nil)

// hot returns a thermal-boosted per-ring model so sampling statistics
// converge quickly in tests (same rationale as the trng tests).
func hot() phase.Model {
	const f0 = 103e6
	return phase.Model{Bth: 100 * 5.36e-6 * f0 / 4, Bfl: 0, F0: f0}
}

func baseConfig() Config {
	return Config{
		Model:          hot(),
		Rings:          4,
		SampleRate:     103e6 / 1000,
		RelativeSpread: 0.01,
		Seed:           1,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Model.F0 = 0 },
		func(c *Config) { c.Rings = 0 },
		func(c *Config) { c.SampleRate = 0 },
		func(c *Config) { c.SampleRate = c.Model.F0 * 20 },
		func(c *Config) { c.RelativeSpread = 0.9 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBitsBinaryAndDeterministic(t *testing.T) {
	a, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(baseConfig())
	ba := a.Bits(3000)
	bb := b.Bits(3000)
	for i := range ba {
		if ba[i] > 1 {
			t.Fatalf("non-binary bit %d", ba[i])
		}
		if ba[i] != bb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	if a.Rings() != 4 {
		t.Fatalf("rings = %d", a.Rings())
	}
}

func TestMoreRingsLowerBias(t *testing.T) {
	// With slow per-ring diffusion, a single ring is visibly biased
	// over a short record; XOR-ing more rings drives it down.
	slow := baseConfig()
	slow.Model.Bth /= 10000
	slow.Rings = 1
	slow.RelativeSpread = 0.003
	g1, err := New(slow)
	if err != nil {
		t.Fatal(err)
	}
	b1 := math.Abs(g1.EmpiricalBias(4000))

	slow.Rings = 8
	g8, err := New(slow)
	if err != nil {
		t.Fatal(err)
	}
	b8 := math.Abs(g8.EmpiricalBias(4000))
	if b8 > b1 && b8 > 0.1 {
		t.Fatalf("8 rings bias %g vs 1 ring %g", b8, b1)
	}
}

func TestFilledUrnsAllAtSlowSampling(t *testing.T) {
	// f0/fs = 1000 periods per sample: every ring has edges in every
	// interval.
	g, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if u := g.FilledUrns(); u != 4 {
			t.Fatalf("urns = %d, want 4", u)
		}
	}
}

func TestFilledUrnsPartialAtFastSampling(t *testing.T) {
	c := baseConfig()
	// Sampling interval of 0.625 periods: some intervals contain no
	// rising edge, leaving urns unfilled (Sunar's fast-sampler case).
	c.SampleRate = c.Model.F0 * 1.6
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for i := 0; i < 2000 && !sawPartial; i++ {
		if g.FilledUrns() < 4 {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("fast sampling never left an urn unfilled")
	}
}

func TestSunarBiasPilingUp(t *testing.T) {
	per := SunarBias(0.05, 1)
	two := SunarBias(0.05, 2)
	if math.Abs(two-2*per*per) > 1e-15 {
		t.Fatalf("piling-up broken: %g vs %g", two, 2*per*per)
	}
	// Monotone in sigma.
	if SunarBias(0.3, 1) >= SunarBias(0.1, 1) {
		t.Fatal("bias should fall with diffusion")
	}
}

func TestAssessOrdering(t *testing.T) {
	c := baseConfig()
	// Use the paper model (with flicker) for the assessment.
	const f0 = 103e6
	c.Model = phase.Model{
		Bth: 5.36e-6 * f0 / 4,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (16 * math.Ln2),
		F0:  f0,
	}
	a, err := Assess(c, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if a.SigmaNaive <= a.SigmaRefined {
		t.Fatalf("naive σ %g should exceed refined %g", a.SigmaNaive, a.SigmaRefined)
	}
	if a.BiasNaive > a.BiasRefined {
		t.Fatalf("naive bias %g should be BELOW refined %g (overclaimed diffusion)", a.BiasNaive, a.BiasRefined)
	}
	if a.EntropyNaive < a.EntropyRefined {
		t.Fatal("naive entropy should be the optimistic one")
	}
	if _, err := Assess(c, 0); err == nil {
		t.Fatal("nMeas=0 accepted")
	}
}

func TestEmpiricalBiasSmallWithManyRings(t *testing.T) {
	g, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b := math.Abs(g.EmpiricalBias(20000)); b > 0.03 {
		t.Fatalf("bias = %g with 4 rings at slow sampling", b)
	}
}

func TestLagCorrelationModest(t *testing.T) {
	g, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r := math.Abs(g.LagCorrelation(20000)); r > 0.05 {
		t.Fatalf("lag-1 correlation = %g at slow sampling", r)
	}
}

func TestReadMatchesBits(t *testing.T) {
	// Read packs the NextBit stream 8 bits per byte, MSB-first, and
	// composes with io helpers; chunking must not change the stream.
	cfg := baseConfig()
	cfg.Seed = 9
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := postproc.Pack(a.Bits(8 * 48))
	got := make([]byte, 48)
	if _, err := io.ReadFull(b, got[:7]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, got[7:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Read stream diverges from packed Bits")
	}
}

func TestBitsParallelDeterminism(t *testing.T) {
	// Each ring replica runs as one engine task; the XOR-reduced
	// output must be bit-identical to the sequential path and across
	// worker-pool widths.
	cfg := Config{
		Model:          phase.Model{Bth: 300, Bfl: 1e-4, F0: 100e6},
		Rings:          6,
		SampleRate:     1e6,
		RelativeSpread: 0.01,
		Seed:           42,
	}
	const n = 4000
	gSeq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := gSeq.Bits(n)
	wantTick := gSeq.tick
	wantNext := gSeq.NextBit()
	for _, jobs := range []int{1, 2, 8} {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.BitsParallel(context.Background(), n, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("jobs=%d: parallel bits differ from sequential", jobs)
		}
		if g.tick != wantTick {
			t.Fatalf("jobs=%d: tick %d, want %d", jobs, g.tick, wantTick)
		}
		// The generator must keep producing the same continuation.
		if g.NextBit() != wantNext {
			t.Fatalf("jobs=%d: stream continuation diverged", jobs)
		}
	}
}

// TestLeapfrogBitsDeterministicAndBalanced exercises the per-replica
// stride fast path: with a long stride (slow sampling of fast rings,
// the regime where the closed-form jump engages) the output must stay
// deterministic in the seed, invariant to how reads are grouped, and
// statistically balanced.
func TestLeapfrogBitsDeterministicAndBalanced(t *testing.T) {
	cfg := Config{
		Model:          phase.Model{Bth: 138, Bfl: 2.6e-2, F0: 103e6},
		Rings:          4,
		SampleRate:     103e6 / 20000, // 20000-period stride per sample
		RelativeSpread: 2e-3,
		Seed:           9,
		Leapfrog:       true,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	want := a.Bits(n)
	var got []byte
	for _, chunk := range []int{1, 13, 500, n} {
		if len(got)+chunk > n {
			chunk = n - len(got)
		}
		got = append(got, b.Bits(chunk)...)
	}
	ones := 0
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("bit %d differs between read chunkings", i)
		}
		if want[i] > 1 {
			t.Fatalf("bit %d = %d not binary", i, want[i])
		}
		ones += int(want[i])
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 5*0.5/math.Sqrt(n) {
		t.Fatalf("ones fraction %g", frac)
	}
}

// TestLeapfrogBitsParallelDeterminism extends the replica fan-out
// determinism contract to the fast path: leapfrog output is
// bit-identical to the sequential path for every worker count.
func TestLeapfrogBitsParallelDeterminism(t *testing.T) {
	cfg := Config{
		Model:          phase.Model{Bth: 138, Bfl: 2.6e-2, F0: 103e6},
		Rings:          6,
		SampleRate:     103e6 / 10000,
		RelativeSpread: 2e-3,
		Seed:           11,
		Leapfrog:       true,
	}
	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	want := seq.Bits(n)
	for _, jobs := range []int{1, 4} {
		g, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.BitsParallel(context.Background(), n, jobs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("jobs=%d: bit %d differs from sequential leapfrog", jobs, i)
			}
		}
	}
}
