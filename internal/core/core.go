// Package core is the top of the multilevel stochastic modeling stack —
// the paper's primary contribution (Fig. 3): instead of assuming
// high-level properties of the raw random analog signal (such as mutual
// independence of jitter realizations), the model is BUILT from
// transistor-level noise physics and propagated upward:
//
//	transistor noise PSDs (internal/phys)
//	    → ISF conversion to phase noise (internal/isf, internal/device)
//	    → σ²_N law and independence analysis (internal/phase)
//	    → jitter/counter measurement plane (internal/osc, internal/measure)
//	    → thermal-jitter extraction (internal/fitting)
//	    → entropy assessment and online test (internal/entropy,
//	      internal/onlinetest)
//
// A Model can be constructed three ways, mirroring the paper:
//
//   - FromDevice: pure bottom-up prediction from transistor parameters;
//   - FromPhase: directly from known (b_th, b_fl, f0) coefficients
//     (e.g. PaperModel, the paper's measured values);
//   - Measure: top-down extraction from counter data via the quadratic
//     fit of §IV — the paper's cheap embedded measurement method.
package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/device"
	"repro/internal/entropy"
	"repro/internal/fitting"
	"repro/internal/jitter"
	"repro/internal/measure"
	"repro/internal/onlinetest"
	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/phys"
	"repro/internal/trng"
)

// Model is the calibrated multilevel stochastic model of one ring
// oscillator used as a P-TRNG entropy source.
type Model struct {
	// Phase holds the oscillator phase-noise coefficients.
	Phase phase.Model
	// Budget, when the model was derived bottom-up, records the
	// transistor-level analysis; nil for fitted or direct models.
	Budget *device.NoiseBudget
	// Fit, when the model was extracted from measurements, records
	// the fit; nil otherwise.
	Fit *fitting.Result
}

// FromDevice builds the model bottom-up from ring-oscillator device
// parameters (the multilevel path of Fig. 3).
func FromDevice(ring phys.Ring, opt device.Options) (Model, error) {
	nb, err := device.Analyze(ring, opt)
	if err != nil {
		return Model{}, err
	}
	return Model{
		Phase:  phase.Model{Bth: nb.Bth, Bfl: nb.Bfl, F0: nb.F0},
		Budget: &nb,
	}, nil
}

// FromPhase wraps explicit phase-noise coefficients.
func FromPhase(m phase.Model) (Model, error) {
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return Model{Phase: m}, nil
}

// PaperModel returns the model calibrated to the paper's experimental
// fit: f0 = 103 MHz, b_th = 276.04 Hz, a/b = 5354 (§III-E, §IV-B).
func PaperModel() Model {
	nb := device.PaperBudget()
	return Model{Phase: phase.Model{Bth: nb.Bth, Bfl: nb.Bfl, F0: nb.F0}}
}

// MeasureConfig drives the §IV extraction campaign.
type MeasureConfig struct {
	// Ns is the accumulation-length grid; nil selects a log grid
	// from 8 to 32768 with 6 points per decade (Fig. 7 style).
	Ns []int
	// WindowsPerN is the number of counter windows per grid point
	// (default 2048).
	WindowsPerN int
	// Subdivide is the counter's sub-period (TDC) resolution;
	// default 256 (a 38 ps carry-chain TDC at 103 MHz). 1 models the
	// plain single-edge counter of Fig. 6, whose quantization floor
	// buries the small-N region (see
	// internal/measure package docs).
	Subdivide int
}

// Measure runs the complete §IV method against a live oscillator pair:
// counter sweep over N, weighted quadratic fit with a quantization
// offset term, thermal extraction. The returned Model carries the fit
// details.
func Measure(pair *osc.Pair, cfg MeasureConfig) (Model, []jitter.VarianceEstimate, error) {
	ns := cfg.Ns
	if ns == nil {
		ns = jitter.LogSpacedNs(8, 32768, 6)
	}
	w := cfg.WindowsPerN
	if w == 0 {
		w = 2048
	}
	sub := cfg.Subdivide
	if sub == 0 {
		sub = 256
	}
	sweep, err := measure.Sweep(pair, measure.SweepConfig{Ns: ns, WindowsPerN: w, Subdivide: sub})
	if err != nil {
		return Model{}, nil, err
	}
	fit, err := fitting.FitWithOffset(sweep, pair.Osc1.F0())
	if err != nil {
		return Model{}, nil, err
	}
	return Model{Phase: fit.Model, Fit: &fit}, sweep, nil
}

// SimulatePair constructs a pair of independent oscillators, EACH
// following this model, ready for measurement or TRNG experiments. The
// pair's relative jitter then has doubled coefficients
// (see RelativeModel).
func (m Model) SimulatePair(seed uint64) (*osc.Pair, error) {
	return osc.NewPair(m.Phase, 0, osc.Options{Seed: seed})
}

// PerRing returns the single-ring model whose two-ring relative jitter
// equals this model: coefficients halve. Use it when this Model came
// from a differential measurement (PaperModel, Measure) and you want to
// simulate the individual rings behind it.
func (m Model) PerRing() Model {
	half := m.Phase
	half.Bth /= 2
	half.Bfl /= 2
	return Model{Phase: half}
}

// RingPair constructs a pair of rings whose RELATIVE jitter follows
// this model (each ring gets half the coefficients). This is the right
// constructor for reproducing the paper's differential measurements:
// PaperModel().RingPair(seed) yields a pair whose counter sweep fits
// back to the paper's constants.
//
// The rings carry a 0.2 % frequency mismatch, as nominally identical
// FPGA rings do (process variation). Besides realism, the mismatch
// dithers the counter's boundary phase so its quantization error is an
// additive constant that the offset-aware fit removes; perfectly
// matched rings would leave the small-N points in a correlated
// quantization regime that biases the thermal slope.
func (m Model) RingPair(seed uint64) (*osc.Pair, error) {
	return osc.NewPair(m.PerRing().Phase, 2e-3, osc.Options{Seed: seed})
}

// NewTRNG builds an eRO-TRNG whose both rings follow this model.
func (m Model) NewTRNG(divider int, seed uint64) (*trng.Generator, error) {
	return trng.New(trng.Config{Model: m.Phase, Divider: divider, Seed: seed})
}

// ScaleJitter returns the model with both noise amplitudes multiplied
// by amp (variances, i.e. b_th and b_fl, scale by amp²). Because the
// thermal and flicker coefficients scale together, every RATIO the
// paper's analysis rests on — r_N, the a/b corner, N*(95%) — is
// preserved exactly; only the absolute jitter magnitude changes. The
// serving demos use it to model a hypothetical high-jitter technology
// whose TRNG reaches full entropy at computationally convenient
// sampling dividers (the paper's own operating point needs K ≈ 10⁵
// periods per bit, which a simulation serves at only a few hundred
// bits per second).
//
// The returned model deliberately carries no Budget or Fit
// provenance: a device budget or measurement fit calibrated at the
// original amplitude does not describe the scaled model.
func (m Model) ScaleJitter(amp float64) Model {
	s := m.Phase
	s.Bth *= amp * amp
	s.Bfl *= amp * amp
	return Model{Phase: s}
}

// RelativeModel returns the phase model of the relative jitter between
// two independent rings following this model (coefficients double).
func (m Model) RelativeModel() phase.Model {
	return phase.Model{Bth: 2 * m.Phase.Bth, Bfl: 2 * m.Phase.Bfl, F0: m.Phase.F0}
}

// SigmaThermal returns the thermal-only period jitter σ (s).
func (m Model) SigmaThermal() float64 { return m.Phase.SigmaThermal() }

// IndependenceThreshold returns the largest N with thermal share
// r_N > rMin (the paper's N < 281 at 95 %).
func (m Model) IndependenceThreshold(rMin float64) (int, bool) {
	return m.Phase.IndependenceThreshold(rMin)
}

// AssessEntropy contrasts naive vs refined entropy for an eRO-TRNG made
// of two rings of this model at sampling divider k, with the naive model
// calibrated from an accumulation measurement at nMeas periods.
func (m Model) AssessEntropy(k, nMeas int) (entropy.Comparison, error) {
	return entropy.Assess(m.RelativeModel(), k, nMeas, 2048)
}

// NewMonitor builds the paper-proposed online thermal monitor for this
// model at accumulation length n with window w samples. The reference is
// the THERMAL σ²_N of the relative jitter (both rings contribute).
func (m Model) NewMonitor(n, w int) (*onlinetest.Monitor, error) {
	rel := m.RelativeModel()
	return onlinetest.New(onlinetest.Config{
		N:          n,
		Window:     w,
		RefSigmaN2: rel.SigmaN2Thermal(n),
	})
}

// Report renders a human-readable model summary in the shape of the
// paper's §IV-B result paragraph.
func (m Model) Report() string {
	var b strings.Builder
	p := m.Phase
	fmt.Fprintf(&b, "multilevel P-TRNG stochastic model\n")
	fmt.Fprintf(&b, "  f0          = %.4g MHz\n", p.F0/1e6)
	fmt.Fprintf(&b, "  b_th        = %.6g Hz\n", p.Bth)
	fmt.Fprintf(&b, "  b_fl        = %.6g Hz^2\n", p.Bfl)
	a, bb := p.FitCoefficients()
	fmt.Fprintf(&b, "  fit law     : f0^2*sigma_N^2 = %.4g*N + %.4g*N^2\n", a, bb)
	fmt.Fprintf(&b, "  sigma(th)   = %.4g ps\n", p.SigmaThermal()*1e12)
	fmt.Fprintf(&b, "  sigma/T0    = %.4g permil\n", p.PeriodJitterRatio()*1e3)
	if p.Bfl > 0 {
		fmt.Fprintf(&b, "  a/b corner  = %.4g periods\n", p.CornerN())
		if n, ok := p.IndependenceThreshold(0.95); ok {
			fmt.Fprintf(&b, "  N*(95%%)     = %d (jitter ~independent below)\n", n)
		}
	} else {
		fmt.Fprintf(&b, "  flicker-free: sigma_N^2 linear in N at all N\n")
	}
	if m.Budget != nil {
		fmt.Fprintf(&b, "  device      : Gamma_rms=%.4g c0=%.4g qmax=%.4g C\n",
			m.Budget.GammaRMS, m.Budget.C0, m.Budget.QMax)
	}
	if m.Fit != nil {
		fmt.Fprintf(&b, "  fit quality : chi2/dof = %.3g (dof=%d)\n",
			m.Fit.ChiSq/math.Max(float64(m.Fit.DoF), 1), m.Fit.DoF)
	}
	return b.String()
}
