package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/phase"
	"repro/internal/phys"
)

func TestPaperModelConstants(t *testing.T) {
	m := PaperModel()
	if math.Abs(m.Phase.Bth-276.04) > 0.01 {
		t.Fatalf("Bth = %g", m.Phase.Bth)
	}
	if math.Abs(m.SigmaThermal()-15.89e-12) > 0.05e-12 {
		t.Fatalf("σ = %g ps", m.SigmaThermal()*1e12)
	}
	n, ok := m.IndependenceThreshold(0.95)
	if !ok || n != 281 {
		t.Fatalf("N*(95%%) = %d ok=%v, want 281", n, ok)
	}
}

func TestFromDevice(t *testing.T) {
	m, err := FromDevice(phys.DefaultRing(), device.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Budget == nil {
		t.Fatal("budget missing")
	}
	if m.Phase.Bth <= 0 || m.Phase.Bfl <= 0 {
		t.Fatalf("coefficients: %+v", m.Phase)
	}
	bad := phys.DefaultRing()
	bad.Stages = 2
	if _, err := FromDevice(bad, device.Options{}); err == nil {
		t.Fatal("bad ring accepted")
	}
}

func TestFromPhase(t *testing.T) {
	if _, err := FromPhase(phase.Model{F0: 0}); err == nil {
		t.Fatal("invalid phase model accepted")
	}
	m, err := FromPhase(phase.Model{Bth: 100, Bfl: 1e5, F0: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Budget != nil || m.Fit != nil {
		t.Fatal("direct model should have no budget or fit")
	}
}

func TestPerRingHalves(t *testing.T) {
	m := PaperModel()
	half := m.PerRing()
	if math.Abs(half.Phase.Bth*2-m.Phase.Bth) > 1e-9 {
		t.Fatalf("PerRing Bth = %g", half.Phase.Bth)
	}
	if math.Abs(half.Phase.Bfl*2-m.Phase.Bfl) > 1e-9 {
		t.Fatalf("PerRing Bfl = %g", half.Phase.Bfl)
	}
}

func TestRingPairRelativeMatchesModel(t *testing.T) {
	m := PaperModel()
	pair, err := m.RingPair(1)
	if err != nil {
		t.Fatal(err)
	}
	rel := pair.RelativeModel()
	if math.Abs(rel.Bth-m.Phase.Bth) > 1e-9*m.Phase.Bth {
		t.Fatalf("relative Bth = %g, want %g", rel.Bth, m.Phase.Bth)
	}
}

func TestMeasureRecoversPaperConstants(t *testing.T) {
	// The §IV end-to-end method: simulate the paper's pair, run the
	// counter campaign, fit, and compare with the calibration. This
	// is the headline integration test (EXP-F7 + EXP-TH in miniature).
	if testing.Short() {
		t.Skip("long integration test")
	}
	m := PaperModel()
	pair, err := m.RingPair(7)
	if err != nil {
		t.Fatal(err)
	}
	got, sweep, err := Measure(pair, MeasureConfig{
		Ns:          []int{16, 48, 128, 512, 2048, 8192, 24576},
		WindowsPerN: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 7 {
		t.Fatalf("%d sweep points", len(sweep))
	}
	if got.Fit == nil {
		t.Fatal("fit missing")
	}
	if math.Abs(got.Fit.A-5.36e-6) > 0.15*5.36e-6 {
		t.Fatalf("recovered a = %g, want 5.36e-6 ±15%%", got.Fit.A)
	}
	if math.Abs(got.SigmaThermal()-15.89e-12) > 1.5e-12 {
		t.Fatalf("recovered σ = %g ps, want ≈15.89", got.SigmaThermal()*1e12)
	}
	if got.Fit.CornerN < 2500 || got.Fit.CornerN > 11000 {
		t.Fatalf("recovered a/b = %g, want ≈5354", got.Fit.CornerN)
	}
}

func TestNewTRNGAndMonitor(t *testing.T) {
	m := PaperModel()
	g, err := m.NewTRNG(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(100)
	if len(bits) != 100 {
		t.Fatal("TRNG bit count")
	}
	mon, err := m.NewMonitor(64, 128)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := mon.Bounds()
	if !(lo > 0 && lo < hi) {
		t.Fatalf("monitor bounds (%g, %g)", lo, hi)
	}
}

func TestAssessEntropyOrdering(t *testing.T) {
	m := PaperModel()
	c, err := m.AssessEntropy(1000, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if c.HNaive < c.HRefined {
		t.Fatalf("naive %g < refined %g", c.HNaive, c.HRefined)
	}
	if c.Overestimate <= 0 {
		t.Fatalf("no overestimate with flicker present: %+v", c)
	}
}

func TestReportContents(t *testing.T) {
	m := PaperModel()
	rep := m.Report()
	for _, want := range []string{"103", "276.04", "15.89", "5354", "281"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// Device-derived model mentions ISF stats.
	dm, err := FromDevice(phys.DefaultRing(), device.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dm.Report(), "Gamma_rms") {
		t.Fatal("device report missing ISF block")
	}
	// Flicker-free model reports linear law.
	fm, err := FromPhase(phase.Model{Bth: 100, F0: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fm.Report(), "flicker-free") {
		t.Fatal("flicker-free report wrong")
	}
}

func TestRelativeModelDoubles(t *testing.T) {
	m := PaperModel()
	rel := m.RelativeModel()
	if rel.Bth != 2*m.Phase.Bth || rel.Bfl != 2*m.Phase.Bfl {
		t.Fatalf("relative model %+v", rel)
	}
}
