// Package obs is the observability spine of the serving stack: a
// lock-light, fixed-capacity flight recorder (Journal) of typed events
// covering shard lifecycle, DRBG lane activity, seed draws and daemon
// incidents, plus the derived observables the snapshots and monotonic
// counters of the other layers cannot express — most importantly
// DETECTION LATENCY, the time from an injected degradation (an
// injection-marker event) to the quarantine that caught it, measured
// per alarm class.
//
// # Event vocabulary
//
// Every event carries a journal-assigned monotonic sequence number, a
// wall-clock timestamp, the shard and/or DRBG lane it describes (-1
// when not applicable) and a small reason/value payload:
//
//   - shard lifecycle: startup-pass, startup-fail, alarm (with the
//     triggering statistic in Value: the tot run length, the thermal
//     monitor's windowed variance, or the assessed min-entropy),
//     live-watermark (the streaming surveillance bound crossed its low
//     watermark mid-window; Value = the live suite minimum), quarantine
//     (with the reason and drained byte count), recalibrate, heal;
//   - DRBG lanes: drbg-instantiate, drbg-reseed, drbg-reseed-fail,
//     drbg-fail-closed, drbg-drain (Value = blocks discarded unserved);
//   - seed source: seed-draw (Value = vetted output-entropy credit in
//     bits, Shard/Epoch = the tap that supplied the raw material);
//   - daemon: request-shed (bounded queue full), starvation-abort
//     (a request failed or was truncated on pool starvation), shutdown
//     (graceful stop began: the daemon stops accepting and drains);
//   - drills: injection-marker, emitted by attack drills and the
//     operator /quarantine endpoint at the moment a degradation is
//     injected. The journal pairs each shard's most recent marker with
//     that shard's next quarantine event and records the elapsed time
//     in a per-alarm-class latency histogram (DetectionLatencies) —
//     the measured version of the paper's §V detection argument.
//
// # Journal semantics
//
// The journal is a power-of-two ring of slots. Emission reserves a
// sequence number with one atomic add and stamps the slot under a
// per-slot mutex — no global lock, no allocation — so producers on the
// serving hot path never contend with each other or with readers
// except on the same slot. The ring keeps the most recent Capacity
// events: older events are overwritten, never blocked on. Readers page
// forward with a cursor (Query.Since); Read reports the cursor gap —
// the events lost to overwrite before the reader got to them — as an
// explicit Page.Dropped count.
//
// Emission is passive by construction: sinks observe state transitions
// and never feed back into generation, so enabling or disabling a sink
// cannot change any served byte stream (pinned by the entropyd tests).
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadstat"
)

// Type classifies a journal event. The string form is the wire
// vocabulary: /events JSON, structured log lines and metric labels all
// use these exact values.
type Type string

// The event vocabulary.
const (
	// TypeStartupPass: a shard passed its AIS31 startup test and was
	// admitted for the epoch.
	TypeStartupPass Type = "startup-pass"
	// TypeStartupFail: the startup test failed statistically (Value =
	// failed sub-test count, Detail = their names).
	TypeStartupFail Type = "startup-fail"
	// TypeAlarm: an embedded test alarmed. Reason is the alarm class
	// (tot, thermal-low, thermal-high, low-entropy) and Value the
	// triggering statistic.
	TypeAlarm Type = "alarm"
	// TypeQuarantine: the shard left service. Reason is the quarantine
	// reason, Value the ring bytes drained unserved.
	TypeQuarantine Type = "quarantine"
	// TypeRecalibrate: a recalibration attempt began (Epoch is the new
	// epoch).
	TypeRecalibrate Type = "recalibrate"
	// TypeHeal: a recalibration succeeded and the shard rejoined.
	TypeHeal Type = "heal"
	// TypeDRBGInstantiate: a DRBG lane instantiated from fresh seed
	// material.
	TypeDRBGInstantiate Type = "drbg-instantiate"
	// TypeDRBGReseed: a lane reseeded (interval or prediction
	// resistance).
	TypeDRBGReseed Type = "drbg-reseed"
	// TypeDRBGReseedFail: a seeding attempt failed; the lane produced
	// nothing this turn (Reason = the failure).
	TypeDRBGReseedFail Type = "drbg-reseed-fail"
	// TypeDRBGFailClosed: every lane failed in one rotation — the
	// expansion layer refused the request (Value = bytes served before
	// failing).
	TypeDRBGFailClosed Type = "drbg-fail-closed"
	// TypeDRBGDrain: a shard quarantine discarded the lane's queued
	// pre-generated blocks unserved (Value = block count).
	TypeDRBGDrain Type = "drbg-drain"
	// TypeSeedDraw: the seed source emitted one conditioned block
	// (Shard/Epoch = the supplying tap, Value = vetted output-entropy
	// credit in bits).
	TypeSeedDraw Type = "seed-draw"
	// TypeRequestShed: the daemon's bounded queue rejected a request.
	TypeRequestShed Type = "request-shed"
	// TypeStarveAbort: a request failed or was truncated mid-stream on
	// pool starvation.
	TypeStarveAbort Type = "starvation-abort"
	// TypeShutdown: the daemon began a graceful shutdown (Detail =
	// the trigger; Value = the drain deadline in seconds). In-flight
	// requests drain before the process exits, so this is normally the
	// journal's final event.
	TypeShutdown Type = "shutdown"
	// TypeInjectionMarker: a drill injected a degradation into a shard
	// (operator /quarantine endpoint, attack experiments). Paired with
	// the shard's next quarantine event for detection latency.
	TypeInjectionMarker Type = "injection-marker"
	// TypeLiveWatermark: a shard's streaming-surveillance live
	// min-entropy crossed its low watermark MID-window (Value = the
	// live suite minimum, Detail = the sliding window size). Emitted at
	// the crossing site, immediately ahead of the live-low-entropy
	// alarm and quarantine it raises.
	TypeLiveWatermark Type = "live-watermark"
)

// Event is one journal entry. Seq and At are assigned by the journal
// at emission (a caller-provided non-zero At is kept, for replay).
type Event struct {
	// Seq is the monotonic sequence number, 1 for the first event.
	Seq uint64 `json:"seq"`
	// At is the wall-clock emission time.
	At time.Time `json:"at"`
	// Type is the event class.
	Type Type `json:"type"`
	// Shard is the shard index the event describes, -1 when the event
	// is not shard-scoped.
	Shard int `json:"shard"`
	// Lane is the DRBG lane index, -1 when not lane-scoped.
	Lane int `json:"lane"`
	// Epoch is the shard calibration epoch the event belongs to.
	Epoch int64 `json:"epoch,omitempty"`
	// Reason is the alarm class / quarantine reason / failure text.
	Reason string `json:"reason,omitempty"`
	// Value is the event's scalar payload (triggering statistic,
	// drained bytes/blocks, credited entropy bits).
	Value float64 `json:"value,omitempty"`
	// Detail is a short free-form annotation.
	Detail string `json:"detail,omitempty"`
}

// Sink receives emitted events. Implementations must be safe for
// concurrent use and must never block for long or feed back into the
// emitting layer: emission sits on serving paths.
type Sink interface {
	Emit(Event)
}

// Emit sends e to s when s is non-nil — the nil-safe emission helper
// for layers that hold an optional sink.
func Emit(s Sink, e Event) {
	if s != nil {
		s.Emit(e)
	}
}

// multiSink fans one emission out to several sinks.
type multiSink []Sink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi composes sinks into one; nil elements are skipped. It returns
// nil when no live sink remains and the single sink unwrapped when
// exactly one does, so callers can wire optional sinks without
// paying for an empty fan-out.
func Multi(sinks ...Sink) Sink {
	var live multiSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// slot is one ring cell. The mutex protects only the copy-in/copy-out
// of the event value (a few dozen words); writers touch a slot once
// per Capacity emissions each.
type slot struct {
	mu sync.Mutex
	ev Event
}

// DefaultCapacity is the journal size used when a caller passes 0.
const DefaultCapacity = 4096

// Journal is the flight recorder: a fixed-capacity ring of the most
// recent events plus the detection-latency pairing state. Safe for
// any number of concurrent emitters and readers.
type Journal struct {
	slots []slot
	mask  uint64
	seq   atomic.Uint64 // last assigned sequence number

	// Detection-latency pairing (cold path: touched only on
	// injection-marker and quarantine events).
	pairMu  sync.Mutex
	pending map[int]time.Time              // shard -> latest marker time
	lat     map[string]*loadstat.Histogram // alarm class -> latency
}

// NewJournal builds a journal holding the most recent capacity events
// (rounded up to a power of two; 0 means DefaultCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Journal{
		slots:   make([]slot, n),
		mask:    uint64(n - 1),
		pending: make(map[int]time.Time),
		lat:     make(map[string]*loadstat.Histogram),
	}
}

// Capacity returns the ring size.
func (j *Journal) Capacity() int { return len(j.slots) }

// LastSeq returns the latest assigned sequence number (= total events
// ever emitted); 0 before the first event. It is the /events cursor a
// reader starts from to receive only future events.
func (j *Journal) LastSeq() uint64 { return j.seq.Load() }

// Emit records the event: one atomic add to reserve the sequence
// number, one per-slot critical section to stamp it.
func (j *Journal) Emit(e Event) {
	if e.At.IsZero() {
		e.At = time.Now()
	}
	seq := j.seq.Add(1)
	e.Seq = seq
	sl := &j.slots[(seq-1)&j.mask]
	sl.mu.Lock()
	sl.ev = e
	sl.mu.Unlock()
	switch e.Type {
	case TypeInjectionMarker:
		j.pairMu.Lock()
		j.pending[e.Shard] = e.At
		j.pairMu.Unlock()
	case TypeQuarantine:
		j.pairMu.Lock()
		if t0, ok := j.pending[e.Shard]; ok {
			delete(j.pending, e.Shard)
			h := j.lat[e.Reason]
			if h == nil {
				h = loadstat.New()
				j.lat[e.Reason] = h
			}
			h.Record(e.At.Sub(t0))
		}
		j.pairMu.Unlock()
	}
}

// Any matches every shard or lane in a Query.
const Any = -1

// Query selects journal events. The zero value matches only shard 0 /
// lane 0 — build from NewQuery for a match-all baseline.
type Query struct {
	// Since is the reader's cursor: only events with Seq > Since are
	// returned. 0 reads from the oldest retained event.
	Since uint64
	// Shard filters by shard index; Any (-1) matches all.
	Shard int
	// Lane filters by DRBG lane index; Any (-1) matches all.
	Lane int
	// Type filters by event class; empty matches all.
	Type Type
	// Max caps the returned events (oldest first, so readers page
	// forward by advancing Since); <= 0 means the journal capacity.
	Max int
}

// NewQuery returns the match-all query: every shard, lane and type,
// from the oldest retained event.
func NewQuery() Query { return Query{Shard: Any, Lane: Any} }

// Page is one cursor read of the journal: the matching events, the
// caller's next cursor, and how many events the ring overwrote before
// the reader got to them.
type Page struct {
	// Events holds the matching events in ascending sequence order.
	Events []Event
	// LastSeq is the journal's last assigned sequence number at scan
	// time — the caller's next baseline cursor even when no event
	// matched.
	LastSeq uint64
	// Dropped counts the events between the reader's cursor and the
	// oldest sequence number still retained: history the flight
	// recorder lost to overwrite before this read. A reader paging
	// from cursor 0 on a wrapped journal sees the full backlog it
	// never observed.
	Dropped uint64
}

// Events returns matching events plus the journal's current last
// sequence number. Events emitted concurrently with the scan may be
// missing from this page; they are picked up by the next one. Use
// Read to additionally learn how many events were lost to overwrite.
func (j *Journal) Events(q Query) ([]Event, uint64) {
	p := j.Read(q)
	return p.Events, p.LastSeq
}

// Read returns one page of matching events along with the cursor gap:
// the count of events overwritten between the reader's cursor and the
// oldest retained sequence number.
func (j *Journal) Read(q Query) Page {
	hi := j.seq.Load()
	capacity := uint64(len(j.slots))
	lo := q.Since + 1
	var dropped uint64
	if hi >= capacity && lo < hi-capacity+1 {
		dropped = hi - capacity + 1 - lo
		lo = hi - capacity + 1
	}
	max := q.Max
	if max <= 0 || max > len(j.slots) {
		max = len(j.slots)
	}
	var out []Event
	for s := lo; s <= hi && len(out) < max; s++ {
		sl := &j.slots[(s-1)&j.mask]
		sl.mu.Lock()
		ev := sl.ev
		sl.mu.Unlock()
		if ev.Seq != s {
			continue // overwritten mid-scan, or emission not yet stamped
		}
		if q.Shard != Any && ev.Shard != q.Shard {
			continue
		}
		if q.Lane != Any && ev.Lane != q.Lane {
			continue
		}
		if q.Type != "" && ev.Type != q.Type {
			continue
		}
		out = append(out, ev)
	}
	return Page{Events: out, LastSeq: hi, Dropped: dropped}
}

// DetectionLatencies snapshots the per-alarm-class detection-latency
// histograms: one histogram per quarantine reason that has closed at
// least one injection-marker → quarantine pair. The map key is the
// quarantine reason string (the alarm class).
func (j *Journal) DetectionLatencies() map[string]*loadstat.Snapshot {
	j.pairMu.Lock()
	defer j.pairMu.Unlock()
	out := make(map[string]*loadstat.Snapshot, len(j.lat))
	for class, h := range j.lat {
		out[class] = h.Snapshot()
	}
	return out
}
