package incident

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

var base = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func ev(t obs.Type, shard int, at time.Time, reason string) obs.Event {
	return obs.Event{Type: t, Shard: shard, At: at, Reason: reason}
}

// quarCycle plays one full alarm→quarantine→recalibrate→heal cycle on
// a shard, with the heal landing dur after the opening alarm.
func quarCycle(e *Engine, shard int, at time.Time, dur time.Duration) {
	e.Emit(ev(obs.TypeAlarm, shard, at, "tot"))
	e.Emit(ev(obs.TypeQuarantine, shard, at, "tot"))
	e.Emit(ev(obs.TypeRecalibrate, shard, at.Add(dur/2), ""))
	e.Emit(ev(obs.TypeHeal, shard, at.Add(dur), ""))
}

// Two shards alarming inside the correlation window are ONE correlated
// incident with blast radius 2.
func TestCorrelatedWithinWindow(t *testing.T) {
	t.Parallel()
	e := New(5 * time.Second)
	e.Emit(ev(obs.TypeAlarm, 0, base, "tot"))
	e.Emit(ev(obs.TypeQuarantine, 0, base, "tot"))
	e.Emit(ev(obs.TypeAlarm, 1, base.Add(2*time.Second), "thermal-low"))
	e.Emit(ev(obs.TypeQuarantine, 1, base.Add(2*time.Second), "thermal-low"))

	incs, last := e.Incidents(0)
	if last != 1 || len(incs) != 1 {
		t.Fatalf("want one incident, got last=%d incs=%+v", last, incs)
	}
	in := incs[0]
	if in.Class != ClassCorrelated || in.BlastRadius != 2 || in.Resolved {
		t.Fatalf("classification: %+v", in)
	}
	if len(in.Shards) != 2 || in.Shards[0].Shard != 0 || in.Shards[1].Shard != 1 {
		t.Fatalf("timelines: %+v", in.Shards)
	}
	if in.Shards[1].AlarmReason != "thermal-low" {
		t.Fatalf("alarm reason: %+v", in.Shards[1])
	}
	st := e.Stats()
	if st.Open != 1 || st.OpenByClass[ClassCorrelated] != 1 ||
		st.Totals[ClassCorrelated] != 1 || st.Totals[ClassSingleShard] != 0 {
		t.Fatalf("stats: %+v", st)
	}

	// Healing both shards resolves the incident and records MTTR.
	e.Emit(ev(obs.TypeRecalibrate, 0, base.Add(10*time.Second), ""))
	e.Emit(ev(obs.TypeHeal, 0, base.Add(12*time.Second), ""))
	e.Emit(ev(obs.TypeHeal, 1, base.Add(13*time.Second), ""))
	incs, _ = e.Incidents(0)
	if len(incs) != 1 || !incs[0].Resolved {
		t.Fatalf("not resolved: %+v", incs)
	}
	if got := incs[0].MTTRSeconds; got != 13 {
		t.Fatalf("MTTR %v, want 13s", got)
	}
	if incs[0].Shards[0].Recalibrate.IsZero() || incs[0].Shards[0].Heal.IsZero() {
		t.Fatalf("timeline milestones missing: %+v", incs[0].Shards[0])
	}
	st = e.Stats()
	if st.Open != 0 || st.BlastCount != 1 || st.BlastSum != 2 {
		t.Fatalf("post-resolve stats: %+v", st)
	}
	if s := st.MTTR[ClassCorrelated]; s == nil || s.Count() != 1 {
		t.Fatalf("MTTR histogram: %+v", st.MTTR)
	}
	// Final radius 2 lands in the le=2 bucket.
	if st.BlastBuckets[1] != 1 {
		t.Fatalf("blast buckets: %v", st.BlastBuckets)
	}
}

// The same two shards alarming OUTSIDE the window are two independent
// single-shard incidents.
func TestSingleShardOutsideWindow(t *testing.T) {
	t.Parallel()
	e := New(5 * time.Second)
	e.Emit(ev(obs.TypeAlarm, 0, base, "tot"))
	e.Emit(ev(obs.TypeQuarantine, 0, base, "tot"))
	e.Emit(ev(obs.TypeAlarm, 1, base.Add(10*time.Second), "tot"))
	e.Emit(ev(obs.TypeQuarantine, 1, base.Add(10*time.Second), "tot"))

	incs, last := e.Incidents(0)
	if last != 2 || len(incs) != 2 {
		t.Fatalf("want two incidents, got last=%d incs=%+v", last, incs)
	}
	for _, in := range incs {
		if in.Class != ClassSingleShard || in.BlastRadius != 1 {
			t.Fatalf("classification: %+v", in)
		}
	}
	if st := e.Stats(); st.Totals[ClassSingleShard] != 2 || st.Totals[ClassCorrelated] != 0 {
		t.Fatalf("totals: %+v", e.Stats())
	}
}

// A member shard keeps folding events in regardless of the window:
// a persistent attack with failed recalibrations is ONE incident.
func TestMemberFoldsOutsideWindow(t *testing.T) {
	t.Parallel()
	e := New(5 * time.Second)
	e.Emit(ev(obs.TypeAlarm, 0, base, "low-entropy"))
	e.Emit(ev(obs.TypeQuarantine, 0, base, "low-entropy"))
	// A minute later — far outside the window — the recalibration gate
	// fails and the shard re-quarantines. Same incident.
	e.Emit(ev(obs.TypeRecalibrate, 0, base.Add(60*time.Second), ""))
	e.Emit(ev(obs.TypeStartupFail, 0, base.Add(61*time.Second), ""))
	e.Emit(ev(obs.TypeQuarantine, 0, base.Add(61*time.Second), "startup"))
	incs, last := e.Incidents(0)
	if last != 1 || len(incs) != 1 || incs[0].Shards[0].Alarms != 4 {
		t.Fatalf("persistent attack split: last=%d incs=%+v", last, incs)
	}
	// Eventually healing resolves it as one long single-shard incident.
	e.Emit(ev(obs.TypeHeal, 0, base.Add(120*time.Second), ""))
	incs, _ = e.Incidents(0)
	if !incs[0].Resolved || incs[0].MTTRSeconds != 120 {
		t.Fatalf("resolution: %+v", incs[0])
	}
}

// A flapping shard yields one incident per quarantine/heal cycle, each
// with its own MTTR — resolved incidents never accept new events.
func TestFlapOneIncidentPerCycle(t *testing.T) {
	t.Parallel()
	e := New(time.Hour) // window far wider than the flap spacing
	for i := 0; i < 3; i++ {
		quarCycle(e, 0, base.Add(time.Duration(i)*10*time.Second), 2*time.Second)
	}
	incs, last := e.Incidents(0)
	if last != 3 || len(incs) != 3 {
		t.Fatalf("want 3 incidents, got last=%d n=%d", last, len(incs))
	}
	for _, in := range incs {
		if !in.Resolved || in.Class != ClassSingleShard || in.MTTRSeconds != 2 {
			t.Fatalf("cycle incident: %+v", in)
		}
	}
	st := e.Stats()
	if s := st.MTTR[ClassSingleShard]; s == nil || s.Count() != 3 {
		t.Fatalf("MTTR records: %+v", st.MTTR)
	}
}

// An injection marker preceding the first alarm stamps the shard's
// detection time and the incident MTTD.
func TestMarkerDetection(t *testing.T) {
	t.Parallel()
	e := New(5 * time.Second)
	e.Emit(ev(obs.TypeInjectionMarker, 0, base, ""))
	e.Emit(ev(obs.TypeAlarm, 0, base.Add(1500*time.Millisecond), "injected"))
	e.Emit(ev(obs.TypeQuarantine, 0, base.Add(1500*time.Millisecond), "injected"))
	incs, _ := e.Incidents(0)
	tl := incs[0].Shards[0]
	if tl.Marker.IsZero() || tl.DetectSeconds != 1.5 || incs[0].MTTDSeconds != 1.5 {
		t.Fatalf("detection: %+v", incs[0])
	}
	e.Emit(ev(obs.TypeHeal, 0, base.Add(4*time.Second), ""))
	st := e.Stats()
	if s := st.MTTD[ClassSingleShard]; s == nil || s.Count() != 1 {
		t.Fatalf("MTTD histogram: %+v", st.MTTD)
	}
}

// The /incidents cursor: resolved incidents page out once, open ones
// reappear until resolution.
func TestIncidentsCursor(t *testing.T) {
	t.Parallel()
	e := New(time.Second)
	quarCycle(e, 0, base, time.Second) // incident 1, resolved
	_, cursor := e.Incidents(0)
	if cursor != 1 {
		t.Fatalf("cursor %d, want 1", cursor)
	}
	// incident 2 opens (and stays open), a minute later.
	e.Emit(ev(obs.TypeAlarm, 1, base.Add(time.Minute), "tot"))
	e.Emit(ev(obs.TypeQuarantine, 1, base.Add(time.Minute), "tot"))
	incs, last := e.Incidents(cursor)
	if last != 2 || len(incs) != 1 || incs[0].ID != 2 || incs[0].Resolved {
		t.Fatalf("paged read: last=%d incs=%+v", last, incs)
	}
	// The open incident reappears on the advanced cursor.
	incs, _ = e.Incidents(last)
	if len(incs) != 1 || incs[0].ID != 2 {
		t.Fatalf("open incident paged out: %+v", incs)
	}
	// Irrelevant event types and unscoped shards are ignored.
	e.Emit(obs.Event{Type: obs.TypeSeedDraw, Shard: 0, At: base})
	e.Emit(obs.Event{Type: obs.TypeAlarm, Shard: -1, At: base})
	if _, last := e.Incidents(0); last != 2 {
		t.Fatalf("ignored events created incidents: last=%d", last)
	}
}

// Writer-storm stress behind a journal fan-out: concurrent emitters
// and readers, then conservation checks — every opened incident is
// accounted for as either open or resolved, and class totals sum to
// the ID counter. Run with -race.
func TestEngineStress(t *testing.T) {
	t.Parallel()
	eng := New(time.Hour)
	j := obs.NewJournal(256)
	sink := obs.Multi(j, eng)

	const writers, perWriter = 8, 400
	types := []obs.Type{
		obs.TypeAlarm, obs.TypeQuarantine, obs.TypeRecalibrate,
		obs.TypeHeal, obs.TypeInjectionMarker, obs.TypeSeedDraw,
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sink.Emit(obs.Event{
					Type:  types[(w+i)%len(types)],
					Shard: (w * 3) % 7,
					At:    base.Add(time.Duration(i) * time.Millisecond),
				})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			incs, _ := e2read(eng)
			for _, in := range incs {
				if in.BlastRadius != len(in.Shards) {
					panic("blast radius out of sync")
				}
			}
			eng.Stats()
		}
	}()
	wg.Wait()
	<-done

	incs, last := eng.Incidents(0)
	st := eng.Stats()
	if st.Totals[ClassSingleShard]+st.Totals[ClassCorrelated] != last {
		t.Fatalf("class totals %v do not sum to lastID %d", st.Totals, last)
	}
	if st.BlastCount+uint64(st.Open) != last {
		t.Fatalf("resolved %d + open %d != opened %d", st.BlastCount, st.Open, last)
	}
	for _, in := range incs {
		if in.ID == 0 || in.ID > last || in.BlastRadius != len(in.Shards) {
			t.Fatalf("torn incident: %+v", in)
		}
	}
}

func e2read(e *Engine) ([]Incident, uint64) { return e.Incidents(0) }
