// Package incident folds the per-shard event stream of the obs
// journal into fleet-level INCIDENT objects: temporally-correlated
// groups of alarms with a measured blast radius, per-shard timelines,
// and derived detection (MTTD) and recovery (MTTR) times. It is the
// layer that turns N simultaneous quarantines on a shared supply rail
// from "N unrelated shard failures" into "one correlated fleet
// incident with blast radius N".
//
// # Clustering rule
//
// The engine consumes events as an obs.Sink (normally wired into the
// same obs.Multi fan-out as the journal) and reacts only to the
// shard-lifecycle subset of the vocabulary: alarm, quarantine,
// startup-fail, live-watermark (the ALARM-CLASS events that drive
// clustering) plus injection-marker, recalibrate and heal (which
// annotate timelines). Every other event type returns before taking
// the engine lock, so the serving hot path pays one type switch.
//
// An alarm-class event on shard S is attached as follows, using the
// event's own timestamp (Event.At) so that offline replay of a journal
// dump reconstructs the identical incidents:
//
//  1. If S is already a member of an open incident, the event folds
//     into that incident REGARDLESS of the correlation window. A
//     persistent attack that keeps a shard alarming through failed
//     recalibrations is one long incident, not many.
//  2. Otherwise, if some open incident saw its last alarm-class event
//     within the correlation window of this one, S joins that incident
//     (newest incident wins when several qualify) and the incident's
//     blast radius grows.
//  3. Otherwise a new incident opens with S as its first member.
//
// Resolved incidents never accept events: a shard that heals and then
// alarms again starts a NEW incident, so a flapping shard yields one
// incident per quarantine/heal cycle, each with its own MTTR.
//
// # Classification and resolution
//
// An incident's class is "single-shard" while it holds one distinct
// shard and becomes "correlated" the moment a second shard joins —
// i.e. when two or more shards raise alarm-class events within one
// correlation window of each other. Blast radius is the count of
// distinct member shards. Totals by class follow the CURRENT class: a
// single-shard→correlated upgrade moves the incident between label
// values (the sum across classes is monotonic, the per-class split is
// a live reclassification).
//
// Each member shard carries a timeline of firsts: injection marker
// (when a drill preceded the alarm) → first alarm → quarantine →
// recalibrate → heal. The marker→first-alarm gap is the shard's
// detection time; the first one computed becomes the incident's MTTD.
// When every member shard has healed the incident resolves: MTTR is
// resolved-at minus opened-at. MTTD and MTTR are recorded into
// per-class loadstat histograms and the final blast radius into a
// small power-of-two-bucket histogram, all exposed via Stats for
// /metrics export.
//
// # The /incidents cursor contract
//
// Incident IDs are assigned monotonically from 1. Incidents(since)
// returns every OPEN incident (always, whatever the cursor — an open
// incident is live state, not history) plus the resolved incidents
// with ID > since retained in a bounded most-recent ring, in ID order,
// together with the last assigned ID. A reader pages forward exactly
// like /events: pass the returned last ID as the next cursor and
// resolved incidents are seen once each, while open incidents reappear
// until they resolve (their Resolved field discriminates).
//
// The engine is strictly passive: it observes emissions and never
// feeds back into generation, so enabling it cannot change any served
// byte — pinned bit-identical by the entropyd observability tests.
package incident
