package incident

import (
	"sort"
	"sync"
	"time"

	"repro/internal/loadstat"
	"repro/internal/obs"
)

// Incident classes. The string values are wire vocabulary: /incidents
// JSON, the attack-matrix report and metric labels all use them.
const (
	// ClassSingleShard: every alarm-class event in the incident came
	// from one shard.
	ClassSingleShard = "single-shard"
	// ClassCorrelated: at least two distinct shards alarmed within one
	// correlation window of each other.
	ClassCorrelated = "correlated"
)

// Classes lists the classification vocabulary in render order, so
// exporters can emit every label value even at count zero.
var Classes = []string{ClassSingleShard, ClassCorrelated}

const (
	// DefaultWindow is the correlation window used when a caller
	// passes 0: alarms on distinct shards closer together than this
	// are one incident.
	DefaultWindow = 5 * time.Second
	// DefaultMaxRecent bounds the resolved-incident history ring.
	DefaultMaxRecent = 256
)

// BlastBounds are the inclusive upper bounds of the blast-radius
// histogram buckets; radii above the last bound land in the +Inf
// overflow bucket.
var BlastBounds = []int{1, 2, 4, 8, 16, 32}

// ShardTimeline is one member shard's milestones inside an incident.
// Only the FIRST occurrence of each milestone is stamped; Alarms
// counts every alarm-class event the shard contributed.
type ShardTimeline struct {
	Shard int `json:"shard"`
	// Marker is the injection-marker that preceded the first alarm,
	// when a drill announced the degradation it injected.
	Marker time.Time `json:"marker,omitzero"`
	// FirstAlarm is the first embedded-test alarm (alarm,
	// live-watermark or startup-fail event).
	FirstAlarm time.Time `json:"first_alarm,omitzero"`
	// AlarmReason is the alarm class of the first alarm.
	AlarmReason string    `json:"alarm_reason,omitempty"`
	Quarantine  time.Time `json:"quarantine,omitzero"`
	Recalibrate time.Time `json:"recalibrate,omitzero"`
	Heal        time.Time `json:"heal,omitzero"`
	// Alarms counts the shard's alarm-class events in this incident.
	Alarms int `json:"alarms"`
	// Healed reports whether the shard's latest quarantine in this
	// incident has healed.
	Healed bool `json:"healed"`
	// DetectSeconds is the marker→first-alarm-class-event gap, when a
	// marker was pending for the shard.
	DetectSeconds float64 `json:"detect_seconds,omitempty"`
}

// Incident is one correlated group of shard alarms.
type Incident struct {
	// ID is the monotonic incident identifier, 1 for the first.
	ID uint64 `json:"id"`
	// Class is ClassSingleShard or ClassCorrelated.
	Class string `json:"class"`
	// OpenedAt is the timestamp of the opening alarm-class event.
	OpenedAt time.Time `json:"opened_at"`
	// LastAlarmAt is the newest alarm-class event folded in — the
	// reference point for the correlation window.
	LastAlarmAt time.Time `json:"last_alarm_at"`
	ResolvedAt  time.Time `json:"resolved_at,omitzero"`
	Resolved    bool      `json:"resolved"`
	// BlastRadius is the count of distinct member shards.
	BlastRadius int `json:"blast_radius"`
	// Events counts every journal event folded into the incident.
	Events int `json:"events"`
	// Shards holds the per-shard timelines in join order.
	Shards []ShardTimeline `json:"shards"`
	// MTTDSeconds is the incident's detection time: the first
	// marker→alarm gap computed among member shards (0 when no drill
	// marker preceded the incident).
	MTTDSeconds float64 `json:"mttd_seconds,omitempty"`
	// MTTRSeconds is resolved-at minus opened-at, set at resolution.
	MTTRSeconds float64 `json:"mttr_seconds,omitempty"`
}

func (in Incident) clone() Incident {
	out := in
	out.Shards = append([]ShardTimeline(nil), in.Shards...)
	return out
}

func (in *Incident) timeline(shard int) *ShardTimeline {
	for i := range in.Shards {
		if in.Shards[i].Shard == shard {
			return &in.Shards[i]
		}
	}
	return nil
}

// Engine is the streaming correlation engine. It implements obs.Sink
// and is safe for any number of concurrent emitters and readers. All
// temporal decisions use the event's own At timestamp, never the wall
// clock, so replaying a journal dump reproduces identical incidents.
type Engine struct {
	window    time.Duration
	maxRecent int

	mu      sync.Mutex
	lastID  uint64
	open    []*Incident       // open incidents in ID order
	members map[int]*Incident // shard -> its open incident
	markers map[int]time.Time // shard -> latest unconsumed marker
	recent  []Incident        // resolved ring, oldest first
	totals  map[string]uint64 // current class -> incidents opened
	mttr    map[string]*loadstat.Histogram
	mttd    map[string]*loadstat.Histogram
	blastN  []uint64 // per BlastBounds bucket + overflow, resolved only
	blastC  uint64
	blastS  uint64 // sum of resolved radii
}

// New builds an engine with the given correlation window (0 means
// DefaultWindow) and the default resolved-history bound.
func New(window time.Duration) *Engine {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Engine{
		window:    window,
		maxRecent: DefaultMaxRecent,
		members:   make(map[int]*Incident),
		markers:   make(map[int]time.Time),
		totals:    map[string]uint64{ClassSingleShard: 0, ClassCorrelated: 0},
		mttr:      make(map[string]*loadstat.Histogram),
		mttd:      make(map[string]*loadstat.Histogram),
		blastN:    make([]uint64, len(BlastBounds)+1),
	}
}

// Window returns the correlation window.
func (e *Engine) Window() time.Duration { return e.window }

// Emit consumes one journal event. Event types outside the shard
// lifecycle return before the engine lock is touched.
func (e *Engine) Emit(ev obs.Event) {
	switch ev.Type {
	case obs.TypeAlarm, obs.TypeQuarantine, obs.TypeStartupFail,
		obs.TypeLiveWatermark, obs.TypeInjectionMarker,
		obs.TypeRecalibrate, obs.TypeHeal:
	default:
		return
	}
	if ev.Shard < 0 {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	switch ev.Type {
	case obs.TypeInjectionMarker:
		e.markers[ev.Shard] = ev.At
		if inc := e.members[ev.Shard]; inc != nil {
			inc.Events++
		}
	case obs.TypeRecalibrate:
		if inc := e.members[ev.Shard]; inc != nil {
			tl := inc.timeline(ev.Shard)
			if tl.Recalibrate.IsZero() {
				tl.Recalibrate = ev.At
			}
			inc.Events++
		}
	case obs.TypeHeal:
		inc := e.members[ev.Shard]
		if inc == nil {
			return
		}
		tl := inc.timeline(ev.Shard)
		if tl.Heal.IsZero() {
			tl.Heal = ev.At
		}
		tl.Healed = true
		inc.Events++
		e.maybeResolve(inc, ev.At)
	default:
		e.alarm(ev)
	}
}

// alarm attaches one alarm-class event per the clustering rule.
func (e *Engine) alarm(ev obs.Event) {
	inc := e.members[ev.Shard]
	if inc == nil {
		inc = e.match(ev.At)
		if inc == nil {
			e.lastID++
			inc = &Incident{
				ID:       e.lastID,
				Class:    ClassSingleShard,
				OpenedAt: ev.At,
			}
			e.open = append(e.open, inc)
			e.totals[ClassSingleShard]++
		}
		inc.Shards = append(inc.Shards, ShardTimeline{Shard: ev.Shard})
		e.members[ev.Shard] = inc
		inc.BlastRadius = len(inc.Shards)
		if inc.BlastRadius >= 2 && inc.Class != ClassCorrelated {
			e.totals[inc.Class]--
			inc.Class = ClassCorrelated
			e.totals[ClassCorrelated]++
		}
	}
	tl := inc.timeline(ev.Shard)
	if ev.Type == obs.TypeQuarantine {
		if tl.Quarantine.IsZero() {
			tl.Quarantine = ev.At
		}
	} else {
		if tl.FirstAlarm.IsZero() {
			tl.FirstAlarm = ev.At
			tl.AlarmReason = ev.Reason
		}
	}
	tl.Alarms++
	if tl.Healed {
		// The shard re-alarmed while siblings were still down: the
		// open incident continues, the heal milestone reopens.
		tl.Healed = false
		tl.Heal = time.Time{}
	}
	if tl.DetectSeconds == 0 {
		if m, ok := e.markers[ev.Shard]; ok && !ev.At.Before(m) {
			delete(e.markers, ev.Shard)
			if tl.Marker.IsZero() {
				tl.Marker = m
			}
			tl.DetectSeconds = ev.At.Sub(m).Seconds()
			if inc.MTTDSeconds == 0 {
				inc.MTTDSeconds = tl.DetectSeconds
			}
		}
	}
	inc.LastAlarmAt = ev.At
	inc.Events++
}

// match returns the newest open incident whose last alarm activity is
// within the correlation window of at, or nil.
func (e *Engine) match(at time.Time) *Incident {
	for i := len(e.open) - 1; i >= 0; i-- {
		d := at.Sub(e.open[i].LastAlarmAt)
		if d < 0 {
			d = -d
		}
		if d <= e.window {
			return e.open[i]
		}
	}
	return nil
}

// maybeResolve closes the incident once every member shard healed.
func (e *Engine) maybeResolve(inc *Incident, at time.Time) {
	for i := range inc.Shards {
		if !inc.Shards[i].Healed {
			return
		}
	}
	inc.Resolved = true
	inc.ResolvedAt = at
	mttr := at.Sub(inc.OpenedAt)
	inc.MTTRSeconds = mttr.Seconds()
	h := e.mttr[inc.Class]
	if h == nil {
		h = loadstat.New()
		e.mttr[inc.Class] = h
	}
	h.Record(mttr)
	if inc.MTTDSeconds > 0 {
		h = e.mttd[inc.Class]
		if h == nil {
			h = loadstat.New()
			e.mttd[inc.Class] = h
		}
		h.Record(time.Duration(inc.MTTDSeconds * float64(time.Second)))
	}
	idx := len(BlastBounds)
	for i, b := range BlastBounds {
		if inc.BlastRadius <= b {
			idx = i
			break
		}
	}
	e.blastN[idx]++
	e.blastC++
	e.blastS += uint64(inc.BlastRadius)
	for i := range inc.Shards {
		delete(e.members, inc.Shards[i].Shard)
	}
	for i, o := range e.open {
		if o == inc {
			e.open = append(e.open[:i], e.open[i+1:]...)
			break
		}
	}
	e.recent = append(e.recent, inc.clone())
	if len(e.recent) > e.maxRecent {
		e.recent = e.recent[len(e.recent)-e.maxRecent:]
	}
}

// Incidents returns every open incident plus the retained resolved
// incidents with ID > since, in ID order, together with the last
// assigned incident ID (the caller's next cursor). Open incidents are
// always returned — they are live state, not history.
func (e *Engine) Incidents(since uint64) ([]Incident, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Incident, 0, len(e.open)+len(e.recent))
	for _, r := range e.recent {
		if r.ID > since {
			out = append(out, r.clone())
		}
	}
	for _, o := range e.open {
		out = append(out, o.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, e.lastID
}

// Stats is a point-in-time summary of the engine for metric export.
type Stats struct {
	// Open is the number of open incidents; OpenByClass splits it.
	Open        int
	OpenByClass map[string]int
	// Totals counts incidents ever opened, by CURRENT class: an
	// upgrade moves one count from single-shard to correlated, so the
	// per-class split is live but the sum is monotonic.
	Totals map[string]uint64
	// MTTR / MTTD are per-class histograms over resolved incidents.
	MTTR map[string]*loadstat.Snapshot
	MTTD map[string]*loadstat.Snapshot
	// BlastBuckets holds per-bucket (non-cumulative) counts of
	// resolved incidents' final blast radii, one per BlastBounds entry
	// plus the +Inf overflow; BlastSum is the radii sum.
	BlastBuckets []uint64
	BlastCount   uint64
	BlastSum     float64
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Open:         len(e.open),
		OpenByClass:  map[string]int{ClassSingleShard: 0, ClassCorrelated: 0},
		Totals:       make(map[string]uint64, len(e.totals)),
		MTTR:         make(map[string]*loadstat.Snapshot, len(e.mttr)),
		MTTD:         make(map[string]*loadstat.Snapshot, len(e.mttd)),
		BlastBuckets: append([]uint64(nil), e.blastN...),
		BlastCount:   e.blastC,
		BlastSum:     float64(e.blastS),
	}
	for _, o := range e.open {
		st.OpenByClass[o.Class]++
	}
	for c, n := range e.totals {
		st.Totals[c] = n
	}
	for c, h := range e.mttr {
		st.MTTR[c] = h.Snapshot()
	}
	for c, h := range e.mttd {
		st.MTTD[c] = h.Snapshot()
	}
	return st
}
