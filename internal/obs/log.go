package obs

import (
	"context"
	"log/slog"
)

// LogSink forwards journal events to a slog.Logger as structured
// records with the journal's event vocabulary: one record per event,
// message = the event type, attributes = the non-empty event fields.
// High-rate steady-state events (seed draws, reseeds, request sheds)
// log at Debug so an Info-level logger stays quiet under load; alarms,
// quarantines and fail-closed transitions log at Warn.
type LogSink struct {
	l *slog.Logger
}

// NewLogSink wraps l (slog.Default() when nil).
func NewLogSink(l *slog.Logger) *LogSink {
	if l == nil {
		l = slog.Default()
	}
	return &LogSink{l: l}
}

// Level maps an event type to the slog level LogSink records it at.
func Level(t Type) slog.Level {
	switch t {
	case TypeAlarm, TypeQuarantine, TypeStartupFail, TypeDRBGReseedFail,
		TypeDRBGFailClosed, TypeStarveAbort:
		return slog.LevelWarn
	case TypeSeedDraw, TypeDRBGReseed, TypeRequestShed:
		return slog.LevelDebug
	}
	return slog.LevelInfo
}

// Emit implements Sink.
func (s *LogSink) Emit(e Event) {
	lvl := Level(e.Type)
	if !s.l.Enabled(context.Background(), lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 7)
	if e.Seq != 0 {
		// The journal assigns sequence numbers internally, so an event
		// fanned out to a LogSink next to a Journal arrives unstamped;
		// a zero seq is absence, not position.
		attrs = append(attrs, slog.Uint64("seq", e.Seq))
	}
	if e.Shard >= 0 {
		attrs = append(attrs, slog.Int("shard", e.Shard))
	}
	if e.Lane >= 0 {
		attrs = append(attrs, slog.Int("lane", e.Lane))
	}
	if e.Epoch != 0 {
		attrs = append(attrs, slog.Int64("epoch", e.Epoch))
	}
	if e.Reason != "" {
		attrs = append(attrs, slog.String("reason", e.Reason))
	}
	if e.Value != 0 {
		attrs = append(attrs, slog.Float64("value", e.Value))
	}
	if e.Detail != "" {
		attrs = append(attrs, slog.String("detail", e.Detail))
	}
	s.l.LogAttrs(context.Background(), lvl, string(e.Type), attrs...)
}
