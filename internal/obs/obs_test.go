package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestJournalBasic: events come back in order with the fields intact.
func TestJournalBasic(t *testing.T) {
	j := NewJournal(16)
	if j.Capacity() != 16 {
		t.Fatalf("capacity = %d, want 16", j.Capacity())
	}
	if j.LastSeq() != 0 {
		t.Fatalf("fresh journal LastSeq = %d", j.LastSeq())
	}
	j.Emit(Event{Type: TypeStartupPass, Shard: 0, Lane: Any, Epoch: 1})
	j.Emit(Event{Type: TypeAlarm, Shard: 1, Lane: Any, Reason: "tot", Value: 34})
	j.Emit(Event{Type: TypeQuarantine, Shard: 1, Lane: Any, Reason: "tot", Value: 4096})

	evs, last := j.Events(NewQuery())
	if last != 3 {
		t.Fatalf("last = %d, want 3", last)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.At.IsZero() {
			t.Errorf("event %d has zero timestamp", i)
		}
	}
	if evs[1].Type != TypeAlarm || evs[1].Reason != "tot" || evs[1].Value != 34 {
		t.Errorf("alarm event mangled: %+v", evs[1])
	}
}

// TestJournalCursorAndFilters: ?since= semantics, shard/type filters,
// Max paging.
func TestJournalCursorAndFilters(t *testing.T) {
	j := NewJournal(64)
	for i := 0; i < 10; i++ {
		j.Emit(Event{Type: TypeSeedDraw, Shard: i % 3, Lane: Any})
	}
	j.Emit(Event{Type: TypeQuarantine, Shard: 1, Lane: Any, Reason: "thermal-low"})

	q := NewQuery()
	q.Since = 10
	evs, last := j.Events(q)
	if last != 11 || len(evs) != 1 || evs[0].Type != TypeQuarantine {
		t.Fatalf("since=10: last=%d evs=%+v", last, evs)
	}

	q = NewQuery()
	q.Shard = 2
	evs, _ = j.Events(q)
	if len(evs) != 3 {
		t.Fatalf("shard=2 filter: got %d events, want 3", len(evs))
	}
	for _, ev := range evs {
		if ev.Shard != 2 {
			t.Errorf("shard filter leaked %+v", ev)
		}
	}

	q = NewQuery()
	q.Type = TypeQuarantine
	evs, _ = j.Events(q)
	if len(evs) != 1 || evs[0].Reason != "thermal-low" {
		t.Fatalf("type filter: %+v", evs)
	}

	// Paging: Max caps a page, advancing Since fetches the rest.
	q = NewQuery()
	q.Max = 4
	page1, _ := j.Events(q)
	if len(page1) != 4 {
		t.Fatalf("page1 len = %d", len(page1))
	}
	q.Since = page1[len(page1)-1].Seq
	page2, _ := j.Events(q)
	if len(page2) != 4 || page2[0].Seq != page1[len(page1)-1].Seq+1 {
		t.Fatalf("page2 did not resume at cursor: %+v", page2)
	}
}

// TestJournalWraparound: after overflow only the newest Capacity
// events survive, and a stale cursor observes the gap via sequence
// numbers rather than silently re-reading overwritten slots.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 20; i++ {
		j.Emit(Event{Type: TypeSeedDraw, Shard: 0, Lane: Any, Value: float64(i)})
	}
	evs, last := j.Events(NewQuery())
	if last != 20 {
		t.Fatalf("last = %d", last)
	}
	if len(evs) != 8 {
		t.Fatalf("got %d events, want capacity 8", len(evs))
	}
	if evs[0].Seq != 13 || evs[len(evs)-1].Seq != 20 {
		t.Fatalf("retained window [%d, %d], want [13, 20]", evs[0].Seq, evs[len(evs)-1].Seq)
	}
}

// TestJournalDroppedCount: Read reports the cursor gap explicitly —
// how many events the ring overwrote before the reader's cursor
// caught up — and zero when the cursor is inside the retained window.
func TestJournalDroppedCount(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 6; i++ {
		j.Emit(Event{Type: TypeSeedDraw, Shard: 0, Lane: Any})
	}
	// No wrap yet: nothing dropped from any cursor.
	if p := j.Read(NewQuery()); p.Dropped != 0 || len(p.Events) != 6 {
		t.Fatalf("pre-wrap page: dropped=%d n=%d", p.Dropped, len(p.Events))
	}
	for i := 0; i < 14; i++ { // total 20 through a capacity-8 ring
		j.Emit(Event{Type: TypeSeedDraw, Shard: 0, Lane: Any})
	}
	// A cursor at 6 lost events 7..12: the ring retains [13, 20].
	q := NewQuery()
	q.Since = 6
	p := j.Read(q)
	if p.LastSeq != 20 || p.Dropped != 6 {
		t.Fatalf("stale cursor: last=%d dropped=%d, want 20/6", p.LastSeq, p.Dropped)
	}
	if len(p.Events) != 8 || p.Events[0].Seq != 13 {
		t.Fatalf("stale cursor events: %+v", p.Events)
	}
	// A fresh reader (cursor 0) never saw the first 12 at all.
	if p := j.Read(NewQuery()); p.Dropped != 12 {
		t.Fatalf("fresh cursor dropped=%d, want 12", p.Dropped)
	}
	// A cursor inside the retained window drops nothing.
	q.Since = 15
	if p := j.Read(q); p.Dropped != 0 || len(p.Events) != 5 {
		t.Fatalf("live cursor: dropped=%d n=%d", p.Dropped, len(p.Events))
	}
	// The filtered Events wrapper keeps its historical shape.
	if evs, last := j.Events(q); last != 20 || len(evs) != 5 {
		t.Fatalf("Events wrapper: last=%d n=%d", last, len(evs))
	}
}

// TestJournalDetectionLatency: an injection marker pairs with the next
// quarantine on the same shard, classed by quarantine reason; markers
// on other shards stay pending.
func TestJournalDetectionLatency(t *testing.T) {
	j := NewJournal(32)
	t0 := time.Now()
	j.Emit(Event{Type: TypeInjectionMarker, Shard: 0, Lane: Any, At: t0})
	j.Emit(Event{Type: TypeInjectionMarker, Shard: 1, Lane: Any, At: t0})
	// Quarantine on shard 0 only, 250ms later.
	j.Emit(Event{Type: TypeQuarantine, Shard: 0, Lane: Any, Reason: "injected", At: t0.Add(250 * time.Millisecond)})

	lats := j.DetectionLatencies()
	snap, ok := lats["injected"]
	if !ok {
		t.Fatalf("no latency class recorded: %v", lats)
	}
	if snap.Count() != 1 {
		t.Fatalf("count = %d, want 1", snap.Count())
	}
	if p := snap.Quantile(0.5); p < 200*time.Millisecond || p > 400*time.Millisecond {
		t.Errorf("p50 latency %v, want ~250ms", p)
	}
	// Shard 1's marker is still pending: a later unrelated quarantine
	// on shard 0 must not consume it.
	j.Emit(Event{Type: TypeQuarantine, Shard: 0, Lane: Any, Reason: "tot", At: t0.Add(time.Second)})
	if _, ok := j.DetectionLatencies()["tot"]; ok {
		t.Error("unpaired quarantine recorded a latency")
	}
	// And shard 1's quarantine closes its own pair.
	j.Emit(Event{Type: TypeQuarantine, Shard: 1, Lane: Any, Reason: "thermal-high", At: t0.Add(2 * time.Second)})
	if snap := j.DetectionLatencies()["thermal-high"]; snap == nil || snap.Count() != 1 {
		t.Errorf("shard 1 pair not recorded: %v", j.DetectionLatencies())
	}
}

// TestJournalStress: concurrent emitters and readers under -race.
// Sequence numbers must be unique and strictly increasing per page,
// and with the event count below capacity no event may be lost.
func TestJournalStress(t *testing.T) {
	const (
		emitters  = 8
		perEmit   = 500
		journalSz = emitters * perEmit // below capacity: nothing may drop
	)
	j := NewJournal(journalSz)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers page forward with a cursor while writers are active.
	var readerErr atomic.Value
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cursor uint64
			for {
				q := NewQuery()
				q.Since = cursor
				evs, last := j.Events(q)
				prev := cursor
				for _, ev := range evs {
					if ev.Seq <= prev {
						readerErr.Store(ev.Seq)
						return
					}
					prev = ev.Seq
				}
				cursor = last
				select {
				case <-stop:
					if cursor >= emitters*perEmit {
						return
					}
				default:
				}
			}
		}()
	}
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				j.Emit(Event{Type: TypeSeedDraw, Shard: e, Lane: Any, Value: float64(i)})
			}
		}(e)
	}
	// Emitters finish, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if j.LastSeq() == emitters*perEmit {
			close(stop)
			break
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if v := readerErr.Load(); v != nil {
		t.Fatalf("reader saw non-increasing seq %v", v)
	}

	// Total below capacity: every event retained, none duplicated.
	evs, last := j.Events(NewQuery())
	if last != emitters*perEmit {
		t.Fatalf("last = %d, want %d", last, emitters*perEmit)
	}
	if len(evs) != emitters*perEmit {
		t.Fatalf("retained %d events, want %d (capacity %d)", len(evs), emitters*perEmit, j.Capacity())
	}
	perShard := map[int]int{}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		perShard[ev.Shard]++
	}
	for e := 0; e < emitters; e++ {
		if perShard[e] != perEmit {
			t.Errorf("emitter %d: %d events retained, want %d", e, perShard[e], perEmit)
		}
	}
}

// TestMulti: nil handling and fan-out.
func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("empty Multi should be nil")
	}
	j := NewJournal(8)
	if Multi(nil, j, nil) != Sink(j) {
		t.Error("single-sink Multi should unwrap")
	}
	j2 := NewJournal(8)
	m := Multi(j, j2)
	m.Emit(Event{Type: TypeHeal, Shard: 0, Lane: Any})
	if j.LastSeq() != 1 || j2.LastSeq() != 1 {
		t.Errorf("fan-out missed a sink: %d, %d", j.LastSeq(), j2.LastSeq())
	}
	// Nil-safe package-level Emit.
	Emit(nil, Event{Type: TypeHeal})
	Emit(m, Event{Type: TypeHeal, Shard: 1, Lane: Any})
	if j.LastSeq() != 2 {
		t.Errorf("Emit helper did not deliver")
	}
}

// TestLogSink: events render as one JSON record each with the event
// vocabulary, at the per-type level.
func TestLogSink(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	s := NewLogSink(l)
	s.Emit(Event{Seq: 7, Type: TypeQuarantine, Shard: 2, Lane: Any, Reason: "tot", Value: 4096})
	s.Emit(Event{Seq: 8, Type: TypeSeedDraw, Shard: 0, Lane: Any, Value: 384})

	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal(lines[0], &rec); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if rec["msg"] != string(TypeQuarantine) || rec["level"] != "WARN" {
		t.Errorf("quarantine record: %v", rec)
	}
	if rec["shard"] != float64(2) || rec["reason"] != "tot" {
		t.Errorf("quarantine attrs: %v", rec)
	}
	if json.Unmarshal(lines[1], &rec); rec["level"] != "DEBUG" {
		t.Errorf("seed-draw should log at DEBUG: %v", rec)
	}

	// An Info-level logger suppresses the chatty types entirely.
	buf.Reset()
	s = NewLogSink(slog.New(slog.NewJSONHandler(&buf, nil)))
	s.Emit(Event{Type: TypeSeedDraw, Shard: 0, Lane: Any})
	if buf.Len() != 0 {
		t.Errorf("seed-draw leaked through Info level: %s", buf.String())
	}
}

// TestLevelMapping pins the vocabulary-to-level table.
func TestLevelMapping(t *testing.T) {
	warn := []Type{TypeAlarm, TypeQuarantine, TypeStartupFail, TypeDRBGReseedFail, TypeDRBGFailClosed, TypeStarveAbort}
	for _, ty := range warn {
		if Level(ty) != slog.LevelWarn {
			t.Errorf("%s should be Warn", ty)
		}
	}
	debug := []Type{TypeSeedDraw, TypeDRBGReseed, TypeRequestShed}
	for _, ty := range debug {
		if Level(ty) != slog.LevelDebug {
			t.Errorf("%s should be Debug", ty)
		}
	}
	for _, ty := range []Type{TypeStartupPass, TypeRecalibrate, TypeHeal, TypeDRBGInstantiate, TypeDRBGDrain, TypeInjectionMarker} {
		if Level(ty) != slog.LevelInfo {
			t.Errorf("%s should be Info", ty)
		}
	}
}

// TestEventJSON pins the wire shape of /events entries.
func TestEventJSON(t *testing.T) {
	e := Event{Seq: 3, At: time.Unix(100, 0).UTC(), Type: TypeAlarm, Shard: 1, Lane: Any, Epoch: 2, Reason: "thermal-low", Value: 0.125, Detail: "variance"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"seq", "at", "type", "shard", "lane", "epoch", "reason", "value", "detail"} {
		if _, ok := m[k]; !ok {
			t.Errorf("missing JSON key %q in %s", k, b)
		}
	}
	// Empty payload fields are omitted to keep /events pages small.
	b, _ = json.Marshal(Event{Seq: 1, Type: TypeHeal, Shard: 0, Lane: Any})
	if bytes.Contains(b, []byte("reason")) || bytes.Contains(b, []byte("epoch")) {
		t.Errorf("zero payload fields not omitted: %s", b)
	}
}
