package obs

import (
	"strings"
	"testing"
)

func lintErrs(t *testing.T, text string) []error {
	t.Helper()
	return LintProm(text)
}

func wantClean(t *testing.T, text string) {
	t.Helper()
	if errs := LintProm(text); len(errs) != 0 {
		t.Fatalf("expected clean, got %v", errs)
	}
}

func wantDirty(t *testing.T, text, substr string) {
	t.Helper()
	errs := LintProm(text)
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return
		}
	}
	t.Fatalf("expected an error containing %q, got %v", substr, errs)
}

func TestLintClean(t *testing.T) {
	wantClean(t, `# HELP trngd_requests_total Requests received.
# TYPE trngd_requests_total counter
trngd_requests_total 42
# TYPE trngd_up gauge
trngd_up 1
# TYPE trngd_shard_state gauge
trngd_shard_state{shard="0",state="healthy"} 1
trngd_shard_state{shard="1",state="quarantined"} 1
`)
	// Untyped samples, escapes in label values, timestamps.
	wantClean(t, `plain_sample 3.14
escaped{l="a\"b\\c\nd"} 1
stamped_sample 7 1700000000
inf_sample{kind="pos"} +Inf
nan_sample NaN
`)
}

func TestLintCleanHistogram(t *testing.T) {
	wantClean(t, `# TYPE trngd_request_duration_seconds histogram
trngd_request_duration_seconds_bucket{le="0.001"} 4
trngd_request_duration_seconds_bucket{le="0.01"} 9
trngd_request_duration_seconds_bucket{le="+Inf"} 10
trngd_request_duration_seconds_sum 0.5
trngd_request_duration_seconds_count 10
`)
	// Labeled histogram: each label set is its own bucket family.
	wantClean(t, `# TYPE phase_seconds histogram
phase_seconds_bucket{phase="queue",le="0.1"} 1
phase_seconds_bucket{phase="queue",le="+Inf"} 2
phase_seconds_sum{phase="queue"} 0.3
phase_seconds_count{phase="queue"} 2
phase_seconds_bucket{phase="write",le="0.1"} 5
phase_seconds_bucket{phase="write",le="+Inf"} 5
phase_seconds_sum{phase="write"} 0.1
phase_seconds_count{phase="write"} 5
`)
}

func TestLintViolations(t *testing.T) {
	wantDirty(t, "9bad_name 1\n", "invalid metric name")
	wantDirty(t, "ok{9bad=\"x\"} 1\n", "invalid label name")
	wantDirty(t, "ok{__reserved=\"x\"} 1\n", "invalid label name")
	wantDirty(t, "ok nope\n", "does not parse")
	wantDirty(t, "ok{l=\"unterminated} 1\n", "unterminated")
	wantDirty(t, "ok{l=bare} 1\n", "not quoted")
	wantDirty(t, "dup 1\ndup 2\n", "duplicate series")
	wantDirty(t, "dup{a=\"x\",b=\"y\"} 1\ndup{b=\"y\",a=\"x\"} 2\n", "duplicate series")
	wantDirty(t, "# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate TYPE")
	wantDirty(t, "# HELP m h\n# HELP m h\nm 1\n", "duplicate HELP")
	wantDirty(t, "m 1\n# TYPE m counter\n", "after its samples")
	wantDirty(t, "# TYPE m widget\nm 1\n", "unknown metric type")
	wantDirty(t, "#TYPE m counter\nm 1\n", "missing space")
}

func TestLintHistogramViolations(t *testing.T) {
	wantDirty(t, `# TYPE h histogram
h_bucket{le="0.1"} 1
h_sum 1
h_count 1
`, `missing le="+Inf"`)
	wantDirty(t, `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`, "not cumulative")
	wantDirty(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 1
h_count 4
`, "_count 4 != +Inf bucket 3")
	wantDirty(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 3
`, "missing _sum")
	wantDirty(t, `# TYPE h histogram
h_bucket{le="+Inf"} 3
h_sum 1
`, "missing _count")
	wantDirty(t, `# TYPE h histogram
h_bucket{le="oops"} 3
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`, "does not parse")
	wantDirty(t, `# TYPE h histogram
h 3
`, "bare sample")
}

func TestLintMultipleErrors(t *testing.T) {
	errs := lintErrs(t, "9bad 1\ndup 1\ndup 2\n")
	if len(errs) < 2 {
		t.Fatalf("expected at least 2 errors, got %v", errs)
	}
	// Every error carries its line number.
	for _, e := range errs {
		if !strings.HasPrefix(e.Error(), "line ") {
			t.Errorf("error missing line prefix: %v", e)
		}
	}
}
