package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintProm checks a Prometheus text-format (version 0.0.4) exposition
// against the format contract a scraper relies on:
//
//   - metric and label names match the Prometheus grammar;
//   - sample values parse as Go floats (+Inf/-Inf/NaN allowed);
//   - # TYPE / # HELP comments are well-formed, name a known metric
//     type, and precede every sample of the metric they describe;
//   - at most one TYPE and one HELP line per metric name;
//   - no duplicate series (same name + same label set);
//   - histogram metrics (TYPE histogram) expose _bucket series with a
//     parseable, monotonically non-decreasing "le" label including the
//     mandatory +Inf bucket, plus _count and _sum series, with
//     cumulative bucket counts and count == the +Inf bucket.
//
// It returns one error per violation (nil-length slice when the text
// is clean), so a test can print every problem at once. It is reused
// by cmd/promlint against a live /metrics scrape in CI.
func LintProm(text string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	typeOf := map[string]string{} // metric name -> declared type
	helpSeen := map[string]bool{}
	typeLine := map[string]int{}
	sampleSeen := map[string]bool{} // base metric name has samples already
	series := map[string]int{}      // name{sorted labels} -> first line
	type histSeries struct {
		buckets map[float64]float64 // le -> count, per label-set key (le removed)
		order   []float64
		count   float64
		hasCnt  bool
		sum     bool
		line    int
	}
	hists := map[string]*histSeries{} // histogram name + label-set key

	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		ln := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			if !strings.HasPrefix(rest, " ") {
				fail(ln, "comment missing space after #: %q", line)
				continue
			}
			fields := strings.SplitN(strings.TrimPrefix(rest, " "), " ", 3)
			switch fields[0] {
			case "TYPE":
				if len(fields) < 3 {
					fail(ln, "malformed TYPE line: %q", line)
					continue
				}
				name, mt := fields[1], strings.TrimSpace(fields[2])
				if !validMetricName(name) {
					fail(ln, "TYPE names invalid metric %q", name)
				}
				switch mt {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(ln, "unknown metric type %q for %q", mt, name)
				}
				if prev, dup := typeLine[name]; dup {
					fail(ln, "duplicate TYPE for %q (first at line %d)", name, prev)
				}
				if sampleSeen[name] {
					fail(ln, "TYPE for %q appears after its samples", name)
				}
				typeOf[name] = mt
				typeLine[name] = ln
			case "HELP":
				if len(fields) < 2 {
					fail(ln, "malformed HELP line: %q", line)
					continue
				}
				name := fields[1]
				if !validMetricName(name) {
					fail(ln, "HELP names invalid metric %q", name)
				}
				if helpSeen[name] {
					fail(ln, "duplicate HELP for %q", name)
				}
				if sampleSeen[name] {
					fail(ln, "HELP for %q appears after its samples", name)
				}
				helpSeen[name] = true
			}
			// Other comments are free-form and legal.
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(ln, "%v", err)
			continue
		}
		base := baseName(name, typeOf)
		sampleSeen[base] = true
		if base != name {
			sampleSeen[name] = true
		}

		key := seriesKey(name, labels)
		if prev, dup := series[key]; dup {
			fail(ln, "duplicate series %s (first at line %d)", key, prev)
		}
		series[key] = ln

		if typeOf[base] == "histogram" {
			hk := base + "\x00" + seriesKey("", withoutLabel(labels, "le"))
			h := hists[hk]
			if h == nil {
				h = &histSeries{buckets: map[float64]float64{}, line: ln}
				hists[hk] = h
			}
			switch {
			case name == base+"_bucket":
				leStr, ok := labelValue(labels, "le")
				if !ok {
					fail(ln, "histogram bucket %s missing le label", name)
					break
				}
				le, perr := strconv.ParseFloat(leStr, 64)
				if perr != nil {
					fail(ln, "histogram %s le=%q does not parse: %v", base, leStr, perr)
					break
				}
				h.buckets[le] = value
				h.order = append(h.order, le)
			case name == base+"_count":
				h.count = value
				h.hasCnt = true
			case name == base+"_sum":
				h.sum = true
			case name == base:
				fail(ln, "histogram %s exposes a bare sample; expected _bucket/_sum/_count", base)
			}
		}
	}

	for hk, h := range hists {
		base := strings.SplitN(hk, "\x00", 2)[0]
		if len(h.order) == 0 {
			fail(h.line, "histogram %s has no _bucket series", base)
			continue
		}
		sort.Float64s(h.order)
		if !math.IsInf(h.order[len(h.order)-1], +1) {
			fail(h.line, "histogram %s missing le=\"+Inf\" bucket", base)
		}
		prev := math.Inf(-1)
		prevCount := -1.0
		for _, le := range h.order {
			if le == prev {
				fail(h.line, "histogram %s repeats le=%v", base, le)
			}
			if c := h.buckets[le]; c < prevCount {
				fail(h.line, "histogram %s bucket counts not cumulative at le=%v (%v < %v)", base, le, c, prevCount)
			} else {
				prevCount = c
			}
			prev = le
		}
		if !h.hasCnt {
			fail(h.line, "histogram %s missing _count series", base)
		} else if inf := h.buckets[math.Inf(+1)]; h.count != inf {
			fail(h.line, "histogram %s _count %v != +Inf bucket %v", base, h.count, inf)
		}
		if !h.sum {
			fail(h.line, "histogram %s missing _sum series", base)
		}
	}
	return errs
}

// baseName strips the histogram/summary component suffix when the
// remaining name has a TYPE declaration claiming it.
func baseName(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_count", "_sum"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if t := typeOf[b]; t == "histogram" || t == "summary" {
				return b
			}
		}
	}
	return name
}

type promLabel struct{ name, value string }

func labelValue(labels []promLabel, name string) (string, bool) {
	for _, l := range labels {
		if l.name == name {
			return l.value, true
		}
	}
	return "", false
}

func withoutLabel(labels []promLabel, name string) []promLabel {
	out := make([]promLabel, 0, len(labels))
	for _, l := range labels {
		if l.name != name {
			out = append(out, l)
		}
	}
	return out
}

func seriesKey(name string, labels []promLabel) string {
	ls := make([]string, len(labels))
	for i, l := range labels {
		ls[i] = l.name + "=" + strconv.Quote(l.value)
	}
	sort.Strings(ls)
	return name + "{" + strings.Join(ls, ",") + "}"
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample parses one exposition sample line:
// name[{label="value",...}] value [timestamp]
func parseSample(line string) (name string, labels []promLabel, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample missing value: %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("unterminated label set: %q", line)
			}
			lname := strings.TrimSpace(rest[:eq])
			if !validLabelName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if !strings.HasPrefix(rest, `"`) {
				return "", nil, 0, fmt.Errorf("label %s value not quoted: %q", lname, line)
			}
			// Scan the quoted value honoring \" \\ \n escapes.
			j := 1
			var val strings.Builder
			for {
				if j >= len(rest) {
					return "", nil, 0, fmt.Errorf("unterminated label value: %q", line)
				}
				c := rest[j]
				if c == '\\' {
					if j+1 >= len(rest) {
						return "", nil, 0, fmt.Errorf("dangling escape in label value: %q", line)
					}
					switch rest[j+1] {
					case '"', '\\':
						val.WriteByte(rest[j+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("invalid escape \\%c in label value: %q", rest[j+1], line)
					}
					j += 2
					continue
				}
				if c == '"' {
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			labels = append(labels, promLabel{lname, val.String()})
			rest = rest[j:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("value %q does not parse: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("timestamp %q does not parse: %v", fields[1], terr)
		}
	}
	return name, labels, value, nil
}
