// Package phase implements the oscillator excess-phase stochastic model
// at the center of the paper:
//
//	Sφ(f) = b_fl/f³ + b_th/f²          (eq. 10)
//
// and the variance of the Allan-style accumulated-jitter statistic
//
//	s_N(t_i) = Σ_{j=0}^{2N−1} a_j·J(t_{i+j}),  a_j = −1 (j<N), +1 (j≥N)
//
// for which the paper derives, via the Wiener–Khinchine theorem
// (eq. 9 / appendix eq. 17):
//
//	σ²_N = (8/(π²·f0²))·∫₀^∞ Sφ(f)·sin⁴(π·f·N/f0)·df
//	     = (2·b_th/f0³)·N + (8·ln2·b_fl/f0⁴)·N²   (eq. 11)
//
// The linear term is the thermal (white) contribution — the only part
// compatible with mutually independent jitter realizations (Bienaymé) —
// and the quadratic term is the flicker contribution that makes
// realizations mutually dependent at large N.
package phase

import (
	"fmt"
	"math"
)

// Model is the two-coefficient phase-noise model of eq. 10.
type Model struct {
	// Bth is the thermal coefficient of the 1/f² region, in Hz.
	Bth float64
	// Bfl is the flicker coefficient of the 1/f³ region, in Hz².
	Bfl float64
	// F0 is the oscillator nominal frequency in Hz.
	F0 float64
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	switch {
	case m.F0 <= 0:
		return fmt.Errorf("phase: f0 = %g must be > 0", m.F0)
	case m.Bth < 0:
		return fmt.Errorf("phase: b_th = %g must be >= 0", m.Bth)
	case m.Bfl < 0:
		return fmt.Errorf("phase: b_fl = %g must be >= 0", m.Bfl)
	}
	return nil
}

// PSD returns the one-sided excess-phase PSD Sφ(f) (rad²/Hz) at Fourier
// frequency f > 0 (eq. 10).
func (m Model) PSD(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("phase: PSD requires f > 0, got %g", f))
	}
	return m.Bfl/(f*f*f) + m.Bth/(f*f)
}

// SigmaN2 returns the analytic accumulated variance σ²_N of s_N
// (eq. 11) for N >= 1 periods per half-window, in s².
func (m Model) SigmaN2(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("phase: SigmaN2 requires N >= 1, got %d", n))
	}
	nf := float64(n)
	f0 := m.F0
	th := 2 * m.Bth / (f0 * f0 * f0) * nf
	fl := 8 * math.Ln2 * m.Bfl / (f0 * f0 * f0 * f0) * nf * nf
	return th + fl
}

// SigmaN2Thermal returns only the thermal (linear-in-N) part of σ²_N.
func (m Model) SigmaN2Thermal(n int) float64 {
	return 2 * m.Bth / (m.F0 * m.F0 * m.F0) * float64(n)
}

// SigmaN2Flicker returns only the flicker (quadratic-in-N) part of σ²_N.
func (m Model) SigmaN2Flicker(n int) float64 {
	nf := float64(n)
	return 8 * math.Ln2 * m.Bfl / (m.F0 * m.F0 * m.F0 * m.F0) * nf * nf
}

// SigmaThermal returns the thermal-only period jitter standard deviation
// σ = sqrt(b_th/f0³): the quantity the paper's §IV method extracts
// (15.89 ps in their experiment).
func (m Model) SigmaThermal() float64 {
	return math.Sqrt(m.Bth / (m.F0 * m.F0 * m.F0))
}

// PeriodJitterRatio returns σ/T0 = σ·f0 (the paper reports 1.6 ‰).
func (m Model) PeriodJitterRatio() float64 {
	return m.SigmaThermal() * m.F0
}

// RN returns the thermal-noise share r_N = σ²_N,th/σ²_N of the
// accumulated variance (paper §III-E). With the fit coefficients
// a = 2b_th/f0, b = 8ln2·b_fl/f0² (for f0²σ²_N), it equals
// (a/b)/((a/b)+N); the paper's experiment had a/b = 5354.
func (m Model) RN(n int) float64 {
	tot := m.SigmaN2(n)
	if tot == 0 {
		return 0
	}
	return m.SigmaN2Thermal(n) / tot
}

// CornerN returns the ratio a/b at which the flicker contribution equals
// the thermal one (r_N = 1/2). Infinite when the model has no flicker.
func (m Model) CornerN() float64 {
	if m.Bfl == 0 {
		return math.Inf(1)
	}
	a := 2 * m.Bth / m.F0
	b := 8 * math.Ln2 * m.Bfl / (m.F0 * m.F0)
	return a / b
}

// IndependenceThreshold returns the largest N for which r_N > rMin,
// i.e. the accumulation length below which 2N consecutive jitter
// realizations may be treated as mutually independent with thermal share
// at least rMin (paper: rMin = 0.95 gives N < 281). Returns MaxInt-ish
// values as +Inf via ok=false when flicker is absent.
func (m Model) IndependenceThreshold(rMin float64) (n int, ok bool) {
	if rMin <= 0 || rMin >= 1 {
		panic(fmt.Sprintf("phase: rMin %g out of (0,1)", rMin))
	}
	if m.Bfl == 0 {
		return 0, false
	}
	// r_N = K/(K+N) > rMin  ⇔  N < K·(1−rMin)/rMin, K = CornerN.
	k := m.CornerN()
	return int(math.Floor(k * (1 - rMin) / rMin)), true
}

// FitCoefficients returns the coefficients (a, b) of the normalized fit
// f0²·σ²_N = a·N + b·N² used in the paper's Fig. 7:
// a = 2·b_th/f0, b = 8·ln2·b_fl/f0².
func (m Model) FitCoefficients() (a, b float64) {
	a = 2 * m.Bth / m.F0
	b = 8 * math.Ln2 * m.Bfl / (m.F0 * m.F0)
	return a, b
}

// ModelFromFit inverts FitCoefficients: given the fitted (a, b) of
// f0²·σ²_N = a·N + b·N² and the oscillator frequency, it reconstructs
// the phase-noise model. This is the paper's §IV measurement principle:
// b_th = a·f0/2 (and σ = sqrt(b_th/f0³)).
func ModelFromFit(a, b, f0 float64) Model {
	return Model{
		Bth: a * f0 / 2,
		Bfl: b * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

// SigmaN2Numeric evaluates eq. 9 by direct numerical quadrature,
//
//	σ²_N = (8/(π²f0²))·∫₀^∞ Sφ(f)·sin⁴(πfN/f0)·df,
//
// as an independent check of the closed form (eq. 11). The integral is
// computed in the dimensionless variable u = f·N/f0: oscillation-aware
// Simpson panels cover u ∈ (0, uMax], and the oscillatory tail beyond
// uMax is added analytically using ⟨sin⁴⟩ = 3/8.
func (m Model) SigmaN2Numeric(n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("phase: SigmaN2Numeric requires N >= 1, got %d", n))
	}
	nf := float64(n)
	f0 := m.F0
	// f = u·f0/N, df = f0/N·du
	// Sφ(f) = b_fl·N³/(u³f0³) + b_th·N²/(u²f0²)
	integrand := func(u float64) float64 {
		if u == 0 {
			return 0
		}
		s := math.Sin(math.Pi * u)
		s4 := s * s * s * s
		fl := m.Bfl * nf * nf * nf / (u * u * u * f0 * f0 * f0)
		th := m.Bth * nf * nf / (u * u * f0 * f0)
		return (fl + th) * s4
	}
	// Integrate u from 0 to uMax with panels aligned to the sin⁴
	// period (length 1 in u), 64 Simpson points per panel.
	const uMax = 4096.0
	var sum float64
	for p := 0.0; p < uMax; p++ {
		sum += simpson(integrand, p, p+1, 64)
	}
	// Tail: ∫_{uMax}^∞ (b_fl N³/(u³f0³) + b_th N²/(u²f0²))·(3/8) du
	tail := 3.0 / 8.0 * (m.Bfl*nf*nf*nf/(2*uMax*uMax*f0*f0*f0) + m.Bth*nf*nf/(uMax*f0*f0))
	total := sum + tail
	return 8 / (math.Pi * math.Pi * f0 * f0) * total * (f0 / nf)
}

// simpson integrates g over [a, b] with n (even) subintervals.
func simpson(g func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := g(a) + g(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * g(x)
		} else {
			sum += 2 * g(x)
		}
	}
	return sum * h / 3
}

// PeriodJitterPSDs returns the coefficients (h0, hm1) of the equivalent
// fractional-frequency PSD S_y(f) = h0 + hm1/f that reproduces the
// paper's σ²_N law when the oscillator is simulated period-by-period:
//
//   - white FM with per-period variance σ² = b_th/f0³ gives the linear
//     term σ²_N,th = 2σ²N;
//   - flicker FM with one-sided S_y(f) = hm1/f, hm1 = 2·b_fl/f0²,
//     gives σ²_N,fl = 2·(N/f0)²·σ²_y,Allan with σ²_y,Allan = 2·ln2·hm1,
//     i.e. 8·ln2·b_fl·N²/f0⁴, matching eq. 11.
//
// These are the calibration constants used by internal/osc.
func (m Model) PeriodJitterPSDs() (h0, hm1 float64) {
	h0 = 2 * m.Bth / (m.F0 * m.F0) // such that σ² = h0/(2f0) = b_th/f0³
	hm1 = 2 * m.Bfl / (m.F0 * m.F0)
	return h0, hm1
}
