package phase

import (
	"math"
	"testing"
	"testing/quick"
)

func paperModel() Model {
	// Calibrated to the paper: a = 5.36e-6, a/b = 5354, f0 = 103 MHz.
	const f0 = 103e6
	return Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func TestValidate(t *testing.T) {
	if err := paperModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Model{Bth: 1, Bfl: 1, F0: 0}).Validate(); err == nil {
		t.Fatal("f0=0 accepted")
	}
	if err := (Model{Bth: -1, F0: 1}).Validate(); err == nil {
		t.Fatal("negative Bth accepted")
	}
	if err := (Model{Bfl: -1, F0: 1}).Validate(); err == nil {
		t.Fatal("negative Bfl accepted")
	}
}

func TestPSDShape(t *testing.T) {
	m := Model{Bth: 100, Bfl: 1e6, F0: 1e8}
	// At high f the 1/f² term dominates; ratio across one octave → 4.
	hi := 1e7
	if r := m.PSD(hi) / m.PSD(2*hi); math.Abs(r-4) > 0.1 {
		t.Fatalf("high-frequency PSD ratio %g, want ~4", r)
	}
	// At low f the 1/f³ term dominates; ratio across one octave → 8.
	lo := 10.0
	if r := m.PSD(lo) / m.PSD(2*lo); math.Abs(r-8) > 0.1 {
		t.Fatalf("low-frequency PSD ratio %g, want ~8", r)
	}
}

func TestPSDPanicsAtDC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at f=0")
		}
	}()
	paperModel().PSD(0)
}

func TestSigmaN2Decomposition(t *testing.T) {
	m := paperModel()
	for _, n := range []int{1, 10, 281, 5354, 100000} {
		tot := m.SigmaN2(n)
		th := m.SigmaN2Thermal(n)
		fl := m.SigmaN2Flicker(n)
		if math.Abs(tot-(th+fl)) > 1e-12*tot {
			t.Fatalf("N=%d: decomposition broken", n)
		}
	}
}

func TestSigmaN2LinearWithoutFlicker(t *testing.T) {
	m := Model{Bth: 276, Bfl: 0, F0: 103e6}
	s1 := m.SigmaN2(1)
	for _, n := range []int{2, 17, 1000} {
		if math.Abs(m.SigmaN2(n)-float64(n)*s1) > 1e-12*m.SigmaN2(n) {
			t.Fatalf("thermal-only σ²_N not linear at N=%d", n)
		}
	}
}

func TestSigmaThermalPaperValue(t *testing.T) {
	m := paperModel()
	if sigma := m.SigmaThermal(); math.Abs(sigma-15.89e-12) > 0.05e-12 {
		t.Fatalf("σ = %g ps, want 15.89 ps", sigma*1e12)
	}
	if r := m.PeriodJitterRatio(); math.Abs(r-1.64e-3) > 0.05e-3 {
		t.Fatalf("σ/T0 = %g ‰, want ~1.64 ‰", r*1e3)
	}
}

func TestRNPaperLaw(t *testing.T) {
	m := paperModel()
	// r_N = 5354/(5354+N)
	for _, n := range []int{1, 100, 281, 5354, 50000} {
		want := 5354.0 / (5354.0 + float64(n))
		if got := m.RN(n); math.Abs(got-want) > 1e-3 {
			t.Fatalf("r_%d = %g, want %g", n, got, want)
		}
	}
}

func TestCornerN(t *testing.T) {
	m := paperModel()
	if c := m.CornerN(); math.Abs(c-5354) > 1 {
		t.Fatalf("corner = %g, want 5354", c)
	}
	if r := m.RN(int(m.CornerN())); math.Abs(r-0.5) > 1e-3 {
		t.Fatalf("r at corner = %g, want 0.5", r)
	}
	noFl := Model{Bth: 1, F0: 1e8}
	if !math.IsInf(noFl.CornerN(), 1) {
		t.Fatal("corner without flicker should be +Inf")
	}
}

func TestIndependenceThresholdPaper281(t *testing.T) {
	m := paperModel()
	n, ok := m.IndependenceThreshold(0.95)
	if !ok {
		t.Fatal("threshold not found")
	}
	if n != 281 {
		t.Fatalf("N*(95%%) = %d, want 281", n)
	}
	// Verify the defining property: r_N > 0.95 at n, <= 0.95 just above.
	if m.RN(n) <= 0.95 {
		t.Fatalf("r at threshold = %g", m.RN(n))
	}
	if m.RN(n+1) > 0.95 {
		t.Fatalf("r just above threshold = %g", m.RN(n+1))
	}
	if _, ok := (Model{Bth: 1, F0: 1e8}).IndependenceThreshold(0.95); ok {
		t.Fatal("threshold defined without flicker")
	}
}

func TestIndependenceThresholdPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rMin out of range")
		}
	}()
	paperModel().IndependenceThreshold(1.5)
}

func TestFitCoefficientsRoundTrip(t *testing.T) {
	m := paperModel()
	a, b := m.FitCoefficients()
	if math.Abs(a-5.36e-6) > 1e-11 {
		t.Fatalf("a = %g, want 5.36e-6", a)
	}
	if math.Abs(a/b-5354) > 0.5 {
		t.Fatalf("a/b = %g, want 5354", a/b)
	}
	back := ModelFromFit(a, b, m.F0)
	if math.Abs(back.Bth-m.Bth) > 1e-9*m.Bth || math.Abs(back.Bfl-m.Bfl) > 1e-9*m.Bfl {
		t.Fatalf("roundtrip model %+v vs %+v", back, m)
	}
}

func TestFitRoundTripProperty(t *testing.T) {
	f := func(rawBth, rawBfl uint16) bool {
		bth := 1 + float64(rawBth)
		bfl := 1 + float64(rawBfl)*1e3
		m := Model{Bth: bth, Bfl: bfl, F0: 103e6}
		a, b := m.FitCoefficients()
		back := ModelFromFit(a, b, m.F0)
		return math.Abs(back.Bth-bth) < 1e-9*bth && math.Abs(back.Bfl-bfl) < 1e-9*bfl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSigmaN2NumericMatchesAnalytic(t *testing.T) {
	// The central identity of the paper: eq. 9 (integral) equals
	// eq. 11 (closed form).
	m := paperModel()
	for _, n := range []int{1, 4, 32, 281, 2048} {
		ana := m.SigmaN2(n)
		num := m.SigmaN2Numeric(n)
		if math.Abs(num-ana) > 0.02*ana {
			t.Fatalf("N=%d: numeric %g vs analytic %g (%.2f%%)", n, num, ana, 100*math.Abs(num-ana)/ana)
		}
	}
}

func TestSigmaN2NumericThermalOnly(t *testing.T) {
	m := Model{Bth: 276.04, Bfl: 0, F0: 103e6}
	for _, n := range []int{1, 64, 1024} {
		ana := m.SigmaN2(n)
		num := m.SigmaN2Numeric(n)
		if math.Abs(num-ana) > 0.02*ana {
			t.Fatalf("thermal-only N=%d: numeric %g vs analytic %g", n, num, ana)
		}
	}
}

func TestSigmaN2NumericFlickerOnly(t *testing.T) {
	m := Model{Bth: 0, Bfl: 1.9e6, F0: 103e6}
	for _, n := range []int{4, 64, 512} {
		ana := m.SigmaN2(n)
		num := m.SigmaN2Numeric(n)
		if math.Abs(num-ana) > 0.02*ana {
			t.Fatalf("flicker-only N=%d: numeric %g vs analytic %g", n, num, ana)
		}
	}
}

func TestSigmaN2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for N=0")
		}
	}()
	paperModel().SigmaN2(0)
}

func TestPeriodJitterPSDs(t *testing.T) {
	m := paperModel()
	h0, hm1 := m.PeriodJitterPSDs()
	// σ² = h0/(2f0) must equal b_th/f0³.
	sigma2 := h0 / (2 * m.F0)
	want := m.Bth / (m.F0 * m.F0 * m.F0)
	if math.Abs(sigma2-want) > 1e-12*want {
		t.Fatalf("h0 inconsistent: σ² %g vs %g", sigma2, want)
	}
	// Flicker: Var(s_N) from the Allan plateau must equal eq. 11's
	// quadratic term: 2(N/f0)²·2ln2·hm1 = 8ln2·Bfl·N²/f0⁴.
	n := 1000.0
	fromAllan := 2 * (n / m.F0) * (n / m.F0) * 2 * math.Ln2 * hm1
	fromEq11 := 8 * math.Ln2 * m.Bfl * n * n / (m.F0 * m.F0 * m.F0 * m.F0)
	if math.Abs(fromAllan-fromEq11) > 1e-9*fromEq11 {
		t.Fatalf("hm1 inconsistent: %g vs %g", fromAllan, fromEq11)
	}
}

func TestSimpsonExact(t *testing.T) {
	// Simpson is exact for cubics.
	got := simpson(func(x float64) float64 { return x * x * x }, 0, 2, 16)
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("simpson ∫x³ = %g, want 4", got)
	}
	// Odd n is rounded up internally.
	got = simpson(func(x float64) float64 { return x }, 0, 1, 3)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("simpson with odd n = %g", got)
	}
}
