// Package fitting implements the paper's §IV measurement principle: fit
// the normalized accumulated variance
//
//	f0²·σ²_N = a·N + b·N²
//
// to measured (N, σ²_N) points, then read off the transistor-level noise
// coefficients and the thermal-only period jitter:
//
//	b_th = a·f0/2,   b_fl = b·f0²/(8·ln2),   σ = sqrt(b_th/f0³).
//
// The fit is weighted least squares with per-point precisions from the
// σ²_N standard errors, through the origin (no constant term: eq. 11 has
// none).
package fitting

import (
	"fmt"
	"math"

	"repro/internal/jitter"
	"repro/internal/phase"
	"repro/internal/stats"
)

// Result is a completed Fig.-7-style fit plus everything the paper
// derives from it.
type Result struct {
	// A and B are the fitted coefficients of f0²σ²_N = A·N + B·N².
	A, B float64
	// AErr and BErr are their standard errors.
	AErr, BErr float64
	// Offset is the fitted constant term (counter quantization
	// floor, in normalized f0²·σ²_N units) when FitWithOffset was
	// used; zero otherwise.
	Offset, OffsetErr float64
	// Model is the reconstructed phase-noise model (b_th, b_fl, f0).
	Model phase.Model
	// SigmaThermal is the extracted thermal period jitter σ (s).
	SigmaThermal float64
	// SigmaThermalErr propagates AErr into σ.
	SigmaThermalErr float64
	// JitterRatio is σ/T0 = σ·f0.
	JitterRatio float64
	// CornerN is the fitted a/b ratio (the paper's 5354).
	CornerN float64
	// ChiSq and DoF summarize fit quality (ChiSq/DoF ≈ 1 when error
	// bars are honest).
	ChiSq float64
	DoF   int
}

// RN evaluates the fitted thermal share r_N = A·N/(A·N + B·N²)
// = CornerN/(CornerN+N).
func (r Result) RN(n int) float64 {
	den := r.A*float64(n) + r.B*float64(n)*float64(n)
	if den == 0 {
		return 0
	}
	return r.A * float64(n) / den
}

// IndependenceThreshold returns the largest N with r_N > rMin.
func (r Result) IndependenceThreshold(rMin float64) (int, bool) {
	return r.Model.IndependenceThreshold(rMin)
}

// Fit performs the weighted quadratic fit on variance estimates.
// Estimates with non-positive variance are rejected.
func Fit(estimates []jitter.VarianceEstimate, f0 float64) (Result, error) {
	if f0 <= 0 {
		return Result{}, fmt.Errorf("fitting: f0 = %g must be > 0", f0)
	}
	if len(estimates) < 2 {
		return Result{}, fmt.Errorf("fitting: need >= 2 points, got %d", len(estimates))
	}
	xs := make([]float64, 0, len(estimates))
	ys := make([]float64, 0, len(estimates))
	ws := make([]float64, 0, len(estimates))
	f02 := f0 * f0
	for _, e := range estimates {
		if e.SigmaN2 <= 0 {
			return Result{}, fmt.Errorf("fitting: non-positive σ²_N=%g at N=%d", e.SigmaN2, e.N)
		}
		xs = append(xs, float64(e.N))
		ys = append(ys, f02*e.SigmaN2)
		se := f02 * e.StdErr
		if se <= 0 {
			// fall back to uniform weighting for this point
			se = f02 * e.SigmaN2
		}
		ws = append(ws, 1/(se*se))
	}
	pf, err := stats.FitPolyWeighted(xs, ys, ws, []int{1, 2})
	if err != nil {
		return Result{}, fmt.Errorf("fitting: %w", err)
	}
	a, b := pf.Coeff[0], pf.Coeff[1]
	if a < 0 {
		return Result{}, fmt.Errorf("fitting: negative thermal coefficient a=%g (insufficient data?)", a)
	}
	if b < 0 {
		// A slightly negative curvature can appear when flicker is
		// absent and noise dominates; clamp to the thermal-only model.
		b = 0
	}
	model := phase.ModelFromFit(a, b, f0)
	sigma := model.SigmaThermal()
	var sigmaErr float64
	if a > 0 {
		// σ = sqrt(a/(2f0²·... )) ⇒ dσ/σ = da/(2a)
		sigmaErr = sigma * pf.CoeffErr[0] / (2 * a)
	}
	corner := math.Inf(1)
	if b > 0 {
		corner = a / b
	}
	return Result{
		A: a, B: b,
		AErr: pf.CoeffErr[0], BErr: pf.CoeffErr[1],
		Model:           model,
		SigmaThermal:    sigma,
		SigmaThermalErr: sigmaErr,
		JitterRatio:     sigma * f0,
		CornerN:         corner,
		ChiSq:           pf.ChiSq,
		DoF:             pf.DoF,
	}, nil
}

// FitWithOffset performs the quadratic fit with an additional constant
// term, f0²σ²_N = c + a·N + b·N², absorbing the quantization floor of a
// single-edge (or M-subdivided) counter measurement: dithered phase
// quantization adds a constant Δ²/2·f0² to every normalized variance
// point (measure.(*Counter).QuantizationFloor). The derived model uses
// only (a, b), exactly as the paper's method prescribes.
func FitWithOffset(estimates []jitter.VarianceEstimate, f0 float64) (Result, error) {
	if f0 <= 0 {
		return Result{}, fmt.Errorf("fitting: f0 = %g must be > 0", f0)
	}
	if len(estimates) < 3 {
		return Result{}, fmt.Errorf("fitting: offset fit needs >= 3 points, got %d", len(estimates))
	}
	xs := make([]float64, 0, len(estimates))
	ys := make([]float64, 0, len(estimates))
	ws := make([]float64, 0, len(estimates))
	f02 := f0 * f0
	for _, e := range estimates {
		if e.SigmaN2 <= 0 {
			return Result{}, fmt.Errorf("fitting: non-positive σ²_N=%g at N=%d", e.SigmaN2, e.N)
		}
		xs = append(xs, float64(e.N))
		ys = append(ys, f02*e.SigmaN2)
		se := f02 * e.StdErr
		if se <= 0 {
			se = f02 * e.SigmaN2
		}
		ws = append(ws, 1/(se*se))
	}
	pf, err := stats.FitPolyWeighted(xs, ys, ws, []int{0, 1, 2})
	if err != nil {
		return Result{}, fmt.Errorf("fitting: %w", err)
	}
	c, a, b := pf.Coeff[0], pf.Coeff[1], pf.Coeff[2]
	if a < 0 {
		return Result{}, fmt.Errorf("fitting: negative thermal coefficient a=%g (insufficient data?)", a)
	}
	if b < 0 {
		b = 0
	}
	model := phase.ModelFromFit(a, b, f0)
	sigma := model.SigmaThermal()
	var sigmaErr float64
	if a > 0 {
		sigmaErr = sigma * pf.CoeffErr[1] / (2 * a)
	}
	corner := math.Inf(1)
	if b > 0 {
		corner = a / b
	}
	return Result{
		A: a, B: b,
		AErr: pf.CoeffErr[1], BErr: pf.CoeffErr[2],
		Offset: c, OffsetErr: pf.CoeffErr[0],
		Model:           model,
		SigmaThermal:    sigma,
		SigmaThermalErr: sigmaErr,
		JitterRatio:     sigma * f0,
		CornerN:         corner,
		ChiSq:           pf.ChiSq,
		DoF:             pf.DoF,
	}, nil
}

// FitThermalOnly fits the pure linear law f0²σ²_N = a·N (for
// thermal-only data or for the small-N region where flicker is
// negligible) and returns the same Result shape with B = 0.
func FitThermalOnly(estimates []jitter.VarianceEstimate, f0 float64) (Result, error) {
	if f0 <= 0 {
		return Result{}, fmt.Errorf("fitting: f0 = %g must be > 0", f0)
	}
	if len(estimates) < 1 {
		return Result{}, fmt.Errorf("fitting: need >= 1 point")
	}
	xs := make([]float64, 0, len(estimates))
	ys := make([]float64, 0, len(estimates))
	ws := make([]float64, 0, len(estimates))
	f02 := f0 * f0
	for _, e := range estimates {
		xs = append(xs, float64(e.N))
		ys = append(ys, f02*e.SigmaN2)
		se := f02 * e.StdErr
		if se <= 0 {
			se = f02 * e.SigmaN2
		}
		ws = append(ws, 1/(se*se))
	}
	pf, err := stats.FitPolyWeighted(xs, ys, ws, []int{1})
	if err != nil {
		return Result{}, fmt.Errorf("fitting: %w", err)
	}
	a := pf.Coeff[0]
	model := phase.ModelFromFit(a, 0, f0)
	sigma := model.SigmaThermal()
	return Result{
		A:               a,
		AErr:            pf.CoeffErr[0],
		Model:           model,
		SigmaThermal:    sigma,
		SigmaThermalErr: sigma * pf.CoeffErr[0] / (2 * math.Max(a, 1e-300)),
		JitterRatio:     sigma * f0,
		CornerN:         math.Inf(1),
		ChiSq:           pf.ChiSq,
		DoF:             pf.DoF,
	}, nil
}

// LinearityCheck quantifies how far the measured σ²_N deviates from the
// best linear (independence-compatible) law: it returns the relative
// excess (σ²_N − a·N/f0²)/σ²_N at the largest N, which the Bienaymé
// argument says must be ≈ 0 under mutual independence. Values well
// above the estimate's relative standard error indicate dependence.
func LinearityCheck(estimates []jitter.VarianceEstimate, f0 float64) (relExcess float64, err error) {
	if len(estimates) < 3 {
		return 0, fmt.Errorf("fitting: linearity check needs >= 3 points")
	}
	// Fit the linear law on the first half (small N), extrapolate to
	// the last point.
	half := estimates[:len(estimates)/2]
	lin, err := FitThermalOnly(half, f0)
	if err != nil {
		return 0, err
	}
	last := estimates[len(estimates)-1]
	pred := lin.A * float64(last.N) / (f0 * f0)
	return (last.SigmaN2 - pred) / last.SigmaN2, nil
}
