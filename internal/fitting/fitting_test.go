package fitting

import (
	"math"
	"testing"

	"repro/internal/jitter"
	"repro/internal/phase"
	"repro/internal/rng"
)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

// syntheticSweep builds variance estimates that follow the model's
// σ²_N law with Gaussian scatter at the given relative error.
func syntheticSweep(m phase.Model, ns []int, relErr float64, seed uint64) []jitter.VarianceEstimate {
	r := rng.New(seed)
	out := make([]jitter.VarianceEstimate, 0, len(ns))
	for _, n := range ns {
		truth := m.SigmaN2(n)
		se := relErr * truth
		out = append(out, jitter.VarianceEstimate{
			N:       n,
			SigmaN2: truth + r.NormScaled(0, se),
			StdErr:  se,
			Samples: 1000,
		})
	}
	return out
}

func TestFitRecoversPaperConstants(t *testing.T) {
	m := paperModel()
	ns := jitter.LogSpacedNs(8, 100000, 6)
	sweep := syntheticSweep(m, ns, 0.01, 1)
	res, err := Fit(sweep, m.F0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.A-5.36e-6) > 0.05*5.36e-6 {
		t.Fatalf("a = %g, want 5.36e-6", res.A)
	}
	if math.Abs(res.CornerN-5354) > 0.15*5354 {
		t.Fatalf("a/b = %g, want 5354", res.CornerN)
	}
	if math.Abs(res.SigmaThermal-15.89e-12) > 0.5e-12 {
		t.Fatalf("σ = %g ps, want 15.89", res.SigmaThermal*1e12)
	}
	if math.Abs(res.JitterRatio-1.64e-3) > 0.1e-3 {
		t.Fatalf("σ/T0 = %g", res.JitterRatio)
	}
	// Reduced χ² near 1 with honest error bars.
	red := res.ChiSq / float64(res.DoF)
	if red > 3 || red < 0.1 {
		t.Fatalf("reduced χ² = %g", red)
	}
}

func TestFitErrorBarsCoverTruth(t *testing.T) {
	m := paperModel()
	ns := jitter.LogSpacedNs(8, 100000, 4)
	misses := 0
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		sweep := syntheticSweep(m, ns, 0.02, 100+s)
		res, err := Fit(sweep, m.F0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.A-5.36e-6) > 3*res.AErr {
			misses++
		}
	}
	// 3σ coverage: essentially all trials must cover.
	if misses > 2 {
		t.Fatalf("a outside 3σ in %d/%d trials", misses, trials)
	}
}

func TestFitWithOffsetRemovesFloor(t *testing.T) {
	m := paperModel()
	ns := jitter.LogSpacedNs(8, 100000, 6)
	sweep := syntheticSweep(m, ns, 0.01, 2)
	// Inject a constant quantization floor comparable to the small-N
	// signal.
	const floor = 5e-21
	for i := range sweep {
		sweep[i].SigmaN2 += floor
	}
	plain, err := Fit(sweep, m.F0)
	if err == nil {
		// The plain fit misattributes the floor; its a must be
		// biased high.
		if plain.A < 5.36e-6 {
			t.Log("plain fit unexpectedly unbiased (floor too small?)")
		}
	}
	res, err := FitWithOffset(sweep, m.F0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.A-5.36e-6) > 0.1*5.36e-6 {
		t.Fatalf("offset fit a = %g, want 5.36e-6", res.A)
	}
	wantOffset := floor * m.F0 * m.F0
	if math.Abs(res.Offset-wantOffset) > 0.5*wantOffset {
		t.Fatalf("offset = %g, want ~%g", res.Offset, wantOffset)
	}
}

func TestFitThermalOnly(t *testing.T) {
	m := phase.Model{Bth: 276.04, Bfl: 0, F0: 103e6}
	ns := []int{8, 32, 128, 512, 2048}
	sweep := syntheticSweep(m, ns, 0.01, 3)
	res, err := FitThermalOnly(sweep, m.F0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.A-5.36e-6) > 0.05*5.36e-6 {
		t.Fatalf("thermal-only a = %g", res.A)
	}
	if !math.IsInf(res.CornerN, 1) {
		t.Fatal("thermal-only corner should be +Inf")
	}
	if res.B != 0 {
		t.Fatal("thermal-only fit must have B = 0")
	}
}

func TestFitClampNegativeB(t *testing.T) {
	// Thermal-only truth with noise can produce a slightly negative
	// quadratic term; Fit must clamp it, not fail.
	m := phase.Model{Bth: 276.04, Bfl: 0, F0: 103e6}
	ns := []int{8, 16, 32, 64, 128, 256}
	for s := uint64(0); s < 20; s++ {
		sweep := syntheticSweep(m, ns, 0.03, 200+s)
		res, err := Fit(sweep, m.F0)
		if err != nil {
			t.Fatal(err)
		}
		if res.B < 0 {
			t.Fatalf("negative B = %g escaped clamp", res.B)
		}
	}
}

func TestFitValidation(t *testing.T) {
	m := paperModel()
	sweep := syntheticSweep(m, []int{8, 16, 32}, 0.01, 4)
	if _, err := Fit(sweep, 0); err == nil {
		t.Fatal("f0=0 accepted")
	}
	if _, err := Fit(sweep[:1], m.F0); err == nil {
		t.Fatal("single point accepted")
	}
	bad := append([]jitter.VarianceEstimate(nil), sweep...)
	bad[0].SigmaN2 = -1
	if _, err := Fit(bad, m.F0); err == nil {
		t.Fatal("negative variance accepted")
	}
	if _, err := FitWithOffset(sweep[:2], m.F0); err == nil {
		t.Fatal("offset fit with 2 points accepted")
	}
	if _, err := FitThermalOnly(nil, m.F0); err == nil {
		t.Fatal("empty thermal fit accepted")
	}
}

func TestResultRN(t *testing.T) {
	m := paperModel()
	ns := jitter.LogSpacedNs(8, 100000, 6)
	res, err := Fit(syntheticSweep(m, ns, 0.005, 5), m.F0)
	if err != nil {
		t.Fatal(err)
	}
	// r_N from the fit follows K/(K+N).
	for _, n := range []int{100, 1000, 5354} {
		want := res.CornerN / (res.CornerN + float64(n))
		if math.Abs(res.RN(n)-want) > 1e-9 {
			t.Fatalf("RN(%d) = %g, want %g", n, res.RN(n), want)
		}
	}
	if r := (Result{}).RN(10); r != 0 {
		t.Fatalf("zero-fit RN = %g", r)
	}
	thr, ok := res.IndependenceThreshold(0.95)
	if !ok {
		t.Fatal("threshold missing")
	}
	if thr < 200 || thr > 360 {
		t.Fatalf("N*(95%%) = %d, want ≈281", thr)
	}
}

func TestLinearityCheck(t *testing.T) {
	m := paperModel()
	ns := jitter.LogSpacedNs(8, 100000, 6)
	sweep := syntheticSweep(m, ns, 0.01, 6)
	excess, err := LinearityCheck(sweep, m.F0)
	if err != nil {
		t.Fatal(err)
	}
	// At N=100000 flicker dominates (corner 5354): excess ≈ 0.95.
	if excess < 0.5 {
		t.Fatalf("flicker data: relative excess = %g, want large", excess)
	}
	// Thermal-only data: excess compatible with 0.
	mt := phase.Model{Bth: 276.04, Bfl: 0, F0: 103e6}
	sweepT := syntheticSweep(mt, ns, 0.01, 7)
	excessT, err := LinearityCheck(sweepT, mt.F0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(excessT) > 0.1 {
		t.Fatalf("thermal data: relative excess = %g, want ~0", excessT)
	}
	if _, err := LinearityCheck(sweep[:2], m.F0); err == nil {
		t.Fatal("2-point linearity check accepted")
	}
}
