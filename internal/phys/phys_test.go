package phys

import (
	"errors"
	"math"
	"testing"
)

func TestThermalCurrentPSDFormula(t *testing.T) {
	tr := Transistor{Gm: 1e-3, ID: 1e-4, W: 1e-6, L: 1e-7, KFlicker: 0}
	want := 8.0 / 3.0 * Boltzmann * RoomTemperature * 1e-3
	if got := tr.ThermalCurrentPSD(); math.Abs(got-want) > 1e-30 {
		t.Fatalf("thermal PSD = %g, want %g", got, want)
	}
}

func TestThermalPSDScalesWithTemperature(t *testing.T) {
	tr := DefaultTransistor()
	tr.Temperature = 300
	p300 := tr.ThermalCurrentPSD()
	tr.Temperature = 600
	p600 := tr.ThermalCurrentPSD()
	if math.Abs(p600/p300-2) > 1e-12 {
		t.Fatalf("thermal PSD ratio %g, want 2", p600/p300)
	}
}

func TestFlickerCurrentPSDInverseF(t *testing.T) {
	tr := DefaultTransistor()
	p1 := tr.FlickerCurrentPSD(1e3)
	p2 := tr.FlickerCurrentPSD(2e3)
	if math.Abs(p1/p2-2) > 1e-12 {
		t.Fatalf("flicker PSD not 1/f: ratio %g", p1/p2)
	}
}

func TestFlickerPSDShrinkLaw(t *testing.T) {
	// The paper's conclusion: flicker PSD ∝ 1/L² (at fixed W it is
	// 1/(W·L²)); halving L quadruples it.
	tr := DefaultTransistor()
	p := tr.FlickerCurrentPSD(1e3)
	tr.L /= 2
	p2 := tr.FlickerCurrentPSD(1e3)
	if math.Abs(p2/p-4) > 1e-9 {
		t.Fatalf("flicker shrink ratio %g, want 4", p2/p)
	}
}

func TestFlickerPSDPanicsAtDC(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at f=0")
		}
	}()
	DefaultTransistor().FlickerCurrentPSD(0)
}

func TestCurrentPSDSum(t *testing.T) {
	tr := DefaultTransistor()
	f := 1e4
	want := tr.ThermalCurrentPSD() + tr.FlickerCurrentPSD(f)
	if got := tr.CurrentPSD(f); got != want {
		t.Fatalf("CurrentPSD = %g, want %g", got, want)
	}
}

func TestFlickerCornerFrequency(t *testing.T) {
	tr := DefaultTransistor()
	fc := tr.FlickerCornerFrequency()
	if fc <= 0 {
		t.Fatalf("corner %g must be positive", fc)
	}
	// At the corner the two PSDs are equal by definition.
	th := tr.ThermalCurrentPSD()
	fl := tr.FlickerCurrentPSD(fc)
	if math.Abs(th-fl) > 1e-9*th {
		t.Fatalf("PSDs at corner differ: %g vs %g", th, fl)
	}
}

func TestTransistorValidate(t *testing.T) {
	good := DefaultTransistor()
	if err := good.Validate(); err != nil {
		t.Fatalf("default transistor invalid: %v", err)
	}
	cases := []func(*Transistor){
		func(tr *Transistor) { tr.Gm = 0 },
		func(tr *Transistor) { tr.ID = -1 },
		func(tr *Transistor) { tr.W = 0 },
		func(tr *Transistor) { tr.L = 0 },
		func(tr *Transistor) { tr.KFlicker = -1 },
		func(tr *Transistor) { tr.Temperature = -1 },
	}
	for i, mutate := range cases {
		tr := DefaultTransistor()
		mutate(&tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid transistor accepted", i)
		}
	}
}

func TestTemperatureDefault(t *testing.T) {
	tr := Transistor{}
	if tr.T() != RoomTemperature {
		t.Fatalf("default temperature %g", tr.T())
	}
	tr.Temperature = 350
	if tr.T() != 350 {
		t.Fatalf("explicit temperature %g", tr.T())
	}
}

func TestInverterValidateAndDelay(t *testing.T) {
	inv := DefaultInverter()
	if err := inv.Validate(); err != nil {
		t.Fatalf("default inverter invalid: %v", err)
	}
	// t_d = C·V/(2I) with the defaults: 12fF·1.2V/240µA = 60 ps.
	want := 12e-15 * 1.2 / (2 * 120e-6)
	if got := inv.SwitchingDelay(); math.Abs(got-want) > 1e-18 {
		t.Fatalf("delay %g, want %g", got, want)
	}
	inv.CLoad = 0
	if err := inv.Validate(); err == nil {
		t.Fatal("zero CLoad accepted")
	}
	inv = DefaultInverter()
	inv.VDD = 0
	if err := inv.Validate(); err == nil {
		t.Fatal("zero VDD accepted")
	}
	inv = DefaultInverter()
	inv.NMOS.Gm = 0
	if err := inv.Validate(); err == nil {
		t.Fatal("bad NMOS accepted")
	}
}

func TestInverterNoiseSums(t *testing.T) {
	inv := DefaultInverter()
	if got := inv.ThermalCurrentPSD(); math.Abs(got-2*inv.NMOS.ThermalCurrentPSD()) > 1e-30 {
		t.Fatal("inverter thermal PSD is not the sum of both devices")
	}
	f := 1e3
	if got := inv.FlickerCurrentPSD(f); math.Abs(got-2*inv.NMOS.FlickerCurrentPSD(f)) > 1e-30 {
		t.Fatal("inverter flicker PSD is not the sum of both devices")
	}
}

func TestRingValidate(t *testing.T) {
	r := DefaultRing()
	if err := r.Validate(); err != nil {
		t.Fatalf("default ring invalid: %v", err)
	}
	r.Stages = 4
	if err := r.Validate(); !errors.Is(err, ErrStageCount) {
		t.Fatalf("even stage count: %v", err)
	}
	r.Stages = 1
	if err := r.Validate(); !errors.Is(err, ErrStageCount) {
		t.Fatalf("single stage: %v", err)
	}
}

func TestRingFrequencyNearPaper(t *testing.T) {
	r := DefaultRing()
	f0 := r.Frequency()
	if f0 < 95e6 || f0 > 110e6 {
		t.Fatalf("default ring f0 = %g MHz, want ~103 MHz", f0/1e6)
	}
	if math.Abs(r.Period()*f0-1) > 1e-12 {
		t.Fatal("Period and Frequency inconsistent")
	}
}

func TestRingFrequencyScalesWithStages(t *testing.T) {
	r := DefaultRing()
	f1 := r.Frequency()
	r.Stages = 2*r.Stages + 1 // more stages, slower
	f2 := r.Frequency()
	if f2 >= f1 {
		t.Fatalf("more stages should slow the ring: %g -> %g", f1, f2)
	}
}
