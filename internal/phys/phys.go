// Package phys provides physical constants, device operating parameters
// and the transistor-level noise current power spectral densities used by
// the multilevel P-TRNG stochastic model (Haddad et al., DATE 2014, §III-A).
//
// The package models the two dominant noise mechanisms of bulk CMOS
// devices identified by Lundberg:
//
//   - thermal noise, white (non-autocorrelated), with current PSD
//     S_th(f) = (8/3)·k·T·gm           [A²/Hz]
//   - flicker noise, autocorrelated, with current PSD
//     S_fl(f) = α·k·T·I_D² / (W·L²·f)  [A²/Hz]
//
// Both are modeled as a parasitic current source ids between drain and
// source. Because the two mechanisms are physically independent, the PSD
// of ids is their sum (paper eq. 1).
package phys

import (
	"errors"
	"fmt"
	"math"
)

// Physical constants (SI units).
const (
	// Boltzmann is the Boltzmann constant k in J/K.
	Boltzmann = 1.380649e-23
	// ElectronCharge is the elementary charge q in C.
	ElectronCharge = 1.602176634e-19
	// RoomTemperature is the default operating temperature in K.
	RoomTemperature = 300.0
)

// Transistor describes the small-signal and geometry parameters of a MOS
// transistor that enter the noise PSD formulas of paper §III-A.
type Transistor struct {
	// Gm is the transconductance gm in A/V (siemens).
	Gm float64
	// ID is the nominal drain-source current I_D in A.
	ID float64
	// W is the channel width in m.
	W float64
	// L is the channel length in m.
	L float64
	// KFlicker is the technology constant α associated with the
	// crystallography of the silicon (dimensionless scaling of the
	// flicker PSD formula). Typical bulk CMOS values fall in the
	// 1e-2 .. 1e2 range depending on normalization; the model only
	// uses it as a linear scale factor.
	KFlicker float64
	// Temperature is the operating temperature T in K. Zero means
	// RoomTemperature.
	Temperature float64
}

// Validate reports whether the transistor parameters are physically
// meaningful (all strictly positive where required).
func (t Transistor) Validate() error {
	switch {
	case t.Gm <= 0:
		return fmt.Errorf("phys: transconductance Gm = %g must be > 0", t.Gm)
	case t.ID <= 0:
		return fmt.Errorf("phys: drain current ID = %g must be > 0", t.ID)
	case t.W <= 0:
		return fmt.Errorf("phys: channel width W = %g must be > 0", t.W)
	case t.L <= 0:
		return fmt.Errorf("phys: channel length L = %g must be > 0", t.L)
	case t.KFlicker < 0:
		return fmt.Errorf("phys: flicker constant KFlicker = %g must be >= 0", t.KFlicker)
	case t.Temperature < 0:
		return fmt.Errorf("phys: temperature %g K must be >= 0", t.Temperature)
	}
	return nil
}

// T returns the operating temperature, defaulting to RoomTemperature.
func (t Transistor) T() float64 {
	if t.Temperature == 0 {
		return RoomTemperature
	}
	return t.Temperature
}

// ThermalCurrentPSD returns the one-sided thermal noise current PSD
// S_th = (8/3)·k·T·gm in A²/Hz. Thermal noise is white: the value is
// independent of frequency.
func (t Transistor) ThermalCurrentPSD() float64 {
	return 8.0 / 3.0 * Boltzmann * t.T() * t.Gm
}

// FlickerCurrentPSD returns the one-sided flicker noise current PSD
// S_fl(f) = α·k·T·I_D²/(W·L²·f) in A²/Hz at Fourier frequency f (Hz).
// It panics for f <= 0: the 1/f law diverges at DC and the caller must
// band-limit the analysis.
func (t Transistor) FlickerCurrentPSD(f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("phys: FlickerCurrentPSD requires f > 0, got %g", f))
	}
	return t.KFlicker * Boltzmann * t.T() * t.ID * t.ID / (t.W * t.L * t.L * f)
}

// FlickerCornerFrequency returns the frequency at which the flicker PSD
// equals the thermal PSD. Above the corner, thermal noise dominates.
// Returns 0 when flicker noise is absent.
func (t Transistor) FlickerCornerFrequency() float64 {
	th := t.ThermalCurrentPSD()
	if th == 0 {
		return math.Inf(1)
	}
	// S_fl(fc) = S_th  =>  fc = alpha·k·T·ID²/(W·L²·S_th)
	return t.KFlicker * Boltzmann * t.T() * t.ID * t.ID / (t.W * t.L * t.L * th)
}

// CurrentPSD returns the total noise current PSD S_ids(f) = S_th + S_fl(f)
// (paper eq. 1) in A²/Hz. The two mechanisms are independent so their
// PSDs add.
func (t Transistor) CurrentPSD(f float64) float64 {
	return t.ThermalCurrentPSD() + t.FlickerCurrentPSD(f)
}

// Inverter describes a CMOS inverter stage of a ring oscillator. The
// load capacitance and supply voltage enter Hajimiri's conversion from
// noise current to excess phase.
type Inverter struct {
	// NMOS and PMOS are the two transistors of the inverter.
	NMOS, PMOS Transistor
	// CLoad is the load capacitance C_L in F seen at the inverter
	// output (next-stage gate + wiring).
	CLoad float64
	// VDD is the supply voltage in V.
	VDD float64
}

// Validate reports whether the inverter parameters are physically
// meaningful.
func (inv Inverter) Validate() error {
	if err := inv.NMOS.Validate(); err != nil {
		return fmt.Errorf("NMOS: %w", err)
	}
	if err := inv.PMOS.Validate(); err != nil {
		return fmt.Errorf("PMOS: %w", err)
	}
	if inv.CLoad <= 0 {
		return fmt.Errorf("phys: load capacitance %g must be > 0", inv.CLoad)
	}
	if inv.VDD <= 0 {
		return fmt.Errorf("phys: supply voltage %g must be > 0", inv.VDD)
	}
	return nil
}

// SwitchingDelay returns the nominal propagation delay of the stage,
// approximated by the time to (dis)charge CLoad across half the supply
// with the average drive current: t_d = C_L·V_DD / (2·I_D).
// The NMOS drive current is used; for a symmetric inverter NMOS and PMOS
// currents are equal.
func (inv Inverter) SwitchingDelay() float64 {
	return inv.CLoad * inv.VDD / (2 * inv.NMOS.ID)
}

// ThermalCurrentPSD returns the combined thermal current PSD of both
// devices. During a transition one device conducts at a time, but both
// contribute noise over a full period; the standard approximation sums
// the two white PSDs.
func (inv Inverter) ThermalCurrentPSD() float64 {
	return inv.NMOS.ThermalCurrentPSD() + inv.PMOS.ThermalCurrentPSD()
}

// FlickerCurrentPSD returns the combined flicker current PSD of both
// devices at frequency f.
func (inv Inverter) FlickerCurrentPSD(f float64) float64 {
	return inv.NMOS.FlickerCurrentPSD(f) + inv.PMOS.FlickerCurrentPSD(f)
}

// ErrStageCount is returned when a ring has an invalid stage count.
var ErrStageCount = errors.New("phys: ring oscillator needs an odd stage count >= 3")

// Ring describes a classical single-ended ring oscillator made of
// identical inverter stages.
type Ring struct {
	// Stage is the inverter replicated around the loop.
	Stage Inverter
	// Stages is the number of inverters. Must be odd and >= 3 for a
	// classical single-ended ring to oscillate.
	Stages int
}

// Validate checks the ring parameters.
func (r Ring) Validate() error {
	if r.Stages < 3 || r.Stages%2 == 0 {
		return fmt.Errorf("%w: got %d", ErrStageCount, r.Stages)
	}
	return r.Stage.Validate()
}

// Frequency returns the nominal oscillation frequency
// f0 = 1/(2·n·t_d) for an n-stage ring with stage delay t_d.
func (r Ring) Frequency() float64 {
	return 1.0 / (2.0 * float64(r.Stages) * r.Stage.SwitchingDelay())
}

// Period returns the nominal oscillation period 1/f0.
func (r Ring) Period() float64 {
	return 2.0 * float64(r.Stages) * r.Stage.SwitchingDelay()
}

// DefaultTransistor returns transistor parameters representative of a
// mature bulk CMOS node (~130 nm class, as on a Cyclone III FPGA die),
// suitable as a starting point for examples and tests.
func DefaultTransistor() Transistor {
	return Transistor{
		Gm: 1.2e-3, // 1.2 mS
		ID: 120e-6, // 120 µA
		W:  1.0e-6, // 1 µm
		L:  130e-9, // 130 nm
		// Technology constant of the flicker formula
		// S_fl = α·k·T·I_D²/(W·L²·f). With this node's geometry it
		// places the device's flicker corner near 450 MHz, which —
		// through the ring's ISF up-conversion — yields the
		// a/b ≈ 5354 flicker share the paper measured.
		KFlicker:    1.68e-6,
		Temperature: RoomTemperature,
	}
}

// DefaultInverter returns an inverter built from DefaultTransistor with
// a load capacitance and supply representative of the same node.
func DefaultInverter() Inverter {
	t := DefaultTransistor()
	return Inverter{
		NMOS:  t,
		PMOS:  t,
		CLoad: 12e-15, // 12 fF
		VDD:   1.2,    // V
	}
}

// DefaultRing returns a ring sized so that its nominal frequency is close
// to the paper's 103 MHz experimental oscillator.
func DefaultRing() Ring {
	inv := DefaultInverter()
	// t_d = C·V/(2I) = 12f·1.2/(240µ) = 60 ps; f0 = 1/(2·n·60ps).
	// n = 81 gives f0 ≈ 102.9 MHz.
	return Ring{Stage: inv, Stages: 81}
}
