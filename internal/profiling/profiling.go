// Package profiling arms the -cpuprofile/-memprofile flag pair shared
// by the repository's long-running commands (cmd/trngd,
// cmd/experiments), so perf work can profile the serving and campaign
// paths without patching the binaries.
package profiling

import (
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins a CPU profile when cpu is non-empty and returns a stop
// function that ends it and then writes a heap profile when mem is
// non-empty (in that order, so the heap write is not itself profiled).
// The stop function is idempotent: callers defer it for the normal
// exit AND invoke it explicitly before any fatal exit, since os.Exit
// skips deferred calls — a truncated CPU profile is unusable. Errors
// while writing the heap profile are logged, not fatal: by then the
// command is already shutting down.
func Start(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if mem == "" {
				return
			}
			f, err := os.Create(mem)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		})
	}, nil
}
