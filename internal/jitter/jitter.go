// Package jitter provides the time-series constructions of paper §III-B:
// the period-jitter process J = T − 1/f0 (eq. 3), the accumulated
// difference statistic
//
//	s_N(t_i) = Σ_{j=0}^{2N−1} a_j·J(t_{i+j}),
//	a_j = −1 for j < N, +1 for N <= j < 2N   (eq. 4)
//
// and empirical estimators of its variance σ²_N with standard errors.
// s_N is the difference of two adjacent accumulations of N periods — the
// same construction that makes the Allan variance finite in the presence
// of flicker noise, which is why the paper adopts it instead of the
// plain variance of ΣJ.
package jitter

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// FromPeriods converts a slice of measured periods T(t_i) into
// period-jitter realizations J(t_i) = T(t_i) − 1/f0 (eq. 3).
func FromPeriods(periods []float64, f0 float64) []float64 {
	if f0 <= 0 {
		panic(fmt.Sprintf("jitter: f0 = %g must be > 0", f0))
	}
	t0 := 1 / f0
	out := make([]float64, len(periods))
	for i, t := range periods {
		out[i] = t - t0
	}
	return out
}

// SN computes the s_N series from jitter realizations. With n = len(j),
// the result has n − 2N + 1 entries: entry i uses realizations
// j[i..i+2N−1]. Overlapping windows maximize estimator efficiency;
// see SNNonOverlapping for strictly independent windows.
//
// Note that s_N needs only the jitter differences, so feeding raw
// periods T instead of J = T − 1/f0 yields the identical series: the
// constant 1/f0 cancels between the two halves. The estimators below
// exploit this to work directly on counter data.
func SN(j []float64, n int) []float64 {
	if n < 1 {
		panic(fmt.Sprintf("jitter: SN requires N >= 1, got %d", n))
	}
	if len(j) < 2*n {
		return nil
	}
	out := make([]float64, len(j)-2*n+1)
	// Initialize the two window sums for i = 0.
	var lo, hi float64 // lo = Σ j[0..N), hi = Σ j[N..2N)
	for k := 0; k < n; k++ {
		lo += j[k]
		hi += j[n+k]
	}
	out[0] = hi - lo
	// Slide: entering j[i+2N−1] joins hi; j[i+N−1] moves hi→lo;
	// j[i−1] leaves lo.
	for i := 1; i < len(out); i++ {
		lo += j[i+n-1] - j[i-1]
		hi += j[i+2*n-1] - j[i+n-1]
		out[i] = hi - lo
	}
	return out
}

// SNNonOverlapping computes s_N over disjoint windows: entry k uses
// realizations j[2Nk .. 2N(k+1)). The resulting samples are mutually
// independent when the underlying jitter is (making variance standard
// errors exact), at the cost of 2N× fewer samples.
func SNNonOverlapping(j []float64, n int) []float64 {
	if n < 1 {
		panic(fmt.Sprintf("jitter: SNNonOverlapping requires N >= 1, got %d", n))
	}
	m := len(j) / (2 * n)
	out := make([]float64, 0, m)
	for k := 0; k < m; k++ {
		base := 2 * n * k
		var lo, hi float64
		for i := 0; i < n; i++ {
			lo += j[base+i]
			hi += j[base+n+i]
		}
		out = append(out, hi-lo)
	}
	return out
}

// VarianceEstimate is an empirical σ²_N with its sampling uncertainty.
type VarianceEstimate struct {
	N int
	// SigmaN2 is the estimated Var(s_N) in s².
	SigmaN2 float64
	// StdErr is the (approximate, Gaussian-theory) standard error of
	// SigmaN2. For overlapping estimates it is inflated by the
	// effective-sample-size correction factor sqrt(2N).
	StdErr float64
	// Samples is the number of s_N values used.
	Samples int
}

// EstimateSigmaN2 estimates σ²_N from jitter realizations using
// overlapping windows. The mean of s_N is theoretically zero for a
// stationary jitter process, but the estimator removes the empirical
// mean anyway to be robust against residual frequency offset.
func EstimateSigmaN2(j []float64, n int) (VarianceEstimate, error) {
	s := SN(j, n)
	if len(s) < 2 {
		return VarianceEstimate{}, fmt.Errorf("jitter: %d realizations insufficient for N=%d", len(j), n)
	}
	_, v := stats.MeanVariance(s)
	// Overlapping windows share samples: roughly len(s)/(2N)
	// independent windows contribute.
	effective := float64(len(s)) / float64(2*n)
	if effective < 2 {
		effective = 2
	}
	se := v * math.Sqrt(2/(effective-1))
	return VarianceEstimate{N: n, SigmaN2: v, StdErr: se, Samples: len(s)}, nil
}

// EstimateSigmaN2NonOverlapping is the disjoint-window variant; its
// standard error follows the exact Gaussian-sample formula.
func EstimateSigmaN2NonOverlapping(j []float64, n int) (VarianceEstimate, error) {
	s := SNNonOverlapping(j, n)
	if len(s) < 2 {
		return VarianceEstimate{}, fmt.Errorf("jitter: %d realizations give only %d disjoint windows for N=%d", len(j), len(s), n)
	}
	_, v := stats.MeanVariance(s)
	return VarianceEstimate{
		N:       n,
		SigmaN2: v,
		StdErr:  stats.StdErrOfVariance(v, len(s)),
		Samples: len(s),
	}, nil
}

// Sweep estimates σ²_N for every N in ns from a single jitter record,
// using overlapping windows.
func Sweep(j []float64, ns []int) ([]VarianceEstimate, error) {
	out := make([]VarianceEstimate, 0, len(ns))
	for _, n := range ns {
		est, err := EstimateSigmaN2(j, n)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// LogSpacedNs returns ~pointsPerDecade integer N values geometrically
// spaced in [nMin, nMax], deduplicated and sorted ascending. It mirrors
// the N grid of the paper's Fig. 7 (log-scale x axis).
func LogSpacedNs(nMin, nMax, pointsPerDecade int) []int {
	if nMin < 1 || nMax < nMin || pointsPerDecade < 1 {
		panic(fmt.Sprintf("jitter: bad grid spec [%d, %d] x%d", nMin, nMax, pointsPerDecade))
	}
	ratio := math.Pow(10, 1/float64(pointsPerDecade))
	var out []int
	last := 0
	for x := float64(nMin); x <= float64(nMax)*1.0000001; x *= ratio {
		n := int(math.Round(x))
		if n > last {
			out = append(out, n)
			last = n
		}
	}
	if last < nMax {
		out = append(out, nMax)
	}
	return out
}

// AccumulatedPhase converts periods to absolute edge times:
// t_i = Σ_{k<=i} T_k (t_0 = first period). Used when an experiment needs
// the edge time series rather than periods.
func AccumulatedPhase(periods []float64) []float64 {
	out := make([]float64, len(periods))
	var t float64
	for i, p := range periods {
		t += p
		out[i] = t
	}
	return out
}
