package jitter

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFromPeriods(t *testing.T) {
	f0 := 100e6
	periods := []float64{1e-8, 1.1e-8, 0.9e-8}
	j := FromPeriods(periods, f0)
	want := []float64{0, 0.1e-8, -0.1e-8}
	for i := range want {
		if math.Abs(j[i]-want[i]) > 1e-20 {
			t.Fatalf("j[%d] = %g, want %g", i, j[i], want[i])
		}
	}
}

func TestFromPeriodsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0=0")
		}
	}()
	FromPeriods([]float64{1}, 0)
}

// naiveSN computes s_N directly from eq. 4 for cross-checking the
// sliding-window implementation.
func naiveSN(j []float64, n int) []float64 {
	if len(j) < 2*n {
		return nil
	}
	out := make([]float64, len(j)-2*n+1)
	for i := range out {
		var s float64
		for k := 0; k < 2*n; k++ {
			if k < n {
				s -= j[i+k]
			} else {
				s += j[i+k]
			}
		}
		out[i] = s
	}
	return out
}

func TestSNMatchesNaive(t *testing.T) {
	r := rng.New(1)
	j := make([]float64, 500)
	r.FillNorm(j)
	for _, n := range []int{1, 2, 7, 50, 250} {
		got := SN(j, n)
		want := naiveSN(j, n)
		if len(got) != len(want) {
			t.Fatalf("N=%d: len %d vs %d", n, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("N=%d i=%d: %g vs %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestSNShortInput(t *testing.T) {
	if SN([]float64{1, 2, 3}, 2) != nil {
		t.Fatal("expected nil for too-short input")
	}
}

func TestSNPanicsBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for N=0")
		}
	}()
	SN([]float64{1, 2}, 0)
}

func TestSNConstantInputIsZero(t *testing.T) {
	// Constant jitter cancels exactly in s_N (difference of equal sums).
	j := make([]float64, 100)
	for i := range j {
		j[i] = 42.0
	}
	for _, n := range []int{1, 5, 20} {
		for _, v := range SN(j, n) {
			if v != 0 {
				t.Fatalf("constant input produced s_N = %g", v)
			}
		}
	}
}

func TestSNLinearTrendProperty(t *testing.T) {
	// For j[i] = c·i, s_N = c·N² exactly (second difference structure).
	f := func(rawC int8, rawN uint8) bool {
		c := float64(rawC)
		n := int(rawN%10) + 1
		j := make([]float64, 4*n+3)
		for i := range j {
			j[i] = c * float64(i)
		}
		s := SN(j, n)
		want := c * float64(n) * float64(n)
		for _, v := range s {
			if math.Abs(v-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSNNonOverlappingDisjoint(t *testing.T) {
	r := rng.New(2)
	j := make([]float64, 1000)
	r.FillNorm(j)
	n := 10
	got := SNNonOverlapping(j, n)
	if len(got) != 50 {
		t.Fatalf("expected 50 disjoint windows, got %d", len(got))
	}
	full := SN(j, n)
	for k, v := range got {
		if math.Abs(v-full[2*n*k]) > 1e-12 {
			t.Fatalf("window %d mismatch", k)
		}
	}
}

func TestEstimateSigmaN2IIDGaussian(t *testing.T) {
	// For i.i.d. jitter with variance σ², Var(s_N) = 2Nσ² (Bienaymé).
	r := rng.New(3)
	const sigma = 3e-12
	j := make([]float64, 2_000_000)
	for i := range j {
		j[i] = sigma * r.Norm()
	}
	for _, n := range []int{1, 4, 32, 128} {
		est, err := EstimateSigmaN2(j, n)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * float64(n) * sigma * sigma
		if math.Abs(est.SigmaN2-want) > 0.05*want {
			t.Fatalf("N=%d: σ²_N = %g, want %g", n, est.SigmaN2, want)
		}
		if est.StdErr <= 0 {
			t.Fatalf("N=%d: no standard error", n)
		}
	}
}

func TestEstimateNonOverlappingAgrees(t *testing.T) {
	r := rng.New(4)
	j := make([]float64, 1_000_000)
	r.FillNorm(j)
	n := 16
	a, err := EstimateSigmaN2(j, n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSigmaN2NonOverlapping(j, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.SigmaN2-b.SigmaN2) > 0.1*a.SigmaN2 {
		t.Fatalf("overlapping %g vs disjoint %g", a.SigmaN2, b.SigmaN2)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := EstimateSigmaN2([]float64{1, 2}, 5); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := EstimateSigmaN2NonOverlapping([]float64{1, 2, 3, 4}, 2); err == nil {
		t.Fatal("single-window input accepted")
	}
}

func TestSweep(t *testing.T) {
	r := rng.New(5)
	j := make([]float64, 100000)
	r.FillNorm(j)
	ns := []int{1, 2, 4, 8}
	ests, err := Sweep(j, ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(ns) {
		t.Fatalf("%d estimates", len(ests))
	}
	for i, e := range ests {
		if e.N != ns[i] {
			t.Fatalf("estimate %d has N=%d", i, e.N)
		}
		// monotone growth for iid input
		if i > 0 && e.SigmaN2 <= ests[i-1].SigmaN2 {
			t.Fatalf("σ²_N not increasing at %d", i)
		}
	}
	if _, err := Sweep(j[:10], []int{100}); err == nil {
		t.Fatal("oversized N accepted")
	}
}

func TestLogSpacedNs(t *testing.T) {
	ns := LogSpacedNs(8, 32768, 6)
	if ns[0] != 8 {
		t.Fatalf("first = %d", ns[0])
	}
	if ns[len(ns)-1] != 32768 {
		t.Fatalf("last = %d", ns[len(ns)-1])
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatalf("not strictly increasing at %d", i)
		}
	}
	// roughly 6 points per decade over 3.6 decades → 20-24 points
	if len(ns) < 15 || len(ns) > 30 {
		t.Fatalf("%d grid points", len(ns))
	}
}

func TestLogSpacedNsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad grid")
		}
	}()
	LogSpacedNs(10, 5, 3)
}

func TestAccumulatedPhase(t *testing.T) {
	ts := AccumulatedPhase([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("cumsum[%d] = %g", i, ts[i])
		}
	}
}

func TestVarianceEstimateFields(t *testing.T) {
	r := rng.New(6)
	j := make([]float64, 10000)
	r.FillNorm(j)
	est, err := EstimateSigmaN2(j, 8)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 8 || est.Samples != len(j)-16+1 {
		t.Fatalf("estimate bookkeeping: %+v", est)
	}
}
