package flicker

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/stats"
)

// measurePSDLevel estimates hm1 by averaging f·S(f) over a mid-band
// region of a Welch PSD.
func measurePSDLevel(t *testing.T, g Generator, fs float64, n int, fLo, fHi float64) float64 {
	t.Helper()
	x := make([]float64, n)
	g.Fill(x)
	psd, err := dsp.Welch(x, fs, dsp.WelchOptions{SegmentLength: 4096, Overlap: 0.5, Detrend: true})
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	var cnt int
	for i, f := range psd.Freq {
		if f < fLo || f > fHi {
			continue
		}
		acc += f * psd.Power[i]
		cnt++
	}
	if cnt == 0 {
		t.Fatal("no PSD bins in band")
	}
	return acc / float64(cnt)
}

func TestKasdinPSDLevelAndSlope(t *testing.T) {
	const (
		hm1 = 3.0e-10
		fs  = 1e6
	)
	g, err := NewKasdin(KasdinOptions{Alpha: 1, HM1: hm1, SampleRate: fs, Seed: 1, KernelLength: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1<<18)
	g.Fill(x)
	psd, err := dsp.Welch(x, fs, dsp.WelchOptions{SegmentLength: 4096, Detrend: true})
	if err != nil {
		t.Fatal(err)
	}
	slope, _, err := psd.LogLogSlope(fs/1000, fs/8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope+1) > 0.15 {
		t.Fatalf("Kasdin log-log slope %g, want ~-1", slope)
	}
	level := measurePSDLevel(t, g, fs, 1<<18, fs/1000, fs/16)
	if math.Abs(level-hm1) > 0.2*hm1 {
		t.Fatalf("Kasdin PSD level f·S = %g, want %g", level, hm1)
	}
}

func TestOUPSDLevelAndSlope(t *testing.T) {
	const (
		hm1 = 5.0e-9
		fs  = 1e6
	)
	g, err := NewOU(OUOptions{HM1: hm1, SampleRate: fs, FMin: fs / 1e5, FMax: fs / 4, PolesPerDecade: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 1<<18)
	g.Fill(x)
	psd, err := dsp.Welch(x, fs, dsp.WelchOptions{SegmentLength: 4096, Detrend: true})
	if err != nil {
		t.Fatal(err)
	}
	slope, _, err := psd.LogLogSlope(fs/5000, fs/16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope+1) > 0.2 {
		t.Fatalf("OU log-log slope %g, want ~-1", slope)
	}
	level := measurePSDLevel(t, g, fs, 1<<18, fs/5000, fs/16)
	if math.Abs(level-hm1) > 0.25*hm1 {
		t.Fatalf("OU PSD level f·S = %g, want %g", level, hm1)
	}
}

// allanVariance computes the non-overlapping two-sample variance of y at
// averaging factor m (duplicated minimal logic to avoid an import cycle
// with internal/allan, which does not exist, but keeps this package's
// tests self-contained).
func allanVariance(y []float64, m int) float64 {
	groups := len(y) / m
	means := make([]float64, groups)
	for g := 0; g < groups; g++ {
		var s float64
		for i := 0; i < m; i++ {
			s += y[g*m+i]
		}
		means[g] = s / float64(m)
	}
	var acc float64
	for k := 0; k+1 < groups; k++ {
		d := means[k+1] - means[k]
		acc += d * d
	}
	return acc / (2 * float64(groups-1))
}

func TestFlickerAllanPlateau(t *testing.T) {
	// Flicker FM has Allan variance 2·ln2·hm1, independent of τ.
	const (
		hm1 = 1.0e-8
		fs  = 1e6
	)
	want := 2 * math.Ln2 * hm1
	for name, g := range map[string]Generator{
		"kasdin": mustKasdin(t, KasdinOptions{Alpha: 1, HM1: hm1, SampleRate: fs, Seed: 3, KernelLength: 1 << 15}),
		"ou":     mustOU(t, OUOptions{HM1: hm1, SampleRate: fs, FMin: fs / 1e7, FMax: fs / 4, PolesPerDecade: 4, Seed: 4}),
	} {
		y := make([]float64, 1<<20)
		g.Fill(y)
		for _, m := range []int{16, 64, 256} {
			av := allanVariance(y, m)
			if math.Abs(av-want) > 0.35*want {
				t.Errorf("%s: Allan variance at m=%d is %g, want ~%g", name, m, av, want)
			}
		}
	}
}

func mustKasdin(t *testing.T, o KasdinOptions) *KasdinGenerator {
	t.Helper()
	g, err := NewKasdin(o)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustOU(t *testing.T, o OUOptions) *OUGenerator {
	t.Helper()
	g, err := NewOU(o)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKasdinDeterminism(t *testing.T) {
	o := KasdinOptions{Alpha: 1, HM1: 1e-9, SampleRate: 1e6, Seed: 5, KernelLength: 1 << 10}
	a := mustKasdin(t, o)
	b := mustKasdin(t, o)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("Kasdin streams diverge at %d", i)
		}
	}
}

func TestOUDeterminism(t *testing.T) {
	o := OUOptions{HM1: 1e-9, SampleRate: 1e6, Seed: 6}
	a := mustOU(t, o)
	b := mustOU(t, o)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("OU streams diverge at %d", i)
		}
	}
}

func TestOUStationaryFromStart(t *testing.T) {
	// The variance of early samples must match late samples (no
	// warm-up transient), because poles start in their stationary law.
	g := mustOU(t, OUOptions{HM1: 1e-8, SampleRate: 1e6, FMin: 10, FMax: 2.5e5, Seed: 7})
	early := make([]float64, 20000)
	g.Fill(early)
	// skip ahead
	for i := 0; i < 500000; i++ {
		g.Next()
	}
	late := make([]float64, 20000)
	g.Fill(late)
	ve := stats.PopVariance(early)
	vl := stats.PopVariance(late)
	if ve < vl/3 || ve > vl*3 {
		t.Fatalf("variance drift: early %g vs late %g", ve, vl)
	}
}

func TestOUPoleCount(t *testing.T) {
	g := mustOU(t, OUOptions{HM1: 1, SampleRate: 1e6, FMin: 1, FMax: 1e5, PolesPerDecade: 2, Seed: 8})
	// 5 decades × 2 poles + 1 = 11
	if g.Poles() != 11 {
		t.Fatalf("poles = %d, want 11", g.Poles())
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewKasdin(KasdinOptions{Alpha: 0, HM1: 1, SampleRate: 1}); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewKasdin(KasdinOptions{Alpha: 1, HM1: 0, SampleRate: 1}); err == nil {
		t.Error("HM1=0 accepted")
	}
	if _, err := NewKasdin(KasdinOptions{Alpha: 1, HM1: 1, SampleRate: 0}); err == nil {
		t.Error("fs=0 accepted")
	}
	if _, err := NewKasdin(KasdinOptions{Alpha: 1, HM1: 1, SampleRate: 1, KernelLength: 1}); err == nil {
		t.Error("kernel length 1 accepted")
	}
	if _, err := NewOU(OUOptions{HM1: 0, SampleRate: 1}); err == nil {
		t.Error("OU HM1=0 accepted")
	}
	if _, err := NewOU(OUOptions{HM1: 1, SampleRate: 0}); err == nil {
		t.Error("OU fs=0 accepted")
	}
	if _, err := NewOU(OUOptions{HM1: 1, SampleRate: 1e6, FMin: 100, FMax: 10}); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := NewOU(OUOptions{HM1: 1, SampleRate: 1e6, PolesPerDecade: -1}); err == nil {
		t.Error("negative poles-per-decade accepted")
	}
}

func TestKasdinKernelRecursion(t *testing.T) {
	// For α = 1 the kernel is h_k = C(2k, k)/4^k; check first values:
	// 1, 1/2, 3/8, 5/16, 35/128.
	g := mustKasdin(t, KasdinOptions{Alpha: 1, HM1: 1, SampleRate: 1, KernelLength: 8})
	want := []float64{1, 0.5, 0.375, 0.3125, 35.0 / 128}
	for i, w := range want {
		if math.Abs(g.kernel[i]-w) > 1e-12 {
			t.Fatalf("kernel[%d] = %g, want %g", i, g.kernel[i], w)
		}
	}
}

func TestCrossGeneratorAgreement(t *testing.T) {
	// Both generators, calibrated to the same hm1, must produce the
	// same Allan plateau within tolerance (they share no code path for
	// the spectrum shape).
	const hm1 = 2e-9
	const fs = 1e6
	k := mustKasdin(t, KasdinOptions{Alpha: 1, HM1: hm1, SampleRate: fs, Seed: 9, KernelLength: 1 << 14})
	o := mustOU(t, OUOptions{HM1: hm1, SampleRate: fs, FMin: fs / 1e7, FMax: fs / 4, PolesPerDecade: 4, Seed: 10})
	yk := make([]float64, 1<<19)
	yo := make([]float64, 1<<19)
	k.Fill(yk)
	o.Fill(yo)
	ak := allanVariance(yk, 64)
	ao := allanVariance(yo, 64)
	if ak < ao/2 || ak > ao*2 {
		t.Fatalf("generators disagree: kasdin %g vs ou %g", ak, ao)
	}
}

// BenchmarkOUFill measures block generation throughput of the OU
// flicker synthesizer with the paper-like pole count (the oscillator
// hot loop's dominant cost).
func BenchmarkOUFill(b *testing.B) {
	g, err := NewOU(OUOptions{HM1: 1e-9, SampleRate: 100e6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 4096)
	b.SetBytes(int64(len(buf) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Fill(buf)
	}
}

// TestOUFillMatchesNext pins the restructured block Fill against the
// scalar path: the batched normal draws and per-pole inner loops must
// reproduce the Next stream bit for bit, across block boundaries and
// for lengths that are not multiples of the internal block.
func TestOUFillMatchesNext(t *testing.T) {
	opts := OUOptions{HM1: 3e-9, SampleRate: 1e6, Seed: 41}
	a, err := NewOU(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOU(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 7, 128, 129, 500} {
		got := make([]float64, n)
		a.Fill(got)
		for i := range got {
			if want := b.Next(); got[i] != want {
				t.Fatalf("len %d: Fill[%d] = %g, Next = %g", n, i, got[i], want)
			}
		}
	}
}

// TestAdvanceSumDeterminism pins seed determinism of the fast-forward:
// the same call sequence on same-seed generators yields identical sums
// and identical subsequent streams (the fast-forwarded state feeds the
// scalar path).
func TestAdvanceSumDeterminism(t *testing.T) {
	opts := OUOptions{HM1: 3e-9, SampleRate: 1e6, Seed: 42}
	a, err := NewOU(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOU(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 10, 1000, 1 << 20} {
		if sa, sb := a.AdvanceSum(n), b.AdvanceSum(n); sa != sb {
			t.Fatalf("AdvanceSum(%d): %g vs %g on identical seeds", n, sa, sb)
		}
		if na, nb := a.Next(), b.Next(); na != nb {
			t.Fatalf("post-AdvanceSum(%d) streams diverged", n)
		}
	}
	if a.AdvanceSum(0) != 0 || a.AdvanceSum(-3) != 0 {
		t.Fatal("AdvanceSum of a non-positive count must be 0")
	}
}

// TestAdvanceSumMatchesSteppedDistribution cross-validates the
// closed-form joint fast-forward against brute-force stepping: over an
// ensemble of independent generators, two consecutive window sums are
// collected either by summing Next or by two AdvanceSum calls. The
// mean, the window-sum variance and the adjacent-window correlation
// (the statistic the paper's whole argument rests on — flicker windows
// are NOT independent) must agree between the two methods within
// Monte-Carlo error.
func TestAdvanceSumMatchesSteppedDistribution(t *testing.T) {
	const (
		trials = 3000
		n      = 256
	)
	opts := OUOptions{HM1: 1e-6, SampleRate: 1e6, FMin: 20, PolesPerDecade: 3, Seed: 0}
	collect := func(fast bool) (s1, s2 []float64) {
		s1 = make([]float64, trials)
		s2 = make([]float64, trials)
		for i := 0; i < trials; i++ {
			o := opts
			o.Seed = uint64(i)*2 + 1
			if fast {
				o.Seed += 1 << 32 // decorrelate the two ensembles
			}
			g, err := NewOU(o)
			if err != nil {
				t.Fatal(err)
			}
			if fast {
				s1[i] = g.AdvanceSum(n)
				s2[i] = g.AdvanceSum(n)
				continue
			}
			for j := 0; j < n; j++ {
				s1[i] += g.Next()
			}
			for j := 0; j < n; j++ {
				s2[i] += g.Next()
			}
		}
		return s1, s2
	}
	moments := func(s1, s2 []float64) (mean, vr, corr float64) {
		var m1, m2 float64
		for i := range s1 {
			m1 += s1[i]
			m2 += s2[i]
		}
		m1 /= trials
		m2 /= trials
		var v1, v2, cv float64
		for i := range s1 {
			v1 += (s1[i] - m1) * (s1[i] - m1)
			v2 += (s2[i] - m2) * (s2[i] - m2)
			cv += (s1[i] - m1) * (s2[i] - m2)
		}
		return m1, v1 / trials, cv / math.Sqrt(v1*v2)
	}
	sm, sv, sc := moments(collect(false))
	fm, fv, fc := moments(collect(true))
	sd := math.Sqrt(sv)
	// Mean ≈ 0 for a stationary start; Monte-Carlo s.e. of the mean is
	// sd/√trials.
	if se := sd / math.Sqrt(trials); math.Abs(sm) > 5*se || math.Abs(fm) > 5*se {
		t.Fatalf("window-sum means: stepped %g, fast %g (s.e. %g)", sm, fm, se)
	}
	// Variance: relative s.e. ≈ √(2/trials) ≈ 2.6 %; allow 5σ-ish.
	if r := fv / sv; r < 0.87 || r > 1.15 {
		t.Fatalf("window-sum variance ratio fast/stepped = %g (stepped %g, fast %g)", r, sv, fv)
	}
	// Adjacent-window correlation: flicker makes it strongly positive;
	// both methods must see the same value within ~5/√trials.
	if sc < 0.2 {
		t.Fatalf("stepped adjacent-window correlation %g unexpectedly weak — test misconfigured", sc)
	}
	if math.Abs(sc-fc) > 0.1 {
		t.Fatalf("adjacent-window correlation: stepped %g, fast %g", sc, fc)
	}
}

// BenchmarkOUAdvanceSum measures the O(poles) fast-forward at the
// paper's operating window (K ≈ 10⁵ periods per output bit).
func BenchmarkOUAdvanceSum(b *testing.B) {
	g, err := NewOU(OUOptions{HM1: 1e-9, SampleRate: 100e6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.AdvanceSum(100_000)
	}
	_ = sink
}
