// Package flicker synthesizes 1/f^α noise, the autocorrelated noise
// mechanism that the paper identifies as the reason jitter realizations
// are NOT mutually independent.
//
// Two generators are provided and cross-validated against each other:
//
//   - Kasdin–Walter fractional integration of white Gaussian noise
//     (exact asymptotic 1/f^α spectrum, block-based, FFT convolution);
//   - a streaming superposition of Ornstein–Uhlenbeck (AR(1)) processes
//     with log-spaced corner frequencies (approximate 1/f over a
//     configurable band, O(1) per sample, suitable for long
//     event-driven oscillator simulations).
//
// Calibration convention: generators are parameterized by the one-sided
// PSD level hm1 such that S(f) = hm1/f for frequencies well inside the
// generator's band, with the process sampled at rate fs. For the
// ring-oscillator jitter model the process is the fractional frequency
// deviation y_i of the oscillator, sampled once per period (fs = f0),
// and hm1 = 2·b_fl/f0² reproduces the paper's flicker term
// σ²_N,fl = 8·ln2·b_fl·N²/f0⁴ (paper eq. 11).
package flicker

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/rng"
)

// KasdinGenerator produces 1/f^α noise by convolving white Gaussian
// noise with the fractional-integration impulse response
//
//	h_0 = 1,  h_k = h_{k−1}·(k−1+α/2)/k
//
// (Kasdin & Walter, 1992). Samples are produced in blocks; successive
// blocks are overlap-added so the autocorrelation is continuous across
// block boundaries up to the kernel length.
type KasdinGenerator struct {
	alpha   float64
	sigmaW  float64 // white-noise standard deviation
	kernel  []float64
	src     *rng.Source
	block   int
	pending []float64 // overlap tail carried into the next block
	buf     []float64 // ready-to-emit samples
	pos     int
}

// KasdinOptions configures a KasdinGenerator.
type KasdinOptions struct {
	// Alpha is the spectral exponent (S ∝ 1/f^α); 1 = flicker.
	Alpha float64
	// HM1 is the target one-sided PSD level: S(f) = HM1/f^α · fs^(α−1)
	// normalization is handled internally so that for Alpha = 1,
	// S(f) = HM1/f exactly (units²/Hz) when sampled at SampleRate.
	HM1 float64
	// SampleRate is the sampling rate fs in Hz.
	SampleRate float64
	// KernelLength bounds the impulse-response memory in samples;
	// correlations longer than this are truncated. Zero selects 1<<16.
	KernelLength int
	// BlockLength is the white-noise block size per convolution;
	// zero selects KernelLength.
	BlockLength int
	// Seed seeds the internal PRNG.
	Seed uint64
}

// NewKasdin constructs a Kasdin–Walter generator.
//
// Scaling derivation for Alpha = 1: the filter H(z) = (1−z⁻¹)^(−1/2)
// has |H(e^{i2πf/fs})|² = 1/(2·sin(πf/fs)) ≈ fs/(2πf) for f ≪ fs.
// With white input variance σ_w², the one-sided output PSD is
// S(f) = 2·σ_w²/fs·|H|² = σ_w²/(πf). Hence σ_w² = π·HM1 yields
// S(f) = HM1/f. For general α the small-f form is
// S(f) = 2σ_w²/fs·(fs/(2πf))^α, giving
// σ_w² = HM1·fs^(α−1)·(2π)^α/(2·fs^(α−1)·...) — resolved numerically
// below.
func NewKasdin(opt KasdinOptions) (*KasdinGenerator, error) {
	if opt.Alpha <= 0 || opt.Alpha >= 2 {
		return nil, fmt.Errorf("flicker: alpha %g out of (0, 2)", opt.Alpha)
	}
	if opt.HM1 <= 0 {
		return nil, fmt.Errorf("flicker: HM1 %g must be > 0", opt.HM1)
	}
	if opt.SampleRate <= 0 {
		return nil, fmt.Errorf("flicker: sample rate %g must be > 0", opt.SampleRate)
	}
	kl := opt.KernelLength
	if kl == 0 {
		kl = 1 << 16
	}
	if kl < 2 {
		return nil, fmt.Errorf("flicker: kernel length %d too short", kl)
	}
	bl := opt.BlockLength
	if bl == 0 {
		bl = kl
	}

	kernel := make([]float64, kl)
	kernel[0] = 1
	for k := 1; k < kl; k++ {
		kernel[k] = kernel[k-1] * (float64(k-1) + opt.Alpha/2) / float64(k)
	}

	// One-sided PSD of filtered white noise: S(f) = 2σ_w²/fs·|H|²,
	// |H|² = (2 sin(πf/fs))^(−α). Small-f: S(f) = 2σ_w²/fs·(fs/(2πf))^α.
	// Target S(f) = HM1/f^α  ⇒  σ_w² = HM1·fs·(2π/fs)^α/2.
	fs := opt.SampleRate
	sigmaW2 := opt.HM1 * fs * math.Pow(2*math.Pi/fs, opt.Alpha) / 2
	g := &KasdinGenerator{
		alpha:   opt.Alpha,
		sigmaW:  math.Sqrt(sigmaW2),
		kernel:  kernel,
		src:     rng.New(opt.Seed),
		block:   bl,
		pending: make([]float64, kl-1),
	}
	return g, nil
}

// refill produces the next block of output samples by overlap-add
// convolution.
func (g *KasdinGenerator) refill() {
	white := make([]float64, g.block)
	for i := range white {
		white[i] = g.sigmaW * g.src.Norm()
	}
	full := dsp.Convolve(white, g.kernel) // length block + kl − 1
	out := full[:g.block]
	// add carried tail
	for i := 0; i < len(g.pending) && i < len(out); i++ {
		out[i] += g.pending[i]
	}
	// carry the new tail (and any unconsumed old tail beyond block)
	newPending := make([]float64, len(g.kernel)-1)
	copy(newPending, full[g.block:])
	if g.block < len(g.pending) {
		for i := g.block; i < len(g.pending); i++ {
			newPending[i-g.block] += g.pending[i]
		}
	}
	g.pending = newPending
	g.buf = out
	g.pos = 0
}

// Next returns the next flicker-noise sample.
func (g *KasdinGenerator) Next() float64 {
	if g.pos >= len(g.buf) {
		g.refill()
	}
	v := g.buf[g.pos]
	g.pos++
	return v
}

// Fill fills dst with consecutive samples.
func (g *KasdinGenerator) Fill(dst []float64) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// OUGenerator produces approximate 1/f noise as a sum of first-order
// autoregressive (discretized Ornstein–Uhlenbeck) processes with corner
// frequencies geometrically spaced between FMin and FMax. Each pole
// contributes a Lorentzian; with equal per-pole variance c and ratio r
// between successive corners, the summed one-sided PSD approaches
// c/(ln r · f) between the corners, so c = HM1·ln r calibrates the
// generator.
//
// Unlike the Kasdin generator its memory is O(poles) and the spectrum
// flattens below FMin — which is also what physical flicker noise must
// do, and keeps long simulations wide-sense stationary.
type OUGenerator struct {
	states  []float64
	as      []float64 // AR(1) pole coefficients a = exp(−λ·dt)
	qs      []float64 // innovation standard deviations
	lams    []float64 // λ·dt per pole (kept exact for the fast-forward)
	c       float64   // stationary per-pole variance
	scratch []float64 // reused normal-draw buffer (Fill, AdvanceSum)
	src     *rng.Source
}

// OUOptions configures an OUGenerator.
type OUOptions struct {
	// HM1 is the target one-sided PSD level S(f) = HM1/f inside
	// [FMin, FMax].
	HM1 float64
	// SampleRate is the sampling rate in Hz.
	SampleRate float64
	// FMin, FMax bound the 1/f band. Zero values select
	// SampleRate/1e7 and SampleRate/4 respectively.
	FMin, FMax float64
	// PolesPerDecade controls the approximation density; zero
	// selects 3.
	PolesPerDecade int
	// Seed seeds the internal PRNG.
	Seed uint64
}

// NewOU constructs a streaming sum-of-OU flicker generator.
func NewOU(opt OUOptions) (*OUGenerator, error) {
	if opt.HM1 <= 0 {
		return nil, fmt.Errorf("flicker: HM1 %g must be > 0", opt.HM1)
	}
	if opt.SampleRate <= 0 {
		return nil, fmt.Errorf("flicker: sample rate %g must be > 0", opt.SampleRate)
	}
	fmin := opt.FMin
	if fmin == 0 {
		fmin = opt.SampleRate / 1e7
	}
	fmax := opt.FMax
	if fmax == 0 {
		fmax = opt.SampleRate / 4
	}
	if fmin <= 0 || fmax <= fmin {
		return nil, fmt.Errorf("flicker: invalid band [%g, %g]", fmin, fmax)
	}
	ppd := opt.PolesPerDecade
	if ppd == 0 {
		ppd = 3
	}
	if ppd < 1 {
		return nil, fmt.Errorf("flicker: poles per decade %d must be >= 1", ppd)
	}

	decades := math.Log10(fmax / fmin)
	nPoles := int(math.Ceil(decades*float64(ppd))) + 1
	r := math.Pow(10, 1/float64(ppd)) // ratio between corners
	c := opt.HM1 * math.Log(r)        // per-pole variance

	dt := 1 / opt.SampleRate
	g := &OUGenerator{
		states: make([]float64, nPoles),
		as:     make([]float64, nPoles),
		qs:     make([]float64, nPoles),
		lams:   make([]float64, nPoles),
		c:      c,
		src:    rng.New(opt.Seed),
	}
	for k := 0; k < nPoles; k++ {
		fk := fmin * math.Pow(r, float64(k))
		lambda := 2 * math.Pi * fk
		a := math.Exp(-lambda * dt)
		g.as[k] = a
		g.lams[k] = lambda * dt
		g.qs[k] = math.Sqrt(c * (1 - a*a))
		// Start each pole in its stationary distribution so the
		// output is stationary from the first sample.
		g.states[k] = math.Sqrt(c) * g.src.Norm()
	}
	return g, nil
}

// Poles returns the number of AR(1) components.
func (g *OUGenerator) Poles() int { return len(g.states) }

// Next returns the next flicker-noise sample.
func (g *OUGenerator) Next() float64 {
	var sum float64
	for k := range g.states {
		g.states[k] = g.as[k]*g.states[k] + g.qs[k]*g.src.Norm()
		sum += g.states[k]
	}
	return sum
}

// ouFillBlock is Fill's sample block: the normal-draw scratch is
// bounded at poles×ouFillBlock floats (≈ 24 KiB at the paper-like
// ~24-pole configuration — inside L1) while still amortizing the
// per-block bookkeeping.
const ouFillBlock = 128

// Fill fills dst with consecutive samples. It is the block form of
// Next, restructured for locality: all the block's Gaussian innovations
// are drawn first in one batched pass (rng.Source.FillNorm into a
// reused scratch buffer), then one inner loop per pole sweeps the whole
// block with the pole's state, coefficient and innovation σ held in
// registers. The scratch is filled in sample-major order — sample i's
// draws at z[i·P..i·P+P) — which is exactly the order repeated Next
// calls consume the source, and each output accumulates its pole
// contributions in ascending pole order, so the emitted stream is
// bit-identical to len(dst) successive Next calls.
func (g *OUGenerator) Fill(dst []float64) {
	p := len(g.states)
	for len(dst) > 0 {
		n := len(dst)
		if n > ouFillBlock {
			n = ouFillBlock
		}
		z := g.scratchFor(n * p)
		g.src.FillNorm(z)
		blk := dst[:n]
		for i := range blk {
			blk[i] = 0
		}
		for k := range g.states {
			a, q, x := g.as[k], g.qs[k], g.states[k]
			for i := 0; i < n; i++ {
				x = a*x + q*z[i*p+k]
				blk[i] += x
			}
			g.states[k] = x
		}
		dst = dst[n:]
	}
}

// scratchFor returns the reused draw buffer resized to n floats.
func (g *OUGenerator) scratchFor(n int) []float64 {
	if cap(g.scratch) < n {
		g.scratch = make([]float64, n)
	}
	return g.scratch[:n]
}

// AdvanceSum fast-forwards the generator by n samples in O(poles) time
// and returns a sample of the sum of the n skipped outputs. For each
// AR(1) pole with state x₀, the pair (end state x_n, window sum
// S_n = Σ_{i=1..n} x_i) is jointly Gaussian with closed-form moments
// (A = aⁿ, q² the innovation variance):
//
//	E[x_n]       = A·x₀
//	E[S_n]       = x₀·a·(1−A)/(1−a)
//	Var(x_n)     = q²·(1−A²)/(1−a²)
//	Cov(x_n,S_n) = q²/(1−a)·[(1−A)/(1−a) − a·(1−A²)/(1−a²)]
//	Var(S_n)     = q²/(1−a)²·[n − 2a·(1−A)/(1−a) + a²·(1−A²)/(1−a²)]
//
// so drawing (x_n, S_n) through the 2×2 Cholesky factor is EXACT in
// distribution — including the autocorrelation carried across
// successive windows through the end states — while consuming two
// normals per pole regardless of n. The geometric-series factors are
// evaluated through expm1 of the stored λ·dt so slow poles (a → 1)
// lose no precision. Deterministic in the seed: a fixed call sequence
// draws a fixed normal stream (batched, pole-major: pole k consumes
// draws 2k and 2k+1).
//
// AdvanceSum is the primitive behind osc.(*Oscillator).Leapfrog; it is
// NOT the same realization as n Next calls (it spends 2 instead of n
// draws per pole), so fast-forwarded and stepped streams agree only in
// distribution.
func (g *OUGenerator) AdvanceSum(n int) float64 {
	if n <= 0 {
		return 0
	}
	z := g.scratchFor(2 * len(g.states))
	g.src.FillNorm(z)
	nf := float64(n)
	var total float64
	for k := range g.states {
		lam := g.lams[k]
		a := g.as[k]
		em1 := -math.Expm1(-lam)           // 1 − a
		em2 := -math.Expm1(-2 * lam)       // 1 − a²
		em1n := -math.Expm1(-nf * lam)     // 1 − aⁿ
		em2n := -math.Expm1(-2 * nf * lam) // 1 − a²ⁿ
		r1 := em1n / em1                   // Σ_{i=0..n−1} aⁱ
		r2 := em2n / em2                   // Σ_{i=0..n−1} a²ⁱ
		varX := g.c * em2n
		covXS := g.c * em2 / em1 * (r1 - a*r2)
		varS := g.c * em2 / (em1 * em1) * (nf - 2*a*r1 + a*a*r2)
		x := g.states[k]
		muX := (1 - em1n) * x
		muS := x * a * r1
		sx := math.Sqrt(varX)
		var c1 float64
		if sx > 0 {
			c1 = covXS / sx
		}
		var res float64
		if d := varS - c1*c1; d > 0 {
			res = math.Sqrt(d)
		}
		z1, z2 := z[2*k], z[2*k+1]
		g.states[k] = muX + sx*z1
		total += muS + c1*z1 + res*z2
	}
	return total
}

// Generator is the common interface of the flicker-noise synthesizers.
type Generator interface {
	Next() float64
	Fill(dst []float64)
}

// Summer is the optional fast-forward extension of Generator: an
// AdvanceSum that skips n samples in O(1) while returning their sum,
// exact in distribution. The oscillator leapfrog path type-asserts for
// it and falls back to edge-level stepping when the configured
// generator (e.g. the Kasdin synthesizer, whose fractional-integration
// memory has no closed-form skip) does not provide it.
type Summer interface {
	Generator
	AdvanceSum(n int) float64
}

var (
	_ Generator = (*KasdinGenerator)(nil)
	_ Summer    = (*OUGenerator)(nil)
)
