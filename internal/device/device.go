// Package device assembles the transistor-level noise analysis of the
// paper's multilevel approach: it combines the noise current PSDs of
// internal/phys with the ISF conversion of internal/isf to produce the
// phase-noise coefficients (b_th, b_fl) of a complete ring oscillator,
//
//	Sφ(f) = b_fl/f³ + b_th/f²   (paper eq. 10),
//
// which the higher layers (internal/phase, internal/osc) consume. This
// is the bottom level of Fig. 3's "multilevel randomness harvesting
// model": semiconductor physics in, stochastic jitter model out.
package device

import (
	"fmt"
	"math"

	"repro/internal/isf"
	"repro/internal/phys"
)

// NoiseBudget is the transistor-level result consumed by the oscillator
// phase model: the coefficients of the two regions of the excess-phase
// PSD, plus bookkeeping for reporting.
type NoiseBudget struct {
	// Bth is the thermal (white-noise-induced) coefficient of the
	// 1/f² phase-PSD region, in Hz.
	Bth float64
	// Bfl is the flicker-induced coefficient of the 1/f³ region,
	// in Hz².
	Bfl float64
	// F0 is the oscillator nominal frequency in Hz.
	F0 float64
	// ThermalCurrentPSD is the per-stage white current PSD in A²/Hz.
	ThermalCurrentPSD float64
	// FlickerCurrentK is the per-stage flicker current coefficient
	// (S_fl(f) = K/f) in A².
	FlickerCurrentK float64
	// QMax is the maximum charge swing C_L·V_DD in C.
	QMax float64
	// GammaRMS and C0 are the ISF statistics used in the conversion.
	GammaRMS, C0 float64
}

// SigmaThermal returns the thermal-only period jitter standard deviation
// σ = sqrt(b_th/f0³) (paper §IV-A).
func (nb NoiseBudget) SigmaThermal() float64 {
	return math.Sqrt(nb.Bth / (nb.F0 * nb.F0 * nb.F0))
}

// JitterRatio returns the relative thermal jitter σ/T0 = σ·f0, the
// figure of merit the paper reports as 1.6 ‰.
func (nb NoiseBudget) JitterRatio() float64 {
	return nb.SigmaThermal() * nb.F0
}

// FlickerCornerN returns the accumulation length N at which the flicker
// contribution to σ²_N equals the thermal contribution, i.e. the a/b
// ratio of the paper's fit σ²_N·f0² = a·N + b·N². Beyond this N the
// flicker-induced dependence of jitter realizations dominates.
func (nb NoiseBudget) FlickerCornerN() float64 {
	if nb.Bfl == 0 {
		return math.Inf(1)
	}
	// a = 2·b_th/f0, b = 8·ln2·b_fl/f0² (coefficients of f0²σ²_N).
	a := 2 * nb.Bth / nb.F0
	b := 8 * math.Ln2 * nb.Bfl / (nb.F0 * nb.F0)
	return a / b
}

// Options tunes the device-to-phase-noise conversion.
type Options struct {
	// ISFSamples sets the ISF sampling resolution (default 4096).
	ISFSamples int
	// Asymmetry is the rise/fall asymmetry of the ring ISF in
	// [-1, 1]; it controls flicker up-conversion (c0). Real
	// single-ended rings are never perfectly symmetric; the default
	// 0.4 yields flicker corners representative of FPGA rings.
	Asymmetry float64
	// FlickerRefFreq is the frequency (Hz) at which the transistor
	// flicker PSD is read to obtain its K coefficient. Any positive
	// value gives the same K because S_fl = K/f exactly; default 1 Hz.
	FlickerRefFreq float64
	// ThermalExcess scales the white current PSD above the intrinsic
	// channel noise of eq. (1). Practical oscillators — FPGA rings
	// especially — exceed the intrinsic thermal-jitter bound by one
	// to two orders of magnitude: supply and substrate coupling,
	// interconnect and access-transistor resistance, and the long
	// LUT routing all inject additional wideband noise (McNeill 1997,
	// Abidi 2006 discuss the gap). The default 165 is calibrated so
	// that DefaultRing reproduces the per-ring thermal coefficient
	// behind the paper's Cyclone III measurement (b_th ≈ 138 Hz per
	// ring, 276 Hz differential). Set to 1 for the intrinsic bound.
	ThermalExcess float64
}

func (o *Options) fill() {
	if o.ISFSamples == 0 {
		o.ISFSamples = 4096
	}
	if o.Asymmetry == 0 {
		o.Asymmetry = 0.4
	}
	if o.FlickerRefFreq == 0 {
		o.FlickerRefFreq = 1
	}
	if o.ThermalExcess == 0 {
		o.ThermalExcess = 165
	}
}

// Analyze performs the multilevel noise analysis of a ring oscillator:
// transistor PSDs → per-stage noise → ISF conversion → (b_th, b_fl).
//
// Stage noise sources are mutually independent across the n stages, so
// their phase-PSD contributions add linearly; each stage contains an
// NMOS and a PMOS whose PSDs likewise add (phys.Inverter).
func Analyze(ring phys.Ring, opt Options) (NoiseBudget, error) {
	if err := ring.Validate(); err != nil {
		return NoiseBudget{}, err
	}
	opt.fill()
	if opt.Asymmetry < -1 || opt.Asymmetry > 1 {
		return NoiseBudget{}, fmt.Errorf("device: asymmetry %g out of [-1, 1]", opt.Asymmetry)
	}

	inv := ring.Stage
	qMax := inv.CLoad * inv.VDD
	f0 := ring.Frequency()

	sTh := opt.ThermalExcess * inv.ThermalCurrentPSD()
	// S_fl(f) = K/f  ⇒  K = f·S_fl(f) at any f > 0.
	kFl := opt.FlickerRefFreq * inv.FlickerCurrentPSD(opt.FlickerRefFreq)

	gamma := isf.RingOscillatorISF(ring.Stages, opt.Asymmetry, opt.ISFSamples)

	// n independent stages contribute additively.
	n := float64(ring.Stages)
	bth := n * gamma.PhaseNoiseWhite(sTh, qMax)
	bfl := n * gamma.PhaseNoiseFlicker(kFl, qMax)

	return NoiseBudget{
		Bth:               bth,
		Bfl:               bfl,
		F0:                f0,
		ThermalCurrentPSD: sTh,
		FlickerCurrentK:   kFl,
		QMax:              qMax,
		GammaRMS:          gamma.RMS(),
		C0:                gamma.C0(),
	}, nil
}

// PaperBudget returns the noise budget measured in the paper's FPGA
// experiment (§III-E, §IV-B): f0 = 103 MHz, fitted slope
// a = f0²σ²_N/N = 5.36e-6 ⇒ b_th = a·f0/2 = 276.04 Hz, and ratio
// a/b = 5354 ⇒ b_fl = b·f0²/(8·ln2) ≈ 1.915e6 Hz². Use it to calibrate
// simulators so the estimation pipeline can be checked against the
// paper's reported numbers.
func PaperBudget() NoiseBudget {
	const (
		f0    = 103e6
		a     = 5.36e-6
		ratio = 5354.0
	)
	bth := a * f0 / 2
	b := a / ratio
	bfl := b * f0 * f0 / (8 * math.Ln2)
	return NoiseBudget{Bth: bth, Bfl: bfl, F0: f0}
}

// ShrinkTechnology returns a copy of t with channel length and width
// scaled by the factor s < 1, modeling technology shrinking. The paper's
// conclusion notes that flicker PSD grows as 1/L², so shrinking
// increases the flicker share of the jitter and lowers the independence
// threshold N*.
func ShrinkTechnology(t phys.Transistor, s float64) phys.Transistor {
	if s <= 0 {
		panic(fmt.Sprintf("device: shrink factor %g must be > 0", s))
	}
	t.W *= s
	t.L *= s
	return t
}
