package device

import (
	"math"
	"testing"

	"repro/internal/phys"
)

func TestAnalyzeDefaults(t *testing.T) {
	nb, err := Analyze(phys.DefaultRing(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Bth <= 0 {
		t.Fatalf("Bth = %g, want > 0", nb.Bth)
	}
	if nb.Bfl <= 0 {
		t.Fatalf("Bfl = %g, want > 0", nb.Bfl)
	}
	if nb.F0 < 90e6 || nb.F0 > 115e6 {
		t.Fatalf("F0 = %g MHz, want ~103", nb.F0/1e6)
	}
	if nb.GammaRMS <= 0 || nb.C0 == 0 {
		t.Fatalf("ISF stats missing: Γrms=%g c0=%g", nb.GammaRMS, nb.C0)
	}
	if nb.QMax != phys.DefaultInverter().CLoad*phys.DefaultInverter().VDD {
		t.Fatalf("QMax = %g", nb.QMax)
	}
}

func TestAnalyzeRejectsBadRing(t *testing.T) {
	bad := phys.DefaultRing()
	bad.Stages = 2
	if _, err := Analyze(bad, Options{}); err == nil {
		t.Fatal("even-stage ring accepted")
	}
	if _, err := Analyze(phys.DefaultRing(), Options{Asymmetry: 2}); err == nil {
		t.Fatal("asymmetry > 1 accepted")
	}
}

func TestAnalyzeThermalScalesWithTemperature(t *testing.T) {
	ring := phys.DefaultRing()
	nb1, err := Analyze(ring, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring.Stage.NMOS.Temperature = 2 * phys.RoomTemperature
	ring.Stage.PMOS.Temperature = 2 * phys.RoomTemperature
	nb2, err := Analyze(ring, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nb2.Bth/nb1.Bth-2) > 1e-9 {
		t.Fatalf("Bth temperature ratio %g, want 2", nb2.Bth/nb1.Bth)
	}
}

func TestAnalyzeSymmetrySuppresesFlicker(t *testing.T) {
	ring := phys.DefaultRing()
	sym, err := Analyze(ring, Options{Asymmetry: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	asym, err := Analyze(ring, Options{Asymmetry: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if sym.Bfl >= asym.Bfl/100 {
		t.Fatalf("symmetry should suppress flicker: sym %g vs asym %g", sym.Bfl, asym.Bfl)
	}
	// Thermal coefficient is only weakly affected by asymmetry (Γrms
	// changes slightly with peak amplitudes).
	if sym.Bth <= 0 || asym.Bth <= 0 {
		t.Fatal("thermal coefficient vanished")
	}
}

func TestSigmaAndRatio(t *testing.T) {
	nb := PaperBudget()
	sigma := nb.SigmaThermal()
	if math.Abs(sigma-15.89e-12) > 0.05e-12 {
		t.Fatalf("paper σ = %g ps, want 15.89", sigma*1e12)
	}
	ratio := nb.JitterRatio()
	if math.Abs(ratio-1.64e-3) > 0.05e-3 {
		t.Fatalf("paper σ/T0 = %g ‰, want ~1.64", ratio*1e3)
	}
}

func TestPaperBudgetConstants(t *testing.T) {
	nb := PaperBudget()
	if math.Abs(nb.Bth-276.04) > 0.01 {
		t.Fatalf("Bth = %g, want 276.04", nb.Bth)
	}
	if nb.F0 != 103e6 {
		t.Fatalf("F0 = %g", nb.F0)
	}
	// Corner N must reproduce the paper's 5354.
	if math.Abs(nb.FlickerCornerN()-5354) > 1 {
		t.Fatalf("corner = %g, want 5354", nb.FlickerCornerN())
	}
}

func TestFlickerCornerNoFlicker(t *testing.T) {
	nb := NoiseBudget{Bth: 100, Bfl: 0, F0: 1e8}
	if !math.IsInf(nb.FlickerCornerN(), 1) {
		t.Fatal("corner without flicker should be +Inf")
	}
}

func TestShrinkTechnology(t *testing.T) {
	tr := phys.DefaultTransistor()
	sh := ShrinkTechnology(tr, 0.5)
	if sh.L != tr.L/2 || sh.W != tr.W/2 {
		t.Fatalf("shrink wrong: W %g L %g", sh.W, sh.L)
	}
	// Flicker PSD ∝ 1/(W·L²): shrinking both by s scales it by 1/s³.
	f := 1e3
	ratio := sh.FlickerCurrentPSD(f) / tr.FlickerCurrentPSD(f)
	if math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("flicker shrink ratio %g, want 8", ratio)
	}
}

func TestShrinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for s=0")
		}
	}()
	ShrinkTechnology(phys.DefaultTransistor(), 0)
}

func TestDefaultRingMatchesPaperScale(t *testing.T) {
	// The bottom-up device path with default (calibrated) parameters
	// must land on the paper's per-ring budget: b_th ≈ 138 Hz,
	// a/b corner ≈ 5354, f0 ≈ 103 MHz.
	nb, err := Analyze(phys.DefaultRing(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	paperPerRing := PaperBudget()
	paperPerRing.Bth /= 2
	paperPerRing.Bfl /= 2
	if nb.Bth < paperPerRing.Bth/2 || nb.Bth > paperPerRing.Bth*2 {
		t.Fatalf("device b_th = %g, want within 2x of %g", nb.Bth, paperPerRing.Bth)
	}
	if c := nb.FlickerCornerN(); c < 2500 || c > 11000 {
		t.Fatalf("device corner = %g, want ≈5354", c)
	}
	if r := nb.JitterRatio(); r < 0.5e-3 || r > 4e-3 {
		t.Fatalf("device σ/T0 = %g ‰, want ~1.6 ‰", r*1e3)
	}
}

func TestThermalExcessScaling(t *testing.T) {
	intrinsic, err := Analyze(phys.DefaultRing(), Options{ThermalExcess: 1})
	if err != nil {
		t.Fatal(err)
	}
	calibrated, err := Analyze(phys.DefaultRing(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(calibrated.Bth/intrinsic.Bth-165) > 1e-6*165 {
		t.Fatalf("excess factor not applied: ratio %g", calibrated.Bth/intrinsic.Bth)
	}
	// Flicker is NOT scaled by the thermal excess.
	if math.Abs(calibrated.Bfl-intrinsic.Bfl) > 1e-9*intrinsic.Bfl {
		t.Fatal("thermal excess leaked into flicker")
	}
}

func TestShrinkLowersIndependenceThreshold(t *testing.T) {
	// The paper's conclusion: technology shrink → more flicker → the
	// corner a/b (and with it N*) decreases.
	ring := phys.DefaultRing()
	nb1, err := Analyze(ring, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ring.Stage.NMOS = ShrinkTechnology(ring.Stage.NMOS, 0.5)
	ring.Stage.PMOS = ShrinkTechnology(ring.Stage.PMOS, 0.5)
	nb2, err := Analyze(ring, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nb2.FlickerCornerN() >= nb1.FlickerCornerN() {
		t.Fatalf("shrink did not lower corner: %g -> %g", nb1.FlickerCornerN(), nb2.FlickerCornerN())
	}
}
