package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapDeterministicAcrossJobs(t *testing.T) {
	// The engine's core contract: results depend only on (root, task),
	// never on worker count or scheduling.
	const tasks = 257
	f := func(_ context.Context, i int) (uint64, error) {
		return DeriveSeed(42, uint64(i)), nil
	}
	ref, err := Map(context.Background(), tasks, f, Jobs(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 3, runtime.NumCPU(), 4 * runtime.NumCPU()} {
		got, err := Map(context.Background(), tasks, f, Jobs(jobs))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("jobs=%d task %d: %d != %d", jobs, i, got[i], ref[i])
			}
		}
	}
}

func TestRunVisitsEveryTaskOnce(t *testing.T) {
	const tasks = 1000
	var visits [tasks]atomic.Int32
	err := Run(context.Background(), tasks, func(_ context.Context, i int) error {
		visits[i].Add(1)
		return nil
	}, Jobs(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

func TestRunFailFastReturnsLowestIndexError(t *testing.T) {
	bad := map[int]bool{7: true, 31: true, 900: true}
	worker := func(_ context.Context, i int) error {
		if bad[i] {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	}
	// Sequential path: the in-order loop guarantees the first failing
	// index exactly.
	err := Run(context.Background(), 1000, worker, Jobs(1))
	if err == nil || err.Error() != "task 7 failed" {
		t.Fatalf("jobs=1: err = %v, want task 7", err)
	}
	// Parallel paths guarantee only "lowest index among tasks that
	// ran": a worker that claimed task 7 but was preempted past the
	// cancel can legally skip it, so any failing task is acceptable —
	// but never success or a non-task error.
	for _, jobs := range []int{4, 16} {
		err := Run(context.Background(), 1000, worker, Jobs(jobs))
		if err == nil {
			t.Fatalf("jobs=%d: no error", jobs)
		}
		switch got := err.Error(); got {
		case "task 7 failed", "task 31 failed", "task 900 failed":
		default:
			t.Fatalf("jobs=%d: err = %q, want one of the failing tasks", jobs, got)
		}
	}
}

func TestRunFailFastCancelsPool(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := Run(context.Background(), 10000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	}, Jobs(2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); int(n) == 10000 {
		t.Fatal("pool did not stop early after failure")
	}
}

func TestRunRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Run(ctx, 5, func(_ context.Context, _ int) error {
		ran = true
		return nil
	}, Jobs(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if ran {
		t.Fatal("worker ran under cancelled context")
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(context.Background(), -1, func(_ context.Context, _ int) error { return nil }); err == nil {
		t.Fatal("negative task count accepted")
	}
	if err := Run(context.Background(), 1, nil); err == nil {
		t.Fatal("nil worker accepted")
	}
	if err := Run(context.Background(), 0, func(_ context.Context, _ int) error { return nil }); err != nil {
		t.Fatalf("zero tasks: %v", err)
	}
}

func TestDeriveSeed(t *testing.T) {
	// Distinct tasks from one root never collide, and nearby
	// (root, task) pairs decorrelate.
	seen := make(map[uint64]uint64)
	for task := uint64(0); task < 10000; task++ {
		s := DeriveSeed(1, task)
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision: tasks %d and %d both derive %#x", prev, task, s)
		}
		seen[s] = task
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("adjacent roots collide at task 0")
	}
	// Pure function: stable across calls.
	if DeriveSeed(123, 456) != DeriveSeed(123, 456) {
		t.Fatal("DeriveSeed not deterministic")
	}
	// Avalanche sanity: one-bit root change flips about half the bits.
	d := DeriveSeed(1, 7) ^ DeriveSeed(1|1<<63, 7)
	pop := 0
	for ; d != 0; d &= d - 1 {
		pop++
	}
	if pop < 16 || pop > 48 {
		t.Fatalf("weak avalanche: %d bits flipped", pop)
	}
}

func TestRunCancelAbortDoesNotMaskRealError(t *testing.T) {
	// Tasks 0-2 are ctx-respecting workers that only return once the
	// pool cancels; task 3 carries the real failure. The cancellation
	// errors surface at lower task indices than the real error and
	// must not win the lowest-index selection.
	boom := errors.New("boom")
	err := Run(context.Background(), 4, func(ctx context.Context, task int) error {
		if task == 3 {
			return boom
		}
		<-ctx.Done()
		return ctx.Err()
	}, Jobs(4))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real task error", err)
	}
}

func TestMapValidation(t *testing.T) {
	if _, err := Map(context.Background(), -1, func(_ context.Context, _ int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative task count accepted")
	}
}
