// Package engine is the deterministic worker-pool simulation layer
// underneath every campaign in this repository.
//
// The paper's central evidence (Fig. 7, the r_N ratio table, the §IV-B
// thermal extraction) comes from counter campaigns swept over many
// accumulation lengths N — work that is embarrassingly parallel per
// (N, seed) cell. The engine runs such campaigns on a bounded pool of
// workers while keeping the results bit-identical regardless of worker
// count or goroutine scheduling:
//
//   - every task writes only to its own index of a pre-sized result
//     slice (Map), so no reduction order is observable;
//   - every task derives its private randomness from the campaign root
//     seed with DeriveSeed(root, task), a SplitMix64-style mix that is
//     a pure function of (root, task) — never from shared generator
//     state or from the order in which workers pick up tasks.
//
// In the Fig. 3 multilevel stack the engine sits between the
// oscillator/measurement plane (internal/osc, internal/measure) and the
// campaign layers above it (internal/experiments, internal/multiring,
// cmd/…): the layers above describe WHAT cells a campaign has, the
// engine decides WHERE they run.
//
// Error handling is fail-fast: the first task failure cancels the pool
// context so in-flight workers can stop early and queued tasks never
// start. For determinism the error returned is the failure with the
// lowest task index among those that did run, not whichever happened to
// be scheduled first.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Worker processes one task of a campaign. The task index is the only
// identity a task has; workers needing randomness must derive it as
// DeriveSeed(root, uint64(task)).
type Worker func(ctx context.Context, task int) error

// Option configures a Run.
type Option func(*config)

type config struct {
	jobs int
}

// Jobs sets the worker-pool width. n <= 0 selects runtime.NumCPU().
// n == 1 degenerates to a sequential in-order run (the reference
// path parallel runs must reproduce byte-for-byte).
func Jobs(n int) Option {
	return func(c *config) { c.jobs = n }
}

// Run executes tasks 0..tasks-1 on a pool of workers (runtime.NumCPU()
// wide by default) and blocks until all started tasks finished. Tasks
// are claimed in index order; results must be communicated through
// worker-local writes (see Map), never through shared state.
func Run(ctx context.Context, tasks int, worker Worker, opts ...Option) error {
	if tasks < 0 {
		return fmt.Errorf("engine: task count %d must be >= 0", tasks)
	}
	if worker == nil {
		return fmt.Errorf("engine: nil worker")
	}
	if tasks == 0 {
		return ctx.Err()
	}
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	jobs := cfg.jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > tasks {
		jobs = tasks
	}

	if jobs == 1 {
		// Sequential reference path: plain in-order loop, no
		// goroutines, identical error selection (first failing index).
		for i := 0; i < tasks; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := worker(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next unclaimed task index
		mu       sync.Mutex
		firstErr error
		errTask  = tasks // index of the lowest failing task seen
		wg       sync.WaitGroup
	)
	fail := func(task int, err error) {
		mu.Lock()
		if task < errTask {
			errTask, firstErr = task, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= tasks {
					return
				}
				if err := poolCtx.Err(); err != nil {
					return
				}
				if err := worker(poolCtx, i); err != nil {
					// A ctx-respecting worker aborted by the pool's
					// own fail-fast cancel reports the cancellation,
					// not a failure of its own; the real error that
					// triggered the cancel is already recorded (fail
					// records before cancelling) and must not be
					// masked by a lower task index.
					if poolCtx.Err() != nil && ctx.Err() == nil && errors.Is(err, poolCtx.Err()) {
						return
					}
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs f over tasks 0..tasks-1 on the worker pool and collects the
// results in task order. Each task writes only its own slot, so the
// output is independent of worker count and scheduling. On error the
// partial results are discarded.
func Map[T any](ctx context.Context, tasks int, f func(ctx context.Context, task int) (T, error), opts ...Option) ([]T, error) {
	if tasks < 0 {
		return nil, fmt.Errorf("engine: task count %d must be >= 0", tasks)
	}
	out := make([]T, tasks)
	err := Run(ctx, tasks, func(ctx context.Context, i int) error {
		v, err := f(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DeriveSeed deterministically derives the private seed of campaign
// task `task` from the campaign root seed: output `task` of a
// SplitMix64 stream anchored at root. The mapping is a pure function of
// (root, task), bijective in task for a fixed root (distinct tasks can
// never collide), and statistically decorrelated even for adjacent
// roots and tasks — the property that makes parallel campaign results
// citable and reproducible from (root seed, grid) alone.
func DeriveSeed(root, task uint64) uint64 {
	z := root + (task+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
