// Package dsp provides the signal-processing substrate for noise
// synthesis and spectral validation: an iterative radix-2 FFT, window
// functions, Welch power-spectral-density estimation and fast
// convolution. It is used to
//
//   - synthesize 1/f^α (flicker) noise by fractional integration of
//     white noise (internal/flicker), and
//   - verify that simulated oscillators exhibit the phase-noise PSD
//     Sφ(f) = b_fl/f³ + b_th/f² assumed by the paper's model.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n (n must be > 0).
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place forward discrete Fourier transform of x,
// whose length must be a power of two:
//
//	X[k] = Σ_n x[n]·exp(−2πi·k·n/N)
//
// The implementation is the iterative Cooley–Tukey radix-2
// decimation-in-time algorithm with a bit-reversal permutation.
func FFT(x []complex128) {
	fftInPlace(x, false)
}

// IFFT computes the in-place inverse transform, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	fftInPlace(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := -2 * math.Pi / float64(size)
		if inverse {
			angle = -angle
		}
		wStep := cmplx.Exp(complex(0, angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// FFTReal transforms a real sequence (length a power of two) and returns
// the full complex spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	FFT(out)
	return out
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)−1) computed via zero-padded FFTs. It is the workhorse of
// the Kasdin–Walter flicker-noise synthesizer, where a is a white-noise
// block and b the fractional-integration kernel.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPowerOfTwo(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// AutocorrelationFFT returns the biased autocovariance sequence of x for
// lags 0..maxLag via the Wiener–Khinchin route (|FFT|² then inverse).
// It matches stats.Autocovariance but runs in O(n log n).
func AutocorrelationFFT(x []float64, maxLag int) []float64 {
	n := len(x)
	if maxLag >= n || maxLag < 0 {
		panic(fmt.Sprintf("dsp: maxLag %d out of range for n=%d", maxLag, n))
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	m := NextPowerOfTwo(2 * n)
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v-mean, 0)
	}
	FFT(buf)
	for i := range buf {
		re := real(buf[i])
		im := imag(buf[i])
		buf[i] = complex(re*re+im*im, 0)
	}
	IFFT(buf)
	out := make([]float64, maxLag+1)
	for k := 0; k <= maxLag; k++ {
		out[k] = real(buf[k]) / float64(n)
	}
	return out
}
