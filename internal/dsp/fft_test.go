package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12, 1023} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSinusoid(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*bin*float64(i)/n), 0)
	}
	FFT(x)
	// Energy concentrated at bins ±bin with amplitude n/2.
	for k, v := range x {
		mag := cmplx.Abs(v)
		if k == bin || k == n-bin {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("bin %d magnitude %g, want %d", k, mag, n/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want 0", k, mag)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rng.New(1)
	const n = 128
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		a[i] = complex(r.Norm(), r.Norm())
		b[i] = complex(r.Norm(), r.Norm())
		sum[i] = a[i] + 2*b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for k := range sum {
		if cmplx.Abs(sum[k]-(a[k]+2*b[k])) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", k)
		}
	}
}

func TestIFFTRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 2, 8, 256, 4096} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: roundtrip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	r := rng.New(3)
	const n = 1024
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(r.Norm(), 0)
		timeE += real(x[i]) * real(x[i])
	}
	FFT(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	freqE /= n
	if math.Abs(timeE-freqE) > 1e-6*timeE {
		t.Fatalf("Parseval: time %g vs freq %g", timeE, freqE)
	}
}

func TestFFTPanicsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=12")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestConvolveAgainstNaive(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 37)
	b := make([]float64, 23)
	r.FillNorm(a)
	r.FillNorm(b)
	got := Convolve(a, b)
	want := make([]float64, len(a)+len(b)-1)
	for i := range a {
		for j := range b {
			want[i+j] += a[i] * b[j]
		}
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("convolution mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("expected nil for empty input")
	}
}

func TestConvolveDelta(t *testing.T) {
	// Convolving with a delta reproduces the input (property test).
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 200 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		out := Convolve(raw, []float64{1})
		for i := range raw {
			if math.Abs(out[i]-raw[i]) > 1e-9*(1+math.Abs(raw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelationFFTMatchesDirect(t *testing.T) {
	r := rng.New(5)
	x := make([]float64, 3000)
	v := 0.0
	for i := range x {
		v = 0.7*v + r.Norm()
		x[i] = v
	}
	got := AutocorrelationFFT(x, 10)
	// direct biased autocovariance
	mean := 0.0
	for _, xv := range x {
		mean += xv
	}
	mean /= float64(len(x))
	for k := 0; k <= 10; k++ {
		var want float64
		for i := 0; i+k < len(x); i++ {
			want += (x[i] - mean) * (x[i+k] - mean)
		}
		want /= float64(len(x))
		if math.Abs(got[k]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("lag %d: %g vs %g", k, got[k], want)
		}
	}
}

func TestFFTRealMatchesComplex(t *testing.T) {
	r := rng.New(6)
	x := make([]float64, 64)
	r.FillNorm(x)
	got := FFTReal(x)
	want := make([]complex128, len(x))
	for i, v := range x {
		want[i] = complex(v, 0)
	}
	FFT(want)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("FFTReal mismatch at %d", k)
		}
	}
}
