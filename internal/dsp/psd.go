package dsp

import (
	"fmt"
	"math"
)

// Window is a tapering function applied to each segment before the
// periodogram is computed.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String returns the window name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return fmt.Sprintf("Window(%d)", int(w))
	}
}

// Coefficients returns the n window coefficients.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	for i := range c {
		x := 2 * math.Pi * float64(i) / float64(n-1)
		switch w {
		case Rectangular:
			c[i] = 1
		case Hann:
			c[i] = 0.5 * (1 - math.Cos(x))
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(x)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		default:
			c[i] = 1
		}
	}
	return c
}

// PSD is a one-sided power spectral density estimate. Freq[i] is in Hz
// and Power[i] in (signal units)²/Hz, so that the integral of Power over
// Freq approximates the signal variance.
type PSD struct {
	Freq  []float64
	Power []float64
}

// WelchOptions configures Welch's averaged-periodogram PSD estimator.
type WelchOptions struct {
	// SegmentLength is the FFT size per segment; must be a power of
	// two. Zero selects the largest power of two <= len(x)/8 (at
	// least 64), giving ~15 averaged segments at 50 % overlap.
	SegmentLength int
	// Overlap is the fraction of segment overlap in [0, 1). The
	// conventional Welch choice is 0.5.
	Overlap float64
	// Window is the segment taper. The zero value Rectangular is
	// replaced by Hann, the standard choice for noise-floor work.
	Window Window
	// Detrend removes each segment's mean before transforming when
	// true; essential for phase data with large offsets.
	Detrend bool
}

// Welch estimates the one-sided PSD of x sampled at fs Hz using Welch's
// method of averaged modified periodograms. The estimate at bin k
// corresponds to frequency k·fs/SegmentLength for k = 1..SegmentLength/2
// (DC is dropped: the 1/f processes studied here have no meaningful DC
// estimate).
func Welch(x []float64, fs float64, opt WelchOptions) (PSD, error) {
	if fs <= 0 {
		return PSD{}, fmt.Errorf("dsp: sampling frequency %g must be > 0", fs)
	}
	n := len(x)
	seg := opt.SegmentLength
	if seg == 0 {
		seg = 64
		for seg*16 <= n {
			seg *= 2
		}
	}
	if !IsPowerOfTwo(seg) {
		return PSD{}, fmt.Errorf("dsp: segment length %d is not a power of two", seg)
	}
	if seg > n {
		return PSD{}, fmt.Errorf("dsp: segment length %d exceeds input length %d", seg, n)
	}
	if opt.Overlap < 0 || opt.Overlap >= 1 {
		return PSD{}, fmt.Errorf("dsp: overlap %g out of [0,1)", opt.Overlap)
	}
	win := opt.Window
	if win == Rectangular {
		win = Hann
	}
	w := win.Coefficients(seg)
	var winPower float64
	for _, c := range w {
		winPower += c * c
	}

	step := int(float64(seg) * (1 - opt.Overlap))
	if step < 1 {
		step = 1
	}
	nBins := seg / 2
	acc := make([]float64, nBins)
	buf := make([]complex128, seg)
	segments := 0
	for start := 0; start+seg <= n; start += step {
		chunk := x[start : start+seg]
		mean := 0.0
		if opt.Detrend {
			for _, v := range chunk {
				mean += v
			}
			mean /= float64(seg)
		}
		for i := 0; i < seg; i++ {
			buf[i] = complex((chunk[i]-mean)*w[i], 0)
		}
		FFT(buf)
		for k := 1; k <= nBins; k++ {
			re := real(buf[k])
			im := imag(buf[k])
			acc[k-1] += re*re + im*im
		}
		segments++
	}
	if segments == 0 {
		return PSD{}, fmt.Errorf("dsp: no complete segments (n=%d, seg=%d)", n, seg)
	}
	// One-sided scaling: ×2 for the folded negative frequencies,
	// normalized by fs and the window power.
	scale := 2.0 / (fs * winPower * float64(segments))
	psd := PSD{
		Freq:  make([]float64, nBins),
		Power: make([]float64, nBins),
	}
	for k := 1; k <= nBins; k++ {
		psd.Freq[k-1] = float64(k) * fs / float64(seg)
		psd.Power[k-1] = acc[k-1] * scale
	}
	// The Nyquist bin is not doubled in the strict one-sided
	// convention; correct it.
	psd.Power[nBins-1] /= 2
	return psd, nil
}

// LogLogSlope fits a straight line to log10(Power) vs log10(Freq) over
// the band [fLo, fHi] and returns the slope. A slope near −1 identifies
// flicker (1/f) noise; near 0, white noise; near −2, random-walk (or
// white FM seen through phase).
func (p PSD) LogLogSlope(fLo, fHi float64) (slope float64, nPoints int, err error) {
	var lx, ly []float64
	for i, f := range p.Freq {
		if f < fLo || f > fHi || p.Power[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log10(f))
		ly = append(ly, math.Log10(p.Power[i]))
	}
	if len(lx) < 2 {
		return 0, len(lx), fmt.Errorf("dsp: only %d usable PSD points in [%g, %g] Hz", len(lx), fLo, fHi)
	}
	// Plain OLS on the log-log points.
	mx, my := mean(lx), mean(ly)
	var sxx, sxy float64
	for i := range lx {
		dx := lx[i] - mx
		sxx += dx * dx
		sxy += dx * (ly[i] - my)
	}
	if sxx == 0 {
		return 0, len(lx), fmt.Errorf("dsp: degenerate frequency range")
	}
	return sxy / sxx, len(lx), nil
}

// BandPower integrates the PSD over [fLo, fHi] by the trapezoidal rule,
// returning the variance contributed by that band.
func (p PSD) BandPower(fLo, fHi float64) float64 {
	var sum float64
	for i := 1; i < len(p.Freq); i++ {
		f0, f1 := p.Freq[i-1], p.Freq[i]
		if f1 < fLo || f0 > fHi {
			continue
		}
		lo := math.Max(f0, fLo)
		hi := math.Min(f1, fHi)
		if hi <= lo {
			continue
		}
		// linear interpolation of power at the clipped edges
		frac0 := (lo - f0) / (f1 - f0)
		frac1 := (hi - f0) / (f1 - f0)
		p0 := p.Power[i-1] + frac0*(p.Power[i]-p.Power[i-1])
		p1 := p.Power[i-1] + frac1*(p.Power[i]-p.Power[i-1])
		sum += 0.5 * (p0 + p1) * (hi - lo)
	}
	return sum
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
