package dsp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWindowCoefficients(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: %d coefficients", w, len(c))
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v coefficient %d = %g out of [0,1]", w, i, v)
			}
		}
	}
	// Hann endpoints are 0, midpoint is 1.
	h := Hann.Coefficients(65)
	if math.Abs(h[0]) > 1e-12 || math.Abs(h[64]) > 1e-12 {
		t.Fatal("Hann endpoints not 0")
	}
	if math.Abs(h[32]-1) > 1e-12 {
		t.Fatal("Hann midpoint not 1")
	}
	if Window(99).String() == "" {
		t.Fatal("unknown window String empty")
	}
	one := Hann.Coefficients(1)
	if one[0] != 1 {
		t.Fatal("single-sample window must be 1")
	}
}

func TestWelchWhiteNoiseLevel(t *testing.T) {
	r := rng.New(1)
	const fs = 1000.0
	const sigma2 = 4.0
	x := make([]float64, 1<<17)
	for i := range x {
		x[i] = r.NormScaled(0, 2)
	}
	psd, err := Welch(x, fs, WelchOptions{SegmentLength: 1024, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// White noise with variance σ² sampled at fs has one-sided PSD
	// σ²·2/fs... integral over [0, fs/2] equals σ²: level = σ²/(fs/2).
	want := sigma2 / (fs / 2)
	var mean float64
	for _, p := range psd.Power {
		mean += p
	}
	mean /= float64(len(psd.Power))
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("white PSD level %g, want %g", mean, want)
	}
	// Integrated power approximates the variance.
	tot := psd.BandPower(0, fs/2)
	if math.Abs(tot-sigma2) > 0.1*sigma2 {
		t.Fatalf("integrated PSD %g, want %g", tot, sigma2)
	}
}

func TestWelchSinusoidPeak(t *testing.T) {
	const fs = 1000.0
	const f0 = 125.0
	x := make([]float64, 1<<15)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	psd, err := Welch(x, fs, WelchOptions{SegmentLength: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Peak bin must be at f0.
	best := 0
	for i := range psd.Power {
		if psd.Power[i] > psd.Power[best] {
			best = i
		}
	}
	if math.Abs(psd.Freq[best]-f0) > fs/2048*2 {
		t.Fatalf("peak at %g Hz, want %g", psd.Freq[best], f0)
	}
	// Integrated power over the sine's band ≈ 1/2 (sine power).
	p := psd.BandPower(f0-10, f0+10)
	if math.Abs(p-0.5) > 0.1 {
		t.Fatalf("sine band power %g, want 0.5", p)
	}
}

func TestWelchLogLogSlopeWhite(t *testing.T) {
	r := rng.New(2)
	x := make([]float64, 1<<16)
	r.FillNorm(x)
	psd, err := Welch(x, 1, WelchOptions{SegmentLength: 1024})
	if err != nil {
		t.Fatal(err)
	}
	slope, n, err := psd.LogLogSlope(0.01, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("only %d points", n)
	}
	if math.Abs(slope) > 0.15 {
		t.Fatalf("white noise log-log slope %g, want ~0", slope)
	}
}

func TestWelchDetrend(t *testing.T) {
	r := rng.New(3)
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = 1e6 + r.Norm() // huge DC offset
	}
	psd, err := Welch(x, 1, WelchOptions{SegmentLength: 512, Detrend: true})
	if err != nil {
		t.Fatal(err)
	}
	// With detrending, low bins must not blow up by the DC leak.
	if psd.Power[0] > 100 {
		t.Fatalf("detrended PSD bin0 = %g, DC leaked", psd.Power[0])
	}
}

func TestWelchErrors(t *testing.T) {
	x := make([]float64, 256)
	if _, err := Welch(x, 0, WelchOptions{}); err == nil {
		t.Error("fs=0 accepted")
	}
	if _, err := Welch(x, 1, WelchOptions{SegmentLength: 100}); err == nil {
		t.Error("non-power-of-two segment accepted")
	}
	if _, err := Welch(x, 1, WelchOptions{SegmentLength: 512}); err == nil {
		t.Error("segment longer than input accepted")
	}
	if _, err := Welch(x, 1, WelchOptions{SegmentLength: 64, Overlap: 1.0}); err == nil {
		t.Error("overlap=1 accepted")
	}
}

func TestWelchDefaultSegment(t *testing.T) {
	r := rng.New(4)
	x := make([]float64, 10000)
	r.FillNorm(x)
	psd, err := Welch(x, 100, WelchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(psd.Freq) == 0 || psd.Freq[len(psd.Freq)-1] > 50.0001 {
		t.Fatalf("default-segment PSD malformed: %d bins, top %g Hz", len(psd.Freq), psd.Freq[len(psd.Freq)-1])
	}
}

func TestBandPowerClipping(t *testing.T) {
	psd := PSD{Freq: []float64{1, 2, 3}, Power: []float64{1, 1, 1}}
	if p := psd.BandPower(0, 10); math.Abs(p-2) > 1e-12 {
		t.Fatalf("full band power %g, want 2", p)
	}
	if p := psd.BandPower(1.5, 2.5); math.Abs(p-1) > 1e-12 {
		t.Fatalf("clipped band power %g, want 1", p)
	}
	if p := psd.BandPower(5, 6); p != 0 {
		t.Fatalf("out-of-range band power %g, want 0", p)
	}
}
