package postproc

import (
	"bytes"
	"testing"
)

// FuzzPackUnpack fuzzes the byte→bit→byte round trip: Unpack always
// yields 8 bits per byte, and Pack inverts it exactly for every input.
func FuzzPackUnpack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF})
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xAA, 0x55, 0xDE, 0xAD, 0xBE, 0xEF})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := Unpack(data)
		if len(bits) != 8*len(data) {
			t.Fatalf("Unpack(%d bytes) = %d bits, want %d", len(data), len(bits), 8*len(data))
		}
		for i, b := range bits {
			if b > 1 {
				t.Fatalf("bit %d = %d, want 0 or 1", i, b)
			}
			// MSB-first pin: bit i is byte i/8 under mask 0x80>>(i%8).
			want := byte(0)
			if data[i/8]&(0x80>>(i%8)) != 0 {
				want = 1
			}
			if b != want {
				t.Fatalf("bit %d = %d, want %d (MSB-first ordering)", i, b, want)
			}
		}
		if got := Pack(bits); !bytes.Equal(got, data) {
			t.Fatalf("Pack(Unpack(%x)) = %x", data, got)
		}
	})
}

// FuzzUnpackPack fuzzes the bit→byte→bit round trip, including
// partial-byte tails and non-binary bit bytes (Pack reads only the low
// bit): the packed form decodes to the original bits masked to their
// low bit, with zero padding after the tail.
func FuzzUnpackPack(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{1}, uint8(3))
	f.Add([]byte{1, 0, 1, 1, 0, 1, 0, 0, 1}, uint8(0))
	f.Add([]byte{0xFE, 0x03, 1, 1}, uint8(7)) // non-binary bit bytes
	f.Fuzz(func(t *testing.T, bits []byte, trim uint8) {
		// Exercise every tail length, not only multiples of 8.
		if int(trim) < len(bits) {
			bits = bits[:len(bits)-int(trim)]
		}
		packed := Pack(bits)
		if want := (len(bits) + 7) / 8; len(packed) != want {
			t.Fatalf("Pack(%d bits) = %d bytes, want %d", len(bits), len(packed), want)
		}
		back := Unpack(packed)
		if len(back) < len(bits) {
			t.Fatalf("round trip lost bits: %d -> %d", len(bits), len(back))
		}
		for i, b := range bits {
			if back[i] != b&1 {
				t.Fatalf("bit %d: %d -> %d", i, b&1, back[i])
			}
		}
		// Partial-byte edge: the zero padding Pack appends must decode
		// to zeros.
		for i := len(bits); i < len(back); i++ {
			if back[i] != 0 {
				t.Fatalf("padding bit %d = %d, want 0", i, back[i])
			}
		}
	})
}
