// Package postproc implements the algebraic post-processing blocks of
// the AIS31 P-TRNG architecture (paper Fig. 1): deterministic
// transformations applied to the raw binary sequence to increase entropy
// per bit at the cost of throughput.
package postproc

import "fmt"

// XORDecimate compresses the sequence k:1 by XOR-ing each group of k
// consecutive bits. For independent bits with bias b (P(1)=1/2+b) the
// output bias shrinks to 2^(k−1)·b^k (piling-up lemma); note the paper's
// warning applies here too — autocorrelated inputs do not enjoy the full
// piling-up gain.
func XORDecimate(bits []byte, k int) []byte {
	if k < 1 {
		panic(fmt.Sprintf("postproc: decimation factor %d must be >= 1", k))
	}
	out := make([]byte, 0, len(bits)/k)
	for i := 0; i+k <= len(bits); i += k {
		var b byte
		for j := 0; j < k; j++ {
			b ^= bits[i+j]
		}
		out = append(out, b&1)
	}
	return out
}

// VonNeumann applies the von Neumann corrector: consecutive
// non-overlapping pairs map 01→0, 10→1, and 00/11 are discarded. For
// independent bits of any fixed bias the output is exactly unbiased;
// autocorrelation between the pair halves breaks the guarantee.
func VonNeumann(bits []byte) []byte {
	out := make([]byte, 0, len(bits)/4)
	for i := 0; i+1 < len(bits); i += 2 {
		a, b := bits[i]&1, bits[i+1]&1
		if a != b {
			out = append(out, a)
		}
	}
	return out
}

// Parity returns the parity (XOR) of the whole block — the limiting case
// of XORDecimate with k = len(bits).
func Parity(bits []byte) byte {
	var p byte
	for _, b := range bits {
		p ^= b
	}
	return p & 1
}

// Pack packs bits MSB-first into bytes: stream bit i lands in output
// byte i/8 under mask 0x80 >> (i%8), so the FIRST bit of the stream is
// the MOST significant bit of the first byte. The final partial byte
// (if any) is zero-padded on the right (toward the LSB). Only the low
// bit of each input byte is read. Pack and Unpack are exact inverses
// on whole-byte streams; for a stream whose length is not a multiple
// of 8, Unpack(Pack(bits))[:len(bits)] == bits&1 and the padding bits
// decode to zeros.
func Pack(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 0x80 >> (i % 8)
		}
	}
	return out
}

// Unpack expands bytes into bits MSB-first — the exact inverse of
// Pack: output bit i is byte i/8 under mask 0x80 >> (i%8), most
// significant bit first. Every input byte yields exactly 8 output bits
// (values 0 or 1); Pack(Unpack(data)) == data for any data.
func Unpack(data []byte) []byte {
	out := make([]byte, len(data)*8)
	for i := range out {
		if data[i/8]&(0x80>>(i%8)) != 0 {
			out[i] = 1
		}
	}
	return out
}

// Bias returns the empirical bias P̂(1) − 1/2 of a bit slice.
func Bias(bits []byte) float64 {
	if len(bits) == 0 {
		return 0
	}
	var ones int
	for _, b := range bits {
		if b&1 == 1 {
			ones++
		}
	}
	return float64(ones)/float64(len(bits)) - 0.5
}
