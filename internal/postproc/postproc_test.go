package postproc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// biasedBits produces independent bits with P(1) = p.
func biasedBits(n int, p float64, seed uint64) []byte {
	r := rng.New(seed)
	out := make([]byte, n)
	for i := range out {
		if r.Float64() < p {
			out[i] = 1
		}
	}
	return out
}

func TestBias(t *testing.T) {
	if b := Bias([]byte{1, 1, 1, 1}); b != 0.5 {
		t.Fatalf("all-ones bias = %g", b)
	}
	if b := Bias([]byte{0, 1, 0, 1}); b != 0 {
		t.Fatalf("balanced bias = %g", b)
	}
	if b := Bias(nil); b != 0 {
		t.Fatalf("empty bias = %g", b)
	}
}

func TestXORDecimateReducesBias(t *testing.T) {
	const p = 0.6 // bias 0.1
	in := biasedBits(1_000_000, p, 1)
	out := XORDecimate(in, 4)
	if len(out) != len(in)/4 {
		t.Fatalf("output length %d", len(out))
	}
	// Piling-up: bias_out = 2^3·(0.1)^4 = 8e-4.
	got := math.Abs(Bias(out))
	if got > 5e-3 {
		t.Fatalf("decimated bias = %g, want ~8e-4", got)
	}
	inBias := math.Abs(Bias(in))
	if got > inBias/10 {
		t.Fatalf("XOR did not reduce bias: %g -> %g", inBias, got)
	}
}

func TestXORDecimateK1Identity(t *testing.T) {
	in := biasedBits(1000, 0.5, 2)
	out := XORDecimate(in, 1)
	for i := range in {
		if out[i] != in[i]&1 {
			t.Fatalf("k=1 not identity at %d", i)
		}
	}
}

func TestXORDecimatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for k=0")
		}
	}()
	XORDecimate([]byte{1}, 0)
}

func TestVonNeumannUnbiased(t *testing.T) {
	in := biasedBits(2_000_000, 0.7, 3)
	out := VonNeumann(in)
	// Output rate: 2·p·(1−p) per pair = 0.21 per input bit·0.5.
	expected := float64(len(in)) / 2 * 2 * 0.7 * 0.3
	if math.Abs(float64(len(out))-expected) > 0.05*expected {
		t.Fatalf("output length %d, want ~%g", len(out), expected)
	}
	if b := math.Abs(Bias(out)); b > 3e-3 {
		t.Fatalf("von Neumann output bias = %g, want ~0", b)
	}
}

func TestVonNeumannKnownPattern(t *testing.T) {
	// pairs: (0,1)->0, (1,0)->1, (1,1)->drop, (0,0)->drop
	out := VonNeumann([]byte{0, 1, 1, 0, 1, 1, 0, 0})
	if len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("von Neumann output %v", out)
	}
}

func TestParity(t *testing.T) {
	if Parity([]byte{1, 1, 1}) != 1 {
		t.Fatal("parity of three ones")
	}
	if Parity([]byte{1, 1}) != 0 {
		t.Fatal("parity of two ones")
	}
	if Parity(nil) != 0 {
		t.Fatal("parity of empty")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, v := range raw {
			bits[i] = v & 1
		}
		// Round-trip only full-byte multiples for exact equality.
		n := (len(bits) / 8) * 8
		bits = bits[:n]
		back := Unpack(Pack(bits))
		if len(back) != n {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackPartialByte(t *testing.T) {
	packed := Pack([]byte{1, 0, 1}) // 101 -> 1010_0000
	if len(packed) != 1 || packed[0] != 0xA0 {
		t.Fatalf("packed = %x", packed)
	}
}

func TestUnpackKnown(t *testing.T) {
	bits := Unpack([]byte{0x80, 0x01})
	if bits[0] != 1 || bits[7] != 0 || bits[15] != 1 {
		t.Fatalf("unpacked = %v", bits)
	}
}
