// Package isf implements Hajimiri's impulse sensitivity function (ISF)
// model of phase noise in ring oscillators (Hajimiri, Limotyrakis, Lee,
// JSSC 1999), the linear time-variant conversion the paper relies on in
// §III-C1 to go from transistor noise currents to the excess-phase PSD
//
//	Sφ(f) = b_fl/f³ + b_th/f²   (paper eq. 10).
//
// A current impulse injecting charge Δq at phase x = ω0·τ of the
// oscillation displaces the oscillator phase by
//
//	Δφ = Γ(x)·Δq/q_max,  q_max = C_L·V_DD,
//
// where Γ is the 2π-periodic ISF. Expanding Γ in a Fourier series
// Γ(x) = c0/2 + Σ_m c_m·cos(m·x + θ_m), white device noise around every
// harmonic folds down through the c_m (giving the 1/f² phase region,
// coefficient ∝ Γ_rms²), while low-frequency flicker noise is
// up-converted only through the DC coefficient c0 (giving the 1/f³
// region).
package isf

import (
	"fmt"
	"math"
)

// ISF is a 2π-periodic impulse sensitivity function sampled uniformly
// over one period.
type ISF struct {
	// Samples holds Γ evaluated at x = 2π·i/len(Samples).
	Samples []float64
}

// NewSampled wraps explicit samples; at least 4 are required.
func NewSampled(samples []float64) (ISF, error) {
	if len(samples) < 4 {
		return ISF{}, fmt.Errorf("isf: need >= 4 samples, got %d", len(samples))
	}
	return ISF{Samples: append([]float64(nil), samples...)}, nil
}

// FromFunc samples the function g over [0, 2π) at n points.
func FromFunc(g func(x float64) float64, n int) ISF {
	s := make([]float64, n)
	for i := range s {
		s[i] = g(2 * math.Pi * float64(i) / float64(n))
	}
	return ISF{Samples: s}
}

// RingOscillatorISF returns the canonical asymmetric-triangle ISF of an
// n-stage single-ended ring oscillator. Hajimiri shows that each
// transition contributes a triangular sensitivity peak whose width
// scales with the normalized transition time 1/(n·η); between
// transitions the sensitivity is near zero. The asymmetry parameter
// skews the rise/fall sensitivity and controls the DC coefficient c0,
// i.e. the flicker up-conversion gain: a perfectly symmetric waveform
// (asymmetry = 0) nulls c0 and with it the 1/f³ phase noise.
//
// asymmetry is a fraction in [-1, 1]; 0 means symmetric rise/fall.
func RingOscillatorISF(stages int, asymmetry float64, samples int) ISF {
	if samples < 64 {
		samples = 1024
	}
	n := float64(stages)
	// Characteristic peak amplitude ~ 2π/n per Hajimiri's normalized
	// treatment; the triangular peak spans one stage delay, i.e. a
	// phase width of 2π/(2n) per edge.
	width := math.Pi / n
	amp := 2 * math.Pi / (3 * n)
	rise := amp * (1 + asymmetry)
	fall := amp * (1 - asymmetry)
	return FromFunc(func(x float64) float64 {
		// Two transitions per period: rising near x=0, falling near x=π.
		tri := func(center, a float64) float64 {
			d := math.Abs(angleDiff(x, center))
			if d >= width {
				return 0
			}
			return a * (1 - d/width)
		}
		return tri(0, rise) - tri(math.Pi, fall)
	}, samples)
}

// angleDiff returns the wrapped difference x−c in (−π, π].
func angleDiff(x, c float64) float64 {
	d := math.Mod(x-c, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// C0 returns the DC Fourier coefficient c0 = (1/π)∫Γ dx, i.e. twice the
// mean of Γ. (With the series convention Γ = c0/2 + Σ c_m cos, the DC
// term is c0/2 = mean.)
func (g ISF) C0() float64 {
	return 2 * g.Mean()
}

// Mean returns the average of Γ over one period.
func (g ISF) Mean() float64 {
	var s float64
	for _, v := range g.Samples {
		s += v
	}
	return s / float64(len(g.Samples))
}

// RMS returns Γ_rms = sqrt((1/2π)∫Γ² dx).
func (g ISF) RMS() float64 {
	var s float64
	for _, v := range g.Samples {
		s += v * v
	}
	return math.Sqrt(s / float64(len(g.Samples)))
}

// FourierCoefficient returns the magnitude c_m of the m-th cosine
// coefficient in Γ(x) = c0/2 + Σ c_m cos(m x + θ_m).
func (g ISF) FourierCoefficient(m int) float64 {
	if m == 0 {
		return g.C0()
	}
	n := len(g.Samples)
	var re, im float64
	for i, v := range g.Samples {
		x := 2 * math.Pi * float64(i) / float64(n)
		re += v * math.Cos(float64(m)*x)
		im += v * math.Sin(float64(m)*x)
	}
	re *= 2 / float64(n)
	im *= 2 / float64(n)
	return math.Hypot(re, im)
}

// PhaseNoiseWhite returns the coefficient b_th of the 1/f² region of the
// one-sided phase PSD, Sφ(f) = b_th/f², produced by a white current
// noise source of one-sided PSD sidsWhite (A²/Hz) acting on an
// oscillator with maximum charge swing qMax = C_L·V_DD:
//
//	b_th = Γ_rms² · S_ids / (8π² · q_max²)  [Hz]
//
// (Hajimiri eq. for L(Δω) = Γ_rms²·(i_n²/Δf)/(2·q_max²·Δω²) converted
// from script-L at offset Δω to the Sφ(f) = b_th/f² convention used by
// the paper, with L ≈ Sφ/2.)
func (g ISF) PhaseNoiseWhite(sidsWhite, qMax float64) float64 {
	grms := g.RMS()
	return grms * grms * sidsWhite / (8 * math.Pi * math.Pi * qMax * qMax)
}

// PhaseNoiseFlicker returns the coefficient b_fl of the 1/f³ region of
// the one-sided phase PSD, Sφ(f) = b_fl/f³, produced by a flicker
// current source S_ids,fl(f) = kFlickerCurrent/f:
//
//	b_fl = c0² · kFlickerCurrent / (32π² · q_max²)  [Hz²]
//
// Only the DC ISF coefficient up-converts low-frequency noise
// (Hajimiri §IV): Δω-region noise enters via c0/2, hence the extra
// factor 1/4 relative to the white formula's Γ_rms².
func (g ISF) PhaseNoiseFlicker(kFlickerCurrent, qMax float64) float64 {
	c0 := g.C0()
	return c0 * c0 * kFlickerCurrent / (32 * math.Pi * math.Pi * qMax * qMax)
}

// ToneConversion returns the excess-phase amplitude produced by a
// sinusoidal current of amplitude amp (A) at frequency nu (Hz) injected
// into an oscillator of nominal frequency f0 with charge swing qMax.
// Per the paper's §III-C1 statement of Hajimiri's result, the phase tone
// appears at f = nu mod f0 with amplitude
//
//	A_φ = amp·c_m / (2·q_max·2π·f)
//
// where m = ⌊nu/f0⌋ and c_m is the m-th ISF Fourier coefficient.
// It returns the beat frequency and the amplitude; a zero beat
// frequency (exact harmonic) returns +Inf amplitude, reflecting the
// unbounded integration of a DC phase push.
func (g ISF) ToneConversion(amp, nu, f0, qMax float64) (fBeat, phaseAmp float64) {
	if f0 <= 0 {
		panic("isf: ToneConversion requires f0 > 0")
	}
	m := int(math.Floor(nu / f0))
	fBeat = nu - float64(m)*f0
	if fBeat > f0/2 {
		// fold to the nearest harmonic
		m++
		fBeat = math.Abs(nu - float64(m)*f0)
	}
	cm := g.FourierCoefficient(m)
	if fBeat == 0 {
		return 0, math.Inf(1)
	}
	return fBeat, amp * cm / (2 * qMax * 2 * math.Pi * fBeat)
}
