package isf

import (
	"math"
	"testing"
)

func TestFromFuncSampling(t *testing.T) {
	g := FromFunc(math.Sin, 1024)
	if len(g.Samples) != 1024 {
		t.Fatalf("samples = %d", len(g.Samples))
	}
	if math.Abs(g.Samples[256]-1) > 1e-10 { // sin(π/2)
		t.Fatalf("sample at π/2 = %g", g.Samples[256])
	}
}

func TestNewSampledValidation(t *testing.T) {
	if _, err := NewSampled([]float64{1, 2}); err == nil {
		t.Fatal("too-short sample set accepted")
	}
	g, err := NewSampled([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Samples) != 4 {
		t.Fatal("samples not copied")
	}
}

func TestMeanAndC0(t *testing.T) {
	g := FromFunc(func(x float64) float64 { return 2.5 }, 512)
	if math.Abs(g.Mean()-2.5) > 1e-12 {
		t.Fatalf("mean = %g", g.Mean())
	}
	if math.Abs(g.C0()-5) > 1e-12 {
		t.Fatalf("c0 = %g, want 5 (=2·mean)", g.C0())
	}
}

func TestRMSSine(t *testing.T) {
	g := FromFunc(math.Sin, 4096)
	if math.Abs(g.RMS()-1/math.Sqrt2) > 1e-6 {
		t.Fatalf("RMS of sine = %g, want %g", g.RMS(), 1/math.Sqrt2)
	}
}

func TestFourierCoefficientPureCosine(t *testing.T) {
	g := FromFunc(func(x float64) float64 { return 3 * math.Cos(4*x) }, 4096)
	if c := g.FourierCoefficient(4); math.Abs(c-3) > 1e-9 {
		t.Fatalf("c4 = %g, want 3", c)
	}
	for _, m := range []int{1, 2, 3, 5, 7} {
		if c := g.FourierCoefficient(m); c > 1e-9 {
			t.Fatalf("c%d = %g, want 0", m, c)
		}
	}
}

func TestFourierCoefficientPhaseInvariant(t *testing.T) {
	// |c_m| should be independent of the phase offset θ_m.
	a := FromFunc(func(x float64) float64 { return math.Cos(2 * x) }, 4096)
	b := FromFunc(func(x float64) float64 { return math.Cos(2*x + 1.1) }, 4096)
	if math.Abs(a.FourierCoefficient(2)-b.FourierCoefficient(2)) > 1e-9 {
		t.Fatal("c2 depends on phase offset")
	}
}

func TestRingISFSymmetryNullsC0(t *testing.T) {
	sym := RingOscillatorISF(7, 0, 4096)
	asym := RingOscillatorISF(7, 0.5, 4096)
	if math.Abs(sym.C0()) > 1e-9 {
		t.Fatalf("symmetric ring ISF c0 = %g, want 0", sym.C0())
	}
	if math.Abs(asym.C0()) < 1e-6 {
		t.Fatalf("asymmetric ring ISF c0 = %g, want nonzero", asym.C0())
	}
}

func TestRingISFScalesWithStages(t *testing.T) {
	// More stages → narrower and smaller sensitivity peaks → smaller Γrms.
	small := RingOscillatorISF(3, 0.3, 4096)
	large := RingOscillatorISF(31, 0.3, 4096)
	if large.RMS() >= small.RMS() {
		t.Fatalf("Γrms did not shrink with stages: %g vs %g", large.RMS(), small.RMS())
	}
}

func TestRingISFDefaultSampleFloor(t *testing.T) {
	g := RingOscillatorISF(5, 0.2, 10) // under the floor
	if len(g.Samples) != 1024 {
		t.Fatalf("sample floor not applied: %d", len(g.Samples))
	}
}

func TestPhaseNoiseWhiteScaling(t *testing.T) {
	g := RingOscillatorISF(9, 0.4, 2048)
	base := g.PhaseNoiseWhite(1e-22, 1e-14)
	if base <= 0 {
		t.Fatalf("bth = %g", base)
	}
	// Linear in the current PSD.
	if got := g.PhaseNoiseWhite(2e-22, 1e-14); math.Abs(got/base-2) > 1e-9 {
		t.Fatalf("bth not linear in S_ids: ratio %g", got/base)
	}
	// Inverse quadratic in qmax.
	if got := g.PhaseNoiseWhite(1e-22, 2e-14); math.Abs(got/base-0.25) > 1e-9 {
		t.Fatalf("bth not 1/qmax²: ratio %g", got/base)
	}
}

func TestPhaseNoiseFlickerUsesC0(t *testing.T) {
	sym := RingOscillatorISF(9, 0, 2048)
	asym := RingOscillatorISF(9, 0.5, 2048)
	if sym.PhaseNoiseFlicker(1e-20, 1e-14) > 1e-30 {
		t.Fatal("symmetric ISF should produce ~no flicker phase noise")
	}
	if asym.PhaseNoiseFlicker(1e-20, 1e-14) <= 0 {
		t.Fatal("asymmetric ISF must up-convert flicker")
	}
}

func TestToneConversion(t *testing.T) {
	g := FromFunc(func(x float64) float64 { return 0.5 + math.Cos(x) + 0.25*math.Cos(2*x) }, 4096)
	const f0 = 100e6
	const qmax = 1e-14
	// Tone just above the first harmonic: beats down to 1 kHz via c1.
	fb, amp := g.ToneConversion(1e-6, f0+1e3, f0, qmax)
	if math.Abs(fb-1e3) > 1e-6 {
		t.Fatalf("beat frequency %g, want 1e3", fb)
	}
	want := 1e-6 * 1.0 / (2 * qmax * 2 * math.Pi * 1e3)
	if math.Abs(amp-want) > 0.01*want {
		t.Fatalf("tone amplitude %g, want %g", amp, want)
	}
	// Exact harmonic: unbounded.
	if _, amp := g.ToneConversion(1e-6, 2*f0, f0, qmax); !math.IsInf(amp, 1) {
		t.Fatalf("exact harmonic amplitude %g, want +Inf", amp)
	}
	// Tone in the upper half folds to the next harmonic.
	fb, _ = g.ToneConversion(1e-6, 0.8*f0, f0, qmax)
	if math.Abs(fb-0.2*f0) > 1 {
		t.Fatalf("folded beat %g, want %g", fb, 0.2*f0)
	}
}

func TestToneConversionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0 <= 0")
		}
	}()
	g := FromFunc(math.Cos, 64)
	g.ToneConversion(1, 1, 0, 1)
}

func TestAngleDiffWrap(t *testing.T) {
	if d := angleDiff(0.1, 2*math.Pi-0.1); math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("wrap diff = %g, want 0.2", d)
	}
	if d := angleDiff(math.Pi, 0); math.Abs(d-math.Pi) > 1e-12 {
		t.Fatalf("π diff = %g", d)
	}
}
