package ais31

import (
	"fmt"
	"math"
)

// The AIS31 functionality classes require, besides the evaluation-time
// procedures A/B, tests that run INSIDE the device:
//
//   - a total failure test ("tot test") that reacts immediately when
//     the noise source dies;
//   - a startup test executed before the first output;
//   - an online test executed continuously or on demand.
//
// This file provides generic, parameterizable implementations of the
// standard choices. The paper's own §V proposal — the thermal-noise
// monitor of internal/onlinetest — is a generator-SPECIFIC online test
// designed to replace/augment these generic ones with a physically
// calibrated criterion. internal/entropyd wires all three (tot,
// startup, thermal monitor) into every shard of its serving pool.

// TotTest detects total failure of the noise source: it alarms when
// the last `window` bits are all equal. For a live source the false
// alarm probability per evaluation is 2·2^−window.
type TotTest struct {
	window  int
	history uint64
	count   int
}

// NewTotTest builds a total-failure detector over the given window
// (2..64 bits; AIS31 implementations commonly use 32–64).
func NewTotTest(window int) (*TotTest, error) {
	if window < 2 || window > 64 {
		return nil, fmt.Errorf("ais31: tot window %d out of [2, 64]", window)
	}
	return &TotTest{window: window}, nil
}

// Push feeds one bit; it returns true when the failure condition
// (window consecutive identical bits) holds.
func (t *TotTest) Push(bit byte) bool {
	t.history = t.history<<1 | uint64(bit&1)
	if t.count < t.window {
		t.count++
		return false
	}
	mask := uint64(1)<<uint(t.window) - 1
	h := t.history & mask
	return h == 0 || h == mask
}

// StartupTest runs the monobit, poker, runs and long-run tests on the
// first 20000 bits produced after power-up, per the class PTG.1/PTG.2
// startup requirement. It returns the verdicts and an overall pass.
func StartupTest(bits []byte) ([]Verdict, bool, error) {
	if len(bits) < 20000 {
		return nil, false, fmt.Errorf("ais31: startup test needs 20000 bits, got %d", len(bits))
	}
	var out []Verdict
	pass := true
	for _, t := range []func([]byte) (Verdict, error){T1Monobit, T2Poker, T3Runs, T4LongRun} {
		v, err := t(bits)
		if err != nil {
			return nil, false, err
		}
		out = append(out, v)
		if !v.Pass {
			pass = false
		}
	}
	return out, pass, nil
}

// OnlineMonobit is the continuously running online test of many fielded
// designs: a monobit check over consecutive disjoint blocks with an
// alarm threshold chosen for a target false-alarm rate.
type OnlineMonobit struct {
	block     int
	bound     int
	ones      int
	n         int
	evaluated int
	alarms    int
}

// NewOnlineMonobit builds the test. blockLen is the bits per
// evaluation; alpha the per-block false alarm probability. The bound
// is the two-sided Gaussian quantile of the binomial count.
func NewOnlineMonobit(blockLen int, alpha float64) (*OnlineMonobit, error) {
	if blockLen < 128 {
		return nil, fmt.Errorf("ais31: online monobit block %d too small", blockLen)
	}
	if alpha <= 0 || alpha >= 0.5 {
		return nil, fmt.Errorf("ais31: alpha %g out of (0, 0.5)", alpha)
	}
	// z such that 2Φ(−z) = alpha.
	z := inverseNormalTail(alpha / 2)
	dev := z * math.Sqrt(float64(blockLen)) / 2
	return &OnlineMonobit{block: blockLen, bound: int(math.Ceil(dev))}, nil
}

// inverseNormalTail returns z with P(Z > z) = p for standard normal Z,
// by bisection on erfc (kept local to avoid importing internal/stats
// into this leaf package).
func inverseNormalTail(p float64) float64 {
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 0.5*math.Erfc(mid/math.Sqrt2) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Push feeds one bit and reports whether the just-completed block (if
// any) raised an alarm.
func (o *OnlineMonobit) Push(bit byte) bool {
	o.ones += int(bit & 1)
	o.n++
	if o.n < o.block {
		return false
	}
	dev := o.ones - o.block/2
	if dev < 0 {
		dev = -dev
	}
	alarm := dev > o.bound
	if alarm {
		o.alarms++
	}
	o.evaluated++
	o.n = 0
	o.ones = 0
	return alarm
}

// Counts returns (blocks evaluated, alarms).
func (o *OnlineMonobit) Counts() (evaluated, alarms int) {
	return o.evaluated, o.alarms
}
