package ais31

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// goodBits produces balanced independent bits from the test PRNG.
func goodBits(n int, seed uint64) []byte {
	r := rng.New(seed)
	out := make([]byte, n)
	for i := 0; i+64 <= n; i += 64 {
		v := r.Uint64()
		for k := 0; k < 64; k++ {
			out[i+k] = byte(v >> uint(k) & 1)
		}
	}
	for i := (n / 64) * 64; i < n; i++ {
		out[i] = byte(r.Uint64() & 1)
	}
	return out
}

// biasedBits produces independent bits with P(1) = p.
func biasedBits(n int, p float64, seed uint64) []byte {
	r := rng.New(seed)
	out := make([]byte, n)
	for i := range out {
		if r.Float64() < p {
			out[i] = 1
		}
	}
	return out
}

func TestT0GoodSequencePasses(t *testing.T) {
	bits := goodBits(48*(1<<16), 1)
	v, err := T0Disjointness(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T0 failed on good bits: %v", v)
	}
}

func TestT0DetectsRepetition(t *testing.T) {
	bits := goodBits(48*(1<<16), 2)
	// Make block 100 a copy of block 7.
	copy(bits[100*48:101*48], bits[7*48:8*48])
	v, err := T0Disjointness(bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("T0 missed a duplicated block")
	}
}

func TestT0NeedsEnoughBits(t *testing.T) {
	if _, err := T0Disjointness(make([]byte, 100)); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestT1GoodPassesBiasedFails(t *testing.T) {
	v, err := T1Monobit(goodBits(20000, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T1 failed on good bits: %v", v)
	}
	v, err = T1Monobit(biasedBits(20000, 0.54, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T1 passed 4%% bias: %v", v)
	}
}

func TestT2GoodPassesStuckFails(t *testing.T) {
	v, err := T2Poker(goodBits(20000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T2 failed on good bits: %v", v)
	}
	// Periodic pattern: one nibble value dominates.
	bits := make([]byte, 20000)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	v, err = T2Poker(bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T2 passed alternating pattern: %v", v)
	}
}

func TestT3GoodPassesClusteredFails(t *testing.T) {
	v, err := T3Runs(goodBits(20000, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T3 failed on good bits: %v", v)
	}
	// Sticky source: too many long runs, too few singletons.
	r := rng.New(7)
	bits := make([]byte, 20000)
	cur := byte(0)
	for i := range bits {
		if r.Float64() < 0.2 {
			cur ^= 1
		}
		bits[i] = cur
	}
	v, err = T3Runs(bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T3 passed sticky source: %v", v)
	}
}

func TestT4LongRun(t *testing.T) {
	v, err := T4LongRun(goodBits(20000, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T4 failed on good bits: %v", v)
	}
	bits := goodBits(20000, 9)
	for i := 500; i < 540; i++ {
		bits[i] = 1
	}
	v, err = T4LongRun(bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("T4 missed a 40-run")
	}
}

func TestT5GoodPassesPeriodicFails(t *testing.T) {
	v, err := T5Autocorrelation(goodBits(20000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T5 failed on good bits: %v", v)
	}
	// Strong correlation at τ=8.
	r := rng.New(11)
	bits := make([]byte, 20000)
	for i := range bits {
		if i < 8 {
			bits[i] = byte(r.Uint64() & 1)
		} else if r.Float64() < 0.9 {
			bits[i] = bits[i-8]
		} else {
			bits[i] = bits[i-8] ^ 1
		}
	}
	v, err = T5Autocorrelation(bits)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T5 passed τ=8 correlated bits: %v", v)
	}
}

func TestT6Uniform(t *testing.T) {
	v, err := T6Uniform(goodBits(100000, 12), 100000, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T6 failed on good bits: %v", v)
	}
	v, err = T6Uniform(biasedBits(100000, 0.55, 13), 100000, 0.025)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T6 passed 5%% bias: %v", v)
	}
}

func TestT7Transition(t *testing.T) {
	v, err := T7Transition(goodBits(200001, 14), 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T7 failed on good bits: %v", v)
	}
	// Markov chain whose transition probabilities differ by state.
	r := rng.New(15)
	bits := make([]byte, 200001)
	for i := 1; i < len(bits); i++ {
		p := 0.48
		if bits[i-1] == 1 {
			p = 0.52
		}
		if r.Float64() < p {
			bits[i] = 1
		}
	}
	v, err = T7Transition(bits, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T7 passed asymmetric Markov source: %v", v)
	}
	constBits := make([]byte, 1001)
	v, err = T7Transition(constBits, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatal("T7 passed constant sequence")
	}
}

func TestT8CoronUniform(t *testing.T) {
	p := DefaultCoron()
	bits := goodBits((p.Q+p.K)*p.L, 16)
	v, err := T8Coron(bits, p)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("T8 failed on good bits: %v", v)
	}
	// The statistic must sit near 8 bits/word for a uniform source.
	if math.Abs(v.Statistic-8) > 0.05 {
		t.Fatalf("T8 statistic = %g, want ≈8", v.Statistic)
	}
}

func TestT8CoronBiasedFails(t *testing.T) {
	p := DefaultCoron()
	bits := biasedBits((p.Q+p.K)*p.L, 0.58, 17)
	v, err := T8Coron(bits, p)
	if err != nil {
		t.Fatal(err)
	}
	if v.Pass {
		t.Fatalf("T8 passed biased source: %v", v)
	}
	// Sanity: the statistic should approximate the per-word entropy,
	// 8·H₂(0.58) ≈ 7.85.
	want := 8 * (-(0.58*math.Log2(0.58) + 0.42*math.Log2(0.42)))
	if math.Abs(v.Statistic-want) > 0.25 {
		t.Fatalf("T8 statistic %g, want ≈%g", v.Statistic, want)
	}
}

func TestT8Validation(t *testing.T) {
	if _, err := T8Coron(make([]byte, 10), DefaultCoron()); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := T8Coron(make([]byte, 100), CoronParams{L: 20, Q: 1, K: 1}); err == nil {
		t.Fatal("L=20 accepted")
	}
}

func TestProcedureAGood(t *testing.T) {
	need := 48*(1<<16) + 257*20000
	verdicts, pass, err := ProcedureA(goodBits(need, 18))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("procedure A failed on good bits: %v", verdicts)
	}
}

func TestProcedureAFailsOnBias(t *testing.T) {
	need := 48*(1<<16) + 257*20000
	_, pass, err := ProcedureA(biasedBits(need, 0.53, 19))
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("procedure A passed 3% bias")
	}
}

func TestProcedureBGoodAndBad(t *testing.T) {
	p := DefaultCoron()
	need := (p.Q+p.K)*p.L + 200001
	verdicts, pass, err := ProcedureB(goodBits(need, 20))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("procedure B failed on good bits: %v", verdicts)
	}
	_, pass, err = ProcedureB(biasedBits(need, 0.56, 21))
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("procedure B passed biased source")
	}
}

func TestProcedureInputChecks(t *testing.T) {
	if _, _, err := ProcedureA(make([]byte, 100)); err == nil {
		t.Fatal("short procedure A input accepted")
	}
	if _, _, err := ProcedureB(make([]byte, 100)); err == nil {
		t.Fatal("short procedure B input accepted")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{Name: "T1", Pass: true, Statistic: 1, Detail: "x"}
	if v.String() == "" {
		t.Fatal("empty verdict string")
	}
	v.Pass = false
	if v.String() == "" {
		t.Fatal("empty fail string")
	}
}
