// Package ais31 implements the statistical test procedures of the
// AIS 31 evaluation methodology (Killmann & Schindler, "A proposal for:
// Functionality classes for random number generators", 2011), the
// certification framework the paper targets: P-TRNG security assessment
// rests on a stochastic model plus online tests, and the paper's
// proposed thermal-noise monitor is meant to serve as such a
// generator-specific test.
//
// Implemented tests:
//
//	T0 — disjointness test (2^16 48-bit blocks pairwise distinct)
//	T1 — monobit test             (FIPS 140-1 bounds)
//	T2 — poker test (4-bit)
//	T3 — runs test
//	T4 — long-run test
//	T5 — autocorrelation test
//	T6 — uniform distribution test
//	T7 — comparative test for transition probabilities
//	T8 — Coron's entropy test
//
// plus the Procedure A and Procedure B drivers that combine them.
package ais31

import (
	"fmt"
	"math"
)

// Verdict is the outcome of one test.
type Verdict struct {
	Name      string
	Pass      bool
	Statistic float64
	// Detail carries the human-readable bound check.
	Detail string
}

func (v Verdict) String() string {
	status := "PASS"
	if !v.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-4s %s stat=%.4g %s", v.Name, status, v.Statistic, v.Detail)
}

// onesCount counts set bits in a 0/1 slice.
func onesCount(bits []byte) int {
	var n int
	for _, b := range bits {
		if b&1 == 1 {
			n++
		}
	}
	return n
}

// T0Disjointness checks that the first 2^16 disjoint 48-bit blocks are
// pairwise distinct. It needs 48·65536 input bits.
func T0Disjointness(bits []byte) (Verdict, error) {
	const (
		blocks   = 1 << 16
		blockLen = 48
	)
	if len(bits) < blocks*blockLen {
		return Verdict{}, fmt.Errorf("ais31: T0 needs %d bits, got %d", blocks*blockLen, len(bits))
	}
	seen := make(map[uint64]struct{}, blocks)
	for b := 0; b < blocks; b++ {
		var w uint64
		for i := 0; i < blockLen; i++ {
			w = w<<1 | uint64(bits[b*blockLen+i]&1)
		}
		if _, dup := seen[w]; dup {
			return Verdict{
				Name: "T0", Pass: false, Statistic: float64(b),
				Detail: fmt.Sprintf("duplicate 48-bit block at index %d", b),
			}, nil
		}
		seen[w] = struct{}{}
	}
	return Verdict{Name: "T0", Pass: true, Detail: "2^16 blocks disjoint"}, nil
}

// T1Monobit applies the monobit test to the first 20000 bits:
// pass iff 9654 < ones < 10346.
func T1Monobit(bits []byte) (Verdict, error) {
	if len(bits) < 20000 {
		return Verdict{}, fmt.Errorf("ais31: T1 needs 20000 bits, got %d", len(bits))
	}
	ones := onesCount(bits[:20000])
	pass := ones > 9654 && ones < 10346
	return Verdict{
		Name: "T1", Pass: pass, Statistic: float64(ones),
		Detail: "bound (9654, 10346)",
	}, nil
}

// T2Poker applies the 4-bit poker test to the first 20000 bits:
// X = (16/5000)·Σ f_i² − 5000, pass iff 1.03 < X < 57.4.
func T2Poker(bits []byte) (Verdict, error) {
	if len(bits) < 20000 {
		return Verdict{}, fmt.Errorf("ais31: T2 needs 20000 bits, got %d", len(bits))
	}
	var counts [16]int
	for i := 0; i < 5000; i++ {
		var w int
		for k := 0; k < 4; k++ {
			w = w<<1 | int(bits[4*i+k]&1)
		}
		counts[w]++
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c) * float64(c)
	}
	x := 16.0/5000.0*sum - 5000
	pass := x > 1.03 && x < 57.4
	return Verdict{Name: "T2", Pass: pass, Statistic: x, Detail: "bound (1.03, 57.4)"}, nil
}

// runsBounds are the AIS31/FIPS permitted intervals for the number of
// runs of each length (1..5, and >= 6), applied separately to runs of
// zeros and runs of ones over 20000 bits.
var runsBounds = [6][2]int{
	{2267, 2733},
	{1079, 1421},
	{502, 748},
	{223, 402},
	{90, 223},
	{90, 223},
}

// T3Runs counts runs of zeros and ones in the first 20000 bits and
// checks each length class against the permitted interval.
func T3Runs(bits []byte) (Verdict, error) {
	if len(bits) < 20000 {
		return Verdict{}, fmt.Errorf("ais31: T3 needs 20000 bits, got %d", len(bits))
	}
	bits = bits[:20000]
	var runs [2][6]int
	i := 0
	for i < len(bits) {
		v := bits[i] & 1
		j := i
		for j < len(bits) && bits[j]&1 == v {
			j++
		}
		length := j - i
		cls := length - 1
		if cls > 5 {
			cls = 5
		}
		runs[v][cls]++
		i = j
	}
	for v := 0; v < 2; v++ {
		for c := 0; c < 6; c++ {
			lo, hi := runsBounds[c][0], runsBounds[c][1]
			if runs[v][c] < lo || runs[v][c] > hi {
				return Verdict{
					Name: "T3", Pass: false, Statistic: float64(runs[v][c]),
					Detail: fmt.Sprintf("runs of %d, length class %d: %d outside [%d, %d]", v, c+1, runs[v][c], lo, hi),
				}, nil
			}
		}
	}
	return Verdict{Name: "T3", Pass: true, Detail: "all run-length classes in bounds"}, nil
}

// T4LongRun fails iff the first 20000 bits contain a run of length >= 34.
func T4LongRun(bits []byte) (Verdict, error) {
	if len(bits) < 20000 {
		return Verdict{}, fmt.Errorf("ais31: T4 needs 20000 bits, got %d", len(bits))
	}
	bits = bits[:20000]
	longest := 0
	i := 0
	for i < len(bits) {
		v := bits[i] & 1
		j := i
		for j < len(bits) && bits[j]&1 == v {
			j++
		}
		if j-i > longest {
			longest = j - i
		}
		i = j
	}
	pass := longest < 34
	return Verdict{Name: "T4", Pass: pass, Statistic: float64(longest), Detail: "longest run must be < 34"}, nil
}

// T5Autocorrelation applies the autocorrelation test: on bits
// 0..9999 it selects the shift τ ∈ [1, 5000] with the most extreme
// statistic, then evaluates Z_τ = Σ_{j=0}^{4999} b_{10000+j} ⊕
// b_{10000+j+τ} on the NEXT 10000 bits; pass iff 2326 < Z_τ < 2674.
// It therefore needs 20000 bits.
func T5Autocorrelation(bits []byte) (Verdict, error) {
	if len(bits) < 20000 {
		return Verdict{}, fmt.Errorf("ais31: T5 needs 20000 bits, got %d", len(bits))
	}
	// Selection phase on the first half.
	half := bits[:10000]
	bestTau, bestDev := 1, -1.0
	for tau := 1; tau <= 5000; tau++ {
		var z int
		for j := 0; j+tau < len(half) && j < 5000; j++ {
			z += int(half[j]&1 ^ half[j+tau]&1)
		}
		dev := math.Abs(float64(z) - 2500)
		if dev > bestDev {
			bestDev = dev
			bestTau = tau
		}
	}
	// Evaluation phase on the second half.
	second := bits[10000:20000]
	var z int
	for j := 0; j < 5000; j++ {
		z += int(second[j]&1 ^ second[(j+bestTau)%10000]&1)
	}
	pass := z > 2326 && z < 2674
	return Verdict{
		Name: "T5", Pass: pass, Statistic: float64(z),
		Detail: fmt.Sprintf("tau=%d, bound (2326, 2674)", bestTau),
	}, nil
}

// T6Uniform checks the empirical one-probability of n disjoint bits
// against |P̂(1) − 1/2| <= a. AIS31 Procedure B applies it with
// n = 100000 and a = 0.025 on the raw sequence.
func T6Uniform(bits []byte, n int, a float64) (Verdict, error) {
	if len(bits) < n {
		return Verdict{}, fmt.Errorf("ais31: T6 needs %d bits, got %d", n, len(bits))
	}
	p := float64(onesCount(bits[:n])) / float64(n)
	dev := math.Abs(p - 0.5)
	return Verdict{
		Name: "T6", Pass: dev <= a, Statistic: p,
		Detail: fmt.Sprintf("|p−0.5| = %.4g <= %.4g", dev, a),
	}, nil
}

// T7Transition compares the conditional one-probabilities
// P(1|previous=0) and P(1|previous=1) over n transitions; the statistic
// is the two-proportion z-score and the test passes iff |z| < bound
// (AIS31 uses a significance corresponding to z ≈ 3.29 for α=0.001).
func T7Transition(bits []byte, n int) (Verdict, error) {
	if len(bits) < n+1 {
		return Verdict{}, fmt.Errorf("ais31: T7 needs %d bits, got %d", n+1, len(bits))
	}
	var cnt [2]int
	var ones [2]int
	for i := 1; i <= n; i++ {
		prev := bits[i-1] & 1
		cnt[prev]++
		if bits[i]&1 == 1 {
			ones[prev]++
		}
	}
	if cnt[0] == 0 || cnt[1] == 0 {
		return Verdict{Name: "T7", Pass: false, Detail: "degenerate sequence (constant)"}, nil
	}
	p0 := float64(ones[0]) / float64(cnt[0])
	p1 := float64(ones[1]) / float64(cnt[1])
	pPool := float64(ones[0]+ones[1]) / float64(cnt[0]+cnt[1])
	se := math.Sqrt(pPool * (1 - pPool) * (1/float64(cnt[0]) + 1/float64(cnt[1])))
	var z float64
	if se > 0 {
		z = (p0 - p1) / se
	}
	const bound = 3.29
	return Verdict{
		Name: "T7", Pass: math.Abs(z) < bound, Statistic: z,
		Detail: fmt.Sprintf("two-proportion |z| < %.2f", bound),
	}, nil
}

// CoronParams configures T8.
type CoronParams struct {
	// L is the word length in bits (AIS31: 8).
	L int
	// Q is the number of initialization words (AIS31: 2560).
	Q int
	// K is the number of test words (AIS31: 256000).
	K int
	// Threshold is the minimum accepted statistic (AIS31: 7.976 for
	// L = 8).
	Threshold float64
}

// DefaultCoron returns the AIS31 T8 parameterization.
func DefaultCoron() CoronParams {
	return CoronParams{L: 8, Q: 2560, K: 256000, Threshold: 7.976}
}

// T8Coron runs Coron's refined universal entropy test: the statistic
//
//	f = (1/K)·Σ_n g(A_n),   g(i) = (1/ln2)·Σ_{k=1}^{i−1} 1/k,
//
// where A_n is the distance to the previous occurrence of the n-th word,
// has expectation equal to the per-word entropy for memoryless sources.
// Pass iff f > Threshold.
func T8Coron(bits []byte, p CoronParams) (Verdict, error) {
	if p.L < 1 || p.L > 16 {
		return Verdict{}, fmt.Errorf("ais31: T8 word length %d out of [1,16]", p.L)
	}
	need := (p.Q + p.K) * p.L
	if len(bits) < need {
		return Verdict{}, fmt.Errorf("ais31: T8 needs %d bits, got %d", need, len(bits))
	}
	nWords := p.Q + p.K
	words := make([]uint32, nWords)
	for w := 0; w < nWords; w++ {
		var v uint32
		for i := 0; i < p.L; i++ {
			v = v<<1 | uint32(bits[w*p.L+i]&1)
		}
		words[w] = v
	}
	// Precompute g up to the maximum possible distance.
	g := make([]float64, nWords+1)
	var harmonic float64
	for i := 1; i <= nWords; i++ {
		g[i] = harmonic / math.Ln2
		harmonic += 1 / float64(i)
	}
	last := make([]int, 1<<uint(p.L))
	for i := range last {
		last[i] = -1
	}
	for n := 0; n < p.Q; n++ {
		last[words[n]] = n
	}
	var sum float64
	for n := p.Q; n < nWords; n++ {
		w := words[n]
		var dist int
		if last[w] < 0 {
			dist = n + 1 // first occurrence: maximal distance convention
		} else {
			dist = n - last[w]
		}
		sum += g[dist]
		last[w] = n
	}
	f := sum / float64(p.K)
	return Verdict{
		Name: "T8", Pass: f > p.Threshold, Statistic: f,
		Detail: fmt.Sprintf("threshold %.3f (L=%d)", p.Threshold, p.L),
	}, nil
}

// ProcedureA runs T0 followed by 257 rounds of T1–T5 on consecutive
// 20000-bit blocks, per the AIS31 procedure A layout. It requires
// 48·2^16 + 257·20000 bits ≈ 8.3 Mbit. One failing round is tolerated
// per the standard's repetition rule only for the first failure; this
// implementation reports a failure count and passes iff at most one
// round fails.
func ProcedureA(bits []byte) ([]Verdict, bool, error) {
	const rounds = 257
	need := 48*(1<<16) + rounds*20000
	if len(bits) < need {
		return nil, false, fmt.Errorf("ais31: procedure A needs %d bits, got %d", need, len(bits))
	}
	var out []Verdict
	v0, err := T0Disjointness(bits)
	if err != nil {
		return nil, false, err
	}
	out = append(out, v0)
	failures := 0
	if !v0.Pass {
		failures++
	}
	off := 48 * (1 << 16)
	tests := []func([]byte) (Verdict, error){T1Monobit, T2Poker, T3Runs, T4LongRun, T5Autocorrelation}
	for r := 0; r < rounds; r++ {
		block := bits[off+r*20000 : off+(r+1)*20000]
		roundFailed := false
		for _, t := range tests {
			v, err := t(block)
			if err != nil {
				return nil, false, err
			}
			if !v.Pass {
				roundFailed = true
				out = append(out, v)
			}
		}
		if roundFailed {
			failures++
		}
	}
	return out, failures <= 1, nil
}

// ProcedureB runs T6 (two disjoint halves), T7 and T8 on the input, per
// the AIS31 procedure B intent (the exact standard applies them to
// internal random numbers with specified sub-sequence extraction; this
// implementation applies them to the supplied raw sequence directly).
func ProcedureB(bits []byte) ([]Verdict, bool, error) {
	p := DefaultCoron()
	need := (p.Q+p.K)*p.L + 200001
	if len(bits) < need {
		return nil, false, fmt.Errorf("ais31: procedure B needs %d bits, got %d", need, len(bits))
	}
	var out []Verdict
	allPass := true
	v6a, err := T6Uniform(bits, 100000, 0.025)
	if err != nil {
		return nil, false, err
	}
	v6a.Name = "T6a"
	out = append(out, v6a)
	v6b, err := T6Uniform(bits[100000:], 100000, 0.025)
	if err != nil {
		return nil, false, err
	}
	v6b.Name = "T6b"
	out = append(out, v6b)
	v7, err := T7Transition(bits, 200000)
	if err != nil {
		return nil, false, err
	}
	out = append(out, v7)
	v8, err := T8Coron(bits[200001:], p)
	if err != nil {
		return nil, false, err
	}
	out = append(out, v8)
	for _, v := range out {
		if !v.Pass {
			allPass = false
		}
	}
	return out, allPass, nil
}
