package ais31

import (
	"testing"

	"repro/internal/rng"
)

func TestTotTestDetectsStuck(t *testing.T) {
	tot, err := NewTotTest(32)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	// Live source: no alarm over many bits.
	for i := 0; i < 100000; i++ {
		if tot.Push(byte(r.Uint64() & 1)) {
			t.Fatalf("false total-failure alarm at bit %d", i)
		}
	}
	// Stuck-at-1: alarm within window bits.
	fired := -1
	for i := 0; i < 64; i++ {
		if tot.Push(1) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("stuck source not detected")
	}
	if fired > 32 {
		t.Fatalf("detection took %d bits for a 32-bit window", fired)
	}
}

func TestTotTestStuckAtZero(t *testing.T) {
	tot, _ := NewTotTest(16)
	fired := false
	for i := 0; i < 40; i++ {
		if tot.Push(0) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("stuck-at-0 not detected")
	}
}

func TestTotTestValidation(t *testing.T) {
	if _, err := NewTotTest(1); err == nil {
		t.Fatal("window 1 accepted")
	}
	if _, err := NewTotTest(65); err == nil {
		t.Fatal("window 65 accepted")
	}
}

func TestStartupTestGoodAndBad(t *testing.T) {
	verdicts, pass, err := StartupTest(goodBits(20000, 31))
	if err != nil {
		t.Fatal(err)
	}
	if !pass || len(verdicts) != 4 {
		t.Fatalf("startup failed on good bits: %v", verdicts)
	}
	_, pass, err = StartupTest(biasedBits(20000, 0.56, 32))
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("startup passed biased bits")
	}
	if _, _, err := StartupTest(make([]byte, 10)); err == nil {
		t.Fatal("short startup input accepted")
	}
}

func TestOnlineMonobitFalseAlarmRate(t *testing.T) {
	om, err := NewOnlineMonobit(1024, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	for i := 0; i < 2000*1024; i++ {
		om.Push(byte(r.Uint64() & 1))
	}
	evaluated, alarms := om.Counts()
	if evaluated != 2000 {
		t.Fatalf("evaluated %d blocks", evaluated)
	}
	// Expected false alarms ~ 0.2; more than 4 signals a bug.
	if alarms > 4 {
		t.Fatalf("%d false alarms in %d blocks at alpha=1e-4", alarms, evaluated)
	}
}

func TestOnlineMonobitDetectsBias(t *testing.T) {
	om, err := NewOnlineMonobit(1024, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(34)
	fired := false
	for i := 0; i < 50*1024 && !fired; i++ {
		var b byte
		if r.Float64() < 0.62 {
			b = 1
		}
		fired = om.Push(b)
	}
	if !fired {
		t.Fatal("12% bias not detected within 50 blocks")
	}
}

func TestOnlineMonobitValidation(t *testing.T) {
	if _, err := NewOnlineMonobit(10, 0.01); err == nil {
		t.Fatal("tiny block accepted")
	}
	if _, err := NewOnlineMonobit(1024, 0.9); err == nil {
		t.Fatal("alpha 0.9 accepted")
	}
}

func TestInverseNormalTail(t *testing.T) {
	// P(Z > 1.6449) ≈ 0.05
	z := inverseNormalTail(0.05)
	if z < 1.63 || z > 1.66 {
		t.Fatalf("z(0.05) = %g", z)
	}
	z = inverseNormalTail(0.001)
	if z < 3.0 || z > 3.2 {
		t.Fatalf("z(0.001) = %g", z)
	}
}
