// Package osc simulates classical ring oscillators at the edge-time
// level. It is the stand-in for the paper's FPGA hardware (two 103 MHz
// rings on an Altera Cyclone III): every downstream experiment consumes
// only the stream of rising-edge times / periods, which this simulator
// produces with the exact noise statistics assumed by the multilevel
// model:
//
//   - thermal noise → white FM: per-period jitter J_th i.i.d. Gaussian
//     with variance σ² = b_th/f0³, giving σ²_N,th = 2·(b_th/f0³)·N;
//   - flicker noise → flicker FM: fractional-frequency process y with
//     one-sided PSD S_y(f) = h₋₁/f, h₋₁ = 2·b_fl/f0², giving
//     σ²_N,fl = 8·ln2·(b_fl/f0⁴)·N² (paper eq. 11).
//
// A Modulator hook allows deterministic period modulation (frequency
// injection attacks, supply drift) and noise-scaling attacks.
//
// Besides the edge-by-edge path, the oscillator offers a leapfrog
// fast-forward (Leapfrog, LeapfrogToBefore — see leapfrog.go) that
// advances a whole window of periods at O(poles) cost, exact in
// distribution; any installed Modulator forces the edge-level path.
package osc

import (
	"fmt"
	"math"

	"repro/internal/flicker"
	"repro/internal/phase"
	"repro/internal/rng"
)

// Modulator is a deterministic period disturbance: given the nominal
// edge time t (s) and the period index i, it returns an additive period
// offset in seconds. Used to model frequency-injection attacks and
// environmental drift.
type Modulator func(t float64, i uint64) float64

// Options configures an Oscillator.
type Options struct {
	// Seed seeds the oscillator's private noise streams.
	Seed uint64
	// FlickerGenerator selects the 1/f synthesis method: "ou"
	// (default; streaming, O(1)/sample) or "kasdin" (exact spectrum,
	// block FFT).
	FlickerGenerator string
	// FlickerFMin sets the low-frequency flatten point of the OU
	// generator as a fraction of f0; zero selects 1e-8·f0, long
	// enough that all experiments in this repository sit inside the
	// 1/f band.
	FlickerFMin float64
	// PolesPerDecade forwards to the OU generator (default 3).
	PolesPerDecade int
	// Modulator, when non-nil, adds a deterministic per-period
	// offset (attack/drift model).
	Modulator Modulator
	// ThermalScale and FlickerScale multiply the respective noise
	// amplitudes (not variances); 0 means 1. They exist for
	// noise-manipulation attack experiments.
	ThermalScale, FlickerScale float64
}

// Oscillator produces the rising-edge time series of one ring
// oscillator.
type Oscillator struct {
	model   phase.Model
	sigmaTh float64
	fm      flicker.Generator // nil when Bfl == 0
	src     *rng.Source
	mod     Modulator
	t       float64 // time of the last emitted edge
	index   uint64
	period0 float64
	thScale float64
	flScale float64
	// Leapfrog guard-band buffers (see leapfrog.go).
	guard        []float64
	guardScratch []float64
}

// New constructs an oscillator for the given phase-noise model.
func New(model phase.Model, opt Options) (*Oscillator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	o := &Oscillator{
		model:   model,
		sigmaTh: model.SigmaThermal(),
		src:     rng.New(opt.Seed),
		mod:     opt.Modulator,
		period0: 1 / model.F0,
		thScale: opt.ThermalScale,
		flScale: opt.FlickerScale,
	}
	if o.thScale == 0 {
		o.thScale = 1
	}
	if o.flScale == 0 {
		o.flScale = 1
	}
	if model.Bfl > 0 {
		_, hm1 := model.PeriodJitterPSDs()
		switch opt.FlickerGenerator {
		case "", "ou":
			fmin := opt.FlickerFMin
			if fmin == 0 {
				fmin = 1e-8
			}
			g, err := flicker.NewOU(flicker.OUOptions{
				HM1:            hm1,
				SampleRate:     model.F0,
				FMin:           fmin * model.F0,
				FMax:           model.F0 / 4,
				PolesPerDecade: opt.PolesPerDecade,
				Seed:           o.src.Uint64(),
			})
			if err != nil {
				return nil, err
			}
			o.fm = g
		case "kasdin":
			g, err := flicker.NewKasdin(flicker.KasdinOptions{
				Alpha:      1,
				HM1:        hm1,
				SampleRate: model.F0,
				Seed:       o.src.Uint64(),
			})
			if err != nil {
				return nil, err
			}
			o.fm = g
		default:
			return nil, fmt.Errorf("osc: unknown flicker generator %q", opt.FlickerGenerator)
		}
	}
	return o, nil
}

// Model returns the phase-noise model driving the oscillator.
func (o *Oscillator) Model() phase.Model { return o.model }

// F0 returns the nominal frequency.
func (o *Oscillator) F0() float64 { return o.model.F0 }

// NextPeriod advances the oscillator by one period and returns its
// duration T(t_i) in seconds (paper eq. 7 viewpoint: nominal period plus
// jitter).
func (o *Oscillator) NextPeriod() float64 {
	period := o.period0
	// Thermal: white FM, independent per period.
	if o.sigmaTh > 0 {
		period += o.thScale * o.sigmaTh * o.src.Norm()
	}
	// Flicker: fractional frequency deviation y_i, J_fl = y_i·T0.
	if o.fm != nil {
		period += o.flScale * o.fm.Next() * o.period0
	}
	if o.mod != nil {
		period += o.mod(o.t, o.index)
	}
	// Clamp pathological negative periods (can only occur with
	// absurd noise scales); keeps the edge sequence monotone.
	if period < o.period0*1e-3 {
		period = o.period0 * 1e-3
	}
	o.t += period
	o.index++
	return period
}

// NextEdge returns the absolute time of the next rising edge.
func (o *Oscillator) NextEdge() float64 {
	o.NextPeriod()
	return o.t
}

// Now returns the time of the most recently emitted edge.
func (o *Oscillator) Now() float64 { return o.t }

// Index returns the number of periods generated so far.
func (o *Oscillator) Index() uint64 { return o.index }

// NextPeriods fills dst with the next len(dst) consecutive period
// durations and returns dst. It is the chunked form of NextPeriod: one
// call amortizes the per-period method dispatch and state write-back
// over the whole chunk, which is what makes the campaign workers' hot
// loops fast. The emitted sequence is bit-identical to len(dst)
// successive NextPeriod calls.
func (o *Oscillator) NextPeriods(dst []float64) []float64 {
	// Hoist the true loop invariants (no API mutates them mid-run).
	// Everything a Modulator may legally touch — thScale/flScale via
	// the Set*Scale setters, the modulator itself via SetModulator —
	// is re-read every iteration, and o.t/o.index are synced before
	// each modulator call so a modulator reading Now()/Index() sees
	// exactly what the scalar NextPeriod path would show it.
	var (
		t       = o.t
		index   = o.index
		period0 = o.period0
		sigmaTh = o.sigmaTh
		src     = o.src
		fm      = o.fm
		floor   = period0 * 1e-3
	)
	for i := range dst {
		period := period0
		if sigmaTh > 0 {
			period += o.thScale * sigmaTh * src.Norm()
		}
		if fm != nil {
			period += o.flScale * fm.Next() * period0
		}
		if o.mod != nil {
			o.t, o.index = t, index
			period += o.mod(t, index)
		}
		if period < floor {
			period = floor
		}
		t += period
		index++
		dst[i] = period
	}
	o.t = t
	o.index = index
	return dst
}

// NextEdges fills dst with the absolute times of the next len(dst)
// rising edges and returns dst — the chunked form of NextEdge used by
// edge-consuming clients (measure.Counter, multiring) to amortize
// per-edge call overhead. Bit-identical to len(dst) successive
// NextEdge calls.
func (o *Oscillator) NextEdges(dst []float64) []float64 {
	t0 := o.t
	o.NextPeriods(dst)
	// Convert in-place from period durations to absolute edge times by
	// the same left-to-right accumulation NextEdge performs, so the
	// float rounding matches exactly.
	for i := range dst {
		t0 += dst[i]
		dst[i] = t0
	}
	return dst
}

// Periods generates n consecutive periods into a fresh slice.
func (o *Oscillator) Periods(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = o.NextPeriod()
	}
	return out
}

// Jitter generates n consecutive period-jitter realizations
// J = T − 1/f0 (paper eq. 3).
func (o *Oscillator) Jitter(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = o.NextPeriod() - o.period0
	}
	return out
}

// SetThermalScale changes the thermal noise amplitude scale mid-run
// (attack experiments: an adversary cooling the die or injecting a
// locking tone reduces the exploitable thermal jitter).
func (o *Oscillator) SetThermalScale(s float64) { o.thScale = s }

// SetFlickerScale changes the flicker amplitude scale mid-run.
func (o *Oscillator) SetFlickerScale(s float64) { o.flScale = s }

// SetModulator installs or replaces the deterministic period modulator.
func (o *Oscillator) SetModulator(m Modulator) { o.mod = m }

// SineInjection returns a Modulator implementing a frequency-injection
// attack (Markettos & Moore, CHES 2009): a tone at fInj couples into the
// ring and modulates its period with relative amplitude depth
// (ΔT/T0 = depth·sin(2π·fInj·t)).
func SineInjection(fInj, depth, t0 float64) Modulator {
	return func(t float64, _ uint64) float64 {
		return depth * t0 * math.Sin(2*math.Pi*fInj*t)
	}
}

// Pair is the two-oscillator arrangement of the eRO-TRNG (paper Fig. 4)
// and of the differential jitter measurement circuit (Fig. 6): two
// nominally identical, physically independent rings.
type Pair struct {
	Osc1, Osc2 *Oscillator
}

// NewPair builds two independent oscillators from the same model with
// decorrelated seeds. mismatch is the relative frequency mismatch
// between the rings (real "identical" FPGA rings differ by process
// variation; 0 is allowed and keeps both at f0).
func NewPair(model phase.Model, mismatch float64, opt Options) (*Pair, error) {
	m1 := model
	m2 := model
	m2.F0 = model.F0 * (1 + mismatch)
	o1opt := opt
	o2opt := opt
	o1opt.Seed = opt.Seed*2654435761 + 1
	o2opt.Seed = opt.Seed*2654435761 + 2
	o1, err := New(m1, o1opt)
	if err != nil {
		return nil, err
	}
	o2, err := New(m2, o2opt)
	if err != nil {
		return nil, err
	}
	return &Pair{Osc1: o1, Osc2: o2}, nil
}

// RelativeModel returns the phase-noise model of the relative jitter
// between the pair's oscillators: for independent rings the noise
// coefficients add.
func (p *Pair) RelativeModel() phase.Model {
	m := p.Osc1.Model()
	m2 := p.Osc2.Model()
	return phase.Model{Bth: m.Bth + m2.Bth, Bfl: m.Bfl + m2.Bfl, F0: m.F0}
}
