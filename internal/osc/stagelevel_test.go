package osc

import (
	"math"
	"testing"

	"repro/internal/phys"
	"repro/internal/stats"
)

func TestStageLevelValidation(t *testing.T) {
	bad := phys.DefaultRing()
	bad.Stages = 2
	if _, err := NewStageLevel(bad, StageLevelOptions{}); err == nil {
		t.Fatal("even-stage ring accepted")
	}
}

func TestStageLevelNominalFrequency(t *testing.T) {
	ring := phys.DefaultRing()
	s, err := NewStageLevel(ring, StageLevelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Periods(20000)
	mean := stats.Mean(p)
	want := ring.Period()
	if math.Abs(mean-want) > 1e-4*want {
		t.Fatalf("mean period %g, want %g", mean, want)
	}
}

func TestStageLevelPeriodVarianceAggregates(t *testing.T) {
	// Var(period) must equal 2n·σ_d² — the Bienaymé aggregation of
	// independent stage delays (the multilevel ladder's bottom rung).
	ring := phys.DefaultRing()
	s, err := NewStageLevel(ring, StageLevelOptions{Seed: 2, ThermalExcess: 165})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Periods(200000)
	v := stats.Variance(p)
	sig := s.PredictedPeriodSigma()
	want := sig * sig
	if math.Abs(v-want) > 0.03*want {
		t.Fatalf("period variance %g, want %g", v, want)
	}
}

func TestStageLevelJitterIsWhite(t *testing.T) {
	ring := phys.DefaultRing()
	s, err := NewStageLevel(ring, StageLevelOptions{Seed: 3, ThermalExcess: 165})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Periods(100000)
	j := make([]float64, len(p))
	t0 := ring.Period()
	for i, v := range p {
		j[i] = v - t0
	}
	rho := stats.Autocorrelation(j, 3)
	for k := 1; k <= 3; k++ {
		if math.Abs(rho[k]) > 0.02 {
			t.Fatalf("stage-level jitter autocorrelated at lag %d: %g", k, rho[k])
		}
	}
}

func TestStageLevelMatchesPhaseLevel(t *testing.T) {
	// The stage-level aggregate must reproduce the phase-level white
	// FM law: σ²_N(stage sim) ≈ 2Nσ² with σ from the equivalent model.
	ring := phys.DefaultRing()
	s, err := NewStageLevel(ring, StageLevelOptions{Seed: 4, ThermalExcess: 165})
	if err != nil {
		t.Fatal(err)
	}
	bth, f0, err := s.EquivalentPhaseModel()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Periods(400000)
	t0 := ring.Period()
	j := make([]float64, len(p))
	for i, v := range p {
		j[i] = v - t0
	}
	// σ²_N at N=64 via disjoint windows.
	const n = 64
	var snVals []float64
	for i := 0; i+2*n <= len(j); i += 2 * n {
		var lo, hi float64
		for k := 0; k < n; k++ {
			lo += j[i+k]
			hi += j[i+n+k]
		}
		snVals = append(snVals, hi-lo)
	}
	got := stats.Variance(snVals)
	want := 2 * float64(n) * bth / (f0 * f0 * f0)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("stage-level σ²_64 = %g, phase-level law %g", got, want)
	}
}

func TestStageLevelExcessScaling(t *testing.T) {
	ring := phys.DefaultRing()
	a, _ := NewStageLevel(ring, StageLevelOptions{Seed: 5})
	b, _ := NewStageLevel(ring, StageLevelOptions{Seed: 5, ThermalExcess: 4})
	if math.Abs(b.SigmaStage()/a.SigmaStage()-2) > 1e-9 {
		t.Fatalf("excess 4 should double σ_d: ratio %g", b.SigmaStage()/a.SigmaStage())
	}
}

func TestStageLevelTransitionCount(t *testing.T) {
	ring := phys.DefaultRing()
	s, _ := NewStageLevel(ring, StageLevelOptions{Seed: 6})
	before := s.Now()
	s.NextPeriod()
	if s.Now() <= before {
		t.Fatal("time did not advance")
	}
	if s.periods != 1 {
		t.Fatalf("period counter %d", s.periods)
	}
}
