package osc

import (
	"math"
	"testing"

	"repro/internal/phase"
)

// leapModel is a paper-like per-ring model used across the leapfrog
// tests.
var leapModel = phase.Model{Bth: 138, Bfl: 2.6e-2, F0: 103e6}

func newLeapOsc(t testing.TB, seed uint64, opt Options) *Oscillator {
	t.Helper()
	opt.Seed = seed
	o, err := New(leapModel, opt)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestLeapfrogDeterminism pins the fast path's seed determinism and its
// guard-band-view invariance: identical seeds and window sequences give
// identical guard edges, identical Now/Index, and identical subsequent
// scalar streams — whether or not a caller reads the guard edges, and
// regardless of how many of them it reads (generation is canonical).
func TestLeapfrogDeterminism(t *testing.T) {
	a := newLeapOsc(t, 7, Options{})
	b := newLeapOsc(t, 7, Options{})
	if !a.CanLeapfrog() {
		t.Fatal("plain oscillator must support leapfrog")
	}
	for _, n := range []int{100_000, 1, 17, 4096} {
		idx := a.Index()
		ga := a.Leapfrog(n)
		gb := b.Leapfrog(n)
		_ = gb[0] // b's caller reads its guard edges; a's mostly ignores them
		if len(ga) != len(gb) {
			t.Fatalf("n=%d: guard lengths %d vs %d", n, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("n=%d: guard edge %d differs: %g vs %g", n, i, ga[i], gb[i])
			}
		}
		want := LeapfrogGuard
		if n < want {
			want = n
		}
		if len(ga) != want {
			t.Fatalf("n=%d: got %d guard edges, want %d", n, len(ga), want)
		}
		if a.Index() != idx+uint64(n) {
			t.Fatalf("n=%d: index advanced by %d, want %d", n, a.Index()-idx, n)
		}
		if a.Now() != b.Now() || a.Now() != ga[len(ga)-1] {
			t.Fatalf("n=%d: Now %g vs %g vs last guard edge %g", n, a.Now(), b.Now(), ga[len(ga)-1])
		}
	}
	for i := 0; i < 100; i++ {
		if a.NextPeriod() != b.NextPeriod() {
			t.Fatalf("scalar streams diverged after leapfrog at step %d", i)
		}
	}
}

// TestLeapfrogFallsBackToEdgePath pins the bit-exact fallback: with a
// Modulator installed, with the Kasdin flicker backend, or when the
// window is too small for a jump, Leapfrog must emit exactly the edge
// stream a twin oscillator produces with NextEdges.
func TestLeapfrogFallsBackToEdgePath(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		n    int
		can  bool
	}{
		{"modulator", Options{Modulator: func(t float64, i uint64) float64 { return 1e-12 }}, 2000, false},
		{"kasdin", Options{FlickerGenerator: "kasdin"}, 2000, false},
		{"small-window", Options{}, LeapfrogGuard + leapfrogMinJump - 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newLeapOsc(t, 11, tc.opt)
			b := newLeapOsc(t, 11, tc.opt)
			if got := a.CanLeapfrog(); got != tc.can {
				t.Fatalf("CanLeapfrog = %v, want %v", got, tc.can)
			}
			guard := a.Leapfrog(tc.n)
			edges := b.NextEdges(make([]float64, tc.n))
			tail := edges[tc.n-len(guard):]
			for i := range guard {
				if guard[i] != tail[i] {
					t.Fatalf("guard edge %d: %g vs edge path %g", i, guard[i], tail[i])
				}
			}
			if a.Now() != b.Now() || a.Index() != b.Index() {
				t.Fatalf("fallback state mismatch: Now %g vs %g, Index %d vs %d", a.Now(), b.Now(), a.Index(), b.Index())
			}
		})
	}
}

// TestLeapfrogJumpDistribution checks the fast path's first two moments
// against the edge path over an ensemble: the advance of an n-period
// window has mean n·T0 and the same variance as n stepped periods.
func TestLeapfrogJumpDistribution(t *testing.T) {
	const (
		trials = 1500
		n      = 4096
	)
	span := func(fast bool) []float64 {
		out := make([]float64, trials)
		for i := range out {
			o := newLeapOsc(t, uint64(i)*2+uint64(boolBit(fast))+3, Options{})
			t0 := o.Now()
			if fast {
				o.Leapfrog(n)
			} else {
				o.NextEdges(make([]float64, n))
			}
			out[i] = o.Now() - t0
		}
		return out
	}
	mv := func(xs []float64) (mean, vr float64) {
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		for _, x := range xs {
			vr += (x - mean) * (x - mean)
		}
		return mean, vr / float64(len(xs))
	}
	em, ev := mv(span(false))
	fm, fv := mv(span(true))
	t0 := 1 / leapModel.F0
	if math.Abs(em-float64(n)*t0) > 6*math.Sqrt(ev/trials) || math.Abs(fm-float64(n)*t0) > 6*math.Sqrt(fv/trials) {
		t.Fatalf("window span means: edge %g, fast %g, want %g", em, fm, float64(n)*t0)
	}
	if r := fv / ev; r < 0.8 || r > 1.25 {
		t.Fatalf("window span variance ratio fast/edge = %g (edge %g, fast %g)", r, ev, fv)
	}
}

// TestLeapfrogToBefore checks the jump-to-time primitive: it must land
// strictly before the target with a modest walk remaining, account its
// periods exactly, and refuse to jump when the target is too close,
// already past, or the oscillator cannot leapfrog.
func TestLeapfrogToBefore(t *testing.T) {
	o := newLeapOsc(t, 5, Options{})
	t0 := 1 / leapModel.F0
	for w := 0; w < 50; w++ {
		target := o.Now() + 100_000*t0
		idx := o.Index()
		j := o.LeapfrogToBefore(target)
		if j == 0 {
			t.Fatalf("window %d: no jump over a 100k-period gap", w)
		}
		if o.Index() != idx+j {
			t.Fatalf("window %d: index advanced %d, jump reported %d", w, o.Index()-idx, j)
		}
		if o.Now() >= target {
			t.Fatalf("window %d: jump overshot: Now %g >= target %g", w, o.Now(), target)
		}
		// The remaining walk is the slack margin: small and bounded.
		walked := 0
		for o.Now() < target {
			o.NextEdge()
			walked++
			if walked > 10_000 {
				t.Fatalf("window %d: walk after jump did not terminate", w)
			}
		}
		if walked > 2_000 {
			t.Fatalf("window %d: %d edges walked after jump — slack margin far too wide", w, walked)
		}
	}
	if j := o.LeapfrogToBefore(o.Now() - t0); j != 0 {
		t.Fatalf("jumped %d periods toward a past target", j)
	}
	if j := o.LeapfrogToBefore(o.Now() + 3*t0); j != 0 {
		t.Fatalf("jumped %d periods over a tiny gap", j)
	}
	o.SetModulator(func(float64, uint64) float64 { return 0 })
	if j := o.LeapfrogToBefore(o.Now() + 100_000*t0); j != 0 {
		t.Fatalf("jumped %d periods with a modulator installed", j)
	}
}

// TestLeapfrogMonotoneTime checks edge-time monotonicity across mixed
// fast and exact advancement.
func TestLeapfrogMonotoneTime(t *testing.T) {
	o := newLeapOsc(t, 9, Options{})
	last := o.Now()
	for i := 0; i < 200; i++ {
		var now float64
		if i%3 == 0 {
			now = o.NextEdge()
		} else {
			g := o.Leapfrog(1000 + i)
			now = g[len(g)-1]
		}
		if now <= last {
			t.Fatalf("step %d: time went backwards: %g -> %g", i, last, now)
		}
		last = now
	}
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
