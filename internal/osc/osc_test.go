package osc

import (
	"math"
	"testing"

	"repro/internal/phase"
	"repro/internal/stats"
)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func thermalOnly() phase.Model {
	m := paperModel()
	m.Bfl = 0
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(phase.Model{F0: 0}, Options{}); err == nil {
		t.Fatal("invalid model accepted")
	}
	if _, err := New(paperModel(), Options{FlickerGenerator: "nope"}); err == nil {
		t.Fatal("unknown flicker generator accepted")
	}
	if _, err := New(paperModel(), Options{FlickerGenerator: "kasdin"}); err != nil {
		t.Fatalf("kasdin generator rejected: %v", err)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, _ := New(paperModel(), Options{Seed: 42})
	b, _ := New(paperModel(), Options{Seed: 42})
	for i := 0; i < 10000; i++ {
		if a.NextPeriod() != b.NextPeriod() {
			t.Fatalf("same-seed oscillators diverge at period %d", i)
		}
	}
	c, _ := New(paperModel(), Options{Seed: 43})
	diff := 0
	for i := 0; i < 100; i++ {
		if a.NextPeriod() != c.NextPeriod() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produce identical streams")
	}
}

func TestMeanPeriod(t *testing.T) {
	o, _ := New(paperModel(), Options{Seed: 1})
	p := o.Periods(200000)
	mean := stats.Mean(p)
	t0 := 1 / paperModel().F0
	if math.Abs(mean-t0) > 1e-4*t0 {
		t.Fatalf("mean period %g, want %g", mean, t0)
	}
}

func TestThermalOnlyPeriodVariance(t *testing.T) {
	m := thermalOnly()
	o, _ := New(m, Options{Seed: 2})
	j := o.Jitter(500000)
	v := stats.Variance(j)
	want := m.Bth / (m.F0 * m.F0 * m.F0)
	if math.Abs(v-want) > 0.02*want {
		t.Fatalf("thermal period variance %g, want %g", v, want)
	}
}

func TestThermalOnlyJitterUncorrelated(t *testing.T) {
	o, _ := New(thermalOnly(), Options{Seed: 3})
	j := o.Jitter(200000)
	rho := stats.Autocorrelation(j, 5)
	for k := 1; k <= 5; k++ {
		if math.Abs(rho[k]) > 0.01 {
			t.Fatalf("thermal jitter autocorrelation lag %d = %g", k, rho[k])
		}
	}
}

func TestFlickerInducesAutocorrelation(t *testing.T) {
	// With a flicker-dominated model the fractional frequency is
	// strongly autocorrelated; period jitter inherits it.
	m := paperModel()
	m.Bfl *= 1e4 // exaggerate so lag-1 correlation is clearly visible
	o, _ := New(m, Options{Seed: 4})
	j := o.Jitter(200000)
	rho := stats.Autocorrelation(j, 1)
	if rho[1] < 0.1 {
		t.Fatalf("flicker-dominated jitter lag-1 autocorrelation = %g, want >> 0", rho[1])
	}
}

func TestEdgeTimesMonotone(t *testing.T) {
	o, _ := New(paperModel(), Options{Seed: 5})
	prev := 0.0
	for i := 0; i < 100000; i++ {
		e := o.NextEdge()
		if e <= prev {
			t.Fatalf("edge %d not monotone: %g after %g", i, e, prev)
		}
		prev = e
	}
	if o.Index() != 100000 {
		t.Fatalf("index = %d", o.Index())
	}
	if o.Now() != prev {
		t.Fatalf("Now() = %g, want %g", o.Now(), prev)
	}
}

func TestNegativePeriodClamp(t *testing.T) {
	m := thermalOnly()
	o, _ := New(m, Options{Seed: 6, ThermalScale: 1e9}) // absurd noise
	t0 := 1 / m.F0
	for i := 0; i < 10000; i++ {
		if p := o.NextPeriod(); p < t0*1e-3 {
			t.Fatalf("period %g below clamp", p)
		}
	}
}

func TestModulatorApplied(t *testing.T) {
	m := thermalOnly()
	m.Bth = 0 // noiseless: pure modulation
	const dt = 1e-12
	o, _ := New(m, Options{Seed: 7, Modulator: func(tm float64, i uint64) float64 { return dt }})
	p := o.NextPeriod()
	if math.Abs(p-(1/m.F0+dt)) > 1e-18 {
		t.Fatalf("modulated period %g", p)
	}
}

func TestSineInjectionModulator(t *testing.T) {
	mod := SineInjection(1e6, 0.01, 1e-8)
	// At t=0 the sine is 0; at quarter period it is maximal.
	if v := mod(0, 0); math.Abs(v) > 1e-15 {
		t.Fatalf("injection at t=0: %g", v)
	}
	if v := mod(0.25e-6, 0); math.Abs(v-0.01*1e-8) > 1e-12*0.01*1e-8 {
		t.Fatalf("injection at quarter period: %g", v)
	}
}

func TestScaleSetters(t *testing.T) {
	m := paperModel()
	o, _ := New(m, Options{Seed: 8})
	o.SetThermalScale(0)
	o.SetFlickerScale(0)
	t0 := 1 / m.F0
	// With both noise sources zeroed, periods are exactly nominal.
	for i := 0; i < 100; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-20 {
			t.Fatalf("period with zero scales: %g vs %g", p, t0)
		}
	}
}

func TestThermalScaleQuadraticInVariance(t *testing.T) {
	m := thermalOnly()
	a, _ := New(m, Options{Seed: 9})
	b, _ := New(m, Options{Seed: 9, ThermalScale: 2})
	ja := a.Jitter(300000)
	jb := b.Jitter(300000)
	ratio := stats.Variance(jb) / stats.Variance(ja)
	if math.Abs(ratio-4) > 0.1 {
		t.Fatalf("2× amplitude should give 4× variance, got %g", ratio)
	}
}

func TestPairIndependentStreams(t *testing.T) {
	p, err := NewPair(paperModel(), 0, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	j1 := p.Osc1.Jitter(100000)
	j2 := p.Osc2.Jitter(100000)
	if c := stats.Correlation(j1, j2); math.Abs(c) > 0.01 {
		t.Fatalf("pair jitter correlation %g, want ~0", c)
	}
}

func TestPairMismatch(t *testing.T) {
	p, err := NewPair(thermalOnly(), 0.01, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	f1 := p.Osc1.F0()
	f2 := p.Osc2.F0()
	if math.Abs(f2/f1-1.01) > 1e-12 {
		t.Fatalf("mismatch not applied: %g", f2/f1)
	}
}

func TestRelativeModelAddsCoefficients(t *testing.T) {
	p, _ := NewPair(paperModel(), 0, Options{Seed: 12})
	rel := p.RelativeModel()
	m := paperModel()
	if math.Abs(rel.Bth-2*m.Bth) > 1e-9*m.Bth || math.Abs(rel.Bfl-2*m.Bfl) > 1e-9*m.Bfl {
		t.Fatalf("relative model %+v", rel)
	}
}

func TestKasdinBackendVariance(t *testing.T) {
	// The Kasdin-backed oscillator must produce the same thermal
	// variance and a comparable flicker effect as the OU backend.
	m := paperModel()
	o, err := New(m, Options{Seed: 13, FlickerGenerator: "kasdin"})
	if err != nil {
		t.Fatal(err)
	}
	j := o.Jitter(200000)
	v := stats.Variance(j)
	want := m.SigmaN2(1) / 2 // per-period variance ≈ σ²_th (flicker tiny at N=1)
	if v < want/2 || v > want*2 {
		t.Fatalf("kasdin-backed variance %g, want ~%g", v, want)
	}
}

func TestNextPeriodsMatchesNextPeriod(t *testing.T) {
	// The chunked generator must be bit-identical to the one-at-a-time
	// path: same model, same seed, same stream.
	m := paperModel()
	ref, err := New(m, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	chk, err := New(m, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	want := make([]float64, total)
	for i := range want {
		want[i] = ref.NextPeriod()
	}
	got := make([]float64, 0, total)
	// Uneven chunk sizes exercise the state write-back between calls.
	for _, n := range []int{1, 7, 256, 1000, total} {
		if len(got)+n > total {
			n = total - len(got)
		}
		buf := make([]float64, n)
		got = append(got, chk.NextPeriods(buf)...)
	}
	for len(got) < total {
		buf := make([]float64, min(513, total-len(got)))
		got = append(got, chk.NextPeriods(buf)...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("period %d: chunked %v != sequential %v", i, got[i], want[i])
		}
	}
	if ref.Now() != chk.Now() || ref.Index() != chk.Index() {
		t.Fatalf("state diverged: t %v vs %v, index %d vs %d", ref.Now(), chk.Now(), ref.Index(), chk.Index())
	}
}

func TestNextEdgesMatchesNextEdge(t *testing.T) {
	m := paperModel()
	ref, err := New(m, Options{Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	chk, err := New(m, Options{Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	const total = 4096
	want := make([]float64, total)
	for i := range want {
		want[i] = ref.NextEdge()
	}
	got := make([]float64, 0, total)
	for len(got) < total {
		buf := make([]float64, min(300, total-len(got)))
		got = append(got, chk.NextEdges(buf)...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: chunked %v != sequential %v", i, got[i], want[i])
		}
	}
}

func TestNextPeriodsWithModulatorScaleMutation(t *testing.T) {
	// A time-gated modulator that flips the thermal scale mid-chunk
	// (the internal/attack pattern) must behave identically on the
	// chunked and sequential paths.
	m := paperModel()
	onset := 2000 / m.F0 // ~2000 periods in
	arm := func(o *Oscillator) {
		armed := false
		o.SetModulator(func(tm float64, _ uint64) float64 {
			if !armed && tm >= onset {
				o.SetThermalScale(0.05)
				armed = true
			}
			return 0
		})
	}
	ref, err := New(m, Options{Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	arm(ref)
	chk, err := New(m, Options{Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	arm(chk)
	const total = 5000
	want := make([]float64, total)
	for i := range want {
		want[i] = ref.NextPeriod()
	}
	got := chk.NextPeriods(make([]float64, total))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("period %d: chunked %v != sequential %v (scale mutation lost?)", i, got[i], want[i])
		}
	}
}

func TestNextPeriodsWithSelfUninstallingModulator(t *testing.T) {
	// A modulator that removes itself mid-chunk (SetModulator(nil))
	// must take effect on the very next period, exactly as on the
	// scalar path.
	m := paperModel()
	arm := func(o *Oscillator) {
		count := 0
		o.SetModulator(func(_ float64, _ uint64) float64 {
			count++
			if count == 1500 {
				o.SetModulator(nil)
			}
			return 0.1 / m.F0
		})
	}
	ref, err := New(m, Options{Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	arm(ref)
	chk, err := New(m, Options{Seed: 80})
	if err != nil {
		t.Fatal(err)
	}
	arm(chk)
	const total = 4000
	want := make([]float64, total)
	for i := range want {
		want[i] = ref.NextPeriod()
	}
	got := chk.NextPeriods(make([]float64, total))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("period %d: chunked %v != sequential %v (modulator swap lost?)", i, got[i], want[i])
		}
	}
}
