package osc

import (
	"fmt"
	"math"

	"repro/internal/phys"
	"repro/internal/rng"
)

// StageLevel simulates a ring oscillator one INVERTER TRANSITION at a
// time — the bottom rung of the multilevel ladder (paper Fig. 3). Each
// of the 2n transitions per period takes the nominal stage delay plus a
// Gaussian perturbation derived from the stage's thermal noise charge:
//
//	σ_d² = S_th·t_d / (2·I_D²)
//
// (integrated white current noise over the switching window, converted
// through the slew rate I_D/C_L). Summing 2n independent stage delays
// yields white-FM period jitter; the simulator exists to demonstrate —
// and let tests verify — that the stage-level picture aggregates to the
// same σ²_N = 2Nσ² law the phase-level model postulates for thermal
// noise.
//
// Flicker is deliberately absent here: per-stage flicker is correlated
// across transitions of the same device, which is exactly what the
// phase-level flicker-FM model (and not an i.i.d. per-stage term)
// represents. Use the phase-level Oscillator for the full model.
type StageLevel struct {
	ring    phys.Ring
	sigmaD  float64 // per-transition delay jitter
	tStage  float64 // nominal stage delay
	src     *rng.Source
	t       float64
	stage   int
	periods uint64
	excess  float64 // optional excess-noise factor applied to σ_d
}

// StageLevelOptions configures the simulator.
type StageLevelOptions struct {
	// Seed seeds the noise stream.
	Seed uint64
	// ThermalExcess scales the per-stage noise CHARGE variance, the
	// same role as device.Options.ThermalExcess (default 1: intrinsic
	// channel noise only).
	ThermalExcess float64
}

// NewStageLevel builds the simulator from ring device parameters.
func NewStageLevel(ring phys.Ring, opt StageLevelOptions) (*StageLevel, error) {
	if err := ring.Validate(); err != nil {
		return nil, err
	}
	excess := opt.ThermalExcess
	if excess == 0 {
		excess = 1
	}
	inv := ring.Stage
	td := inv.SwitchingDelay()
	// Charge noise over the switching window: q_n² = S_th·t_d/2
	// (one-sided PSD integrated over the effective bandwidth 1/(2t_d)
	// ... folded as charge variance); delay jitter = q_n/I_D.
	sTh := excess * inv.ThermalCurrentPSD()
	qn2 := sTh * td / 2
	sigmaD := math.Sqrt(qn2) / inv.NMOS.ID
	return &StageLevel{
		ring:   ring,
		sigmaD: sigmaD,
		tStage: td,
		src:    rng.New(opt.Seed),
		excess: excess,
	}, nil
}

// SigmaStage returns the per-transition delay jitter in seconds.
func (s *StageLevel) SigmaStage() float64 { return s.sigmaD }

// PredictedPeriodSigma returns the aggregate period jitter
// σ = σ_d·sqrt(2n): 2n independent transitions per period.
func (s *StageLevel) PredictedPeriodSigma() float64 {
	return s.sigmaD * math.Sqrt(2*float64(s.ring.Stages))
}

// NextTransition advances one inverter transition and returns its
// delay.
func (s *StageLevel) NextTransition() float64 {
	d := s.tStage + s.sigmaD*s.src.Norm()
	if d < s.tStage*1e-3 {
		d = s.tStage * 1e-3
	}
	s.t += d
	s.stage++
	if s.stage == 2*s.ring.Stages {
		s.stage = 0
		s.periods++
	}
	return d
}

// NextPeriod advances 2n transitions and returns the period duration.
func (s *StageLevel) NextPeriod() float64 {
	var sum float64
	for i := 0; i < 2*s.ring.Stages; i++ {
		sum += s.NextTransition()
	}
	return sum
}

// Periods generates n consecutive periods.
func (s *StageLevel) Periods(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.NextPeriod()
	}
	return out
}

// Now returns the current simulation time.
func (s *StageLevel) Now() float64 { return s.t }

// EquivalentPhaseModel returns the phase-level model this stage-level
// configuration aggregates to: white FM with σ² = 2n·σ_d², i.e.
// b_th = σ²·f0³, no flicker.
func (s *StageLevel) EquivalentPhaseModel() (bth, f0 float64, err error) {
	f0 = s.ring.Frequency()
	sigma := s.PredictedPeriodSigma()
	if sigma == 0 {
		return 0, f0, fmt.Errorf("osc: stage-level model has zero noise")
	}
	return sigma * sigma * f0 * f0 * f0, f0, nil
}
