// Leapfrog fast-forward: O(1)-per-window oscillator advance.
//
// The edge-level simulator pays ~(poles + 1) Gaussian draws per period,
// so an output bit that accumulates K ≈ 10⁵ periods of jitter (the
// paper's honest operating point) costs millions of draws. The leapfrog
// path advances a window of n periods at O(poles) cost: the thermal
// contribution of the window is a single N(0, n·σ²) draw, and the
// flicker contribution comes from flicker.Summer.AdvanceSum, which
// draws each AR(1) pole's (end state, window sum) pair from its exact
// joint Gaussian law. The jump is therefore exact in distribution —
// including the cross-window autocorrelation the paper's analysis is
// about, carried through the pole end states — and deterministic in the
// seed, but it is a DIFFERENT realization from stepping the same window
// edge by edge: the edge-level path remains the golden reference, and
// equivalence is distributional (see the σ²_N sweep tests in
// internal/measure).
//
// # Guard band
//
// Consumers that sample waveforms (measure.Counter's TDC interpolation,
// the trng DFF, multiring) need the exact edge times AROUND a window
// boundary, not just the accumulated jump. Leapfrog therefore uses a
// CANONICAL decomposition: every window jumps n − g periods in closed
// form and walks the last g = min(n, LeapfrogGuard) edges exactly,
// whether or not the caller reads them. The guard band is a view onto
// generation, not a generation parameter — that is what makes a seeded
// leapfrog stream invariant to how many guard edges each consumer
// chooses to use (a per-window guard knob would change the draw layout
// and with it the whole downstream bit stream).
//
// # Fallback
//
// A Modulator models a deterministic per-period disturbance (injection
// attack, drift); skipping periods would skip its samples, so any
// installed Modulator forces the edge-level path. Likewise a flicker
// backend without closed-form skip (Kasdin) falls back. The fallback is
// internal: Leapfrog and LeapfrogToBefore stay correct, only slower,
// so consumers need no mode branches.

package osc

import (
	"math"

	"repro/internal/flicker"
)

// LeapfrogGuard is the canonical guard band: the number of trailing
// edges of every leapfrog window that are walked exactly (and exposed
// to the caller) rather than jumped in closed form. It comfortably
// covers every consumer in the repository — all of them interpolate
// within the one or two periods straddling a sampling instant.
const LeapfrogGuard = 16

// leapfrogMinJump is the smallest closed-form jump worth taking; below
// it the fixed O(poles) jump cost exceeds plain stepping.
const leapfrogMinJump = 4

// leapfrogSlackSigma sizes the landing margin of LeapfrogToBefore in
// units of the jump's time-jitter standard deviation. The flicker term
// of the margin estimate is additionally doubled (the sum-of-OU
// spectrum can exceed the asymptotic 1/f law near the band edges), so
// the effective margin stays ≥ leapfrogSlackSigma σ; overshoot
// probability is below ~1e-50 per jump for any physical model.
const leapfrogSlackSigma = 16

// CanLeapfrog reports whether the closed-form fast path is available:
// no Modulator installed and the flicker backend (if any) supports
// AdvanceSum. When false, Leapfrog and LeapfrogToBefore silently use
// the edge-level path.
func (o *Oscillator) CanLeapfrog() bool {
	if o.mod != nil {
		return false
	}
	if o.fm == nil {
		return true
	}
	_, ok := o.fm.(flicker.Summer)
	return ok
}

// Leapfrog advances the oscillator by n periods and returns the times
// of the last min(n, LeapfrogGuard) edges, in order (the returned slice
// aliases an internal buffer, valid until the next oscillator call; its
// last element equals Now()). Cost is O(poles + LeapfrogGuard)
// regardless of n on the fast path; when CanLeapfrog is false, or n is
// too small for a jump to pay off, the same edges are produced by
// exact stepping instead.
//
// Same seed + same call sequence ⇒ same stream; the realization is
// independent of whether or how many guard edges callers read.
func (o *Oscillator) Leapfrog(n int) []float64 {
	if n <= 0 {
		return o.guardFor(0)
	}
	g := LeapfrogGuard
	if g > n {
		g = n
	}
	m := n - g
	if m < leapfrogMinJump || !o.CanLeapfrog() {
		return o.walkEdges(n, g)
	}
	o.jump(m)
	return o.walkEdges(g, g)
}

// jump advances m periods in closed form: Δt is the nominal span plus
// one thermal draw for the window sum plus the flicker window sum from
// AdvanceSum. Draw order matches NextPeriod (thermal from the
// oscillator's source first, then flicker from the generator's own
// source), so the fast path is seed-deterministic. The per-period
// clamp of NextPeriod is not applied inside the jump (its trigger
// probability is astronomically small for any physical noise scale);
// only the whole-window total is floored to keep time monotone.
func (o *Oscillator) jump(m int) {
	dt := float64(m) * o.period0
	if o.sigmaTh > 0 {
		dt += o.thScale * o.sigmaTh * math.Sqrt(float64(m)) * o.src.Norm()
	}
	if o.fm != nil {
		dt += o.flScale * o.period0 * o.fm.(flicker.Summer).AdvanceSum(m)
	}
	if floor := float64(m) * o.period0 * 1e-3; dt < floor {
		dt = floor
	}
	o.t += dt
	o.index += uint64(m)
}

// walkEdges steps n periods exactly and returns the times of the last
// g ≤ n edges.
func (o *Oscillator) walkEdges(n, g int) []float64 {
	if rem := n - g; rem > 0 {
		scratch := o.guardScratchFor(LeapfrogGuard * 8)
		for rem > 0 {
			k := rem
			if k > len(scratch) {
				k = len(scratch)
			}
			o.NextEdges(scratch[:k])
			rem -= k
		}
	}
	return o.NextEdges(o.guardFor(g))
}

// guardFor returns the reusable guard-edge buffer resized to g.
func (o *Oscillator) guardFor(g int) []float64 {
	if cap(o.guard) < g {
		o.guard = make([]float64, g)
	}
	return o.guard[:g]
}

// guardScratchFor returns the reusable fallback stepping buffer.
func (o *Oscillator) guardScratchFor(n int) []float64 {
	if cap(o.guardScratch) < n {
		o.guardScratch = make([]float64, n)
	}
	return o.guardScratch[:n]
}

// LeapfrogToBefore fast-forwards the oscillator toward the absolute
// time t and returns the number of periods advanced. The jump length is
// chosen so that the landing stays strictly before t with overwhelming
// probability (see leapfrogSlackSigma): the expected remaining gap
// after the jump is the slack margin, which the caller closes by
// walking edges exactly (NextEdge) until it straddles t — the pattern
// every waveform-sampling consumer uses. Returns 0 when t is too close
// for a jump to pay off (or already past); the caller's exact walk
// then simply does all the work.
//
// The caller must have consumed the oscillator's edges up to Now() —
// i.e. no unconsumed read-ahead — since the jump advances from the
// oscillator's own cursor.
func (o *Oscillator) LeapfrogToBefore(t float64) uint64 {
	gap := t - o.t
	if gap <= 0 || !o.CanLeapfrog() {
		return 0
	}
	est := gap / o.period0
	if est >= 1<<53 {
		// Nonsensical horizon (would overflow exact float integers);
		// let the caller's edge walk fail naturally.
		return 0
	}
	m := int(est) - o.slackPeriods(est)
	if m < leapfrogMinJump+LeapfrogGuard {
		return 0
	}
	o.Leapfrog(m)
	return uint64(m)
}

// slackPeriods returns the landing margin for a jump of ~m periods: the
// accumulated time jitter of the span (thermal m·σ², flicker
// 8·ln2·b_fl·m²/f0⁴ doubled for band-edge headroom, both under the
// current attack scales) times leapfrogSlackSigma, expressed in
// periods, plus a small constant for the interpolation straddle.
func (o *Oscillator) slackPeriods(m float64) int {
	f0 := o.model.F0
	v := m * o.sigmaTh * o.sigmaTh * o.thScale * o.thScale
	if o.model.Bfl > 0 {
		v += 2 * 8 * math.Ln2 * o.model.Bfl * m * m / (f0 * f0 * f0 * f0) * o.flScale * o.flScale
	}
	return int(math.Ceil(leapfrogSlackSigma*math.Sqrt(v)*f0)) + 2
}
