// Package stats provides the statistical machinery shared by the jitter
// analysis pipeline: descriptive statistics, autocovariance, special
// functions (regularized incomplete gamma, chi-square and normal tails),
// ordinary and weighted least squares, and the hypothesis tests used to
// probe independence of jitter realizations (Ljung–Box, runs test).
//
// Everything is implemented from scratch on the standard library so the
// module works offline.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by estimators that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It panics on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	// Kahan summation keeps the estimate stable for the long jitter
	// traces (1e7+ samples) used by the experiment harness.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (denominator n-1).
// It panics if len(xs) < 2.
func Variance(xs []float64) float64 {
	m, v := MeanVariance(xs)
	_ = m
	return v
}

// MeanVariance returns the sample mean and unbiased variance in one pass
// using Welford's algorithm. It panics if len(xs) < 2.
func MeanVariance(xs []float64) (mean, variance float64) {
	if len(xs) < 2 {
		panic(fmt.Sprintf("stats: variance needs >= 2 samples, got %d", len(xs)))
	}
	var m, m2 float64
	for i, x := range xs {
		delta := x - m
		m += delta / float64(i+1)
		m2 += delta * (x - m)
	}
	return m, m2 / float64(len(xs)-1)
}

// PopVariance returns the population variance (denominator n).
func PopVariance(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: PopVariance of empty slice")
	}
	if len(xs) == 1 {
		return 0
	}
	m, v := MeanVariance(xs)
	_ = m
	return v * float64(len(xs)-1) / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// StdErrOfVariance returns the approximate standard error of the sample
// variance of a Gaussian sample: Var(s²) ≈ 2σ⁴/(n−1).
func StdErrOfVariance(sampleVar float64, n int) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	return sampleVar * math.Sqrt(2.0/float64(n-1))
}

// Covariance returns the unbiased sample covariance of paired samples.
// It panics if the lengths differ or are < 2.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: Covariance needs >= 2 samples")
	}
	mx := Mean(xs)
	my := Mean(ys)
	var sum float64
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation coefficient of paired
// samples. Returns 0 when either sample has zero variance.
func Correlation(xs, ys []float64) float64 {
	sx := StdDev(xs)
	sy := StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Autocovariance returns the biased autocovariance estimate at the given
// lag (divides by n, the convention that keeps the estimated sequence
// positive semi-definite). It panics if lag is out of [0, n).
func Autocovariance(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		panic(fmt.Sprintf("stats: lag %d out of range for n=%d", lag, n))
	}
	m := Mean(xs)
	var sum float64
	for i := 0; i+lag < n; i++ {
		sum += (xs[i] - m) * (xs[i+lag] - m)
	}
	return sum / float64(n)
}

// Autocorrelation returns the autocorrelation coefficients for lags
// 0..maxLag inclusive (so the result has maxLag+1 entries and entry 0 is
// always 1 for a non-constant series).
func Autocorrelation(xs []float64, maxLag int) []float64 {
	if maxLag >= len(xs) {
		panic(fmt.Sprintf("stats: maxLag %d >= n %d", maxLag, len(xs)))
	}
	c0 := Autocovariance(xs, 0)
	out := make([]float64, maxLag+1)
	if c0 == 0 {
		out[0] = 1
		return out
	}
	for k := 0; k <= maxLag; k++ {
		out[k] = Autocovariance(xs, k) / c0
	}
	return out
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MinMax returns the minimum and maximum of xs. It panics on empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the edge bins. Returns the counts
// and the bin edges (nbins+1 entries).
func Histogram(xs []float64, lo, hi float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("stats: Histogram needs nbins > 0")
	}
	if hi <= lo {
		panic("stats: Histogram needs hi > lo")
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, edges
}
