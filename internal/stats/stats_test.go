package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMeanKnown(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMeanPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Mean(nil)
}

func TestVarianceKnown(t *testing.T) {
	// Var of {2,4,4,4,5,5,7,9} (population 4, sample 32/7)
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7.0)
	}
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("PopVariance = %g, want 4", got)
	}
}

func TestMeanVarianceAgainstNaive(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormScaled(5, 3)
	}
	m, v := MeanVariance(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	nm := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - nm) * (x - nm)
	}
	nv := ss / float64(len(xs)-1)
	if !almostEqual(m, nm, 1e-12) || !almostEqual(v, nv, 1e-10) {
		t.Fatalf("Welford (%g, %g) vs naive (%g, %g)", m, v, nm, nv)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStdErrOfVariance(t *testing.T) {
	if se := StdErrOfVariance(2.0, 101); !almostEqual(se, 2*math.Sqrt(2.0/100), 1e-12) {
		t.Fatalf("StdErrOfVariance = %g", se)
	}
	if !math.IsInf(StdErrOfVariance(1, 1), 1) {
		t.Fatal("StdErrOfVariance with n=1 should be +Inf")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); !almostEqual(c, 1, 1e-12) {
		t.Fatalf("perfect correlation = %g", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); !almostEqual(c, -1, 1e-12) {
		t.Fatalf("perfect anticorrelation = %g", c)
	}
	if c := Correlation(xs, []float64{3, 3, 3, 3, 3}); c != 0 {
		t.Fatalf("zero-variance correlation = %g, want 0", c)
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(100)
		xs := make([]float64, n)
		ys := make([]float64, n)
		r.FillNorm(xs)
		r.FillNorm(ys)
		c := Correlation(xs, ys)
		if c < -1-1e-12 || c > 1+1e-12 {
			t.Fatalf("correlation %g out of [-1,1]", c)
		}
	}
}

func TestAutocovarianceLagZeroIsPopVariance(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 5000)
	r.FillNorm(xs)
	if !almostEqual(Autocovariance(xs, 0), PopVariance(xs), 1e-10) {
		t.Fatal("lag-0 autocovariance != population variance")
	}
}

func TestAutocorrelationWhite(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 200000)
	r.FillNorm(xs)
	rho := Autocorrelation(xs, 5)
	if rho[0] != 1 {
		t.Fatalf("rho[0] = %g, want 1", rho[0])
	}
	for k := 1; k <= 5; k++ {
		if math.Abs(rho[k]) > 0.01 {
			t.Errorf("white noise rho[%d] = %g, want ~0", k, rho[k])
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	r := rng.New(5)
	const phi = 0.8
	xs := make([]float64, 300000)
	x := 0.0
	for i := range xs {
		x = phi*x + r.Norm()
		xs[i] = x
	}
	rho := Autocorrelation(xs, 3)
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(rho[k]-want) > 0.02 {
			t.Errorf("AR(1) rho[%d] = %g, want ~%g", k, rho[k], want)
		}
	}
}

func TestQuantileMedian(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if m := Median(xs); m != 3 {
		t.Fatalf("Median = %g, want 3", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Quantile(0) = %g, want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("Quantile(1) = %g, want 5", q)
	}
	// interpolation: 0.25 quantile of 1..5 is 2
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("Quantile(0.25) = %g, want 2", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g)", lo, hi)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 5}
	counts, edges := Histogram(xs, 0, 1, 2)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("unexpected shapes %d %d", len(counts), len(edges))
	}
	// -5 clamps into bin 0, 5 into bin 1.
	if counts[0] != 3 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if edges[0] != 0 || edges[2] != 1 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(500)
		xs := make([]float64, n)
		r.FillNorm(xs)
		counts, _ := Histogram(xs, -1, 1, 7)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != n {
			t.Fatalf("histogram lost samples: %d != %d", total, n)
		}
	}
}
