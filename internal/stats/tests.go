package stats

import (
	"fmt"
	"math"
)

// TestResult is the outcome of a hypothesis test.
type TestResult struct {
	// Statistic is the value of the test statistic.
	Statistic float64
	// PValue is the probability, under the null hypothesis, of a
	// statistic at least as extreme as observed.
	PValue float64
	// DoF is the degrees of freedom of the reference distribution,
	// when applicable.
	DoF int
}

// Reject reports whether the null hypothesis is rejected at significance
// level alpha.
func (t TestResult) Reject(alpha float64) bool { return t.PValue < alpha }

// String renders the result for experiment logs.
func (t TestResult) String() string {
	return fmt.Sprintf("stat=%.4g p=%.4g dof=%d", t.Statistic, t.PValue, t.DoF)
}

// LjungBox performs the Ljung–Box portmanteau test for absence of
// autocorrelation up to maxLag. Under the null of independent
// identically distributed data the statistic is chi-square with maxLag
// degrees of freedom. It panics if maxLag <= 0 or maxLag >= len(xs).
func LjungBox(xs []float64, maxLag int) TestResult {
	n := len(xs)
	if maxLag <= 0 || maxLag >= n {
		panic(fmt.Sprintf("stats: LjungBox maxLag %d invalid for n=%d", maxLag, n))
	}
	rho := Autocorrelation(xs, maxLag)
	q := 0.0
	for k := 1; k <= maxLag; k++ {
		q += rho[k] * rho[k] / float64(n-k)
	}
	q *= float64(n) * (float64(n) + 2)
	return TestResult{
		Statistic: q,
		PValue:    ChiSquareSF(q, float64(maxLag)),
		DoF:       maxLag,
	}
}

// BoxPierce performs the simpler Box–Pierce portmanteau test; kept as a
// cross-check against Ljung–Box for large samples.
func BoxPierce(xs []float64, maxLag int) TestResult {
	n := len(xs)
	if maxLag <= 0 || maxLag >= n {
		panic(fmt.Sprintf("stats: BoxPierce maxLag %d invalid for n=%d", maxLag, n))
	}
	rho := Autocorrelation(xs, maxLag)
	q := 0.0
	for k := 1; k <= maxLag; k++ {
		q += rho[k] * rho[k]
	}
	q *= float64(n)
	return TestResult{
		Statistic: q,
		PValue:    ChiSquareSF(q, float64(maxLag)),
		DoF:       maxLag,
	}
}

// WaldWolfowitzRuns performs the runs test for randomness on the signs
// of xs relative to its median. Under the null (exchangeable sequence),
// the number of runs is asymptotically normal.
func WaldWolfowitzRuns(xs []float64) TestResult {
	med := Median(xs)
	var nPlus, nMinus, runs int
	prev := 0 // 0 = unset, +1, -1
	for _, x := range xs {
		var s int
		if x > med {
			s = 1
		} else if x < med {
			s = -1
		} else {
			continue // drop ties with the median
		}
		if s > 0 {
			nPlus++
		} else {
			nMinus++
		}
		if s != prev {
			runs++
			prev = s
		}
	}
	n1 := float64(nPlus)
	n2 := float64(nMinus)
	if n1 == 0 || n2 == 0 {
		return TestResult{Statistic: 0, PValue: 0}
	}
	mean := 2*n1*n2/(n1+n2) + 1
	vr := 2 * n1 * n2 * (2*n1*n2 - n1 - n2) / ((n1 + n2) * (n1 + n2) * (n1 + n2 - 1))
	if vr <= 0 {
		return TestResult{Statistic: 0, PValue: 1}
	}
	z := (float64(runs) - mean) / math.Sqrt(vr)
	return TestResult{Statistic: z, PValue: 2 * NormalSF(math.Abs(z))}
}

// TurningPoints performs the turning-point test for serial independence:
// counts local extrema; under i.i.d. the count is asymptotically normal
// with mean 2(n−2)/3 and variance (16n−29)/90.
func TurningPoints(xs []float64) TestResult {
	n := len(xs)
	if n < 3 {
		return TestResult{PValue: 1}
	}
	var tp int
	for i := 1; i < n-1; i++ {
		if (xs[i] > xs[i-1] && xs[i] > xs[i+1]) || (xs[i] < xs[i-1] && xs[i] < xs[i+1]) {
			tp++
		}
	}
	mean := 2 * float64(n-2) / 3
	vr := (16*float64(n) - 29) / 90
	z := (float64(tp) - mean) / math.Sqrt(vr)
	return TestResult{Statistic: z, PValue: 2 * NormalSF(math.Abs(z))}
}

// ChiSquareGoodness performs Pearson's chi-square goodness-of-fit test
// for observed counts against expected counts. Bins with expected count
// below minExpected are pooled into their neighbor. The degrees of
// freedom are bins−1−extraConstraints.
func ChiSquareGoodness(observed []int, expected []float64, extraConstraints int) TestResult {
	if len(observed) != len(expected) {
		panic("stats: ChiSquareGoodness length mismatch")
	}
	var stat float64
	bins := 0
	for i := range observed {
		if expected[i] <= 0 {
			continue
		}
		d := float64(observed[i]) - expected[i]
		stat += d * d / expected[i]
		bins++
	}
	dof := bins - 1 - extraConstraints
	if dof < 1 {
		dof = 1
	}
	return TestResult{Statistic: stat, PValue: ChiSquareSF(stat, float64(dof)), DoF: dof}
}

// KolmogorovSmirnovUniform tests xs (values in [0,1]) against the
// uniform distribution, returning the asymptotic p-value via the
// Kolmogorov distribution series.
func KolmogorovSmirnovUniform(xs []float64) TestResult {
	n := len(xs)
	if n == 0 {
		return TestResult{PValue: 1}
	}
	s := append([]float64(nil), xs...)
	sortFloats(s)
	var d float64
	for i, x := range s {
		lo := float64(i)/float64(n) - x
		hi := x - float64(i+1)/float64(n)
		if lo < 0 {
			lo = -lo
		}
		_ = hi
		d1 := math.Abs(float64(i+1)/float64(n) - x)
		d2 := math.Abs(x - float64(i)/float64(n))
		if d1 > d {
			d = d1
		}
		if d2 > d {
			d = d2
		}
	}
	lambda := (math.Sqrt(float64(n)) + 0.12 + 0.11/math.Sqrt(float64(n))) * d
	p := kolmogorovQ(lambda)
	return TestResult{Statistic: d, PValue: p}
}

func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-16 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

func sortFloats(s []float64) {
	// insertion-free: use sort from stdlib via interface-free helper
	// (kept separate so tests.go has no sort import clutter).
	quickSort(s, 0, len(s)-1)
}

func quickSort(s []float64, lo, hi int) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && s[j] < s[j-1]; j-- {
					s[j], s[j-1] = s[j-1], s[j]
				}
			}
			return
		}
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		i, j := lo, hi
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(s, lo, j)
			lo = i
		} else {
			quickSort(s, i, hi)
			hi = j
		}
	}
}
