package stats

import "math"

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the standard normal survival function 1−Φ(x),
// computed directly from erfc for accuracy in the far tail.
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0,1) using the
// Beasley–Springer–Moro rational approximation refined by one Newton
// step, accurate to ~1e-12 over the full open interval.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's algorithm.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((-3.969683028665376e+01*r+2.209460984245205e+02)*r-2.759285104469687e+02)*r+1.383577518672690e+02)*r-3.066479806614716e+01)*r + 2.506628277459239e+00) * q /
			(((((-5.447609879822406e+01*r+1.615858368580409e+02)*r-1.556989798598866e+02)*r+6.680131188771972e+01)*r-1.328068155288572e+01)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((-7.784894002430293e-03*q-3.223964580411365e-01)*q-2.400758277161838e+00)*q-2.549732539343734e+00)*q+4.374664141464968e+00)*q + 2.938163982698783e+00) /
			((((7.784695709041462e-03*q+3.224671290700398e-01)*q+2.445134137142996e+00)*q+3.754408661907416e+00)*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// lnGamma returns the natural log of the Gamma function via the standard
// library.
func lnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedGammaP returns the regularized lower incomplete gamma
// function P(a, x) = γ(a,x)/Γ(a) for a > 0, x >= 0. It chooses between
// the series expansion (x < a+1) and the continued fraction (otherwise),
// following Numerical Recipes.
func RegularizedGammaP(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegularizedGammaQ returns Q(a, x) = 1 − P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
	)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lnGamma(a))
}

func gammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 1000
		eps     = 1e-15
		fpmin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lnGamma(a)) * h
}

// ChiSquareCDF returns the CDF of the chi-square distribution with k
// degrees of freedom at x.
func ChiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(k/2, x/2)
}

// ChiSquareSF returns the survival function (upper tail probability) of
// the chi-square distribution with k degrees of freedom at x.
func ChiSquareSF(x float64, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return RegularizedGammaQ(k/2, x/2)
}

// ChiSquareQuantile returns the x such that ChiSquareCDF(x, k) = p,
// found by bisection on the monotone CDF. p must be in (0, 1).
func ChiSquareQuantile(p, k float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, k+10
	for ChiSquareCDF(hi, k) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if ChiSquareCDF(mid, k) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// ErfInv returns the inverse error function for |x| < 1.
func ErfInv(x float64) float64 {
	if x <= -1 {
		return math.Inf(-1)
	}
	if x >= 1 {
		return math.Inf(1)
	}
	// erf(z) = 2Φ(z√2) − 1  =>  erf⁻¹(x) = Φ⁻¹((x+1)/2)/√2
	return NormalQuantile((x+1)/2) / math.Sqrt2
}

// BinomialTailNormal returns the two-sided normal-approximation p-value
// for observing k successes in n Bernoulli(p0) trials (with continuity
// correction). Used by monobit-style tests.
func BinomialTailNormal(k, n int, p0 float64) float64 {
	if n <= 0 {
		return 1
	}
	mean := float64(n) * p0
	sd := math.Sqrt(float64(n) * p0 * (1 - p0))
	if sd == 0 {
		if float64(k) == mean {
			return 1
		}
		return 0
	}
	z := (math.Abs(float64(k)-mean) - 0.5) / sd
	if z < 0 {
		z = 0
	}
	return 2 * NormalSF(z)
}
