package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestLjungBoxWhiteNoise(t *testing.T) {
	r := rng.New(1)
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 4000)
		r.FillNorm(xs)
		res := LjungBox(xs, 10)
		if res.Reject(0.01) {
			rejections++
		}
	}
	// Expect ~1% rejections; more than 5/40 means the test is broken.
	if rejections > 5 {
		t.Fatalf("Ljung–Box rejected white noise %d/%d times at α=0.01", rejections, trials)
	}
}

func TestLjungBoxAR1Rejects(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 4000)
	x := 0.0
	for i := range xs {
		x = 0.5*x + r.Norm()
		xs[i] = x
	}
	res := LjungBox(xs, 10)
	if !res.Reject(1e-6) {
		t.Fatalf("Ljung–Box failed to reject AR(1): %v", res)
	}
}

func TestBoxPierceMatchesLjungBoxAsymptotically(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 50000)
	r.FillNorm(xs)
	lb := LjungBox(xs, 5)
	bp := BoxPierce(xs, 5)
	if math.Abs(lb.Statistic-bp.Statistic) > 0.05*math.Max(lb.Statistic, 1) {
		t.Fatalf("LB %g vs BP %g diverge on large sample", lb.Statistic, bp.Statistic)
	}
}

func TestLjungBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad maxLag")
		}
	}()
	LjungBox([]float64{1, 2, 3}, 5)
}

func TestRunsTestIID(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 10000)
	r.FillNorm(xs)
	res := WaldWolfowitzRuns(xs)
	if res.Reject(0.001) {
		t.Fatalf("runs test rejected iid data: %v", res)
	}
}

func TestRunsTestAlternatingRejects(t *testing.T) {
	xs := make([]float64, 2000)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	res := WaldWolfowitzRuns(xs)
	if !res.Reject(1e-10) {
		t.Fatalf("runs test failed on alternating series: %v", res)
	}
}

func TestRunsTestClustered(t *testing.T) {
	// Long blocks of same sign: too few runs.
	xs := make([]float64, 2000)
	for i := range xs {
		if (i/200)%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	res := WaldWolfowitzRuns(xs)
	if !res.Reject(1e-6) {
		t.Fatalf("runs test failed on clustered series: %v", res)
	}
}

func TestTurningPointsIID(t *testing.T) {
	r := rng.New(5)
	xs := make([]float64, 20000)
	r.FillNorm(xs)
	res := TurningPoints(xs)
	if res.Reject(0.001) {
		t.Fatalf("turning points rejected iid: %v", res)
	}
}

func TestTurningPointsMonotoneRejects(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	res := TurningPoints(xs)
	if !res.Reject(1e-10) {
		t.Fatalf("turning points failed on monotone series: %v", res)
	}
}

func TestChiSquareGoodnessUniform(t *testing.T) {
	r := rng.New(6)
	const bins, n = 10, 100000
	obs := make([]int, bins)
	for i := 0; i < n; i++ {
		obs[r.Intn(bins)]++
	}
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	res := ChiSquareGoodness(obs, exp, 0)
	if res.Reject(0.001) {
		t.Fatalf("chi2 goodness rejected uniform counts: %v", res)
	}
	// Heavily skewed observed counts must reject.
	obs[0] += 5000
	obs[1] -= 5000
	res = ChiSquareGoodness(obs, exp, 0)
	if !res.Reject(1e-10) {
		t.Fatalf("chi2 goodness failed on skew: %v", res)
	}
}

func TestKSUniform(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 5000)
	r.FillUniform(xs)
	res := KolmogorovSmirnovUniform(xs)
	if res.Reject(0.001) {
		t.Fatalf("KS rejected uniform sample: %v", res)
	}
	// Squashed sample (all values < 0.5) must reject hard.
	for i := range xs {
		xs[i] /= 2
	}
	res = KolmogorovSmirnovUniform(xs)
	if !res.Reject(1e-10) {
		t.Fatalf("KS failed on squashed sample: %v", res)
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	r := rng.New(8)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		a := make([]float64, n)
		r.FillNorm(a)
		b := append([]float64(nil), a...)
		sortFloats(a)
		sort.Float64s(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sort mismatch at %d", i)
			}
		}
	}
}

func TestTestResultString(t *testing.T) {
	s := TestResult{Statistic: 1.5, PValue: 0.25, DoF: 3}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
