package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-12) || !almostEqual(fit.Intercept, -7, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %g, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(1)
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 2.5*xs[i] + 10 + r.NormScaled(0, 5)
	}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 4*fit.SlopeErr {
		t.Fatalf("slope %g ± %g far from 2.5", fit.Slope, fit.SlopeErr)
	}
	if math.Abs(fit.Intercept-10) > 4*fit.InterceptErr {
		t.Fatalf("intercept %g ± %g far from 10", fit.Intercept, fit.InterceptErr)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %g too low", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1, 1, 1}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestFitPolyWeightedExactQuadratic(t *testing.T) {
	// y = 5.36e-6·x + 1.0e-9·x² through origin — the paper's law.
	xs := []float64{8, 16, 64, 256, 1024, 4096, 16384}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5.36e-6*x + 1.0e-9*x*x
	}
	fit, err := FitPolyWeighted(xs, ys, nil, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Coeff[0], 5.36e-6, 1e-9) {
		t.Fatalf("a = %g, want 5.36e-6", fit.Coeff[0])
	}
	if !almostEqual(fit.Coeff[1], 1.0e-9, 1e-9) {
		t.Fatalf("b = %g, want 1e-9", fit.Coeff[1])
	}
	if fit.ChiSq > 1e-20 {
		t.Fatalf("exact fit chi2 = %g", fit.ChiSq)
	}
}

func TestFitPolyWeightedRecoversWithNoise(t *testing.T) {
	r := rng.New(2)
	const a, b = 2.0, 0.01
	var xs, ys, ws []float64
	for x := 1.0; x <= 3000; x *= 1.5 {
		y := a*x + b*x*x
		sigma := 0.01 * y
		xs = append(xs, x)
		ys = append(ys, y+r.NormScaled(0, sigma))
		ws = append(ws, 1/(sigma*sigma))
	}
	fit, err := FitPolyWeighted(xs, ys, ws, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coeff[0]-a) > 5*fit.CoeffErr[0] {
		t.Fatalf("a = %g ± %g, want %g", fit.Coeff[0], fit.CoeffErr[0], a)
	}
	if math.Abs(fit.Coeff[1]-b) > 5*fit.CoeffErr[1] {
		t.Fatalf("b = %g ± %g, want %g", fit.Coeff[1], fit.CoeffErr[1], b)
	}
	// χ²/dof should be near 1 with honest weights.
	red := fit.ChiSq / float64(fit.DoF)
	if red > 4 || red < 0.05 {
		t.Fatalf("reduced chi2 = %g implausible", red)
	}
}

func TestFitPolyWeightedValidation(t *testing.T) {
	if _, err := FitPolyWeighted([]float64{1}, []float64{1, 2}, nil, []int{1}); err == nil {
		t.Fatal("length mismatch not detected")
	}
	if _, err := FitPolyWeighted([]float64{1, 2}, []float64{1, 2}, []float64{1}, []int{1}); err == nil {
		t.Fatal("weights length mismatch not detected")
	}
	if _, err := FitPolyWeighted([]float64{1, 2}, []float64{1, 2}, nil, nil); err == nil {
		t.Fatal("empty powers not detected")
	}
	if _, err := FitPolyWeighted([]float64{1}, []float64{1}, nil, []int{1, 2}); err == nil {
		t.Fatal("underdetermined system not detected")
	}
	if _, err := FitPolyWeighted([]float64{1, 2}, []float64{1, 2}, []float64{-1, 1}, []int{1}); err == nil {
		t.Fatal("negative weight not detected")
	}
}

func TestFitPolySingular(t *testing.T) {
	// All x equal: powers 1 and 2 are collinear.
	xs := []float64{2, 2, 2}
	ys := []float64{1, 2, 3}
	if _, err := FitPolyWeighted(xs, ys, nil, []int{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestEvalPoly(t *testing.T) {
	got := EvalPoly([]float64{2, 3}, []int{1, 2}, 4)
	if got != 2*4+3*16 {
		t.Fatalf("EvalPoly = %g", got)
	}
}

func TestInvertSymmetricIdentity(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	inv, err := invertSymmetric(a)
	if err != nil {
		t.Fatal(err)
	}
	// a·inv = I
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			var s float64
			for k := 0; k < 2; k++ {
				s += a[i][k] * inv[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-12 {
				t.Fatalf("a·inv[%d][%d] = %g", i, j, s)
			}
		}
	}
}
