package stats

import (
	"math"
	"testing"
)

func TestNormalCDFKnown(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%g) = %.15g, want %.15g", c.x, got, c.want)
		}
	}
}

func TestNormalSFSymmetry(t *testing.T) {
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 5} {
		if s := NormalSF(x) + NormalCDF(x); math.Abs(s-1) > 1e-14 {
			t.Errorf("SF+CDF at %g = %g, want 1", x, s)
		}
	}
}

func TestNormalSFFarTail(t *testing.T) {
	// At x=10 the tail is ~7.6e-24; erfc-based SF must not underflow
	// to the 1−CDF cancellation error.
	got := NormalSF(10)
	want := 7.61985302416053e-24
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("NormalSF(10) = %g, want %g", got, want)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.01, 0.3, 0.5, 0.7, 0.975, 0.999999} {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-9*math.Max(p, 1-p) && math.Abs(back-p) > 1e-12 {
			t.Errorf("roundtrip p=%g -> x=%g -> %g", p, x, back)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile edges not infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) {
		t.Fatal("quantile of negative p not NaN")
	}
	if NormalQuantile(0.5) != 0 {
		// one Halley step from 0 stays 0
		if math.Abs(NormalQuantile(0.5)) > 1e-15 {
			t.Fatalf("quantile(0.5) = %g", NormalQuantile(0.5))
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.1, 1, 5, 50, 200} {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-10 {
				t.Errorf("P+Q(a=%g,x=%g) = %g, want 1", a, x, p+q)
			}
		}
	}
}

func TestGammaPKnown(t *testing.T) {
	// P(1, x) = 1 − e^−x
	for _, x := range []float64{0.5, 1, 2, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(a, 0) = 0, Q(a, 0) = 1
	if RegularizedGammaP(3, 0) != 0 || RegularizedGammaQ(3, 0) != 1 {
		t.Fatal("boundary values wrong")
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Fatal("negative a should give NaN")
	}
}

func TestChiSquareKnown(t *testing.T) {
	// χ²(k=2) CDF(x) = 1 − e^{−x/2}
	for _, x := range []float64{0.5, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("ChiSquareCDF(%g, 2) = %g, want %g", x, got, want)
		}
	}
	// 95th percentile of χ²(1) is 3.841458820694124
	if got := ChiSquareSF(3.841458820694124, 1); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("ChiSquareSF(3.84, 1) = %g, want 0.05", got)
	}
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, k := range []float64{1, 2, 5, 30, 200} {
		for _, p := range []float64{0.01, 0.5, 0.95, 0.999} {
			x := ChiSquareQuantile(p, k)
			back := ChiSquareCDF(x, k)
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("chi2 roundtrip k=%g p=%g -> x=%g -> %g", k, p, x, back)
			}
		}
	}
	if ChiSquareQuantile(0, 3) != 0 {
		t.Fatal("quantile(0) should be 0")
	}
	if !math.IsInf(ChiSquareQuantile(1, 3), 1) {
		t.Fatal("quantile(1) should be +Inf")
	}
}

func TestErfInvRoundTrip(t *testing.T) {
	for _, x := range []float64{-0.999, -0.5, 0, 0.3, 0.9, 0.99999} {
		y := ErfInv(x)
		if math.Abs(math.Erf(y)-x) > 1e-9 {
			t.Errorf("ErfInv roundtrip x=%g -> %g -> %g", x, y, math.Erf(y))
		}
	}
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Fatal("ErfInv edge values")
	}
}

func TestBinomialTailNormal(t *testing.T) {
	// Balanced outcome: p-value ~ 1.
	if p := BinomialTailNormal(5000, 10000, 0.5); p < 0.9 {
		t.Errorf("balanced p-value = %g, want ~1", p)
	}
	// Extreme outcome: tiny p-value.
	if p := BinomialTailNormal(6000, 10000, 0.5); p > 1e-20 {
		t.Errorf("extreme p-value = %g, want ~0", p)
	}
	if p := BinomialTailNormal(0, 0, 0.5); p != 1 {
		t.Errorf("empty trial p-value = %g, want 1", p)
	}
}
