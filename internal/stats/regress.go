package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares normal system is singular.
var ErrSingular = errors.New("stats: singular design matrix")

// LinearFit holds the result of a straight-line least-squares fit
// y = Intercept + Slope·x.
type LinearFit struct {
	Slope, Intercept       float64
	SlopeErr, InterceptErr float64 // standard errors
	R2                     float64 // coefficient of determination
	Residuals              []float64
}

// FitLine performs an ordinary least-squares straight-line fit.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLine length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs >= 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	mx := Mean(xs)
	my := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		return LinearFit{}, ErrSingular
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	fit := LinearFit{Slope: slope, Intercept: intercept}
	fit.Residuals = make([]float64, len(xs))
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		r := ys[i] - pred
		fit.Residuals[i] = r
		ssRes += r * r
		dy := ys[i] - my
		ssTot += dy * dy
	}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	if len(xs) > 2 {
		s2 := ssRes / (n - 2)
		fit.SlopeErr = math.Sqrt(s2 / sxx)
		fit.InterceptErr = math.Sqrt(s2 * (1/n + mx*mx/sxx))
	}
	return fit, nil
}

// PolyFit holds a weighted polynomial least-squares fit
// y = Σ Coeff[k]·x^k with per-coefficient standard errors.
type PolyFit struct {
	Coeff    []float64
	CoeffErr []float64
	ChiSq    float64 // weighted residual sum of squares
	DoF      int     // degrees of freedom (n − terms)
}

// FitPolyWeighted fits y ≈ Σ_{k∈powers} c_k·x^k by weighted least
// squares, where weights[i] = 1/σ_i² (precision weights). Passing nil
// weights performs an ordinary fit. The powers slice selects which
// monomials participate, so a through-origin fit a·N + b·N² is
// powers = []int{1, 2}.
//
// Coefficients are returned in the order of powers. Standard errors come
// from the diagonal of the inverse normal matrix (exact when weights are
// true precisions).
func FitPolyWeighted(xs, ys, weights []float64, powers []int) (PolyFit, error) {
	n := len(xs)
	if len(ys) != n {
		return PolyFit{}, fmt.Errorf("stats: FitPolyWeighted length mismatch %d vs %d", n, len(ys))
	}
	if weights != nil && len(weights) != n {
		return PolyFit{}, fmt.Errorf("stats: weights length %d != %d", len(weights), n)
	}
	p := len(powers)
	if p == 0 {
		return PolyFit{}, errors.New("stats: FitPolyWeighted needs at least one power")
	}
	if n < p {
		return PolyFit{}, fmt.Errorf("stats: %d points cannot determine %d coefficients", n, p)
	}

	// Build normal equations A c = b with A = XᵀWX, b = XᵀWy.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	row := make([]float64, p)
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 0 {
				return PolyFit{}, fmt.Errorf("stats: negative weight %g at index %d", w, i)
			}
		}
		for k, pw := range powers {
			row[k] = math.Pow(xs[i], float64(pw))
		}
		for r := 0; r < p; r++ {
			for c := 0; c < p; c++ {
				a[r][c] += w * row[r] * row[c]
			}
			b[r] += w * row[r] * ys[i]
		}
	}

	inv, err := invertSymmetric(a)
	if err != nil {
		return PolyFit{}, err
	}
	coeff := make([]float64, p)
	for r := 0; r < p; r++ {
		for c := 0; c < p; c++ {
			coeff[r] += inv[r][c] * b[c]
		}
	}

	fit := PolyFit{Coeff: coeff, DoF: n - p}
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		pred := 0.0
		for k, pw := range powers {
			pred += coeff[k] * math.Pow(xs[i], float64(pw))
		}
		r := ys[i] - pred
		fit.ChiSq += w * r * r
	}
	fit.CoeffErr = make([]float64, p)
	// If no weights were given, scale covariance by residual variance.
	scale := 1.0
	if weights == nil && fit.DoF > 0 {
		scale = fit.ChiSq / float64(fit.DoF)
	}
	for k := 0; k < p; k++ {
		fit.CoeffErr[k] = math.Sqrt(math.Abs(inv[k][k]) * scale)
	}
	return fit, nil
}

// invertSymmetric inverts a small symmetric positive-definite matrix by
// Gauss–Jordan elimination with partial pivoting.
func invertSymmetric(a [][]float64) ([][]float64, error) {
	n := len(a)
	// augmented [a | I]
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// pivot
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[piv][col]) {
				piv = r
			}
		}
		if math.Abs(aug[piv][col]) < 1e-300 {
			return nil, ErrSingular
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		pv := aug[col][col]
		for c := 0; c < 2*n; c++ {
			aug[col][c] /= pv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for c := 0; c < 2*n; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, nil
}

// EvalPoly evaluates Σ coeff[k]·x^powers[k].
func EvalPoly(coeff []float64, powers []int, x float64) float64 {
	var y float64
	for k, pw := range powers {
		y += coeff[k] * math.Pow(x, float64(pw))
	}
	return y
}
