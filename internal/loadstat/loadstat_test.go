package loadstat

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's lower edge maps back to that
// bucket, edges are strictly increasing, and bucketIndex is monotone —
// the structural invariants the quantile walk rests on.
func TestBucketRoundTrip(t *testing.T) {
	t.Parallel()
	for idx := 0; idx < numBuckets-1; idx++ {
		lo := bucketLow(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", idx, lo, got)
		}
		if hi := bucketLow(idx + 1); hi <= lo {
			t.Fatalf("bucket %d edges not increasing: low %d, next %d", idx, lo, hi)
		}
	}
	prev := 0
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 63, 1000, 1e6, 1e9, 1e12, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	if bucketIndex(math.MaxInt64) != numBuckets-1 {
		t.Fatalf("MaxInt64 bucket %d, want %d", bucketIndex(math.MaxInt64), numBuckets-1)
	}
}

// TestQuantizationError: representative values stay within the
// designed 1/16 relative error of the recorded value.
func TestQuantizationError(t *testing.T) {
	t.Parallel()
	for _, v := range []int64{17, 100, 999, 12345, 7_654_321, 3_000_000_000} {
		mid := bucketMid(bucketIndex(v))
		if rel := math.Abs(float64(mid-v)) / float64(v); rel > 1.0/16 {
			t.Fatalf("value %d: representative %d off by %.3f (> 1/16)", v, mid, rel)
		}
	}
}

// TestQuantilesOnKnownDistribution: a uniform ramp of durations yields
// quantiles within bucket resolution of the exact order statistics.
func TestQuantilesOnKnownDistribution(t *testing.T) {
	t.Parallel()
	h := New()
	const n = 10000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count() != n {
		t.Fatalf("count %d", s.Count())
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 5000 * time.Microsecond},
		{0.90, 9000 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
		{0.999, 9990 * time.Microsecond},
	} {
		got := s.Quantile(tc.q)
		rel := math.Abs(float64(got-tc.exact)) / float64(tc.exact)
		if rel > 0.10 {
			t.Errorf("q%.3f = %v, exact %v (rel err %.3f)", tc.q, got, tc.exact, rel)
		}
	}
	if s.Min() != time.Microsecond || s.Max() != n*time.Microsecond {
		t.Errorf("extrema [%v, %v]", s.Min(), s.Max())
	}
	if mean := s.Mean(); mean < 4900*time.Microsecond || mean > 5100*time.Microsecond {
		t.Errorf("mean %v", mean)
	}
	// p0 and p100 clamp to the exact extrema.
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Errorf("p0/p100 = %v/%v, want %v/%v", s.Quantile(0), s.Quantile(1), s.Min(), s.Max())
	}
}

// TestCountBelow: cumulative counts at bucket edges are exact, and the
// Prometheus-style le-bounds are monotone.
func TestCountBelow(t *testing.T) {
	t.Parallel()
	h := New()
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.CountBelow(2 * time.Second); got != 1000 {
		t.Errorf("CountBelow(2s) = %d, want 1000", got)
	}
	if got := s.CountBelow(0); got != 1 {
		t.Errorf("CountBelow(0) = %d, want 1", got)
	}
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second}
	prev := uint64(0)
	for _, b := range bounds {
		got := s.CountBelow(b)
		if got < prev {
			t.Errorf("CountBelow not monotone at %v: %d < %d", b, got, prev)
		}
		// Uniform 0..999ms: expect roughly b/1ms observations below b.
		want := float64(b / time.Millisecond)
		if want > 1000 {
			want = 1000
		}
		if want >= 8 && math.Abs(float64(got)-want)/want > 0.15 {
			t.Errorf("CountBelow(%v) = %d, want ≈ %.0f", b, got, want)
		}
		prev = got
	}
}

// TestEmptyAndNegative: the empty snapshot degrades to zeros and
// negative durations clamp instead of corrupting the table.
func TestEmptyAndNegative(t *testing.T) {
	t.Parallel()
	h := New()
	s := h.Snapshot()
	if s.Count() != 0 || s.Quantile(0.99) != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot: %+v", s.Summarize())
	}
	h.Record(-5 * time.Second)
	s = h.Snapshot()
	if s.Count() != 1 || s.Min() != 0 || s.Max() != 0 {
		t.Errorf("negative record: count %d extrema [%v, %v]", s.Count(), s.Min(), s.Max())
	}
}

// TestMergeEqualsCombined: merging per-worker snapshots equals one
// histogram fed everything.
func TestMergeEqualsCombined(t *testing.T) {
	t.Parallel()
	all := New()
	parts := []*Histogram{New(), New()}
	for i := 1; i <= 2000; i++ {
		d := time.Duration(i*i) * time.Nanosecond
		all.Record(d)
		parts[i%2].Record(d)
	}
	merged := parts[0].Snapshot()
	merged.Merge(parts[1].Snapshot())
	want := all.Snapshot()
	if merged.Count() != want.Count() || merged.Sum() != want.Sum() ||
		merged.Min() != want.Min() || merged.Max() != want.Max() {
		t.Fatalf("merged %+v != combined %+v", merged.Summarize(), want.Summarize())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Errorf("q%g: merged %v != combined %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
}

// TestConcurrentRecord: racing recorders lose nothing (the -race
// witness for the lock-free hot path).
func TestConcurrentRecord(t *testing.T) {
	t.Parallel()
	h := New()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*per {
		t.Fatalf("count %d, want %d", s.Count(), workers*per)
	}
	var inBuckets uint64
	for i := range s.buckets {
		inBuckets += s.buckets[i]
	}
	if inBuckets != workers*per {
		t.Fatalf("bucket total %d, want %d", inBuckets, workers*per)
	}
}

// BenchmarkRecord is the hot-path cost the daemon pays per request.
func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
