// Package loadstat provides the latency-measurement primitives of the
// serving layer: a lock-free, log-bucketed duration histogram in the
// HDR style, cheap enough to sit on the daemon's per-request hot path
// (one atomic add per observation) and precise enough for tail
// quantiles (p99, p999) across nine decades of latency.
//
// The same histogram backs both sides of an SLO measurement: cmd/trngd
// records in-process request durations and exports them as a
// Prometheus histogram on /metrics, and cmd/loadgen records
// client-observed latencies and reports p50/p99/p999 — so an external
// load run and the daemon's own view are directly comparable.
//
// # Bucket scheme
//
// Durations are recorded in nanoseconds. Values below 16 ns get exact
// unit buckets; above that, each power-of-two octave is divided into
// 16 geometric sub-buckets, giving a worst-case relative quantization
// error of 1/16 ≈ 6% — ample for latency percentiles — in a fixed
// 1024-bucket table (8 KiB of counters, no allocation after New).
package loadstat

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// subBuckets is the linear resolution within one power-of-two octave.
const subBuckets = 16

// numBuckets covers every int64 nanosecond value exactly: the largest
// 63-bit value has MSB position 63 and lands at (63-5)*16 + 31 = 959.
const numBuckets = 960

// Histogram is a lock-free log-bucketed duration histogram. The zero
// value is NOT ready to use; call New. All methods are safe for
// concurrent use; Record is wait-free (three atomic adds plus two
// bounded CAS loops for the extrema).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
	min     atomic.Int64 // smallest recorded value (math.MaxInt64 when empty)
	max     atomic.Int64
}

// New builds an empty histogram.
func New() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
// Values in [0, 16) get unit buckets; a value with MSB position m >= 5
// lands in octave block (m-5) at sub-bucket v>>(m-5) — contiguous with
// the unit range (m = 5 is the identity shift).
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	shift := bits.Len64(uint64(v)) - 5
	idx := shift*subBuckets + int(v>>uint(shift))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx (the
// inverse of bucketIndex on bucket lower edges).
func bucketLow(idx int) int64 {
	if idx < 2*subBuckets {
		return int64(idx)
	}
	shift := idx/subBuckets - 1
	if shift > 58 {
		// One past the last reachable bucket (asked for by CountBelow's
		// width computation at the table edge).
		return math.MaxInt64
	}
	return int64(idx%subBuckets+subBuckets) << uint(shift)
}

// bucketMid returns the representative (midpoint) value of bucket idx,
// used when reporting quantiles.
func bucketMid(idx int) int64 {
	lo := bucketLow(idx)
	if idx+1 >= numBuckets {
		return lo
	}
	hi := bucketLow(idx + 1)
	return lo + (hi-lo)/2
}

// Record adds one observation. Negative durations are clamped to zero
// (they can only come from a non-monotonic clock source; dropping them
// would skew the count against the caller's own bookkeeping).
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Snapshot is a point-in-time copy of a histogram, safe to query while
// the live histogram keeps recording. Under concurrent recording the
// copied buckets may be mutually inconsistent by a few in-flight
// observations; each counter is individually consistent.
type Snapshot struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() *Snapshot {
	s := &Snapshot{
		count: h.count.Load(),
		sum:   h.sum.Load(),
		min:   h.min.Load(),
		max:   h.max.Load(),
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the number of observations in the snapshot.
func (s *Snapshot) Count() uint64 { return s.count }

// Sum returns the total duration of the snapshot.
func (s *Snapshot) Sum() time.Duration { return time.Duration(s.sum) }

// Mean returns the average observation (0 when empty).
func (s *Snapshot) Mean() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.sum / int64(s.count))
}

// Min returns the smallest observation (0 when empty).
func (s *Snapshot) Min() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.min)
}

// Max returns the largest observation (0 when empty).
func (s *Snapshot) Max() time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(s.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) as the representative
// value of the bucket holding the rank-⌈q·count⌉ observation, clamped
// to the recorded extrema so p0/p100 are exact and no quantile is
// reported outside the observed range. Returns 0 on an empty
// snapshot.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(s.min)
	}
	if q >= 1 {
		return time.Duration(s.max)
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range s.buckets {
		seen += s.buckets[i]
		if seen >= rank {
			v := bucketMid(i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.max)
}

// CountBelow returns the number of observations <= d, the cumulative
// count a Prometheus histogram bucket (le=d) reports. The bucket
// straddling d contributes a linear fraction of its width — exact at
// bucket edges, within one sub-bucket's population otherwise.
func (s *Snapshot) CountBelow(d time.Duration) uint64 {
	v := int64(d)
	if v < 0 {
		return 0
	}
	idx := bucketIndex(v)
	var n uint64
	for i := 0; i < idx; i++ {
		n += s.buckets[i]
	}
	lo, width := bucketLow(idx), bucketLow(idx+1)-bucketLow(idx)
	if width <= 0 {
		return n + s.buckets[idx]
	}
	frac := float64(v-lo+1) / float64(width)
	if frac > 1 {
		frac = 1
	}
	return n + uint64(frac*float64(s.buckets[idx]))
}

// Merge adds another snapshot's observations into s (for combining
// per-worker histograms into one report).
func (s *Snapshot) Merge(o *Snapshot) {
	for i := range s.buckets {
		s.buckets[i] += o.buckets[i]
	}
	s.count += o.count
	s.sum += o.sum
	if o.count > 0 {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
}

// Summary is the fixed quantile report of a snapshot, shaped for JSON
// output (durations in seconds, the unit Prometheus and SLO documents
// use).
type Summary struct {
	Count   uint64  `json:"count"`
	MeanSec float64 `json:"mean_seconds"`
	MinSec  float64 `json:"min_seconds"`
	P50Sec  float64 `json:"p50_seconds"`
	P90Sec  float64 `json:"p90_seconds"`
	P99Sec  float64 `json:"p99_seconds"`
	P999Sec float64 `json:"p999_seconds"`
	MaxSec  float64 `json:"max_seconds"`
}

// Summarize computes the standard quantile report.
func (s *Snapshot) Summarize() Summary {
	return Summary{
		Count:   s.count,
		MeanSec: s.Mean().Seconds(),
		MinSec:  s.Min().Seconds(),
		P50Sec:  s.Quantile(0.50).Seconds(),
		P90Sec:  s.Quantile(0.90).Seconds(),
		P99Sec:  s.Quantile(0.99).Seconds(),
		P999Sec: s.Quantile(0.999).Seconds(),
		MaxSec:  s.Max().Seconds(),
	}
}
