package sp90b

import "testing"

// BenchmarkAssessNonIID measures the full ten-estimator suite over a
// 1 Mibit stream — the assessment cost the serving stack pays every
// HealthConfig.AssessEveryBits raw bits (scaled: shards assess 64 Kibit
// samples by default). SetBytes counts INPUT bits/8, so the MB/s
// column reads as raw-stream bytes assessed per second.
func BenchmarkAssessNonIID(b *testing.B) {
	bits := uniformBits(1, 1<<20)
	b.SetBytes(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assess(bits); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssessShardSample is the per-shard online flavor: the
// default 64 Kibit sample entropyd assesses inline.
func BenchmarkAssessShardSample(b *testing.B) {
	bits := uniformBits(2, 1<<16)
	b.SetBytes(1 << 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Assess(bits); err != nil {
			b.Fatal(err)
		}
	}
}
