package sp90b

import (
	"testing"

	"repro/internal/ais31"
	"repro/internal/core"
	"repro/internal/trng"
)

// simStream returns n raw bits of a paper-calibrated eRO-TRNG on the
// leapfrog fast path.
func simStream(t *testing.T, divider int, seed uint64, n int) []byte {
	t.Helper()
	g, err := trng.New(trng.Config{
		Model:    core.PaperModel().Phase,
		Divider:  divider,
		Seed:     seed,
		Leapfrog: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g.Bits(n)
}

// TestCoronCompressionCrossCheck pins the two certification layers
// against each other on the same simulated streams: AIS 31's T8 is
// Coron's refined universal entropy test (expectation = Shannon
// entropy per 8-bit word), and the 90B compression estimate is a 99%
// min-entropy lower bound built from the same Maurer/Coron
// recurrence-distance statistic over 6-bit blocks. They measure the
// same structure at different confidence postures, so the documented
// tolerance is one-sided: the 90B bound must sit BELOW the Coron
// per-bit entropy (it lower-bounds min-entropy, which lower-bounds
// Shannon), within 0.25 bit of it on a near-full-entropy stream (the
// compression estimator's designed conservatism), and both must drop
// together — preserving the gap ordering — on an autocorrelated
// small-divider stream.
func TestCoronCompressionCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("two simulated streams of ~180 kbit; skipped in -short")
	}
	t.Parallel()
	p := ais31.CoronParams{L: 8, Q: 2560, K: 20000, Threshold: 7.976}
	n := (p.Q + p.K) * p.L

	eval := func(divider int, seed uint64) (coronPerBit, compBound float64) {
		bits := simStream(t, divider, seed, n)
		v, err := ais31.T8Coron(bits, p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Assess(bits)
		if err != nil {
			t.Fatal(err)
		}
		comp, ok := rep.Estimate(NameCompression)
		if !ok {
			t.Fatal("no compression estimate")
		}
		return v.Statistic / float64(p.L), comp.MinEntropy
	}

	// Near-full-entropy operating point.
	coronGood, compGood := eval(65536, 31)
	t.Logf("K=65536: coron/bit %.4f, 90B compression %.4f", coronGood, compGood)
	if coronGood < 0.95 {
		t.Fatalf("Coron per-bit entropy %.4f < 0.95 at the full-entropy divider", coronGood)
	}
	if compGood >= coronGood {
		t.Fatalf("90B lower bound %.4f at or above Coron entropy %.4f", compGood, coronGood)
	}
	if coronGood-compGood > 0.25 {
		t.Fatalf("layers disagree by %.4f > 0.25 bit on a full-entropy stream", coronGood-compGood)
	}

	// Autocorrelated small-divider stream: both must see the drop,
	// with their characteristic sensitivities — Coron's word-level
	// Shannon statistic softens only a little (8-bit words stay
	// diverse under run-correlation; observed ≈ −0.10), while the
	// min-entropy lower bound falls hard (observed ≈ −0.47). That
	// asymmetry is the confidence-posture difference between the two
	// certification layers, not a defect in either.
	coronBad, compBad := eval(2048, 32)
	t.Logf("K=2048:  coron/bit %.4f, 90B compression %.4f", coronBad, compBad)
	if coronBad > coronGood-0.05 {
		t.Fatalf("Coron blind to the degraded stream: %.4f → %.4f", coronGood, coronBad)
	}
	if compBad > compGood-0.3 {
		t.Fatalf("compression bound blind to the degraded stream: %.4f → %.4f", compGood, compBad)
	}
	if compBad >= coronBad {
		t.Fatalf("ordering lost on degraded stream: 90B %.4f vs Coron %.4f", compBad, coronBad)
	}
}
