package sp90b

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/rng"
)

// bruteSuffixArray sorts actual suffixes.
func bruteSuffixArray(s []byte) []int32 {
	sa := make([]int32, len(s))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(s[sa[a]:], s[sa[b]:]) < 0
	})
	return sa
}

// bruteLCP compares adjacent suffixes directly.
func bruteLCP(s []byte, sa []int32) []int32 {
	lcp := make([]int32, len(s))
	for i := 1; i < len(sa); i++ {
		a, b := s[sa[i-1]:], s[sa[i]:]
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		lcp[i] = int32(n)
	}
	return lcp
}

// bruteTupleCounts returns (max count, Σ C(c,2)) over all W-tuples.
func bruteTupleCounts(s []byte, w int) (int64, int64) {
	counts := map[string]int64{}
	for i := 0; i+w <= len(s); i++ {
		counts[string(s[i:i+w])]++
	}
	var max, pairs int64
	for _, c := range counts {
		if c > max {
			max = c
		}
		pairs += c * (c - 1) / 2
	}
	return max, pairs
}

// randomSymbols returns n symbols over an alphabet of size k.
func randomSymbols(seed uint64, n, k int) []byte {
	src := rng.New(seed)
	s := make([]byte, n)
	for i := range s {
		s[i] = byte(src.Intn(k))
	}
	return s
}

// TestSuffixArrayAgainstBrute validates the prefix-doubling suffix
// array and Kasai LCP on random binary, ternary and degenerate inputs.
func TestSuffixArrayAgainstBrute(t *testing.T) {
	cases := [][]byte{
		randomSymbols(1, 257, 2),
		randomSymbols(2, 300, 3),
		randomSymbols(3, 64, 2),
		bytes.Repeat([]byte{0}, 100),
		append(bytes.Repeat([]byte{0}, 50), bytes.Repeat([]byte{1}, 50)...),
		{0},
		{1, 0},
	}
	for ci, s := range cases {
		sa := suffixArray(s)
		want := bruteSuffixArray(s)
		for i := range sa {
			if sa[i] != want[i] {
				t.Fatalf("case %d: sa[%d] = %d, want %d", ci, i, sa[i], want[i])
			}
		}
		lcp := lcpArray(s, sa)
		wantLCP := bruteLCP(s, sa)
		for i := range lcp {
			if lcp[i] != wantLCP[i] {
				t.Fatalf("case %d: lcp[%d] = %d, want %d", ci, i, lcp[i], wantLCP[i])
			}
		}
	}
}

// TestTupleStatsAgainstBrute validates the monotonic-stack pair and
// run accounting against direct tuple counting for every length.
func TestTupleStatsAgainstBrute(t *testing.T) {
	cases := [][]byte{
		randomSymbols(4, 200, 2),
		randomSymbols(5, 300, 3),
		append(bytes.Repeat([]byte{0, 1}, 60), bytes.Repeat([]byte{1}, 30)...),
		bytes.Repeat([]byte{0}, 80),
	}
	for ci, s := range cases {
		sa := suffixArray(s)
		st := newTupleStats(lcpArray(s, sa), maxTupleLen)
		top := st.maxLCP
		if top > maxTupleLen {
			top = maxTupleLen
		}
		for w := 1; w <= top; w++ {
			max, pairs := bruteTupleCounts(s, w)
			if st.maxCount[w] != max {
				t.Fatalf("case %d: maxCount[%d] = %d, want %d", ci, w, st.maxCount[w], max)
			}
			if st.pairsAtLeast[w] != pairs {
				t.Fatalf("case %d: pairsAtLeast[%d] = %d, want %d", ci, w, st.pairsAtLeast[w], pairs)
			}
		}
		// One past the longest repeat every tuple is unique.
		if top < maxTupleLen {
			max, _ := bruteTupleCounts(s, top+1)
			if max > 1 {
				t.Fatalf("case %d: longest repeat %d but a (v+1)-tuple repeats", ci, top)
			}
		}
	}
}

// TestTupleStatsCapClamp: with a cap below the longest repeat the
// in-cap statistics must be unchanged.
func TestTupleStatsCapClamp(t *testing.T) {
	s := bytes.Repeat([]byte{0, 0, 1}, 100)
	full := newTupleStats(lcpArray(s, suffixArray(s)), maxTupleLen)
	capped := newTupleStats(lcpArray(s, suffixArray(s)), 5)
	for w := 1; w <= 5; w++ {
		if full.pairsAtLeast[w] != capped.pairsAtLeast[w] || full.maxCount[w] != capped.maxCount[w] {
			t.Fatalf("cap changed in-cap stats at W=%d", w)
		}
	}
}
