package sp90b

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trng"
)

// simRestartRows builds a §3.1.4 restart matrix from re-seeded
// simulator runs: row i is the first cols raw bits of a fresh
// paper-calibrated eRO-TRNG — the simulation analogue of power-cycling
// the device before each capture. seedOf scripts the reseeding policy
// (honest restarts derive fresh seeds; a broken source replays one).
func simRestartRows(t *testing.T, rows, cols, divider int, seedOf func(i int) uint64) [][]byte {
	t.Helper()
	m := core.PaperModel()
	out := make([][]byte, rows)
	for i := range out {
		g, err := trng.New(trng.Config{
			Model:    m.Phase,
			Divider:  divider,
			Seed:     seedOf(i),
			Leapfrog: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = g.Bits(cols)
	}
	return out
}

// TestRestartMatrixHonestSource: independent restarts of the
// calibrated generator at its near-full-entropy divider must pass the
// sanity test, and the row/column re-assessments must return a
// non-degenerate bound no better than the initial estimate.
func TestRestartMatrixHonestSource(t *testing.T) {
	if testing.Short() {
		t.Skip("restart matrix simulation; skipped in -short")
	}
	t.Parallel()
	const hInitial = 0.95
	rows := simRestartRows(t, 64, 200, 65536, func(i int) uint64 { return 1000 + uint64(i) })
	rep, err := AssessRestart(rows, hInitial)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SanityPass {
		t.Fatalf("sanity test failed on honest restarts: FR=%d FC=%d cutoff=%d", rep.FR, rep.FC, rep.Cutoff)
	}
	if rep.MinEntropy <= 0.3 || rep.MinEntropy > hInitial {
		t.Fatalf("restart min-entropy %.4f outside (0.3, %.2f]", rep.MinEntropy, hInitial)
	}
	if rep.RowAssessment.Bits != 64*200 || rep.ColAssessment.Bits != 64*200 {
		t.Fatalf("row/col assessments cover %d/%d bits, want %d",
			rep.RowAssessment.Bits, rep.ColAssessment.Bits, 64*200)
	}
}

// TestRestartMatrixSeedReplay: a source that replays the same state on
// every restart (the classic broken-TRNG failure the restart test
// exists for) makes every column constant; the sanity test must fail
// and the verdict must be zero entropy.
func TestRestartMatrixSeedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("restart matrix simulation; skipped in -short")
	}
	t.Parallel()
	rows := simRestartRows(t, 64, 200, 65536, func(int) uint64 { return 77 })
	rep, err := AssessRestart(rows, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SanityPass {
		t.Fatalf("sanity test passed on seed-replaying restarts (FC=%d, cutoff=%d)", rep.FC, rep.Cutoff)
	}
	if rep.FC != 64 {
		t.Fatalf("replayed restarts should give a constant column: FC=%d, want 64", rep.FC)
	}
	if rep.MinEntropy != 0 {
		t.Fatalf("failed sanity must yield zero entropy, got %.4f", rep.MinEntropy)
	}
}

// TestAssessRestartValidation covers the shape and parameter guards.
func TestAssessRestartValidation(t *testing.T) {
	good := make([][]byte, 100)
	for i := range good {
		good[i] = make([]byte, 100)
	}
	if _, err := AssessRestart(good[:1], 0.9); err == nil {
		t.Error("single row accepted")
	}
	ragged := [][]byte{make([]byte, 100), make([]byte, 99)}
	if _, err := AssessRestart(ragged, 0.9); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := AssessRestart(good, 0); err == nil {
		t.Error("zero initial entropy accepted")
	}
	if _, err := AssessRestart(good, 1.5); err == nil {
		t.Error("out-of-range initial entropy accepted")
	}
}

// TestBinomialCritical pins the critical-value machinery: exact tail
// behaviour at the edges and agreement with the normal approximation
// in the standard's regime.
func TestBinomialCritical(t *testing.T) {
	// Binomial(1000, 0.5) at α = 0.01/2000: the normal approximation
	// puts the critical value near 500 + 4.42·15.81 ≈ 570.
	u := binomialCritical(1000, 0.5, 0.01/2000)
	if u < 555 || u > 585 {
		t.Fatalf("critical value %d outside [555, 585]", u)
	}
	// Monotone in p.
	if u2 := binomialCritical(1000, 0.6, 0.01/2000); u2 <= u {
		t.Fatalf("critical value not increasing in p: %d then %d", u, u2)
	}
	// A certain event needs no cutoff below n+1.
	if got := binomialCritical(100, 1.0, 1e-6); got != 101 {
		t.Fatalf("p=1 critical value %d, want 101", got)
	}
}
