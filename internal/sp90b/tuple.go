package sp90b

import (
	"fmt"
	"math"
)

// tupleCutoff is the §6.3.5 occurrence threshold: the t-tuple estimate
// uses tuple lengths whose most frequent tuple appears at least this
// often, and the LRS estimate takes over above.
const tupleCutoff = 35

// maxTupleLen caps the tuple-length scan. Real raw streams have
// longest repeated substrings of O(log L) (tens of bits, hundreds in
// the heavily autocorrelated small-divider regime); the cap only binds
// on degenerate near-constant inputs, where it keeps the assessment
// near-linear instead of the standard's implicit O(L²) scan.
const maxTupleLen = 4096

// suffixArray builds the suffix array of s by prefix doubling with
// counting sorts: O(n log n) time, 3 int32 scratch arrays. Symbols are
// arbitrary bytes (Assess feeds 0/1).
func suffixArray(s []byte) []int32 {
	n := len(s)
	sa := make([]int32, n)
	rank := make([]int32, n)
	newRank := make([]int32, n)
	tmp := make([]int32, n)
	cnt := make([]int32, n+1)

	// Round 0: sort by first symbol.
	var cnt0 [257]int32
	for _, c := range s {
		cnt0[int(c)+1]++
	}
	for i := 0; i < 256; i++ {
		cnt0[i+1] += cnt0[i]
	}
	for i := 0; i < n; i++ {
		c := s[i]
		sa[cnt0[c]] = int32(i)
		cnt0[c]++
	}
	r := int32(0)
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		if s[sa[i]] != s[sa[i-1]] {
			r++
		}
		rank[sa[i]] = r
	}

	for k := 1; int(r) != n-1; k *= 2 {
		// Order by the second key (rank[i+k], out-of-range first):
		// the tail suffixes have empty second halves, then the rest
		// inherit the current sa order shifted by k.
		p := 0
		for i := n - k; i < n; i++ {
			tmp[p] = int32(i)
			p++
		}
		for _, i := range sa {
			if int(i) >= k {
				tmp[p] = i - int32(k)
				p++
			}
		}
		// Stable counting sort by the first key.
		for i := range cnt {
			cnt[i] = 0
		}
		for i := 0; i < n; i++ {
			cnt[rank[i]+1]++
		}
		for i := 0; i < n; i++ {
			cnt[i+1] += cnt[i]
		}
		for _, i := range tmp {
			sa[cnt[rank[i]]] = i
			cnt[rank[i]]++
		}
		// Re-rank.
		second := func(i int32) int32 {
			if int(i)+k < n {
				return rank[int(i)+k]
			}
			return -1
		}
		r = 0
		newRank[sa[0]] = 0
		for i := 1; i < n; i++ {
			a, b := sa[i-1], sa[i]
			if rank[a] != rank[b] || second(a) != second(b) {
				r++
			}
			newRank[b] = r
		}
		rank, newRank = newRank, rank
	}
	return sa
}

// lcpArray computes Kasai's LCP array: lcp[i] is the longest common
// prefix of suffixes sa[i-1] and sa[i] (lcp[0] = 0).
func lcpArray(s []byte, sa []int32) []int32 {
	n := len(s)
	rank := make([]int32, n)
	for i, p := range sa {
		rank[p] = int32(i)
	}
	lcp := make([]int32, n)
	h := 0
	for i := 0; i < n; i++ {
		if rank[i] == 0 {
			h = 0
			continue
		}
		j := int(sa[rank[i]-1])
		for i+h < n && j+h < n && s[i+h] == s[j+h] {
			h++
		}
		lcp[rank[i]] = int32(h)
		if h > 0 {
			h--
		}
	}
	return lcp
}

// tupleStats digests the LCP array into the two quantities the
// estimates need, for every length W up to cap in one O(n) pass:
//
//   - pairsAtLeast[W]: the number of position pairs whose suffixes
//     share a prefix of length ≥ W — exactly Σ_j C(c_j, 2) over the
//     distinct W-tuples with counts c_j;
//   - maxCount[W]: the count of the most frequent W-tuple.
//
// Both come from the classic subarray-minimum decomposition: a
// monotonic stack assigns every LCP entry the maximal window where it
// is the minimum, contributing left·right pairs at threshold exactly
// lcp and a candidate run of left+right−1 adjacent suffix pairs;
// suffix-summing (suffix-maxing) over thresholds finishes the job.
type tupleStats struct {
	maxLCP       int     // length of the longest repeated substring
	pairsAtLeast []int64 // indexed 1..cap; [0] unused
	maxCount     []int64 // indexed 1..cap; [0] unused
}

func newTupleStats(lcp []int32, cap int) tupleStats {
	// m is the adjacent-suffix LCP sequence, values clamped to cap
	// (clamping changes minima only above cap, which we never read).
	m := lcp[1:]
	maxLCP := 0
	for _, v := range lcp {
		if int(v) > maxLCP {
			maxLCP = int(v)
		}
	}
	top := maxLCP
	if top > cap {
		top = cap
	}
	pairDiff := make([]int64, top+2) // pairs with min exactly t
	runMax := make([]int64, top+2)   // longest window with min exactly t

	// Monotonic stack of indices with strictly increasing clamped
	// values; left extent = strictly-less boundary, right extent =
	// less-or-equal boundary, so every subarray is counted once.
	type item struct {
		val  int32
		left int64 // number of windows extending left, including self
	}
	var stack []item
	clamp := func(v int32) int32 {
		if int(v) > cap {
			return int32(cap)
		}
		return v
	}
	flush := func(it item, right int64) {
		if it.val <= 0 {
			return
		}
		pairDiff[it.val] += it.left * right
		if w := it.left + right - 1; w > runMax[it.val] {
			runMax[it.val] = w
		}
	}
	for j := 0; j < len(m); j++ {
		v := clamp(m[j])
		left := int64(1)
		for len(stack) > 0 && stack[len(stack)-1].val >= v {
			it := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			// it.val ≥ v: its window ends here; right extent is the
			// distance accumulated since it was pushed.
			flush(it, left)
			left += it.left
		}
		stack = append(stack, item{val: v, left: left})
	}
	right := int64(1)
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		flush(it, right)
		right += it.left
	}

	st := tupleStats{
		maxLCP:       maxLCP,
		pairsAtLeast: make([]int64, top+2),
		maxCount:     make([]int64, top+2),
	}
	var pairs int64
	var run int64
	for t := top; t >= 1; t-- {
		pairs += pairDiff[t]
		if runMax[t] > run {
			run = runMax[t]
		}
		st.pairsAtLeast[t] = pairs
		// run adjacent pairs at threshold t = run+1 suffixes sharing a
		// t-prefix = run+1 occurrences of that t-tuple.
		st.maxCount[t] = run + 1
	}
	return st
}

// tupleEstimates computes the §6.3.5 t-tuple and §6.3.6 LRS estimates
// from one shared suffix-array pass. The cutoff is a parameter so the
// standard's small worked examples (which substitute a cutoff of 3 for
// 35) can drive the same code.
func tupleEstimates(s []byte, cutoff, maxLen int) (Estimate, Estimate) {
	n := len(s)
	sa := suffixArray(s)
	st := newTupleStats(lcpArray(s, sa), maxLen)
	top := st.maxLCP
	if top > maxLen {
		top = maxLen
	}

	// t-tuple: largest t with Q[t] ≥ cutoff, p̂ = max over i ≤ t of
	// (Q[i]/(L−i+1))^{1/i}.
	t := 0
	var pHat float64
	for i := 1; i <= top; i++ {
		q := st.maxCount[i]
		if q < int64(cutoff) {
			break
		}
		t = i
		if p := math.Pow(float64(q)/float64(n-i+1), 1/float64(i)); p > pHat {
			pHat = p
		}
	}
	var ttuple Estimate
	if t == 0 {
		ttuple = Estimate{Name: NameTTuple, MinEntropy: 1, P: 0.5,
			Detail: fmt.Sprintf("no tuple reaches %d occurrences", cutoff)}
	} else {
		pu := clampP(upperBound(pHat, n))
		ttuple = Estimate{Name: NameTTuple, MinEntropy: entropyFromP(pu), P: pu,
			Detail: fmt.Sprintf("t=%d, p̂=%.4f", t, pHat)}
	}

	// LRS: tuple lengths from u = t+1 up to the longest repeat, scored
	// by collision probability P_W = Σ_j C(c_j,2)/C(L−W+1,2).
	u := t + 1
	var lrs Estimate
	if u > top {
		lrs = Estimate{Name: NameLRS, MinEntropy: 1, P: 0.5,
			Detail: fmt.Sprintf("no repeated substring of length ≥ %d", u)}
	} else {
		var pHatLRS float64
		for w := u; w <= top; w++ {
			total := float64(n-w+1) * float64(n-w) / 2
			pw := float64(st.pairsAtLeast[w]) / total
			if p := math.Pow(pw, 1/float64(w)); p > pHatLRS {
				pHatLRS = p
			}
		}
		pu := clampP(upperBound(pHatLRS, n))
		lrs = Estimate{Name: NameLRS, MinEntropy: entropyFromP(pu), P: pu,
			Detail: fmt.Sprintf("u=%d, v=%d, p̂=%.4f", u, st.maxLCP, pHatLRS)}
	}
	return ttuple, lrs
}
