package sp90b

import (
	"fmt"
	"testing"
)

// The brute references below restate §6.3.7–6.3.10 literally — maps,
// per-step window recounts, explicit prediction lists — and the tests
// require the optimized implementations to produce identical tallies
// (compared through the full Estimate, whose Detail carries C, N and
// the longest run).

func bruteMCW(s []byte) Estimate {
	windows := []int{63, 255, 1023, 4095}
	score := make([]int, len(windows))
	winner := 0
	var tally Tally
	for i := windows[0]; i < len(s); i++ {
		preds := make([]int8, len(windows))
		for j, w := range windows {
			if i < w {
				preds[j] = -1
				continue
			}
			c0, c1 := 0, 0
			for k := i - w; k < i; k++ {
				if s[k] == 1 {
					c1++
				} else {
					c0++
				}
			}
			switch {
			case c1 > c0:
				preds[j] = 1
			case c0 > c1:
				preds[j] = 0
			default:
				preds[j] = int8(s[i-1])
			}
		}
		tally.Record(preds[winner] == int8(s[i]))
		for j := range windows {
			if preds[j] == int8(s[i]) {
				score[j]++
				if score[j] > score[winner] {
					winner = j
				}
			}
		}
	}
	return PredictorEstimate(NameMultiMCW, tally)
}

func bruteLag(s []byte) Estimate {
	score := make([]int, lagDepth)
	winner := 0
	var tally Tally
	for i := 1; i < len(s); i++ {
		preds := make([]int8, lagDepth)
		for d := 1; d <= lagDepth; d++ {
			if i >= d {
				preds[d-1] = int8(s[i-d])
			} else {
				preds[d-1] = -1
			}
		}
		tally.Record(preds[winner] == int8(s[i]))
		for d := 1; d <= lagDepth && d <= i; d++ {
			if s[i-d] == s[i] {
				score[d-1]++
				if score[d-1] > score[winner] {
					winner = d - 1
				}
			}
		}
	}
	return PredictorEstimate(NameLag, tally)
}

func bruteMMC(s []byte) Estimate {
	counts := make([]map[string]*[2]int, mmcDepth+1)
	for d := 1; d <= mmcDepth; d++ {
		counts[d] = map[string]*[2]int{}
	}
	score := make([]int, mmcDepth)
	winner := 0
	var tally Tally
	predict := func(d, i int) int8 {
		if i < d {
			return -1
		}
		c, ok := counts[d][string(s[i-d:i])]
		if !ok {
			return -1
		}
		if c[1] > c[0] {
			return 1
		}
		return 0
	}
	for i := 1; i < len(s); i++ {
		if i >= 2 {
			tally.Record(predict(winner+1, i) == int8(s[i]))
			for d := 1; d <= mmcDepth && d <= i; d++ {
				if predict(d, i) == int8(s[i]) {
					score[d-1]++
					if score[d-1] > score[winner] {
						winner = d - 1
					}
				}
			}
		}
		for d := 1; d <= mmcDepth && d <= i; d++ {
			key := string(s[i-d : i])
			c, ok := counts[d][key]
			if !ok {
				c = &[2]int{}
				counts[d][key] = c
			}
			c[s[i]]++
		}
	}
	return PredictorEstimate(NameMultiMMC, tally)
}

func bruteLZ78Y(s []byte) Estimate {
	dict := map[string]*[2]int{}
	entries := 0
	var tally Tally
	for i := lzDepth + 1; i < len(s); i++ {
		// Update with the transition into s[i-1].
		for j := lzDepth; j >= 1; j-- {
			key := string(s[i-1-j : i-1])
			if c, ok := dict[key]; ok {
				c[s[i-1]]++
			} else if entries < lzMaxDict {
				dict[key] = &[2]int{}
				dict[key][s[i-1]] = 1
				entries++
			}
		}
		// Predict s[i] from the contexts ending at s[i-1].
		pred := int8(-1)
		maxCount := 0
		for j := lzDepth; j >= 1; j-- {
			c, ok := dict[string(s[i-j:i])]
			if !ok {
				continue
			}
			y, cy := int8(0), c[0]
			if c[1] > c[0] {
				y, cy = 1, c[1]
			}
			if cy > maxCount {
				maxCount = cy
				pred = y
			}
		}
		tally.Record(pred == int8(s[i]))
	}
	return PredictorEstimate(NameLZ78Y, tally)
}

// TestPredictorsAgainstBrute runs all four optimized predictors against
// their literal re-implementations on uniform, biased, correlated and
// periodic streams.
func TestPredictorsAgainstBrute(t *testing.T) {
	streams := map[string][]byte{
		"uniform":  uniformBits(1, 6000),
		"biased":   biasedBits(2, 6000, 0.7),
		"markov":   markovBits(3, 6000, 0.85),
		"periodic": nil,
	}
	periodic := make([]byte, 6000)
	pattern := []byte{1, 1, 0, 1, 0}
	for i := range periodic {
		periodic[i] = pattern[i%len(pattern)]
	}
	streams["periodic"] = periodic

	type pair struct {
		name  string
		impl  func([]byte) Estimate
		brute func([]byte) Estimate
	}
	pairs := []pair{
		{NameMultiMCW, multiMCW, bruteMCW},
		{NameLag, lagPredictor, bruteLag},
		{NameMultiMMC, multiMMC, bruteMMC},
		{NameLZ78Y, lz78y, bruteLZ78Y},
	}
	for sname, s := range streams {
		for _, p := range pairs {
			got, want := p.impl(s), p.brute(s)
			if got != want {
				t.Errorf("%s on %s stream:\n got  %+v\n want %+v", p.name, sname, got, want)
			}
		}
	}
}

// TestLZ78YDictionaryCap drives enough distinct contexts through the
// dictionary to hit the 65536-entry cap and requires the optimized and
// brute paths to agree about which entries made it in.
func TestLZ78YDictionaryCap(t *testing.T) {
	s := uniformBits(9, 20000)
	got, want := lz78y(s), bruteLZ78Y(s)
	if got != want {
		t.Fatalf("capped dictionary diverged:\n got  %+v\n want %+v", got, want)
	}
}

// TestPredictorEstimateZeroCorrect pins the C = 0 branch:
// P'_global = 1 − 0.01^{1/N}.
func TestPredictorEstimateZeroCorrect(t *testing.T) {
	e := PredictorEstimate("x", Tally{N: 1000})
	want := fmt.Sprintf("p_g=%.4f", 0.0046)
	if e.MinEntropy != 1 {
		t.Fatalf("zero-correct predictor must clamp to 1 bit, got %.4f (%s)", e.MinEntropy, e.Detail)
	}
	if !contains(e.Detail, want) {
		t.Fatalf("detail %q does not carry the no-hit bound %s", e.Detail, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
