// Package sp90b implements the NIST SP 800-90B (final, January 2018)
// non-IID min-entropy estimator suite over binary raw streams: the
// black-box assessment track that governs entropy-source validation in
// the US scheme, the counterpart of the AIS 31 evaluation the paper
// targets (internal/ais31).
//
// The estimators of §6.3 are implemented for the binary alphabet the
// repository's raw (das) sequences live in:
//
//	6.3.1  Most Common Value        — bias only
//	6.3.2  Collision                — mean time to repeated value
//	6.3.3  Markov                   — first-order chain, 128-bit horizon
//	6.3.4  Compression              — Maurer/Coron universal statistic
//	6.3.5  t-Tuple                  — frequent overlapping tuples
//	6.3.6  LRS                      — longest repeated substring
//	6.3.7  MultiMCW prediction      — windowed most-common-value
//	6.3.8  Lag prediction           — periodicity
//	6.3.9  MultiMMC prediction      — Markov model ensemble to depth 16
//	6.3.10 LZ78Y prediction         — dictionary predictor
//
// Every estimate is a 99% lower confidence bound on the per-bit
// min-entropy (the standard's machinery: Z_0.995 normal bounds on the
// observed statistic, inverted through the estimator's source family),
// and Assess reports the minimum over the suite, as §3.1.3 prescribes.
// The §3.1.4 restart-matrix procedure (row/column sanity test plus
// row- and column-wise re-assessment) is provided by AssessRestart.
//
// # Why this repository implements it
//
// The whole argument of the source paper is that entropy certification
// built on a naive independence assumption overestimates the entropy of
// a RO-TRNG, because flicker noise inflates the measured jitter with
// autocorrelated — partially predictable — mass. A hardware lab can run
// the 90B suite only against streams whose true entropy it does not
// know; this repository can run it against simulated raw streams whose
// exact conditional entropy is known in closed form from
// internal/entropy, quantifying where black-box assessment agrees with,
// over-, or under-estimates the model (experiments.EntropyAssessment).
// The bias-style estimators (MCV, collision, compression) sit near
// 1 bit on a balanced-but-autocorrelated stream — the certification
// face of the paper's Fig. 7 overestimate — while the Markov and
// predictor estimators track the exact conditional entropy from above
// far more tightly; the suite minimum is what keeps the reported bound
// sound.
//
// The same entry point serves online: internal/entropyd shards
// periodically assess their raw bits in the health lifecycle and can
// quarantine on a low bound (like a tot or thermal alarm), cmd/trngd
// exposes the latest per-shard reports on /assess and as Prometheus
// gauges, and cmd/ea assesses raw-bit files offline.
package sp90b

import (
	"fmt"
	"math"
	"strings"
)

// z99 is Z_{0.995}, the normal quantile behind the standard's 99%
// confidence bounds (SP 800-90B §6.3, constant 2.576 in the text).
const z99 = 2.5758293035489004

// MinBits is the smallest input Assess accepts. The standard wants one
// million samples; the floor here is what the estimator internals need
// to be well-posed at all (the compression estimator must keep data
// beyond its 1000-block dictionary, the largest MultiMCW window is 4095
// samples). Bounds from short inputs are statistically weak — they are
// still bounds, just loose ones.
const MinBits = 10000

// Estimator names as they appear in Report.Estimates, in suite order.
const (
	NameMCV         = "mcv"
	NameCollision   = "collision"
	NameMarkov      = "markov"
	NameCompression = "compression"
	NameTTuple      = "t-tuple"
	NameLRS         = "lrs"
	NameMultiMCW    = "multimcw"
	NameLag         = "lag"
	NameMultiMMC    = "multimmc"
	NameLZ78Y       = "lz78y"
)

// Estimate is one estimator's verdict.
type Estimate struct {
	// Name identifies the estimator (Name* constants).
	Name string `json:"name"`
	// MinEntropy is the 99% lower confidence bound on the per-bit
	// min-entropy, in [0, 1].
	MinEntropy float64 `json:"min_entropy"`
	// P is the probability bound the entropy was derived from
	// (MinEntropy = −log2(P)).
	P float64 `json:"p"`
	// Detail carries the estimator's key intermediate quantities.
	Detail string `json:"detail,omitempty"`
}

// Report is the outcome of one assessment.
type Report struct {
	// Bits is the number of input bits assessed.
	Bits int `json:"bits"`
	// Estimates holds one entry per estimator, in suite order.
	Estimates []Estimate `json:"estimates"`
	// MinEntropy is the suite verdict: the minimum over Estimates, the
	// value §3.1.3 takes forward as the initial entropy estimate.
	MinEntropy float64 `json:"min_entropy"`
}

// Estimate returns the named estimator's entry.
func (r Report) Estimate(name string) (Estimate, bool) {
	for _, e := range r.Estimates {
		if e.Name == name {
			return e, true
		}
	}
	return Estimate{}, false
}

// Table renders the per-estimator table.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SP 800-90B non-IID assessment over %d bits\n", r.Bits)
	fmt.Fprintf(&b, "%-12s %12s   %s\n", "estimator", "min-entropy", "detail")
	for _, e := range r.Estimates {
		fmt.Fprintf(&b, "%-12s %12.6f   %s\n", e.Name, e.MinEntropy, e.Detail)
	}
	fmt.Fprintf(&b, "%-12s %12.6f\n", "SUITE MIN", r.MinEntropy)
	return b.String()
}

// Assess runs the full §6.3 non-IID suite on a binary sequence (one
// bit per byte, only the LSB is read) and returns the per-estimator
// table plus the suite minimum. It fails only on inputs shorter than
// MinBits; the estimators themselves always produce a bound.
//
// The t-tuple/LRS scan is capped at tuple length 4096 — far beyond
// anything a live source produces, but it keeps the assessment
// O(L·log L) even on degenerate near-constant inputs where the
// standard's unbounded scan would be quadratic (such inputs bottom out
// through MCV and the predictors anyway).
func Assess(bits []byte) (Report, error) {
	if len(bits) < MinBits {
		return Report{}, fmt.Errorf("sp90b: need at least %d bits, got %d", MinBits, len(bits))
	}
	// Normalize to clean 0/1 so the estimators can index and compare
	// without masking in their hot loops.
	b := make([]byte, len(bits))
	for i, v := range bits {
		b[i] = v & 1
	}
	r := Report{Bits: len(b)}
	r.Estimates = append(r.Estimates, mostCommonValue(b))
	r.Estimates = append(r.Estimates, collision(b))
	r.Estimates = append(r.Estimates, markov(b))
	r.Estimates = append(r.Estimates, compression(b))
	tt, lrs := tupleEstimates(b, tupleCutoff, maxTupleLen)
	r.Estimates = append(r.Estimates, tt, lrs)
	r.Estimates = append(r.Estimates, multiMCW(b))
	r.Estimates = append(r.Estimates, lagPredictor(b))
	r.Estimates = append(r.Estimates, multiMMC(b))
	r.Estimates = append(r.Estimates, lz78y(b))
	r.MinEntropy = 1
	for _, e := range r.Estimates {
		if e.MinEntropy < r.MinEntropy {
			r.MinEntropy = e.MinEntropy
		}
	}
	return r, nil
}

// upperBound returns the standard's 99% upper confidence bound on an
// observed proportion p over n samples, min(1, p + z99·sqrt(p(1−p)/(n−1))).
func upperBound(p float64, n int) float64 {
	if n < 2 {
		return 1
	}
	u := p + z99*math.Sqrt(p*(1-p)/float64(n-1))
	return math.Min(1, u)
}

// entropyFromP converts a probability bound into min-entropy bits,
// clamped to the binary alphabet's [0, 1] range.
func entropyFromP(p float64) float64 {
	if p >= 1 {
		return 0
	}
	h := -math.Log2(p)
	if h > 1 {
		return 1
	}
	return h
}

// clampP keeps derived probability bounds inside the binary-source
// range [1/2, 1] before entropy conversion (an estimator's inversion
// can land below 1/2 on noisy statistics; entropy is capped at 1 bit).
func clampP(p float64) float64 {
	if p < 0.5 {
		return 0.5
	}
	if p > 1 {
		return 1
	}
	return p
}
