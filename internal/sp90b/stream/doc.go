// Package stream runs the cheap half of the SP 800-90B non-IID
// estimator suite as CONTINUOUS sliding-window scoreboards over a raw
// bit stream: the most-common-value estimate (§6.3.1), the Markov
// estimate (§6.3.3) and all four predictors — MultiMCW (§6.3.7), Lag
// (§6.3.8), MultiMMC (§6.3.9), LZ78Y (§6.3.10) — each maintained
// incrementally at O(1) amortized cost per bit, exposing a live
// min-entropy lower bound over the most recent Window bits at every
// position of the stream.
//
// The batch suite (sp90b.Assess) is a periodic verdict: a shard copies
// a sample aside, runs the ten estimators, and publishes one report —
// detection latency for an entropy-class degradation is a whole sample
// plus the collection cadence. The streaming tracker turns the same
// estimators into a time series: the bound moves with every pushed
// bit, so a low-watermark trigger fires MID-window, the moment the
// trailing bits first assess below threshold, instead of at the next
// sample boundary. The suffix-array estimators the suite also contains
// (collision, compression, t-tuple, LRS) have no cheap incremental
// form and remain the batch "deep pass"; on the degraded,
// autocorrelated streams the repository's attack catalog produces they
// are not the binding bound — the Markov and predictor estimates are
// (see the sp90b package comment) — so the streaming minimum tracks
// the batch suite minimum exactly where it matters.
//
// # Mechanics
//
// The tracker keeps a ring of the last Window bits.
//
//   - MCV and Markov are TRUE sliding windows, exact at every
//     position: the one-bit count and the 2×2 transition-count matrix
//     are updated by evicting the bit (and the transition) that leaves
//     the window and adding the one that enters. The estimates are
//     computed from the counts through the exported count-level
//     kernels (sp90b.MCVEstimate, sp90b.MarkovEstimate).
//   - The four predictors are inherently sequential (scoreboards carry
//     prediction history), so they cannot slide by eviction. Instead
//     the tracker runs Panes staggered replicas of each predictor,
//     pane k starting at bit k·(Window/Panes); every pane replays the
//     batch loop bit-for-bit over its Window bits and, at completion,
//     its window IS the trailing Window bits of the stream — the four
//     tallies are converted through sp90b.PredictorEstimate, cached as
//     the live predictor estimates, and the pane restarts at the
//     current position. Predictor estimates therefore refresh every
//     Window/Panes bits and are at most that many bits stale.
//
// # Equivalence contract
//
// The streaming scoreboards are not approximations: on a freshly
// filled window they reproduce the batch suite EXACTLY, per estimator.
// Concretely, whenever Total() == Window + m·(Window/Panes) for any
// m ≥ 0, the six estimates returned by Report() are bit-identical —
// MinEntropy, P and Detail — to the corresponding entries of
// sp90b.Assess over the most recent Window bits of the pushed stream
// (for MCV and Markov this holds at EVERY position once the window is
// full, not just at pane boundaries). The contract is pinned per
// estimator by TestWindowBoundaryEquivalence, and it is what makes the
// live bound trustworthy: a watermark crossing is the batch suite's
// own verdict, delivered mid-window.
package stream
