package stream_test

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sp90b"
	"repro/internal/sp90b/stream"
)

// uniformBits returns n deterministic unbiased PRNG bits.
func uniformBits(seed uint64, n int) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	var w uint64
	for i := range bits {
		if i%64 == 0 {
			w = src.Uint64()
		}
		bits[i] = byte(w & 1)
		w >>= 1
	}
	return bits
}

// biasedBits returns bits with P(1) = p, independent.
func biasedBits(seed uint64, n int, p float64) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	for i := range bits {
		if src.Float64() < p {
			bits[i] = 1
		}
	}
	return bits
}

// markovBits returns a lag-1 correlated stream: each bit repeats the
// previous one with probability stay.
func markovBits(seed uint64, n int, stay float64) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	bits[0] = byte(src.Uint64() & 1)
	for i := 1; i < n; i++ {
		if src.Float64() < stay {
			bits[i] = bits[i-1]
		} else {
			bits[i] = 1 - bits[i-1]
		}
	}
	return bits
}

// batchByName returns the named estimate from a batch Assess report.
func batchByName(t *testing.T, r sp90b.Report, name string) sp90b.Estimate {
	t.Helper()
	for _, e := range r.Estimates {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("batch report has no %q estimate", name)
	return sp90b.Estimate{}
}

// requireEqual pins a streaming estimate bit-identical to its batch
// counterpart: same MinEntropy, P, and Detail, not approximately equal.
func requireEqual(t *testing.T, where string, got, want sp90b.Estimate) {
	t.Helper()
	if got.Name != want.Name || got.MinEntropy != want.MinEntropy ||
		got.P != want.P || got.Detail != want.Detail {
		t.Errorf("%s: %s diverges from batch:\n  stream: h=%v p=%v %q\n  batch:  h=%v p=%v %q",
			where, want.Name, got.MinEntropy, got.P, got.Detail,
			want.MinEntropy, want.P, want.Detail)
	}
}

// streamNames are the six estimators the tracker runs, in Report order.
var streamNames = []string{
	sp90b.NameMCV, sp90b.NameMarkov,
	sp90b.NameMultiMCW, sp90b.NameLag, sp90b.NameMultiMMC, sp90b.NameLZ78Y,
}

// TestWindowBoundaryEquivalence is the package's core contract (see
// doc.go): at Total() == Window + m·Stride() the six streaming
// estimates are bit-identical, per estimator, to sp90b.Assess over the
// trailing Window bits — and the sliding MCV/Markov estimates are
// bit-identical at EVERY position once the window is full.
func TestWindowBoundaryEquivalence(t *testing.T) {
	const w = sp90b.MinBits // 10000
	cases := []struct {
		name string
		bits []byte
	}{
		{"uniform", uniformBits(1, w+3*w/4)},
		{"biased-0.70", biasedBits(2, w+3*w/4, 0.70)},
		{"markov-stay-0.75", markovBits(3, w+3*w/4, 0.75)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := stream.New(stream.Config{Window: w, Panes: 4})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Stride() != w/4 {
				t.Fatalf("stride = %d, want %d", tr.Stride(), w/4)
			}
			if _, ok := tr.Report(); ok {
				t.Fatal("Report ok before any bits")
			}

			// Fill the first window minus one bit: still not ready.
			tr.PushBits(tc.bits[:w-1])
			if tr.Ready() {
				t.Fatal("Ready before a full window")
			}
			tr.Push(tc.bits[w-1])
			if !tr.Ready() {
				t.Fatal("not Ready at Total == Window")
			}

			// Boundary m=0: a freshly filled window must reproduce
			// Assess on the same bits exactly, per estimator.
			checkBoundary := func(total int) {
				t.Helper()
				live, ok := tr.Report()
				if !ok {
					t.Fatalf("Report not ok at total %d", total)
				}
				batch, err := sp90b.Assess(tc.bits[total-w : total])
				if err != nil {
					t.Fatal(err)
				}
				for i, name := range streamNames {
					requireEqual(t, tc.name, live.Estimates[i], batchByName(t, batch, name))
				}
				if tr.PredictorBits() != uint64(total) {
					t.Errorf("PredictorBits = %d at boundary %d", tr.PredictorBits(), total)
				}
			}
			checkBoundary(w)

			// Off-boundary positions: MCV and Markov stay exact at
			// every position; the predictors are the cached
			// last-boundary values.
			stride := tr.Stride()
			pushed := w
			checkSliding := func() {
				t.Helper()
				live, _ := tr.Report()
				batch, err := sp90b.Assess(tc.bits[pushed-w : pushed])
				if err != nil {
					t.Fatal(err)
				}
				requireEqual(t, tc.name, live.Estimates[0], batchByName(t, batch, sp90b.NameMCV))
				requireEqual(t, tc.name, live.Estimates[1], batchByName(t, batch, sp90b.NameMarkov))
			}
			for pushed < w+3*stride {
				tr.Push(tc.bits[pushed])
				pushed++
				if pushed%stride == 0 {
					checkBoundary(pushed)
				} else if pushed%137 == 0 {
					checkSliding()
				}
			}
		})
	}
}

// TestReset pins that a reset tracker replays exactly like a fresh one.
func TestReset(t *testing.T) {
	const w = sp90b.MinBits
	bits := markovBits(7, w, 0.6)
	tr, err := stream.New(stream.Config{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	tr.PushBits(uniformBits(8, w/2+17)) // partial window of unrelated bits
	tr.Reset()
	if tr.Total() != 0 || tr.Ready() {
		t.Fatal("Reset did not rewind the tracker")
	}
	tr.PushBits(bits)
	fresh, err := stream.New(stream.Config{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	fresh.PushBits(bits)
	a, okA := tr.Report()
	b, okB := fresh.Report()
	if !okA || !okB {
		t.Fatal("reports not ready after a full window")
	}
	for i := range a.Estimates {
		requireEqual(t, "reset-vs-fresh", a.Estimates[i], b.Estimates[i])
	}
	if a.MinEntropy != b.MinEntropy {
		t.Fatalf("suite minimum diverges: %v vs %v", a.MinEntropy, b.MinEntropy)
	}
}

// TestMinEntropyIsSuiteMinimum checks the suite minimum plumbing and
// that the live bound reacts to a degraded stream.
func TestMinEntropyIsSuiteMinimum(t *testing.T) {
	const w = sp90b.MinBits
	tr, err := stream.New(stream.Config{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	tr.PushBits(markovBits(11, w, 0.9))
	r, ok := tr.Report()
	if !ok {
		t.Fatal("not ready")
	}
	min, _ := tr.MinEntropy()
	if min != r.MinEntropy {
		t.Fatalf("MinEntropy %v != report minimum %v", min, r.MinEntropy)
	}
	for _, e := range r.Estimates {
		if e.MinEntropy < r.MinEntropy {
			t.Fatalf("estimate %s (%v) below the reported minimum %v", e.Name, e.MinEntropy, r.MinEntropy)
		}
	}
	if r.MinEntropy > 0.6 {
		t.Fatalf("stay-0.9 stream assessed at %v; the live bound is not reacting", r.MinEntropy)
	}
}

// TestNewValidation pins the config error paths.
func TestNewValidation(t *testing.T) {
	if _, err := stream.New(stream.Config{Window: sp90b.MinBits - 1}); err == nil {
		t.Error("window below MinBits accepted")
	}
	if _, err := stream.New(stream.Config{Window: sp90b.MinBits, Panes: 3}); err == nil {
		t.Error("panes not dividing window accepted")
	}
	if _, err := stream.New(stream.Config{Window: sp90b.MinBits, Panes: -1}); err == nil {
		t.Error("negative panes accepted")
	}
	tr, err := stream.New(stream.Config{Window: 16384})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Window() != 16384 || tr.Stride() != 4096 {
		t.Errorf("window/stride = %d/%d, want 16384/4096", tr.Window(), tr.Stride())
	}
}

// BenchmarkStreamPerBit measures the amortized per-bit surveillance
// cost with the default 4 panes (ns/op IS ns/bit).
func BenchmarkStreamPerBit(b *testing.B) {
	const w = sp90b.MinBits
	tr, err := stream.New(stream.Config{Window: w})
	if err != nil {
		b.Fatal(err)
	}
	bits := uniformBits(42, 1<<16)
	tr.PushBits(bits[:w]) // warm: all panes active, window full
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		tr.Push(bits[i&(1<<16-1)])
	}
}
