package stream

import (
	"fmt"

	"repro/internal/sp90b"
)

// Config parameterizes a Tracker.
type Config struct {
	// Window is the sliding-window size W in bits (minimum
	// sp90b.MinBits, so every windowed estimate is as well-posed as a
	// batch assessment of the same size).
	Window int
	// Panes is the number of staggered predictor panes (default 4).
	// It must divide Window; predictor estimates refresh every
	// Window/Panes bits, at the memory cost of one predictor state set
	// (~2 MiB, dominated by the MultiMMC and LZ78Y count tables) per
	// pane.
	Panes int
}

// Tracker is the streaming surveillance state over one raw bit
// stream. It is single-writer: Push/PushBits/Report/Reset must be
// called from one goroutine at a time (in entropyd that is the
// shard's owner goroutine, exactly like the batch collector).
type Tracker struct {
	w      int
	panes  int
	stride int

	ring  []byte // last bits, capacity a power of two > w
	mask  uint64
	total uint64 // bits pushed since construction/Reset

	// Sliding MCV/Markov counts over the trailing w bits.
	ones int64
	cnt  [2][2]int64
	prev byte // bit at total-1 (valid once total > 0)

	pane []*pane

	// Cached predictor estimates from the most recently completed
	// pane, in suite order (multimcw, lag, multimmc, lz78y), and the
	// Total() at which that pane completed.
	pred   [4]sp90b.Estimate
	predAt uint64
}

// New builds a tracker. The zero Panes defaults to 4.
func New(cfg Config) (*Tracker, error) {
	if cfg.Window < sp90b.MinBits {
		return nil, fmt.Errorf("stream: window %d below sp90b.MinBits (%d)", cfg.Window, sp90b.MinBits)
	}
	if cfg.Panes == 0 {
		cfg.Panes = 4
	}
	if cfg.Panes < 1 || cfg.Window%cfg.Panes != 0 {
		return nil, fmt.Errorf("stream: panes %d must be >= 1 and divide the window (%d)", cfg.Panes, cfg.Window)
	}
	t := &Tracker{w: cfg.Window, panes: cfg.Panes, stride: cfg.Window / cfg.Panes}
	// Power-of-two ring strictly larger than the window: eviction
	// reads position total-w while the panes look back at most 4095
	// bits, so capacity w+1 suffices and the round-up buys mask
	// indexing on the hot path.
	n := 1
	for n <= t.w {
		n <<= 1
	}
	t.ring = make([]byte, n)
	t.mask = uint64(n - 1)
	t.pane = make([]*pane, cfg.Panes)
	for k := range t.pane {
		t.pane[k] = newPane(uint64(k) * uint64(t.stride))
	}
	return t, nil
}

// at reads the pushed bit at global stream position pos. Valid for
// the most recent ring-capacity positions (callers stay within the
// last w).
func (t *Tracker) at(pos uint64) byte { return t.ring[pos&t.mask] }

// Window returns the configured window size W.
func (t *Tracker) Window() int { return t.w }

// Stride returns the pane stagger W/Panes: the refresh cadence of the
// predictor estimates.
func (t *Tracker) Stride() int { return t.stride }

// Total returns the bits pushed since construction or Reset.
func (t *Tracker) Total() uint64 { return t.total }

// Ready reports whether a full window has been observed: the first
// pane completes exactly when Total() == Window, which is also when
// the sliding MCV/Markov counts first cover a whole window.
func (t *Tracker) Ready() bool { return t.total >= uint64(t.w) }

// PredictorBits returns the Total() at which the predictor estimates
// were last refreshed (their window is the w bits ending there); 0
// before the first pane completion.
func (t *Tracker) PredictorBits() uint64 { return t.predAt }

// Push advances the tracker by one raw bit (only the LSB is read,
// like sp90b.Assess).
func (t *Tracker) Push(bit byte) {
	b := bit & 1
	pos := t.total
	w := uint64(t.w)
	if pos >= w {
		// Evict the bit leaving the window and the transition
		// (s[pos-w], s[pos-w+1]); together with the additions below
		// this keeps ones/cnt equal to a batch count over the
		// trailing w bits at every position.
		old := t.at(pos - w)
		t.ones -= int64(old)
		t.cnt[old][t.at(pos-w+1)]--
	}
	for _, p := range t.pane {
		if pos >= p.start {
			p.push(t, b, pos)
		}
	}
	t.ring[pos&t.mask] = b
	t.ones += int64(b)
	if pos >= 1 {
		t.cnt[t.prev][b]++
	}
	t.prev = b
	t.total = pos + 1
	for _, p := range t.pane {
		if p.i == t.w {
			// Pane completion: its w bits are exactly the trailing w
			// bits of the stream, so its tallies are the batch
			// predictors' tallies over the current window.
			t.pred[0] = sp90b.PredictorEstimate(sp90b.NameMultiMCW, p.mcwTally)
			t.pred[1] = sp90b.PredictorEstimate(sp90b.NameLag, p.lagTally)
			t.pred[2] = sp90b.PredictorEstimate(sp90b.NameMultiMMC, p.mmcTally)
			t.pred[3] = sp90b.PredictorEstimate(sp90b.NameLZ78Y, p.lzTally)
			t.predAt = t.total
			p.reset(t.total)
		}
	}
}

// PushBits pushes a chunk of bits (one bit per byte, LSB read).
func (t *Tracker) PushBits(bits []byte) {
	for _, b := range bits {
		t.Push(b)
	}
}

// Report assembles the live six-estimator report over the trailing
// window: MCV and Markov from the sliding counts (current to the last
// pushed bit), the four predictors from the last completed pane (at
// most Stride() bits stale), in suite order, with MinEntropy the
// minimum over the six. It returns ok == false until Ready().
func (t *Tracker) Report() (sp90b.Report, bool) {
	if !t.Ready() {
		return sp90b.Report{}, false
	}
	n := t.w
	mode := int(t.ones)
	if n-mode > mode {
		mode = n - mode
	}
	r := sp90b.Report{Bits: n, Estimates: make([]sp90b.Estimate, 0, 6)}
	r.Estimates = append(r.Estimates, sp90b.MCVEstimate(mode, n), sp90b.MarkovEstimate(n, t.ones, &t.cnt))
	r.Estimates = append(r.Estimates, t.pred[:]...)
	r.MinEntropy = 1
	for _, e := range r.Estimates {
		if e.MinEntropy < r.MinEntropy {
			r.MinEntropy = e.MinEntropy
		}
	}
	return r, true
}

// MinEntropy returns the live suite minimum (ok == false before
// Ready()).
func (t *Tracker) MinEntropy() (float64, bool) {
	r, ok := t.Report()
	return r.MinEntropy, ok
}

// Reset discards all window state (entropyd calls it on
// recalibration: a new epoch is a different source build, so its
// window must not mix with the old one). Ring contents need no
// clearing — every read is guarded to positions already pushed since
// the reset.
func (t *Tracker) Reset() {
	t.total, t.ones, t.prev = 0, 0, 0
	t.cnt = [2][2]int64{}
	t.pred = [4]sp90b.Estimate{}
	t.predAt = 0
	for k, p := range t.pane {
		p.reset(uint64(k) * uint64(t.stride))
	}
}
