package stream

import "repro/internal/sp90b"

// Predictor parameters, mirrored from the batch suite (§6.3.7–6.3.10;
// see internal/sp90b/predictors.go). The window-boundary equivalence
// tests pin the mirror: a pane with these constants reproduces the
// batch predictors' tallies bit-for-bit.
const (
	mcwFirst  = 63 // smallest MultiMCW window: the warm-up prefix
	lagDepth  = 128
	mmcDepth  = 16
	lzDepth   = 16
	lzMaxDict = 65536
)

// mcwWindows are the §6.3.7 MultiMCW window sizes.
var mcwWindows = [4]int{63, 255, 1023, 4095}

// binCounts is the flat transition-count store of the batch
// predictors (binary contexts of depths 1..maxDepth, two successor
// counters each); ~1 MiB at depth 16.
type binCounts struct {
	lvl [][]int32
}

func newBinCounts(maxDepth int) *binCounts {
	b := &binCounts{lvl: make([][]int32, maxDepth+1)}
	for d := 1; d <= maxDepth; d++ {
		b.lvl[d] = make([]int32, 1<<uint(d+1))
	}
	return b
}

// at returns the two successor counters of a depth-d context.
func (b *binCounts) at(d int, ctx uint32) []int32 {
	return b.lvl[d][2*ctx : 2*ctx+2]
}

// clearCounts zeroes every level (compiles to memclr per level).
func (b *binCounts) clearCounts() {
	for d := 1; d < len(b.lvl); d++ {
		clear(b.lvl[d])
	}
}

// pane is one staggered replica of the four batch predictors: it
// replays their loops bit-for-bit over a window of w bits starting at
// global stream position start. Local index i corresponds to global
// position start+i, so lookbacks s[i-d] are tracker ring reads at
// pos-d (d ≤ 4095 < w, always inside the ring).
type pane struct {
	start uint64 // global position of local index 0
	i     int    // bits processed so far
	last  byte   // s[i-1] (valid once i > 0)

	// MultiMCW (§6.3.7): four sliding-window mode subpredictors.
	mcwOnes   [4]int
	mcwScore  [4]int
	mcwWinner int
	mcwTally  sp90b.Tally

	// Lag (§6.3.8): subpredictor d repeats the sample d steps back.
	lagScore  [lagDepth]int
	lagWinner int // lag winner+1
	lagTally  sp90b.Tally

	// MultiMMC (§6.3.9): Markov chains of order 1..16.
	mmc       *binCounts
	mmcScore  [mmcDepth]int
	mmcWinner int // depth winner+1
	mmcWin    uint32
	mmcTally  sp90b.Tally

	// LZ78Y (§6.3.10): bounded context dictionary to depth 16.
	lz        *binCounts
	lzEntries int
	lzWin     uint32
	lzTally   sp90b.Tally
}

func newPane(start uint64) *pane {
	return &pane{start: start, mmc: newBinCounts(mmcDepth), lz: newBinCounts(lzDepth)}
}

// reset rewinds the pane to an empty window starting at the given
// global position, reusing (and zeroing) the count tables.
func (p *pane) reset(start uint64) {
	mmc, lz := p.mmc, p.lz
	*p = pane{start: start, mmc: mmc, lz: lz}
	mmc.clearCounts()
	lz.clearCounts()
}

// mmcPredict is the batch multiMMC per-depth prediction at local
// index i (contexts end at s[i-1], already folded into mmcWin).
func (p *pane) mmcPredict(d, i int) int8 {
	if i < d {
		return -1
	}
	c := p.mmc.at(d, p.mmcWin&(1<<uint(d)-1))
	if c[0] == 0 && c[1] == 0 {
		return -1
	}
	if c[1] > c[0] {
		return 1
	}
	return 0
}

// push advances every subpredictor by one bit: b is the pane's local
// sample s[i], pos its global stream position (pos = start+i).
func (p *pane) push(t *Tracker, b byte, pos uint64) {
	i := p.i
	p.i = i + 1

	// MultiMCW: warm-up prefix feeds all four window counters; from
	// i = 63 on, predict, score, then slide the windows.
	if i < mcwFirst {
		for j := range mcwWindows {
			p.mcwOnes[j] += int(b)
		}
	} else {
		var pred [4]int8
		for j, w := range mcwWindows {
			if i < w {
				pred[j] = -1
				continue
			}
			c1 := p.mcwOnes[j]
			switch c0 := w - c1; {
			case c1 > c0:
				pred[j] = 1
			case c0 > c1:
				pred[j] = 0
			default:
				pred[j] = int8(p.last)
			}
		}
		p.mcwTally.Record(pred[p.mcwWinner] == int8(b))
		for j := range mcwWindows {
			if pred[j] == int8(b) {
				p.mcwScore[j]++
				if p.mcwScore[j] > p.mcwScore[p.mcwWinner] {
					p.mcwWinner = j
				}
			}
		}
		for j, w := range mcwWindows {
			if i >= w {
				p.mcwOnes[j] -= int(t.at(pos - uint64(w)))
			}
			p.mcwOnes[j] += int(b)
		}
	}

	if i >= 1 {
		// Lag.
		if i > p.lagWinner {
			p.lagTally.Record(t.at(pos-uint64(p.lagWinner)-1) == b)
		} else {
			p.lagTally.Record(false)
		}
		dMax := lagDepth
		if i < dMax {
			dMax = i
		}
		for d := 1; d <= dMax; d++ {
			if t.at(pos-uint64(d)) == b {
				p.lagScore[d-1]++
				if p.lagScore[d-1] > p.lagScore[p.lagWinner] {
					p.lagWinner = d - 1
				}
			}
		}

		// MultiMMC: contexts at step i end at s[i-1].
		p.mmcWin = p.mmcWin<<1 | uint32(p.last)
		if i >= 2 {
			p.mmcTally.Record(p.mmcPredict(p.mmcWinner+1, i) == int8(b))
			for d := 1; d <= mmcDepth && d <= i; d++ {
				if p.mmcPredict(d, i) == int8(b) {
					p.mmcScore[d-1]++
					if p.mmcScore[d-1] > p.mmcScore[p.mmcWinner] {
						p.mmcWinner = d - 1
					}
				}
			}
		}
		for d := 1; d <= mmcDepth && d <= i; d++ {
			p.mmc.at(d, p.mmcWin&(1<<uint(d)-1))[b]++
		}

		// LZ78Y: win carries the lzDepth+1 bits ending at s[i-1];
		// prediction begins once the first full context has been seen.
		p.lzWin = p.lzWin<<1 | uint32(p.last)
		if i >= lzDepth+1 {
			// Update: contexts ending at s[i-2] observe s[i-1].
			prev := p.lzWin >> 1
			for j := lzDepth; j >= 1; j-- {
				c := p.lz.at(j, prev&(1<<uint(j)-1))
				if c[0] != 0 || c[1] != 0 {
					c[p.last]++
				} else if p.lzEntries < lzMaxDict {
					c[p.last] = 1
					p.lzEntries++
				}
			}
			// Predict s[i] from contexts ending at s[i-1], longest
			// context winning ties.
			pred := int8(-1)
			var maxCount int32
			for j := lzDepth; j >= 1; j-- {
				c := p.lz.at(j, p.lzWin&(1<<uint(j)-1))
				if c[0] == 0 && c[1] == 0 {
					continue
				}
				y, cy := int8(0), c[0]
				if c[1] > c[0] {
					y, cy = 1, c[1]
				}
				if cy > maxCount {
					maxCount = cy
					pred = y
				}
			}
			p.lzTally.Record(pred == int8(b))
		}
	}

	p.last = b
}
