package sp90b

import (
	"fmt"
	"math"
)

// Tally accumulates a predictor's performance: prediction count,
// correct count, and the longest run of correct predictions. It is
// exported for sp90b/stream, whose pane replicas of the four
// predictors score their predictions with the identical bookkeeping.
type Tally struct {
	N, Correct, Run, MaxRun int
}

// Record scores one prediction.
func (t *Tally) Record(ok bool) {
	t.N++
	if ok {
		t.Correct++
		t.Run++
		if t.Run > t.MaxRun {
			t.MaxRun = t.Run
		}
	} else {
		t.Run = 0
	}
}

// PredictorEstimate is the count-level §6.3.7–6.3.10 kernel: it turns
// a predictor tally into the entropy bound — the max of the 99% upper
// bound on the global hit rate and the local bound derived from the
// longest run of correct predictions. name must be one of the
// predictor Name* constants. Shared by the batch predictors and the
// streaming pane scoreboards (sp90b/stream), so equal tallies yield
// bit-identical estimates.
func PredictorEstimate(name string, t Tally) Estimate {
	if t.N < 2 {
		return Estimate{Name: name, MinEntropy: 1, P: 0.5, Detail: "input too short to predict"}
	}
	var pGlobal float64
	if t.Correct == 0 {
		pGlobal = 1 - math.Pow(0.01, 1/float64(t.N))
	} else {
		pGlobal = upperBound(float64(t.Correct)/float64(t.N), t.N)
	}
	pLocal := localBound(t.MaxRun+1, t.N)
	p := clampP(math.Max(pGlobal, pLocal))
	return Estimate{
		Name:       name,
		MinEntropy: entropyFromP(p),
		P:          p,
		Detail: fmt.Sprintf("C=%d/%d, maxrun=%d, p_g=%.4f, p_l=%.4f",
			t.Correct, t.N, t.MaxRun, pGlobal, pLocal),
	}
}

// localBound solves the standard's longest-run equation: the per-trial
// success probability p at which the chance of seeing NO run of length
// r in n trials is exactly 0.99 (so p is a 99% upper bound given the
// observed longest run r−1). The no-run probability is
//
//	α = (1 − p·x) / ((r + 1 − r·x) · q · x^{n+1}),
//
// with q = 1−p and x the root of 1 − x + q·pʳ·x^{r+1} = 0 near 1,
// evaluated in logs (x^{n+1} overflows for the n of real streams).
func localBound(r, n int) float64 {
	logAlpha := func(p float64) float64 {
		q := 1 - p
		// Fixed-point iteration for x; converges in a handful of
		// steps since q·pʳ ≪ 1 for the p range that matters.
		x := 1.0
		for i := 0; i < 32; i++ {
			t := q * math.Pow(p, float64(r)) * math.Pow(x, float64(r+1))
			nx := 1 + t
			if nx >= 1+1/float64(r) {
				// Leaving the root's basin: a run is essentially
				// certain, α ≈ 0.
				return math.Inf(-1)
			}
			if math.Abs(nx-x) < 1e-15 {
				x = nx
				break
			}
			x = nx
		}
		num := 1 - p*x
		den := float64(r+1) - float64(r)*x
		if num <= 0 || den <= 0 || q <= 0 {
			return math.Inf(-1)
		}
		return math.Log(num) - math.Log(den*q) - float64(n+1)*math.Log(x)
	}
	target := math.Log(0.99)
	lo, hi := 0.0, 1.0
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if logAlpha(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// mcwWindows are the §6.3.7 MultiMCW window sizes. All are odd, so a
// binary mode tie cannot occur; the most-recent-value tie-break is
// kept for form.
var mcwWindows = [4]int{63, 255, 1023, 4095}

// multiMCW is the §6.3.7 Multi Most Common in Window predictor: four
// sliding-window mode subpredictors behind a scoreboard that always
// speaks with its best performer so far.
func multiMCW(s []byte) Estimate {
	n := len(s)
	first := mcwWindows[0]
	if n <= first+1 {
		return Estimate{Name: NameMultiMCW, MinEntropy: 1, P: 0.5, Detail: "input too short to predict"}
	}
	var ones, score [4]int
	for i := 0; i < first; i++ {
		for j := range mcwWindows {
			ones[j] += int(s[i])
		}
	}
	winner := 0
	var tally Tally
	for i := first; i < n; i++ {
		var pred [4]int8
		for j, w := range mcwWindows {
			if i < w {
				pred[j] = -1
				continue
			}
			c1 := ones[j]
			switch c0 := w - c1; {
			case c1 > c0:
				pred[j] = 1
			case c0 > c1:
				pred[j] = 0
			default:
				pred[j] = int8(s[i-1])
			}
		}
		tally.Record(pred[winner] == int8(s[i]))
		for j := range mcwWindows {
			if pred[j] == int8(s[i]) {
				score[j]++
				if score[j] > score[winner] {
					winner = j
				}
			}
		}
		for j, w := range mcwWindows {
			if i >= w {
				ones[j] -= int(s[i-w])
			}
			ones[j] += int(s[i])
		}
	}
	return PredictorEstimate(NameMultiMCW, tally)
}

// lagDepth is the §6.3.8 number of lag subpredictors.
const lagDepth = 128

// lagPredictor is the §6.3.8 Lag predictor: subpredictor d repeats the
// sample d steps back, catching periodic structure.
func lagPredictor(s []byte) Estimate {
	n := len(s)
	var score [lagDepth]int
	winner := 0 // lag winner+1
	var tally Tally
	for i := 1; i < n; i++ {
		if i > winner {
			tally.Record(s[i-winner-1] == s[i])
		} else {
			tally.Record(false)
		}
		dMax := lagDepth
		if i < dMax {
			dMax = i
		}
		for d := 1; d <= dMax; d++ {
			if s[i-d] == s[i] {
				score[d-1]++
				if score[d-1] > score[winner] {
					winner = d - 1
				}
			}
		}
	}
	return PredictorEstimate(NameLag, tally)
}

// mmcDepth is the §6.3.9 maximum Markov-chain order.
const mmcDepth = 16

// binCounts is a flat transition-count store for binary contexts of
// depths 1..maxDepth: level d holds 2^d contexts × 2 successor
// counters. The context key packs the last d bits with the most recent
// bit least significant — bijective per depth, which is all a
// dictionary key needs. Total footprint for depth 16: 1 MiB.
type binCounts struct {
	lvl [][]int32
}

func newBinCounts(maxDepth int) *binCounts {
	b := &binCounts{lvl: make([][]int32, maxDepth+1)}
	for d := 1; d <= maxDepth; d++ {
		b.lvl[d] = make([]int32, 1<<uint(d+1))
	}
	return b
}

// at returns the two successor counters of a depth-d context.
func (b *binCounts) at(d int, ctx uint32) []int32 {
	return b.lvl[d][2*ctx : 2*ctx+2]
}

// multiMMC is the §6.3.9 Multi Markov Model with Counting predictor:
// Markov chains of order 1..16 behind the scoreboard, each predicting
// the most seen successor of its current context. (The standard caps
// each model at 100000 tracked contexts; binary contexts top out at
// 2^16, so the cap never binds here.)
func multiMMC(s []byte) Estimate {
	n := len(s)
	counts := newBinCounts(mmcDepth)
	var score [mmcDepth]int
	winner := 0 // depth winner+1
	var tally Tally
	var win uint32 // last mmcDepth bits, most recent least significant
	predict := func(d, i int) int8 {
		if i < d {
			return -1
		}
		c := counts.at(d, win&(1<<uint(d)-1))
		if c[0] == 0 && c[1] == 0 {
			return -1
		}
		if c[1] > c[0] {
			return 1
		}
		return 0
	}
	for i := 1; i < n; i++ {
		win = win<<1 | uint32(s[i-1]) // contexts at step i end at s[i-1]
		if i >= 2 {
			tally.Record(predict(winner+1, i) == int8(s[i]))
			for d := 1; d <= mmcDepth && d <= i; d++ {
				if predict(d, i) == int8(s[i]) {
					score[d-1]++
					if score[d-1] > score[winner] {
						winner = d - 1
					}
				}
			}
		}
		for d := 1; d <= mmcDepth && d <= i; d++ {
			counts.at(d, win&(1<<uint(d)-1))[s[i]]++
		}
	}
	return PredictorEstimate(NameMultiMMC, tally)
}

// LZ78Y parameters (§6.3.10).
const (
	lzDepth   = 16
	lzMaxDict = 65536
)

// lz78y is the §6.3.10 LZ78Y predictor: a bounded dictionary of
// contexts up to 16 bits, each predicting its most seen successor; the
// per-step prediction is the successor with the highest count over all
// matching context lengths, longest context winning ties.
func lz78y(s []byte) Estimate {
	n := len(s)
	if n < lzDepth+3 {
		return Estimate{Name: NameLZ78Y, MinEntropy: 1, P: 0.5, Detail: "input too short to predict"}
	}
	dict := newBinCounts(lzDepth)
	entries := 0
	var tally Tally
	var win uint32 // last lzDepth+1 bits ending at s[i-1], most recent least significant
	for i := 1; i < lzDepth+1; i++ {
		win = win<<1 | uint32(s[i-1])
	}
	for i := lzDepth + 1; i < n; i++ {
		win = win<<1 | uint32(s[i-1])
		// Update: contexts ending at s[i-2] observe s[i-1].
		prev := win >> 1
		for j := lzDepth; j >= 1; j-- {
			c := dict.at(j, prev&(1<<uint(j)-1))
			if c[0] != 0 || c[1] != 0 {
				c[s[i-1]]++
			} else if entries < lzMaxDict {
				c[s[i-1]] = 1
				entries++
			}
		}
		// Predict s[i] from contexts ending at s[i-1].
		pred := int8(-1)
		var maxCount int32
		for j := lzDepth; j >= 1; j-- {
			c := dict.at(j, win&(1<<uint(j)-1))
			if c[0] == 0 && c[1] == 0 {
				continue
			}
			y, cy := int8(0), c[0]
			if c[1] > c[0] {
				y, cy = 1, c[1]
			}
			if cy > maxCount {
				maxCount = cy
				pred = y
			}
		}
		tally.Record(pred == int8(s[i]))
	}
	return PredictorEstimate(NameLZ78Y, tally)
}
