package sp90b

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// uniformBits returns n deterministic unbiased PRNG bits.
func uniformBits(seed uint64, n int) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	var w uint64
	for i := range bits {
		if i%64 == 0 {
			w = src.Uint64()
		}
		bits[i] = byte(w & 1)
		w >>= 1
	}
	return bits
}

// biasedBits returns bits with P(1) = p, independent.
func biasedBits(seed uint64, n int, p float64) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	for i := range bits {
		if src.Float64() < p {
			bits[i] = 1
		}
	}
	return bits
}

// markovBits returns a lag-1 correlated stream: each bit repeats the
// previous one with probability stay.
func markovBits(seed uint64, n int, stay float64) []byte {
	src := rng.New(seed)
	bits := make([]byte, n)
	bits[0] = byte(src.Uint64() & 1)
	for i := 1; i < n; i++ {
		if src.Float64() < stay {
			bits[i] = bits[i-1]
		} else {
			bits[i] = 1 - bits[i-1]
		}
	}
	return bits
}

// TestMCVSpecExample pins the §6.3.1 worked example from SP 800-90B:
// S = (0,1,1,2,0,1,2,2,0,1,0,1,1,0,2,2,1,0,2,1) has mode count 8, so
// p̂ = 0.4, p_u = 0.4 + 2.576·sqrt(0.4·0.6/19) = 0.689498 and
// min-entropy −log2(p_u) = 0.536381.
func TestMCVSpecExample(t *testing.T) {
	s := []byte{0, 1, 1, 2, 0, 1, 2, 2, 0, 1, 0, 1, 1, 0, 2, 2, 1, 0, 2, 1}
	e := mostCommonValue(s)
	if got, want := e.P, 0.6894982215; math.Abs(got-want) > 1e-9 {
		t.Fatalf("MCV p_u = %.10f, want %.10f", got, want)
	}
	if got, want := e.MinEntropy, 0.5363812646; math.Abs(got-want) > 1e-9 {
		t.Fatalf("MCV min-entropy = %.10f, want %.10f", got, want)
	}
}

// TestTupleSpecStyleExample pins the §6.3.5/6.3.6 worked example
// sequence S = (2,2,0,1,0,2,0,1,2,1,2,0,1,2,1,0,0,1,0,0,0) with the
// standard's illustration cutoff of 3 in place of 35:
//
//	t-tuple: Q = (9, 4, 3) for t = 1..3, P_max = (3/19)^{1/3} =
//	0.540492, p_u = 0.827532, min-entropy 0.273112;
//	LRS: u = 4, v = 5 (the repeated 5-tuple 2,0,1,2,1), P̂_5 =
//	(1/136)^{1/5} = 0.374362, p_u = 0.653109, min-entropy 0.614604.
func TestTupleSpecStyleExample(t *testing.T) {
	s := []byte{2, 2, 0, 1, 0, 2, 0, 1, 2, 1, 2, 0, 1, 2, 1, 0, 0, 1, 0, 0, 0}
	tt, lrs := tupleEstimates(s, 3, maxTupleLen)
	if got, want := tt.P, 0.8275324891; math.Abs(got-want) > 1e-9 {
		t.Fatalf("t-tuple p_u = %.10f, want %.10f", got, want)
	}
	if got, want := tt.MinEntropy, 0.2731121413; math.Abs(got-want) > 1e-9 {
		t.Fatalf("t-tuple min-entropy = %.10f, want %.10f", got, want)
	}
	if got, want := lrs.P, 0.6531090180; math.Abs(got-want) > 1e-9 {
		t.Fatalf("LRS p_u = %.10f, want %.10f", got, want)
	}
	if got, want := lrs.MinEntropy, 0.6146042660; math.Abs(got-want) > 1e-9 {
		t.Fatalf("LRS min-entropy = %.10f, want %.10f", got, want)
	}
}

// TestMarkovWorkedExample pins a hand-derived §6.3.3 example:
// S = (0,0,1,0,1,1,0,0,1,0) gives P0 = 0.6, P00 = 2/5, P01 = 3/5,
// P10 = 3/4, P11 = 1/4; the most likely 128-bit sequence is the
// alternation starting at 0 with log2-probability
// lg(0.6) + 64·lg(0.6) + 63·lg(0.75) = −74.050126, so the estimate is
// 74.050126/128 = 0.578517 bits.
func TestMarkovWorkedExample(t *testing.T) {
	s := []byte{0, 0, 1, 0, 1, 1, 0, 0, 1, 0}
	e := markov(s)
	if got, want := e.MinEntropy, 0.5785166100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Markov min-entropy = %.10f, want %.10f", got, want)
	}
}

// TestCollisionMeanClosedForm pins the spec's F(1/z)=Γ(3,z)z⁻³eᶻ
// machinery against the elementary closed form: for a binary source
// with max probability p the mean collision time is 2 + 2p(1−p).
func TestCollisionMeanClosedForm(t *testing.T) {
	for p := 0.5; p < 0.999; p += 0.01 {
		want := 2 + 2*p*(1-p)
		if got := collisionMean(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("collisionMean(%.2f) = %.12f, want %.12f", p, got, want)
		}
	}
}

// TestCollisionAgainstBruteWalk cross-checks the two-counter collision
// walk against a literal implementation of the spec's cut-and-restart
// walk on random biased streams.
func TestCollisionAgainstBruteWalk(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		s := biasedBits(seed, 20000, 0.3+0.1*float64(seed))
		var ts []float64
		for i := 0; i+1 < len(s); {
			if s[i] == s[i+1] {
				ts = append(ts, 2)
				i += 2
			} else if i+2 < len(s) {
				ts = append(ts, 3)
				i += 3
			} else {
				break
			}
		}
		v := len(ts)
		var sum float64
		for _, x := range ts {
			sum += x
		}
		mean := sum / float64(v)
		var sum2 float64
		for _, x := range ts {
			sum2 += (x - mean) * (x - mean)
		}
		xBar := mean - z99*math.Sqrt(sum2/float64(v-1))/math.Sqrt(float64(v))

		e := collision(s)
		wantP := 0.5
		if xBar < collisionMean(0.5) {
			lo, hi := 0.5, 1.0
			for i := 0; i < 64; i++ {
				mid := (lo + hi) / 2
				if collisionMean(mid) > xBar {
					lo = mid
				} else {
					hi = mid
				}
			}
			wantP = lo
		}
		if math.Abs(e.P-wantP) > 1e-12 {
			t.Fatalf("seed %d: collision p = %.12f, brute %.12f", seed, e.P, wantP)
		}
	}
}

// TestCollisionDetectsBias: a p = 0.75 source has min-entropy
// −log2(0.75) = 0.415; the collision estimate must land near it and
// never above the MCV bound for the same stream.
func TestCollisionDetectsBias(t *testing.T) {
	s := biasedBits(7, 200000, 0.75)
	e := collision(s)
	if e.MinEntropy < 0.30 || e.MinEntropy > 0.50 {
		t.Fatalf("collision on p=0.75 stream: min-entropy %.4f outside [0.30, 0.50]", e.MinEntropy)
	}
}

// TestCompressionFamilyMaurerExpectation: at the uniform point
// p = 2⁻⁶ the compression family expectation must reproduce Maurer's
// asymptotic statistic for 6-bit blocks, 5.2177052 (the dictionary is
// long past the transient at 1000 blocks).
func TestCompressionFamilyMaurerExpectation(t *testing.T) {
	const nBlocks = 21845
	v := nBlocks - compDictLen
	log2s := make([]float64, nBlocks+1)
	for i := 1; i <= nBlocks; i++ {
		log2s[i] = math.Log2(float64(i))
	}
	got := 64 * compG(1.0/64, nBlocks, v, log2s)
	if math.Abs(got-5.2177052) > 0.02 {
		t.Fatalf("family expectation at uniform = %.6f, want ≈ 5.2177", got)
	}
}

// TestCompressionDegeneratePeriodicStream: a period-9 pattern makes
// every recurrence distance identical, so the statistic's variance is
// zero up to floating-point cancellation; the estimator must clamp
// (not NaN) and report an essentially zero bound, never full entropy.
func TestCompressionDegeneratePeriodicStream(t *testing.T) {
	pattern := []byte{1, 0, 1, 1, 0, 0, 1, 0, 0}
	s := make([]byte, 54000)
	for i := range s {
		s[i] = pattern[i%len(pattern)]
	}
	e := compression(s)
	if math.IsNaN(e.MinEntropy) || e.MinEntropy > 0.1 {
		t.Fatalf("compression on period-9 stream: min-entropy %v (detail %s), want ≈ 0", e.MinEntropy, e.Detail)
	}
	if contains(e.Detail, "NaN") {
		t.Fatalf("NaN leaked into the statistic: %s", e.Detail)
	}
}

// TestUniformStreamFullEntropy: on an unbiased independent stream
// every estimator must report high min-entropy — this is the
// calibration end of the suite (no estimator should punish a good
// source by more than its designed conservatism). The compression
// estimator gets a lower floor: its 99% bound inverts through a steep
// family curve near the uniform point, so even a perfect source scores
// ≈ 0.78 at this length — the standard's own well-known conservatism,
// not an implementation artifact (the raw statistic must still sit at
// Maurer's 5.2177, which TestCompressionFamilyMaurerExpectation and
// the X̄ in the detail string pin).
func TestUniformStreamFullEntropy(t *testing.T) {
	r, err := Assess(uniformBits(42, 200000))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Estimates {
		floor := 0.8
		if e.Name == NameCompression {
			floor = 0.7
		}
		if e.MinEntropy < floor {
			t.Errorf("%s on uniform stream: min-entropy %.4f < %.2f (detail %s)", e.Name, e.MinEntropy, floor, e.Detail)
		}
	}
	if r.MinEntropy < 0.7 {
		t.Fatalf("suite min %.4f < 0.7 on uniform stream", r.MinEntropy)
	}
}

// TestAlternatingStreamPredicted: the deterministic alternation
// 0101… carries zero entropy; the lag, MultiMMC and LZ78Y predictors
// and the Markov estimate must all drive their bounds to ≈ 0, and the
// suite minimum with them — while the bias-only MCV sees a perfectly
// balanced stream and reports ≈ 1 bit, the canonical demonstration of
// why the suite takes the minimum.
func TestAlternatingStreamPredicted(t *testing.T) {
	s := make([]byte, 20000)
	for i := range s {
		s[i] = byte(i & 1)
	}
	r, err := Assess(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameLag, NameMultiMMC, NameLZ78Y, NameMarkov} {
		e, ok := r.Estimate(name)
		if !ok {
			t.Fatalf("missing estimate %s", name)
		}
		if e.MinEntropy > 0.01 {
			t.Errorf("%s on alternating stream: min-entropy %.4f > 0.01", name, e.MinEntropy)
		}
	}
	if mcv, _ := r.Estimate(NameMCV); mcv.MinEntropy < 0.95 {
		t.Errorf("MCV on alternating stream: min-entropy %.4f < 0.95 (bias-only estimator should be blind)", mcv.MinEntropy)
	}
	if r.MinEntropy > 0.01 {
		t.Fatalf("suite min %.4f > 0.01 on deterministic stream", r.MinEntropy)
	}
}

// TestConstantStreamZeroEntropy: an all-zeros input must bottom out at
// (essentially) zero through MCV without the tuple scan going
// quadratic (the maxTupleLen cap).
func TestConstantStreamZeroEntropy(t *testing.T) {
	s := make([]byte, 50000)
	r, err := Assess(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.MinEntropy > 1e-3 {
		t.Fatalf("suite min %.6f > 1e-3 on constant stream", r.MinEntropy)
	}
}

// TestLagCatchesPeriodicity: period-7 patterns defeat the bias and
// tuple views less completely than the lag bank, which must report
// near-zero entropy.
func TestLagCatchesPeriodicity(t *testing.T) {
	pattern := []byte{1, 0, 1, 1, 0, 0, 1}
	s := make([]byte, 30000)
	for i := range s {
		s[i] = pattern[i%len(pattern)]
	}
	e := lagPredictor(s)
	if e.MinEntropy > 0.01 {
		t.Fatalf("lag predictor on period-7 stream: min-entropy %.4f > 0.01", e.MinEntropy)
	}
}

// TestMarkovCatchesCorrelation: a balanced but lag-1 correlated stream
// (stay probability 0.9) has conditional entropy H₂(0.9) = 0.469; the
// Markov estimate must land at or below it while MCV stays near 1.
func TestMarkovCatchesCorrelation(t *testing.T) {
	s := markovBits(11, 200000, 0.9)
	r, err := Assess(s)
	if err != nil {
		t.Fatal(err)
	}
	mk, _ := r.Estimate(NameMarkov)
	if mk.MinEntropy > 0.47 {
		t.Errorf("Markov on stay=0.9 stream: %.4f > 0.47", mk.MinEntropy)
	}
	mcv, _ := r.Estimate(NameMCV)
	if mcv.MinEntropy < 0.9 {
		t.Errorf("MCV on balanced correlated stream: %.4f < 0.9", mcv.MinEntropy)
	}
	if r.MinEntropy > mcv.MinEntropy {
		t.Errorf("suite min %.4f above MCV %.4f", r.MinEntropy, mcv.MinEntropy)
	}
}

// TestLocalBoundBehaviour: the longest-run bound must grow with the
// observed run length and stay consistent with the direct no-run
// probability at small sizes.
func TestLocalBoundBehaviour(t *testing.T) {
	prev := 0.0
	for r := 1; r <= 20; r++ {
		p := localBound(r, 10000)
		if p <= prev {
			t.Fatalf("localBound(r=%d) = %.6f not increasing (prev %.6f)", r, p, prev)
		}
		prev = p
	}
	// r = 1: no run of length 1 means no success at all;
	// (1−p)^n = 0.99 gives p = 1 − 0.99^{1/n} exactly.
	n := 1000
	want := 1 - math.Pow(0.99, 1/float64(n))
	if got := localBound(1, n); math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("localBound(1, %d) = %.9f, want %.9f", n, got, want)
	}
}

// TestAssessDeterministicAndComplete: the report is a pure function of
// the input and carries all ten estimators.
func TestAssessDeterministicAndComplete(t *testing.T) {
	s := uniformBits(5, 50000)
	r1, err := Assess(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Assess(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("Assess is not deterministic")
	}
	want := []string{NameMCV, NameCollision, NameMarkov, NameCompression,
		NameTTuple, NameLRS, NameMultiMCW, NameLag, NameMultiMMC, NameLZ78Y}
	if len(r1.Estimates) != len(want) {
		t.Fatalf("got %d estimates, want %d", len(r1.Estimates), len(want))
	}
	for i, name := range want {
		if r1.Estimates[i].Name != name {
			t.Fatalf("estimate %d is %s, want %s", i, r1.Estimates[i].Name, name)
		}
		if h := r1.Estimates[i].MinEntropy; h < 0 || h > 1 {
			t.Fatalf("%s min-entropy %.4f outside [0,1]", name, h)
		}
	}
	min := 1.0
	for _, e := range r1.Estimates {
		min = math.Min(min, e.MinEntropy)
	}
	if r1.MinEntropy != min {
		t.Fatalf("suite min %.6f != min over estimates %.6f", r1.MinEntropy, min)
	}
	if r1.Table() == "" {
		t.Fatal("empty table")
	}
}

// TestAssessRejectsShortInput guards the MinBits floor.
func TestAssessRejectsShortInput(t *testing.T) {
	if _, err := Assess(make([]byte, MinBits-1)); err == nil {
		t.Fatal("expected error for short input")
	}
}
