package sp90b

import (
	"fmt"
	"math"
)

// mostCommonValue is the §6.3.1 estimate: the empirical mode frequency
// with a 99% upper bound. It reads full byte symbols, so the spec's
// worked example (a ternary sequence) exercises it directly; Assess
// always feeds it normalized bits.
func mostCommonValue(s []byte) Estimate {
	var counts [256]int
	for _, v := range s {
		counts[v]++
	}
	mode := 0
	for _, c := range counts {
		if c > mode {
			mode = c
		}
	}
	return MCVEstimate(mode, len(s))
}

// MCVEstimate is the count-level §6.3.1 kernel: the estimate for a
// sequence of n samples whose most common value occurred mode times.
// It is the arithmetic shared by the batch estimator and the streaming
// scoreboard (sp90b/stream), which is what makes their window-boundary
// equivalence exact rather than approximate.
func MCVEstimate(mode, n int) Estimate {
	pHat := float64(mode) / float64(n)
	pu := upperBound(pHat, n)
	return Estimate{
		Name:       NameMCV,
		MinEntropy: entropyFromP(pu),
		P:          pu,
		Detail:     fmt.Sprintf("mode %d/%d, p_u=%.4f", mode, n, pu),
	}
}

// collisionMean is the §6.3.2 source-family expectation of the mean
// time to collision for a binary source with max symbol probability p.
// The spec writes it through F(1/z) = Γ(3,z)·z⁻³·e^z; with
// Γ(3,z) = e⁻ᶻ(z²+2z+2) that is F(q) = q + 2q² + 2q³, and the whole
// expression collapses to 2 + 2pq (two samples collide with probability
// p²+q², else the third closes the collision) — kept in the spec's form
// here, with the collapse pinned by TestCollisionMeanClosedForm.
func collisionMean(p float64) float64 {
	q := 1 - p
	fq := q + 2*q*q + 2*q*q*q
	return p/(q*q)*(1+0.5*(1/p-1/q))*fq - p/q*0.5*(1/p-1/q)
}

// collision is the §6.3.2 collision estimate (binary only): walk the
// sequence cutting it at each first repeated value, lower-bound the
// mean collision time, and invert the source family for p.
func collision(s []byte) Estimate {
	// A binary collision time is 2 (immediate repeat) or 3 (two
	// distinct values; the third sample must collide with one of
	// them), so two counters carry the whole walk.
	var n2, n3 int
	for i := 0; i+1 < len(s); {
		if s[i] == s[i+1] {
			n2++
			i += 2
		} else if i+2 < len(s) {
			n3++
			i += 3
		} else {
			break
		}
	}
	v := n2 + n3
	if v < 2 {
		return Estimate{Name: NameCollision, MinEntropy: 0, P: 1, Detail: "degenerate: no collisions"}
	}
	mean := float64(2*n2+3*n3) / float64(v)
	sum2 := float64(n2)*(2-mean)*(2-mean) + float64(n3)*(3-mean)*(3-mean)
	sigma := math.Sqrt(sum2 / float64(v-1))
	xBar := mean - z99*sigma/math.Sqrt(float64(v))

	// Invert the family: the mean is 2.5 at p = 1/2 and decreases
	// toward 2 as p → 1. A lower-bounded mean at or above 2.5 means
	// full entropy (no solution, per the spec).
	var p float64
	if xBar >= collisionMean(0.5) {
		p = 0.5
	} else {
		lo, hi := 0.5, 1.0
		for i := 0; i < 64; i++ {
			mid := (lo + hi) / 2
			if collisionMean(mid) > xBar {
				lo = mid
			} else {
				hi = mid
			}
		}
		p = lo
	}
	p = clampP(p)
	return Estimate{
		Name:       NameCollision,
		MinEntropy: entropyFromP(p),
		P:          p,
		Detail:     fmt.Sprintf("v=%d, X̄=%.4f, X̄'=%.4f", v, mean, xBar),
	}
}

// markovHorizon is the sequence length the §6.3.3 Markov estimate
// scores: the probability of the most likely 128-bit output sequence.
const markovHorizon = 128

// markov is the §6.3.3 Markov estimate (binary only): fit the
// first-order chain from raw frequencies (the final standard uses no
// confidence interval here) and bound the probability of the most
// likely 128-bit sequence over the six extremal candidates (constant
// runs, alternations, and one-transition sequences).
func markov(s []byte) Estimate {
	n := len(s)
	var ones int64
	for _, v := range s {
		ones += int64(v)
	}
	// Transition counts: cnt[a][b] = #(a followed by b).
	var cnt [2][2]int64
	for i := 1; i < n; i++ {
		cnt[s[i-1]][s[i]]++
	}
	return MarkovEstimate(n, ones, &cnt)
}

// MarkovEstimate is the count-level §6.3.3 kernel: the estimate for a
// sequence of n bits containing ones one-bits and the transition
// counts cnt[a][b] = #(a followed by b). Integer counts convert to
// float64 exactly (every count is far below 2^53), so the batch
// estimator and the streaming scoreboard's evict/add counters produce
// bit-identical estimates from equal counts.
func MarkovEstimate(n int, ones int64, cnt *[2][2]int64) Estimate {
	p1 := float64(ones) / float64(n)
	p0 := 1 - p1
	// Conditional probabilities; a context that never occurs carries
	// probability 0 forward (log −inf), which correctly removes the
	// candidate sequences that would have to pass through it.
	cond := func(a, b int) float64 {
		tot := cnt[a][0] + cnt[a][1]
		if tot == 0 {
			return 0
		}
		return float64(cnt[a][b]) / float64(tot)
	}
	p00, p01 := cond(0, 0), cond(0, 1)
	p10, p11 := cond(1, 0), cond(1, 1)

	lg := math.Log2
	h := markovHorizon
	// Log-probabilities of the six extremal length-128 sequences
	// (§6.3.3 step 3): all-zeros, alternating from 0, 0 then ones,
	// 1 then zeros, alternating from 1, all-ones.
	candidates := []float64{
		lg(p0) + float64(h-1)*lg(p00),
		lg(p0) + float64(h/2)*lg(p01) + float64(h/2-1)*lg(p10),
		lg(p0) + lg(p01) + float64(h-2)*lg(p11),
		lg(p1) + lg(p10) + float64(h-2)*lg(p00),
		lg(p1) + float64(h/2)*lg(p10) + float64(h/2-1)*lg(p01),
		lg(p1) + float64(h-1)*lg(p11),
	}
	best := math.Inf(-1)
	for _, c := range candidates {
		if !math.IsNaN(c) && c > best {
			best = c
		}
	}
	// best is log2 of the max 128-bit sequence probability.
	hPerBit := -best / float64(h)
	if hPerBit > 1 {
		hPerBit = 1
	}
	return Estimate{
		Name:       NameMarkov,
		MinEntropy: hPerBit,
		P:          math.Exp2(-hPerBit),
		Detail:     fmt.Sprintf("P0=%.4f P00=%.4f P11=%.4f", p0, p00, p11),
	}
}

// Compression-estimate parameters (§6.3.4): b-bit blocks, d dictionary
// blocks, and the spec's variance-correction constant for the
// overlapping statistic.
const (
	compBlockBits = 6
	compDictLen   = 1000
	compC         = 0.5907
)

// compression is the §6.3.4 compression estimate (binary only): the
// Maurer/Coron universal statistic over 6-bit blocks with a 1000-block
// dictionary, lower-bounded and inverted through the near-uniform
// source family.
func compression(s []byte) Estimate {
	nBlocks := len(s) / compBlockBits
	v := nBlocks - compDictLen
	if v < 2 {
		return Estimate{Name: NameCompression, MinEntropy: 0, P: 1, Detail: "input shorter than dictionary"}
	}
	blocks := make([]int, nBlocks)
	for i := range blocks {
		w := 0
		for j := 0; j < compBlockBits; j++ {
			w = w<<1 | int(s[i*compBlockBits+j])
		}
		blocks[i] = w
	}
	// last[w] = most recent 1-based position of block value w.
	var last [1 << compBlockBits]int
	for i := 0; i < compDictLen; i++ {
		last[blocks[i]] = i + 1
	}
	var sum, sum2 float64
	for i := compDictLen; i < nBlocks; i++ {
		pos := i + 1
		w := blocks[i]
		d := pos // never seen: distance to the origin, per the spec
		if last[w] != 0 {
			d = pos - last[w]
		}
		last[w] = pos
		l := math.Log2(float64(d))
		sum += l
		sum2 += l * l
	}
	mean := sum / float64(v)
	// Floating-point cancellation can push the population variance a
	// hair below zero on degenerate periodic streams (every distance
	// identical); clamp so the bound stays the mean instead of NaN.
	variance := sum2/float64(v) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sigma := compC * math.Sqrt(variance)
	xBar := mean - z99*sigma/math.Sqrt(float64(v))

	// Invert: the expected statistic of the near-uniform family with
	// max block probability p (the other 2^6−1 blocks share 1−p) is
	// G(p) + 63·G(q); it is maximal at the uniform p = 2⁻⁶ and
	// decreases as p grows.
	const k = 1 << compBlockBits
	log2s := make([]float64, nBlocks+1)
	for t := 1; t <= nBlocks; t++ {
		log2s[t] = math.Log2(float64(t))
	}
	family := func(p float64) float64 {
		q := (1 - p) / (k - 1)
		return compG(p, nBlocks, v, log2s) + (k-1)*compG(q, nBlocks, v, log2s)
	}
	var p float64
	if xBar >= family(1.0/k) {
		p = 1.0 / k // no solution: full entropy
	} else {
		lo, hi := 1.0/k, 1.0
		for i := 0; i < 64; i++ {
			mid := (lo + hi) / 2
			if family(mid) > xBar {
				lo = mid
			} else {
				hi = mid
			}
		}
		p = lo
	}
	h := -math.Log2(p) / compBlockBits
	if h > 1 {
		h = 1
	}
	return Estimate{
		Name:       NameCompression,
		MinEntropy: h,
		P:          math.Exp2(-h),
		Detail:     fmt.Sprintf("v=%d, X̄=%.4f, X̄'=%.4f", v, mean, xBar),
	}
}

// compG evaluates the §6.3.4 family expectation contribution of one
// symbol with probability z:
//
//	G(z) = (1/v)·Σ_{t=d+1}^{L'} Σ_{u=1}^{t} log2(u)·F(z,t,u),
//	F(z,t,u) = z²(1−z)^{u−1} for u < t,  z(1−z)^{t−1} for u = t,
//
// computed in O(L') by carrying the prefix sum
// A(k) = Σ_{u=1}^{k} log2(u)(1−z)^{u−1} across t. log2s[t] = log2(t)
// is precomputed by the caller: the bisection evaluates compG ~a
// hundred times and the table is independent of z.
func compG(z float64, nBlocks, v int, log2s []float64) float64 {
	if z <= 0 {
		return 0
	}
	omz := 1 - z
	var inner float64 // Σ_{t>d} A(t−1)
	var tail float64  // Σ_{t>d} (1−z)^{t−1}·log2(t)
	var a float64     // A(t−1), built incrementally
	pow := 1.0        // (1−z)^{t−1}
	for t := 1; t <= nBlocks; t++ {
		if t > compDictLen {
			inner += a
			tail += pow * log2s[t]
		}
		a += log2s[t] * pow
		pow *= omz
	}
	return (z*z*inner + z*tail) / float64(v)
}
