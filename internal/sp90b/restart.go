package sp90b

import (
	"fmt"
	"math"
)

// RestartReport is the outcome of the §3.1.4 restart procedure on an
// r×c matrix of samples (row i = the first c bits after restart i).
type RestartReport struct {
	// Rows and Cols are the matrix dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// FR and FC are the maximum per-row and per-column frequencies of
	// any single value across the matrix.
	FR int `json:"f_r"`
	FC int `json:"f_c"`
	// Cutoff is the binomial critical value both must stay below.
	Cutoff int `json:"cutoff"`
	// SanityPass reports the §3.1.4.1 sanity test verdict. A failure
	// means the initial estimate is invalid for this source: some
	// restart exposes far more structure than H_initial admits.
	SanityPass bool `json:"sanity_pass"`
	// RowAssessment and ColAssessment are the suite runs on the
	// row-wise and column-wise concatenations (§3.1.4.2/3).
	RowAssessment Report `json:"row_assessment"`
	ColAssessment Report `json:"col_assessment"`
	// MinEntropy is the procedure verdict:
	// min(H_initial, row, column), 0 when the sanity test failed.
	MinEntropy float64 `json:"min_entropy"`
}

// AssessRestart runs the §3.1.4 restart tests: rows holds one row per
// restart (equal lengths), hInitial is the initial entropy estimate
// from Assess on the sequential dataset. The standard uses a
// 1000×1000 matrix; any shape with at least MinBits total samples and
// ≥ 2 rows/columns is accepted, with the binomial cutoff computed for
// the actual shape.
func AssessRestart(rows [][]byte, hInitial float64) (RestartReport, error) {
	r := len(rows)
	if r < 2 {
		return RestartReport{}, fmt.Errorf("sp90b: restart matrix needs >= 2 rows, got %d", r)
	}
	c := len(rows[0])
	if c < 2 {
		return RestartReport{}, fmt.Errorf("sp90b: restart matrix needs >= 2 columns, got %d", c)
	}
	for i, row := range rows {
		if len(row) != c {
			return RestartReport{}, fmt.Errorf("sp90b: row %d has %d samples, want %d", i, len(row), c)
		}
	}
	if r*c < MinBits {
		return RestartReport{}, fmt.Errorf("sp90b: restart matrix %d×%d below %d total samples", r, c, MinBits)
	}
	if hInitial <= 0 || hInitial > 1 {
		return RestartReport{}, fmt.Errorf("sp90b: initial entropy %g out of (0, 1]", hInitial)
	}

	rep := RestartReport{Rows: r, Cols: c}
	// Sanity test (§3.1.4.1): the count of the most common value in
	// any row (any column) must not exceed the upper critical value of
	// Binomial(n, p) at α = 0.01/(r+c), with p = 2^−H_initial the
	// highest symbol probability the initial estimate admits.
	p := math.Exp2(-hInitial)
	alpha := 0.01 / float64(r+c)
	for _, row := range rows {
		if f := maxFreq(row); f > rep.FR {
			rep.FR = f
		}
	}
	col := make([]byte, r)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			col[i] = rows[i][j]
		}
		if f := maxFreq(col); f > rep.FC {
			rep.FC = f
		}
	}
	// The standard's square matrix has one cutoff; for a rectangular
	// shape the row and column tests have different trial counts, so
	// take the stricter (smaller-n) cutoff against the matching F.
	cutR := binomialCritical(c, p, alpha)
	cutC := binomialCritical(r, p, alpha)
	rep.Cutoff = cutR
	if cutC < rep.Cutoff {
		rep.Cutoff = cutC
	}
	rep.SanityPass = rep.FR <= cutR && rep.FC <= cutC
	if !rep.SanityPass {
		return rep, nil
	}

	// Row- and column-wise re-assessment (§3.1.4.2/3): dependencies
	// across restarts that the sequential dataset cannot show surface
	// in the column ordering.
	rowCat := make([]byte, 0, r*c)
	for _, row := range rows {
		rowCat = append(rowCat, row...)
	}
	colCat := make([]byte, 0, r*c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			colCat = append(colCat, rows[i][j])
		}
	}
	var err error
	if rep.RowAssessment, err = Assess(rowCat); err != nil {
		return rep, err
	}
	if rep.ColAssessment, err = Assess(colCat); err != nil {
		return rep, err
	}
	rep.MinEntropy = math.Min(hInitial,
		math.Min(rep.RowAssessment.MinEntropy, rep.ColAssessment.MinEntropy))
	return rep, nil
}

// maxFreq returns the count of the most common byte value.
func maxFreq(s []byte) int {
	var counts [256]int
	for _, v := range s {
		counts[v]++
	}
	m := 0
	for _, v := range counts {
		if v > m {
			m = v
		}
	}
	return m
}

// binomialCritical returns the smallest u with P(X ≥ u) < alpha for
// X ~ Binomial(n, p): the §3.1.4.1 critical value, computed exactly by
// summing the upper tail in log space (n is a restart-matrix dimension,
// so the O(n) sum is nothing).
func binomialCritical(n int, p float64, alpha float64) int {
	if p >= 1 {
		return n + 1 // any count is consistent with a constant source
	}
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	// Walk k = n down to 0 accumulating the tail; the first k whose
	// tail reaches alpha means u = k+1.
	var tail float64
	lgamma := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	logN := lgamma(float64(n + 1))
	for k := n; k >= 0; k-- {
		logPmf := logN - lgamma(float64(k+1)) - lgamma(float64(n-k+1)) +
			float64(k)*logP + float64(n-k)*logQ
		tail += math.Exp(logPmf)
		if tail >= alpha {
			return k + 1
		}
	}
	return 0
}
