package drbg

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// testSeed derives deterministic pseudo-entropy for semantics tests
// (the KATs pin correctness; these pin the life-cycle contract).
func testSeed(label string, n int) []byte {
	out := make([]byte, 0, n+sha256.Size)
	for i := 0; len(out) < n; i++ {
		s := sha256.Sum256([]byte(label + string(rune('a'+i))))
		out = append(out, s[:]...)
	}
	return out[:n]
}

func newTestDRBG(t *testing.T, mech string, cfg uint64) DRBG {
	t.Helper()
	switch mech {
	case "hmac":
		d, err := NewHMAC(testSeed("e", 32), testSeed("n", 16), nil, HMACConfig{ReseedInterval: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return d
	case "ctr":
		d, err := NewCTR(testSeed("e", 48), nil, CTRConfig{ReseedInterval: cfg})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	t.Fatalf("unknown mech %q", mech)
	return nil
}

// TestReseedIntervalFailsClosed: generate succeeds exactly
// ReseedInterval times per seed, then fails with ErrReseedRequired and
// produces no output until a reseed resets the counter.
func TestReseedIntervalFailsClosed(t *testing.T) {
	for _, mech := range []string{"hmac", "ctr"} {
		t.Run(mech, func(t *testing.T) {
			const interval = 3
			d := newTestDRBG(t, mech, interval)
			out := make([]byte, 32)
			for i := 0; i < interval; i++ {
				if err := d.Generate(out, nil); err != nil {
					t.Fatalf("generate %d within interval: %v", i, err)
				}
			}
			canary := append([]byte(nil), out...)
			if err := d.Generate(out, nil); err != ErrReseedRequired {
				t.Fatalf("generate past interval: err = %v, want ErrReseedRequired", err)
			}
			if !bytes.Equal(out, canary) {
				t.Error("failed generate wrote output — must fail closed")
			}
			if c := d.ReseedCounter(); c != interval+1 {
				t.Errorf("reseed counter = %d, want %d", c, interval+1)
			}
			if err := d.Reseed(testSeed("r", d.ReseedLen()), nil); err != nil {
				t.Fatalf("reseed: %v", err)
			}
			if c := d.ReseedCounter(); c != 1 {
				t.Errorf("counter after reseed = %d, want 1", c)
			}
			if err := d.Generate(out, nil); err != nil {
				t.Fatalf("generate after reseed: %v", err)
			}
			if bytes.Equal(out, canary) {
				t.Error("output unchanged across reseed")
			}
		})
	}
}

// TestRequestBoundariesMatter documents the §10 state-update-per-call
// semantics the DRBGPool's fixed-block layer exists to paper over:
// one Generate(2n) differs from two Generate(n) beyond the first n
// bytes.
func TestRequestBoundariesMatter(t *testing.T) {
	for _, mech := range []string{"hmac", "ctr"} {
		t.Run(mech, func(t *testing.T) {
			a := newTestDRBG(t, mech, 0)
			b := newTestDRBG(t, mech, 0)
			one := make([]byte, 64)
			if err := a.Generate(one, nil); err != nil {
				t.Fatal(err)
			}
			two := make([]byte, 64)
			if err := b.Generate(two[:32], nil); err != nil {
				t.Fatal(err)
			}
			if err := b.Generate(two[32:], nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(one[:32], two[:32]) {
				t.Error("first 32 bytes differ — same seed must agree before the first update")
			}
			if bytes.Equal(one[32:], two[32:]) {
				t.Error("chunked output equals unchunked — update-per-call semantics lost")
			}
		})
	}
}

// TestDeterminism: identical seed material yields identical streams.
func TestDeterminism(t *testing.T) {
	for _, mech := range []string{"hmac", "ctr"} {
		t.Run(mech, func(t *testing.T) {
			a := newTestDRBG(t, mech, 0)
			b := newTestDRBG(t, mech, 0)
			x, y := make([]byte, 777), make([]byte, 777)
			for i := 0; i < 3; i++ {
				if err := a.Generate(x, nil); err != nil {
					t.Fatal(err)
				}
				if err := b.Generate(y, nil); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(x, y) {
					t.Fatalf("round %d: streams diverge", i)
				}
			}
		})
	}
}

// TestUninstantiate: the state is zeroized and every operation fails.
func TestUninstantiate(t *testing.T) {
	t.Run("hmac", func(t *testing.T) {
		d := newTestDRBG(t, "hmac", 0).(*HMAC)
		d.Uninstantiate()
		for _, b := range append(append([]byte(nil), d.key...), d.v...) {
			if b != 0 {
				t.Fatal("state not zeroized")
			}
		}
		if err := d.Generate(make([]byte, 16), nil); err != ErrUninstantiated {
			t.Errorf("generate after uninstantiate: %v", err)
		}
		if err := d.Reseed(testSeed("r", 32), nil); err != ErrUninstantiated {
			t.Errorf("reseed after uninstantiate: %v", err)
		}
	})
	t.Run("ctr", func(t *testing.T) {
		d := newTestDRBG(t, "ctr", 0).(*CTR)
		d.Uninstantiate()
		for _, b := range append(append([]byte(nil), d.key...), d.v...) {
			if b != 0 {
				t.Fatal("state not zeroized")
			}
		}
		if err := d.Generate(make([]byte, 16), nil); err != ErrUninstantiated {
			t.Errorf("generate after uninstantiate: %v", err)
		}
	})
}

// TestRequestAndParameterLimits: the §10 per-request cap, interval
// ceiling, and entropy-length requirements are enforced.
func TestRequestAndParameterLimits(t *testing.T) {
	d := newTestDRBG(t, "hmac", 0)
	if err := d.Generate(make([]byte, MaxRequestBytes+1), nil); err != ErrRequestTooLarge {
		t.Errorf("oversized request: %v", err)
	}
	if err := d.Generate(make([]byte, MaxRequestBytes), nil); err != nil {
		t.Errorf("max-size request: %v", err)
	}
	if _, err := NewHMAC(testSeed("e", 31), testSeed("n", 16), nil, HMACConfig{}); err == nil {
		t.Error("short hmac entropy accepted")
	}
	if _, err := NewHMAC(testSeed("e", 32), testSeed("n", 15), nil, HMACConfig{}); err == nil {
		t.Error("short hmac nonce accepted")
	}
	if _, err := NewHMAC(testSeed("e", 32), testSeed("n", 16), nil, HMACConfig{ReseedInterval: MaxReseedInterval + 1}); err == nil {
		t.Error("interval beyond 2^48 accepted")
	}
	if _, err := NewCTR(testSeed("e", 47), nil, CTRConfig{}); err == nil {
		t.Error("short ctr entropy accepted")
	}
	if _, err := NewCTR(testSeed("e", 49), nil, CTRConfig{}); err == nil {
		t.Error("long ctr entropy accepted (no df requires exactly seedlen)")
	}
	if _, err := NewCTR(testSeed("e", 48), testSeed("p", 49), CTRConfig{}); err == nil {
		t.Error("oversized ctr personalization accepted")
	}
	c := newTestDRBG(t, "ctr", 0)
	if err := c.Reseed(testSeed("r", 32), nil); err == nil {
		t.Error("short ctr reseed entropy accepted")
	}
}

// TestPersonalizationSeparates: distinct personalization strings yield
// distinct streams from identical entropy (the per-lane domain
// separation the DRBGPool relies on).
func TestPersonalizationSeparates(t *testing.T) {
	a, err := NewHMAC(testSeed("e", 32), testSeed("n", 16), []byte("lane-0"), HMACConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHMAC(testSeed("e", 32), testSeed("n", 16), []byte("lane-1"), HMACConfig{})
	if err != nil {
		t.Fatal(err)
	}
	x, y := make([]byte, 64), make([]byte, 64)
	if err := a.Generate(x, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Generate(y, nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(x, y) {
		t.Error("personalization did not separate streams")
	}
}
