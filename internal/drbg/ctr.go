package drbg

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

const (
	ctrKeyLen  = 32                   // AES-256 key bytes
	blockLen   = aes.BlockSize        // 16
	ctrSeedLen = ctrKeyLen + blockLen // 48: seedlen for AES-256
)

// CTR is CTR_DRBG over AES-256 without a derivation function
// (§10.2.1, df omitted): state (Key, V) of seedlen = 384 bits. Because
// the derivation function is omitted, every entropy input MUST be full
// entropy and exactly seedlen bytes (§10.2.1.3.1) — the contract the
// vetted conditioner (internal/conditioner) upholds.
type CTR struct {
	key      []byte
	v        []byte
	block    cipher.Block // AES-256 under key; rebuilt after each update
	counter  uint64
	interval uint64
	dead     bool
}

// CTRConfig parameterizes the instance.
type CTRConfig struct {
	// ReseedInterval is the maximum Generate calls per seed (default
	// and ceiling MaxReseedInterval = 2^48).
	ReseedInterval uint64
}

// NewCTR instantiates CTR_DRBG-AES-256 without df (§10.2.1.3.1):
// entropy must be exactly seedlen = 48 bytes of full-entropy material;
// personalization is optional and at most seedlen bytes (zero-padded,
// XORed into the seed). No nonce is used (the full-entropy seed covers
// it, per the no-df instantiation).
func NewCTR(entropy, personalization []byte, cfg CTRConfig) (*CTR, error) {
	if len(entropy) != ctrSeedLen {
		return nil, fmt.Errorf("drbg: ctr (no df) entropy input must be exactly %d bytes, got %d", ctrSeedLen, len(entropy))
	}
	if len(personalization) > ctrSeedLen {
		return nil, fmt.Errorf("drbg: ctr personalization %d bytes exceeds seedlen %d", len(personalization), ctrSeedLen)
	}
	interval := cfg.ReseedInterval
	if interval == 0 {
		interval = MaxReseedInterval
	}
	if interval > MaxReseedInterval {
		return nil, fmt.Errorf("drbg: reseed interval %d exceeds 2^48", interval)
	}
	d := &CTR{
		key:      make([]byte, ctrKeyLen),
		v:        make([]byte, blockLen),
		interval: interval,
	}
	var err error
	if d.block, err = aes.NewCipher(d.key); err != nil {
		return nil, err
	}
	seed := make([]byte, ctrSeedLen)
	copy(seed, personalization)
	for i, b := range entropy {
		seed[i] ^= b
	}
	d.update(seed)
	d.counter = 1
	return d, nil
}

// Name implements DRBG.
func (d *CTR) Name() string { return "ctr-drbg-aes256" }

// SeedLen implements DRBG: seedlen = key + block = 48 bytes.
func (d *CTR) SeedLen() int { return ctrSeedLen }

// ReseedLen implements DRBG: without df, reseed needs a full seedlen.
func (d *CTR) ReseedLen() int { return ctrSeedLen }

// ReseedCounter implements DRBG.
func (d *CTR) ReseedCounter() uint64 { return d.counter }

// incV increments V as a 128-bit big-endian counter (§10.2.1.2).
func (d *CTR) incV() {
	for i := blockLen - 1; i >= 0; i-- {
		d.v[i]++
		if d.v[i] != 0 {
			return
		}
	}
}

// update is CTR_DRBG_Update (§10.2.1.2): provided must be seedlen
// bytes.
func (d *CTR) update(provided []byte) {
	var temp [ctrSeedLen]byte
	for n := 0; n < ctrSeedLen; n += blockLen {
		d.incV()
		d.block.Encrypt(temp[n:n+blockLen], d.v)
	}
	for i := range temp {
		temp[i] ^= provided[i]
	}
	copy(d.key, temp[:ctrKeyLen])
	copy(d.v, temp[ctrKeyLen:])
	var err error
	if d.block, err = aes.NewCipher(d.key); err != nil {
		// Unreachable: the key length is fixed.
		panic(err)
	}
}

// padSeed zero-pads additional input to seedlen.
func padSeed(p []byte) ([]byte, error) {
	if len(p) > ctrSeedLen {
		return nil, fmt.Errorf("drbg: ctr additional input %d bytes exceeds seedlen %d", len(p), ctrSeedLen)
	}
	out := make([]byte, ctrSeedLen)
	copy(out, p)
	return out, nil
}

// Reseed implements DRBG (§10.2.1.4.1, no df): entropy must be exactly
// seedlen bytes of full-entropy material.
func (d *CTR) Reseed(entropy, additional []byte) error {
	if d.dead {
		return ErrUninstantiated
	}
	if len(entropy) != ctrSeedLen {
		return fmt.Errorf("drbg: ctr reseed entropy must be exactly %d bytes, got %d", ctrSeedLen, len(entropy))
	}
	seed, err := padSeed(additional)
	if err != nil {
		return err
	}
	for i, b := range entropy {
		seed[i] ^= b
	}
	d.update(seed)
	d.counter = 1
	return nil
}

// Generate implements DRBG (§10.2.1.5.1).
func (d *CTR) Generate(out, additional []byte) error {
	if d.dead {
		return ErrUninstantiated
	}
	if len(out) > MaxRequestBytes {
		return ErrRequestTooLarge
	}
	if d.counter > d.interval {
		return ErrReseedRequired
	}
	var add []byte
	if len(additional) > 0 {
		var err error
		if add, err = padSeed(additional); err != nil {
			return err
		}
		d.update(add)
	} else {
		add = make([]byte, ctrSeedLen)
	}
	var tmp [blockLen]byte
	for n := 0; n < len(out); n += blockLen {
		d.incV()
		if len(out)-n >= blockLen {
			d.block.Encrypt(out[n:n+blockLen], d.v)
		} else {
			d.block.Encrypt(tmp[:], d.v)
			copy(out[n:], tmp[:])
		}
	}
	d.update(add)
	d.counter++
	return nil
}

// Uninstantiate implements DRBG: zeroize and retire (§9.4).
func (d *CTR) Uninstantiate() {
	for i := range d.key {
		d.key[i] = 0
	}
	for i := range d.v {
		d.v[i] = 0
	}
	d.block = nil
	d.counter = 0
	d.dead = true
}
