package drbg

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// outlen is the SHA-256 output length in bytes.
const outlen = sha256.Size

// HMAC is HMAC_DRBG over SHA-256 (§10.1.2): state (Key, V) of one hash
// output each, updated through the HMAC_DRBG_Update construction.
type HMAC struct {
	key      []byte
	v        []byte
	counter  uint64 // reseed_counter
	interval uint64
	dead     bool
}

// HMACConfig parameterizes the instance.
type HMACConfig struct {
	// ReseedInterval is the maximum Generate calls per seed (default
	// and ceiling MaxReseedInterval = 2^48).
	ReseedInterval uint64
}

// NewHMAC instantiates HMAC_DRBG (§10.1.2.3): entropy must carry at
// least the security strength (32 bytes), nonce at least half of it
// (16 bytes); personalization is optional (≤ 2^35 bits, practically
// unbounded here). The full-entropy seed path draws entropy and nonce
// together from the conditioner.
func NewHMAC(entropy, nonce, personalization []byte, cfg HMACConfig) (*HMAC, error) {
	if len(entropy) < SecurityStrength/8 {
		return nil, fmt.Errorf("drbg: hmac entropy input %d bytes, need >= %d", len(entropy), SecurityStrength/8)
	}
	if len(nonce) < SecurityStrength/16 {
		return nil, fmt.Errorf("drbg: hmac nonce %d bytes, need >= %d", len(nonce), SecurityStrength/16)
	}
	interval := cfg.ReseedInterval
	if interval == 0 {
		interval = MaxReseedInterval
	}
	if interval > MaxReseedInterval {
		return nil, fmt.Errorf("drbg: reseed interval %d exceeds 2^48", interval)
	}
	d := &HMAC{
		key:      make([]byte, outlen),
		v:        make([]byte, outlen),
		interval: interval,
	}
	for i := range d.v {
		d.v[i] = 0x01
	}
	seed := make([]byte, 0, len(entropy)+len(nonce)+len(personalization))
	seed = append(seed, entropy...)
	seed = append(seed, nonce...)
	seed = append(seed, personalization...)
	d.update(seed)
	d.counter = 1
	return d, nil
}

// Name implements DRBG.
func (d *HMAC) Name() string { return "hmac-drbg-sha256" }

// SeedLen implements DRBG: entropy (32) plus nonce (16) for
// instantiation.
func (d *HMAC) SeedLen() int { return SecurityStrength/8 + SecurityStrength/16 }

// ReseedLen implements DRBG: reseed needs the security strength.
func (d *HMAC) ReseedLen() int { return SecurityStrength / 8 }

// ReseedCounter implements DRBG.
func (d *HMAC) ReseedCounter() uint64 { return d.counter }

// update is HMAC_DRBG_Update (§10.1.2.2).
func (d *HMAC) update(provided []byte) {
	mac := func(key []byte, parts ...[]byte) []byte {
		m := hmac.New(sha256.New, key)
		for _, p := range parts {
			m.Write(p)
		}
		return m.Sum(nil)
	}
	d.key = mac(d.key, d.v, []byte{0x00}, provided)
	d.v = mac(d.key, d.v)
	if len(provided) == 0 {
		return
	}
	d.key = mac(d.key, d.v, []byte{0x01}, provided)
	d.v = mac(d.key, d.v)
}

// Reseed implements DRBG (§10.1.2.4).
func (d *HMAC) Reseed(entropy, additional []byte) error {
	if d.dead {
		return ErrUninstantiated
	}
	if len(entropy) < d.ReseedLen() {
		return fmt.Errorf("drbg: hmac reseed entropy %d bytes, need >= %d", len(entropy), d.ReseedLen())
	}
	seed := make([]byte, 0, len(entropy)+len(additional))
	seed = append(seed, entropy...)
	seed = append(seed, additional...)
	d.update(seed)
	d.counter = 1
	return nil
}

// Generate implements DRBG (§10.1.2.5).
func (d *HMAC) Generate(out, additional []byte) error {
	if d.dead {
		return ErrUninstantiated
	}
	if len(out) > MaxRequestBytes {
		return ErrRequestTooLarge
	}
	if d.counter > d.interval {
		return ErrReseedRequired
	}
	if len(additional) > 0 {
		d.update(additional)
	}
	h := hmac.New(sha256.New, d.key)
	for n := 0; n < len(out); n += outlen {
		h.Reset()
		h.Write(d.v)
		d.v = h.Sum(d.v[:0])
		copy(out[n:], d.v)
	}
	d.update(additional)
	d.counter++
	return nil
}

// Uninstantiate implements DRBG: zeroize and retire (§9.4).
func (d *HMAC) Uninstantiate() {
	for i := range d.key {
		d.key[i] = 0
	}
	for i := range d.v {
		d.v[i] = 0
	}
	d.counter = 0
	d.dead = true
}
