// Package drbg implements the two deterministic random bit generator
// mechanisms of NIST SP 800-90A Rev. 1 used by the serving layer:
// HMAC_DRBG over SHA-256 (§10.1.2) and CTR_DRBG over AES-256 without a
// derivation function (§10.2.1). Both provide the full 256-bit
// security strength and the standard instantiate / reseed / generate /
// uninstantiate life cycle with reseed-counter semantics.
//
// This is the expansion half of the SP 800-90C construction: the
// entropy source (internal/trng, internal/multiring behind
// internal/entropyd) is slow physics; its raw bits are compressed to
// full-entropy seed material by a vetted conditioning function
// (internal/conditioner) and expanded here at AES/SHA throughput.
// Because CTR_DRBG omits the derivation function, its entropy input
// MUST be full entropy (exactly SeedLen bytes) — which is precisely
// what the conditioner provides; HMAC_DRBG tolerates arbitrary input
// distributions but is fed the same full-entropy material.
//
// # Determinism and request boundaries
//
// A DRBG's output depends on the request boundaries, not only on the
// total byte count: every Generate call finishes with a state update
// (§10.1.2.5 step 6, §10.2.1.5.1 step 6), so Generate(64) differs from
// Generate(32)+Generate(32). Callers who need a chunking-invariant
// stream (entropyd.DRBGPool) must generate in fixed-size blocks and
// slice requests out of them.
//
// # Reseed semantics
//
// reseed_counter counts Generate calls since the last (re)seed,
// starting at 1. When it would exceed the configured ReseedInterval,
// Generate fails with ErrReseedRequired and produces NO output: the
// mechanism fails closed rather than stretching a stale seed. The
// standard's ceiling on the interval is 2^48 for both mechanisms
// (Table 2, Table 3).
//
// The implementations are correct against the NIST CAVP known-answer
// vectors (see cavp_test.go) and zeroize their working state on
// Uninstantiate (§9.4).
package drbg

import "errors"

// MaxRequestBytes is the per-Generate ceiling: 2^19 bits (§10, Table 2
// and Table 3, max_number_of_bits_per_request).
const MaxRequestBytes = (1 << 19) / 8

// MaxReseedInterval is the standard's ceiling on Generate calls
// between reseeds (2^48, Tables 2 and 3).
const MaxReseedInterval = uint64(1) << 48

// SecurityStrength is the security strength in bits of both
// mechanisms as instantiated here (SHA-256 / AES-256).
const SecurityStrength = 256

var (
	// ErrReseedRequired is returned by Generate when the reseed
	// counter has exceeded the reseed interval. No output is produced;
	// the caller must Reseed with fresh entropy input first.
	ErrReseedRequired = errors.New("drbg: reseed required")
	// ErrUninstantiated is returned by operations on an instance after
	// Uninstantiate.
	ErrUninstantiated = errors.New("drbg: instance is uninstantiated")
	// ErrRequestTooLarge is returned by Generate for requests beyond
	// MaxRequestBytes.
	ErrRequestTooLarge = errors.New("drbg: request exceeds 2^19 bits")
)

// DRBG is the common mechanism interface (§9): one instantiated
// generator with its internal state. Implementations are NOT safe for
// concurrent use; callers serialize access (entropyd.DRBGPool owns one
// instance per lane).
type DRBG interface {
	// Name identifies the mechanism ("hmac-drbg-sha256",
	// "ctr-drbg-aes256").
	Name() string
	// SeedLen is the entropy-input length in bytes the mechanism
	// requires: the minimum for Instantiate (HMAC_DRBG: security
	// strength plus the nonce it is folded with) and the exact length
	// for Reseed of CTR_DRBG (no derivation function).
	SeedLen() int
	// ReseedLen is the entropy-input length in bytes Reseed requires.
	ReseedLen() int
	// Reseed mixes fresh entropy input (ReseedLen bytes; CTR_DRBG
	// requires exactly that, HMAC_DRBG at least it) and optional
	// additional input into the state and resets the reseed counter.
	Reseed(entropy, additional []byte) error
	// Generate fills out with pseudorandom bytes (§9.3). It fails
	// closed with ErrReseedRequired once the reseed interval is
	// exhausted, having produced nothing.
	Generate(out, additional []byte) error
	// ReseedCounter returns the number of Generate calls since the
	// last (re)seed, plus one (the standard's reseed_counter).
	ReseedCounter() uint64
	// Uninstantiate zeroizes the internal state (§9.4); all later
	// calls fail with ErrUninstantiated.
	Uninstantiate()
}
