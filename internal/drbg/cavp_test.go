package drbg

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// The known-answer vectors below pin both mechanisms across the three
// CAVP flow shapes:
//
//   - no_reseed:  Instantiate → Generate → Generate (second output
//     compared);
//   - pr_false:   Instantiate → Reseed → Generate → Generate;
//   - pr_true:    Instantiate → (Reseed → Generate) × 2 — prediction
//     resistance as §9.3.1 prescribes it: fresh entropy immediately
//     before every generate.
//
// Three vectors are verbatim NIST CAVP vectors (marked "NIST CAVP" —
// drbgvectors_pr_false HMAC_DRBG [SHA-256] COUNT=0, and
// drbgvectors_no_reseed / drbgvectors_pr_false CTR_DRBG [AES-256 no
// df] COUNT=0). The remaining flows are cross-implementation vectors:
// inputs derived from SHA-256 of fixed labels, expected outputs
// computed with an independent from-the-spec Python implementation
// that reproduces all three NIST vectors bit-exactly (and whose AES
// core passes the FIPS 197 C.3 known answer).
type kat struct {
	name    string
	mech    string // "hmac" | "ctr"
	source  string // provenance of the expected output
	entropy string
	nonce   string // hmac only
	pers    string
	reseeds []katReseed // applied in order before/between generates
	adds    [2]string   // per-generate additional input
	// prTrue interleaves reseeds[i] immediately before generate i.
	prTrue   bool
	returned string // output of the SECOND generate call
	outLen   int    // bytes per generate
}

type katReseed struct{ entropy, add string }

var kats = []kat{
	{
		name:    "hmac/pr_false/count0",
		mech:    "hmac",
		source:  "NIST CAVP drbgvectors_pr_false HMAC_DRBG.rsp [SHA-256] COUNT=0",
		entropy: "06032cd5eed33f39265f49ecb142c511da9aff2af71203bffaf34a9ca5bd9c0d",
		nonce:   "0e66f71edc43e42a45ad3c6fc6cdc4df",
		reseeds: []katReseed{{entropy: "01920a4e669ed3a85ae8a33b35a74ad7fb2a6bb4cf395ce00334a9c9a5a5d552"}},
		returned: "76fc79fe9b50beccc991a11b5635783a83536add03c157fb30645e611c2898bb" +
			"2b1bc215000209208cd506cb28da2a51bdb03826aaf2bd2335d576d519160842" +
			"e7158ad0949d1a9ec3e66ea1b1a064b005de914eac2e9d4f2d72a8616a802254" +
			"22918250ff66a41bd2f864a6a38cc5b6499dc43f7f2bd09e1e0f8f5885935124",
		outLen: 128,
	},
	{
		name:   "ctr/no_reseed/count0",
		mech:   "ctr",
		source: "NIST CAVP drbgvectors_no_reseed CTR_DRBG.rsp [AES-256 no df] COUNT=0",
		entropy: "df5d73faa468649edda33b5cca79b0b05600419ccb7a879ddfec9db32ee494e5" +
			"531b51de16a30f769262474c73bec010",
		returned: "d1c07cd95af8a7f11012c84ce48bb8cb87189e99d40fccb1771c619bdf82ab22" +
			"80b1dc2f2581f39164f7ac0c510494b3a43c41b7db17514c87b107ae793e01c5",
		outLen: 64,
	},
	{
		name:   "ctr/pr_false/count0",
		mech:   "ctr",
		source: "NIST CAVP drbgvectors_pr_false CTR_DRBG.rsp [AES-256 no df] COUNT=0",
		entropy: "e4bc23c5089a19d86f4119cb3fa08c0a4991e0a1def17e101e4c14d9c323460a" +
			"7c2fb58e0b086c6c57b55f56cae25bad",
		reseeds: []katReseed{{entropy: "fd85a836bba85019881e8c6bad23c9061adc75477659acaea8e4a01dfe07a183" +
			"2dad1c136f59d70f8653a5dc118663d6"}},
		returned: "b2cb8905c05e5950ca31895096be29ea3d5a3b82b269495554eb80fe07de43e1" +
			"93b9e7c3ece73b80e062b1c1f68202fbb1c52a040ea2478864295282234aaada",
		outLen: 64,
	},
	{
		name:    "hmac/no_reseed/additional_input",
		mech:    "hmac",
		source:  "cross-implementation (independent Python reference)",
		entropy: "8e665dd79ff308f7ddd16d82041d38f1036c30ed21cf189aaa009e6803a66caa",
		nonce:   "47c799065f45e53d7dcbcc979d382969",
		pers:    "1566f89f84bbb8e195f6adc46f54e3bce2a3dbcbfcd5504f04a92cdb84ad7be1",
		adds: [2]string{
			"094c20d69a37890c0eb785c55b75ce16a7787eb82a3d17b3997aa2b877f0e5cc",
			"b1b4b62252181390b4f9faf684c61518c9ac74fc9cd43873bc79921b9ea52fc2",
		},
		returned: "0ffb11c02b95a6a6c3fa3fb2c55defc08ba68d152f819f391008b4c15c523f0d" +
			"6e299226626a47ac2efdc2dd4075de9991e4edddd792c3b5e698be64ea308b96" +
			"b4e33c87dd72c8d408303735cdbefc7eed34b584988225f9a580b39f70954454" +
			"8386fb5267831ea398e90783b6dd414054fdc59d97363bc5b0919089aee091e8",
		outLen: 128,
	},
	{
		name:    "hmac/pr_true",
		mech:    "hmac",
		source:  "cross-implementation (independent Python reference)",
		entropy: "9734088c96a50bb1ac407ad90f51762a8b1378ed69acf1c60bfcad46d9e94205",
		nonce:   "152d8ad41168102f0c2161e69788b017",
		prTrue:  true,
		reseeds: []katReseed{
			{entropy: "c5ebc89acab5c1b41def6abb08711c3f39970050b1cdb662f58cb7384ec450db"},
			{entropy: "1c5d5f462b08542d0efca135f3aeaca16326e3cee9d8769820f190d7df513ef5"},
		},
		returned: "4e71adc93b16701264723da862317dcfb216c596d3fc7075a5e128e15985e828" +
			"86ede162f96d6a5e3fa2f7a6478202739f4ba202a8de4311d04c96d253c54bae" +
			"82606dbebe8e81c962025f4f787c29283cff20c9135d2af9cadfba0ae93180b9" +
			"aeaeba6651709ae4d1843b7a2dfd8dbe99c4f2869d84f2ebd0853fcb2436b99f",
		outLen: 128,
	},
	{
		name:   "ctr/pr_true",
		mech:   "ctr",
		source: "cross-implementation (independent Python reference)",
		entropy: "8c4ebefa0f276c369c9ab67b1b66a8a3824319ee2aeb5a511c74185303bddf7d" +
			"7e6c1ce1f31533b107bd2b354be8b627",
		prTrue: true,
		reseeds: []katReseed{
			{entropy: "e92fb74f1ea0d12ce1eaaa20bfdfb1bbf3823a2a5dfbd892a3226faf1bcea81e" +
				"d2c5a3a9d32c9b5d946d8d6b7f60e030"},
			{entropy: "863a415fcad0babf9378ce3f2b9caf17e08f7813186ee3ae2210a05e7ca81b62" +
				"aaf4ddc8c53fb15ec3f7e331be598760"},
		},
		returned: "15b03c117e7955d224dfbe6cf4f73802a0cb96099a17001843bdfa9d7c2edf48" +
			"83ad5dc69df6050ac6bf967cb8a11ca59637da99c1d7c29eb591358dfca228c0",
		outLen: 64,
	},
	{
		name:   "ctr/no_reseed/pers_and_additional",
		mech:   "ctr",
		source: "cross-implementation (independent Python reference)",
		entropy: "12c714218847c613b64f632be45a38df103cb95878bc61a778600ab780de5eed" +
			"9360b56db39264f655146dad02207cf0",
		pers: "3761522666f97dd3a4c8b3cfd08763069a014b189bedd163831af793dd6b4235" +
			"b4d8f636787a8b6c11fcad5724bc2633",
		adds: [2]string{
			"7ca36f3098ef57b62138c6f59baa5b6fdee80936a0e253d338642120966e4c5e" +
				"10cab4cc8e75ef8daa6e0c1464bf14c4",
			"8d9b5275f8ccc9b1c4353be2923add0ac743e9e22d16c3fd7ee834cbeafec6c1" +
				"ee71d011dfa3fea68e7cc3d21835a618",
		},
		returned: "77399aa505bf222b8e83d6ccfc071a8fd9d26067ed9158b0a61ed12288006959" +
			"fd7a3b6d5fa6eefd12910ba3d953ca219c32be83928f3b502684473345f98edf",
		outLen: 64,
	},
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	if s == "" {
		return nil
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestKnownAnswerVectors(t *testing.T) {
	for _, v := range kats {
		t.Run(v.name, func(t *testing.T) {
			var d DRBG
			var err error
			switch v.mech {
			case "hmac":
				d, err = NewHMAC(mustHex(t, v.entropy), mustHex(t, v.nonce), mustHex(t, v.pers), HMACConfig{})
			case "ctr":
				d, err = NewCTR(mustHex(t, v.entropy), mustHex(t, v.pers), CTRConfig{})
			default:
				t.Fatalf("unknown mechanism %q", v.mech)
			}
			if err != nil {
				t.Fatalf("instantiate: %v", err)
			}
			if !v.prTrue {
				for _, r := range v.reseeds {
					if err := d.Reseed(mustHex(t, r.entropy), mustHex(t, r.add)); err != nil {
						t.Fatalf("reseed: %v", err)
					}
				}
			}
			out := make([]byte, v.outLen)
			for i := 0; i < 2; i++ {
				if v.prTrue {
					if err := d.Reseed(mustHex(t, v.reseeds[i].entropy), mustHex(t, v.reseeds[i].add)); err != nil {
						t.Fatalf("pr reseed %d: %v", i, err)
					}
				}
				if err := d.Generate(out, mustHex(t, v.adds[i])); err != nil {
					t.Fatalf("generate %d: %v", i, err)
				}
			}
			if want := mustHex(t, v.returned); !bytes.Equal(out, want) {
				t.Errorf("%s (%s):\n got  %x\n want %x", v.name, v.source, out, want)
			}
		})
	}
}
