package drbg

import "testing"

// BenchmarkDRBGGenerate measures the expansion-layer hot path: one
// instantiated DRBG generating 4 KiB blocks (the entropyd.DRBGPool
// block size). This is the number the ISSUE-5 acceptance compares to
// the raw calibrated path (BenchmarkLeapfrogBit, a few kB/s): the
// output rate of the served system is bounded by these throughputs
// instead of oscillator physics.
func BenchmarkDRBGGenerate(b *testing.B) {
	const block = 4096
	for _, mech := range []string{"hmac", "ctr"} {
		b.Run(mech, func(b *testing.B) {
			var d DRBG
			var err error
			switch mech {
			case "hmac":
				d, err = NewHMAC(testSeedB("e", 32), testSeedB("n", 16), nil, HMACConfig{})
			case "ctr":
				d, err = NewCTR(testSeedB("e", 48), nil, CTRConfig{})
			}
			if err != nil {
				b.Fatal(err)
			}
			out := make([]byte, block)
			b.SetBytes(block)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Generate(out, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// testSeedB mirrors testSeed for benchmarks (no *testing.T).
func testSeedB(label string, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(len(label) * (i + 1))
	}
	return out
}
