package measure

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/osc"
	"repro/internal/phase"
)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func newPair(t *testing.T, m phase.Model, seed uint64) *osc.Pair {
	t.Helper()
	p, err := osc.NewPair(m, 0, osc.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewCounterValidation(t *testing.T) {
	p := newPair(t, paperModel(), 1)
	if _, err := NewCounter(p, 0); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewCounter(nil, 4); err == nil {
		t.Fatal("nil pair accepted")
	}
}

func TestCounterMeanCount(t *testing.T) {
	// Identical nominal frequencies: Q_N averages N.
	p := newPair(t, paperModel(), 2)
	c, err := NewCounter(p, 128)
	if err != nil {
		t.Fatal(err)
	}
	q := c.QSeries(2000)
	var sum float64
	for _, v := range q {
		sum += float64(v)
	}
	mean := sum / float64(len(q))
	if math.Abs(mean-128) > 1 {
		t.Fatalf("mean count %g, want ~128", mean)
	}
}

func TestCounterTracksMismatch(t *testing.T) {
	// 1% faster counted oscillator: Q_N averages 1.01·N.
	m := paperModel()
	p, err := osc.NewPair(m, -0.00990099, osc.Options{Seed: 3})
	// Osc2 slower by ~1% → Osc1 counts ~1% more edges per window.
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCounter(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	q := c.QSeries(500)
	var sum float64
	for _, v := range q {
		sum += float64(v)
	}
	mean := sum / float64(len(q))
	if math.Abs(mean-1010) > 2 {
		t.Fatalf("mean count %g, want ~1010", mean)
	}
}

func TestSNFromQ(t *testing.T) {
	s := SNFromQ([]int64{100, 103, 99}, 100e6, 1)
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if math.Abs(s[0]-3e-8) > 1e-15 || math.Abs(s[1]+4e-8) > 1e-15 {
		t.Fatalf("s = %v", s)
	}
	if SNFromQ([]int64{5}, 1e8, 1) != nil {
		t.Fatal("single count should give nil")
	}
	// Subdivided counts scale by 1/M.
	s2 := SNFromQ([]int64{100, 103}, 100e6, 4)
	if math.Abs(s2[0]-3e-8/4) > 1e-18 {
		t.Fatalf("subdivided s = %g", s2[0])
	}
}

func TestSNFromQPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0=0")
		}
	}()
	SNFromQ([]int64{1, 2}, 0, 1)
}

func TestCounterSigmaN2MatchesRelativeTheory(t *testing.T) {
	// The counter measures the RELATIVE jitter: both oscillators
	// contribute, so σ²_N(counter) ≈ σ²_N(single) × 2 plus the
	// quantization floor. With an M=64 TDC the floor is negligible
	// at this N.
	m := paperModel()
	p := newPair(t, m, 4)
	const n = 4096
	c, err := NewCounterConfig(p, n, Config{Subdivide: 64})
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateSigmaN2(4000)
	if err != nil {
		t.Fatal(err)
	}
	rel := p.RelativeModel()
	want := rel.SigmaN2(n) + c.QuantizationFloor()
	if math.Abs(est.SigmaN2-want) > 0.15*want {
		t.Fatalf("counter σ²_N = %g, want ~%g (relative model + floor)", est.SigmaN2, want)
	}
}

func TestPlainCounterQuantizationDominatesSmallN(t *testing.T) {
	// The physics the package documentation warns about: a plain
	// single-edge counter at small N reports mostly quantization, not
	// jitter. This test pins the behaviour so nobody "fixes" it away.
	m := paperModel()
	p := newPair(t, m, 12)
	c, err := NewCounter(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateSigmaN2(4000)
	if err != nil {
		t.Fatal(err)
	}
	rel := p.RelativeModel()
	if est.SigmaN2 < 5*rel.SigmaN2(64) {
		t.Fatalf("expected quantization-dominated estimate, got %g vs signal %g",
			est.SigmaN2, rel.SigmaN2(64))
	}
}

func TestSubdivisionReducesQuantization(t *testing.T) {
	m := paperModel()
	p1 := newPair(t, m, 13)
	p2 := newPair(t, m, 13)
	const n = 64
	plain, err := NewCounter(p1, n)
	if err != nil {
		t.Fatal(err)
	}
	tdc, err := NewCounterConfig(p2, n, Config{Subdivide: 128})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := plain.EstimateSigmaN2(3000)
	if err != nil {
		t.Fatal(err)
	}
	et, err := tdc.EstimateSigmaN2(3000)
	if err != nil {
		t.Fatal(err)
	}
	if et.SigmaN2 >= ep.SigmaN2/3 {
		t.Fatalf("TDC did not reduce quantization: plain %g vs M=128 %g", ep.SigmaN2, et.SigmaN2)
	}
	if plain.QuantizationFloor() <= tdc.QuantizationFloor() {
		t.Fatal("floor ordering wrong")
	}
}

func TestCounterQuantizationFloor(t *testing.T) {
	// With all noise off, consecutive counts differ by at most 1 and
	// s_N variance is bounded by the quantization floor (1 count)².
	m := phase.Model{Bth: 0, Bfl: 0, F0: 103e6}
	p := newPair(t, m, 5)
	c, err := NewCounter(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	q := c.QSeries(1000)
	for i := 1; i < len(q); i++ {
		if d := q[i] - q[i-1]; d > 1 || d < -1 {
			t.Fatalf("noiseless counter jumped by %d", d)
		}
	}
}

func TestEstimateSigmaN2Validation(t *testing.T) {
	p := newPair(t, paperModel(), 6)
	c, err := NewCounter(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EstimateSigmaN2(2); err == nil {
		t.Fatal("2 windows accepted")
	}
}

func TestPeriodOsc1(t *testing.T) {
	p := newPair(t, paperModel(), 7)
	c, err := NewCounter(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.PeriodOsc1()-1/103e6) > 1e-18 {
		t.Fatalf("PeriodOsc1 = %g", c.PeriodOsc1())
	}
}

func TestSweepShapes(t *testing.T) {
	p := newPair(t, paperModel(), 8)
	ns := []int{16, 64, 256}
	ests, err := Sweep(p, SweepConfig{Ns: ns, WindowsPerN: 200, Subdivide: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(ns) {
		t.Fatalf("%d estimates", len(ests))
	}
	for i, e := range ests {
		if e.N != ns[i] || e.SigmaN2 <= 0 || e.StdErr <= 0 {
			t.Fatalf("estimate %d malformed: %+v", i, e)
		}
	}
	// σ²_N grows with N
	if !(ests[0].SigmaN2 < ests[1].SigmaN2 && ests[1].SigmaN2 < ests[2].SigmaN2) {
		t.Fatalf("σ²_N not increasing: %v", ests)
	}
}

func TestSweepBudget(t *testing.T) {
	p := newPair(t, paperModel(), 9)
	ests, err := Sweep(p, SweepConfig{Ns: []int{10, 1000}, WindowBudget: 10000, MinWindows: 16})
	if err != nil {
		t.Fatal(err)
	}
	// N=10 gets 1000 windows (+1 estimator adjustment), N=1000 floors
	// at MinWindows.
	if ests[0].Samples < 500 {
		t.Fatalf("small-N windows = %d", ests[0].Samples)
	}
	if ests[1].Samples > 50 {
		t.Fatalf("large-N windows = %d, expected floor ~16", ests[1].Samples)
	}
}

func TestSweepEmptyGrid(t *testing.T) {
	p := newPair(t, paperModel(), 10)
	if _, err := Sweep(p, SweepConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
}

func TestCounterVsDirectJitterConsistency(t *testing.T) {
	// Cross-validation: the counter-based σ²_N at moderate N must
	// agree with the direct-periods relative jitter statistic within
	// combined error bars. This ties the Fig.-6 circuit model to the
	// analytic chain end-to-end.
	m := paperModel()
	p := newPair(t, m, 11)
	const n = 1024
	c, err := NewCounterConfig(p, n, Config{Subdivide: 64})
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateSigmaN2(3000)
	if err != nil {
		t.Fatal(err)
	}
	rel := p.RelativeModel()
	want := rel.SigmaN2(n) + c.QuantizationFloor()
	if est.SigmaN2 < 0.7*want || est.SigmaN2 > 1.4*want {
		t.Fatalf("counter %g vs theory %g", est.SigmaN2, want)
	}
}

func paperPairFactory(mismatch float64) PairFactory {
	m := paperModel()
	return func(seed uint64) (*osc.Pair, error) {
		return osc.NewPair(m, mismatch, osc.Options{Seed: seed})
	}
}

func TestSweepParallelDeterminism(t *testing.T) {
	// The engine contract surfaced at the measurement layer: the
	// campaign result is a pure function of (seed, config) — worker
	// count must not be observable, down to the last bit.
	cfg := SweepConfig{Ns: []int{16, 64, 256, 1024}, WindowsPerN: 300, Subdivide: 64}
	ref, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Jobs != 0 {
		t.Fatal("config mutated")
	}
	for _, jobs := range []int{1, 2, 4, 8} {
		c := cfg
		c.Jobs = jobs
		got, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 5, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("jobs=%d: results differ from default-jobs run\n got %+v\nwant %+v", jobs, got, ref)
		}
	}
	// A different campaign seed must produce different data.
	other, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other, ref) {
		t.Fatal("seed not threaded into campaign cells")
	}
}

func TestSweepParallelMatchesSequentialStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical equivalence needs long captures")
	}
	// Parallel per-cell pairs must estimate the same physics as the
	// legacy one-long-capture Sweep: same σ²_N within error bars.
	ns := []int{64, 512, 4096}
	cfg := SweepConfig{Ns: ns, WindowsPerN: 2000, Subdivide: 64}
	par, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := newPair(t, paperModel(), 21)
	seq, err := Sweep(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		d := math.Abs(par[i].SigmaN2 - seq[i].SigmaN2)
		tol := 5 * (par[i].StdErr + seq[i].StdErr)
		if d > tol {
			t.Fatalf("N=%d: parallel %g vs sequential %g (tol %g)", ns[i], par[i].SigmaN2, seq[i].SigmaN2, tol)
		}
	}
}

func TestSweepParallelRace(t *testing.T) {
	// Race-safety witness: saturate the pool well past NumCPU so the
	// race detector (go test -race) sees real worker interleaving.
	cfg := SweepConfig{Ns: []int{8, 16, 32, 64, 128, 256, 8, 16, 32, 64, 128, 256},
		WindowsPerN: 100, Subdivide: 16, Jobs: 4 * runtime.NumCPU()}
	ests, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 7, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != len(cfg.Ns) {
		t.Fatalf("%d estimates", len(ests))
	}
	for i, e := range ests {
		if e.N != cfg.Ns[i] || e.SigmaN2 <= 0 {
			t.Fatalf("estimate %d malformed: %+v", i, e)
		}
	}
}

func TestSweepParallelValidation(t *testing.T) {
	if _, err := SweepParallel(context.Background(), paperPairFactory(0), 1, SweepConfig{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := SweepParallel(context.Background(), nil, 1, SweepConfig{Ns: []int{8}}); err == nil {
		t.Fatal("nil factory accepted")
	}
	bad := func(seed uint64) (*osc.Pair, error) { return nil, fmt.Errorf("factory down") }
	if _, err := SweepParallel(context.Background(), bad, 1, SweepConfig{Ns: []int{8, 16}}); err == nil {
		t.Fatal("factory error swallowed")
	}
}
