package measure

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSNFromQShiftInvariance: adding a constant to every count leaves
// s_N unchanged (differences kill constants) — the property that makes
// eq. 12 immune to the absolute counter offset.
func TestSNFromQShiftInvariance(t *testing.T) {
	f := func(raw []int16, off int16) bool {
		if len(raw) < 2 {
			return true
		}
		q := make([]int64, len(raw))
		qOff := make([]int64, len(raw))
		for i, v := range raw {
			q[i] = int64(v)
			qOff[i] = int64(v) + int64(off)
		}
		a := SNFromQ(q, 1e8, 4)
		b := SNFromQ(qOff, 1e8, 4)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSNFromQLinearity: s_N is linear in the counts.
func TestSNFromQLinearity(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		q := make([]int64, len(raw))
		q2 := make([]int64, len(raw))
		for i, v := range raw {
			q[i] = int64(v)
			q2[i] = 3 * int64(v)
		}
		a := SNFromQ(q, 1e8, 1)
		b := SNFromQ(q2, 1e8, 1)
		for i := range a {
			if math.Abs(b[i]-3*a[i]) > 1e-18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSubdivisionConsistency: the subdivided conversion divides by M,
// so integer counts scaled by M give identical seconds.
func TestSubdivisionConsistency(t *testing.T) {
	q := []int64{100, 103, 99, 101}
	qSub := make([]int64, len(q))
	const m = 16
	for i, v := range q {
		qSub[i] = v * m
	}
	a := SNFromQ(q, 1e8, 1)
	b := SNFromQ(qSub, 1e8, m)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-20 {
			t.Fatalf("subdivision inconsistency at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
