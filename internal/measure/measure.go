// Package measure simulates the differential jitter measurement
// circuitry of paper Fig. 6: two nominally identical ring oscillators
// Osc1 and Osc2, and a counter that records Q_N^i — the number of Osc1
// rising edges observed during N cycles of Osc2, counted from time t_i.
// Consecutive counting windows are adjacent, so
//
//	s_N(t_i) = (Q_N^{i+1} − Q_N^i)/f0        (eq. 12)
//
// recovers the paper's accumulated-jitter statistic from pure digital
// counter data: Q_N^{i+1} − Q_N^i is the second difference of the Osc1
// phase sampled at the window boundaries (eq. 8), so its variance obeys
// eq. 11 with the RELATIVE phase-noise coefficients (both rings
// contribute; for independent identical rings they double).
//
// # Quantization
//
// A single-edge counter resolves phase to one period, so the reported
// s_N carries a quantization error of order one count — far above the
// jitter signal at small N (the paper's own fit reaches f0²σ²_N ≈ 1
// count² only at N ≈ 3·10⁴). Real measurement campaigns deal with this
// by (a) relying on the natural frequency mismatch of "identical" rings
// to dither the boundary phase, (b) sub-period phase resolution
// (delay-line TDC taps, as available on the Evariste platform's
// carry-chain samplers), and (c) including the constant quantization
// floor as an additive term of the variance fit
// (fitting.FitWithOffset). The Counter supports (b) via Subdivide; the
// sweep documentation shows (a) and (c).
//
// The simulation is event-driven and bit-accurate with respect to an
// idealized synchronous counter (no metastability model: the paper's
// analysis likewise ignores sampling metastability, which perturbs Q_N
// by at most ±1 count).
package measure

import (
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/jitter"
	"repro/internal/osc"
	"repro/internal/stats"
)

// edgeChunk is the Osc1/Osc2 read-ahead chunk size: large enough to
// amortize per-edge call overhead, small enough that the read-ahead a
// counter may discard when re-armed mid-stream stays negligible.
const edgeChunk = 512

// Counter is the differential counter of Fig. 6 configured for windows
// of n reference (Osc2) cycles.
type Counter struct {
	pair *osc.Pair
	n    int
	sub  int
	leap bool // leapfrog window mode (see Config.Leapfrog)
	// Osc1 waveform tracking for the event-driven phase read-out.
	// Edges are pulled through a chunk buffer (osc.NextEdges) so the
	// hot loop pays one oscillator call per edgeChunk edges instead of
	// one per edge.
	edges     uint64  // rising edges emitted up to nextEdge1 (exclusive)
	lastEdge1 float64 // time of the most recent Osc1 edge <= cursor
	nextEdge1 float64 // time of the next Osc1 edge
	buf1      []float64
	pos1      int
	win2      []float64 // Osc2 window scratch for chunked advancement
	lastQ     int64     // subdivided phase count at the previous boundary
	primed    bool
}

// Config parameterizes a Counter beyond the window length.
type Config struct {
	// Subdivide is the sub-period phase resolution M: the counter
	// resolves Osc1 phase to 1/(M·f0) (a delay-line TDC with M taps).
	// 1 (or 0) is the plain single-edge counter of Fig. 6.
	Subdivide int
	// Leapfrog selects the O(1)-per-window fast path: each window
	// jumps Osc2 by N periods in closed form (osc.Leapfrog), jumps
	// Osc1 to just short of the window boundary
	// (osc.LeapfrogToBefore), and walks only the few remaining guard
	// edges exactly for the TDC phase interpolation. The counts are
	// exact in distribution (same σ²_N law, same Q_N moments) but are
	// a different realization than the edge-level reference path;
	// oscillators that cannot leapfrog (installed Modulator, Kasdin
	// flicker backend) fall back to edge stepping inside internal/osc,
	// so the mode is always safe to request.
	Leapfrog bool
}

// NewCounter attaches a plain single-edge counter to an oscillator
// pair. n is the number of Osc2 cycles per counting window (the
// paper's N).
func NewCounter(pair *osc.Pair, n int) (*Counter, error) {
	return NewCounterConfig(pair, n, Config{})
}

// NewCounterConfig attaches a counter with explicit configuration.
func NewCounterConfig(pair *osc.Pair, n int, cfg Config) (*Counter, error) {
	if n < 1 {
		return nil, fmt.Errorf("measure: window length N = %d must be >= 1", n)
	}
	if pair == nil || pair.Osc1 == nil || pair.Osc2 == nil {
		return nil, fmt.Errorf("measure: nil oscillator pair")
	}
	sub := cfg.Subdivide
	if sub == 0 {
		sub = 1
	}
	if sub < 1 || sub > 1<<20 {
		return nil, fmt.Errorf("measure: subdivision %d out of [1, 2^20]", sub)
	}
	return &Counter{pair: pair, n: n, sub: sub, leap: cfg.Leapfrog}, nil
}

// N returns the configured window length.
func (c *Counter) N() int { return c.n }

// Subdivision returns the phase resolution M.
func (c *Counter) Subdivision() int { return c.sub }

// PeriodOsc1 returns the nominal period 1/f0 of the counted oscillator,
// the conversion factor of eq. 12 (counts → seconds).
func (c *Counter) PeriodOsc1() float64 { return 1 / c.pair.Osc1.F0() }

// Resolution returns the counter's time resolution 1/(M·f0) in seconds.
func (c *Counter) Resolution() float64 { return c.PeriodOsc1() / float64(c.sub) }

// nextOsc1Edge returns the time of Osc1's next rising edge. The edge
// path refills a read-ahead chunk buffer; the leapfrog path pulls
// single edges, because phiAt's boundary jump advances Osc1's own
// cursor and any unconsumed read-ahead would be skipped over.
func (c *Counter) nextOsc1Edge() float64 {
	if c.leap {
		return c.pair.Osc1.NextEdge()
	}
	if c.pos1 == len(c.buf1) {
		if c.buf1 == nil {
			c.buf1 = make([]float64, edgeChunk)
		}
		c.pair.Osc1.NextEdges(c.buf1)
		c.pos1 = 0
	}
	e := c.buf1[c.pos1]
	c.pos1++
	return e
}

// advanceOsc2 advances Osc2 by n periods and returns the time of its
// last edge (== Osc2.Now() afterwards). In leapfrog mode the whole
// window is one closed-form jump.
func (c *Counter) advanceOsc2(n int) float64 {
	if c.leap {
		g := c.pair.Osc2.Leapfrog(n)
		return g[len(g)-1]
	}
	if c.win2 == nil {
		w := n
		if w > edgeChunk {
			w = edgeChunk
		}
		c.win2 = make([]float64, w)
	}
	end := c.pair.Osc2.Now()
	for n > 0 {
		k := n
		if k > len(c.win2) {
			k = len(c.win2)
		}
		chunk := c.pair.Osc2.NextEdges(c.win2[:k])
		end = chunk[k-1]
		n -= k
	}
	return end
}

// phiAt advances the Osc1 edge cursor to cover time t and returns the
// subdivided phase count floor(M·Φ1(t)), where Φ1 counts Osc1 periods
// with linear interpolation inside the current period (the TDC model).
func (c *Counter) phiAt(t float64) int64 {
	if c.leap && c.nextEdge1 <= t {
		// Fast path: Osc1's cursor sits exactly on the already-pulled
		// nextEdge1 (leapfrog counters read no further ahead), so jump
		// it to just short of the boundary and let the loop below walk
		// the remaining slack edges. The jump emits j edges beyond
		// nextEdge1, all ≤ t with overwhelming probability; nextEdge1
		// itself plus those j edges enter the phase count, and the
		// jump's last edge becomes the interpolation anchor.
		if j := c.pair.Osc1.LeapfrogToBefore(t); j > 0 {
			c.edges += j + 1
			c.lastEdge1 = c.pair.Osc1.Now()
			c.nextEdge1 = c.nextOsc1Edge()
		}
	}
	for c.nextEdge1 <= t {
		c.lastEdge1 = c.nextEdge1
		c.nextEdge1 = c.nextOsc1Edge()
		c.edges++
	}
	frac := 0.0
	if c.nextEdge1 > c.lastEdge1 {
		frac = (t - c.lastEdge1) / (c.nextEdge1 - c.lastEdge1)
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	return int64(c.edges)*int64(c.sub) + int64(frac*float64(c.sub))
}

// NextQ runs one counting window of N Osc2 cycles and returns Q_N in
// subdivided counts: the Osc1 phase advance across the window
// [start, end), where start is the end of the previous window. With
// Subdivide == 1 this is exactly the number of Osc1 rising edges inside
// the window.
func (c *Counter) NextQ() int64 {
	if !c.primed {
		// Arm the counter. Osc1's most recent emitted edge anchors
		// the phase interpolation, but when arming mid-run that edge
		// can lie AFTER the current Osc2 boundary, so the phase read
		// at the arming instant is unreliable by up to one period —
		// enormous compared to s_N. A real synchronous counter has
		// the same start-up hazard; like hardware, we warm up: run
		// one full counting window before the first reported Q, so
		// every reported count uses boundaries measured with a
		// settled edge cursor.
		// A counter arms exactly once, before its read-ahead buffer
		// has drawn anything, so the oscillator's current edge is the
		// anchor (exactly the old behaviour). When arming on a pair
		// another counter already read ahead on, Osc1.Now() may lie
		// past the Osc2 boundary — the start-up hazard the warm-up
		// window below absorbs.
		c.lastEdge1 = c.pair.Osc1.Now()
		c.nextEdge1 = c.nextOsc1Edge()
		c.phiAt(c.pair.Osc2.Now())
		// Warm up: at least one full window, and as many more as it
		// takes for the edge cursor to straddle the window boundary
		// (lastEdge1 <= boundary < nextEdge1). A counter arming after
		// another counter's chunked read-ahead on the same pair starts
		// with its anchor up to edgeChunk periods past the Osc2
		// cursor; reporting counts before the cursor re-enters the
		// live edge stream would return pure warm-up artifacts.
		for {
			end := c.advanceOsc2(c.n)
			c.lastQ = c.phiAt(end)
			if c.lastEdge1 <= end {
				break
			}
		}
		c.primed = true
	}
	end := c.advanceOsc2(c.n)
	q := c.phiAt(end)
	dq := q - c.lastQ
	c.lastQ = q
	return dq
}

// QSeries collects m consecutive window counts.
func (c *Counter) QSeries(m int) []int64 {
	out := make([]int64, m)
	for i := range out {
		out[i] = c.NextQ()
	}
	return out
}

// SNFromQ converts consecutive window counts into s_N values via eq. 12
// generalized to subdivided counts:
// s_N(t_i) = (Q_N^{i+1} − Q_N^i)/(M·f0). The result has len(q)−1
// entries.
func SNFromQ(q []int64, f0 float64, subdivide int) []float64 {
	if f0 <= 0 {
		panic(fmt.Sprintf("measure: f0 = %g must be > 0", f0))
	}
	if subdivide < 1 {
		panic(fmt.Sprintf("measure: subdivision %d must be >= 1", subdivide))
	}
	if len(q) < 2 {
		return nil
	}
	out := make([]float64, len(q)-1)
	scale := 1 / (f0 * float64(subdivide))
	for i := 1; i < len(q); i++ {
		out[i-1] = float64(q[i]-q[i-1]) * scale
	}
	return out
}

// SN runs the counter for windows+1 windows and returns the s_N series
// in seconds.
func (c *Counter) SN(windows int) []float64 {
	q := c.QSeries(windows + 1)
	return SNFromQ(q, c.pair.Osc1.F0(), c.sub)
}

// QuantizationFloor returns the additive variance contributed by the
// counter's phase quantization to Var(s_N) when the boundary phase is
// well dithered (mismatched rings): the second difference of three
// independent uniform quantization errors has variance 6·Δ²/12 with
// Δ = 1/(M·f0), i.e. Δ²/2.
func (c *Counter) QuantizationFloor() float64 {
	d := c.Resolution()
	return d * d / 2
}

// EstimateSigmaN2 measures σ²_N from windows consecutive counter
// readings: it collects Q_N, forms s_N via eq. 12 and returns the
// variance with its standard error. Adjacent s_N values share one Q_N
// reading, so they have a lag-1 correlation of −1/2 under independence;
// the standard error accounts for it with the conservative factor √2.
//
// The returned variance INCLUDES the counter quantization floor; use
// fitting.FitWithOffset (or subtract QuantizationFloor for a dithered
// counter) when small-N precision matters.
func (c *Counter) EstimateSigmaN2(windows int) (jitter.VarianceEstimate, error) {
	if windows < 3 {
		return jitter.VarianceEstimate{}, fmt.Errorf("measure: need >= 3 windows, got %d", windows)
	}
	s := c.SN(windows)
	_, v := stats.MeanVariance(s)
	return jitter.VarianceEstimate{
		N:       c.n,
		SigmaN2: v,
		StdErr:  stats.StdErrOfVariance(v, len(s)) * math.Sqrt2,
		Samples: len(s),
	}, nil
}

// SweepConfig controls a multi-N measurement campaign (the Fig. 7
// experiment).
type SweepConfig struct {
	// Ns is the window-length grid.
	Ns []int
	// WindowsPerN is the number of counter windows collected at each
	// N. More windows shrink the σ²_N error bars as 1/√windows.
	WindowsPerN int
	// WindowBudget, when > 0, replaces WindowsPerN with
	// max(minWindows, WindowBudget/N): a fixed total-periods budget
	// spread across the sweep, matching how a fixed-duration hardware
	// capture behaves.
	WindowBudget int
	// MinWindows floors the per-N window count when WindowBudget is
	// used (default 64).
	MinWindows int
	// Subdivide forwards the TDC resolution to every counter.
	Subdivide int
	// Leapfrog forwards the O(1)-per-window fast path to every
	// counter (see Config.Leapfrog): large-N cells cost O(windows)
	// instead of O(windows·N), which is what makes calibrated-physics
	// campaigns at the paper's operating point affordable.
	Leapfrog bool
	// Jobs is the engine worker-pool width used by SweepParallel:
	// 0 selects runtime.NumCPU(), 1 forces the sequential reference
	// path. The results are bit-identical for every value.
	Jobs int
}

// windowsFor returns the number of counter windows collected at grid
// point N under this configuration's budget policy.
func (cfg SweepConfig) windowsFor(n int) int {
	minW := cfg.MinWindows
	if minW == 0 {
		minW = 64
	}
	windows := cfg.WindowsPerN
	if cfg.WindowBudget > 0 {
		windows = cfg.WindowBudget / n
		if windows < minW {
			windows = minW
		}
	}
	if windows < 3 {
		windows = 3
	}
	return windows
}

// Sweep runs the Fig. 7 campaign against ONE live pair: for every N in
// cfg.Ns it configures a counter on the pair and estimates σ²_N. The
// pair's oscillators keep advancing across Ns (one long capture, like
// the hardware experiment) — the right shape when the pair is a
// specific physical article being measured (core.Measure, attack
// scenarios with armed modulators). Campaign-style reproduction runs
// that only need statistically equivalent cells should use
// SweepParallel, which fans the grid out on the engine worker pool.
func Sweep(pair *osc.Pair, cfg SweepConfig) ([]jitter.VarianceEstimate, error) {
	if len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("measure: empty N grid")
	}
	out := make([]jitter.VarianceEstimate, 0, len(cfg.Ns))
	for _, n := range cfg.Ns {
		c, err := NewCounterConfig(pair, n, Config{Subdivide: cfg.Subdivide, Leapfrog: cfg.Leapfrog})
		if err != nil {
			return nil, err
		}
		est, err := c.EstimateSigmaN2(cfg.windowsFor(n))
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// PairFactory builds an independent oscillator pair from a campaign
// task seed. core's Model.RingPair and Model.SimulatePair satisfy it
// directly.
type PairFactory func(seed uint64) (*osc.Pair, error)

// SweepParallel runs the Fig. 7 campaign as one engine task per N
// value: campaign cell i gets its own independent pair built from
// mk(engine.DeriveSeed(seed, i)), its own counter, and writes only its
// own result slot. Results are therefore bit-identical for every
// worker-pool width (cfg.Jobs), including the sequential Jobs == 1
// reference path, and depend only on (seed, cfg).
//
// Statistically the per-cell pairs are as faithful as Sweep's one long
// capture: the flicker generators start in their stationary
// distribution, so every cell observes the same stationary jitter
// process the hardware capture does.
func SweepParallel(ctx context.Context, mk PairFactory, seed uint64, cfg SweepConfig) ([]jitter.VarianceEstimate, error) {
	if len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("measure: empty N grid")
	}
	if mk == nil {
		return nil, fmt.Errorf("measure: nil pair factory")
	}
	return engine.Map(ctx, len(cfg.Ns), func(_ context.Context, i int) (jitter.VarianceEstimate, error) {
		n := cfg.Ns[i]
		pair, err := mk(engine.DeriveSeed(seed, uint64(i)))
		if err != nil {
			return jitter.VarianceEstimate{}, err
		}
		c, err := NewCounterConfig(pair, n, Config{Subdivide: cfg.Subdivide, Leapfrog: cfg.Leapfrog})
		if err != nil {
			return jitter.VarianceEstimate{}, err
		}
		return c.EstimateSigmaN2(cfg.windowsFor(n))
	}, engine.Jobs(cfg.Jobs))
}
