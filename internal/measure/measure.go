// Package measure simulates the differential jitter measurement
// circuitry of paper Fig. 6: two nominally identical ring oscillators
// Osc1 and Osc2, and a counter that records Q_N^i — the number of Osc1
// rising edges observed during N cycles of Osc2, counted from time t_i.
// Consecutive counting windows are adjacent, so
//
//	s_N(t_i) = (Q_N^{i+1} − Q_N^i)/f0        (eq. 12)
//
// recovers the paper's accumulated-jitter statistic from pure digital
// counter data: Q_N^{i+1} − Q_N^i is the second difference of the Osc1
// phase sampled at the window boundaries (eq. 8), so its variance obeys
// eq. 11 with the RELATIVE phase-noise coefficients (both rings
// contribute; for independent identical rings they double).
//
// # Quantization
//
// A single-edge counter resolves phase to one period, so the reported
// s_N carries a quantization error of order one count — far above the
// jitter signal at small N (the paper's own fit reaches f0²σ²_N ≈ 1
// count² only at N ≈ 3·10⁴). Real measurement campaigns deal with this
// by (a) relying on the natural frequency mismatch of "identical" rings
// to dither the boundary phase, (b) sub-period phase resolution
// (delay-line TDC taps, as available on the Evariste platform's
// carry-chain samplers), and (c) including the constant quantization
// floor as an additive term of the variance fit
// (fitting.FitWithOffset). The Counter supports (b) via Subdivide; the
// sweep documentation shows (a) and (c).
//
// The simulation is event-driven and bit-accurate with respect to an
// idealized synchronous counter (no metastability model: the paper's
// analysis likewise ignores sampling metastability, which perturbs Q_N
// by at most ±1 count).
package measure

import (
	"fmt"
	"math"

	"repro/internal/jitter"
	"repro/internal/osc"
	"repro/internal/stats"
)

// Counter is the differential counter of Fig. 6 configured for windows
// of n reference (Osc2) cycles.
type Counter struct {
	pair *osc.Pair
	n    int
	sub  int
	// Osc1 waveform tracking for the event-driven phase read-out.
	edges     uint64  // rising edges emitted up to nextEdge1 (exclusive)
	lastEdge1 float64 // time of the most recent Osc1 edge <= cursor
	nextEdge1 float64 // time of the next Osc1 edge
	lastQ     int64   // subdivided phase count at the previous boundary
	primed    bool
}

// Config parameterizes a Counter beyond the window length.
type Config struct {
	// Subdivide is the sub-period phase resolution M: the counter
	// resolves Osc1 phase to 1/(M·f0) (a delay-line TDC with M taps).
	// 1 (or 0) is the plain single-edge counter of Fig. 6.
	Subdivide int
}

// NewCounter attaches a plain single-edge counter to an oscillator
// pair. n is the number of Osc2 cycles per counting window (the
// paper's N).
func NewCounter(pair *osc.Pair, n int) (*Counter, error) {
	return NewCounterConfig(pair, n, Config{})
}

// NewCounterConfig attaches a counter with explicit configuration.
func NewCounterConfig(pair *osc.Pair, n int, cfg Config) (*Counter, error) {
	if n < 1 {
		return nil, fmt.Errorf("measure: window length N = %d must be >= 1", n)
	}
	if pair == nil || pair.Osc1 == nil || pair.Osc2 == nil {
		return nil, fmt.Errorf("measure: nil oscillator pair")
	}
	sub := cfg.Subdivide
	if sub == 0 {
		sub = 1
	}
	if sub < 1 || sub > 1<<20 {
		return nil, fmt.Errorf("measure: subdivision %d out of [1, 2^20]", sub)
	}
	return &Counter{pair: pair, n: n, sub: sub}, nil
}

// N returns the configured window length.
func (c *Counter) N() int { return c.n }

// Subdivision returns the phase resolution M.
func (c *Counter) Subdivision() int { return c.sub }

// PeriodOsc1 returns the nominal period 1/f0 of the counted oscillator,
// the conversion factor of eq. 12 (counts → seconds).
func (c *Counter) PeriodOsc1() float64 { return 1 / c.pair.Osc1.F0() }

// Resolution returns the counter's time resolution 1/(M·f0) in seconds.
func (c *Counter) Resolution() float64 { return c.PeriodOsc1() / float64(c.sub) }

// phiAt advances the Osc1 edge cursor to cover time t and returns the
// subdivided phase count floor(M·Φ1(t)), where Φ1 counts Osc1 periods
// with linear interpolation inside the current period (the TDC model).
func (c *Counter) phiAt(t float64) int64 {
	for c.nextEdge1 <= t {
		c.lastEdge1 = c.nextEdge1
		c.nextEdge1 = c.pair.Osc1.NextEdge()
		c.edges++
	}
	frac := 0.0
	if c.nextEdge1 > c.lastEdge1 {
		frac = (t - c.lastEdge1) / (c.nextEdge1 - c.lastEdge1)
	}
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	return int64(c.edges)*int64(c.sub) + int64(frac*float64(c.sub))
}

// NextQ runs one counting window of N Osc2 cycles and returns Q_N in
// subdivided counts: the Osc1 phase advance across the window
// [start, end), where start is the end of the previous window. With
// Subdivide == 1 this is exactly the number of Osc1 rising edges inside
// the window.
func (c *Counter) NextQ() int64 {
	if !c.primed {
		// Arm the counter. Osc1's most recent emitted edge anchors
		// the phase interpolation, but when arming mid-run that edge
		// can lie AFTER the current Osc2 boundary, so the phase read
		// at the arming instant is unreliable by up to one period —
		// enormous compared to s_N. A real synchronous counter has
		// the same start-up hazard; like hardware, we warm up: run
		// one full counting window before the first reported Q, so
		// every reported count uses boundaries measured with a
		// settled edge cursor.
		c.lastEdge1 = c.pair.Osc1.Now()
		c.nextEdge1 = c.pair.Osc1.NextEdge()
		c.phiAt(c.pair.Osc2.Now())
		for i := 0; i < c.n; i++ {
			c.pair.Osc2.NextPeriod()
		}
		c.lastQ = c.phiAt(c.pair.Osc2.Now())
		c.primed = true
	}
	for i := 0; i < c.n; i++ {
		c.pair.Osc2.NextPeriod()
	}
	end := c.pair.Osc2.Now()
	q := c.phiAt(end)
	dq := q - c.lastQ
	c.lastQ = q
	return dq
}

// QSeries collects m consecutive window counts.
func (c *Counter) QSeries(m int) []int64 {
	out := make([]int64, m)
	for i := range out {
		out[i] = c.NextQ()
	}
	return out
}

// SNFromQ converts consecutive window counts into s_N values via eq. 12
// generalized to subdivided counts:
// s_N(t_i) = (Q_N^{i+1} − Q_N^i)/(M·f0). The result has len(q)−1
// entries.
func SNFromQ(q []int64, f0 float64, subdivide int) []float64 {
	if f0 <= 0 {
		panic(fmt.Sprintf("measure: f0 = %g must be > 0", f0))
	}
	if subdivide < 1 {
		panic(fmt.Sprintf("measure: subdivision %d must be >= 1", subdivide))
	}
	if len(q) < 2 {
		return nil
	}
	out := make([]float64, len(q)-1)
	scale := 1 / (f0 * float64(subdivide))
	for i := 1; i < len(q); i++ {
		out[i-1] = float64(q[i]-q[i-1]) * scale
	}
	return out
}

// SN runs the counter for windows+1 windows and returns the s_N series
// in seconds.
func (c *Counter) SN(windows int) []float64 {
	q := c.QSeries(windows + 1)
	return SNFromQ(q, c.pair.Osc1.F0(), c.sub)
}

// QuantizationFloor returns the additive variance contributed by the
// counter's phase quantization to Var(s_N) when the boundary phase is
// well dithered (mismatched rings): the second difference of three
// independent uniform quantization errors has variance 6·Δ²/12 with
// Δ = 1/(M·f0), i.e. Δ²/2.
func (c *Counter) QuantizationFloor() float64 {
	d := c.Resolution()
	return d * d / 2
}

// EstimateSigmaN2 measures σ²_N from windows consecutive counter
// readings: it collects Q_N, forms s_N via eq. 12 and returns the
// variance with its standard error. Adjacent s_N values share one Q_N
// reading, so they have a lag-1 correlation of −1/2 under independence;
// the standard error accounts for it with the conservative factor √2.
//
// The returned variance INCLUDES the counter quantization floor; use
// fitting.FitWithOffset (or subtract QuantizationFloor for a dithered
// counter) when small-N precision matters.
func (c *Counter) EstimateSigmaN2(windows int) (jitter.VarianceEstimate, error) {
	if windows < 3 {
		return jitter.VarianceEstimate{}, fmt.Errorf("measure: need >= 3 windows, got %d", windows)
	}
	s := c.SN(windows)
	_, v := stats.MeanVariance(s)
	return jitter.VarianceEstimate{
		N:       c.n,
		SigmaN2: v,
		StdErr:  stats.StdErrOfVariance(v, len(s)) * math.Sqrt2,
		Samples: len(s),
	}, nil
}

// SweepConfig controls a multi-N measurement campaign (the Fig. 7
// experiment).
type SweepConfig struct {
	// Ns is the window-length grid.
	Ns []int
	// WindowsPerN is the number of counter windows collected at each
	// N. More windows shrink the σ²_N error bars as 1/√windows.
	WindowsPerN int
	// WindowBudget, when > 0, replaces WindowsPerN with
	// max(minWindows, WindowBudget/N): a fixed total-periods budget
	// spread across the sweep, matching how a fixed-duration hardware
	// capture behaves.
	WindowBudget int
	// MinWindows floors the per-N window count when WindowBudget is
	// used (default 64).
	MinWindows int
	// Subdivide forwards the TDC resolution to every counter.
	Subdivide int
}

// Sweep runs the Fig. 7 campaign: for every N in cfg.Ns it configures a
// counter on the pair and estimates σ²_N. The pair's oscillators keep
// advancing across Ns (one long capture, like the hardware experiment).
func Sweep(pair *osc.Pair, cfg SweepConfig) ([]jitter.VarianceEstimate, error) {
	if len(cfg.Ns) == 0 {
		return nil, fmt.Errorf("measure: empty N grid")
	}
	minW := cfg.MinWindows
	if minW == 0 {
		minW = 64
	}
	out := make([]jitter.VarianceEstimate, 0, len(cfg.Ns))
	for _, n := range cfg.Ns {
		windows := cfg.WindowsPerN
		if cfg.WindowBudget > 0 {
			windows = cfg.WindowBudget / n
			if windows < minW {
				windows = minW
			}
		}
		if windows < 3 {
			windows = 3
		}
		c, err := NewCounterConfig(pair, n, Config{Subdivide: cfg.Subdivide})
		if err != nil {
			return nil, err
		}
		est, err := c.EstimateSigmaN2(windows)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}
