package measure

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/fitting"
	"repro/internal/osc"
)

// TestLeapfrogCounterMeanCount checks the fast path's Q_N first moment
// at a window length where every window really jumps: with a 1% slower
// reference oscillator the counted ring still averages 1.01·N edges
// per window.
func TestLeapfrogCounterMeanCount(t *testing.T) {
	m := paperModel()
	p, err := osc.NewPair(m, -0.00990099, osc.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	c, err := NewCounterConfig(p, n, Config{Leapfrog: true})
	if err != nil {
		t.Fatal(err)
	}
	q := c.QSeries(500)
	var sum float64
	for _, v := range q {
		sum += float64(v)
	}
	mean := sum / float64(len(q))
	if want := 1.01 * n; math.Abs(mean-want) > 4 {
		t.Fatalf("leapfrog mean count %g, want ~%g", mean, want)
	}
}

// TestLeapfrogCounterSigmaN2MatchesRelativeTheory mirrors the edge-path
// test of the same name on the fast path: the leapfrog counter must
// measure the same relative σ²_N law (eq. 11 with doubled coefficients,
// plus the TDC quantization floor).
func TestLeapfrogCounterSigmaN2MatchesRelativeTheory(t *testing.T) {
	m := paperModel()
	p := newPair(t, m, 4)
	const n = 4096
	c, err := NewCounterConfig(p, n, Config{Subdivide: 64, Leapfrog: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateSigmaN2(4000)
	if err != nil {
		t.Fatal(err)
	}
	rel := p.RelativeModel()
	want := rel.SigmaN2(n) + c.QuantizationFloor()
	if math.Abs(est.SigmaN2-want) > 0.15*want {
		t.Fatalf("leapfrog counter σ²_N = %g, want ~%g (relative model + floor)", est.SigmaN2, want)
	}
}

// TestLeapfrogSweepMatchesEdgePath is the distributional-equivalence
// pin of the fast path: a σ²_N sweep on leapfrog counters must agree
// with the edge-level golden reference cell by cell within error bars,
// and its quadratic fit must recover the model coefficients — the same
// tolerances the experiments suite applies to the edge path.
func TestLeapfrogSweepMatchesEdgePath(t *testing.T) {
	if testing.Short() {
		t.Skip("edge-path reference sweep is long")
	}
	m := paperModel()
	cfg := SweepConfig{Ns: []int{64, 512, 4096, 16384}, WindowsPerN: 800, Subdivide: 256}
	edge, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := cfg
	lcfg.Leapfrog = true
	leap, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 109, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Ns {
		d := math.Abs(leap[i].SigmaN2 - edge[i].SigmaN2)
		tol := 5 * (leap[i].StdErr + edge[i].StdErr)
		if d > tol {
			t.Fatalf("N=%d: leapfrog %g vs edge %g (tol %g)", cfg.Ns[i], leap[i].SigmaN2, edge[i].SigmaN2, tol)
		}
	}
	fit, err := fitting.FitWithOffset(leap, m.F0)
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB := m.FitCoefficients()
	// Relative model: both rings contribute, coefficients double.
	if math.Abs(fit.A-2*wantA) > 0.15*2*wantA {
		t.Fatalf("leapfrog fit a = %g, want ~%g", fit.A, 2*wantA)
	}
	if math.Abs(fit.B-2*wantB) > 0.30*2*wantB {
		t.Fatalf("leapfrog fit b = %g, want ~%g", fit.B, 2*wantB)
	}
}

// TestLeapfrogSweepDeterminism extends the campaign determinism
// contract to the fast path: leapfrog sweeps are bit-identical for
// every worker-pool width, and the mode flag changes the realization
// (fast and edge cells draw different streams).
func TestLeapfrogSweepDeterminism(t *testing.T) {
	cfg := SweepConfig{Ns: []int{256, 2048, 16384}, WindowsPerN: 200, Subdivide: 64, Leapfrog: true}
	ref, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		c := cfg
		c.Jobs = jobs
		got, err := SweepParallel(context.Background(), paperPairFactory(2e-3), 5, c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("jobs=%d: leapfrog results differ from default-jobs run", jobs)
		}
	}
}
