// Package experiments regenerates every evaluation artifact of the
// paper: Fig. 7, the r_N ratio and independence
// threshold, the §IV-B thermal-noise extraction, the eq. 9 vs eq. 11
// identity, the independence ablations, the naive-vs-refined entropy
// comparison, the online-test attack detection, and the AIS31 context
// runs.
//
// Each experiment returns a result struct with a Table() renderer that
// prints the same rows/series the paper reports, side by side with the
// paper's values where the paper states them. The benchmark harness
// (bench_test.go) and cmd/experiments both drive these functions, so
// every reported table regenerates from a single source of truth.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fitting"
	"repro/internal/jitter"
	"repro/internal/measure"
	"repro/internal/phase"
)

// Options tunes how a campaign executes without changing what it
// computes: every experiment fans its cells out on the
// internal/engine worker pool, and the engine's determinism contract
// guarantees the tables are bit-identical for every Jobs value.
type Options struct {
	// Jobs is the worker-pool width: 0 selects runtime.NumCPU(),
	// 1 forces the sequential reference path.
	Jobs int
	// Leapfrog runs the counter campaigns on the O(1)-per-window fast
	// path (measure.Config.Leapfrog): cells cost O(windows) instead of
	// O(windows·N), which makes the large-N end of Fig. 7 essentially
	// free. The tables are statistically equivalent to the edge-level
	// reference (same σ²_N law, same fits within tolerance) but not
	// bit-identical to it: the fast path draws a different — equally
	// valid — realization of the same jitter process.
	Leapfrog bool
	// Stream arms the streaming surveillance tracker
	// (internal/sp90b/stream) on every pool the attack campaign
	// builds, at the matrix operating point's sample size and
	// threshold: sliding-window live estimates gate mid-window instead
	// of once per batch cadence, so sp90b-class detections fire with
	// the "live-low-entropy" reason and shorter raw-bit latencies.
	Stream bool
}

// Paper-reported constants (§III-E, §IV-B).
const (
	PaperF0          = 103e6   // Hz
	PaperSlopeA      = 5.36e-6 // f0²σ²_N / N, thermal slope
	PaperCornerRatio = 5354.0  // a/b
	PaperBth         = 276.04  // Hz
	PaperSigmaPs     = 15.89   // ps
	PaperRatioPermil = 1.6     // σ/T0 in ‰
	PaperN95         = 281     // N*(95 %)
)

// Scale selects the effort level of an experiment run.
type Scale int

// Effort levels.
const (
	// Quick targets CI and benchmarks: minutes of CPU total.
	Quick Scale = iota
	// Full targets publication-grade regeneration: closer to the
	// paper's statistical weight.
	Full
)

func (s Scale) windows() int {
	if s == Full {
		return 8192
	}
	return 1500
}

// Fig7Row is one point of the Fig. 7 series.
type Fig7Row struct {
	N int
	// MeasuredNorm is f0²·σ²_N from the counter campaign (the
	// paper's y axis), with the quantization offset already
	// subtracted via the fit's constant term.
	MeasuredNorm float64
	// TheoryNorm is f0²·σ²_N from the calibrated model (eq. 11).
	TheoryNorm float64
	// StdErrNorm is the 1σ uncertainty of MeasuredNorm.
	StdErrNorm float64
}

// Fig7Result is the EXP-F7 outcome.
type Fig7Result struct {
	Rows []Fig7Row
	Fit  fitting.Result
	// Model is the calibration the simulated pair was built from
	// (the paper's measured model).
	Model phase.Model
}

// Fig7 reproduces Fig. 7: a counter sweep over N on simulated 103 MHz
// pairs calibrated to the paper, with the quadratic fit overlay. It
// runs with the default worker-pool width; see Fig7Opts.
func Fig7(scale Scale, seed uint64) (Fig7Result, error) {
	return Fig7Opts(scale, seed, Options{})
}

// Fig7Opts is Fig7 with explicit execution options. The campaign fans
// out one engine task per accumulation length N; each cell builds its
// own paper-calibrated pair from a seed derived from the campaign
// seed, so the table depends only on (scale, seed).
func Fig7Opts(scale Scale, seed uint64, opt Options) (Fig7Result, error) {
	m := core.PaperModel()
	ns := jitter.LogSpacedNs(16, 32768, 4)
	sweep, err := measure.SweepParallel(context.Background(), m.RingPair, seed, measure.SweepConfig{
		Ns: ns, WindowsPerN: scale.windows(), Subdivide: 256, Leapfrog: opt.Leapfrog, Jobs: opt.Jobs,
	})
	if err != nil {
		return Fig7Result{}, err
	}
	fit, err := fitting.FitWithOffset(sweep, m.Phase.F0)
	if err != nil {
		return Fig7Result{}, err
	}
	f02 := m.Phase.F0 * m.Phase.F0
	res := Fig7Result{Fit: fit, Model: m.Phase}
	for _, e := range sweep {
		res.Rows = append(res.Rows, Fig7Row{
			N:            e.N,
			MeasuredNorm: f02*e.SigmaN2 - fit.Offset,
			TheoryNorm:   f02 * m.Phase.SigmaN2(e.N),
			StdErrNorm:   f02 * e.StdErr,
		})
	}
	return res, nil
}

// Table renders the Fig. 7 data and fit against the paper's law.
func (r Fig7Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-F7  Fig. 7: f0^2*sigma_N^2 vs N (counter campaign, M=256 TDC)\n")
	fmt.Fprintf(&b, "paper fit: %.3g*N + %.3g*N^2 (a/b = %g)\n", PaperSlopeA, PaperSlopeA/PaperCornerRatio, PaperCornerRatio)
	fmt.Fprintf(&b, "our  fit: %.3g*N + %.3g*N^2 (a/b = %.0f, offset %.3g)\n",
		r.Fit.A, r.Fit.B, r.Fit.CornerN, r.Fit.Offset)
	fmt.Fprintf(&b, "%10s %14s %14s %14s %8s\n", "N", "measured", "theory(eq11)", "stderr", "ratio")
	for _, row := range r.Rows {
		ratio := math.NaN()
		if row.TheoryNorm > 0 {
			ratio = row.MeasuredNorm / row.TheoryNorm
		}
		fmt.Fprintf(&b, "%10d %14.5g %14.5g %14.2g %8.3f\n",
			row.N, row.MeasuredNorm, row.TheoryNorm, row.StdErrNorm, ratio)
	}
	return b.String()
}

// RNRow is one row of the r_N table.
type RNRow struct {
	N       int
	RNFit   float64 // from the measured fit
	RNPaper float64 // 5354/(5354+N)
	RNModel float64 // from the calibrated model
}

// RNResult is the EXP-RN outcome.
type RNResult struct {
	Rows []RNRow
	// Thresholds maps the thermal-share requirement to the largest
	// admissible N, measured and paper-derived.
	Thresholds []ThresholdRow
	Fit        fitting.Result
}

// ThresholdRow compares independence thresholds.
type ThresholdRow struct {
	RMin              float64
	NMeasured, NPaper int
}

// RNThreshold reproduces the paper's r_N analysis: the ratio curve and
// the N*(r) thresholds (N*(95 %) = 281 in the paper).
func RNThreshold(scale Scale, seed uint64) (RNResult, error) {
	return RNThresholdOpts(scale, seed, Options{})
}

// RNThresholdOpts is RNThreshold with explicit execution options; the
// underlying Fig. 7 window campaign fans out on the engine pool.
func RNThresholdOpts(scale Scale, seed uint64, opt Options) (RNResult, error) {
	f7, err := Fig7Opts(scale, seed, opt)
	if err != nil {
		return RNResult{}, err
	}
	return RNThresholdFromFig7(f7), nil
}

// RNThresholdFromFig7 derives the r_N analysis from an already-run
// Fig. 7 campaign. The counter campaign is the expensive part; every
// derived artifact (this one, ThermalExtractionFromFig7) should share
// one campaign rather than re-running it — the hardware experiment is
// likewise one capture with many views.
func RNThresholdFromFig7(f7 Fig7Result) RNResult {
	res := RNResult{Fit: f7.Fit}
	paper := core.PaperModel().Phase
	for _, n := range []int{1, 10, 100, 281, 1000, 5354, 30000} {
		res.Rows = append(res.Rows, RNRow{
			N:       n,
			RNFit:   f7.Fit.RN(n),
			RNPaper: PaperCornerRatio / (PaperCornerRatio + float64(n)),
			RNModel: paper.RN(n),
		})
	}
	for _, rmin := range []float64{0.90, 0.95, 0.99} {
		nm, _ := f7.Fit.IndependenceThreshold(rmin)
		np, _ := paper.IndependenceThreshold(rmin)
		res.Thresholds = append(res.Thresholds, ThresholdRow{RMin: rmin, NMeasured: nm, NPaper: np})
	}
	return res
}

// Table renders the r_N comparison.
func (r RNResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-RN  thermal share r_N = sigma_N,th^2 / sigma_N^2\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "N", "fit", "paper-law", "model")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12.4f %12.4f %12.4f\n", row.N, row.RNFit, row.RNPaper, row.RNModel)
	}
	fmt.Fprintf(&b, "independence thresholds N*(r):\n")
	fmt.Fprintf(&b, "%8s %12s %12s\n", "r_min", "measured", "paper")
	for _, t := range r.Thresholds {
		fmt.Fprintf(&b, "%8.2f %12d %12d\n", t.RMin, t.NMeasured, t.NPaper)
	}
	return b.String()
}

// ThermalResult is the EXP-TH outcome: the §IV-B extraction.
type ThermalResult struct {
	// Measured values from the fit.
	BthHz, SigmaPs, RatioPermil float64
	// SigmaErrPs propagates the fit uncertainty.
	SigmaErrPs float64
	// Paper values for the table.
	PaperBthHz, PaperSigmaPs, PaperRatioPermil float64
	Fit                                        fitting.Result
}

// ThermalExtraction reproduces §IV-B: extract b_th, σ and σ/T0 from the
// counter campaign.
func ThermalExtraction(scale Scale, seed uint64) (ThermalResult, error) {
	return ThermalExtractionOpts(scale, seed, Options{})
}

// ThermalExtractionOpts is ThermalExtraction with explicit execution
// options; the underlying Fig. 7 window campaign fans out on the
// engine pool.
func ThermalExtractionOpts(scale Scale, seed uint64, opt Options) (ThermalResult, error) {
	f7, err := Fig7Opts(scale, seed, opt)
	if err != nil {
		return ThermalResult{}, err
	}
	return ThermalExtractionFromFig7(f7), nil
}

// ThermalExtractionFromFig7 derives the §IV-B extraction from an
// already-run Fig. 7 campaign (see RNThresholdFromFig7 on sharing one
// campaign across derived artifacts).
func ThermalExtractionFromFig7(f7 Fig7Result) ThermalResult {
	fit := f7.Fit
	return ThermalResult{
		BthHz:            fit.Model.Bth,
		SigmaPs:          fit.SigmaThermal * 1e12,
		SigmaErrPs:       fit.SigmaThermalErr * 1e12,
		RatioPermil:      fit.JitterRatio * 1e3,
		PaperBthHz:       PaperBth,
		PaperSigmaPs:     PaperSigmaPs,
		PaperRatioPermil: PaperRatioPermil,
		Fit:              fit,
	}
}

// Table renders the extraction comparison.
func (r ThermalResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-TH  thermal noise measurement (paper §IV-B)\n")
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "quantity", "measured", "paper")
	fmt.Fprintf(&b, "%-18s %14.2f %14.2f\n", "b_th [Hz]", r.BthHz, r.PaperBthHz)
	fmt.Fprintf(&b, "%-18s %9.2f±%.2f %14.2f\n", "sigma [ps]", r.SigmaPs, r.SigmaErrPs, r.PaperSigmaPs)
	fmt.Fprintf(&b, "%-18s %14.2f %14.1f\n", "sigma/T0 [permil]", r.RatioPermil, r.PaperRatioPermil)
	return b.String()
}

// Eq11Row compares the numeric integral (eq. 9) with the closed form
// (eq. 11).
type Eq11Row struct {
	N        int
	Analytic float64
	Numeric  float64
	RelErr   float64
}

// Eq11Result is the EXP-EQ11 outcome.
type Eq11Result struct{ Rows []Eq11Row }

// Eq11Validation checks the paper's central derivation numerically.
func Eq11Validation() Eq11Result {
	m := core.PaperModel().Phase
	var res Eq11Result
	for _, n := range []int{1, 4, 16, 64, 281, 1024, 5354, 16384} {
		a := m.SigmaN2(n)
		num := m.SigmaN2Numeric(n)
		res.Rows = append(res.Rows, Eq11Row{
			N: n, Analytic: a, Numeric: num,
			RelErr: math.Abs(num-a) / a,
		})
	}
	return res
}

// Table renders the identity check.
func (r Eq11Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-EQ11  eq. 9 (Wiener–Khinchine integral) vs eq. 11 (closed form)\n")
	fmt.Fprintf(&b, "%8s %14s %14s %10s\n", "N", "analytic", "numeric", "rel.err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.6g %14.6g %10.2e\n", row.N, row.Analytic, row.Numeric, row.RelErr)
	}
	return b.String()
}
