package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// sharedFig7 runs the Quick Fig. 7 campaign once per test binary; the
// r_N, thermal-extraction and TIA tests derive their artifacts from it
// (one capture, many views — like the hardware experiment). The
// campaign is the dominant cost of this package's suite, and running
// it once keeps the binary well inside the default go test timeout.
var sharedFig7 = sync.OnceValues(func() (Fig7Result, error) {
	return Fig7(Quick, 1)
})

func TestFig7ShapeAndFit(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	res, err := sharedFig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The fitted slope must recover the paper's a within 15 %.
	if math.Abs(res.Fit.A-PaperSlopeA) > 0.15*PaperSlopeA {
		t.Fatalf("a = %g, want %g", res.Fit.A, PaperSlopeA)
	}
	// Shape: measured/theory ratio near 1 at every N except where
	// error bars are large; check the median-ish behaviour.
	within := 0
	for _, row := range res.Rows {
		if row.TheoryNorm > 0 && math.Abs(row.MeasuredNorm/row.TheoryNorm-1) < 0.5 {
			within++
		}
	}
	if within < len(res.Rows)*2/3 {
		t.Fatalf("only %d/%d rows within 50%% of eq. 11", within, len(res.Rows))
	}
	if !strings.Contains(res.Table(), "EXP-F7") {
		t.Fatal("table header missing")
	}
}

func TestRNThresholdReproduces281(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	f7, err := sharedFig7()
	if err != nil {
		t.Fatal(err)
	}
	res := RNThresholdFromFig7(f7)
	var n95Measured, n95Paper int
	for _, row := range res.Thresholds {
		if row.RMin == 0.95 {
			n95Measured, n95Paper = row.NMeasured, row.NPaper
		}
	}
	if n95Paper != PaperN95 {
		t.Fatalf("paper threshold computed as %d, want %d", n95Paper, PaperN95)
	}
	if n95Measured < 150 || n95Measured > 500 {
		t.Fatalf("measured N*(95%%) = %d, want ≈281", n95Measured)
	}
	if !strings.Contains(res.Table(), "EXP-RN") {
		t.Fatal("table header missing")
	}
}

func TestThermalExtractionReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	f7, err := sharedFig7()
	if err != nil {
		t.Fatal(err)
	}
	res := ThermalExtractionFromFig7(f7)
	if math.Abs(res.SigmaPs-PaperSigmaPs) > 1.5 {
		t.Fatalf("σ = %g ps, want ≈%g", res.SigmaPs, PaperSigmaPs)
	}
	if math.Abs(res.BthHz-PaperBth) > 0.15*PaperBth {
		t.Fatalf("b_th = %g, want ≈%g", res.BthHz, PaperBth)
	}
	if !strings.Contains(res.Table(), "EXP-TH") {
		t.Fatal("table header missing")
	}
}

func TestEq11Validation(t *testing.T) {
	res := Eq11Validation()
	for _, row := range res.Rows {
		if row.RelErr > 0.02 {
			t.Fatalf("N=%d: eq9 vs eq11 relative error %g", row.N, row.RelErr)
		}
	}
	if !strings.Contains(res.Table(), "EXP-EQ11") {
		t.Fatal("table header missing")
	}
}

func TestIndependenceAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	res, err := Independence(Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("%d cases", len(res.Cases))
	}
	th := res.Cases[0]
	if !th.PlausibleSmallN || !th.PlausibleLargeN {
		t.Fatalf("thermal-only rejected: %+v", th)
	}
	fl := res.Cases[1]
	if !fl.PlausibleSmallN {
		t.Fatalf("paper model small-N region rejected: %+v", fl)
	}
	if fl.PlausibleLargeN {
		t.Fatalf("paper model wide sweep accepted as independent: %+v", fl)
	}
	if !strings.Contains(res.Table(), "EXP-IND") {
		t.Fatal("table header missing")
	}
}

func TestEntropyComparison(t *testing.T) {
	res, err := EntropyComparison(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.HNaive < row.HRefined-1e-9 {
			t.Fatalf("K=%d: ordering broken", row.Divider)
		}
	}
	// Overestimation must be material at small dividers.
	if res.Rows[0].Overestimate < 0.01 {
		t.Fatalf("no visible overestimation at K=%d: %+v", res.Rows[0].Divider, res.Rows[0])
	}
	if res.RequiredRefined < 1000 {
		t.Fatalf("required divider %d suspiciously small", res.RequiredRefined)
	}
	if !strings.Contains(res.Table(), "EXP-ENT") {
		t.Fatal("table header missing")
	}
}

func TestOnlineTestDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	res, err := OnlineTest(Quick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 3 {
		t.Fatalf("%d cases", len(res.Cases))
	}
	if res.Cases[0].Detected {
		t.Fatalf("false alarm on clean run: %+v", res.Cases[0])
	}
	for _, c := range res.Cases[1:] {
		if !c.Detected {
			t.Fatalf("attack not detected: %+v", c)
		}
	}
	if !strings.Contains(res.Table(), "EXP-ATT") {
		t.Fatal("table header missing")
	}
}

func TestPSDCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	res, err := PSDCrossCheck(Quick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DBth) > 0.3 {
		t.Fatalf("spectral b_th off by %.0f%%", 100*res.DBth)
	}
	if math.Abs(res.DBfl) > 0.5 {
		t.Fatalf("spectral b_fl off by %.0f%%", 100*res.DBfl)
	}
	if !strings.Contains(res.Table(), "EXP-PSD") {
		t.Fatal("table header missing")
	}
}

func TestTIACrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	f7, err := sharedFig7()
	if err != nil {
		t.Fatal(err)
	}
	res, err := TIACrossCheckFromThermal(ThermalExtractionFromFig7(f7), Quick, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Deviation) > 0.15 {
		t.Fatalf("counter vs TIA deviation %.1f%%", 100*res.Deviation)
	}
	if !strings.Contains(res.Table(), "EXP-TIA") {
		t.Fatal("table header missing")
	}
}

func TestAIS31Run(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	t.Parallel()
	res, err := AIS31Run(Quick, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[0].Pass {
		t.Fatal("under-sampled raw sequence passed procedure B")
	}
	if !res.Rows[1].Pass {
		t.Fatalf("accumulated raw sequence failed: %+v", res.Rows[1].Verdicts)
	}
	if !strings.Contains(res.Table(), "EXP-AIS") {
		t.Fatal("table header missing")
	}
}

// sharedLeapfrogFig7 runs the Quick Fig. 7 campaign once on the
// leapfrog fast path (one more reason it exists: unlike the edge-level
// sharedFig7, this one is cheap enough to run in every mode).
var sharedLeapfrogFig7 = sync.OnceValues(func() (Fig7Result, error) {
	return Fig7Opts(Quick, 1, Options{Leapfrog: true})
})

// TestFig7LeapfrogMatchesPaperTolerances holds the O(1)-per-window
// fast path to exactly the tolerances the edge-level campaign must
// meet: the fitted slope recovers the paper's a within 15 %, the rows
// track eq. 11, and the derived artifacts (N*(95%), b_th, σ)
// reproduce the paper's §III-E / §IV-B values. Because every window is
// O(1), the whole Quick campaign costs seconds where the edge path
// costs CPU-minutes — so this runs unconditionally.
func TestFig7LeapfrogMatchesPaperTolerances(t *testing.T) {
	t.Parallel()
	res, err := sharedLeapfrogFig7()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fit.A-PaperSlopeA) > 0.15*PaperSlopeA {
		t.Fatalf("leapfrog fit a = %g, want %g", res.Fit.A, PaperSlopeA)
	}
	within := 0
	for _, row := range res.Rows {
		if row.TheoryNorm > 0 && math.Abs(row.MeasuredNorm/row.TheoryNorm-1) < 0.5 {
			within++
		}
	}
	if within < len(res.Rows)*2/3 {
		t.Fatalf("only %d/%d leapfrog rows within 50%% of eq. 11", within, len(res.Rows))
	}
	rn := RNThresholdFromFig7(res)
	for _, row := range rn.Thresholds {
		if row.RMin == 0.95 {
			if row.NPaper != PaperN95 {
				t.Fatalf("paper threshold computed as %d, want %d", row.NPaper, PaperN95)
			}
			if row.NMeasured < 150 || row.NMeasured > 500 {
				t.Fatalf("leapfrog-measured N*(95%%) = %d, want ≈281", row.NMeasured)
			}
		}
	}
	th := ThermalExtractionFromFig7(res)
	if math.Abs(th.SigmaPs-PaperSigmaPs) > 1.5 {
		t.Fatalf("leapfrog σ = %g ps, want ≈%g", th.SigmaPs, PaperSigmaPs)
	}
	if math.Abs(th.BthHz-PaperBth) > 0.15*PaperBth {
		t.Fatalf("leapfrog b_th = %g, want ≈%g", th.BthHz, PaperBth)
	}
}
