package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/entropy"
	"repro/internal/sp90b"
	"repro/internal/trng"
)

// AssessmentRow is one divider point of EXP-90B: the SP 800-90B
// black-box suite run on a simulated raw stream whose exact
// conditional entropy the model knows in closed form.
type AssessmentRow struct {
	// Divider is the sampling divider K of the simulated eRO-TRNG.
	Divider int
	// Exact carries the model's closed-form assessment at this
	// divider: refined (thermal-only) and naive (independence-
	// assuming) conditional Shannon and min-entropies, from
	// internal/entropy.
	Exact entropy.Comparison
	// Report is the 90B non-IID suite verdict on the simulated
	// stream.
	Report sp90b.Report
}

// SuiteMin is the suite's reported bound at this divider.
func (r AssessmentRow) SuiteMin() float64 { return r.Report.MinEntropy }

// AssessmentResult is the EXP-90B outcome.
type AssessmentResult struct {
	Rows []AssessmentRow
	// Bits is the per-divider stream length assessed.
	Bits int
	// NMeas is the accumulation length the naive model was calibrated
	// from (the flicker-inflated measurement of EXP-ENT).
	NMeas int
}

// entropyAssessmentDividers returns the divider sweep: from the
// heavily autocorrelated small-K regime (phase barely moves per
// sample; the stream is long runs) through the flicker crossover up to
// the near-full-entropy operating region.
func entropyAssessmentDividers(scale Scale) []int {
	if scale == Full {
		return []int{512, 2048, 8192, 32768, 65536, 131072}
	}
	return []int{512, 2048, 8192, 65536}
}

// entropyAssessmentBits returns the per-divider stream length.
func entropyAssessmentBits(scale Scale) int {
	if scale == Full {
		return 1 << 17
	}
	return 1 << 16
}

// EntropyAssessment runs EXP-90B at the default worker-pool width; see
// EntropyAssessmentOpts.
func EntropyAssessment(scale Scale, seed uint64) (AssessmentResult, error) {
	return EntropyAssessmentOpts(scale, seed, Options{})
}

// EntropyAssessmentOpts sweeps the sampling divider, simulates one raw
// eRO-TRNG stream per divider (a fresh paper-calibrated generator from
// a derived seed — one engine task per divider, so the table is
// bit-identical for every Jobs width), runs the SP 800-90B non-IID
// suite on it, and sets the result against the exact conditional
// entropies from internal/entropy.
//
// This is the paper's Fig. 7 story retold in certification language:
// in the small-divider regime the raw stream is balanced but heavily
// autocorrelated, so the bias-style estimators (MCV, collision,
// compression) report near-full entropy exactly like a naive
// independence-assuming stochastic model does, while the Markov and
// predictor estimators — and with them the suite minimum — track the
// refined closed-form entropy. Options.Leapfrog is respected for
// stream generation (the fast path draws an equally valid realization
// of the same process; the table remains a pure function of
// (scale, seed, Leapfrog)).
func EntropyAssessmentOpts(scale Scale, seed uint64, opt Options) (AssessmentResult, error) {
	m := core.PaperModel()
	dividers := entropyAssessmentDividers(scale)
	bits := entropyAssessmentBits(scale)
	const nMeas = 30000 // same flicker-dominated calibration as EXP-ENT
	bins := 1024
	if scale == Full {
		bins = 4096
	}
	rows, err := engine.Map(context.Background(), len(dividers), func(_ context.Context, i int) (AssessmentRow, error) {
		k := dividers[i]
		gen, err := trng.New(trng.Config{
			Model:    m.Phase,
			Divider:  k,
			Seed:     engine.DeriveSeed(seed, uint64(i)),
			Leapfrog: opt.Leapfrog,
		})
		if err != nil {
			return AssessmentRow{}, err
		}
		rep, err := sp90b.Assess(gen.Bits(bits))
		if err != nil {
			return AssessmentRow{}, err
		}
		exact, err := entropy.Assess(m.RelativeModel(), k, nMeas, bins)
		if err != nil {
			return AssessmentRow{}, err
		}
		return AssessmentRow{Divider: k, Exact: exact, Report: rep}, nil
	}, engine.Jobs(opt.Jobs))
	if err != nil {
		return AssessmentResult{}, err
	}
	return AssessmentResult{Rows: rows, Bits: bits, NMeas: nMeas}, nil
}

// Table renders EXP-90B: the exact model entropies next to every
// black-box estimator and the suite minimum.
func (r AssessmentResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-90B  SP 800-90B black-box assessment vs exact model entropy (%d bits/divider)\n", r.Bits)
	fmt.Fprintf(&b, "exact: refined = thermal-only conditional entropy; naive = independence model at nMeas=%d\n", r.NMeas)
	fmt.Fprintf(&b, "%8s %9s %9s %9s %9s | %9s\n",
		"K", "H.ref", "Hmin.ref", "Hmin.nve", "suite.min", "verdict")
	for _, row := range r.Rows {
		verdict := "sound"
		if row.SuiteMin() > row.Exact.HRefined+0.02 {
			verdict = "OVER"
		}
		fmt.Fprintf(&b, "%8d %9.4f %9.4f %9.4f %9.4f | %9s\n",
			row.Divider, row.Exact.HRefined, row.Exact.HMinRefined,
			row.Exact.HMinNaive, row.SuiteMin(), verdict)
	}
	fmt.Fprintf(&b, "per-estimator bounds:\n%8s", "K")
	if len(r.Rows) > 0 {
		for _, e := range r.Rows[0].Report.Estimates {
			fmt.Fprintf(&b, " %9.9s", e.Name)
		}
		fmt.Fprintf(&b, "\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%8d", row.Divider)
			for _, e := range row.Report.Estimates {
				fmt.Fprintf(&b, " %9.4f", e.MinEntropy)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	fmt.Fprintf(&b, "small-K regime: bias-style estimators (mcv, collision, compression) sit near 1 bit\n")
	fmt.Fprintf(&b, "like a naive independence model; markov/predictors — and the suite min — track H.ref\n")
	return b.String()
}
