package experiments

import (
	"testing"
)

func amFindRow(t *testing.T, r AttackMatrixResult, scenario string) AttackRow {
	t.Helper()
	for _, row := range r.Rows {
		if row.Scenario == scenario {
			return row
		}
	}
	t.Fatalf("scenario %q missing from the matrix", scenario)
	return AttackRow{}
}

func amFindCell(t *testing.T, row AttackRow, layer string) AttackCell {
	t.Helper()
	for _, c := range row.Cells {
		if c.Layer == layer {
			return c
		}
	}
	t.Fatalf("layer %q missing from scenario %q", layer, row.Scenario)
	return AttackCell{}
}

// TestAttackMatrixEvasionCase pins the headline adversarial claim: a
// temperature ramp slow enough to keep every per-sample statistic
// inside its per-window tolerance sails past tot, the startup battery
// re-runs, and the §V monitor pair — and is caught only by the
// SP 800-90B assessment, with the long detection latency recorded
// through the journal's injection-marker pairing.
func TestAttackMatrixEvasionCase(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-pool campaign")
	}
	t.Parallel()
	r, err := AttackMatrixOpts(Quick, 1, Options{}, "slow-thermal-ramp")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("coverage violations: %v", r.Violations)
	}
	row := amFindRow(t, r, "slow-thermal-ramp")

	// The fast layers must MISS — not merely be shadowed: each had the
	// whole ramp as observation opportunity and stayed silent.
	for _, l := range []string{"tot", "monitor"} {
		if c := amFindCell(t, row, l); c.Outcome != amMissed || c.MissedRate != 1 {
			t.Errorf("%s: outcome %q missed-rate %.2f, want a clean miss", l, c.Outcome, c.MissedRate)
		}
	}
	// The startup battery blocks recalibration once quarantined, but it
	// never catches the ramp live; the gate must have refused
	// re-admission in every rep (the attack re-arms at the reached
	// floor).
	if row.GateBlocked != row.Reps {
		t.Errorf("calibration gate blocked %d/%d reps", row.GateBlocked, row.Reps)
	}

	// Only the assessment sees it, far beyond the monitor's bound, and
	// inside its own.
	c := amFindCell(t, row, "sp90b")
	if c.Outcome != amDetected {
		t.Fatalf("sp90b outcome %q, want detected", c.Outcome)
	}
	if mb := amBound(amLayerMonitor, 0); c.LatencyBitsMax <= int64(mb) {
		t.Errorf("sp90b latency %d raw bits is within the step-attack monitor bound %d — not an evasion",
			c.LatencyBitsMax, mb)
	}
	if c.LatencyBitsMax <= int64(row.RampBits) {
		t.Errorf("sp90b latency %d raw bits inside the %d-bit ramp: the ramp was not slow enough",
			c.LatencyBitsMax, row.RampBits)
	}
	if c.BoundBits > 0 && c.LatencyBitsMax > int64(c.BoundBits) {
		t.Errorf("sp90b latency %d raw bits exceeds its own bound %d", c.LatencyBitsMax, c.BoundBits)
	}
	// The journal's marker→quarantine pairing must have measured a real
	// wall-clock latency for the detection.
	if c.LatencyWallMean <= 0 {
		t.Errorf("journal recorded no wall-clock detection latency (mean %v s)", c.LatencyWallMean)
	}
	// Entropy collapse must shut the expansion layer, not just the raw
	// taps.
	if row.DRBGFailClosed != row.Reps {
		t.Errorf("DRBG failed closed in %d/%d reps", row.DRBGFailClosed, row.Reps)
	}
}

// TestAttackMatrixLayerSeparation runs a fast catalog subset and checks
// the complementary-coverage claims: the monitor catches what tot
// misses, tot catches what the monitor never sees, and the control row
// stays silent everywhere.
func TestAttackMatrixLayerSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-pool campaign")
	}
	t.Parallel()
	r, err := AttackMatrixOpts(Quick, 1, Options{}, "clean", "flicker-boost", "noise-kill")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("coverage violations: %v", r.Violations)
	}

	clean := amFindRow(t, r, "clean")
	for _, c := range clean.Cells {
		if c.Outcome != amNA {
			t.Errorf("control row, layer %s: outcome %q, want n/a", c.Layer, c.Outcome)
		}
	}

	// Variance inflation is invisible to the flatline test and caught
	// by the calibrated monitor pair.
	fb := amFindRow(t, r, "flicker-boost")
	if c := amFindCell(t, fb, "monitor"); c.Outcome != amDetected {
		t.Errorf("flicker-boost monitor outcome %q, want detected", c.Outcome)
	}
	if c := amFindCell(t, fb, "tot"); c.Outcome != amMissed {
		t.Errorf("flicker-boost tot outcome %q, want missed", c.Outcome)
	}

	// A dead source flatlines: tot fires within its bound before the
	// monitor completes a window.
	nk := amFindRow(t, r, "noise-kill")
	c := amFindCell(t, nk, "tot")
	if c.Outcome != amDetected {
		t.Fatalf("noise-kill tot outcome %q, want detected", c.Outcome)
	}
	if c.LatencyBitsMax > int64(c.BoundBits) {
		t.Errorf("noise-kill tot latency %d exceeds bound %d", c.LatencyBitsMax, c.BoundBits)
	}
	// Both attacks fully deny the (single-shard) pool: the DRBG must
	// fail closed, and the startup gate must hold the persistent ones.
	for _, row := range []AttackRow{fb, nk} {
		if row.DRBGFailClosed != row.Reps {
			t.Errorf("%s: DRBG failed closed in %d/%d reps", row.Scenario, row.DRBGFailClosed, row.Reps)
		}
		if row.GateBlocked != row.Reps {
			t.Errorf("%s: calibration gate blocked %d/%d reps", row.Scenario, row.GateBlocked, row.Reps)
		}
	}
}

// TestAttackMatrixIncidentColumn pins the incident-correlation claims:
// the supply-ripple row — two shards degraded by the same supply rail —
// folds into exactly ONE correlated incident whose blast radius is the
// coupled-shard count, a single-shard attack stays single-shard, and
// the control opens no incident at all.
func TestAttackMatrixIncidentColumn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-pool campaign")
	}
	t.Parallel()
	r, err := AttackMatrixOpts(Quick, 1, Options{}, "clean", "noise-kill", "supply-ripple")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("coverage violations: %v", r.Violations)
	}

	sr := amFindRow(t, r, "supply-ripple")
	if sr.Incidents != 1 || sr.IncidentClass != "correlated" {
		t.Errorf("supply-ripple: %d incident(s) class %q, want one correlated",
			sr.Incidents, sr.IncidentClass)
	}
	if sr.IncidentBlastRadius != len(sr.Attacked) {
		t.Errorf("supply-ripple blast radius %d, want the coupled-shard count %d",
			sr.IncidentBlastRadius, len(sr.Attacked))
	}

	nk := amFindRow(t, r, "noise-kill")
	if nk.Incidents != 1 || nk.IncidentClass != "single-shard" || nk.IncidentBlastRadius != 1 {
		t.Errorf("noise-kill: %d incident(s) class %q blast %d, want one single-shard blast-1",
			nk.Incidents, nk.IncidentClass, nk.IncidentBlastRadius)
	}

	clean := amFindRow(t, r, "clean")
	if clean.Incidents != 0 || clean.IncidentClass != "" {
		t.Errorf("control row opened incidents: %d %q", clean.Incidents, clean.IncidentClass)
	}
}
