package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/entropyd"
	"repro/internal/obs"
	"repro/internal/trng"
)

// EXP-STRLAT: streaming vs batch detection latency on the matrix's
// evasion case. The slow thermal ramp — the attack only the SP 800-90B
// layer sees — runs against three surveillance configurations of the
// same pinned operating point:
//
//   - batch-default: cmd/trngd's deployment cadence (65536-bit samples
//     every 2^18 raw bits). The sparse duty cycle is what makes batch
//     assessment affordable at serving rates, and what the attacker's
//     ramp hides behind: a sample that straddles the onset averages
//     healthy and degraded bits, and the next one starts a quarter
//     million bits later.
//   - batch-tight: the matrix operating point (back-to-back
//     sp90b.MinBits samples, no waiting). The batch estimator's best
//     case — and still quantized to sample boundaries: a dip is only
//     seen after a complete fresh sample.
//   - stream: the sliding-window tracker alone (batch off, so the
//     detection is unambiguously the streaming trigger), same window
//     size as batch-tight with the subset-calibrated watermark
//     (amStreamMinEntropy — the live suite's scale sits above the
//     batch suite's, see the constant). The live suite minimum
//     re-scores after every chunk, so the gate fires mid-window the
//     moment the trailing bits dip — no cadence, no boundary
//     quantization.
//
// Detection latency is measured in raw bits from attack onset (the
// simulation-exact clock) with the journal's marker→quarantine pairing
// supplying the wall-clock view. The headline assertion: streaming
// detects the ramp in at most HALF the raw bits of the deployment-
// cadence batch configuration. Against batch-tight the gap is honest
// but small (both are floor-bound by the ramp itself — entropy must
// actually collapse before any estimator may say so); that ratio is
// reported, not asserted.
//
// The §V thermal monitor is OFF in all three modes: this experiment
// compares the assessment layer's surveillance cadences against each
// other, and whether the monitor happens to clip the ramp first is a
// seed-dependent race that belongs to EXP-MTX (where the evasion case
// is pinned at the matrix seeds), not a property of the estimator duty
// cycle under test. The tot test stays on — it never sees a ramp and
// keeps the pools honest.

// Streaming-latency mode names.
const (
	slBatchDefault = "batch-default"
	slBatchTight   = "batch-tight"
	slStream       = "stream"
)

// slDefaultAssessBits/slDefaultAssessEvery mirror cmd/trngd's
// -assess-bits/-assess-every defaults.
const (
	slDefaultAssessBits  = 1 << 16
	slDefaultAssessEvery = 1 << 18
)

// slMode is one surveillance configuration under test.
type slMode struct {
	name        string
	assessBits  int  // batch sample size (0 = batch off)
	assessEvery int  // batch wait between samples
	stream      bool // sliding-window tracker on
	wantReason  string
}

func slModes() []slMode {
	return []slMode{
		{name: slBatchDefault, assessBits: slDefaultAssessBits, assessEvery: slDefaultAssessEvery,
			wantReason: "low-entropy"},
		{name: slBatchTight, assessBits: amAssessBits, assessEvery: amAssessEvery,
			wantReason: "low-entropy"},
		{name: slStream, stream: true, wantReason: "live-low-entropy"},
	}
}

// StreamLatencyMode is one mode's aggregated outcome.
type StreamLatencyMode struct {
	Mode string `json:"mode"`
	// AssessBits/AssessEveryBits describe the batch duty cycle (0 when
	// batch assessment is off); Stream marks the tracker.
	AssessBits      int  `json:"assess_bits,omitempty"`
	AssessEveryBits int  `json:"assess_every_bits,omitempty"`
	Stream          bool `json:"stream"`
	// Reason is the quarantine reason class ("low-entropy" for batch,
	// "live-low-entropy" for streaming).
	Reason string `json:"reason"`
	// LatencyBitsMean/Max are raw bits from attack onset to quarantine
	// over the reps; LatencyWallMean is the journal's
	// marker→quarantine pairing in seconds.
	LatencyBitsMean float64 `json:"latency_bits_mean"`
	LatencyBitsMax  int64   `json:"latency_bits_max"`
	LatencyWallMean float64 `json:"latency_wall_s_mean"`
}

// StreamLatencyResult is the EXP-STRLAT outcome.
type StreamLatencyResult struct {
	OnsetBits uint64              `json:"onset_bits"`
	RampBits  uint64              `json:"ramp_bits"`
	Reps      int                 `json:"reps"`
	Modes     []StreamLatencyMode `json:"modes"`
	// ImprovementVsDefault is batch-default's mean latency over
	// stream's (the asserted ≥2× headline); ImprovementVsTight the
	// same against batch-tight (reported, not asserted — both are
	// floor-bound by the ramp itself).
	ImprovementVsDefault float64 `json:"improvement_vs_default"`
	ImprovementVsTight   float64 `json:"improvement_vs_tight"`
	// Violations lists broken assertions; empty = the claim holds.
	Violations []string `json:"violations"`
}

// slRep is one repetition of one mode.
type slRep struct {
	reason  string
	bits    int64
	wallSec float64
}

// StreamLatency runs EXP-STRLAT: the slow-thermal-ramp evasion case
// under the three surveillance modes, Quick = 1 repetition, Full = 3.
func StreamLatency(scale Scale, seed uint64) (StreamLatencyResult, error) {
	return StreamLatencyOpts(scale, seed, Options{})
}

// StreamLatencyOpts is StreamLatency with execution options. Modes are
// independent engine tasks, so the result is identical for every Jobs
// value.
func StreamLatencyOpts(scale Scale, seed uint64, opt Options) (StreamLatencyResult, error) {
	modes := slModes()
	reps := 1
	if scale == Full {
		reps = 3
	}
	res := StreamLatencyResult{
		OnsetBits:  amOnsetBits,
		RampBits:   amRampBits,
		Reps:       reps,
		Violations: []string{},
	}
	rows, err := engine.Map(context.Background(), len(modes), func(_ context.Context, i int) (StreamLatencyMode, error) {
		md := modes[i]
		row := StreamLatencyMode{
			Mode:            md.name,
			AssessBits:      md.assessBits,
			AssessEveryBits: md.assessEvery,
			Stream:          md.stream,
		}
		for r := 0; r < reps; r++ {
			// Same per-rep seeds for every mode: each mode watches the
			// same attacked physics realization.
			rep, err := slRun(md, engine.DeriveSeed(seed, uint64(0xA0+r)))
			if err != nil {
				return row, fmt.Errorf("%s rep %d: %w", md.name, r, err)
			}
			if row.Reason == "" {
				row.Reason = rep.reason
			} else if row.Reason != rep.reason {
				row.Reason = "mixed"
			}
			row.LatencyBitsMean += float64(rep.bits)
			if rep.bits > row.LatencyBitsMax {
				row.LatencyBitsMax = rep.bits
			}
			row.LatencyWallMean += rep.wallSec
		}
		row.LatencyBitsMean /= float64(reps)
		row.LatencyWallMean /= float64(reps)
		return row, nil
	}, engine.Jobs(opt.Jobs))
	if err != nil {
		return res, err
	}
	res.Modes = rows
	byName := make(map[string]StreamLatencyMode, len(rows))
	for i, row := range rows {
		byName[row.Mode] = row
		if want := modes[i].wantReason; row.Reason != want {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: detected by reason %q, want %q", row.Mode, row.Reason, want))
		}
		if row.LatencyBitsMean <= 0 {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s: non-positive detection latency %.0f raw bits", row.Mode, row.LatencyBitsMean))
		}
	}
	if s := byName[slStream].LatencyBitsMean; s > 0 {
		res.ImprovementVsDefault = byName[slBatchDefault].LatencyBitsMean / s
		res.ImprovementVsTight = byName[slBatchTight].LatencyBitsMean / s
	}
	if res.ImprovementVsDefault < 2 {
		res.Violations = append(res.Violations,
			fmt.Sprintf("headline broken: streaming is only %.2fx faster than deployment-cadence batch (want >= 2x)",
				res.ImprovementVsDefault))
	}
	return res, nil
}

// slRun drives one repetition: a single-shard pool with the slow ramp
// armed through the source and monitor hooks (the EXP-MTX evasion
// scenario at the same operating point), filled until the shard is
// quarantined or the budget runs out.
func slRun(md slMode, seed uint64) (slRep, error) {
	m := core.PaperModel().ScaleJitter(100).Phase
	bitsToSec := func(bits uint64) float64 { return float64(bits) * amDivider / m.F0 }
	sched := attack.Schedule{Onset: bitsToSec(amOnsetBits), Ramp: bitsToSec(amRampBits)}
	mk := func(s attack.Schedule) attack.Scenario {
		return attack.ThermalSuppression{Factor: 0.55, Sched: s}
	}

	health := entropyd.HealthConfig{
		TotWindow:      amTotWindow,
		DisableMonitor: true, // see the package comment: no monitor race
	}
	if md.stream {
		health.DisableAssess = true
		health.StreamWindow = amAssessBits
		health.StreamPanes = 4
		// amStreamMinEntropy, not amMinEntropy: the live suite has no
		// collision/compression estimators, so its floor sits higher
		// than the batch scale (see the constant's comment).
		health.StreamMinEntropy = amStreamMinEntropy
	} else {
		health.AssessBits = md.assessBits
		health.AssessEveryBits = md.assessEvery
		health.AssessMinEntropy = amMinEntropy
	}
	j := obs.NewJournal(obs.DefaultCapacity)
	cfg := entropyd.Config{
		Shards: 1,
		Seed:   seed,
		Jobs:   1,
		Source: entropyd.SourceConfig{Kind: entropyd.SourceERO, Model: m, Divider: amDivider},
		Health: health,
		Sink:   j,
		NewSource: func(_, epoch int, s uint64) (entropyd.RawSource, error) {
			g, err := trng.New(trng.Config{Model: m, Divider: amDivider, Seed: s})
			if err != nil {
				return nil, err
			}
			sc := sched
			if epoch > 0 {
				sc = attack.Schedule{} // persistent: full strength on re-arm
			}
			attack.ArmBoth(g.Pair(), mk(sc))
			return g, nil
		},
	}
	pool, err := entropyd.New(cfg)
	if err != nil {
		return slRep{}, err
	}
	marker := mk(sched)
	chunk := make([]byte, 512)
	marked := false
	// Budget: the ramp plus three full default duty cycles — if even
	// the sparsest mode cannot detect in that, something is broken.
	const budgetEnd = amOnsetBits + amRampBits + 3*(slDefaultAssessBits+slDefaultAssessEvery)
	for {
		if _, err := pool.Fill(chunk); err != nil && !errors.Is(err, entropyd.ErrStarved) {
			return slRep{}, err
		}
		s := pool.Shard(0)
		if !marked && s.RawBits()+4096 >= amOnsetBits {
			attack.Mark(j, 0, marker)
			marked = true
		}
		if s.State() == entropyd.StateQuarantined {
			rep := slRep{reason: s.LastReason().String(), bits: int64(s.RawBits()) - int64(amOnsetBits)}
			if lat := j.DetectionLatencies(); lat[rep.reason] != nil {
				rep.wallSec = lat[rep.reason].Mean().Seconds()
			}
			return rep, nil
		}
		if s.RawBits() >= budgetEnd {
			return slRep{}, fmt.Errorf("experiments: %s never detected the ramp within %d raw bits", md.name, uint64(budgetEnd))
		}
	}
}

// Table renders the latency comparison.
func (r StreamLatencyResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-STRLAT  slow-thermal-ramp detection latency: streaming vs batch surveillance, %d rep(s)\n", r.Reps)
	fmt.Fprintf(&b, "(onset %d raw bits, 0->full ramp over %d raw bits; latency in raw bits from onset)\n",
		r.OnsetBits, r.RampBits)
	fmt.Fprintf(&b, "%-15s %-28s %-18s %12s %12s %10s\n",
		"mode", "duty cycle", "reason", "lat mean", "lat max", "wall[s]")
	for _, m := range r.Modes {
		duty := fmt.Sprintf("%d-bit window, continuous", amAssessBits)
		if !m.Stream {
			duty = fmt.Sprintf("%d-bit sample / %d wait", m.AssessBits, m.AssessEveryBits)
		}
		fmt.Fprintf(&b, "%-15s %-28s %-18s %12.0f %12d %10.3g\n",
			m.Mode, duty, m.Reason, m.LatencyBitsMean, m.LatencyBitsMax, m.LatencyWallMean)
	}
	fmt.Fprintf(&b, "streaming advantage: %.2fx fewer raw bits than deployment-cadence batch (>= 2x asserted), %.2fx vs tight batch (reported)\n",
		r.ImprovementVsDefault, r.ImprovementVsTight)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "latency assertions: all hold\n")
	} else {
		fmt.Fprintf(&b, "LATENCY VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}
