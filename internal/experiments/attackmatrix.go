package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/entropyd"
	"repro/internal/obs"
	"repro/internal/obs/incident"
	"repro/internal/osc"
	"repro/internal/sp90b"
	"repro/internal/trng"
)

// EXP-MTX: the measured detection-coverage matrix. Every scenario of
// the attack catalog (internal/attack) runs against a live health-gated
// pool at a pinned operating point, and every defense layer — the
// AIS 31 tot test, the calibration gate (startup), the paper's §V
// thermal monitor, the SP 800-90B assessment, and the DRBG fail-closed
// path — is scored per scenario: detected (with latency in raw bits
// and the journal's wall-clock marker→quarantine pairing), missed (ran
// a full detection horizon at attack strength without firing), or
// shadowed (another layer quarantined the shard first). The matrix is
// the evidence behind the threat-catalog claims: calibrated monitors
// catch what tot and startup miss, the slow thermal ramp is caught
// only by the assessment, and no scenario goes fully undetected.
//
// Each repetition additionally runs the incident correlation engine
// (internal/obs/incident) as a passive second sink on the rep's
// journal: the supply-ripple row — the only multi-shard attack — must
// fold into exactly ONE correlated incident whose blast radius spans
// every coupled shard, every single-shard scenario must stay
// single-shard, and the control must produce no incident at all.

// Defense layers of the coverage matrix.
const (
	amLayerTot     = "tot"
	amLayerStartup = "startup"
	amLayerMonitor = "monitor"
	amLayerSP90B   = "sp90b"
	amLayerDRBG    = "drbg"
)

// amLayerOrder is the column order of the rendered matrix.
var amLayerOrder = []string{amLayerTot, amLayerStartup, amLayerMonitor, amLayerSP90B, amLayerDRBG}

// Cell outcomes.
const (
	amDetected = "detected"
	amMissed   = "missed"
	amShadowed = "shadowed"
	amNA       = "n/a"
)

// Operating point: the eRO source with jitter amplified 100× (see
// AIS31Run for the same trick) at divider 4 — well mixed, fast to
// simulate — with the full health battery on a tight duty cycle. The
// monitor corridor (W=10 at α=1e-6: low bound ≈ 0.012·ref) and the
// assessment threshold 0.40 (healthy h ≥ 0.52, floor-0.45 ramp
// h ≤ 0.33) were calibrated against this exact configuration; the
// evasion margins below depend on it.
const (
	amDivider     = 4
	amMonitorN    = 64
	amMonitorWin  = 10
	amMonitorEv   = 256
	amMonitorSub  = 64
	amTotWindow   = 64
	amAssessBits  = sp90b.MinBits
	amAssessEvery = sp90b.MinBits
	amMinEntropy  = 0.40
	amSeedTap     = 4096

	// amStreamMinEntropy is the live watermark for the streaming
	// tracker (Options.Stream and EXP-STRLAT). The streaming suite is
	// the six incremental estimators only — no collision/compression
	// conservatism — so its scale sits higher than the batch suite's:
	// at this operating point a healthy shard's live minimum stays
	// ≥ 0.86 while the slow ramp's floor reads ≈ 0.55 (the batch suite
	// says ≥ 0.52 and ≤ 0.33 for the same bits). 0.70 splits the gap.
	amStreamMinEntropy = 0.70

	// amOnsetBits places every attack onset after the 20480-bit epoch-0
	// startup collection, with a healthy pre-onset window for the DRBG
	// liveness check.
	amOnsetBits = 28672
	// amRampBits is the slow ramp duration: long enough that no
	// per-window χ² excursion leaves the monitor's tolerance band.
	amRampBits = 102400

	// amIncidentWindow is the correlation window for the per-rep
	// incident engine. Rep wall time is seconds; a generous window
	// guarantees that the coupled supply-ripple quarantines — detected
	// at different raw-bit latencies but within the same serving loop —
	// land inside one incident, while isolation (a single-shard attack
	// never classifying correlated) is enforced by the unattacked
	// shards staying silent, not by window luck.
	amIncidentWindow = 5 * time.Minute
)

// Detection horizons: how many raw bits of observation opportunity a
// layer gets before a non-detection counts as missed rather than
// shadowed. Opportunity is measured from onset for step attacks and is
// credited with half the ramp for ramped ones (the attack runs at
// ≥50% strength for that long). tot fires within two chunks; the
// monitor within a couple of variance windows; the assessment within
// two collect+wait cycles.
var amHorizon = map[string]uint64{
	amLayerTot:     1024,
	amLayerMonitor: 4096,
	amLayerSP90B:   2 * (amAssessBits + amAssessEvery),
}

// amBound returns the asserted per-class detection-latency bound in raw
// bits from attack ONSET (so ramped attacks get their ramp).
func amBound(layer string, rampBits uint64) uint64 {
	switch layer {
	case amLayerTot:
		return rampBits + 4096
	case amLayerMonitor:
		return rampBits + 16384
	case amLayerSP90B:
		return rampBits + 65536
	}
	return 0
}

// amSpec is one scenario row of the matrix.
type amSpec struct {
	name  string
	class string // expected live-detection layer ("" for the control)
	// alt is an alternate acceptable live layer for rows whose physics
	// is a genuine race (detection latency is then held to whichever
	// layer actually fired).
	alt string
	// shards/attacked shape the pool (defaults: 1 shard, attack shard 0).
	shards   int
	attacked []int
	onset    uint64 // raw bits before attack onset
	ramp     uint64 // raw-bit 0→full ramp (0 = step)
	hold     uint64 // full-strength raw bits before revert
	revert   bool
	budget   uint64 // post-onset raw-bit budget for the live phase
	// persistent attacks re-arm at full strength on every recalibration
	// epoch: the calibration gate must refuse re-admission. Reverting
	// transients arm nothing after epoch 0 and must heal.
	persistent bool
	samplerP   float64 // > 0: sampler-bias row (wraps the bit source)
	// mk builds the oscillator-level scenario for a schedule (nil for
	// the control and sampler rows).
	mk func(f0 float64, sched attack.Schedule) attack.Scenario
}

// amSpecs is the catalog. Expected detection classes follow the
// MEASURED physics of the pinned operating point, not folklore:
//
//   - Deep thermal suppression collapses the per-sample phase walk so
//     far that the bit stream flatlines — the tot test wins the race
//     long before the first full monitor window.
//   - Variance-INFLATING attacks (flicker growth) leave the bits lively
//     and the entropy high; the §V monitor's thermal-high bound is the
//     only layer that sees them.
//   - Entraining tone attacks (injection, locking, supply ripple)
//     squeeze the random jitter but add a deterministic modulation that
//     keeps the bits toggling (no tot) and inflates the monitor-site
//     variance (no thermal-low): the delivered-entropy collapse is what
//     the SP 800-90B assessment catches.
//
// The locking row takes its Adler depth from the HONEST
// paper-calibrated jitter (an attacker locks a real ring; the ×100
// simulation article would demand an unphysical >100% period
// modulation), while the entrainment — the detectable signature — is
// expressed by the suppression either way.
func amSpecs() []amSpec {
	sigma1 := math.Sqrt(core.PaperModel().Phase.SigmaN2Thermal(1))
	return []amSpec{
		{name: "clean", class: "", budget: 49152},
		{name: "thermal-suppression", class: amLayerTot, alt: amLayerSP90B,
			onset: amOnsetBits, budget: 16384, persistent: true,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				// Near-total thermal kill: the phase walk freezes and the
				// stream flatlines, so tot usually fires within the first
				// post-onset chunks. The surviving FLICKER walk can park
				// the frozen phase near a sampling boundary and keep the
				// bits twitching irregularly — then the straddling
				// assessment catches the entropy collapse instead. Either
				// way the shard is out within the tot bound.
				return attack.ThermalSuppression{Factor: 0.999, Sched: sched}
			}},
		{name: "flicker-boost", class: amLayerMonitor, onset: amOnsetBits, budget: 32768, persistent: true,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				return attack.FlickerBoost{Factor: 32, Sched: sched}
			}},
		{name: "noise-kill", class: amLayerTot, onset: amOnsetBits, budget: 16384, persistent: true,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				return attack.NoiseKill{Sched: sched}
			}},
		{name: "freq-injection", class: amLayerSP90B, onset: amOnsetBits, budget: 65536, persistent: true,
			mk: func(f0 float64, sched attack.Schedule) attack.Scenario {
				return attack.Injection{FInj: 1.02 * f0, Depth: 0.01, Sched: sched, JitterSuppression: 0.7}
			}},
		{name: "freq-locking", class: amLayerSP90B, onset: amOnsetBits, budget: 65536, persistent: true,
			mk: func(f0 float64, sched attack.Schedule) attack.Scenario {
				return attack.Locking(f0, 1.005*f0, sigma1, 0.7, sched)
			}},
		{name: "slow-thermal-ramp", class: amLayerSP90B, onset: amOnsetBits, ramp: amRampBits,
			budget: amRampBits + 65536, persistent: true,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				// SlowThermalRamp(floor 0.45) with the schedule made
				// explicit so recalibration epochs arm the reached
				// floor as a step.
				return attack.ThermalSuppression{Factor: 0.55, Sched: sched}
			}},
		{name: "supply-ripple", class: amLayerSP90B, shards: 3, attacked: []int{0, 1},
			onset: amOnsetBits, budget: 65536, persistent: true,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				return attack.SupplyRipple{FRipple: 1e6, Depth: 0.05, Entrain: 0.7, Sched: sched}
			}},
		{name: "transient-flicker", class: amLayerMonitor, onset: amOnsetBits,
			hold: 32768, revert: true, budget: 32768,
			mk: func(_ float64, sched attack.Schedule) attack.Scenario {
				return attack.FlickerBoost{Factor: 32, Sched: sched}
			}},
		{name: "sampler-bias", class: amLayerSP90B, onset: amOnsetBits, budget: 65536,
			persistent: true, samplerP: 0.55},
	}
}

// amRep is the raw outcome of one repetition of one scenario.
type amRep struct {
	liveReason string
	liveLayer  string
	latBits    int64 // primary attacked shard, raw bits from onset
	latSpread  int64 // supply row: |lat(shard0) − lat(shard1)|
	wallSec    float64
	postFull   int64 // observation opportunity in raw bits (ramp/2 credit)
	allCaught  bool
	gateBlock  bool
	healed     bool
	drbgPre    bool
	drbgClosed bool
	drbgServes bool
	falseAlarm bool
	// Incident-engine outcome: total incidents, how many classified
	// correlated, the widest blast radius, and the (single) incident's
	// class when incCount == 1.
	incCount      int
	incCorrelated int
	incBlast      int
	incClass      string
}

// AttackCell is one (scenario, layer) cell aggregated over reps.
type AttackCell struct {
	Layer   string `json:"layer"`
	Outcome string `json:"outcome"`
	// Per-rep outcome counts; MissedRate = Missed / reps.
	Detected   int     `json:"detected"`
	Missed     int     `json:"missed"`
	Shadowed   int     `json:"shadowed"`
	NA         int     `json:"na"`
	MissedRate float64 `json:"missed_rate"`
	// Latency over detected reps, raw bits from attack onset, plus the
	// asserted class bound (0 = no bound for this layer).
	LatencyBitsMean float64 `json:"latency_bits_mean,omitempty"`
	LatencyBitsMax  int64   `json:"latency_bits_max,omitempty"`
	BoundBits       uint64  `json:"bound_bits,omitempty"`
	// LatencyWallMean is the journal's marker→quarantine pairing in
	// seconds (flight-recorder wall clock, reported not asserted).
	LatencyWallMean float64 `json:"latency_wall_s_mean,omitempty"`
}

// AttackRow is one scenario row of the matrix.
type AttackRow struct {
	Scenario      string       `json:"scenario"`
	Description   string       `json:"description"`
	ExpectedLayer string       `json:"expected_layer,omitempty"`
	Shards        int          `json:"shards"`
	Attacked      []int        `json:"attacked,omitempty"`
	OnsetBits     uint64       `json:"onset_bits"`
	RampBits      uint64       `json:"ramp_bits,omitempty"`
	Reps          int          `json:"reps"`
	Cells         []AttackCell `json:"cells"`
	// GateBlocked / Healed / DRBGFailClosed count reps.
	GateBlocked    int `json:"gate_blocked"`
	Healed         int `json:"healed"`
	DRBGFailClosed int `json:"drbg_fail_closed"`
	// LatencySpreadBits is the supply row's max detection-latency gap
	// between the coupled shards (correlated degradation evidence).
	LatencySpreadBits int64 `json:"latency_spread_bits,omitempty"`
	// The incident column: what the correlation engine reconstructed
	// from this scenario's journal (max over reps; the class is
	// rep-invariant and asserted so).
	Incidents           int      `json:"incidents"`
	IncidentClass       string   `json:"incident_class,omitempty"`
	IncidentBlastRadius int      `json:"incident_blast_radius,omitempty"`
	Violations          []string `json:"violations,omitempty"`
}

// AttackMatrixResult is the EXP-MTX outcome.
type AttackMatrixResult struct {
	Layers []string    `json:"layers"`
	Reps   int         `json:"reps"`
	Rows   []AttackRow `json:"rows"`
	// Violations aggregates every broken coverage assertion, prefixed
	// with the scenario name. Empty = the matrix holds.
	Violations []string `json:"violations"`
}

// AttackMatrix runs the full campaign (see AttackMatrixOpts).
func AttackMatrix(scale Scale, seed uint64) (AttackMatrixResult, error) {
	return AttackMatrixOpts(scale, seed, Options{})
}

// AttackMatrixOpts runs the detection-coverage campaign: every catalog
// scenario (optionally filtered to `only` by name) against its own live
// pool, Quick = 1 repetition, Full = 3. Scenario rows are independent
// engine tasks, so the matrix is identical for every worker count.
func AttackMatrixOpts(scale Scale, seed uint64, opt Options, only ...string) (AttackMatrixResult, error) {
	specs := amSpecs()
	// catalog[i] is the scenario's position in the FULL catalog, so a
	// filtered run derives the exact same per-rep seeds (and therefore
	// the exact same rows) as the full matrix.
	catalog := make([]int, len(specs))
	for i := range specs {
		catalog[i] = i
	}
	if len(only) > 0 {
		keep := make(map[string]bool, len(only))
		for _, n := range only {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []amSpec
		var selIdx []int
		for i, sc := range specs {
			if keep[sc.name] {
				sel = append(sel, sc)
				selIdx = append(selIdx, i)
			}
		}
		if len(sel) == 0 {
			return AttackMatrixResult{}, fmt.Errorf("experiments: no attack scenario matches %v", only)
		}
		specs, catalog = sel, selIdx
	}
	reps := 1
	if scale == Full {
		reps = 3
	}
	rows, err := engine.Map(context.Background(), len(specs), func(_ context.Context, i int) (AttackRow, error) {
		sc := specs[i]
		rs := make([]amRep, reps)
		for r := range rs {
			rep, err := sc.run(engine.DeriveSeed(seed, uint64(catalog[i]*16+r)), opt.Stream)
			if err != nil {
				return AttackRow{}, fmt.Errorf("%s rep %d: %w", sc.name, r, err)
			}
			rs[r] = rep
		}
		return sc.aggregate(rs), nil
	}, engine.Jobs(opt.Jobs))
	if err != nil {
		return AttackMatrixResult{}, err
	}
	res := AttackMatrixResult{Layers: amLayerOrder, Reps: reps, Rows: rows, Violations: []string{}}
	for _, row := range rows {
		for _, v := range row.Violations {
			res.Violations = append(res.Violations, row.Scenario+": "+v)
		}
	}
	return res, nil
}

// run executes one repetition: build the pool with the scenario armed
// through the source and monitor hooks, drive it through onset to
// detection (or budget), then probe the calibration gate and the DRBG
// fail-closed path. streamOn additionally arms the sliding-window
// streaming tracker at the matrix operating point (Options.Stream).
func (sc amSpec) run(seed uint64, streamOn bool) (amRep, error) {
	var rep amRep
	m := core.PaperModel().ScaleJitter(100).Phase
	f0 := m.F0
	shards := sc.shards
	if shards == 0 {
		shards = 1
	}
	attacked := sc.attacked
	if attacked == nil && sc.class != "" {
		attacked = []int{0}
	}
	isAttacked := make(map[int]bool, len(attacked))
	for _, a := range attacked {
		isAttacked[a] = true
	}
	// Schedules live in oscillator local time. Source rings advance
	// Divider periods per raw bit; the monitor pair advances MonitorN
	// periods per s_N sample, one sample per MonitorEveryBits raw bits.
	bitsToSec := func(bits uint64) float64 { return float64(bits) * amDivider / f0 }
	srcSched := attack.Schedule{Onset: bitsToSec(sc.onset), Ramp: bitsToSec(sc.ramp),
		Hold: bitsToSec(sc.hold), Revert: sc.revert}
	monScale := float64(amMonitorN) / float64(amMonitorEv*amDivider)

	j := obs.NewJournal(obs.DefaultCapacity)
	eng := incident.New(amIncidentWindow)
	sink := obs.Multi(j, eng)
	health := entropyd.HealthConfig{
		TotWindow:        amTotWindow,
		MonitorN:         amMonitorN,
		MonitorWindow:    amMonitorWin,
		MonitorEveryBits: amMonitorEv,
		MonitorSubdivide: amMonitorSub,
		AssessBits:       amAssessBits,
		AssessEveryBits:  amAssessEvery,
		AssessMinEntropy: amMinEntropy,
	}
	if streamOn {
		health.StreamWindow = amAssessBits
		health.StreamPanes = 4
		health.StreamMinEntropy = amStreamMinEntropy
	}
	cfg := entropyd.Config{
		Shards:       shards,
		Seed:         seed,
		Jobs:         1,
		Source:       entropyd.SourceConfig{Kind: entropyd.SourceERO, Model: m, Divider: amDivider},
		Health:       health,
		SeedTapBytes: amSeedTap,
		Sink:         sink,
		NewSource: func(shard, epoch int, s uint64) (entropyd.RawSource, error) {
			g, err := trng.New(trng.Config{Model: m, Divider: amDivider, Seed: s})
			if err != nil {
				return nil, err
			}
			if !isAttacked[shard] {
				return g, nil
			}
			if sc.samplerP > 0 {
				onset := sc.onset
				if epoch > 0 {
					if !sc.persistent {
						return g, nil
					}
					onset = 0
				}
				return &attack.SamplerBias{Src: g, P: sc.samplerP, OnsetBits: onset,
					Seed: engine.DeriveSeed(s, 0xb1a5)}, nil
			}
			if sc.mk == nil {
				return g, nil
			}
			sched := srcSched
			if epoch > 0 {
				if !sc.persistent {
					return g, nil
				}
				sched = attack.Schedule{} // full strength from the first period
			}
			attack.ArmBoth(g.Pair(), sc.mk(f0, sched))
			return g, nil
		},
		NewMonitorPair: func(shard, epoch int, s uint64) (*osc.Pair, error) {
			pair, err := osc.NewPair(m, 2e-3, osc.Options{Seed: s})
			if err != nil {
				return nil, err
			}
			if !isAttacked[shard] || sc.mk == nil {
				return pair, nil
			}
			sched := srcSched.Scaled(monScale)
			if epoch > 0 {
				if !sc.persistent {
					return pair, nil
				}
				sched = attack.Schedule{}
			}
			attack.ArmBoth(pair, sc.mk(f0, sched))
			return pair, nil
		},
	}
	pool, err := entropyd.New(cfg)
	if err != nil {
		return rep, err
	}
	dp, err := pool.DRBGPool(entropyd.DRBGConfig{})
	if err != nil {
		return rep, err
	}
	var marker attack.Describer
	if sc.samplerP > 0 {
		marker = &attack.SamplerBias{P: sc.samplerP, OnsetBits: sc.onset}
	} else if sc.mk != nil {
		marker = sc.mk(f0, srcSched)
	}

	// Live phase: produce through onset until every attacked shard is
	// quarantined or an undetected one exhausts the budget.
	type det struct {
		reason string
		bits   int64
	}
	found := make(map[int]det, len(attacked))
	primary := 0
	if len(attacked) > 0 {
		primary = attacked[0]
	}
	chunk := make([]byte, 512*shards)
	gbuf := make([]byte, 64)
	preDone := false
	budgetEnd := sc.onset + sc.budget
	for {
		if _, err := pool.Fill(chunk); err != nil && !errors.Is(err, entropyd.ErrStarved) {
			return rep, err
		}
		if !preDone && pool.Shard(primary).RawBits()+4096 >= sc.onset {
			// DRBG liveness just before onset, then the injection
			// markers that start the journal's latency clocks.
			_, gerr := dp.Generate(gbuf, true, 2*time.Second)
			rep.drbgPre = gerr == nil
			for _, a := range attacked {
				attack.Mark(sink, a, marker)
			}
			preDone = true
		}
		for _, a := range attacked {
			if _, ok := found[a]; ok {
				continue
			}
			s := pool.Shard(a)
			if s.State() == entropyd.StateQuarantined {
				found[a] = det{reason: s.LastReason().String(),
					bits: int64(s.RawBits()) - int64(sc.onset)}
			}
		}
		if len(attacked) > 0 && len(found) == len(attacked) {
			rep.allCaught = true
			break
		}
		// Budget is tracked on the slowest still-undetected attacked
		// shard (shard 0 for the control row).
		prog := pool.Shard(primary).RawBits()
		for _, a := range attacked {
			if _, ok := found[a]; !ok && pool.Shard(a).RawBits() > prog {
				prog = pool.Shard(a).RawBits()
			}
		}
		if prog >= budgetEnd {
			break
		}
	}
	for i := 0; i < shards; i++ {
		if !isAttacked[i] && pool.Shard(i).State() != entropyd.StateHealthy {
			rep.falseAlarm = true
		}
	}
	if d, ok := found[primary]; ok {
		rep.liveReason = d.reason
		rep.liveLayer = amReasonLayer(d.reason)
		rep.latBits = d.bits
		rep.postFull = d.bits - int64(sc.ramp)/2
		if lat := j.DetectionLatencies(); lat[d.reason] != nil {
			rep.wallSec = lat[d.reason].Mean().Seconds()
		}
	} else {
		rep.postFull = int64(pool.Shard(primary).RawBits()) - int64(sc.onset) - int64(sc.ramp)/2
	}
	if len(attacked) == 2 {
		if a, ok := found[attacked[0]]; ok {
			if b, ok := found[attacked[1]]; ok {
				rep.latSpread = a.bits - b.bits
				if rep.latSpread < 0 {
					rep.latSpread = -rep.latSpread
				}
			}
		}
	}

	// DRBG layer: with every shard under attack and quarantined, the
	// expansion layer must fail closed; with clean shards left (the
	// control and the supply row's bystander) it must keep serving.
	if len(attacked) == shards && rep.allCaught {
		_, gerr := dp.Generate(gbuf, true, 150*time.Millisecond)
		if errors.Is(gerr, entropyd.ErrSeedStarved) {
			ev, _ := j.Events(obs.Query{Shard: obs.Any, Lane: obs.Any, Type: obs.TypeDRBGFailClosed})
			rep.drbgClosed = len(ev) > 0
		}
	} else {
		_, gerr := dp.Generate(gbuf, true, 2*time.Second)
		rep.drbgServes = gerr == nil
	}

	// Calibration gate: persistent attacks re-arm at full strength, so
	// recalibration must keep refusing the shard; the reverting
	// transient arms nothing and must heal.
	if len(found) > 0 {
		ctx := context.Background()
		for i := 0; i < 2 && pool.Shard(primary).State() != entropyd.StateHealthy; i++ {
			pool.Recalibrate(ctx)
		}
		healthy := pool.Shard(primary).State() == entropyd.StateHealthy
		rep.gateBlock = !healthy
		rep.healed = healthy
	}

	// The incident column: what the passive correlation engine folded
	// the rep's alarm stream into.
	incs, _ := eng.Incidents(0)
	rep.incCount = len(incs)
	for _, in := range incs {
		rep.incClass = in.Class
		if in.Class == incident.ClassCorrelated {
			rep.incCorrelated++
		}
		if in.BlastRadius > rep.incBlast {
			rep.incBlast = in.BlastRadius
		}
	}
	return rep, nil
}

// amReasonLayer maps a quarantine reason class to its defense layer.
func amReasonLayer(reason string) string {
	switch reason {
	case "tot":
		return amLayerTot
	case "thermal-low", "thermal-high":
		return amLayerMonitor
	case "low-entropy", "live-low-entropy":
		return amLayerSP90B
	case "startup":
		return amLayerStartup
	}
	return reason
}

// aggregate folds the repetitions of one scenario into its matrix row,
// scoring every layer and collecting assertion violations.
func (sc amSpec) aggregate(rs []amRep) AttackRow {
	shards := sc.shards
	if shards == 0 {
		shards = 1
	}
	attacked := sc.attacked
	if attacked == nil && sc.class != "" {
		attacked = []int{0}
	}
	row := AttackRow{
		Scenario:      sc.name,
		ExpectedLayer: sc.class,
		Shards:        shards,
		Attacked:      attacked,
		OnsetBits:     sc.onset,
		RampBits:      sc.ramp,
		Reps:          len(rs),
	}
	if sc.mk != nil {
		row.Description = sc.mk(core.PaperModel().Phase.F0, attack.Schedule{}).Describe()
	} else if sc.samplerP > 0 {
		row.Description = (&attack.SamplerBias{P: sc.samplerP, OnsetBits: sc.onset}).Describe()
	} else {
		row.Description = "control: no attack armed"
	}
	cells := make(map[string]*AttackCell, len(amLayerOrder))
	for _, l := range amLayerOrder {
		cells[l] = &AttackCell{Layer: l, BoundBits: amBound(l, sc.ramp)}
	}
	violate := func(f string, a ...any) { row.Violations = append(row.Violations, fmt.Sprintf(f, a...)) }

	for _, r := range rs {
		// Live layers: tot, monitor, sp90b.
		for _, l := range []string{amLayerTot, amLayerMonitor, amLayerSP90B} {
			c := cells[l]
			switch {
			case sc.class == "":
				c.NA++
			case r.liveLayer == l:
				c.Detected++
				c.LatencyBitsMean += float64(r.latBits)
				if r.latBits > c.LatencyBitsMax {
					c.LatencyBitsMax = r.latBits
				}
				c.LatencyWallMean += r.wallSec
			case r.liveLayer != "" && r.postFull < int64(amHorizon[l]):
				c.Shadowed++
			case r.postFull >= int64(amHorizon[l]):
				c.Missed++
			default:
				c.NA++
			}
		}
		switch {
		case sc.persistent:
			if r.gateBlock {
				cells[amLayerStartup].Detected++
			} else {
				cells[amLayerStartup].Missed++
			}
			if !r.gateBlock {
				violate("calibration gate re-admitted the shard under a persistent attack")
			}
		default:
			cells[amLayerStartup].NA++
		}
		switch {
		case len(attacked) == shards && sc.class != "":
			if r.drbgClosed {
				cells[amLayerDRBG].Detected++
			} else {
				cells[amLayerDRBG].Missed++
				violate("DRBG did not fail closed with every shard quarantined")
			}
		default:
			cells[amLayerDRBG].NA++
			if !r.drbgServes {
				violate("DRBG stopped serving although a healthy shard remained")
			}
		}
		if r.gateBlock {
			row.GateBlocked++
		}
		if r.healed {
			row.Healed++
		}
		if r.drbgClosed {
			row.DRBGFailClosed++
		}
		if r.latSpread > row.LatencySpreadBits {
			row.LatencySpreadBits = r.latSpread
		}
		if !r.drbgPre {
			violate("DRBG was not serving before the attack onset")
		}
		if r.falseAlarm {
			violate("an unattacked shard was quarantined (false alarm)")
		}
		// The incident column. Correlation is an attack property, not a
		// window artifact: only the multi-shard supply row may (and
		// must) correlate, and its blast radius must span exactly the
		// coupled shards.
		if r.incCount > row.Incidents {
			row.Incidents = r.incCount
		}
		if r.incBlast > row.IncidentBlastRadius {
			row.IncidentBlastRadius = r.incBlast
		}
		if r.incClass != "" {
			row.IncidentClass = r.incClass
		}
		switch {
		case sc.class == "":
			if r.incCount != 0 {
				violate("incident engine opened %d incident(s) on the control run", r.incCount)
			}
		case len(attacked) >= 2:
			if r.incCount != 1 || r.incClass != incident.ClassCorrelated || r.incBlast != len(attacked) {
				violate("coupled attack folded into %d incident(s), class %q, blast %d — want one correlated incident spanning all %d attacked shards",
					r.incCount, r.incClass, r.incBlast, len(attacked))
			}
		default:
			if r.incCorrelated != 0 {
				violate("a single-shard attack produced a correlated incident")
			}
			if r.allCaught && r.incCount == 0 {
				violate("shard quarantined but the incident engine recorded nothing")
			}
		}
		if sc.class == "" {
			if r.liveLayer != "" || r.falseAlarm {
				violate("control run alarmed (%s)", r.liveReason)
			}
			continue
		}
		if !r.allCaught {
			violate("an attacked shard was never quarantined within the budget")
		}
		if r.liveLayer == "" {
			violate("no defense layer detected the attack live")
		} else if r.liveLayer != sc.class && (sc.alt == "" || r.liveLayer != sc.alt) {
			violate("live detection by %s (reason %s), expected %s", r.liveLayer, r.liveReason, sc.class)
		} else if bound := amBound(sc.class, sc.ramp); bound > 0 && r.latBits > int64(bound) {
			violate("detection latency %d raw bits exceeds the %s bound %d", r.latBits, sc.class, bound)
		}
		if sc.revert && !r.healed {
			violate("shard did not heal after the transient reverted")
		}
	}
	// The evasion assertion: the slow ramp must be MISSED (not merely
	// shadowed) by tot and the monitor in every rep, and its latency
	// must exceed the monitor's bound — only the assessment sees it.
	if sc.class == amLayerSP90B && sc.ramp > 0 {
		for _, l := range []string{amLayerTot, amLayerMonitor} {
			if c := cells[l]; c.Missed != len(rs) {
				violate("evasion broken: %s missed %d/%d reps (must miss all)", l, c.Missed, len(rs))
			}
		}
		if mb := amBound(amLayerMonitor, 0); cells[amLayerSP90B].LatencyBitsMax <= int64(mb) {
			violate("evasion latency %d within the monitor bound %d — not a slow-layer catch",
				cells[amLayerSP90B].LatencyBitsMax, mb)
		}
	}
	for _, l := range amLayerOrder {
		c := cells[l]
		if c.Detected > 0 {
			c.LatencyBitsMean /= float64(c.Detected)
			c.LatencyWallMean /= float64(c.Detected)
		}
		c.MissedRate = float64(c.Missed) / float64(len(rs))
		switch {
		case c.Detected == len(rs):
			c.Outcome = amDetected
		case c.Missed == len(rs):
			c.Outcome = amMissed
		case c.Shadowed == len(rs):
			c.Outcome = amShadowed
		case c.NA == len(rs):
			c.Outcome = amNA
		case c.Shadowed+c.Missed == len(rs):
			// A miss/shadow mix is detection-latency jitter around the
			// layer's horizon, not flaky coverage; score it by the
			// majority (the missed-rate field keeps the exact split).
			c.Outcome = amShadowed
			if c.Missed >= c.Shadowed {
				c.Outcome = amMissed
			}
		default:
			c.Outcome = "mixed"
			violate("layer %s outcome is rep-dependent (%d det/%d miss/%d shadow/%d na)",
				l, c.Detected, c.Missed, c.Shadowed, c.NA)
		}
		row.Cells = append(row.Cells, *c)
	}
	return row
}

// Table renders the coverage matrix.
func (r AttackMatrixResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-MTX  attack campaign: detection coverage per (scenario × defense layer), %d rep(s)\n", r.Reps)
	fmt.Fprintf(&b, "%-22s", "scenario")
	for _, l := range r.Layers {
		fmt.Fprintf(&b, " %-14s", l)
	}
	fmt.Fprintf(&b, " %s\n", "latency[rawbits] (mean, detecting layer)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s", row.Scenario)
		lat := "-"
		for _, c := range row.Cells {
			mark := c.Outcome
			switch c.Outcome {
			case amDetected:
				mark = "DETECT"
			case amMissed:
				mark = "miss"
			case amShadowed:
				mark = "shadow"
			case amNA:
				mark = "-"
			}
			fmt.Fprintf(&b, " %-14s", mark)
			if c.Outcome == amDetected && c.Layer == row.ExpectedLayer {
				lat = fmt.Sprintf("%.0f (wall %.3gs)", c.LatencyBitsMean, c.LatencyWallMean)
			}
		}
		fmt.Fprintf(&b, " %s\n", lat)
		if row.LatencySpreadBits > 0 {
			fmt.Fprintf(&b, "%-22s correlated-shard detection spread: %d raw bits\n", "", row.LatencySpreadBits)
		}
		if row.Incidents > 0 {
			fmt.Fprintf(&b, "%-22s incidents: %d %s (blast radius %d)\n", "",
				row.Incidents, row.IncidentClass, row.IncidentBlastRadius)
		}
	}
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "coverage assertions: all hold (no scenario fully undetected, evasion case confirmed)\n")
	} else {
		fmt.Fprintf(&b, "COVERAGE VIOLATIONS (%d):\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}
