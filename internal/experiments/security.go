package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ais31"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/measure"
	"repro/internal/onlinetest"
	"repro/internal/osc"
	"repro/internal/postproc"
	"repro/internal/trng"
)

// OnlineCase is one attack scenario of EXP-ATT.
type OnlineCase struct {
	Name string
	// Detected reports whether the monitor alarmed.
	Detected bool
	// LatencySamples is the number of s_N samples consumed before
	// the first alarm (−1 when never).
	LatencySamples int
	// LatencySeconds converts the latency to wall-clock time of the
	// monitored oscillator.
	LatencySeconds float64
	// LowAlarms / HighAlarms counts.
	LowAlarms, HighAlarms int
}

// OnlineResult is the EXP-ATT outcome.
type OnlineResult struct {
	Cases []OnlineCase
	// FalseAlarms over the clean-run windows (must be 0 at the
	// configured 1e-6 per-window alpha).
	CleanWindows int
}

// OnlineTest exercises the paper's proposed embedded thermal-noise
// monitor (§V): a clean run must stay silent; thermal suppression and
// frequency-injection attacks must trip the alarm quickly.
func OnlineTest(scale Scale, seed uint64) (OnlineResult, error) {
	return OnlineTestOpts(scale, seed, Options{})
}

// OnlineTestOpts is OnlineTest with explicit execution options: each
// attack scenario is one engine task with its own pair, counter and
// monitor, so the detection matrix is identical for every worker-pool
// width.
func OnlineTestOpts(scale Scale, seed uint64, opt Options) (OnlineResult, error) {
	m := core.PaperModel()
	const n = 64 // well inside the N*(95%) = 281 independence zone
	samples := 3000
	if scale == Full {
		samples = 12000
	}
	window := 256

	scenarios := []struct {
		name string
		arm  func(o1, o2 *osc.Oscillator)
	}{
		{"clean (no attack)", func(o1, o2 *osc.Oscillator) {}},
		{"thermal suppression 95%", func(o1, o2 *osc.Oscillator) {
			attack.ThermalSuppression{Factor: 0.95}.Arm(o1)
			attack.ThermalSuppression{Factor: 0.95}.Arm(o2)
		}},
		{"injection (lock, 90% suppression)", func(o1, o2 *osc.Oscillator) {
			attack.Injection{FInj: 1e6, Depth: 0.002, JitterSuppression: 0.9}.Arm(o1)
			attack.Injection{FInj: 1e6, Depth: 0.002, JitterSuppression: 0.9}.Arm(o2)
		}},
	}

	type caseRun struct {
		c       OnlineCase
		windows int
	}
	runs, err := engine.Map(context.Background(), len(scenarios), func(_ context.Context, i int) (caseRun, error) {
		sc := scenarios[i]
		pair, err := m.RingPair(engine.DeriveSeed(seed, uint64(i)))
		if err != nil {
			return caseRun{}, err
		}
		sc.arm(pair.Osc1, pair.Osc2)
		c, err := measure.NewCounterConfig(pair, n, measure.Config{Subdivide: 64})
		if err != nil {
			return caseRun{}, err
		}
		mon, err := onlinetest.New(onlinetest.Config{
			N:          n,
			Window:     window,
			RefSigmaN2: m.Phase.SigmaN2Thermal(n) + c.QuantizationFloor(),
		})
		if err != nil {
			return caseRun{}, err
		}
		run, err := onlinetest.Run(mon, c, samples)
		if err != nil {
			return caseRun{}, err
		}
		oc := OnlineCase{
			Name:           sc.name,
			Detected:       run.FirstAlarmWindow >= 0,
			LatencySamples: run.FirstAlarmSamples,
			LowAlarms:      run.LowAlarms,
			HighAlarms:     run.HighAlarms,
		}
		if run.FirstAlarmSamples > 0 {
			oc.LatencySeconds = float64(run.FirstAlarmSamples) * float64(n) / m.Phase.F0
		} else {
			oc.LatencySamples = -1
		}
		return caseRun{c: oc, windows: run.Windows}, nil
	}, engine.Jobs(opt.Jobs))
	if err != nil {
		return OnlineResult{}, err
	}
	var res OnlineResult
	res.CleanWindows = runs[0].windows
	for _, r := range runs {
		res.Cases = append(res.Cases, r.c)
	}
	return res, nil
}

// Table renders the attack-detection matrix.
func (r OnlineResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-ATT  online thermal-noise monitor (paper §V proposal), N=64, window=256\n")
	fmt.Fprintf(&b, "%-34s %9s %12s %14s %6s %6s\n",
		"scenario", "detected", "latency[sN]", "latency[s]", "low", "high")
	for _, c := range r.Cases {
		lat := "-"
		latS := "-"
		if c.LatencySamples >= 0 {
			lat = fmt.Sprintf("%d", c.LatencySamples)
			latS = fmt.Sprintf("%.3g", c.LatencySeconds)
		}
		fmt.Fprintf(&b, "%-34s %9v %12s %14s %6d %6d\n",
			c.Name, c.Detected, lat, latS, c.LowAlarms, c.HighAlarms)
	}
	fmt.Fprintf(&b, "clean run evaluated %d windows with zero alarms expected\n", r.CleanWindows)
	return b.String()
}

// AIS31Row is one configuration of the EXP-AIS run.
type AIS31Row struct {
	Name     string
	Verdicts []ais31.Verdict
	Pass     bool
}

// AIS31Result is the EXP-AIS outcome.
type AIS31Result struct{ Rows []AIS31Row }

// AIS31Run exercises procedure-B-style testing on simulated eRO-TRNG
// output: an under-sampled raw sequence fails, a well-accumulated or
// post-processed sequence passes. (The full procedure A needs 8.3 Mbit
// ≈ 10¹⁰ simulated periods at realistic dividers; procedure B at
// ~2.3 Mbit is the practical certification gate here.)
func AIS31Run(scale Scale, seed uint64) (AIS31Result, error) {
	m := core.PaperModel()
	// Boosted-thermal test article: the paper-calibrated model needs
	// dividers of ~10⁵ periods per bit to reach the well-mixed
	// regime (see EXP-ENT), which at 2.25 Mbit per procedure-B run
	// would mean ~10¹¹ simulated periods. Scaling b_th by 10⁴
	// (σ_th ×100) preserves the architecture and the failure modes
	// while shrinking the mixing divider to ~10.
	hot := m.Phase
	hot.Bth *= 1e4
	hot.Bfl *= 100

	p := ais31.DefaultCoron()
	need := (p.Q+p.K)*p.L + 200001

	var res AIS31Result

	// Case 1: under-sampled raw output (divider far below the
	// entropy requirement): strongly correlated bits.
	gBad, err := trng.New(trng.Config{Model: hot, Divider: 1, Seed: seed})
	if err != nil {
		return AIS31Result{}, err
	}
	bitsBad := gBad.Bits(need)
	vBad, passBad, err := ais31.ProcedureB(bitsBad)
	if err != nil {
		return AIS31Result{}, err
	}
	res.Rows = append(res.Rows, AIS31Row{Name: "raw, divider 1 (under-sampled)", Verdicts: vBad, Pass: passBad})

	// Case 2: properly accumulated raw output (σ_acc ≈ 0.73 cycles
	// per sample: well mixed).
	gGood, err := trng.New(trng.Config{Model: hot, Divider: 10, Seed: seed + 1})
	if err != nil {
		return AIS31Result{}, err
	}
	bitsGood := gGood.Bits(need)
	vGood, passGood, err := ais31.ProcedureB(bitsGood)
	if err != nil {
		return AIS31Result{}, err
	}
	res.Rows = append(res.Rows, AIS31Row{Name: "raw, divider 10 (accumulated)", Verdicts: vGood, Pass: passGood})

	// Case 3: under-sampled output rescued by XOR-8 post-processing.
	gPost, err := trng.New(trng.Config{Model: hot, Divider: 2, Seed: seed + 2})
	if err != nil {
		return AIS31Result{}, err
	}
	raw := gPost.Bits(need * 8)
	bitsPost := postproc.XORDecimate(raw, 8)
	vPost, passPost, err := ais31.ProcedureB(bitsPost[:need])
	if err != nil {
		return AIS31Result{}, err
	}
	res.Rows = append(res.Rows, AIS31Row{Name: "divider 2 + XOR-8 post-proc", Verdicts: vPost, Pass: passPost})

	_ = scale
	return res, nil
}

// Table renders the AIS31 matrix.
func (r AIS31Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-AIS  AIS31 procedure B on simulated eRO-TRNG output\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-34s overall=%v\n", row.Name, row.Pass)
		for _, v := range row.Verdicts {
			fmt.Fprintf(&b, "    %s\n", v.String())
		}
	}
	return b.String()
}
