package experiments

import (
	"reflect"
	"runtime"
	"testing"
)

// TestEntropyAssessmentSoundAndFlagged is the EXP-90B acceptance
// check at Quick scale:
//
//  1. Soundness: at every divider the suite minimum stays at or below
//     the exact refined conditional Shannon entropy + 0.02 bit — the
//     black-box bound never overclaims against the model truth.
//  2. The autocorrelated small-divider regime is correctly flagged
//     below the naive (independence-assumption) estimate: the suite
//     minimum undercuts both the naive Shannon entropy and — in the
//     flicker crossover — the naive min-entropy, which is exactly the
//     certification gap the paper warns about.
//  3. The bias-only MCV estimator stays blind (≈ 1 bit) on the same
//     balanced-but-autocorrelated streams, reproducing the naive
//     model's overestimate inside the 90B suite itself; only the
//     suite minimum is sound.
func TestEntropyAssessmentSoundAndFlagged(t *testing.T) {
	if testing.Short() {
		t.Skip("EXP-90B campaign is minutes of CPU; skipped in -short")
	}
	t.Parallel()
	r, err := EntropyAssessmentOpts(Quick, 1, Options{Leapfrog: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("campaign produced %d rows", len(r.Rows))
	}
	t.Logf("\n%s", r.Table())
	for _, row := range r.Rows {
		if got, bound := row.SuiteMin(), row.Exact.HRefined+0.02; got > bound {
			t.Errorf("K=%d: suite min %.4f above exact refined Shannon %.4f + 0.02",
				row.Divider, got, row.Exact.HRefined)
		}
	}
	// The two smallest dividers are deep in the autocorrelated regime
	// (refined σ per sample ≪ half a cycle: the raw stream is runs).
	for _, row := range r.Rows[:2] {
		if row.SuiteMin() >= row.Exact.HNaive {
			t.Errorf("K=%d: suite min %.4f not below naive Shannon %.4f",
				row.Divider, row.SuiteMin(), row.Exact.HNaive)
		}
		mcv, ok := row.Report.Estimate("mcv")
		if !ok {
			t.Fatalf("K=%d: no MCV estimate", row.Divider)
		}
		if mcv.MinEntropy < 0.9 {
			t.Errorf("K=%d: MCV %.4f < 0.9 — the bias-only estimator should be blind here",
				row.Divider, mcv.MinEntropy)
		}
	}
	// Flicker crossover (second row, K=2048 at Quick): the naive model
	// certifies a min-entropy the black-box suite refuses to grant.
	if row := r.Rows[1]; row.SuiteMin() >= row.Exact.HMinNaive {
		t.Errorf("K=%d: suite min %.4f not below naive min-entropy %.4f",
			row.Divider, row.SuiteMin(), row.Exact.HMinNaive)
	}
	// Near-full-entropy operating region (largest divider): exact
	// entropy is ≈ 1 and every estimator must agree within its
	// designed conservatism.
	last := r.Rows[len(r.Rows)-1]
	if last.Exact.HMinRefined < 0.95 {
		t.Fatalf("K=%d: expected near-full exact min-entropy, got %.4f",
			last.Divider, last.Exact.HMinRefined)
	}
	for _, e := range last.Report.Estimates {
		if e.MinEntropy > last.Exact.HRefined+0.02 {
			t.Errorf("K=%d: %s %.4f above exact %.4f + 0.02",
				last.Divider, e.Name, e.MinEntropy, last.Exact.HRefined)
		}
		if e.MinEntropy < 0.7 {
			t.Errorf("K=%d: %s %.4f < 0.7 on a near-full-entropy stream",
				last.Divider, e.Name, e.MinEntropy)
		}
	}
}

// TestEntropyAssessmentDeterminism pins the engine contract: the
// campaign table is bit-identical for every worker-pool width.
func TestEntropyAssessmentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("EXP-90B determinism pin runs the campaign twice; skipped in -short")
	}
	t.Parallel()
	seq, err := EntropyAssessmentOpts(Quick, 7, Options{Jobs: 1, Leapfrog: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := EntropyAssessmentOpts(Quick, 7, Options{Jobs: runtime.NumCPU(), Leapfrog: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("EXP-90B table differs between jobs=1 and jobs=NumCPU")
	}
}
