package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/osc"
	"repro/internal/spectral"
	"repro/internal/tia"
)

// PSDResult is the EXP-PSD outcome: the frequency-domain view of the
// same oscillator must return the σ²_N-law coefficients.
type PSDResult struct {
	// Spectral estimates (paper convention).
	Bth, Bfl, Corner float64
	// Reference (calibration) values.
	RefBth, RefBfl float64
	// Relative deviations.
	DBth, DBfl float64
	// Band slopes (expect ≈ −2 in the thermal region; ≈ −3 below the
	// corner when it is observable).
	SlopeLow, SlopeHigh float64
}

// PSDCrossCheck runs the spectral pipeline on a single simulated ring
// (paper per-ring model with flicker boosted 100× so the 1/f³ corner
// falls inside the Welch band) and compares with the calibration.
func PSDCrossCheck(scale Scale, seed uint64) (PSDResult, error) {
	m := core.PaperModel().PerRing().Phase
	m.Bfl *= 100
	o, err := osc.New(m, osc.Options{Seed: seed})
	if err != nil {
		return PSDResult{}, err
	}
	periods := 1 << 21
	if scale == Full {
		periods = 1 << 23
	}
	fit, _, err := spectral.MeasureOscillator(o, periods, 1<<13)
	if err != nil {
		return PSDResult{}, err
	}
	dth, dfl := spectral.CrossCheck(fit.Bth, fit.Bfl, m.Bth, m.Bfl)
	return PSDResult{
		Bth: fit.Bth, Bfl: fit.Bfl, Corner: fit.Corner,
		RefBth: m.Bth, RefBfl: m.Bfl,
		DBth: dth, DBfl: dfl,
		SlopeLow: fit.SlopeLow, SlopeHigh: fit.SlopeHigh,
	}, nil
}

// Table renders the spectral cross-check.
func (r PSDResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-PSD  spectral view of eq. 10 (Welch PSD of extracted phase, flicker x100 article)\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %10s\n", "coefficient", "spectral", "reference", "rel.dev")
	fmt.Fprintf(&b, "%-14s %14.4g %14.4g %+10.2f%%\n", "b_th [Hz]", r.Bth, r.RefBth, 100*r.DBth)
	fmt.Fprintf(&b, "%-14s %14.4g %14.4g %+10.2f%%\n", "b_fl [Hz^2]", r.Bfl, r.RefBfl, 100*r.DBfl)
	fmt.Fprintf(&b, "corner %.4g Hz; band slopes low %.2f (exp -3), high %.2f (exp -2)\n",
		r.Corner, r.SlopeLow, r.SlopeHigh)
	return b.String()
}

// TIAResult is the EXP-TIA outcome: the bench-instrument oracle against
// the embedded counter extraction (the paper's "close to our
// measurements obtained by other more expensive methods").
type TIAResult struct {
	// CounterSigmaPs is σ from the counter campaign fit.
	CounterSigmaPs float64
	// OracleSigmaPs is σ from the TIA cycle-to-cycle route.
	OracleSigmaPs float64
	// Deviation is the relative difference.
	Deviation float64
	// OracleC2CPs and OraclePeriodSigmaPs give the instrument's raw
	// statistics for context.
	OracleC2CPs, OraclePeriodSigmaPs float64
}

// TIACrossCheck extracts σ via both instruments from the same model.
func TIACrossCheck(scale Scale, seed uint64) (TIAResult, error) {
	th, err := ThermalExtraction(scale, seed)
	if err != nil {
		return TIAResult{}, err
	}
	return TIACrossCheckFromThermal(th, scale, seed)
}

// TIACrossCheckFromThermal runs only the TIA-oracle side against an
// already-run §IV-B extraction, so the expensive counter campaign can
// be shared with the other derived artifacts.
func TIACrossCheckFromThermal(th ThermalResult, scale Scale, seed uint64) (TIAResult, error) {
	// The TIA observes ONE ring; the counter fit measured the
	// relative (two-ring) jitter, so compare per-ring σ = σ_rel/√2.
	m := core.PaperModel().PerRing().Phase
	o, err := osc.New(m, osc.Options{Seed: seed + 101})
	if err != nil {
		return TIAResult{}, err
	}
	an := tia.New(tia.Config{ResolutionRMS: 2e-12, Seed: seed + 202})
	n := 500000
	if scale == Full {
		n = 2000000
	}
	oracle, err := an.Measure(o, n)
	if err != nil {
		return TIAResult{}, err
	}
	counterPerRing := th.Fit.SigmaThermal / 1.4142135623730951
	return TIAResult{
		CounterSigmaPs:      counterPerRing * 1e12,
		OracleSigmaPs:       oracle.SigmaThermal * 1e12,
		Deviation:           tia.CrossCheckSigma(counterPerRing, oracle),
		OracleC2CPs:         oracle.C2C * 1e12,
		OraclePeriodSigmaPs: oracle.PeriodSigma * 1e12,
	}, nil
}

// Table renders the oracle comparison.
func (r TIAResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-TIA  counter extraction vs time-interval-analyzer oracle (per ring)\n")
	fmt.Fprintf(&b, "%-26s %12.2f ps\n", "counter sigma (fit/sqrt2)", r.CounterSigmaPs)
	fmt.Fprintf(&b, "%-26s %12.2f ps\n", "TIA sigma (c2c route)", r.OracleSigmaPs)
	fmt.Fprintf(&b, "%-26s %+12.2f %%\n", "relative deviation", 100*r.Deviation)
	fmt.Fprintf(&b, "context: TIA c2c %.2f ps, raw period sigma %.2f ps\n", r.OracleC2CPs, r.OraclePeriodSigmaPs)
	fmt.Fprintf(&b, "(the paper reports its 1.6 permil agrees with such bench measurements [19])\n")
	return b.String()
}
