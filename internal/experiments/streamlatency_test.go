package experiments

import (
	"testing"
)

// TestStreamLatencyHeadline pins the PR's measured claim: on the
// matrix's slow-thermal-ramp evasion case, the sliding-window tracker
// quarantines in at most half the raw bits of the deployment-cadence
// batch configuration, and attributes the detection to the live
// watermark ("live-low-entropy"), not the batch gate.
func TestStreamLatencyHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-pool campaign")
	}
	t.Parallel()
	r, err := StreamLatency(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("latency violations: %v", r.Violations)
	}
	byName := make(map[string]StreamLatencyMode, len(r.Modes))
	for _, m := range r.Modes {
		byName[m.Mode] = m
	}
	for mode, want := range map[string]string{
		slBatchDefault: "low-entropy",
		slBatchTight:   "low-entropy",
		slStream:       "live-low-entropy",
	} {
		m, ok := byName[mode]
		if !ok {
			t.Fatalf("mode %q missing from the result", mode)
		}
		if m.Reason != want {
			t.Errorf("%s: detected by reason %q, want %q", mode, m.Reason, want)
		}
		// Detection must land after onset but inside the run budget, and
		// the journal must pair the injection marker with a real
		// wall-clock latency.
		if m.LatencyBitsMean <= 0 || m.LatencyBitsMax <= 0 {
			t.Errorf("%s: non-positive latency (mean %.0f, max %d)", mode, m.LatencyBitsMean, m.LatencyBitsMax)
		}
		if m.LatencyWallMean <= 0 {
			t.Errorf("%s: journal recorded no wall-clock detection latency", mode)
		}
	}
	if r.ImprovementVsDefault < 2 {
		t.Errorf("streaming advantage %.2fx vs deployment cadence, want >= 2x", r.ImprovementVsDefault)
	}
	// The tight batch cadence is the batch estimator's best case; the
	// tracker must still not lose to it (both are floor-bound by the
	// ramp, so this ratio is >= 1, not >= 2).
	if r.ImprovementVsTight < 1 {
		t.Errorf("streaming advantage %.2fx vs tight batch — slower than the best batch cadence", r.ImprovementVsTight)
	}
	// Every mode watched the same attacked physics realization, so the
	// latency ordering is cadence structure, not seed luck: continuous
	// re-scoring <= sample-quantized tight batch <= sparse default.
	if s, bt := byName[slStream].LatencyBitsMean, byName[slBatchTight].LatencyBitsMean; s > bt {
		t.Errorf("stream latency %.0f exceeds tight batch %.0f on the same realization", s, bt)
	}
	if bt, bd := byName[slBatchTight].LatencyBitsMean, byName[slBatchDefault].LatencyBitsMean; bt > bd {
		t.Errorf("tight batch latency %.0f exceeds default cadence %.0f on the same realization", bt, bd)
	}
}
