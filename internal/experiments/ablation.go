package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/entropy"
	"repro/internal/indep"
	"repro/internal/jitter"
	"repro/internal/osc"
)

// IndependenceCase is one row of the EXP-IND ablation: a noise
// configuration and the verdicts of the independence diagnostics.
type IndependenceCase struct {
	Name string
	// PlausibleSmallN / PlausibleLargeN: Bienaymé verdicts on a
	// small-N-only sweep (N ≤ 128) and a wide sweep (N up to 64k).
	PlausibleSmallN, PlausibleLargeN bool
	// BSignificanceWide is the z-score of the quadratic coefficient
	// on the wide sweep.
	BSignificanceWide float64
	// PortmanteauP is the Ljung–Box p-value on non-overlapping s_64.
	PortmanteauP float64
}

// IndependenceResult is the EXP-IND outcome.
type IndependenceResult struct{ Cases []IndependenceCase }

// Independence runs the ablation behind the paper's §III-D claim:
// thermal-only jitter passes every independence diagnostic at any N;
// adding flicker keeps the small-N region looking independent but is
// rejected on a wide sweep.
func Independence(scale Scale, seed uint64) (IndependenceResult, error) {
	return IndependenceOpts(scale, seed, Options{})
}

// IndependenceOpts is Independence with explicit execution options:
// each noise configuration is one engine task (its jitter record,
// sweeps and diagnostics are private to the task), so the ablation
// matrix is identical for every worker-pool width.
func IndependenceOpts(scale Scale, seed uint64, opt Options) (IndependenceResult, error) {
	samples := 3_000_000
	if scale == Full {
		samples = 8_000_000
	}
	paper := core.PaperModel().PerRing().Phase

	configs := []struct {
		name string
		mut  func(taskSeed uint64) (j []float64, err error)
	}{
		{"thermal-only", func(taskSeed uint64) ([]float64, error) {
			m := paper
			m.Bfl = 0
			o, err := osc.New(m, osc.Options{Seed: taskSeed})
			if err != nil {
				return nil, err
			}
			return o.Jitter(samples), nil
		}},
		{"thermal+flicker (paper)", func(taskSeed uint64) ([]float64, error) {
			o, err := osc.New(paper, osc.Options{Seed: taskSeed})
			if err != nil {
				return nil, err
			}
			return o.Jitter(samples), nil
		}},
		{"flicker x10", func(taskSeed uint64) ([]float64, error) {
			m := paper
			m.Bfl *= 10
			o, err := osc.New(m, osc.Options{Seed: taskSeed})
			if err != nil {
				return nil, err
			}
			return o.Jitter(samples), nil
		}},
	}

	smallNs := []int{4, 8, 16, 32, 64, 128}
	wideNs := jitter.LogSpacedNs(16, samples/64, 4)
	cases, err := engine.Map(context.Background(), len(configs), func(_ context.Context, i int) (IndependenceCase, error) {
		cfg := configs[i]
		j, err := cfg.mut(engine.DeriveSeed(seed, uint64(i)))
		if err != nil {
			return IndependenceCase{}, err
		}
		sweepSmall, err := jitter.Sweep(j, smallNs)
		if err != nil {
			return IndependenceCase{}, err
		}
		linSmall, err := indep.BienaymeLinearity(sweepSmall, paper.F0)
		if err != nil {
			return IndependenceCase{}, err
		}
		sweepWide, err := jitter.Sweep(j, wideNs)
		if err != nil {
			return IndependenceCase{}, err
		}
		linWide, err := indep.BienaymeLinearity(sweepWide, paper.F0)
		if err != nil {
			return IndependenceCase{}, err
		}
		pm, err := indep.SNPortmanteau(j, 64, 20)
		if err != nil {
			return IndependenceCase{}, err
		}
		return IndependenceCase{
			Name:              cfg.name,
			PlausibleSmallN:   linSmall.IndependencePlausible(0.001),
			PlausibleLargeN:   linWide.IndependencePlausible(0.001),
			BSignificanceWide: linWide.BSignificance,
			PortmanteauP:      pm.PValue,
		}, nil
	}, engine.Jobs(opt.Jobs))
	if err != nil {
		return IndependenceResult{}, err
	}
	return IndependenceResult{Cases: cases}, nil
}

// Table renders the ablation matrix.
func (r IndependenceResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-IND  independence diagnostics (Bienaymé linearity of sigma_N^2)\n")
	fmt.Fprintf(&b, "%-26s %12s %12s %10s %12s\n",
		"configuration", "indep@N<=128", "indep@wide", "z(b)", "LjungBox p")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "%-26s %12v %12v %10.1f %12.3g\n",
			c.Name, c.PlausibleSmallN, c.PlausibleLargeN, c.BSignificanceWide, c.PortmanteauP)
	}
	fmt.Fprintf(&b, "expected: thermal-only true/true; with flicker true/false (paper §III-D)\n")
	return b.String()
}

// EntropyRow is one divider point of the EXP-ENT comparison.
type EntropyRow struct {
	Divider int
	entropy.Comparison
}

// EntropyResult is the EXP-ENT outcome.
type EntropyResult struct {
	Rows []EntropyRow
	// RequiredNaive / RequiredRefined: smallest divider reaching
	// H >= 0.997 under each model — the design-relevant number the
	// paper's conclusion warns about.
	RequiredRefined int
}

// EntropyComparison quantifies the paper's conclusion: models that
// treat all measured jitter as white (independent realizations)
// overestimate entropy; only the thermal part counts.
func EntropyComparison(scale Scale) (EntropyResult, error) {
	m := core.PaperModel()
	bins := 1024
	if scale == Full {
		bins = 4096
	}
	var res EntropyResult
	// nMeas = 30000: a long accumulation measurement, deep in the
	// flicker-dominated region (the paper's Fig. 7 spans to ~3e4).
	const nMeas = 30000
	for _, k := range []int{100, 300, 1000, 3000, 10000, 30000, 100000} {
		c, err := entropy.Assess(m.RelativeModel(), k, nMeas, bins)
		if err != nil {
			return EntropyResult{}, err
		}
		res.Rows = append(res.Rows, EntropyRow{Divider: k, Comparison: c})
	}
	req, err := entropy.RequiredDivider(m.RelativeModel(), 0.997, bins)
	if err != nil {
		return EntropyResult{}, err
	}
	res.RequiredRefined = req
	return res, nil
}

// Table renders the entropy comparison.
func (r EntropyResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXP-ENT  entropy per raw bit: naive (independence-assuming) vs refined (thermal-only)\n")
	fmt.Fprintf(&b, "naive per-period jitter inferred from a sigma_N^2 measurement at N=30000\n")
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s %12s\n",
		"K", "sig.naive", "sig.refined", "H.naive", "H.refined", "overest.")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12.4g %12.4g %12.6f %12.6f %12.2e\n",
			row.Divider, row.SigmaNaive, row.SigmaRefined,
			row.HNaive, row.HRefined, row.Overestimate)
	}
	fmt.Fprintf(&b, "smallest divider reaching H>=0.997 under the refined model: K = %d\n", r.RequiredRefined)
	return b.String()
}
