// Package allan implements the Allan (two-sample) variance and related
// statistics from frequency metrology. Allan's 1966 observation — cited
// by the paper in §III-B — is that the classical variance of oscillator
// frequency diverges for power-law noises with exponents <= −1 (e.g.
// flicker FM), whereas the two-sample variance converges; the paper's
// s_N statistic is exactly the two-sample construction applied to
// accumulated periods.
//
// The package also provides log-log slope identification of the noise
// type, used by experiments to confirm that the simulated oscillators
// exhibit white FM (σ²_y ∝ τ⁻¹) and flicker FM (σ²_y ∝ τ⁰) in the right
// regimes.
package allan

import (
	"fmt"
	"math"
)

// FractionalFrequencies converts consecutive oscillator periods into
// average fractional frequency deviations y_i = (f_i − f0)/f0 where
// f_i = 1/T_i. For the small jitters of interest,
// y_i ≈ −(T_i − T0)/T0.
func FractionalFrequencies(periods []float64, f0 float64) []float64 {
	if f0 <= 0 {
		panic(fmt.Sprintf("allan: f0 = %g must be > 0", f0))
	}
	out := make([]float64, len(periods))
	for i, t := range periods {
		out[i] = (1/t - f0) / f0
	}
	return out
}

// Variance computes the non-overlapping Allan variance σ²_y(τ) at
// τ = m·τ0 from fractional frequency samples y taken at interval τ0:
//
//	σ²_y(m·τ0) = ½·⟨(ȳ_{k+1} − ȳ_k)²⟩
//
// where ȳ_k are disjoint m-sample averages. Returns the estimate and
// the number of difference pairs used.
func Variance(y []float64, m int) (avar float64, pairs int, err error) {
	if m < 1 {
		return 0, 0, fmt.Errorf("allan: m = %d must be >= 1", m)
	}
	groups := len(y) / m
	if groups < 2 {
		return 0, 0, fmt.Errorf("allan: %d samples form %d groups of %d; need >= 2", len(y), groups, m)
	}
	means := make([]float64, groups)
	for g := 0; g < groups; g++ {
		var s float64
		for i := 0; i < m; i++ {
			s += y[g*m+i]
		}
		means[g] = s / float64(m)
	}
	var acc float64
	for k := 0; k+1 < groups; k++ {
		d := means[k+1] - means[k]
		acc += d * d
	}
	pairs = groups - 1
	return acc / (2 * float64(pairs)), pairs, nil
}

// OverlappingVariance computes the overlapping Allan variance estimator,
// which uses every available start offset and has substantially lower
// estimator variance at large m:
//
//	σ²_y(mτ0) = 1/(2m²(M−2m+1)) · Σ_{j=0}^{M−2m} (Σ_{i=j+m}^{j+2m−1} y_i − Σ_{i=j}^{j+m−1} y_i)²
func OverlappingVariance(y []float64, m int) (avar float64, terms int, err error) {
	if m < 1 {
		return 0, 0, fmt.Errorf("allan: m = %d must be >= 1", m)
	}
	mTotal := len(y)
	nTerms := mTotal - 2*m + 1
	if nTerms < 1 {
		return 0, 0, fmt.Errorf("allan: %d samples insufficient for overlapping m=%d", mTotal, m)
	}
	// Sliding sums of the two adjacent m-windows.
	var lo, hi float64
	for i := 0; i < m; i++ {
		lo += y[i]
		hi += y[m+i]
	}
	var acc float64
	d := hi - lo
	acc += d * d
	for j := 1; j < nTerms; j++ {
		lo += y[j+m-1] - y[j-1]
		hi += y[j+2*m-1] - y[j+m-1]
		d = hi - lo
		acc += d * d
	}
	return acc / (2 * float64(m) * float64(m) * float64(nTerms)), nTerms, nil
}

// HadamardVariance computes the non-overlapping Hadamard (three-sample)
// variance, which additionally converges for random-walk FM and linear
// frequency drift:
//
//	σ²_H(mτ0) = 1/6·⟨(ȳ_{k+2} − 2ȳ_{k+1} + ȳ_k)²⟩
func HadamardVariance(y []float64, m int) (hvar float64, triples int, err error) {
	if m < 1 {
		return 0, 0, fmt.Errorf("allan: m = %d must be >= 1", m)
	}
	groups := len(y) / m
	if groups < 3 {
		return 0, 0, fmt.Errorf("allan: %d samples form %d groups of %d; need >= 3", len(y), groups, m)
	}
	means := make([]float64, groups)
	for g := 0; g < groups; g++ {
		var s float64
		for i := 0; i < m; i++ {
			s += y[g*m+i]
		}
		means[g] = s / float64(m)
	}
	var acc float64
	for k := 0; k+2 < groups; k++ {
		d := means[k+2] - 2*means[k+1] + means[k]
		acc += d * d
	}
	triples = groups - 2
	return acc / (6 * float64(triples)), triples, nil
}

// NoiseType labels the dominant power-law noise identified from the
// Allan-variance slope.
type NoiseType int

// Power-law noise classes relevant to ring oscillators.
const (
	// WhitePM: σ²_y ∝ τ⁻² (white phase noise).
	WhitePM NoiseType = iota
	// WhiteFM: σ²_y ∝ τ⁻¹ (thermal noise of the paper).
	WhiteFM
	// FlickerFM: σ²_y ∝ τ⁰ (flicker noise of the paper).
	FlickerFM
	// RandomWalkFM: σ²_y ∝ τ¹.
	RandomWalkFM
)

// String names the noise type.
func (t NoiseType) String() string {
	switch t {
	case WhitePM:
		return "white PM"
	case WhiteFM:
		return "white FM"
	case FlickerFM:
		return "flicker FM"
	case RandomWalkFM:
		return "random-walk FM"
	default:
		return fmt.Sprintf("NoiseType(%d)", int(t))
	}
}

// IdentifyNoise classifies the dominant noise between two averaging
// factors from the log-log slope of the overlapping Allan variance:
// slope ≈ −2 → white PM, −1 → white FM, 0 → flicker FM, +1 → random
// walk FM. Returns the measured slope alongside the nearest class.
func IdentifyNoise(y []float64, m1, m2 int) (NoiseType, float64, error) {
	if m2 <= m1 {
		return 0, 0, fmt.Errorf("allan: need m2 > m1, got %d <= %d", m2, m1)
	}
	v1, _, err := OverlappingVariance(y, m1)
	if err != nil {
		return 0, 0, err
	}
	v2, _, err := OverlappingVariance(y, m2)
	if err != nil {
		return 0, 0, err
	}
	if v1 <= 0 || v2 <= 0 {
		return 0, 0, fmt.Errorf("allan: non-positive variance estimates %g, %g", v1, v2)
	}
	slope := (math.Log(v2) - math.Log(v1)) / (math.Log(float64(m2)) - math.Log(float64(m1)))
	classes := []struct {
		t NoiseType
		s float64
	}{{WhitePM, -2}, {WhiteFM, -1}, {FlickerFM, 0}, {RandomWalkFM, 1}}
	best := classes[0]
	for _, c := range classes[1:] {
		if math.Abs(slope-c.s) < math.Abs(slope-best.s) {
			best = c
		}
	}
	return best.t, slope, nil
}

// TheoreticalWhiteFM returns the Allan variance of white FM noise with
// one-sided S_y(f) = h0 at averaging time τ: σ²_y = h0/(2τ).
func TheoreticalWhiteFM(h0, tau float64) float64 { return h0 / (2 * tau) }

// TheoreticalFlickerFM returns the Allan variance of flicker FM noise
// with one-sided S_y(f) = h₋₁/f: σ²_y = 2·ln2·h₋₁, independent of τ.
func TheoreticalFlickerFM(hm1 float64) float64 { return 2 * math.Ln2 * hm1 }

// SigmaN2FromAllan converts an Allan variance at τ = N/f0 into the
// paper's accumulated variance: σ²_N = 2·τ²·σ²_y(τ) (s_N is τ times the
// difference of two adjacent τ-averages of y).
func SigmaN2FromAllan(avar float64, n int, f0 float64) float64 {
	tau := float64(n) / f0
	return 2 * tau * tau * avar
}
