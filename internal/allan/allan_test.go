package allan

import (
	"math"
	"testing"

	"repro/internal/flicker"
	"repro/internal/rng"
)

func TestFractionalFrequencies(t *testing.T) {
	f0 := 100e6
	t0 := 1 / f0
	// A period 1% longer means frequency ~1% lower.
	y := FractionalFrequencies([]float64{t0, t0 * 1.01}, f0)
	if math.Abs(y[0]) > 1e-12 {
		t.Fatalf("y of nominal period = %g", y[0])
	}
	if math.Abs(y[1]+0.0099) > 1e-4 {
		t.Fatalf("y of stretched period = %g, want ~-0.0099", y[1])
	}
}

func TestFractionalFrequenciesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0=0")
		}
	}()
	FractionalFrequencies([]float64{1}, 0)
}

func TestVarianceWhiteFM(t *testing.T) {
	// For iid y with variance v: σ²_y(m·τ0) = v/m.
	r := rng.New(1)
	const v = 4.0
	y := make([]float64, 1_000_000)
	for i := range y {
		y[i] = 2 * r.Norm()
	}
	for _, m := range []int{1, 4, 16, 64} {
		av, pairs, err := Variance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		if pairs < 100 {
			t.Fatalf("too few pairs: %d", pairs)
		}
		want := v / float64(m)
		if math.Abs(av-want) > 0.05*want {
			t.Fatalf("white FM avar(m=%d) = %g, want %g", m, av, want)
		}
	}
}

func TestOverlappingMatchesNonOverlapping(t *testing.T) {
	r := rng.New(2)
	y := make([]float64, 300000)
	r.FillNorm(y)
	for _, m := range []int{1, 8, 32} {
		a, _, err := Variance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := OverlappingVariance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 0.1*a {
			t.Fatalf("m=%d: non-overlapping %g vs overlapping %g", m, a, b)
		}
	}
}

func TestVarianceErrors(t *testing.T) {
	if _, _, err := Variance([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, _, err := Variance([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("insufficient groups accepted")
	}
	if _, _, err := OverlappingVariance([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("insufficient overlapping terms accepted")
	}
	if _, _, err := HadamardVariance([]float64{1, 2, 3, 4, 5}, 2); err == nil {
		t.Fatal("insufficient triples accepted")
	}
}

func TestHadamardWhiteFM(t *testing.T) {
	// For white FM, Hadamard variance equals the Allan variance.
	r := rng.New(3)
	y := make([]float64, 500000)
	r.FillNorm(y)
	for _, m := range []int{1, 8} {
		av, _, err := Variance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		hv, _, err := HadamardVariance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(av-hv) > 0.1*av {
			t.Fatalf("m=%d: allan %g vs hadamard %g", m, av, hv)
		}
	}
}

func TestHadamardRemovesDrift(t *testing.T) {
	// Linear frequency drift blows up the Allan variance at large m
	// but is cancelled by the Hadamard three-sample difference.
	r := rng.New(4)
	y := make([]float64, 200000)
	for i := range y {
		y[i] = r.Norm() + 1e-3*float64(i)
	}
	m := 1000
	av, _, err := Variance(y, m)
	if err != nil {
		t.Fatal(err)
	}
	hv, _, err := HadamardVariance(y, m)
	if err != nil {
		t.Fatal(err)
	}
	if hv > av/10 {
		t.Fatalf("hadamard %g should be far below drift-inflated allan %g", hv, av)
	}
}

func TestFlickerFMPlateauAndTheory(t *testing.T) {
	const hm1 = 1e-8
	g, err := flicker.NewOU(flicker.OUOptions{
		HM1: hm1, SampleRate: 1e6, FMin: 0.1, FMax: 2.5e5, PolesPerDecade: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 1<<20)
	g.Fill(y)
	want := TheoreticalFlickerFM(hm1)
	for _, m := range []int{32, 128, 512} {
		av, _, err := OverlappingVariance(y, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(av-want) > 0.35*want {
			t.Fatalf("flicker plateau at m=%d: %g, want ~%g", m, av, want)
		}
	}
}

func TestTheoreticalWhiteFM(t *testing.T) {
	if got := TheoreticalWhiteFM(2e-20, 1e-3); math.Abs(got-1e-17) > 1e-26 {
		t.Fatalf("white FM theory = %g", got)
	}
}

func TestIdentifyNoiseWhiteFM(t *testing.T) {
	r := rng.New(6)
	y := make([]float64, 500000)
	r.FillNorm(y)
	typ, slope, err := IdentifyNoise(y, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if typ != WhiteFM {
		t.Fatalf("identified %v (slope %g), want white FM", typ, slope)
	}
}

func TestIdentifyNoiseFlickerFM(t *testing.T) {
	g, err := flicker.NewOU(flicker.OUOptions{
		HM1: 1e-8, SampleRate: 1e6, FMin: 0.1, FMax: 2.5e5, PolesPerDecade: 4, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 1<<19)
	g.Fill(y)
	typ, slope, err := IdentifyNoise(y, 32, 512)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FlickerFM {
		t.Fatalf("identified %v (slope %g), want flicker FM", typ, slope)
	}
}

func TestIdentifyNoiseErrors(t *testing.T) {
	if _, _, err := IdentifyNoise([]float64{1, 2, 3}, 8, 4); err == nil {
		t.Fatal("m2 <= m1 accepted")
	}
}

func TestNoiseTypeString(t *testing.T) {
	for _, typ := range []NoiseType{WhitePM, WhiteFM, FlickerFM, RandomWalkFM} {
		if typ.String() == "" {
			t.Fatalf("empty name for %d", typ)
		}
	}
	if NoiseType(99).String() == "" {
		t.Fatal("unknown type name empty")
	}
}

func TestSigmaN2FromAllan(t *testing.T) {
	// σ²_N = 2τ²·σ²_y with τ = N/f0.
	got := SigmaN2FromAllan(1e-10, 100, 1e8)
	tau := 100.0 / 1e8
	want := 2 * tau * tau * 1e-10
	if math.Abs(got-want) > 1e-30 {
		t.Fatalf("conversion = %g, want %g", got, want)
	}
}
