package allan

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestAllanScaleInvariance: scaling the input by c scales every
// two/three-sample variance by c².
func TestAllanScaleInvariance(t *testing.T) {
	r := rng.New(100)
	base := make([]float64, 4096)
	r.FillNorm(base)
	f := func(rawC int8, rawM uint8) bool {
		c := float64(rawC)
		if c == 0 {
			return true
		}
		m := int(rawM%16) + 1
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = c * v
		}
		a1, _, err1 := Variance(base, m)
		a2, _, err2 := Variance(scaled, m)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(a2-c*c*a1) <= 1e-9*math.Abs(c*c*a1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestAllanShiftInvariance: adding a constant offset leaves every Allan
// variance unchanged (first differences kill constants).
func TestAllanShiftInvariance(t *testing.T) {
	r := rng.New(101)
	base := make([]float64, 2048)
	r.FillNorm(base)
	f := func(rawOff int16) bool {
		off := float64(rawOff)
		shifted := make([]float64, len(base))
		for i, v := range base {
			shifted[i] = v + off
		}
		a1, _, err1 := OverlappingVariance(base, 8)
		a2, _, err2 := OverlappingVariance(shifted, 8)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(a2-a1) <= 1e-6*math.Max(a1, 1e-300)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestHadamardDriftInvariance: adding a linear ramp leaves the Hadamard
// variance unchanged (second differences kill ramps).
func TestHadamardDriftInvariance(t *testing.T) {
	r := rng.New(102)
	base := make([]float64, 4096)
	r.FillNorm(base)
	f := func(rawSlope int8) bool {
		slope := float64(rawSlope) * 1e-3
		ramped := make([]float64, len(base))
		for i, v := range base {
			ramped[i] = v + slope*float64(i)
		}
		h1, _, err1 := HadamardVariance(base, 4)
		h2, _, err2 := HadamardVariance(ramped, 4)
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(h2-h1) <= 1e-6*math.Max(h1, 1e-300)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
