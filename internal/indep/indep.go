// Package indep provides the independence diagnostics motivated by paper
// §III-B/§III-D: deciding from data whether consecutive jitter
// realizations J(t_i) may be treated as mutually independent.
//
// The paper's argument is by contraposition of Bienaymé's formula: if
// the {J(t_k)} are mutually independent (hence uncorrelated), then the
// variance of any ±1-weighted sum of 2N of them is 2N·σ², so σ²_N is a
// LINEAR function of N. A measured σ²_N that grows like N² at large N —
// the flicker-noise signature — falsifies independence.
//
// Three complementary diagnostics are implemented:
//
//   - BienaymeLinearity: does a pure linear law explain the measured
//     σ²_N sweep within its error bars? (the paper's headline test)
//   - portmanteau tests (Ljung–Box) on the s_N series at fixed N;
//   - direct lag-autocorrelation bands on J.
package indep

import (
	"fmt"
	"math"

	"repro/internal/jitter"
	"repro/internal/stats"
)

// LinearityResult reports the Bienaymé linearity diagnostic.
type LinearityResult struct {
	// LinearChiSq is the weighted χ² of the best pure-linear fit
	// f0²σ²_N = a·N, with LinearDoF degrees of freedom.
	LinearChiSq float64
	LinearDoF   int
	// QuadChiSq is the χ² after adding the b·N² term.
	QuadChiSq float64
	QuadDoF   int
	// PValueLinear is the probability of a χ² this large under the
	// hypothesis that σ²_N is linear in N (i.e. jitter realizations
	// are mutually independent). Small values reject independence.
	PValueLinear float64
	// QuadImprovement is the χ² drop per added parameter
	// (Δχ² ~ χ²(1) under the linear null); its p-value is
	// PValueQuadTerm.
	QuadImprovement float64
	PValueQuadTerm  float64
	// BSignificance is the fitted quadratic coefficient divided by
	// its standard error (a z-score for flicker presence).
	BSignificance float64
}

// IndependencePlausible reports whether the sweep is consistent with
// mutually independent realizations at significance alpha: the linear
// law must not be rejected AND the quadratic term must not be
// significant.
func (r LinearityResult) IndependencePlausible(alpha float64) bool {
	return r.PValueLinear >= alpha && r.PValueQuadTerm >= alpha
}

// BienaymeLinearity runs the paper's σ²_N-linearity diagnostic on a
// measured sweep. Estimates must carry positive standard errors (they
// do when produced by jitter.EstimateSigmaN2* or measure.Sweep).
func BienaymeLinearity(estimates []jitter.VarianceEstimate, f0 float64) (LinearityResult, error) {
	if len(estimates) < 3 {
		return LinearityResult{}, fmt.Errorf("indep: need >= 3 sweep points, got %d", len(estimates))
	}
	if f0 <= 0 {
		return LinearityResult{}, fmt.Errorf("indep: f0 = %g must be > 0", f0)
	}
	xs := make([]float64, len(estimates))
	ys := make([]float64, len(estimates))
	ws := make([]float64, len(estimates))
	f02 := f0 * f0
	for i, e := range estimates {
		xs[i] = float64(e.N)
		ys[i] = f02 * e.SigmaN2
		se := f02 * e.StdErr
		if se <= 0 {
			return LinearityResult{}, fmt.Errorf("indep: estimate at N=%d lacks a standard error", e.N)
		}
		ws[i] = 1 / (se * se)
	}
	lin, err := stats.FitPolyWeighted(xs, ys, ws, []int{1})
	if err != nil {
		return LinearityResult{}, err
	}
	quad, err := stats.FitPolyWeighted(xs, ys, ws, []int{1, 2})
	if err != nil {
		return LinearityResult{}, err
	}
	res := LinearityResult{
		LinearChiSq: lin.ChiSq,
		LinearDoF:   lin.DoF,
		QuadChiSq:   quad.ChiSq,
		QuadDoF:     quad.DoF,
	}
	res.PValueLinear = stats.ChiSquareSF(lin.ChiSq, float64(lin.DoF))
	res.QuadImprovement = lin.ChiSq - quad.ChiSq
	if res.QuadImprovement < 0 {
		res.QuadImprovement = 0
	}
	res.PValueQuadTerm = stats.ChiSquareSF(res.QuadImprovement, 1)
	if quad.CoeffErr[1] > 0 {
		res.BSignificance = quad.Coeff[1] / quad.CoeffErr[1]
	}
	return res, nil
}

// SNPortmanteau applies the Ljung–Box test to the NON-overlapping s_N
// series at window length n. Under mutual independence of jitter
// realizations, disjoint s_N windows are independent, so significant
// autocorrelation in the series rejects independence.
func SNPortmanteau(j []float64, n, maxLag int) (stats.TestResult, error) {
	s := jitter.SNNonOverlapping(j, n)
	if len(s) <= maxLag+1 {
		return stats.TestResult{}, fmt.Errorf("indep: only %d disjoint s_N windows for N=%d; need > %d", len(s), n, maxLag+1)
	}
	return stats.LjungBox(s, maxLag), nil
}

// JitterAutocorrelation returns the lag-1..maxLag autocorrelation of the
// raw jitter series together with the ±z·1/√n two-sided confidence band
// half-width for testing each lag against zero.
func JitterAutocorrelation(j []float64, maxLag int, alpha float64) (rho []float64, band float64, err error) {
	if len(j) <= maxLag {
		return nil, 0, fmt.Errorf("indep: series of %d too short for maxLag %d", len(j), maxLag)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, 0, fmt.Errorf("indep: alpha %g out of (0,1)", alpha)
	}
	full := stats.Autocorrelation(j, maxLag)
	z := stats.NormalQuantile(1 - alpha/2)
	return full[1:], z / math.Sqrt(float64(len(j))), nil
}

// CountSignificantLags returns how many of the rho values fall outside
// ±band.
func CountSignificantLags(rho []float64, band float64) int {
	var k int
	for _, r := range rho {
		if math.Abs(r) > band {
			k++
		}
	}
	return k
}

// Battery bundles the three diagnostics on one jitter record.
type Battery struct {
	Linearity   LinearityResult
	Portmanteau stats.TestResult
	SignRuns    stats.TestResult
	// SignificantLags counts raw-jitter autocorrelation lags outside
	// the 1−alpha band out of LagsTested.
	SignificantLags int
	LagsTested      int
}

// RunBattery runs all diagnostics with standard settings: a sweep over
// ns for the Bienaymé test, Ljung–Box at nPortmanteau with 20 lags, a
// runs test on the raw jitter and a 50-lag autocorrelation scan.
func RunBattery(j []float64, f0 float64, ns []int, nPortmanteau int) (Battery, error) {
	sweep, err := jitter.Sweep(j, ns)
	if err != nil {
		return Battery{}, err
	}
	lin, err := BienaymeLinearity(sweep, f0)
	if err != nil {
		return Battery{}, err
	}
	pm, err := SNPortmanteau(j, nPortmanteau, 20)
	if err != nil {
		return Battery{}, err
	}
	rho, band, err := JitterAutocorrelation(j, 50, 0.01)
	if err != nil {
		return Battery{}, err
	}
	return Battery{
		Linearity:       lin,
		Portmanteau:     pm,
		SignRuns:        stats.WaldWolfowitzRuns(j),
		SignificantLags: CountSignificantLags(rho, band),
		LagsTested:      len(rho),
	}, nil
}
