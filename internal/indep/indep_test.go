package indep

import (
	"math"
	"testing"

	"repro/internal/jitter"
	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/rng"
)

func paperModel() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 2,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (8 * math.Ln2),
		F0:  f0,
	}
}

func thermalJitter(t *testing.T, n int, seed uint64) []float64 {
	t.Helper()
	m := paperModel()
	m.Bfl = 0
	o, err := osc.New(m, osc.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return o.Jitter(n)
}

func fullJitter(t *testing.T, n int, seed uint64) []float64 {
	t.Helper()
	o, err := osc.New(paperModel(), osc.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return o.Jitter(n)
}

func TestBienaymeThermalOnlyPasses(t *testing.T) {
	// Thermal-only jitter: σ²_N linear in N ⇒ independence plausible.
	j := thermalJitter(t, 2_000_000, 1)
	ns := jitter.LogSpacedNs(4, 4096, 4)
	sweep, err := jitter.Sweep(j, ns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BienaymeLinearity(sweep, paperModel().F0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndependencePlausible(0.01) {
		t.Fatalf("thermal-only data rejected: %+v", res)
	}
}

func TestBienaymeFlickerRejects(t *testing.T) {
	// Full model spanning well past the 5354-period corner: the N²
	// term must be detected and independence rejected — the paper's
	// headline result.
	j := fullJitter(t, 6_000_000, 2)
	ns := jitter.LogSpacedNs(16, 65536, 4)
	sweep, err := jitter.Sweep(j, ns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BienaymeLinearity(sweep, paperModel().F0)
	if err != nil {
		t.Fatal(err)
	}
	if res.IndependencePlausible(0.01) {
		t.Fatalf("flicker data accepted as independent: %+v", res)
	}
	if res.BSignificance < 3 {
		t.Fatalf("quadratic term z = %g, want strongly significant", res.BSignificance)
	}
}

func TestBienaymeSmallNRegionLooksIndependent(t *testing.T) {
	// Restricted to N ≪ 5354 (inside the paper's N*(95%)=281 zone),
	// even the full model should look linear: the paper's point that
	// independence is a USABLE approximation below the threshold.
	j := fullJitter(t, 3_000_000, 3)
	ns := []int{4, 8, 16, 32, 64, 128}
	sweep, err := jitter.Sweep(j, ns)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BienaymeLinearity(sweep, paperModel().F0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IndependencePlausible(0.001) {
		t.Fatalf("small-N region rejected: %+v", res)
	}
}

func TestBienaymeValidation(t *testing.T) {
	j := thermalJitter(t, 100000, 4)
	sweep, err := jitter.Sweep(j, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BienaymeLinearity(sweep[:2], 103e6); err == nil {
		t.Fatal("2 points accepted")
	}
	if _, err := BienaymeLinearity(sweep, 0); err == nil {
		t.Fatal("f0=0 accepted")
	}
	bad := append([]jitter.VarianceEstimate(nil), sweep...)
	bad[1].StdErr = 0
	if _, err := BienaymeLinearity(bad, 103e6); err == nil {
		t.Fatal("missing stderr accepted")
	}
}

func TestSNPortmanteauWhite(t *testing.T) {
	r := rng.New(5)
	j := make([]float64, 400000)
	r.FillNorm(j)
	res, err := SNPortmanteau(j, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Fatalf("white s_N rejected: %v", res)
	}
}

func TestSNPortmanteauFlickerRejects(t *testing.T) {
	m := paperModel()
	m.Bfl *= 300 // flicker-dominated at N=64 already
	o, err := osc.New(m, osc.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	j := o.Jitter(2_000_000)
	res, err := SNPortmanteau(j, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Fatalf("flicker-dominated s_N accepted: %v", res)
	}
}

func TestSNPortmanteauValidation(t *testing.T) {
	if _, err := SNPortmanteau(make([]float64, 100), 16, 20); err == nil {
		t.Fatal("short series accepted")
	}
}

func TestJitterAutocorrelation(t *testing.T) {
	j := thermalJitter(t, 500000, 7)
	rho, band, err := JitterAutocorrelation(j, 50, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rho) != 50 {
		t.Fatalf("%d lags", len(rho))
	}
	if band <= 0 || band > 0.1 {
		t.Fatalf("band = %g", band)
	}
	k := CountSignificantLags(rho, band)
	// ~1% of 50 lags expected by chance.
	if k > 4 {
		t.Fatalf("thermal jitter: %d significant lags", k)
	}
	if _, _, err := JitterAutocorrelation(j[:10], 50, 0.01); err == nil {
		t.Fatal("short series accepted")
	}
	if _, _, err := JitterAutocorrelation(j, 10, 2); err == nil {
		t.Fatal("alpha=2 accepted")
	}
}

func TestRunBatteryThermalVsFlicker(t *testing.T) {
	ns := jitter.LogSpacedNs(4, 8192, 3)

	th, err := RunBattery(thermalJitter(t, 3_000_000, 8), paperModel().F0, ns, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !th.Linearity.IndependencePlausible(0.001) {
		t.Fatalf("battery rejected thermal-only data: %+v", th.Linearity)
	}

	m := paperModel()
	m.Bfl *= 100
	o, err := osc.New(m, osc.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fl, err := RunBattery(o.Jitter(3_000_000), m.F0, ns, 32)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Linearity.IndependencePlausible(0.001) {
		t.Fatal("battery accepted flicker-heavy data as independent")
	}
}

func TestRunBatteryErrors(t *testing.T) {
	if _, err := RunBattery(make([]float64, 10), 1e8, []int{4, 8}, 4); err == nil {
		t.Fatal("tiny record accepted")
	}
}
