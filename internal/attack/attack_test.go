package attack

import (
	"math"
	"testing"

	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/stats"
)

func thermalModel() phase.Model {
	const f0 = 103e6
	return phase.Model{Bth: 5.36e-6 * f0 / 2, Bfl: 0, F0: f0}
}

func TestInjectionRespectsOnset(t *testing.T) {
	m := thermalModel()
	m.Bth = 0 // noiseless for exact comparison
	o, err := osc.New(m, osc.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	onset := 1000.0 / m.F0 // after ~1000 periods
	Injection{FInj: 1e6, Depth: 0.01, Onset: onset}.Arm(o)
	t0 := 1 / m.F0
	// Before the onset: exactly nominal periods.
	for i := 0; i < 900; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-20 {
			t.Fatalf("period %d disturbed before onset: %g", i, p)
		}
	}
	// Well after onset: modulation visible.
	for i := 0; i < 200; i++ {
		o.NextPeriod()
	}
	disturbed := false
	for i := 0; i < 500; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-13 {
			disturbed = true
			break
		}
	}
	if !disturbed {
		t.Fatal("injection never disturbed the period")
	}
}

func TestInjectionSuppressionScalesThermal(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	Injection{FInj: 50e6, Depth: 0, Onset: 0, JitterSuppression: 0.9}.Arm(o)
	j := o.Jitter(200000)
	v := stats.Variance(j)
	want := 0.01 * m.Bth / (m.F0 * m.F0 * m.F0) // (1−0.9)² = 0.01
	if math.Abs(v-want) > 0.1*want {
		t.Fatalf("suppressed variance %g, want %g", v, want)
	}
}

func TestThermalSuppressionAttack(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	onset := 50000.0 / m.F0
	ThermalSuppression{Factor: 1, Onset: onset}.Arm(o)
	before := stats.Variance(o.Jitter(40000))
	// Skip past the onset.
	o.Jitter(20000)
	after := stats.Variance(o.Jitter(40000))
	if after > before/100 {
		t.Fatalf("suppression ineffective: before %g after %g", before, after)
	}
}

func TestFlickerBoost(t *testing.T) {
	m := thermalModel()
	m.Bfl = m.Bth * m.F0 / 5354 / 8 / math.Ln2 * m.F0 // paper-ish flicker
	o, err := osc.New(m, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	FlickerBoost{Factor: 10, Onset: 0}.Arm(o)
	// Accumulated variance at large N must reflect the boosted
	// flicker: compare against an unboosted twin.
	o2, err := osc.New(m, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	jBoost := o.Jitter(500000)
	jBase := o2.Jitter(500000)
	accBoost := accVar(jBoost, 2048)
	accBase := accVar(jBase, 2048)
	if accBoost < 2*accBase {
		t.Fatalf("flicker boost invisible: %g vs %g", accBoost, accBase)
	}
}

// accVar computes Var(s_N) naively for the test.
func accVar(j []float64, n int) float64 {
	var s []float64
	for i := 0; i+2*n <= len(j); i += 2 * n {
		var lo, hi float64
		for k := 0; k < n; k++ {
			lo += j[i+k]
			hi += j[i+n+k]
		}
		s = append(s, hi-lo)
	}
	return stats.Variance(s)
}

func TestDescribe(t *testing.T) {
	scenarios := []Scenario{
		Injection{FInj: 1e6, Depth: 0.01},
		ThermalSuppression{Factor: 0.5},
		FlickerBoost{Factor: 3},
	}
	for _, s := range scenarios {
		if s.Describe() == "" {
			t.Fatalf("%T: empty description", s)
		}
	}
}

func TestLockingDepth(t *testing.T) {
	f0 := 100e6
	sigma := 15e-12
	// Strong detuning: Adler threshold dominates.
	d := LockingDepth(f0, 1.05*f0, sigma)
	if math.Abs(d-0.1) > 1e-9 {
		t.Fatalf("detuned depth = %g, want 0.1", d)
	}
	// On-frequency: noise floor dominates.
	d = LockingDepth(f0, f0, sigma)
	if math.Abs(d-4*sigma*f0) > 1e-12 {
		t.Fatalf("on-frequency depth = %g", d)
	}
}

func TestLockingDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0=0")
		}
	}()
	LockingDepth(0, 1, 1)
}
