package attack

import (
	"math"
	"testing"

	"repro/internal/osc"
	"repro/internal/phase"
	"repro/internal/stats"
)

func thermalModel() phase.Model {
	const f0 = 103e6
	return phase.Model{Bth: 5.36e-6 * f0 / 2, Bfl: 0, F0: f0}
}

func TestScheduleEnvelope(t *testing.T) {
	s := Schedule{Onset: 10, Ramp: 4}
	cases := []struct{ t, want float64 }{
		{0, 0}, {9.99, 0}, {10, 0}, {12, 0.5}, {14, 1}, {1e9, 1},
	}
	for _, c := range cases {
		if got := s.Strength(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Strength(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Zero value: immediate permanent step.
	z := Schedule{}
	if z.Strength(0) != 1 || z.Strength(100) != 1 {
		t.Fatal("zero schedule is not an immediate step")
	}
	if At(5).Strength(4.9) != 0 || At(5).Strength(5.1) != 1 {
		t.Fatal("At(5) misplaced the step")
	}
}

func TestScheduleRevert(t *testing.T) {
	s := Schedule{Onset: 10, Ramp: 2, Hold: 6, Revert: true}
	cases := []struct{ t, want float64 }{
		{9, 0}, {11, 0.5}, {12, 1}, {15, 1}, {18, 1}, {19, 0.5}, {20, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := s.Strength(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Strength(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Step revert: on at Onset, off after Hold.
	step := Schedule{Onset: 1, Hold: 3, Revert: true}
	if step.Strength(2) != 1 || step.Strength(4.5) != 0 {
		t.Fatal("step revert schedule wrong")
	}
}

func TestScheduleScaled(t *testing.T) {
	s := Schedule{Onset: 16, Ramp: 8, Hold: 4, Revert: true}
	h := s.Scaled(0.25)
	if h.Onset != 4 || h.Ramp != 2 || h.Hold != 1 || !h.Revert {
		t.Fatalf("Scaled(0.25) = %+v", h)
	}
	if s.Strength(20) != h.Strength(5) {
		t.Fatal("scaled schedule is not a time-compressed replay")
	}
}

func TestInjectionRespectsOnset(t *testing.T) {
	m := thermalModel()
	m.Bth = 0 // noiseless for exact comparison
	o, err := osc.New(m, osc.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	onset := 1000.0 / m.F0 // after ~1000 periods
	Injection{FInj: 1e6, Depth: 0.01, Sched: At(onset)}.Arm(o)
	t0 := 1 / m.F0
	// Before the onset: exactly nominal periods.
	for i := 0; i < 900; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-20 {
			t.Fatalf("period %d disturbed before onset: %g", i, p)
		}
	}
	// Well after onset: modulation visible.
	for i := 0; i < 200; i++ {
		o.NextPeriod()
	}
	disturbed := false
	for i := 0; i < 500; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-13 {
			disturbed = true
			break
		}
	}
	if !disturbed {
		t.Fatal("injection never disturbed the period")
	}
}

func TestInjectionSuppressionScalesThermal(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	Injection{FInj: 50e6, Depth: 0, JitterSuppression: 0.9}.Arm(o)
	j := o.Jitter(200000)
	v := stats.Variance(j)
	want := 0.01 * m.Bth / (m.F0 * m.F0 * m.F0) // (1−0.9)² = 0.01
	if math.Abs(v-want) > 0.1*want {
		t.Fatalf("suppressed variance %g, want %g", v, want)
	}
}

func TestThermalSuppressionAttack(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	onset := 50000.0 / m.F0
	ThermalSuppression{Factor: 1, Sched: At(onset)}.Arm(o)
	before := stats.Variance(o.Jitter(40000))
	// Skip past the onset.
	o.Jitter(20000)
	after := stats.Variance(o.Jitter(40000))
	if after > before/100 {
		t.Fatalf("suppression ineffective: before %g after %g", before, after)
	}
}

func TestThermalSuppressionRevertRestores(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	period := 1 / m.F0
	// On at 10k periods, off again at 50k: a transient excursion.
	ThermalSuppression{Factor: 1, Sched: Schedule{
		Onset: 10000 * period, Hold: 40000 * period, Revert: true,
	}}.Arm(o)
	before := stats.Variance(o.Jitter(9000))
	o.Jitter(2000) // cross the onset
	during := stats.Variance(o.Jitter(35000))
	o.Jitter(6000) // cross the revert
	after := stats.Variance(o.Jitter(40000))
	if during > before/100 {
		t.Fatalf("suppression ineffective during hold: %g vs %g", during, before)
	}
	if after < before/4 {
		t.Fatalf("revert did not restore the jitter: %g vs %g", after, before)
	}
}

func TestSlowThermalRampReachesFloor(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	period := 1 / m.F0
	sc := SlowThermalRamp(0.45, 1000*period, 50000*period)
	sc.Arm(o)
	o.Jitter(60000) // past onset + ramp
	v := stats.Variance(o.Jitter(60000))
	want := 0.45 * 0.45 * m.Bth / (m.F0 * m.F0 * m.F0)
	if math.Abs(v-want) > 0.15*want {
		t.Fatalf("floor variance %g, want %g", v, want)
	}
}

func TestFlickerBoost(t *testing.T) {
	m := thermalModel()
	m.Bfl = m.Bth * m.F0 / 5354 / 8 / math.Ln2 * m.F0 // paper-ish flicker
	o, err := osc.New(m, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	FlickerBoost{Factor: 10}.Arm(o)
	// Accumulated variance at large N must reflect the boosted
	// flicker: compare against an unboosted twin.
	o2, err := osc.New(m, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	jBoost := o.Jitter(500000)
	jBase := o2.Jitter(500000)
	accBoost := accVar(jBoost, 2048)
	accBase := accVar(jBase, 2048)
	if accBoost < 2*accBase {
		t.Fatalf("flicker boost invisible: %g vs %g", accBoost, accBase)
	}
}

// accVar computes Var(s_N) naively for the test.
func accVar(j []float64, n int) float64 {
	var s []float64
	for i := 0; i+2*n <= len(j); i += 2 * n {
		var lo, hi float64
		for k := 0; k < n; k++ {
			lo += j[i+k]
			hi += j[i+n+k]
		}
		s = append(s, hi-lo)
	}
	return stats.Variance(s)
}

func TestNoiseKillFlatlines(t *testing.T) {
	m := thermalModel()
	m.Bfl = m.Bth / 5354 * m.F0
	o, err := osc.New(m, osc.Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	onset := 5000.0 / m.F0
	NoiseKill{Sched: At(onset)}.Arm(o)
	o.Jitter(6000) // cross the onset
	t0 := 1 / m.F0
	for i := 0; i < 1000; i++ {
		if p := o.NextPeriod(); math.Abs(p-t0) > 1e-18 {
			t.Fatalf("period %d still noisy after kill: %g", i, p)
		}
	}
}

func TestSupplyRippleCouplesIdentically(t *testing.T) {
	m := thermalModel()
	m.Bth = 0 // noiseless: the ripple is the only modulation
	sc := SupplyRipple{FRipple: 1e6, Depth: 0.01}
	o1, err := osc.New(m, osc.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := osc.New(m, osc.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sc.Arm(o1)
	sc.Arm(o2)
	// Same rail, same deterministic modulation: noiseless twins track
	// each other exactly.
	for i := 0; i < 5000; i++ {
		p1, p2 := o1.NextPeriod(), o2.NextPeriod()
		if math.Abs(p1-p2) > 1e-20 {
			t.Fatalf("coupled rings diverged at period %d: %g vs %g", i, p1, p2)
		}
	}
}

func TestSupplyRippleEntrains(t *testing.T) {
	m := thermalModel()
	o, err := osc.New(m, osc.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	SupplyRipple{FRipple: 1e6, Depth: 0, Entrain: 0.8}.Arm(o)
	v := stats.Variance(o.Jitter(200000))
	want := 0.04 * m.Bth / (m.F0 * m.F0 * m.F0) // (1−0.8)² = 0.04
	if math.Abs(v-want) > 0.1*want {
		t.Fatalf("entrained variance %g, want %g", v, want)
	}
}

// constSource feeds SamplerBias a fixed bit.
type constSource struct{ b byte }

func (c constSource) NextBit() byte { return c.b }

func TestSamplerBias(t *testing.T) {
	src := &SamplerBias{Src: constSource{0}, P: 0.55, OnsetBits: 1000, Seed: 42}
	for i := 0; i < 1000; i++ {
		if src.NextBit() != 0 {
			t.Fatalf("bit %d forced before onset", i)
		}
	}
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += int(src.NextBit())
	}
	// Over a zero stream the forced-one rate is P itself.
	got := float64(ones) / n
	if math.Abs(got-0.55) > 0.02 {
		t.Fatalf("forced-one rate %g, want ~0.55", got)
	}
}

func TestDescribe(t *testing.T) {
	scenarios := []Describer{
		Injection{FInj: 1e6, Depth: 0.01},
		ThermalSuppression{Factor: 0.5},
		FlickerBoost{Factor: 3},
		NoiseKill{},
		SupplyRipple{FRipple: 1e6, Depth: 0.01, Entrain: 0.5},
		&SamplerBias{P: 0.5},
		Locking(100e6, 101e6, 15e-12, 0.95, At(0)),
	}
	for _, s := range scenarios {
		if s.Describe() == "" {
			t.Fatalf("%T: empty description", s)
		}
	}
}

func TestLockingDepth(t *testing.T) {
	f0 := 100e6
	sigma := 15e-12
	// Strong detuning: Adler threshold dominates.
	d := LockingDepth(f0, 1.05*f0, sigma)
	if math.Abs(d-0.1) > 1e-9 {
		t.Fatalf("detuned depth = %g, want 0.1", d)
	}
	// On-frequency: noise floor dominates.
	d = LockingDepth(f0, f0, sigma)
	if math.Abs(d-4*sigma*f0) > 1e-12 {
		t.Fatalf("on-frequency depth = %g", d)
	}
	// The Locking constructor wires the depth through.
	l := Locking(f0, 1.05*f0, sigma, 0.95, At(1))
	if math.Abs(l.Depth-0.1) > 1e-9 || l.JitterSuppression != 0.95 || l.Sched.Onset != 1 {
		t.Fatalf("Locking = %+v", l)
	}
}

func TestLockingDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for f0=0")
		}
	}()
	LockingDepth(0, 1, 1)
}
