// Package attack is the RO-TRNG threat catalog: models of the
// non-invasive attacks and environmental failures that motivate the
// paper's security discussion (§I cites Markettos & Moore's frequency
// injection, CHES 2009, and Bayon et al.'s electromagnetic attack,
// COSADE 2012), expressed as composable, schedulable scenarios that
// detection experiments arm on live oscillators and score end-to-end.
//
// # Scenarios and the defense layer that catches each
//
// Oscillator-level scenarios implement Scenario and arm on an
// osc.Oscillator (use ArmBoth for a pair); SamplerBias wraps the raw
// bit source instead. Every scenario carries a Schedule (onset delay,
// linear ramp, hold duration, revert), so transients, slow ramps and
// persistent attacks compose from the same primitives.
//
// The "caught by" column is MEASURED, not aspirational: it is what
// experiments.AttackMatrix observes at the daemon's pinned operating
// point (eRO ×100 at divider 4, §V monitor W=10 at α=1e-6, SP 800-90B
// assessment every 10000 raw bits at threshold 0.40), and the coverage
// assertions in that experiment and in CI hold the catalog to it.
// Latency bounds are raw bits from attack onset; a ramped attack gets
// its ramp first.
//
//	scenario            physics modeled                      caught by        latency bound
//	------------------  -----------------------------------  ---------------  -------------------------
//	ThermalSuppression  deep cooling / jitter clamp:         AIS 31 tot       4096 raw bits (usually
//	                    thermal amplitude × (1−Factor);      (flatline); the  the first post-onset
//	                    the phase walk freezes and the bit   assessment wins  chunks)
//	                    stream flatlines                     the race when
//	                                                         residual
//	                                                         flicker keeps
//	                                                         bits twitching
//	FlickerBoost        aging / stress-induced 1/f growth:   §V monitor       16384 raw bits (~2 full
//	                    variance INFLATES while bits stay    (thermal-high)   monitor windows); tot and
//	                    lively and entropy stays high                         the assessment never fire
//	Injection           tone couples into the ring and       SP 800-90B       65536 raw bits (~2
//	                    entrains it (JitterSuppression):     assessment       assessment cycles): the
//	                    the deterministic wobble keeps the   (low-entropy)    tone masks thermal-low at
//	                    bits toggling (no tot) and inflates                   the monitor site while
//	                    the monitor-site variance (no                         delivered entropy
//	                    thermal-low)                                          collapses
//	Locking             Injection at the Adler threshold     SP 800-90B       same bound
//	                    depth (LockingDepth), partial lock   assessment
//	SupplyRipple        shared supply rail: one modulator    SP 800-90B on    same bound, on every
//	                    armed on every coupled shard         EVERY coupled    coupled shard near-
//	                                                         shard            simultaneously
//	NoiseKill           dead source (supply fault, clock     AIS 31 tot       4096 raw bits (TotWindow
//	                    substitution): both components off                    + one raw chunk)
//	SlowThermalRamp     temperature ramp slow enough that    SP 800-90B       ramp + 65536 raw bits
//	                    every per-window χ² stays in         assessment       (the EVASION case: tot,
//	                    tolerance, floor above the monitor   (low-entropy)    startup and §V stay
//	                    alarm corridor                                        silent the whole ramp)
//	SamplerBias         comparator/duty-cycle skew at the    SP 800-90B       65536 raw bits (the
//	                    sampling flip-flop; rings healthy    assessment       monitor taps the rings,
//	                                                                          so it is blind here)
//
// Behind all of these sits the calibration gate: a quarantined shard
// is only re-admitted through a full startup sequence (AIS 31 startup
// test, with the tot test, the §V monitor and the assessment collector
// live during collection), so a persistent attack blocks re-admission
// even when its live detection was slow. The DRBG expansion layer
// fails closed independently: once quarantines starve the seed taps,
// reseed draws return ErrSeedStarved and generation stops rather than
// serving unseeded output.
//
// experiments.AttackMatrix runs this catalog against live health-gated
// pools and measures the (scenario × defense layer) detection-coverage
// matrix, including per-class detection latency from the obs journal's
// injection-marker → quarantine pairing (see Mark).
package attack
