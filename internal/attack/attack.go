// Package attack models the non-invasive attacks on ring-oscillator
// TRNGs that motivate the paper's security discussion (§I cites
// Markettos & Moore's frequency injection, CHES 2009, and Bayon et
// al.'s electromagnetic attack, COSADE 2012), plus a thermal-noise
// suppression attack that directly undercuts the entropy source the
// refined model certifies.
//
// Attacks are expressed as Scenario values that arm themselves on an
// oscillator at a given onset time, so detection experiments can measure
// alarm latency.
package attack

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/osc"
)

// Scenario is an attack that can be armed on an oscillator.
type Scenario interface {
	// Arm installs the attack on the oscillator.
	Arm(o *osc.Oscillator)
	// Describe returns a short human-readable summary.
	Describe() string
}

// Injection is a frequency-injection attack: a tone at FInj couples into
// the ring, modulating its period with relative depth Depth starting at
// time Onset (seconds). Injection near the ring frequency entrains the
// oscillator: the deterministic modulation dominates the random jitter,
// and the relative jitter between two rings collapses toward a
// deterministic beat — exactly the failure mode the paper's online test
// must catch.
type Injection struct {
	// FInj is the injected tone frequency in Hz.
	FInj float64
	// Depth is the relative period modulation ΔT/T0.
	Depth float64
	// Onset is the attack start time in seconds.
	Onset float64
	// JitterSuppression in [0, 1] additionally scales down the
	// thermal noise once the attack is active (entrainment squeezes
	// the phase diffusion); 0 keeps thermal noise untouched.
	JitterSuppression float64
}

// Arm installs the injection on the oscillator.
func (a Injection) Arm(o *osc.Oscillator) {
	t0 := 1 / o.F0()
	base := osc.SineInjection(a.FInj, a.Depth, t0)
	supp := a.JitterSuppression
	armed := false
	o.SetModulator(func(t float64, i uint64) float64 {
		if t < a.Onset {
			return 0
		}
		if !armed && supp > 0 {
			o.SetThermalScale(1 - supp)
			armed = true
		}
		return base(t, i)
	})
}

// Describe summarizes the attack.
func (a Injection) Describe() string {
	return fmt.Sprintf("frequency injection: f=%.3g Hz depth=%.3g onset=%.3gs suppression=%.2f",
		a.FInj, a.Depth, a.Onset, a.JitterSuppression)
}

// ThermalSuppression models an attacker (or environmental failure)
// reducing the thermal noise amplitude by Factor from time Onset —
// e.g. cooling the die or locking the ring with a strong harmonic tone.
// The flicker component is left untouched: the insidious property is
// that long-accumulation jitter measurements still look lively (flicker
// dominates there), while the entropy-bearing thermal component is gone.
// Only a small-N thermal monitor — the paper's proposal — sees it.
type ThermalSuppression struct {
	// Factor in [0, 1] is the fraction of thermal amplitude removed
	// (1 = all thermal noise gone).
	Factor float64
	// Onset is the attack start time in seconds.
	Onset float64
}

// Arm installs the suppression using a time-gated modulator that flips
// the oscillator's thermal scale at onset.
func (a ThermalSuppression) Arm(o *osc.Oscillator) {
	armed := false
	o.SetModulator(func(t float64, _ uint64) float64 {
		if !armed && t >= a.Onset {
			o.SetThermalScale(1 - a.Factor)
			armed = true
		}
		return 0
	})
}

// Describe summarizes the attack.
func (a ThermalSuppression) Describe() string {
	return fmt.Sprintf("thermal suppression: factor=%.2f onset=%.3gs", a.Factor, a.Onset)
}

// FlickerBoost increases the flicker amplitude by the given factor at
// onset — modeling aging/stress-induced 1/f noise growth, or simply a
// what-if for the technology-shrink trend the paper's conclusion warns
// about. Total jitter grows, naive models would report MORE entropy,
// while the refined model correctly reports no thermal gain.
type FlickerBoost struct {
	// Factor multiplies the flicker amplitude (>= 1).
	Factor float64
	// Onset is the start time in seconds.
	Onset float64
}

// Arm installs the boost.
func (a FlickerBoost) Arm(o *osc.Oscillator) {
	armed := false
	o.SetModulator(func(t float64, _ uint64) float64 {
		if !armed && t >= a.Onset {
			o.SetFlickerScale(a.Factor)
			armed = true
		}
		return 0
	})
}

// Describe summarizes the attack.
func (a FlickerBoost) Describe() string {
	return fmt.Sprintf("flicker boost: ×%.2f onset=%.3gs", a.Factor, a.Onset)
}

// Mark records the moment an attack drill is armed against a shard by
// emitting an injection-marker event (nil-safe: a nil sink records
// nothing). The observability journal pairs the marker with the
// shard's next quarantine event, turning the drill into a measured
// detection latency — call it at arming time, immediately after
// Scenario.Arm.
func Mark(sink obs.Sink, shard int, s Scenario) {
	e := obs.Event{Type: obs.TypeInjectionMarker, Shard: shard, Lane: obs.Any}
	if s != nil {
		e.Detail = s.Describe()
	}
	obs.Emit(sink, e)
}

// LockingDepth estimates the injection depth at which an injected tone
// at frequency fInj fully entrains a ring oscillator of frequency f0
// with thermal period jitter sigma: entrainment requires the
// deterministic per-period pull |fInj − f0|/f0·... to exceed the random
// phase diffusion. The returned depth is the classical Adler threshold
// ΔT/T0 = 2·|fInj − f0|/f0, floored at 4·sigma·f0 so weak detuning still
// needs to beat the noise.
func LockingDepth(f0, fInj, sigma float64) float64 {
	if f0 <= 0 {
		panic("attack: LockingDepth requires f0 > 0")
	}
	detune := 2 * math.Abs(fInj-f0) / f0
	noiseFloor := 4 * sigma * f0
	if detune < noiseFloor {
		return noiseFloor
	}
	return detune
}
