package attack

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/osc"
)

// Schedule shapes an attack's strength envelope over the victim
// oscillator's local time: nothing before Onset, a linear ramp of Ramp
// seconds up to full strength, then — when Revert is set — Hold
// seconds at full strength followed by a symmetric ramp back to zero.
// The zero value is an immediate, permanent step, which is what the
// original Onset-only scenarios expressed.
//
// Schedules are evaluated in the clock of the oscillator they are
// armed on. A source ring and the monitor pair tapping it advance at
// different rates per raw output bit, so an experiment arming both
// sites derives one schedule from the other with Scaled.
type Schedule struct {
	// Onset is the attack start time in seconds.
	Onset float64
	// Ramp is the 0→1 strength ramp duration in seconds (0 = step).
	Ramp float64
	// Hold is the time at full strength before reverting; ignored
	// unless Revert is set (a non-reverting attack holds forever).
	Hold float64
	// Revert ramps the attack back off after Hold, modeling a
	// transient environmental excursion or an attacker backing off.
	Revert bool
}

// At is the step schedule starting at onset — shorthand for the common
// "flip at time t" case.
func At(onset float64) Schedule { return Schedule{Onset: onset} }

// Strength evaluates the envelope at time t, in [0, 1].
func (s Schedule) Strength(t float64) float64 {
	t -= s.Onset
	if t < 0 {
		return 0
	}
	if s.Ramp > 0 {
		if t < s.Ramp {
			return t / s.Ramp
		}
		t -= s.Ramp
	}
	if !s.Revert {
		return 1
	}
	t -= s.Hold
	if t < 0 {
		return 1
	}
	if s.Ramp > 0 && t < s.Ramp {
		return 1 - t/s.Ramp
	}
	return 0
}

// Scaled returns the schedule with every time constant multiplied by
// f. Experiments use it to replay a source-clock schedule on the
// monitor pair: per raw bit the source advances Divider periods while
// the monitor pair advances MonitorN/MonitorEveryBits periods, so the
// monitor-side schedule is the source one scaled by
// MonitorN/(MonitorEveryBits·Divider).
func (s Schedule) Scaled(f float64) Schedule {
	return Schedule{Onset: s.Onset * f, Ramp: s.Ramp * f, Hold: s.Hold * f, Revert: s.Revert}
}

// String renders the schedule for Describe output.
func (s Schedule) String() string {
	out := fmt.Sprintf("onset=%.3gs", s.Onset)
	if s.Ramp > 0 {
		out += fmt.Sprintf(" ramp=%.3gs", s.Ramp)
	}
	if s.Revert {
		out += fmt.Sprintf(" hold=%.3gs revert", s.Hold)
	}
	return out
}

// Describer is anything that can summarize itself for an injection
// marker (see Mark).
type Describer interface {
	// Describe returns a short human-readable summary.
	Describe() string
}

// Scenario is an attack that can be armed on an oscillator.
type Scenario interface {
	Describer
	// Arm installs the attack on the oscillator.
	Arm(o *osc.Oscillator)
}

// ArmBoth arms the scenario on both oscillators of a pair — the usual
// attack surface, since injection and environmental attacks couple
// into every ring on the die.
func ArmBoth(p *osc.Pair, s Scenario) {
	s.Arm(p.Osc1)
	s.Arm(p.Osc2)
}

// envelope installs a modulator that re-applies apply(strength)
// whenever the schedule's strength changes, and adds tone(t, i)
// scaled by the current strength to the period. Either hook may be
// nil. Scale updates from inside a modulator are legal per the
// osc.Oscillator contract (the oscillator syncs t/index before each
// modulator call and re-reads the scales each iteration).
func envelope(o *osc.Oscillator, sched Schedule, apply func(s float64), tone osc.Modulator) {
	last := math.Inf(-1)
	o.SetModulator(func(t float64, i uint64) float64 {
		s := sched.Strength(t)
		if s != last {
			if apply != nil {
				apply(s)
			}
			last = s
		}
		if tone == nil || s == 0 {
			return 0
		}
		return s * tone(t, i)
	})
}

// Injection is a frequency-injection attack: a tone at FInj couples
// into the ring, modulating its period with relative depth Depth on
// the given schedule. Injection near the ring frequency entrains the
// oscillator: the deterministic modulation squeezes the random phase
// diffusion, and the relative jitter between two rings collapses
// toward a deterministic beat — exactly the failure mode the paper's
// online test must catch. JitterSuppression expresses that entrainment
// directly (the tone itself is invisible to a windowed variance
// statistic; the jitter collapse is the detectable signature).
type Injection struct {
	// FInj is the injected tone frequency in Hz.
	FInj float64
	// Depth is the relative period modulation ΔT/T0 at full strength.
	Depth float64
	// Sched shapes the attack envelope (zero value: immediate step).
	Sched Schedule
	// JitterSuppression in [0, 1] scales down the thermal noise in
	// proportion to the attack strength (entrainment squeezes the
	// phase diffusion); 0 keeps thermal noise untouched.
	JitterSuppression float64
}

// Arm installs the injection on the oscillator.
func (a Injection) Arm(o *osc.Oscillator) {
	tone := osc.SineInjection(a.FInj, a.Depth, 1/o.F0())
	supp := a.JitterSuppression
	var apply func(s float64)
	if supp > 0 {
		apply = func(s float64) { o.SetThermalScale(1 - supp*s) }
	}
	envelope(o, a.Sched, apply, tone)
}

// Describe summarizes the attack.
func (a Injection) Describe() string {
	return fmt.Sprintf("frequency injection: f=%.3g Hz depth=%.3g suppression=%.2f %s",
		a.FInj, a.Depth, a.JitterSuppression, a.Sched)
}

// Locking builds the frequency-locking variant of Injection: the tone
// depth is the Adler threshold LockingDepth(f0, fInj, sigma) — just
// strong enough to entrain a ring of frequency f0 and thermal period
// jitter sigma — and the entrainment is expressed as the given jitter
// suppression (a locked ring's phase diffusion collapses almost
// entirely; 0.95 is a representative deep lock).
func Locking(f0, fInj, sigma, suppression float64, sched Schedule) Injection {
	return Injection{
		FInj:              fInj,
		Depth:             LockingDepth(f0, fInj, sigma),
		Sched:             sched,
		JitterSuppression: suppression,
	}
}

// ThermalSuppression models an attacker (or environmental failure)
// removing a Factor fraction of the thermal noise amplitude on the
// given schedule — e.g. cooling the die or locking the ring with a
// strong harmonic tone. The flicker component is left untouched: the
// insidious property is that long-accumulation jitter measurements
// still look lively (flicker dominates there), while the entropy-
// bearing thermal component is gone. Only a small-N thermal monitor —
// the paper's proposal — sees it.
type ThermalSuppression struct {
	// Factor in [0, 1] is the fraction of thermal amplitude removed at
	// full strength (1 = all thermal noise gone).
	Factor float64
	// Sched shapes the attack envelope (zero value: immediate step).
	Sched Schedule
}

// Arm installs the suppression as a schedule-driven thermal-scale
// envelope.
func (a ThermalSuppression) Arm(o *osc.Oscillator) {
	envelope(o, a.Sched, func(s float64) { o.SetThermalScale(1 - a.Factor*s) }, nil)
}

// Describe summarizes the attack.
func (a ThermalSuppression) Describe() string {
	return fmt.Sprintf("thermal suppression: factor=%.2f %s", a.Factor, a.Sched)
}

// SlowThermalRamp is the evasion case: a temperature ramp slow enough
// that every per-window χ² statistic of the online monitor stays
// inside its tolerance band, bottoming out at floor (the remaining
// thermal scale, e.g. 0.45) after ramp seconds. The thermal monitor
// never alarms; only the periodic SP 800-90B assessment — which
// measures the delivered entropy, not the rate of change — catches
// the degraded floor.
func SlowThermalRamp(floor, onset, ramp float64) ThermalSuppression {
	return ThermalSuppression{Factor: 1 - floor, Sched: Schedule{Onset: onset, Ramp: ramp}}
}

// FlickerBoost increases the flicker amplitude toward Factor on the
// given schedule — modeling aging/stress-induced 1/f noise growth, or
// simply a what-if for the technology-shrink trend the paper's
// conclusion warns about. Total jitter grows, naive models would
// report MORE entropy, while the refined model correctly reports no
// thermal gain.
type FlickerBoost struct {
	// Factor multiplies the flicker amplitude at full strength (>= 1).
	Factor float64
	// Sched shapes the attack envelope (zero value: immediate step).
	Sched Schedule
}

// Arm installs the boost.
func (a FlickerBoost) Arm(o *osc.Oscillator) {
	envelope(o, a.Sched, func(s float64) { o.SetFlickerScale(1 + (a.Factor-1)*s) }, nil)
}

// Describe summarizes the attack.
func (a FlickerBoost) Describe() string {
	return fmt.Sprintf("flicker boost: ×%.2f %s", a.Factor, a.Sched)
}

// NoiseKill removes BOTH noise components on the given schedule: the
// dead-source case (power-supply fault, latch-up, a clock replaced by
// a deterministic signal). The sampled bit stream flatlines, which is
// the total-failure class the AIS 31 tot test exists for.
type NoiseKill struct {
	// Sched shapes the attack envelope (zero value: immediate step).
	Sched Schedule
}

// Arm installs the kill.
func (a NoiseKill) Arm(o *osc.Oscillator) {
	envelope(o, a.Sched, func(s float64) {
		o.SetThermalScale(1 - s)
		o.SetFlickerScale(1 - s)
	}, nil)
}

// Describe summarizes the attack.
func (a NoiseKill) Describe() string {
	return fmt.Sprintf("noise kill (dead source) %s", a.Sched)
}

// SupplyRipple is the correlated multi-shard attack: a shared supply
// rail modulated at FRipple couples the SAME deterministic period
// modulation (depth Depth) into every ring powered from it, partially
// entraining them all (Entrain, like Injection.JitterSuppression).
// Arming one SupplyRipple value on every shard's oscillators models
// the shared rail; the signature that separates it from independent
// single-shard failures is that every coupled shard degrades on the
// same schedule.
type SupplyRipple struct {
	// FRipple is the ripple frequency in Hz.
	FRipple float64
	// Depth is the relative period modulation ΔT/T0 at full strength.
	Depth float64
	// Entrain in [0, 1] scales down the thermal noise in proportion
	// to the attack strength on every coupled ring.
	Entrain float64
	// Sched shapes the attack envelope (zero value: immediate step).
	Sched Schedule
}

// Arm installs the ripple on one oscillator; arm the same value on
// every ring sharing the supply.
func (a SupplyRipple) Arm(o *osc.Oscillator) {
	tone := osc.SineInjection(a.FRipple, a.Depth, 1/o.F0())
	var apply func(s float64)
	if a.Entrain > 0 {
		apply = func(s float64) { o.SetThermalScale(1 - a.Entrain*s) }
	}
	envelope(o, a.Sched, apply, tone)
}

// Describe summarizes the attack.
func (a SupplyRipple) Describe() string {
	return fmt.Sprintf("supply ripple: f=%.3g Hz depth=%.3g entrain=%.2f %s",
		a.FRipple, a.Depth, a.Entrain, a.Sched)
}

// BitSource is the raw bit-stream surface wrapper attacks apply to
// (structurally identical to entropyd.RawSource).
type BitSource interface {
	NextBit() byte
}

// SamplerBias attacks the sampling flip-flop instead of the rings: a
// comparator-threshold or duty-cycle skew that forces sampled bits
// toward 1 with probability P, starting after OnsetBits raw bits.
// The rings themselves stay healthy, so the §V monitor (which taps
// the oscillators) and the tot test (the bits still toggle) are both
// blind to it — the defense that sees it is the SP 800-90B assessment
// of the delivered bit stream, and the AIS 31 startup test at the
// next calibration. Wrap a shard's raw source with it via the pool's
// NewSource hook.
type SamplerBias struct {
	// Src is the wrapped healthy source.
	Src BitSource
	// P in [0, 1] is the probability a post-onset bit is forced to 1.
	P float64
	// OnsetBits delays the attack (raw bits of clean output first).
	OnsetBits uint64
	// Seed seeds the attacker's private force-bit generator.
	Seed uint64

	n   uint64
	rng uint64
}

// NextBit samples the wrapped source and applies the skew.
func (b *SamplerBias) NextBit() byte {
	bit := b.Src.NextBit() & 1
	b.n++
	if b.n <= b.OnsetBits {
		return bit
	}
	if b.rng == 0 {
		b.rng = b.Seed | 1
	}
	// xorshift64: the attacker's deterministic force pattern.
	b.rng ^= b.rng << 13
	b.rng ^= b.rng >> 7
	b.rng ^= b.rng << 17
	if float64(b.rng>>11)/(1<<53) < b.P {
		return 1
	}
	return bit
}

// Describe summarizes the attack.
func (b *SamplerBias) Describe() string {
	return fmt.Sprintf("sampler bias: P(force 1)=%.2f after %d raw bits", b.P, b.OnsetBits)
}

// Mark records the moment an attack drill is armed against a shard by
// emitting an injection-marker event (nil-safe: a nil sink records
// nothing). The observability journal pairs the marker with the
// shard's next quarantine event, turning the drill into a measured
// detection latency — call it at the attack's logical onset.
func Mark(sink obs.Sink, shard int, s Describer) {
	e := obs.Event{Type: obs.TypeInjectionMarker, Shard: shard, Lane: obs.Any}
	if s != nil {
		e.Detail = s.Describe()
	}
	obs.Emit(sink, e)
}

// LockingDepth estimates the injection depth at which an injected tone
// at frequency fInj fully entrains a ring oscillator of frequency f0
// with thermal period jitter sigma: entrainment requires the
// deterministic per-period pull |fInj − f0|/f0·... to exceed the random
// phase diffusion. The returned depth is the classical Adler threshold
// ΔT/T0 = 2·|fInj − f0|/f0, floored at 4·sigma·f0 so weak detuning still
// needs to beat the noise.
func LockingDepth(f0, fInj, sigma float64) float64 {
	if f0 <= 0 {
		panic("attack: LockingDepth requires f0 > 0")
	}
	detune := 2 * math.Abs(fInj-f0) / f0
	noiseFloor := 4 * sigma * f0
	if detune < noiseFloor {
		return noiseFloor
	}
	return detune
}
