// Package spectral validates the oscillator phase-noise model in the
// frequency domain: it reconstructs the excess phase φ(t) from a
// simulated edge-time series, estimates its one-sided PSD with Welch's
// method, and fits the two power-law regions of paper eq. 10,
//
//	Sφ(f) = b_fl/f³ + b_th/f²,
//
// recovering (b_th, b_fl) and the flicker corner f_c = b_fl/b_th. This
// closes the loop between the time-domain σ²_N analysis (the paper's
// route) and the classical phase-noise view: both must yield the same
// coefficients from the same edge stream.
package spectral

import (
	"fmt"
	"math"

	"repro/internal/dsp"
	"repro/internal/osc"
	"repro/internal/stats"
)

// PhaseRecord is a uniformly resampled excess-phase trace.
type PhaseRecord struct {
	// Phi holds φ(t_k) in radians at t_k = k/SampleRate.
	Phi []float64
	// SampleRate is the resampling rate in Hz (== the oscillator's
	// nominal f0: one sample per nominal period).
	SampleRate float64
}

// ExtractPhase runs the oscillator for n periods and converts its edge
// times into an excess-phase trace: at the i-th rising edge the total
// phase is exactly 2π·i, so the excess over the nominal ramp is
//
//	φ(t_i) = 2π·(i − f0·t_i).
//
// Sampling φ at edge times rather than uniform wall-clock times skews
// the spectrum only at the jitter's own magnitude (ppm-level here) —
// the standard approximation in counter-based phase-noise measurement.
func ExtractPhase(o *osc.Oscillator, n int) PhaseRecord {
	phi := make([]float64, n)
	f0 := o.F0()
	t := o.Now()
	base := float64(o.Index()) - f0*t
	for i := 0; i < n; i++ {
		t += o.NextPeriod()
		phi[i] = 2 * math.Pi * (float64(o.Index()) - f0*t - base)
	}
	return PhaseRecord{Phi: phi, SampleRate: f0}
}

// PSD estimates the one-sided excess-phase PSD (rad²/Hz).
func (p PhaseRecord) PSD(segment int) (dsp.PSD, error) {
	return dsp.Welch(p.Phi, p.SampleRate, dsp.WelchOptions{
		SegmentLength: segment,
		Overlap:       0.5,
		Window:        dsp.Hann,
		Detrend:       true,
	})
}

// FitResult carries the spectral estimate of the eq. 10 coefficients.
type FitResult struct {
	// Bth and Bfl are the recovered coefficients.
	Bth, Bfl float64
	// Corner is the flicker corner frequency b_fl/b_th in Hz (the
	// frequency where the 1/f³ and 1/f² regions cross).
	Corner float64
	// SlopeLow and SlopeHigh are the measured log-log slopes in the
	// flicker- and thermal-dominated bands (expected ≈ −3 and −2).
	SlopeLow, SlopeHigh float64
	// Points counts PSD bins used in each band.
	PointsLow, PointsHigh int
}

// FitEq10 fits Sφ(f) = b_fl/f³ + b_th/f² to the PSD by weighted least
// squares in the variables (1/f³, 1/f²) over [fLo, fHi]. Relative
// errors of Welch bins are roughly constant, so weights 1/S² equalize
// the relative residuals.
func FitEq10(psd dsp.PSD, fLo, fHi float64) (FitResult, error) {
	var x3, x2, y, w []float64
	for i, f := range psd.Freq {
		if f < fLo || f > fHi || psd.Power[i] <= 0 {
			continue
		}
		x3 = append(x3, 1/(f*f*f))
		x2 = append(x2, 1/(f*f))
		y = append(y, psd.Power[i])
		w = append(w, 1/(psd.Power[i]*psd.Power[i]))
	}
	if len(y) < 8 {
		return FitResult{}, fmt.Errorf("spectral: only %d usable PSD bins in [%g, %g] Hz", len(y), fLo, fHi)
	}
	// Normal equations for y = a·x3 + b·x2 with weights w.
	var s33, s32, s22, s3y, s2y float64
	for i := range y {
		s33 += w[i] * x3[i] * x3[i]
		s32 += w[i] * x3[i] * x2[i]
		s22 += w[i] * x2[i] * x2[i]
		s3y += w[i] * x3[i] * y[i]
		s2y += w[i] * x2[i] * y[i]
	}
	det := s33*s22 - s32*s32
	if det == 0 {
		return FitResult{}, fmt.Errorf("spectral: degenerate design")
	}
	// Welch estimates the ONE-SIDED PSD; the paper's (b_th, b_fl) are
	// coefficients of the two-sided density (its appendix integrates
	// Sφ over ±∞ before folding, eq. 16). Halve the one-sided fit to
	// report in the paper's convention — the same convention the
	// time-domain σ²_N law uses, so both routes are comparable.
	bfl := (s3y*s22 - s2y*s32) / det / 2
	bth := (s2y*s33 - s3y*s32) / det / 2
	if bfl < 0 {
		bfl = 0
	}
	if bth < 0 {
		bth = 0
	}
	res := FitResult{Bth: bth, Bfl: bfl}
	if bth > 0 {
		res.Corner = bfl / bth
	} else {
		res.Corner = math.Inf(1)
	}
	// Diagnostic band slopes around the corner.
	if res.Corner > 0 && !math.IsInf(res.Corner, 1) {
		lo, nLo, errLo := psd.LogLogSlope(fLo, res.Corner/3)
		if errLo == nil {
			res.SlopeLow = lo
			res.PointsLow = nLo
		}
		hi, nHi, errHi := psd.LogLogSlope(res.Corner*3, fHi)
		if errHi == nil {
			res.SlopeHigh = hi
			res.PointsHigh = nHi
		}
	}
	return res, nil
}

// MeasureOscillator is the one-call spectral pipeline: extract phase,
// estimate PSD, fit eq. 10. periods controls the record length; the
// Welch segment is sized to resolve the expected corner.
func MeasureOscillator(o *osc.Oscillator, periods, segment int) (FitResult, dsp.PSD, error) {
	if segment == 0 {
		segment = 1 << 14
	}
	rec := ExtractPhase(o, periods)
	psd, err := rec.PSD(segment)
	if err != nil {
		return FitResult{}, dsp.PSD{}, err
	}
	f0 := o.F0()
	fit, err := FitEq10(psd, f0/float64(segment)*2, f0/8)
	if err != nil {
		return FitResult{}, psd, err
	}
	return fit, psd, nil
}

// CrossCheck compares the spectral estimate with a time-domain σ²_N
// law: it returns the relative differences of b_th and b_fl between the
// two routes. Used by tests and EXP-PSD to demonstrate that the
// multilevel model's two views agree.
func CrossCheck(spectralBth, spectralBfl, timeBth, timeBfl float64) (dBth, dBfl float64) {
	if timeBth != 0 {
		dBth = (spectralBth - timeBth) / timeBth
	}
	if timeBfl != 0 {
		dBfl = (spectralBfl - timeBfl) / timeBfl
	}
	return dBth, dBfl
}

// AutocorrelationTime estimates the 1/e decay lag (in periods) of the
// fractional-frequency process behind an edge record — a direct
// time-domain witness of the flicker memory that makes jitter
// realizations dependent. For white FM it returns ~1.
func AutocorrelationTime(periods []float64, f0 float64, maxLag int) int {
	y := make([]float64, len(periods))
	t0 := 1 / f0
	for i, p := range periods {
		y[i] = (p - t0) * f0
	}
	rho := stats.Autocorrelation(y, maxLag)
	for k := 1; k <= maxLag; k++ {
		if rho[k] < 1/math.E {
			return k
		}
	}
	return maxLag
}
