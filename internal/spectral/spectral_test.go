package spectral

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/osc"
	"repro/internal/phase"
)

func paperPerRing() phase.Model {
	const f0 = 103e6
	return phase.Model{
		Bth: 5.36e-6 * f0 / 4,
		Bfl: 5.36e-6 / 5354 * f0 * f0 / (16 * math.Ln2),
		F0:  f0,
	}
}

func TestExtractPhaseNoiselessIsFlat(t *testing.T) {
	m := phase.Model{Bth: 0, Bfl: 0, F0: 100e6}
	o, err := osc.New(m, osc.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := ExtractPhase(o, 1000)
	for i, v := range rec.Phi {
		if math.Abs(v) > 1e-6 {
			t.Fatalf("noiseless phase at %d = %g, want 0", i, v)
		}
	}
	if rec.SampleRate != 100e6 {
		t.Fatalf("sample rate %g", rec.SampleRate)
	}
}

func TestExtractPhaseThermalVariance(t *testing.T) {
	// For white FM, φ(t_i) is a random walk with per-period variance
	// (2π·f0·σ_th)²... verified through the increment variance.
	m := paperPerRing()
	m.Bfl = 0
	o, err := osc.New(m, osc.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := ExtractPhase(o, 200000)
	var sum2 float64
	for i := 1; i < len(rec.Phi); i++ {
		d := rec.Phi[i] - rec.Phi[i-1]
		sum2 += d * d
	}
	got := sum2 / float64(len(rec.Phi)-1)
	sigma := m.SigmaThermal()
	want := 2 * math.Pi * m.F0 * sigma * 2 * math.Pi * m.F0 * sigma
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("phase increment variance %g, want %g", got, want)
	}
}

func TestSpectralRecoversThermalCoefficient(t *testing.T) {
	m := paperPerRing()
	m.Bfl = 0
	o, err := osc.New(m, osc.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fit, _, err := MeasureOscillator(o, 1<<20, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Bth-m.Bth) > 0.2*m.Bth {
		t.Fatalf("spectral b_th = %g, want %g", fit.Bth, m.Bth)
	}
	// Thermal-only: flicker coefficient must be comparatively tiny.
	if fit.Bfl > m.Bth*1e5 { // b_fl/f³ vs b_th/f² at 1 kHz: corner < 100 kHz
		t.Logf("note: spurious b_fl = %g (corner %g Hz)", fit.Bfl, fit.Corner)
	}
}

func TestSpectralRecoversBothCoefficients(t *testing.T) {
	// Use a model whose flicker corner sits well inside the Welch
	// band so both regions are observable: boost flicker 100×
	// (corner ≈ 14 kHz·100 = 1.4 MHz with f0/8 = 13 MHz top).
	m := paperPerRing()
	m.Bfl *= 100
	o, err := osc.New(m, osc.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fit, _, err := MeasureOscillator(o, 1<<21, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Bth-m.Bth) > 0.3*m.Bth {
		t.Fatalf("spectral b_th = %g, want %g", fit.Bth, m.Bth)
	}
	if math.Abs(fit.Bfl-m.Bfl) > 0.5*m.Bfl {
		t.Fatalf("spectral b_fl = %g, want %g", fit.Bfl, m.Bfl)
	}
	wantCorner := m.Bfl / m.Bth
	if fit.Corner < wantCorner/3 || fit.Corner > wantCorner*3 {
		t.Fatalf("corner %g Hz, want ~%g", fit.Corner, wantCorner)
	}
}

func TestFitEq10Exact(t *testing.T) {
	// Synthetic PSD following eq. 10 exactly must be recovered to
	// numerical precision.
	const bth, bfl = 100.0, 2e6
	var psd dsp.PSD
	for f := 1e3; f <= 1e7; f *= 1.2 {
		psd.Freq = append(psd.Freq, f)
		// One-sided synthetic: twice the paper-convention density.
		psd.Power = append(psd.Power, 2*(bfl/(f*f*f)+bth/(f*f)))
	}
	fit, err := FitEq10(psd, 1e3, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Bth-bth) > 1e-6*bth {
		t.Fatalf("b_th = %g", fit.Bth)
	}
	if math.Abs(fit.Bfl-bfl) > 1e-6*bfl {
		t.Fatalf("b_fl = %g", fit.Bfl)
	}
	if math.Abs(fit.Corner-bfl/bth) > 1 {
		t.Fatalf("corner = %g", fit.Corner)
	}
}

func TestFitEq10Validation(t *testing.T) {
	if _, err := FitEq10(dsp.PSD{Freq: []float64{1, 2}, Power: []float64{1, 1}}, 0.1, 10); err == nil {
		t.Fatal("too few bins accepted")
	}
}

func TestCrossCheck(t *testing.T) {
	dth, dfl := CrossCheck(110, 95, 100, 100)
	if math.Abs(dth-0.1) > 1e-12 || math.Abs(dfl+0.05) > 1e-12 {
		t.Fatalf("cross-check %g %g", dth, dfl)
	}
	dth, dfl = CrossCheck(1, 1, 0, 0)
	if dth != 0 || dfl != 0 {
		t.Fatal("zero-reference handling")
	}
}

func TestAutocorrelationTime(t *testing.T) {
	// White FM: decay immediately (1).
	m := paperPerRing()
	m.Bfl = 0
	o, _ := osc.New(m, osc.Options{Seed: 5})
	if k := AutocorrelationTime(o.Periods(100000), m.F0, 100); k > 2 {
		t.Fatalf("white FM autocorrelation time %d, want ~1", k)
	}
	// Flicker-dominated: long memory.
	mf := paperPerRing()
	mf.Bfl *= 1e4
	of, _ := osc.New(mf, osc.Options{Seed: 6})
	if k := AutocorrelationTime(of.Periods(100000), mf.F0, 100); k < 10 {
		t.Fatalf("flicker autocorrelation time %d, want long", k)
	}
}
