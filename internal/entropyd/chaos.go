package entropyd

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Chaos drills: scripted fault-injection campaigns that exercise the
// daemon's failure paths end-to-end — quarantine/recalibrate flapping,
// reseed storms against the SeedSource, and consumer pressure against
// the buffered rings — and report what actually happened, so the
// attack-matrix campaign (and operators running drills against a
// staging pool) can assert recovery instead of assuming it. Every
// drill leaves the pool in batch mode with all drilled shards healed
// unless its report says otherwise.

// FlapReport is the outcome of a Flap drill.
type FlapReport struct {
	Shard  int `json:"shard"`
	Cycles int `json:"cycles"`
	// Healed counts cycles whose recalibration re-admitted the shard;
	// RecalRounds counts Recalibrate calls spent doing it (a healthy
	// source heals in one, so RecalRounds > Cycles means startup
	// retries happened).
	Healed      int `json:"healed"`
	RecalRounds int `json:"recal_rounds"`
	// Quarantines is the shard's lifetime quarantine count after the
	// drill (the flap shows up here, plus any earlier history).
	Quarantines uint64 `json:"quarantines"`
}

// Flap drives one shard through injected-alarm → quarantine →
// recalibrate → healthy cycles against a pool in batch mode. Each
// cycle injects an alarm, produces until the alarm trips (alarms fire
// at the shard's next production step), then recalibrates until the
// shard is re-admitted (bounded at 4 rounds per cycle). Other shards
// keep producing throughout — the drill is exactly the "shard keeps
// dropping in and out of rotation" failure mode.
func Flap(ctx context.Context, p *Pool, shard, cycles int) (FlapReport, error) {
	rep := FlapReport{Shard: shard, Cycles: cycles}
	if shard < 0 || shard >= len(p.shards) {
		return rep, fmt.Errorf("entropyd: flap shard %d out of range [0, %d)", shard, len(p.shards))
	}
	s := p.shards[shard]
	// Big enough that one fill's rotation reaches every shard, so the
	// injected alarm trips on the first or second pass.
	buf := make([]byte, 2*fillBlock*len(p.shards))
	for c := 0; c < cycles; c++ {
		if err := p.InjectAlarm(shard); err != nil {
			return rep, err
		}
		// One production pass per shard is enough to trip the alarm;
		// tolerate ErrStarved (single-shard pools starve the remainder
		// of the fill once the drilled shard drops out).
		for i := 0; i < 8 && s.State() == StateHealthy; i++ {
			if _, err := p.Fill(buf); err != nil && !errors.Is(err, ErrStarved) {
				return rep, err
			}
		}
		if s.State() != StateQuarantined {
			return rep, fmt.Errorf("entropyd: flap cycle %d: injected alarm did not quarantine shard %d", c, shard)
		}
		for i := 0; i < 4 && s.State() != StateHealthy; i++ {
			p.Recalibrate(ctx)
			rep.RecalRounds++
		}
		if s.State() == StateHealthy {
			rep.Healed++
		}
	}
	rep.Quarantines = s.quarantines.Load()
	return rep, nil
}

// ReseedStormReport is the outcome of a ReseedStorm drill.
type ReseedStormReport struct {
	// Generates counts prediction-resistance Generate calls that
	// succeeded before the seed taps ran dry; Starved reports whether
	// the storm reached the fail-closed point (ErrSeedStarved).
	Generates int  `json:"generates"`
	Starved   bool `json:"starved"`
	// RetryRounds is the seed-source backoff rounds spent during the
	// storm (the bounded-backoff retry path under starvation).
	RetryRounds uint64 `json:"retry_rounds"`
	// Recovered reports that a full-wait Generate succeeded after the
	// taps were refilled: fail-closed is a state, not a terminal one.
	Recovered bool `json:"recovered"`
}

// ReseedStorm hammers the expansion layer with prediction-resistance
// requests until the seed taps run dry and the DRBG fails closed, then
// refills the taps through batch production and proves the layer
// recovers. Every pr=true block costs a fresh tap draw, and the taps
// refill only as gated bits flow, so a tight pr loop always outruns
// them; maxGenerates bounds the storm (0: 4× the aggregate tap
// capacity in minimum-size seed draws, which over-covers any real
// per-reseed draw). The pool must be in batch mode.
func ReseedStorm(d *DRBGPool, maxGenerates int, starveWait time.Duration) (ReseedStormReport, error) {
	rep := ReseedStormReport{}
	p := d.pool
	if p.cfg.SeedTapBytes == 0 {
		return rep, errors.New("entropyd: reseed storm needs a seed tap")
	}
	if maxGenerates == 0 {
		maxGenerates = 4 * len(p.shards) * (p.cfg.SeedTapBytes/(rawChunk/8) + 1)
	}
	if starveWait == 0 {
		starveWait = 20 * time.Millisecond
	}
	retry0 := d.src.Stats().RetryRounds
	buf := make([]byte, d.cfg.BlockBytes)
	for i := 0; i < maxGenerates; i++ {
		if _, err := d.Generate(buf, true, starveWait); err != nil {
			if !errors.Is(err, ErrSeedStarved) {
				return rep, err
			}
			rep.Starved = true
			break
		}
		rep.Generates++
	}
	rep.RetryRounds = d.src.Stats().RetryRounds - retry0
	// Refill the taps (tap mirroring rides the gated production path)
	// and prove the fail-closed state clears.
	refill := make([]byte, 2*p.cfg.SeedTapBytes*len(p.shards))
	if _, err := p.Fill(refill); err != nil {
		return rep, err
	}
	if _, err := d.Generate(buf, true, time.Second); err == nil {
		rep.Recovered = true
	}
	return rep, nil
}

// QueuePressureReport is the outcome of a QueuePressure drill.
type QueuePressureReport struct {
	Readers int `json:"readers"`
	Reads   int `json:"reads"`
	// Ok counts reads served in full, Short reads served partially
	// within their deadline, Starved reads that got nothing.
	Ok      int `json:"ok"`
	Short   int `json:"short"`
	Starved int `json:"starved"`
	// Recovered reports that a generous-deadline read succeeded after
	// the burst drained.
	Recovered bool `json:"recovered"`
}

// QueuePressure saturates a pool's buffered serving path: it switches
// the pool into serve mode, fires readers×reads concurrent ReadBuffered
// calls of readBytes each under a deliberately tight deadline (so some
// starve — that is the point), then proves a patient reader still gets
// served, and returns the pool to batch mode. The drill is the
// consumer-side mirror of the daemon's bounded request queue: demand
// beyond production capacity must shed cleanly and service must resume
// the moment pressure lifts.
func QueuePressure(ctx context.Context, p *Pool, readers, reads, readBytes int, wait time.Duration) (QueuePressureReport, error) {
	rep := QueuePressureReport{Readers: readers, Reads: reads}
	if readers <= 0 || reads <= 0 || readBytes <= 0 {
		return rep, errors.New("entropyd: queue pressure needs positive readers, reads and size")
	}
	if err := p.Serve(ctx); err != nil {
		return rep, err
	}
	defer p.Stop()
	type tally struct{ ok, short, starved int }
	res := make(chan tally, readers)
	for r := 0; r < readers; r++ {
		go func() {
			var t tally
			dst := make([]byte, readBytes)
			for i := 0; i < reads; i++ {
				n, err := p.ReadBuffered(dst, wait)
				switch {
				case err != nil:
					t.starved++
				case n < readBytes:
					t.short++
				default:
					t.ok++
				}
			}
			res <- t
		}()
	}
	for r := 0; r < readers; r++ {
		t := <-res
		rep.Ok += t.ok
		rep.Short += t.short
		rep.Starved += t.starved
	}
	dst := make([]byte, readBytes)
	if n, err := p.ReadBuffered(dst, 5*time.Second); err == nil && n == readBytes {
		rep.Recovered = true
	}
	return rep, nil
}
