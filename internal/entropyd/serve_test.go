package entropyd

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// readAll drains n buffered bytes, failing the test on timeout.
func readAll(t *testing.T, p *Pool, n int) []byte {
	t.Helper()
	out := make([]byte, n)
	got := 0
	deadline := time.Now().Add(30 * time.Second)
	for got < n {
		m, err := p.ReadBuffered(out[got:], time.Second)
		if err != nil && err != ErrStarved {
			t.Fatal(err)
		}
		got += m
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d bytes", got, n)
		}
	}
	return out
}

// TestServeMatchesFill pins the cross-mode determinism contract: in
// the healthy steady state the buffered serve stream equals the batch
// Fill stream of an identically configured pool, byte for byte.
func TestServeMatchesFill(t *testing.T) {
	t.Parallel()
	served, err := New(eroConfig(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := New(eroConfig(2, 42))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := served.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	if err := served.Serve(ctx); err == nil {
		t.Fatal("double Serve accepted")
	}
	if _, err := served.Fill(make([]byte, 8)); err == nil {
		t.Fatal("Fill accepted while serving")
	}
	got := readAll(t, served, 2048)
	served.Stop()

	want := make([]byte, 2048)
	if _, err := batch.Fill(want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("buffered serve stream diverges from Fill stream")
	}
	if served.Stats().BytesServed != 2048 {
		t.Fatalf("bytes served = %d", served.Stats().BytesServed)
	}
}

// TestServeQuarantineAndSelfHeal exercises the daemon path of the
// state machine: a forced alarm quarantines one shard mid-service, the
// pool keeps serving from the others, and the shard's producer
// goroutine recalibrates and re-admits it automatically.
func TestServeQuarantineAndSelfHeal(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards:    3,
		Seed:      77,
		Health:    HealthConfig{DisableMonitor: true, RecalibrateBackoff: 2 * time.Millisecond},
		NewSource: goodScript,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	readAll(t, p, 1024)
	if err := p.InjectAlarm(1); err != nil {
		t.Fatal(err)
	}
	// Service must continue while the alarm lands and the shard heals.
	sawQuarantine := false
	deadline := time.Now().Add(30 * time.Second)
	for {
		readAll(t, p, 512)
		st := p.Stats().Shards[1]
		if st.Quarantines >= 1 {
			sawQuarantine = true
		}
		if sawQuarantine && st.State == "healthy" && st.Epoch >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never cycled: %+v", st)
		}
	}
	if p.Shard(1).LastReason() != ReasonNone {
		t.Fatalf("reason after heal = %v", p.Shard(1).LastReason())
	}
}

// TestServeContextCancelReopensBatchMode: cancelling the Serve
// context (the documented alternative to Stop) must return the pool
// to batch mode instead of wedging it.
func TestServeContextCancelReopensBatchMode(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 2, NewSource: goodScript, Health: HealthConfig{DisableMonitor: true}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	readAll(t, p, 512)
	cancel()
	buf := make([]byte, 512)
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, err := p.Fill(buf)
		if err == nil && n == len(buf) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool still wedged after cancel: Fill = (%d, %v)", n, err)
		}
		time.Sleep(time.Millisecond)
	}
	// Stop after a context-driven shutdown is a harmless no-op.
	p.Stop()
}

// TestServeInjectOnIdleDaemon: with full rings and no consumers the
// producer loop never calls produce(), but an injected alarm must
// still quarantine the shard (the operator-drill path of cmd/trngd).
func TestServeInjectOnIdleDaemon(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards:    2,
		BufBytes:  fillBlock, // minimal ring: fills instantly
		Health:    HealthConfig{DisableMonitor: true, RecalibrateBackoff: time.Hour},
		NewSource: goodScript,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	// Let the rings fill, then drill shard 0 without any reads.
	deadline := time.Now().Add(30 * time.Second)
	for p.Shard(0).State() != StateHealthy || p.shards[0].ring.free() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("ring never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.InjectAlarm(0); err != nil {
		t.Fatal(err)
	}
	for p.Shard(0).State() != StateQuarantined {
		if time.Now().After(deadline) {
			t.Fatal("injected alarm never landed on idle daemon")
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Shard(0).LastReason(); got != ReasonInjected {
		t.Fatalf("reason = %v", got)
	}
}

// TestReadBufferedRequiresServe guards the mode split.
func TestReadBufferedRequiresServe(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 1, NewSource: goodScript, Health: HealthConfig{DisableMonitor: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadBuffered(make([]byte, 8), time.Millisecond); err != ErrNotServing {
		t.Fatalf("err = %v", err)
	}
	// Stop without Serve is a no-op.
	p.Stop()
}
