package entropyd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestDRBGConcurrentBitIdentical is the PR-6 pipeline pin: many
// concurrent Generate callers, each request spanning several blocks
// (so the per-lane worker pipeline engages), must collectively serve
// the exact byte stream a single sequential caller gets from an
// identically-seeded pool. Each Generate call atomically consumes the
// next len(dst) bytes of the rotation stream, so the concurrent
// chunks — in whatever order the callers won the lock — must be a
// permutation of the sequential reference chunks.
func TestDRBGConcurrentBitIdentical(t *testing.T) {
	t.Parallel()
	const (
		shards  = 3
		block   = 512
		chunk   = 1280 // 2.5 blocks: stresses stitching and remainders
		workers = 8
		perW    = 12
	)
	newDP := func() *DRBGPool {
		p, err := New(drbgTestConfig(shards, 29))
		if err != nil {
			t.Fatal(err)
		}
		primeAssessments(t, p)
		dp, err := p.DRBGPool(DRBGConfig{BlockBytes: block})
		if err != nil {
			t.Fatal(err)
		}
		return dp
	}

	// Sequential jobs=1 reference.
	ref := newDP()
	want := make(map[string]int, workers*perW)
	for i := 0; i < workers*perW; i++ {
		buf := make([]byte, chunk)
		if n, err := ref.Generate(buf, false, time.Second); err != nil || n != chunk {
			t.Fatalf("reference chunk %d: %d, %v", i, n, err)
		}
		want[string(buf)]++
	}

	// Concurrent run against a twin pool.
	dp := newDP()
	var mu sync.Mutex
	got := make(map[string]int, workers*perW)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				buf := make([]byte, chunk)
				n, err := dp.Generate(buf, false, 5*time.Second)
				if err != nil || n != chunk {
					errs <- fmt.Errorf("concurrent generate: %d, %v", n, err)
					return
				}
				mu.Lock()
				got[string(buf)]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("concurrent run produced %d distinct chunks, reference %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("chunk multiplicity mismatch: reference %d, concurrent %d", n, got[k])
		}
	}
	// Same production accounting: identical per-lane call counts.
	rs, cs := ref.Stats(), dp.Stats()
	if rs.Generates != cs.Generates || rs.Reseeds != cs.Reseeds {
		t.Errorf("accounting diverged: sequential %d/%d, concurrent %d/%d generates/reseeds",
			rs.Generates, rs.Reseeds, cs.Generates, cs.Reseeds)
	}
}

// TestDRBGConcurrentQuarantineHeal drives concurrent multi-block
// callers while EVERY shard is quarantined mid-pipeline: each caller
// must land on ErrSeedStarved (fail closed — never a stale-seed
// stream), and after recalibration plus a fresh same-epoch assessment
// the same callers succeed again.
func TestDRBGConcurrentQuarantineHeal(t *testing.T) {
	t.Parallel()
	const (
		shards  = 3
		block   = 512
		chunk   = 3 * block
		workers = 6
	)
	p, err := New(drbgTestConfig(shards, 31))
	if err != nil {
		t.Fatal(err)
	}
	primeAssessments(t, p)
	dp, err := p.DRBGPool(DRBGConfig{ReseedInterval: 4, BlockBytes: block, SeedWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dp.Generate(make([]byte, shards*block), false, time.Second); err != nil || n != shards*block {
		t.Fatalf("warmup: %d, %v", n, err)
	}

	started := make(chan struct{})
	var once sync.Once
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				once.Do(func() { close(started) })
				buf := make([]byte, chunk)
				if _, err := dp.Generate(buf, false, 50*time.Millisecond); err != nil {
					errs <- err
					return
				}
				if i > 10_000 {
					errs <- errors.New("quarantined pool never failed closed")
					return
				}
			}
		}()
	}
	<-started
	for i := 0; i < shards; i++ {
		if err := p.InjectAlarm(i); err != nil {
			t.Fatal(err)
		}
	}
	// The injected alarms trip on the next raw production attempt.
	if _, err := p.Fill(make([]byte, 1024)); !errors.Is(err, ErrStarved) {
		t.Fatalf("fill after injection: %v, want ErrStarved", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrSeedStarved) {
			t.Fatalf("caller ended with %v, want ErrSeedStarved", err)
		}
	}

	// Heal: recalibrate, let fresh-epoch assessments complete, and the
	// same concurrent load succeeds end to end.
	if healed := p.Recalibrate(context.Background()); healed != shards {
		t.Fatalf("Recalibrate healed %d, want %d", healed, shards)
	}
	primeAssessments(t, p)
	var wg2 sync.WaitGroup
	errs2 := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			buf := make([]byte, chunk)
			if n, err := dp.Generate(buf, false, 5*time.Second); err != nil || n != chunk {
				errs2 <- fmt.Errorf("post-heal generate: %d, %v", n, err)
			}
		}()
	}
	wg2.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}
}

// TestDRBGQuarantineDrainsQueuedBlocks pins the drain satellite: blocks
// a lane pre-generated before its shard's alarm tripped are discarded
// unserved — the expansion-layer analogue of the seed tap's drain
// watermark.
func TestDRBGQuarantineDrainsQueuedBlocks(t *testing.T) {
	t.Parallel()
	const block = 256
	p, err := New(drbgTestConfig(2, 37))
	if err != nil {
		t.Fatal(err)
	}
	primeAssessments(t, p)
	dp, err := p.DRBGPool(DRBGConfig{BlockBytes: block})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dp.Generate(make([]byte, 2*block), false, time.Second); err != nil || n != 2*block {
		t.Fatalf("warmup: %d, %v", n, err)
	}
	// Run the pipeline ahead by hand: two queued blocks on lane 0,
	// exactly as a worker leaves them.
	l := dp.lanes[0]
	var suspect [][]byte
	for i := 0; i < 2; i++ {
		b := make([]byte, block)
		if err := dp.fillInto(l, b, false, time.Second); err != nil {
			t.Fatalf("pre-generate: %v", err)
		}
		l.queue = append(l.queue, b)
		suspect = append(suspect, append([]byte(nil), b...))
	}
	l.queuedN.Store(uint64(len(l.queue)))

	if err := p.InjectAlarm(0); err != nil {
		t.Fatal(err)
	}
	// Trip the injected alarm: shard 0 quarantines mid-fill and its
	// share redistributes to shard 1.
	if _, err := p.Fill(make([]byte, 1024)); err != nil {
		t.Fatalf("fill after injection: %v", err)
	}
	// The lane still owes output from its current seed (fail-closed
	// triggers at the reseed deadline, not before), but the queued
	// blocks must be dropped, not served.
	out := make([]byte, 2*block)
	if n, err := dp.Generate(out, false, time.Second); err != nil || n != len(out) {
		t.Fatalf("generate after alarm: %d, %v", n, err)
	}
	for _, s := range suspect {
		if bytes.Contains(out, s) {
			t.Fatal("suspect pre-quarantine block was served")
		}
	}
	st := dp.Stats()
	if st.Lanes[0].DrainedBlocks != 2 {
		t.Errorf("lane 0 drained %d blocks, want 2", st.Lanes[0].DrainedBlocks)
	}
	if st.Lanes[0].QueuedBlocks != 0 {
		t.Errorf("lane 0 still queues %d blocks", st.Lanes[0].QueuedBlocks)
	}
}
