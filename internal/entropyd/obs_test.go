package entropyd

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/obs/incident"
	"repro/internal/rng"
)

// TestJournalBitIdentity is the observability pin: attaching an event
// journal must leave the pool's output stream bit-identical, including
// through an alarm/quarantine/redistribution episode (the densest
// event-emission path). Emission is passive; this test is what keeps
// it so.
func TestJournalBitIdentity(t *testing.T) {
	t.Parallel()
	mk := func(sink obs.Sink) *Pool {
		cfg := Config{
			Shards: 2,
			Seed:   7,
			Health: HealthConfig{DisableMonitor: true, TotWindow: 64},
			Sink:   sink,
			NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
				fail := uint64(math.MaxUint64)
				if shard == 0 && epoch == 0 {
					fail = startupBits + 3000 // dies mid-service
				}
				return &scriptSource{r: rng.New(seed), failAfter: fail}, nil
			},
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	j := NewTestJournal()
	pOn, pOff := mk(j), mk(nil)

	a := make([]byte, 8192)
	b := make([]byte, 8192)
	if _, err := pOn.Fill(a); err != nil {
		t.Fatal(err)
	}
	if _, err := pOff.Fill(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("output diverged with journal attached (through a quarantine episode)")
	}
	// Heal both and compare the post-heal stream too.
	pOn.Recalibrate(context.Background())
	pOff.Recalibrate(context.Background())
	if _, err := pOn.Fill(a); err != nil {
		t.Fatal(err)
	}
	if _, err := pOff.Fill(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("post-heal output diverged with journal attached")
	}
	if j.LastSeq() == 0 {
		t.Fatal("journal recorded nothing — the pin proved the wrong thing")
	}
}

// NewTestJournal builds a journal sized for a test run.
func NewTestJournal() *obs.Journal { return obs.NewJournal(1 << 12) }

// TestIncidentEngineBitIdentity extends the passivity pin to the
// incident correlation engine: fanning the event stream out to the
// engine alongside the journal must leave the pool's output
// bit-identical with the engine absent, through the same
// quarantine/heal episode — and the engine must actually have folded
// that episode into an incident, so the pin proves the right thing.
func TestIncidentEngineBitIdentity(t *testing.T) {
	t.Parallel()
	mk := func(sink obs.Sink) *Pool {
		cfg := Config{
			Shards: 2,
			Seed:   7,
			Health: HealthConfig{DisableMonitor: true, TotWindow: 64},
			Sink:   sink,
			NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
				fail := uint64(math.MaxUint64)
				if shard == 0 && epoch == 0 {
					fail = startupBits + 3000 // dies mid-service
				}
				return &scriptSource{r: rng.New(seed), failAfter: fail}, nil
			},
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	eng := incident.New(incident.DefaultWindow)
	pOn, pOff := mk(obs.Multi(NewTestJournal(), eng)), mk(NewTestJournal())

	a := make([]byte, 8192)
	b := make([]byte, 8192)
	if _, err := pOn.Fill(a); err != nil {
		t.Fatal(err)
	}
	if _, err := pOff.Fill(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("output diverged with the incident engine attached")
	}
	pOn.Recalibrate(context.Background())
	pOff.Recalibrate(context.Background())
	if _, err := pOn.Fill(a); err != nil {
		t.Fatal(err)
	}
	if _, err := pOff.Fill(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("post-heal output diverged with the incident engine attached")
	}
	incs, last := eng.Incidents(0)
	if last != 1 || len(incs) != 1 || !incs[0].Resolved || incs[0].Class != incident.ClassSingleShard {
		t.Fatalf("engine did not fold the episode into one resolved single-shard incident: %+v", incs)
	}
}

// TestShardLifecycleEventSequence walks the tot health cycle and
// checks the journal tells the full story in order: startup passes at
// construction, the alarm with its statistic, the quarantine with the
// reason, the recalibration, the heal.
func TestShardLifecycleEventSequence(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := Config{
		Shards: 2,
		Seed:   7,
		Health: HealthConfig{DisableMonitor: true, TotWindow: 64},
		Sink:   j,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			fail := uint64(math.MaxUint64)
			if shard == 0 && epoch == 0 {
				fail = startupBits + 3000
			}
			return &scriptSource{r: rng.New(seed), failAfter: fail}, nil
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Construction: one startup-pass per shard.
	q := obs.NewQuery()
	q.Type = obs.TypeStartupPass
	if evs, _ := j.Events(q); len(evs) != 2 {
		t.Fatalf("startup-pass events = %d, want 2", len(evs))
	}

	buf := make([]byte, 2048)
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	p.Recalibrate(context.Background())

	q = obs.NewQuery()
	q.Shard = 0
	evs, _ := j.Events(q)
	var types []obs.Type
	for _, e := range evs {
		types = append(types, e.Type)
	}
	want := []obs.Type{obs.TypeStartupPass, obs.TypeAlarm, obs.TypeQuarantine,
		obs.TypeRecalibrate, obs.TypeStartupPass, obs.TypeHeal}
	if len(types) != len(want) {
		t.Fatalf("shard 0 event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (full: %v)", i, types[i], want[i], types)
		}
	}
	if evs[1].Reason != "tot" || evs[1].Value != 64 {
		t.Errorf("alarm event: reason %q value %v, want tot/64 (the run length)", evs[1].Reason, evs[1].Value)
	}
	if evs[2].Reason != "tot" {
		t.Errorf("quarantine reason %q, want tot", evs[2].Reason)
	}
	if evs[3].Epoch != 1 || evs[5].Epoch != 1 {
		t.Errorf("recalibrate/heal epochs: %d, %d, want 1, 1", evs[3].Epoch, evs[5].Epoch)
	}
	// Sequence numbers strictly increase along the story.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d <= %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

// drillLatency runs one drill: emit the marker, trip the shard via
// fill, and return the paired detection latency for the class plus the
// marker→quarantine event pair (the /events correlation contract).
func drillLatency(t *testing.T, j *obs.Journal, p *Pool, class string, fill func()) {
	t.Helper()
	fill()
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined || s0.LastReason().String() != class {
		t.Fatalf("shard 0: state %v reason %v, want quarantined/%s", s0.State(), s0.LastReason(), class)
	}
	lats := j.DetectionLatencies()
	snap, ok := lats[class]
	if !ok || snap.Count() != 1 {
		t.Fatalf("detection latency for class %q not recorded: %v", class, lats)
	}
	if snap.Max() < 0 {
		t.Fatalf("negative detection latency %v", snap.Max())
	}
	// The correlated pair is retrievable through the cursor API.
	q := obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeInjectionMarker
	markers, _ := j.Events(q)
	if len(markers) != 1 {
		t.Fatalf("marker events = %d, want 1", len(markers))
	}
	q = obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeQuarantine
	q.Since = markers[0].Seq
	quars, _ := j.Events(q)
	if len(quars) != 1 || quars[0].Reason != class {
		t.Fatalf("quarantine after marker: %+v, want one with reason %s", quars, class)
	}
}

// TestDetectionLatencyTot: drill the total-failure class — the source
// flatlines at a known bit, the marker starts the clock, the tot test
// quarantine stops it.
func TestDetectionLatencyTot(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := Config{
		Shards: 2,
		Seed:   7,
		Health: HealthConfig{DisableMonitor: true, TotWindow: 64},
		Sink:   j,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			fail := uint64(math.MaxUint64)
			if shard == 0 && epoch == 0 {
				fail = startupBits + 3000
			}
			return &scriptSource{r: rng.New(seed), failAfter: fail}, nil
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack.Mark(j, 0, nil) // drill armed: clock starts
	drillLatency(t, j, p, "tot", func() {
		buf := make([]byte, 2048)
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDetectionLatencyThermal: drill the paper's §V class — thermal
// suppression armed on the monitor pair, marker emitted by the attack
// layer, thermal-low quarantine closes the pair.
func TestDetectionLatencyThermal(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := thermalConfig(2, 31)
	cfg.Sink = j
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair := p.Shard(0).MonitorPair()
	sc := attack.ThermalSuppression{Factor: 0.9}
	sc.Arm(pair.Osc1)
	sc.Arm(pair.Osc2)
	attack.Mark(j, 0, sc)
	drillLatency(t, j, p, "thermal-low", func() {
		buf := make([]byte, 8192)
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
	})
	// The alarm event carries the collapsed variance as its statistic.
	q := obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeAlarm
	evs, _ := j.Events(q)
	if len(evs) != 1 || evs[0].Reason != "thermal-low" || evs[0].Value <= 0 {
		t.Fatalf("thermal alarm event: %+v, want reason thermal-low with positive variance", evs)
	}
}

// TestDetectionLatencyLowEntropy: drill the assessment class — the
// 0101… source is statistically invisible to tot/monitor but carries
// zero entropy; the SP 800-90B predictors catch it.
func TestDetectionLatencyLowEntropy(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := Config{
		Shards: 2,
		Seed:   9,
		Sink:   j,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			if shard == 0 && epoch == 0 {
				return &alternatingSource{}, nil
			}
			return goodScript(shard, epoch, seed)
		},
		Health: assessHealth(0.3),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack.Mark(j, 0, nil)
	drillLatency(t, j, p, "low-entropy", func() {
		// Keep filling until the assessment sample completes and fires
		// (AssessBits raw bits through shard 0).
		buf := make([]byte, 4096)
		for i := 0; i < 16 && p.Shard(0).State() == StateHealthy; i++ {
			if _, err := p.Fill(buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	// The alarm statistic is the assessed suite min-entropy, below the
	// 0.3 threshold.
	q := obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeAlarm
	evs, _ := j.Events(q)
	if len(evs) != 1 || evs[0].Reason != "low-entropy" {
		t.Fatalf("low-entropy alarm event: %+v", evs)
	}
	if v := evs[0].Value; v < 0 || v >= 0.3 {
		t.Errorf("alarm statistic %v, want assessed min-entropy in [0, 0.3)", v)
	}
}

// TestInjectAlarmEmitsMarker: the operator drill endpoint's pool hook
// emits the marker itself, and the serve-path quarantine closes the
// pair with class "injected".
func TestInjectAlarmEmitsMarker(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := Config{
		Shards:    2,
		Seed:      11,
		Health:    HealthConfig{DisableMonitor: true},
		Sink:      j,
		NewSource: goodScript,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectAlarm(0); err != nil {
		t.Fatal(err)
	}
	q := obs.NewQuery()
	q.Type = obs.TypeInjectionMarker
	if evs, _ := j.Events(q); len(evs) != 1 || evs[0].Shard != 0 {
		t.Fatalf("marker events after InjectAlarm: %+v", evs)
	}
	buf := make([]byte, 2048)
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	if snap := j.DetectionLatencies()["injected"]; snap == nil || snap.Count() != 1 {
		t.Fatalf("injected-class latency not recorded: %v", j.DetectionLatencies())
	}
}

// TestDRBGAndSeedEvents: the expansion layer's lane lifecycle shows up
// in the journal — instantiations, seed draws with the vetted credit,
// interval reseeds, and the fail-closed transition when no seed
// material exists.
func TestDRBGAndSeedEvents(t *testing.T) {
	t.Parallel()
	j := NewTestJournal()
	cfg := drbgTestConfig(2, 5)
	cfg.Sink = j
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Before any assessment: instantiation must fail closed, and the
	// journal must say so.
	dp, err := p.DRBGPool(DRBGConfig{BlockBytes: 1024, ReseedInterval: 2,
		SeedWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 1024)
	if _, err := dp.Generate(out, false, 10*time.Millisecond); !errors.Is(err, ErrSeedStarved) {
		t.Fatalf("Generate before assessment: %v, want ErrSeedStarved", err)
	}
	q := obs.NewQuery()
	q.Type = obs.TypeDRBGReseedFail
	if evs, _ := j.Events(q); len(evs) == 0 {
		t.Fatal("no drbg-reseed-fail event for the starved instantiate")
	}
	q = obs.NewQuery()
	q.Type = obs.TypeDRBGFailClosed
	if evs, _ := j.Events(q); len(evs) != 1 {
		t.Fatalf("drbg-fail-closed events = %d, want 1", len(evs))
	}

	// Prime assessments and taps; now lanes instantiate, draw seed and
	// reseed on the 2-block interval.
	primeAssessments(t, p)
	cursor := j.LastSeq()
	if _, err := dp.Generate(make([]byte, 8*1024), false, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	q = obs.NewQuery()
	q.Since = cursor
	q.Type = obs.TypeDRBGInstantiate
	inst, _ := j.Events(q)
	if len(inst) == 0 {
		t.Fatal("no drbg-instantiate events")
	}
	for _, e := range inst {
		if e.Lane != e.Shard || e.Detail == "" {
			t.Errorf("instantiate event malformed: %+v", e)
		}
	}
	q = obs.NewQuery()
	q.Since = cursor
	q.Type = obs.TypeSeedDraw
	draws, _ := j.Events(q)
	if len(draws) == 0 {
		t.Fatal("no seed-draw events")
	}
	for _, e := range draws {
		// The vetted credit must cover the conditioner output width
		// (256 bits for the default HMAC-SHA-256) to within the 0.999
		// emission floor.
		if e.Value < 0.999*256 {
			t.Errorf("seed-draw credit %v below the emission floor", e.Value)
		}
	}
	q = obs.NewQuery()
	q.Since = cursor
	q.Type = obs.TypeDRBGReseed
	if evs, _ := j.Events(q); len(evs) == 0 {
		t.Fatal("no drbg-reseed events despite the 2-block interval")
	}
}
