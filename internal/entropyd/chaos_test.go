package entropyd

import (
	"context"
	"testing"
	"time"
)

func TestFlapDrill(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 2, Seed: 31, NewSource: goodScript,
		Health: assessHealth(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Flap(context.Background(), p, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healed != 3 {
		t.Fatalf("flap healed %d/3 cycles: %+v", rep.Healed, rep)
	}
	if rep.Quarantines < 3 {
		t.Fatalf("flap left quarantine count %d, want >= 3", rep.Quarantines)
	}
	if p.Healthy() != 2 {
		t.Fatalf("%d/2 shards healthy after flap drill", p.Healthy())
	}
	// The drilled shard must still produce: alarms landed on the shard
	// we asked for and healing restored the rotation.
	if _, err := p.Fill(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
}

func TestFlapRejectsBadShard(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 1, Seed: 32, NewSource: goodScript,
		Health: assessHealth(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Flap(context.Background(), p, 5, 1); err == nil {
		t.Fatal("flap accepted an out-of-range shard")
	}
}

func TestReseedStormFailsClosedAndRecovers(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 2, Seed: 33, NewSource: goodScript,
		Health: assessHealth(0.3), SeedTapBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.DRBGPool(DRBGConfig{BlockBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the taps so the storm has something to drain.
	if _, err := p.Fill(make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	rep, err := ReseedStorm(d, 0, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Starved {
		t.Fatalf("storm never starved the seed source: %+v", rep)
	}
	if rep.Generates == 0 {
		t.Fatalf("storm starved before any pr generate succeeded: %+v", rep)
	}
	if rep.RetryRounds == 0 {
		t.Fatalf("starved storm recorded no backoff retry rounds: %+v", rep)
	}
	if !rep.Recovered {
		t.Fatalf("expansion layer did not recover after tap refill: %+v", rep)
	}
}

func TestQueuePressureShedsAndRecovers(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 2, Seed: 34, NewSource: goodScript,
		Health: assessHealth(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := QueuePressure(context.Background(), p, 4, 8, 65536, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok+rep.Short+rep.Starved != 4*8 {
		t.Fatalf("tally mismatch: %+v", rep)
	}
	if rep.Ok+rep.Short == 0 {
		t.Fatalf("pressure burst was never served at all: %+v", rep)
	}
	if !rep.Recovered {
		t.Fatalf("patient read failed after the burst: %+v", rep)
	}
	// The drill must hand the pool back in batch mode.
	if _, err := p.Fill(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
}

func TestSeedBackoffBoundsRetries(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 1, Seed: 35, NewSource: goodScript,
		Health: assessHealth(0.3), SeedTapBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.SeedSource(SeedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// No Fill has run: the tap is empty, so the draw starves after the
	// wait. A fixed 1 ms poll would spin ~40 rounds in 40 ms; the
	// exponential backoff (1→2→4→8→16→32 ms, jittered into [d/2, d))
	// must land well under that while still retrying at least twice.
	if err := s.Seed(make([]byte, 32), -1, 40*time.Millisecond); err != ErrSeedStarved {
		t.Fatalf("Seed on an empty tap: %v, want ErrSeedStarved", err)
	}
	st := s.Stats()
	if st.RetryRounds < 2 || st.RetryRounds > 15 {
		t.Fatalf("backoff retry rounds = %d, want in [2, 15]", st.RetryRounds)
	}
	if got := s.RetryRounds(-1); got != st.RetryRounds {
		t.Fatalf("RetryRounds(-1) = %d, want %d (all draws had no preference)", got, st.RetryRounds)
	}
	if got := s.RetryRounds(0); got != 0 {
		t.Fatalf("RetryRounds(0) = %d, want 0", got)
	}
}
