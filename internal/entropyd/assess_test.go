package entropyd

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/sp90b"
)

// alternatingSource emits the deterministic 0101… stream: perfectly
// balanced (blind to every bias-style check, passes tot) but carrying
// zero entropy — the degradation class only the SP 800-90B predictors
// catch.
type alternatingSource struct{ i uint64 }

func (a *alternatingSource) NextBit() byte {
	a.i++
	return byte(a.i & 1)
}

// assessHealth returns a health config with a tight assessment duty
// cycle for tests: no physics-dependent monitor, no startup test (the
// scripted sources here either trivially pass or are exactly the case
// the startup test would mask), sample and cadence small enough that a
// few KiB of output trigger an assessment.
func assessHealth(threshold float64) HealthConfig {
	return HealthConfig{
		DisableStartup:   true,
		DisableMonitor:   true,
		AssessBits:       sp90b.MinBits,
		AssessEveryBits:  sp90b.MinBits,
		AssessMinEntropy: threshold,
	}
}

// TestAssessmentPublishesReports: a healthy pool publishes per-shard
// assessment reports with sensible bounds and bookkeeping, without
// alarming.
func TestAssessmentPublishesReports(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 2, Seed: 5, NewSource: goodScript, Health: assessHealth(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	// 10000-bit samples: each shard needs 20000+ raw bits (sample +
	// cadence + sample) for two assessments; 16 KiB of pool output is
	// 64 Kibit per shard — several runs each.
	buf := make([]byte, 16384)
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	for i, sh := range st.Shards {
		if sh.AssessRuns < 2 {
			t.Fatalf("shard %d: %d assessment runs, want >= 2", i, sh.AssessRuns)
		}
		if sh.AssessAlarms != 0 {
			t.Fatalf("shard %d: %d assessment alarms on a good source", i, sh.AssessAlarms)
		}
		// A fair PRNG stream must assess high; the suite floor at this
		// sample size is the compression estimator's conservatism.
		if sh.AssessMinEntropy < 0.5 {
			t.Fatalf("shard %d: assessment min-entropy %.4f < 0.5 on a fair source", i, sh.AssessMinEntropy)
		}
		a := p.Shard(i).LastAssessment()
		if a == nil {
			t.Fatalf("shard %d: no last assessment", i)
		}
		if a.Shard != i || a.Epoch != 0 || a.Report.Bits != sp90b.MinBits {
			t.Fatalf("shard %d: assessment metadata %+v", i, a)
		}
		if a.RawBits < uint64(sp90b.MinBits) || a.RawBits > sh.RawBits {
			t.Fatalf("shard %d: raw-bit tag %d outside (0, %d]", i, a.RawBits, sh.RawBits)
		}
		if a.Report.MinEntropy != sh.AssessMinEntropy {
			t.Fatalf("shard %d: stats min-entropy %.4f != report %.4f", i, sh.AssessMinEntropy, a.Report.MinEntropy)
		}
	}
}

// TestAssessmentQuarantinesLowEntropy: a balanced-but-deterministic
// shard sails through tot (no constant window) and bias checks; the
// periodic assessment must quarantine it with ReasonLowEntropy while
// the healthy shard keeps the pool serving. Recalibration re-admits
// the shard, and the persistent degradation is caught again on the
// next assessment.
func TestAssessmentQuarantinesLowEntropy(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 2,
		Seed:   9,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			if shard == 0 {
				return &alternatingSource{}, nil
			}
			return goodScript(shard, epoch, seed)
		},
		Health: assessHealth(0.3),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	n, err := p.Fill(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("Fill = %d, %v; want full buffer (healthy shard must cover)", n, err)
	}
	sh := p.Shard(0)
	if sh.State() != StateQuarantined || sh.LastReason() != ReasonLowEntropy {
		t.Fatalf("shard 0: state %v reason %v, want quarantined/low-entropy", sh.State(), sh.LastReason())
	}
	if a := sh.LastAssessment(); a == nil || a.Report.MinEntropy > 0.01 {
		t.Fatalf("shard 0: expected near-zero assessed entropy, got %+v", a)
	}
	if p.Shard(1).State() != StateHealthy || p.Healthy() != 1 {
		t.Fatalf("healthy shard lost: healthy=%d", p.Healthy())
	}
	st := p.Stats()
	if st.Shards[0].AssessAlarms != 1 || st.Shards[0].Quarantines != 1 {
		t.Fatalf("shard 0 counters: %+v", st.Shards[0])
	}

	// Heal: the scripted source is rebuilt (same deterministic
	// pattern), passes re-admission, and the next assessment catches
	// the persistent degradation again.
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("Recalibrate healed %d shards, want 1", healed)
	}
	if sh.State() != StateHealthy || sh.Epoch() != 1 {
		t.Fatalf("shard 0 after heal: state %v epoch %d", sh.State(), sh.Epoch())
	}
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	if sh.State() != StateQuarantined || sh.LastReason() != ReasonLowEntropy {
		t.Fatalf("persistent degradation not re-caught: state %v reason %v", sh.State(), sh.LastReason())
	}
	if got := p.Stats().Shards[0].AssessAlarms; got != 2 {
		t.Fatalf("assessment alarms = %d, want 2", got)
	}
}

// TestAssessmentIsPassive: the collector only copies raw bits, so the
// pool output stream is bit-identical with assessment enabled,
// disabled, and across worker counts.
func TestAssessmentIsPassive(t *testing.T) {
	t.Parallel()
	fill := func(h HealthConfig, jobs int) []byte {
		cfg := Config{Shards: 3, Seed: 21, NewSource: goodScript, Health: h, Jobs: jobs}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 12288)
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	on := fill(assessHealth(0), 1)
	off := assessHealth(0)
	off.DisableAssess = true
	if !bytes.Equal(on, fill(off, 1)) {
		t.Fatal("assessment changed the output stream")
	}
	if !bytes.Equal(on, fill(assessHealth(0), 4)) {
		t.Fatal("assessment broke jobs-width determinism")
	}
}

// TestAssessConfigValidation guards the new health knobs.
func TestAssessConfigValidation(t *testing.T) {
	t.Parallel()
	cfg := Config{NewSource: goodScript, Health: assessHealth(0)}
	cfg.Health.AssessBits = sp90b.MinBits - 1
	if _, err := New(cfg); err == nil {
		t.Error("undersized AssessBits accepted")
	}
	cfg = Config{NewSource: goodScript, Health: assessHealth(1.5)}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range threshold accepted")
	}
	// Disabled assessment skips the validation (legacy configs).
	cfg = Config{NewSource: goodScript, Health: assessHealth(0)}
	cfg.Health.AssessBits = 1
	cfg.Health.DisableAssess = true
	if _, err := New(cfg); err != nil {
		t.Errorf("disabled assessment still validated: %v", err)
	}
}
