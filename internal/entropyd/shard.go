package entropyd

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ais31"
	"repro/internal/engine"
	"repro/internal/loadstat"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/onlinetest"
	"repro/internal/osc"
	"repro/internal/postproc"
	"repro/internal/sp90b"
	"repro/internal/sp90b/stream"
)

// State is a shard's position in the health state machine (see the
// package comment for the full transition diagram).
type State int32

// Shard states.
const (
	// StateStartup: the shard is calibrating (startup test running);
	// no output is admitted yet.
	StateStartup State = iota
	// StateHealthy: all embedded tests pass; output is gated into the
	// pool.
	StateHealthy
	// StateQuarantined: an embedded test alarmed (or startup failed);
	// output is discarded until a recalibration succeeds.
	StateQuarantined
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateStartup:
		return "startup"
	case StateHealthy:
		return "healthy"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Reason records why a shard was last quarantined.
type Reason int32

// Quarantine reasons.
const (
	ReasonNone Reason = iota
	// ReasonStartup: the AIS31 startup test (T1–T4 on the first 20000
	// gated bits of the epoch) failed.
	ReasonStartup
	// ReasonTot: the AIS31 total-failure test fired (window of
	// identical raw bits — dead source).
	ReasonTot
	// ReasonThermalLow: the paper's thermal monitor measured the
	// small-N jitter variance below its calibrated bound — entropy
	// loss (cooling, locking, injection).
	ReasonThermalLow
	// ReasonThermalHigh: variance above the high bound — injected
	// beat or measurement fault.
	ReasonThermalHigh
	// ReasonInjected: an operator/test forced the quarantine
	// (Pool.InjectAlarm).
	ReasonInjected
	// ReasonLowEntropy: the periodic SP 800-90B assessment's suite
	// min-entropy fell below HealthConfig.AssessMinEntropy.
	ReasonLowEntropy
	// ReasonLiveEntropy: the streaming surveillance tracker's live
	// suite min-entropy fell below HealthConfig.StreamMinEntropy — the
	// mid-window low-watermark, fired without waiting for a batch
	// sample boundary.
	ReasonLiveEntropy
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonStartup:
		return "startup"
	case ReasonTot:
		return "tot"
	case ReasonThermalLow:
		return "thermal-low"
	case ReasonThermalHigh:
		return "thermal-high"
	case ReasonInjected:
		return "injected"
	case ReasonLowEntropy:
		return "low-entropy"
	case ReasonLiveEntropy:
		return "live-low-entropy"
	default:
		return fmt.Sprintf("Reason(%d)", int32(r))
	}
}

// startupBits is the AIS31 startup-test sample size (T1–T4 need 20000
// bits).
const startupBits = 20000

// rawChunk is the raw-bit batch a shard pulls from its source per
// gating step: large enough to amortize per-chunk bookkeeping, small
// enough that an alarm stops output within a fraction of a block.
const rawChunk = 512

// maxDryChunks bounds how many consecutive raw chunks may yield zero
// gated bits before the shard declares the conditioner starved (e.g. a
// von Neumann corrector fed a stuck source with the tot test disabled)
// and quarantines instead of spinning. A live source makes even a
// short dry streak astronomically unlikely.
const maxDryChunks = 1024

// Shard is one independent generator lane of a Pool: its own entropy
// source, post-processing chain, embedded tests and output ring. The
// mutable generation state (source, tests, bit buffers) is owned by
// exactly one goroutine at a time — the engine task filling it, or its
// producer goroutine in serve mode. Everything the rest of the system
// reads (state, counters) is atomic.
type Shard struct {
	index int
	pool  *Pool
	seed  uint64 // shard root seed: engine.DeriveSeed(pool seed, index)

	// Owner-goroutine generation state.
	src          RawSource
	tot          *ais31.TotTest
	mon          *onlinetest.Monitor
	monCounter   *measure.Counter
	monPair      *osc.Pair
	monPrevQ     int64
	monScale     float64
	monCountdown int
	bitbuf       []byte // gated bits awaiting byte packing
	bitpos       int    // consumed prefix of bitbuf
	raw          []byte // raw chunk scratch

	// Raw-bit assessment collector (owner goroutine): when armed
	// (assessWait == 0) raw chunks are copied into assessBuf until an
	// AssessBits sample is complete and assessed.
	assessBuf  []byte
	assessWait int // raw bits left before the next collection starts

	// Streaming surveillance tracker (owner goroutine; nil when
	// HealthConfig.StreamWindow == 0). Like the batch collector it is
	// passive: it reads raw chunks the shard generates anyway.
	tracker *stream.Tracker

	// alarmStat is the statistic that triggered the pending alarm
	// (owner goroutine; set at the test site that raised the reason,
	// consumed by the quarantine event): the tot run length, the
	// thermal monitor's windowed s_N variance, or the assessed suite
	// min-entropy.
	alarmStat float64

	// Serve-mode output buffer.
	ring *ring

	// Raw seed tap (Config.SeedTapBytes > 0): a second SPSC ring the
	// owner goroutine mirrors packed raw chunks into while Healthy,
	// drained by SeedSource draws on the consumer side. Like the
	// assessment collector it is passive — it copies bits the shard
	// generates anyway, so enabling it never changes the output
	// stream. tapScratch is the pack buffer.
	tap        *ring
	tapScratch []byte

	// Published state (atomics; readable from any goroutine).
	state        atomic.Int32
	reason       atomic.Int32
	epoch        atomic.Int64
	injected     atomic.Bool
	bytesOut     atomic.Uint64
	rawBits      atomic.Uint64
	totAlarms    atomic.Uint64
	monLow       atomic.Uint64
	monHigh      atomic.Uint64
	startupFails atomic.Uint64
	quarantines  atomic.Uint64
	drainedBytes atomic.Uint64
	assessRuns   atomic.Uint64
	assessAlarms atomic.Uint64
	lastAssess   atomic.Pointer[Assessment]
	liveAlarms   atomic.Uint64
	liveAssess   atomic.Pointer[Assessment]
	streamCost   *loadstat.Histogram // per-raw-bit surveillance cost; nil when streaming is off
	tapBytes     atomic.Uint64
	tapDropped   atomic.Uint64
	seedBytes    atomic.Uint64
}

// Assessment is one completed SP 800-90B raw-bit assessment of a
// shard, tagged with when it ran.
type Assessment struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Epoch is the calibration epoch the sample was collected in.
	Epoch int64 `json:"epoch"`
	// RawBits is the shard's raw-bit counter when the sample
	// completed.
	RawBits uint64 `json:"raw_bits"`
	// At is the wall-clock completion time (status/metrics only; no
	// deterministic path reads it).
	At time.Time `json:"at"`
	// Report is the estimator suite verdict.
	Report sp90b.Report `json:"report"`
}

// LastAssessment returns the most recent completed assessment, nil
// before the first one. Safe from any goroutine; reports survive
// recalibration (the epoch tag tells readers which calibration they
// describe).
func (s *Shard) LastAssessment() *Assessment { return s.lastAssess.Load() }

// LiveAssessment returns the most recent streaming-surveillance report
// — the six cheap estimators over the sliding StreamWindow, refreshed
// every raw chunk — or nil when streaming is off or the window has not
// filled yet this epoch. Safe from any goroutine. Unlike the batch
// LastAssessment it does NOT survive recalibration: a new epoch is a
// different source build, so its window starts empty.
func (s *Shard) LiveAssessment() *Assessment { return s.liveAssess.Load() }

// StreamCost snapshots the per-raw-bit streaming surveillance cost
// histogram (each sample is one chunk's elapsed time divided by the
// chunk's bits), nil when streaming is off. Safe from any goroutine.
func (s *Shard) StreamCost() *loadstat.Snapshot {
	if s.streamCost == nil {
		return nil
	}
	return s.streamCost.Snapshot()
}

// Index returns the shard's position in the pool.
func (s *Shard) Index() int { return s.index }

// State returns the current health state.
func (s *Shard) State() State { return State(s.state.Load()) }

// LastReason returns the most recent quarantine reason.
func (s *Shard) LastReason() Reason { return Reason(s.reason.Load()) }

// Epoch returns the calibration epoch (0 at construction, +1 per
// recalibration attempt).
func (s *Shard) Epoch() int64 { return s.epoch.Load() }

// RawBits returns the raw bits gated through the health chain over the
// shard's lifetime (all epochs, whether or not they reached the ring).
// Attack experiments use it to place scenario onsets and measure
// detection latency on the raw-bit clock.
func (s *Shard) RawBits() uint64 { return s.rawBits.Load() }

// MonitorPair exposes the oscillator pair behind the shard's thermal
// monitor, nil when the monitor is disabled. It exists for attack
// experiments (arming modulators before the pool starts producing);
// mutating it while the shard is producing is a data race.
func (s *Shard) MonitorPair() *osc.Pair { return s.monPair }

// Source exposes the current entropy source instance (same caveat as
// MonitorPair).
func (s *Shard) Source() RawSource { return s.src }

// calibrate (re)builds the shard's generation state for the current
// epoch and runs the AIS31 startup test on it. On success the shard is
// Healthy; on a statistical failure it is Quarantined with
// ReasonStartup. A non-nil error means the configuration itself is
// unusable (only possible at construction, where Pool.New aborts).
func (s *Shard) calibrate() error {
	s.state.Store(int32(StateStartup))
	s.injected.Store(false)
	s.bitbuf, s.bitpos = s.bitbuf[:0], 0
	s.assessBuf, s.assessWait = s.assessBuf[:0], 0
	if s.raw == nil {
		s.raw = make([]byte, rawChunk)
	}
	epoch := uint64(s.epoch.Load())
	h := &s.pool.cfg.Health

	if h.StreamWindow > 0 {
		if s.tracker == nil {
			tr, err := stream.New(stream.Config{Window: h.StreamWindow, Panes: h.StreamPanes})
			if err != nil {
				return err // unreachable: validated at construction
			}
			s.tracker = tr
			s.streamCost = loadstat.New()
		} else {
			// New epoch, new source build: the live window must not mix
			// bits across the rebuild.
			s.tracker.Reset()
		}
		s.liveAssess.Store(nil)
	}

	src, err := s.pool.newSource(s.index, int(epoch), engine.DeriveSeed(s.seed, 2*epoch))
	if err != nil {
		return err
	}
	s.src = src

	s.tot = nil
	if !h.DisableTot {
		t, err := ais31.NewTotTest(h.TotWindow)
		if err != nil {
			return err
		}
		s.tot = t
	}

	s.mon, s.monCounter, s.monPair = nil, nil, nil
	if !h.DisableMonitor {
		pair, err := s.pool.newMonitorPair(s.index, int(epoch), engine.DeriveSeed(s.seed, 2*epoch+1))
		if err != nil {
			return err
		}
		counter, err := measure.NewCounterConfig(pair, h.MonitorN, measure.Config{Subdivide: h.MonitorSubdivide})
		if err != nil {
			return err
		}
		ref := h.RefSigmaN2
		if ref == 0 {
			// Calibrate against the model: total σ²_N of the
			// RELATIVE jitter at the monitor's small N (thermal-
			// dominated below the corner — the regime the paper
			// prescribes), plus the dithered counter's quantization
			// floor.
			rel := pair.RelativeModel()
			ref = rel.SigmaN2(h.MonitorN) + counter.QuantizationFloor()
		}
		mon, err := onlinetest.New(onlinetest.Config{
			N:          h.MonitorN,
			Window:     h.MonitorWindow,
			RefSigmaN2: ref,
			AlphaLow:   h.AlphaLow,
			AlphaHigh:  h.AlphaHigh,
		})
		if err != nil {
			return err
		}
		s.mon = mon
		s.monCounter = counter
		s.monPair = pair
		s.monScale = counter.PeriodOsc1() / float64(counter.Subdivision())
		s.monPrevQ = counter.NextQ() // arm: first s_N needs a previous Q
		s.monCountdown = h.MonitorEveryBits
	}

	if !h.DisableStartup {
		// The startup test inspects the GATED (post-processed) bit
		// stream — the quality actually delivered — while the tot
		// test keeps watching the raw bits underneath. Startup bits
		// are discarded, per AIS31: no output before the test passes.
		bits := make([]byte, 0, startupBits)
		dry := 0
		for len(bits) < startupBits {
			gated, alarm := s.gateChunk()
			if alarm != ReasonNone {
				s.quarantine(alarm)
				return nil
			}
			if len(gated) == 0 {
				if dry++; dry >= maxDryChunks {
					s.quarantine(ReasonTot)
					return nil
				}
				continue
			}
			dry = 0
			bits = append(bits, gated...)
		}
		verdicts, pass, err := ais31.StartupTest(bits)
		if err != nil {
			return err
		}
		if !pass {
			s.startupFails.Add(1)
			var failed []string
			for _, v := range verdicts {
				if !v.Pass {
					failed = append(failed, v.Name)
				}
			}
			s.pool.emit(obs.Event{Type: obs.TypeStartupFail, Shard: s.index, Lane: obs.Any,
				Epoch: s.epoch.Load(), Value: float64(len(failed)), Detail: strings.Join(failed, ",")})
			s.quarantine(ReasonStartup)
			return nil
		}
	}

	s.reason.Store(int32(ReasonNone))
	s.state.Store(int32(StateHealthy))
	s.pool.emit(obs.Event{Type: obs.TypeStartupPass, Shard: s.index, Lane: obs.Any,
		Epoch: s.epoch.Load()})
	return nil
}

// recalibrate advances the epoch and re-runs calibration: the
// simulation analogue of power-cycling and re-admitting a quarantined
// source. Returns true when the shard came back Healthy.
func (s *Shard) recalibrate() bool {
	epoch := s.epoch.Add(1)
	s.pool.emit(obs.Event{Type: obs.TypeRecalibrate, Shard: s.index, Lane: obs.Any, Epoch: epoch})
	if err := s.calibrate(); err != nil {
		// Construction errors cannot normally happen after epoch 0
		// (same configuration); treat defensively as a failed
		// startup so the shard stays out of service.
		s.startupFails.Add(1)
		s.quarantine(ReasonStartup)
		return false
	}
	if s.State() == StateHealthy {
		s.pool.emit(obs.Event{Type: obs.TypeHeal, Shard: s.index, Lane: obs.Any, Epoch: epoch})
		return true
	}
	return false
}

// quarantine moves the shard out of service: records the reason,
// discards gated-but-unpacked bits and asks the ring to drop
// everything undelivered ("drain").
func (s *Shard) quarantine(r Reason) {
	s.reason.Store(int32(r))
	s.state.Store(int32(StateQuarantined))
	s.quarantines.Add(1)
	stat := s.alarmStat
	s.alarmStat = 0
	switch r {
	case ReasonTot:
		s.totAlarms.Add(1)
	case ReasonThermalLow:
		s.monLow.Add(1)
	case ReasonThermalHigh:
		s.monHigh.Add(1)
	case ReasonLowEntropy:
		s.assessAlarms.Add(1)
	case ReasonLiveEntropy:
		s.liveAlarms.Add(1)
	}
	switch r {
	case ReasonTot, ReasonThermalLow, ReasonThermalHigh, ReasonLowEntropy, ReasonLiveEntropy:
		// Embedded-test alarms get their own event carrying the
		// triggering statistic, ahead of the quarantine they cause.
		s.pool.emit(obs.Event{Type: obs.TypeAlarm, Shard: s.index, Lane: obs.Any,
			Epoch: s.epoch.Load(), Reason: r.String(), Value: stat})
	}
	s.bitbuf, s.bitpos = s.bitbuf[:0], 0
	drained := 0
	if s.ring != nil {
		drained = s.ring.drain()
		s.drainedBytes.Add(uint64(drained))
	}
	s.pool.emit(obs.Event{Type: obs.TypeQuarantine, Shard: s.index, Lane: obs.Any,
		Epoch: s.epoch.Load(), Reason: r.String(), Value: float64(drained)})
	if s.tap != nil {
		// Tapped raw bits of the failed epoch are as suspect as the
		// gated output: discard them so no seed draw ever sees them.
		s.tap.drain()
	}
}

// gateChunk pulls one rawChunk of source bits through the embedded
// tests and the post-processing chain, returning the resulting gated
// bits. A non-None reason means an alarm fired; the chunk is discarded
// and the caller must quarantine.
func (s *Shard) gateChunk() ([]byte, Reason) {
	h := &s.pool.cfg.Health
	raw := s.raw[:rawChunk]
	for i := range raw {
		b := s.src.NextBit() & 1
		raw[i] = b
		if s.tot != nil && s.tot.Push(b) {
			s.alarmStat = float64(h.TotWindow) // the run length that fired
			return nil, ReasonTot
		}
		if s.mon != nil {
			s.monCountdown--
			if s.monCountdown <= 0 {
				s.monCountdown = h.MonitorEveryBits
				q := s.monCounter.NextQ()
				sn := float64(q-s.monPrevQ) * s.monScale
				s.monPrevQ = q
				switch s.mon.Push(sn) {
				case onlinetest.AlarmLow:
					s.alarmStat = s.mon.LastVariance()
					return nil, ReasonThermalLow
				case onlinetest.AlarmHigh:
					s.alarmStat = s.mon.LastVariance()
					return nil, ReasonThermalHigh
				}
			}
		}
	}
	s.rawBits.Add(rawChunk)
	if s.tracker != nil {
		if r := s.collectStream(raw); r != ReasonNone {
			return nil, r
		}
	}
	if !h.DisableAssess {
		if r := s.collectAssessment(raw); r != ReasonNone {
			return nil, r
		}
	}
	if s.tap != nil && s.State() == StateHealthy {
		// Mirror the chunk into the seed tap, packed MSB-first. Only
		// healthy-epoch bits are tapped (startup-test bits are not),
		// and a full tap drops the chunk rather than stalling
		// production: raw bits are not scarce, bounded memory is.
		packed := s.packChunk(raw)
		if s.tap.free() >= len(packed) {
			s.tap.push(packed)
			s.tapBytes.Add(uint64(len(packed)))
		} else {
			s.tapDropped.Add(uint64(len(packed)))
		}
	}
	bits := raw
	for _, st := range s.pool.cfg.Post {
		switch st.Op {
		case PostXOR:
			bits = postproc.XORDecimate(bits, st.K)
		case PostVonNeumann:
			bits = postproc.VonNeumann(bits)
		}
	}
	return bits, ReasonNone
}

// collectAssessment advances the periodic SP 800-90B assessment with
// one raw chunk that already cleared the tot and thermal tests. The
// collector is passive — it copies bits the shard generates anyway, so
// enabling or disabling assessment never changes the output stream.
// When an AssessBits sample completes, the suite runs inline on the
// owner goroutine (an O(AssessBits·log) pause every AssessEveryBits
// raw bits), the report is published, and a suite minimum below the
// configured threshold raises a low-entropy alarm.
func (s *Shard) collectAssessment(raw []byte) Reason {
	h := &s.pool.cfg.Health
	if s.assessWait > 0 {
		s.assessWait -= len(raw)
		return ReasonNone
	}
	need := h.AssessBits - len(s.assessBuf)
	if need > len(raw) {
		s.assessBuf = append(s.assessBuf, raw...)
		return ReasonNone
	}
	s.assessBuf = append(s.assessBuf, raw[:need]...)
	rep, err := sp90b.Assess(s.assessBuf)
	s.assessBuf = s.assessBuf[:0]
	s.assessWait = h.AssessEveryBits
	if err != nil {
		// Unreachable: AssessBits >= sp90b.MinBits is validated at
		// construction. Treat defensively as "no report".
		return ReasonNone
	}
	s.assessRuns.Add(1)
	s.lastAssess.Store(&Assessment{
		Shard:   s.index,
		Epoch:   s.epoch.Load(),
		RawBits: s.rawBits.Load(),
		At:      time.Now(),
		Report:  rep,
	})
	if t := h.AssessMinEntropy; t > 0 && rep.MinEntropy < t {
		s.alarmStat = rep.MinEntropy
		return ReasonLowEntropy
	}
	return ReasonNone
}

// collectStream feeds one raw chunk that already cleared the tot and
// thermal tests into the streaming surveillance tracker. Like the
// batch collector it is passive — it reads bits the shard generates
// anyway, so enabling or disabling streaming never changes the output
// stream. Once the sliding window is full the live report is published
// every chunk, and a live suite minimum below StreamMinEntropy raises
// the mid-window watermark alarm: the event carries the crossing
// itself, the quarantine that follows carries the drain.
func (s *Shard) collectStream(raw []byte) Reason {
	h := &s.pool.cfg.Health
	start := time.Now()
	s.tracker.PushBits(raw)
	rep, ok := s.tracker.Report()
	s.streamCost.Record(time.Since(start) / time.Duration(len(raw)))
	if !ok {
		return ReasonNone
	}
	s.liveAssess.Store(&Assessment{
		Shard:   s.index,
		Epoch:   s.epoch.Load(),
		RawBits: s.rawBits.Load(),
		At:      time.Now(),
		Report:  rep,
	})
	if t := h.StreamMinEntropy; t > 0 && rep.MinEntropy < t {
		s.alarmStat = rep.MinEntropy
		s.pool.emit(obs.Event{Type: obs.TypeLiveWatermark, Shard: s.index, Lane: obs.Any,
			Epoch: s.epoch.Load(), Reason: ReasonLiveEntropy.String(), Value: rep.MinEntropy,
			Detail: fmt.Sprintf("window=%d", h.StreamWindow)})
		return ReasonLiveEntropy
	}
	return ReasonNone
}

// produce fills dst with gated output bytes, advancing the shard's
// stream. It returns the bytes written; a short count means an alarm
// fired and the shard quarantined itself mid-way (the caller must
// treat the whole current block as suspect). Only callable on the
// shard's owner goroutine while Healthy.
func (s *Shard) produce(dst []byte) int {
	n := 0
	dry := 0
	for {
		// Pack whole bytes out of the gated-bit buffer.
		for len(s.bitbuf)-s.bitpos >= 8 && n < len(dst) {
			var b byte
			for _, bit := range s.bitbuf[s.bitpos : s.bitpos+8] {
				b = b<<1 | bit&1
			}
			s.bitpos += 8
			dst[n] = b
			n++
		}
		if n == len(dst) {
			s.bytesOut.Add(uint64(n))
			return n
		}
		if s.injected.Swap(false) {
			s.quarantine(ReasonInjected)
			s.bytesOut.Add(uint64(n))
			return n
		}
		gated, alarm := s.gateChunk()
		if alarm != ReasonNone {
			s.quarantine(alarm)
			s.bytesOut.Add(uint64(n))
			return n
		}
		if len(gated) == 0 {
			dry++
			if dry >= maxDryChunks {
				s.quarantine(ReasonTot)
				s.bytesOut.Add(uint64(n))
				return n
			}
			continue
		}
		dry = 0
		// Compact the consumed prefix (< 8 leftover bits) before
		// appending the fresh chunk, keeping the buffer bounded.
		s.bitbuf = s.bitbuf[:copy(s.bitbuf, s.bitbuf[s.bitpos:])]
		s.bitpos = 0
		s.bitbuf = append(s.bitbuf, gated...)
	}
}

// packChunk packs a raw-bit chunk MSB-first into the shard's tap
// scratch buffer (same layout as postproc.Pack, allocation-free).
func (s *Shard) packChunk(bits []byte) []byte {
	n := (len(bits) + 7) / 8
	if cap(s.tapScratch) < n {
		s.tapScratch = make([]byte, n)
	}
	out := s.tapScratch[:n]
	for i := range out {
		out[i] = 0
	}
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 0x80 >> (i % 8)
		}
	}
	return out
}

// seedEntropy reports whether the shard may currently contribute seed
// material, and at what assessed per-bit min-entropy. Eligibility is
// strict: the shard must be Healthy AND carry a completed SP 800-90B
// assessment of the CURRENT calibration epoch (a report from before
// the last recalibration describes a different source build and does
// not count) whose suite minimum is positive and at least minH. The
// credit is capped at 1 bit/bit.
func (s *Shard) seedEntropy(minH float64) (float64, bool) {
	if s.State() != StateHealthy {
		return 0, false
	}
	a := s.LastAssessment()
	if a == nil || a.Epoch != s.Epoch() {
		return 0, false
	}
	h := a.Report.MinEntropy
	if h <= 0 || h < minH {
		return 0, false
	}
	if h > 1 {
		h = 1
	}
	return h, true
}
