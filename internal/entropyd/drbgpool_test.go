package entropyd

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/conditioner"
)

// drbgTestConfig is the standard scripted-source pool for expansion-
// layer tests: fast assessment duty cycle, seed tap on.
func drbgTestConfig(shards int, seed uint64) Config {
	cfg := Config{
		Shards:       shards,
		Seed:         seed,
		NewSource:    goodScript,
		Health:       assessHealth(0.3),
		SeedTapBytes: 4096,
	}
	return cfg
}

// primeAssessments pushes enough output through the pool that every
// shard completes at least one assessment and its tap holds a draw.
func primeAssessments(t *testing.T, p *Pool) {
	t.Helper()
	buf := make([]byte, p.NumShards()*4096)
	if _, err := p.Fill(buf); err != nil {
		t.Fatalf("prime fill: %v", err)
	}
	for i := 0; i < p.NumShards(); i++ {
		if p.Shard(i).LastAssessment() == nil {
			t.Fatalf("shard %d: no assessment after priming", i)
		}
	}
}

// TestSeedSourceValidation: the tap and the assessment are hard
// prerequisites of the seed path.
func TestSeedSourceValidation(t *testing.T) {
	t.Parallel()
	// No tap configured.
	p, err := New(Config{Shards: 1, NewSource: goodScript, Health: assessHealth(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SeedSource(SeedConfig{}); err == nil {
		t.Error("SeedSource accepted a pool without a tap")
	}
	// Tap without assessment is rejected at pool construction.
	cfg := Config{Shards: 1, NewSource: goodScript, SeedTapBytes: 4096,
		Health: HealthConfig{DisableStartup: true, DisableMonitor: true, DisableAssess: true}}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted a seed tap with assessment disabled")
	}
	// Undersized tap.
	cfg = drbgTestConfig(1, 1)
	cfg.SeedTapBytes = 8
	if _, err := New(cfg); err == nil {
		t.Error("New accepted a tap below one packed raw chunk")
	}
	// Bad seed-source knobs.
	p2, err := New(drbgTestConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.SeedSource(SeedConfig{MinEntropy: 1.5}); err == nil {
		t.Error("entropy floor >= 1 accepted")
	}
	if _, err := p2.SeedSource(SeedConfig{HeadroomBits: -1}); err == nil {
		t.Error("negative headroom accepted")
	}
	// Bad DRBG knobs.
	if _, err := p2.DRBGPool(DRBGConfig{Kind: DRBGKind(9)}); err == nil {
		t.Error("unknown DRBG kind accepted")
	}
	if _, err := p2.DRBGPool(DRBGConfig{BlockBytes: 8}); err == nil {
		t.Error("undersized block accepted")
	}
	if _, err := p2.DRBGPool(DRBGConfig{Personalization: make([]byte, 33)}); err == nil {
		t.Error("oversized personalization accepted")
	}
}

// TestSeedStarvesBeforeFirstAssessment: a fresh pool (healthy, but no
// assessment yet) must NOT hand out seed material — the accounting
// input does not exist.
func TestSeedStarvesBeforeFirstAssessment(t *testing.T) {
	t.Parallel()
	p, err := New(drbgTestConfig(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.SeedSource(SeedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 48)
	if err := src.Seed(seed, -1, 20*time.Millisecond); !errors.Is(err, ErrSeedStarved) {
		t.Fatalf("Seed before assessment: %v, want ErrSeedStarved", err)
	}
	if st := src.Stats(); st.Starves != 1 || st.Draws != 0 {
		t.Errorf("stats after starve: %+v", st)
	}
}

// TestSeedSourceDrawsWithAccounting: once assessed, draws succeed,
// consume tap bytes proportional to the assessed entropy, and the
// material is non-degenerate.
func TestSeedSourceDrawsWithAccounting(t *testing.T) {
	t.Parallel()
	p, err := New(drbgTestConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	primeAssessments(t, p)
	for _, cond := range []conditioner.Func{nil, mustCBCMAC(t)} {
		src, err := p.SeedSource(SeedConfig{Cond: cond})
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 64)
		b := make([]byte, 64)
		if err := src.Seed(a, 0, time.Second); err != nil {
			t.Fatalf("seed draw: %v", err)
		}
		if err := src.Seed(b, 0, time.Second); err != nil {
			t.Fatalf("second draw: %v", err)
		}
		if bytes.Equal(a, b) {
			t.Error("consecutive seed draws identical")
		}
		if bytes.Equal(a, make([]byte, 64)) {
			t.Error("seed draw all zero")
		}
		if st := src.Stats(); st.Draws == 0 {
			t.Errorf("no draws recorded: %+v", st)
		}
	}
	st := p.Stats()
	used := st.Shards[0].SeedBytesUsed + st.Shards[1].SeedBytesUsed
	if used == 0 {
		t.Error("no tap bytes consumed")
	}
	// Per-block draw cost: at assessed h the input is
	// ceil((n_out+64)/h) bits; h is clamped to <= 1, so at least
	// (256+64)/8 = 40 bytes per 256-bit block must have been consumed.
	if used < 40 {
		t.Errorf("tap consumption %d below the minimum vetted draw", used)
	}
}

func mustCBCMAC(t *testing.T) conditioner.Func {
	t.Helper()
	f, err := conditioner.NewCBCMACAES256(nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSeedTapIsPassive: the tap (like the assessment collector) only
// mirrors raw bits — pool output is bit-identical with the tap on and
// off, and draws never perturb the output stream.
func TestSeedTapIsPassive(t *testing.T) {
	t.Parallel()
	fill := func(tap bool, draw bool) []byte {
		cfg := drbgTestConfig(2, 7)
		if !tap {
			cfg.SeedTapBytes = 0
		}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8192)
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
		if draw {
			src, err := p.SeedSource(SeedConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := src.Seed(make([]byte, 96), -1, time.Second); err != nil {
				t.Fatal(err)
			}
		}
		tail := make([]byte, 4096)
		if _, err := p.Fill(tail); err != nil {
			t.Fatal(err)
		}
		return append(buf, tail...)
	}
	base := fill(false, false)
	if !bytes.Equal(base, fill(true, false)) {
		t.Error("enabling the tap changed the output stream")
	}
	if !bytes.Equal(base, fill(true, true)) {
		t.Error("seed draws changed the output stream")
	}
}

// TestDRBGPoolChunkingInvariance: the served DRBG stream is a pure
// function of (config, seed schedule) — one big request and many
// ragged small ones yield the identical byte stream, for both
// mechanisms.
func TestDRBGPoolChunkingInvariance(t *testing.T) {
	t.Parallel()
	for _, kind := range []DRBGKind{DRBGCTR, DRBGHMAC} {
		streams := make([][]byte, 2)
		for v, chunks := range [][]int{{24576}, {1, 255, 4096, 13, 7000, 512, 100, 12587, 12}} {
			p, err := New(drbgTestConfig(3, 11))
			if err != nil {
				t.Fatal(err)
			}
			primeAssessments(t, p)
			dp, err := p.DRBGPool(DRBGConfig{Kind: kind, BlockBytes: 1024})
			if err != nil {
				t.Fatal(err)
			}
			var out []byte
			for _, c := range chunks {
				buf := make([]byte, c)
				n, err := dp.Generate(buf, false, time.Second)
				if err != nil || n != c {
					t.Fatalf("kind %v: Generate(%d) = %d, %v", kind, c, n, err)
				}
				out = append(out, buf...)
			}
			streams[v] = out
		}
		if !bytes.Equal(streams[0], streams[1]) {
			t.Errorf("kind %v: chunked stream differs from whole-request stream", kind)
		}
	}
}

// TestDRBGKindsAndLanesSeparate: the two mechanisms and distinct lanes
// produce unrelated streams (domain separation sanity).
func TestDRBGKindsAndLanesSeparate(t *testing.T) {
	t.Parallel()
	gen := func(kind DRBGKind) []byte {
		p, err := New(drbgTestConfig(2, 13))
		if err != nil {
			t.Fatal(err)
		}
		primeAssessments(t, p)
		dp, err := p.DRBGPool(DRBGConfig{Kind: kind, BlockBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 2048)
		if n, err := dp.Generate(buf, false, time.Second); err != nil || n != len(buf) {
			t.Fatalf("Generate = %d, %v", n, err)
		}
		return buf
	}
	ctr, hm := gen(DRBGCTR), gen(DRBGHMAC)
	if bytes.Equal(ctr, hm) {
		t.Error("CTR and HMAC streams identical")
	}
	// Lane blocks within one stream must differ (per-lane
	// personalization and private seed draws).
	if bytes.Equal(ctr[:512], ctr[512:1024]) {
		t.Error("adjacent lane blocks identical")
	}
}

// TestDRBGPredictionResistance: pr=true forces a fresh conditioned
// seed before every served block — observable as reseed counters
// advancing block-by-block and extra tap consumption.
func TestDRBGPredictionResistance(t *testing.T) {
	t.Parallel()
	p, err := New(drbgTestConfig(2, 17))
	if err != nil {
		t.Fatal(err)
	}
	primeAssessments(t, p)
	dp, err := p.DRBGPool(DRBGConfig{BlockBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Leave a PARTIALLY consumed non-pr block buffered: the pr request
	// must not serve its remainder (that state predates the request).
	if n, err := dp.Generate(make([]byte, 100), false, time.Second); err != nil || n != 100 {
		t.Fatalf("warmup: %d, %v", n, err)
	}
	st0 := dp.Stats()
	buf := make([]byte, 1024)
	if n, err := dp.Generate(buf, true, time.Second); err != nil || n != len(buf) {
		t.Fatalf("pr generate: %d, %v", n, err)
	}
	st1 := dp.Stats()
	wantBlocks := uint64(len(buf) / 256)
	if got := st1.Reseeds - st0.Reseeds; got != wantBlocks {
		t.Errorf("pr reseeds = %d, want %d (one per served block, stale remainder discarded)", got, wantBlocks)
	}
	if st1.Generates-st0.Generates != wantBlocks {
		t.Errorf("pr generates advanced %d, want %d", st1.Generates-st0.Generates, wantBlocks)
	}
}

// TestDRBGReseedUnderQuarantine is the ISSUE-5 fail-closed satellite:
// with EVERY shard quarantined, already-seeded lanes keep serving
// until their reseed interval is exhausted, then the pool fails closed
// with ErrSeedStarved (no stale-seed reuse). Recalibration alone does
// NOT restore service — the new epoch has no assessment yet, and
// pre-quarantine assessments must not count — but once raw bits flow
// and a fresh same-epoch assessment completes, the expansion layer
// heals without intervention.
func TestDRBGReseedUnderQuarantine(t *testing.T) {
	t.Parallel()
	const (
		shards   = 2
		interval = 2
		block    = 1024
	)
	p, err := New(drbgTestConfig(shards, 19))
	if err != nil {
		t.Fatal(err)
	}
	primeAssessments(t, p)
	dp, err := p.DRBGPool(DRBGConfig{ReseedInterval: interval, BlockBytes: block, SeedWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Seed every lane (one block each) while healthy.
	warm := make([]byte, shards*block)
	if n, err := dp.Generate(warm, false, time.Second); err != nil || n != len(warm) {
		t.Fatalf("warmup: %d, %v", n, err)
	}

	// Quarantine the whole pool.
	for i := 0; i < shards; i++ {
		if err := p.InjectAlarm(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Fill(make([]byte, 1024)); !errors.Is(err, ErrStarved) {
		t.Fatalf("fill after injection: %v, want ErrStarved", err)
	}
	if p.Healthy() != 0 {
		t.Fatalf("%d shards still healthy", p.Healthy())
	}

	// The seeded lanes owe at most (interval − 1) more blocks each;
	// the DRBG keeps its §9.3 guarantee until the reseed deadline,
	// then fails closed.
	served := 0
	var genErr error
	for i := 0; i < shards*interval+2; i++ {
		buf := make([]byte, block)
		n, err := dp.Generate(buf, false, 50*time.Millisecond)
		served += n
		if err != nil {
			genErr = err
			break
		}
	}
	if !errors.Is(genErr, ErrSeedStarved) {
		t.Fatalf("generate under total quarantine ended with %v, want ErrSeedStarved", genErr)
	}
	if max := shards * (interval - 1) * block; served > max {
		t.Errorf("served %d bytes after quarantine, deadline allows at most %d", served, max)
	}
	// Fail closed stays closed.
	if n, err := dp.Generate(make([]byte, 64), false, 20*time.Millisecond); err == nil || n != 0 {
		t.Fatalf("post-deadline generate: %d, %v; want 0 bytes and an error", n, err)
	}

	// Recalibration re-admits the shards, but the fresh epoch has no
	// assessment: seed material must still be refused (the previous
	// epoch's assessment describes a torn-down source build).
	if healed := p.Recalibrate(context.Background()); healed != shards {
		t.Fatalf("Recalibrate healed %d, want %d", healed, shards)
	}
	if n, err := dp.Generate(make([]byte, 64), false, 20*time.Millisecond); !errors.Is(err, ErrSeedStarved) || n != 0 {
		t.Fatalf("generate after heal but before assessment: %d, %v; want ErrSeedStarved", n, err)
	}

	// Raw bits flow again; assessments complete; the layer heals.
	primeAssessments(t, p)
	out := make([]byte, shards*block)
	if n, err := dp.Generate(out, false, time.Second); err != nil || n != len(out) {
		t.Fatalf("generate after recovery: %d, %v", n, err)
	}
	st := dp.Stats()
	if st.ReseedFailures == 0 {
		t.Error("no reseed failures recorded across the quarantine")
	}
	for _, l := range st.Lanes {
		if a := p.Shard(l.Shard).LastAssessment(); a == nil || a.Epoch != 1 {
			t.Errorf("lane %d healed without a fresh epoch-1 assessment: %+v", l.Shard, a)
		}
	}
}

// TestDRBGServeMode: the expansion layer rides a SERVING pool — the
// producers' surveillance duty keeps taps and assessments live with
// nothing draining the raw rings — and an injected quarantine during
// service degrades the DRBG pool instead of failing it.
func TestDRBGServeMode(t *testing.T) {
	t.Parallel()
	cfg := drbgTestConfig(2, 23)
	cfg.Health.RecalibrateBackoff = 10 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	dp, err := p.DRBGPool(DRBGConfig{BlockBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Serve-mode producers must assess and fill taps on their own
	// (surveillance duty); allow generous wall time on slow runners.
	deadline := time.Now().Add(30 * time.Second)
	buf := make([]byte, 4096)
	for {
		n, err := dp.Generate(buf, false, 500*time.Millisecond)
		if err == nil && n == len(buf) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drbg output never became available: %d, %v", n, err)
		}
	}
	// Quarantine one shard mid-service: the other lane keeps serving.
	if err := p.InjectAlarm(0); err != nil {
		t.Fatal(err)
	}
	if n, err := dp.Generate(buf, false, 2*time.Second); err != nil || n != len(buf) {
		t.Fatalf("generate with one shard quarantined: %d, %v", n, err)
	}
}
