package entropyd

import (
	"bytes"
	"context"
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/phase"
	"repro/internal/rng"
)

var _ io.Reader = (*Pool)(nil)

// testModel is the paper model with jitter amplified 100× (variances
// ×10⁴): every ratio of the paper's analysis (r_N, corner, N*) is
// preserved, but the eRO-TRNG reaches the well-mixed regime at
// divider 64 instead of ~10⁵, which keeps unit tests fast.
func testModel() phase.Model {
	return core.PaperModel().ScaleJitter(100).Phase
}

// eroConfig is the standard physical test pool: eRO shards with the
// full health battery on a fast monitor cadence.
func eroConfig(shards int, seed uint64) Config {
	return Config{
		Shards: shards,
		Seed:   seed,
		Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 32},
		Health: HealthConfig{MonitorWindow: 16, MonitorEveryBits: 256},
	}
}

// scriptSource emits fair pseudo-random bits until failAfter bits have
// been drawn, then flatlines to constant zeros (a dead source). It
// stands in for the physical generator in health-machine tests that
// do not need oscillator physics.
type scriptSource struct {
	r         *rng.Source
	bias      float64
	n         uint64
	failAfter uint64
}

func (s *scriptSource) NextBit() byte {
	s.n++
	if s.n > s.failAfter {
		return 0
	}
	if s.bias != 0 {
		if s.r.Float64() < 0.5+s.bias {
			return 1
		}
		return 0
	}
	return byte(s.r.Uint64() & 1)
}

// goodScript builds an always-healthy scripted source factory.
func goodScript(_ int, _ int, seed uint64) (RawSource, error) {
	return &scriptSource{r: rng.New(seed), failAfter: math.MaxUint64}, nil
}

func TestFillDeterministicAcrossJobs(t *testing.T) {
	t.Parallel()
	mk := func(jobs int) *Pool {
		cfg := eroConfig(3, 11)
		cfg.Jobs = jobs
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if p.Healthy() != 3 {
			t.Fatalf("jobs=%d: %d/3 shards healthy after startup", jobs, p.Healthy())
		}
		return p
	}
	seq := mk(1)
	par := mk(0)
	a := make([]byte, 2048)
	b := make([]byte, 2048)
	for round := 0; round < 2; round++ {
		if _, err := seq.Fill(a); err != nil {
			t.Fatal(err)
		}
		if _, err := par.Fill(b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("round %d: jobs=1 and jobs=N pool output differ", round)
		}
	}
	// The gated stream must not be degenerate.
	ones := 0
	for _, v := range a {
		for k := 0; k < 8; k++ {
			ones += int(v >> k & 1)
		}
	}
	frac := float64(ones) / float64(8*len(a))
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("output one-fraction %.3f far from 1/2", frac)
	}
}

func TestReadIsStreamOfFill(t *testing.T) {
	t.Parallel()
	p1, err := New(eroConfig(2, 21))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(eroConfig(2, 21))
	if err != nil {
		t.Fatal(err)
	}
	whole := make([]byte, 1024)
	if _, err := p1.Fill(whole); err != nil {
		t.Fatal(err)
	}
	pieces := make([]byte, 1024)
	if _, err := io.ReadFull(p2, pieces[:300]); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(p2, pieces[300:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, pieces) {
		t.Fatal("Read stream diverges from Fill stream")
	}
}

func TestPostprocChains(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		post []PostStage
	}{
		{"xor4", []PostStage{{Op: PostXOR, K: 4}}},
		{"vn", []PostStage{{Op: PostVonNeumann}}},
		{"xor2+vn", []PostStage{{Op: PostXOR, K: 2}, {Op: PostVonNeumann}}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Shards:    2,
				Seed:      5,
				Post:      tc.post,
				Health:    HealthConfig{DisableMonitor: true},
				NewSource: goodScript,
			}
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 1024)
			if n, err := p.Fill(buf); err != nil || n != len(buf) {
				t.Fatalf("Fill = (%d, %v)", n, err)
			}
		})
	}
}

func TestPostValidation(t *testing.T) {
	t.Parallel()
	cfg := Config{Post: []PostStage{{Op: PostXOR, K: 0}}, NewSource: goodScript}
	if _, err := New(cfg); err == nil {
		t.Fatal("xor k=0 accepted")
	}
	cfg = Config{Post: []PostStage{{Op: PostOp(99)}}, NewSource: goodScript}
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown post op accepted")
	}
}

func TestMultiRingSource(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 2,
		Seed:   3,
		Source: SourceConfig{
			Kind:       SourceMultiRing,
			Model:      testModel(),
			Rings:      3,
			SampleRate: testModel().F0 / 50,
		},
		// The multi-ring monitor taps the same per-ring model, so the
		// default calibration applies; startup is skipped only to keep
		// the slowest architecture fast under -race.
		Health: HealthConfig{DisableStartup: true, MonitorWindow: 16, MonitorEveryBits: 256},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill = (%d, %v)", n, err)
	}
	if p.Healthy() != 2 {
		t.Fatalf("healthy = %d", p.Healthy())
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := New(Config{Shards: -1, NewSource: goodScript}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := New(Config{Source: SourceConfig{Kind: SourceKind(7), Model: testModel()}}); err == nil {
		t.Fatal("unknown source kind accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero model accepted")
	}
	if _, err := New(Config{NewSource: goodScript, BufBytes: 16}); err == nil {
		t.Fatal("sub-block ring accepted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards:    2,
		Seed:      9,
		Health:    HealthConfig{DisableMonitor: true},
		NewSource: goodScript,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Healthy != 2 || len(st.Shards) != 2 {
		t.Fatalf("stats: %+v", st)
	}
	var total uint64
	for _, sh := range st.Shards {
		if sh.State != "healthy" {
			t.Fatalf("shard %d state %q", sh.Index, sh.State)
		}
		if sh.RawBits == 0 {
			t.Fatalf("shard %d consumed no raw bits", sh.Index)
		}
		total += sh.BytesOut
	}
	if total < uint64(len(buf)) {
		t.Fatalf("bytes out %d < fill size %d", total, len(buf))
	}
}

func TestInjectAlarmRange(t *testing.T) {
	t.Parallel()
	p, err := New(Config{Shards: 1, NewSource: goodScript, Health: HealthConfig{DisableMonitor: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InjectAlarm(5); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := p.InjectAlarm(0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := p.Fill(buf)
	if err != ErrStarved {
		t.Fatalf("single-shard pool with injected alarm: Fill = (%d, %v), want ErrStarved", n, err)
	}
	if p.Shard(0).LastReason() != ReasonInjected {
		t.Fatalf("reason = %v", p.Shard(0).LastReason())
	}
	// Injecting into an already-quarantined shard must be refused
	// loudly, not silently swallowed by the next recalibration.
	if err := p.InjectAlarm(0); err == nil {
		t.Fatal("alarm injection into quarantined shard accepted")
	}
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("recalibrate healed %d, want 1", healed)
	}
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill after heal = (%d, %v)", n, err)
	}
}

func TestWalkFresh(t *testing.T) {
	t.Parallel()
	a := &Shard{index: 0}
	b := &Shard{index: 2}
	perShard := make([][]span, 3)
	walkFresh([]span{{0, 300}, {700, 300}}, []*Shard{a, b}, perShard)
	// Block budgets carry across spans: shard 0 takes the first 256-
	// byte block, shard 2 the next (44 bytes of span one + 212 of span
	// two), then the rotation returns to shard 0 for the tail.
	want0 := []span{{0, 256}, {912, 88}}
	want2 := []span{{256, 44}, {700, 212}}
	check := func(got, want []span) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %+v want %+v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("got %+v want %+v", got, want)
			}
		}
	}
	check(perShard[0], want0)
	check(perShard[2], want2)
	if perShard[1] != nil {
		t.Fatalf("unassigned shard got %+v", perShard[1])
	}
}

func TestCompact(t *testing.T) {
	t.Parallel()
	dst := []byte{1, 2, 0, 0, 3, 4, 0, 5}
	n := compact(dst, []span{{2, 2}, {6, 1}})
	if n != 5 {
		t.Fatalf("compact length %d", n)
	}
	if !bytes.Equal(dst[:n], []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("compacted %v", dst[:n])
	}
}
