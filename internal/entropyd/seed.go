package entropyd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conditioner"
	"repro/internal/obs"
)

// ErrSeedStarved is returned by SeedSource.Seed (and surfaces through
// DRBGPool.Generate) when no shard can currently supply seed material:
// every shard is quarantined, unassessed in its current epoch, or its
// tap has not yet accumulated a full draw. It is the fail-closed
// signal of the expansion layer — reseed failure is an error, never a
// silent reuse of stale seed material.
var ErrSeedStarved = errors.New("entropyd: no healthy assessed shard can supply seed material")

// seedPoll is the SeedSource's initial re-check delay while a draw is
// short of raw bits (serve-mode producers refill taps continuously).
// Consecutive empty scans back off exponentially with jitter up to
// seedPollMax, so a long starvation (every shard quarantined) costs a
// handful of wakeups instead of a busy 1 ms poll, while the first
// retry still reacts within a millisecond of a tap refill.
const (
	seedPoll    = time.Millisecond
	seedPollMax = 64 * time.Millisecond
)

// SeedConfig parameterizes a SeedSource.
type SeedConfig struct {
	// Cond is the vetted conditioning component (default
	// conditioner.NewHMACSHA256(nil)).
	Cond conditioner.Func
	// HeadroomBits is the extra input min-entropy collected beyond the
	// conditioner's output width, making each output block full-
	// entropy to within 2^-HeadroomBits (default 64, the SP 800-90C
	// margin).
	HeadroomBits int
	// MinEntropy is an optional floor on the assessed per-bit
	// min-entropy a shard must carry to be seed-eligible (default 0:
	// any positive assessment qualifies; pools run with an alarm
	// threshold quarantine low shards anyway).
	MinEntropy float64
}

// SeedSource drains raw bits from the pool's per-shard seed taps
// through a vetted conditioning function into full-entropy seed
// material, with SP 800-90B §3.1.5.1.2 entropy bookkeeping: each
// output block of Cond.OutputBits() bits consumes
// RequiredInputBits(n_out, headroom, h) raw bits from ONE shard, where
// h is that shard's latest same-epoch assessed suite min-entropy. The
// vetted credit formula is re-checked on every draw; a block is only
// emitted when it credits at least 0.999·n_out bits.
//
// Safe for concurrent use (draws are serialized).
type SeedSource struct {
	pool     *Pool
	cond     conditioner.Func
	headroom int
	minH     float64

	mu  sync.Mutex
	rng uint64 // backoff-jitter state (guarded by mu, like the draws)

	draws       atomic.Uint64
	starves     atomic.Uint64
	retryRounds atomic.Uint64
	// retryByPrefer counts backoff rounds per preferred shard (index
	// shard+1; index 0 is the no-preference slot), so each DRBG lane's
	// status can report how often its heal path had to wait.
	retryByPrefer []atomic.Uint64
}

// SeedSourceStats is a point-in-time snapshot of a SeedSource.
type SeedSourceStats struct {
	// Conditioner is the conditioning component name.
	Conditioner string `json:"conditioner"`
	// Draws counts emitted full-entropy blocks; Starves counts draws
	// that timed out with ErrSeedStarved.
	Draws   uint64 `json:"draws"`
	Starves uint64 `json:"starves"`
	// RetryRounds counts backoff rounds: scans that found no eligible
	// shard and slept before retrying.
	RetryRounds uint64 `json:"retry_rounds"`
}

// SeedSource builds a seed source over the pool's taps. The pool must
// have been configured with SeedTapBytes > 0 (and therefore with the
// assessment enabled).
func (p *Pool) SeedSource(cfg SeedConfig) (*SeedSource, error) {
	if p.cfg.SeedTapBytes == 0 {
		return nil, errors.New("entropyd: pool has no seed tap (Config.SeedTapBytes)")
	}
	if cfg.Cond == nil {
		cfg.Cond = conditioner.NewHMACSHA256(nil)
	}
	if cfg.HeadroomBits == 0 {
		cfg.HeadroomBits = 64
	}
	if cfg.HeadroomBits < 0 {
		return nil, fmt.Errorf("entropyd: negative seed headroom %d", cfg.HeadroomBits)
	}
	if cfg.MinEntropy < 0 || cfg.MinEntropy >= 1 {
		return nil, fmt.Errorf("entropyd: seed entropy floor %g out of [0, 1)", cfg.MinEntropy)
	}
	if cfg.Cond.OutputBits()%8 != 0 || cfg.Cond.OutputBits() < 64 {
		return nil, fmt.Errorf("entropyd: conditioner output %d bits unusable", cfg.Cond.OutputBits())
	}
	return &SeedSource{
		pool:          p,
		cond:          cfg.Cond,
		headroom:      cfg.HeadroomBits,
		minH:          cfg.MinEntropy,
		rng:           p.cfg.Seed ^ 0x9e3779b97f4a7c15 | 1,
		retryByPrefer: make([]atomic.Uint64, len(p.shards)+1),
	}, nil
}

// Stats snapshots the source counters.
func (s *SeedSource) Stats() SeedSourceStats {
	return SeedSourceStats{
		Conditioner: s.cond.Name(),
		Draws:       s.draws.Load(),
		Starves:     s.starves.Load(),
		RetryRounds: s.retryRounds.Load(),
	}
}

// RetryRounds returns the backoff rounds spent on draws preferring the
// given shard (-1: draws with no preference).
func (s *SeedSource) RetryRounds(prefer int) uint64 {
	if prefer < 0 || prefer >= len(s.retryByPrefer)-1 {
		return s.retryByPrefer[0].Load()
	}
	return s.retryByPrefer[prefer+1].Load()
}

// Seed fills dst with full-entropy seed material, drawing conditioner
// blocks from eligible shards. prefer names the shard tried first on
// every block (lane affinity; -1 for none) — other shards are fallback
// in index order, so a quarantined lane shard degrades to pool-level
// seeding instead of failing while the pool is healthy. Waits up to
// wait for raw bits to accumulate; fails closed with ErrSeedStarved
// (dst is zeroed) when the deadline passes without an eligible shard
// completing a draw.
func (s *SeedSource) Seed(dst []byte, prefer int, wait time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	deadline := time.Now().Add(wait)
	for off := 0; off < len(dst); {
		block, err := s.drawBlock(prefer, deadline)
		if err != nil {
			for i := range dst {
				dst[i] = 0
			}
			return err
		}
		off += copy(dst[off:], block)
	}
	return nil
}

// drawBlock produces one conditioned output block from the first
// eligible shard, preferring the given shard index.
func (s *SeedSource) drawBlock(prefer int, deadline time.Time) ([]byte, error) {
	nOut := s.cond.OutputBits()
	shards := s.pool.shards
	start := 0
	retrySlot := 0
	if prefer >= 0 && prefer < len(shards) {
		start = prefer
		retrySlot = prefer + 1
	}
	delay := seedPoll
	for {
		for k := 0; k < len(shards); k++ {
			sh := shards[(start+k)%len(shards)]
			// Clear any pending quarantine drain first, even on
			// ineligible shards: doomed bytes below the watermark
			// occupy tap space the producer cannot reuse until the
			// consumer side moves past them.
			sh.tap.applyDrain()
			h, ok := sh.seedEntropy(s.minH)
			if !ok {
				continue
			}
			nIn, err := conditioner.RequiredInputBits(nOut, s.headroom, h)
			if err != nil {
				continue
			}
			nBytes := (nIn + 7) / 8
			if nBytes > sh.tap.capacity() {
				// This shard's assessed entropy is so low that a full
				// draw never fits its tap; it cannot seed.
				continue
			}
			if sh.tap.buffered() < nBytes {
				continue
			}
			buf := make([]byte, nBytes)
			if got := sh.tap.pop(buf); got < nBytes {
				// A quarantine drain raced the draw; the popped
				// prefix is suspect — discard it and move on.
				continue
			}
			if sh.State() != StateHealthy {
				// Quarantined between the eligibility check and the
				// pop: treat the bytes as drained.
				continue
			}
			// Re-check the vetted credit with the actual draw size
			// (defensive: RequiredInputBits already guarantees it).
			nBits := 8 * nBytes
			credit := conditioner.VettedEntropy(nBits, nOut, s.cond.NarrowestBits(), h*float64(nBits))
			if credit < 0.999*float64(nOut) {
				continue
			}
			sh.seedBytes.Add(uint64(nBytes))
			s.draws.Add(1)
			s.pool.emit(obs.Event{Type: obs.TypeSeedDraw, Shard: sh.index, Lane: obs.Any,
				Epoch: sh.Epoch(), Value: credit})
			return s.cond.Condition(buf), nil
		}
		if !time.Now().Before(deadline) {
			s.starves.Add(1)
			return nil, ErrSeedStarved
		}
		// Bounded exponential backoff with jitter: sleep a uniform
		// draw from [delay/2, delay), clamped to the deadline, then
		// double delay up to seedPollMax. Jitter decorrelates lanes
		// that starved together so their retries don't thunder in
		// lockstep once a tap refills.
		s.retryRounds.Add(1)
		s.retryByPrefer[retrySlot].Add(1)
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		sleep := delay/2 + time.Duration(s.rng%uint64(delay/2))
		if until := time.Until(deadline); sleep > until {
			sleep = until
		}
		time.Sleep(sleep)
		if delay *= 2; delay > seedPollMax {
			delay = seedPollMax
		}
	}
}
