package entropyd

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// leapConfig is a pool at the paper's CALIBRATED physics (amp = 1 —
// the honest model PR 2 had to amplify away) on the leapfrog fast
// path, with a mid-size divider so every bit's window genuinely jumps.
// The startup test is skipped to keep the health machinery out of the
// timing budget; tot and thermal monitor stay armed.
func leapConfig(shards int, seed uint64) Config {
	return Config{
		Shards: shards,
		Seed:   seed,
		Source: SourceConfig{
			Kind:     SourceERO,
			Model:    core.PaperModel().Phase,
			Divider:  2048,
			Mismatch: 2e-3,
			Leapfrog: true,
		},
		Health: HealthConfig{DisableStartup: true, MonitorWindow: 16},
	}
}

// TestLeapfrogFillDeterministicAcrossJobsAndChunking pins the pool
// determinism contract on the fast path: with leapfrog shard sources,
// pool output is a pure function of (Config, Seed) — bit-identical
// across worker-pool widths AND across request chunkings.
func TestLeapfrogFillDeterministicAcrossJobsAndChunking(t *testing.T) {
	const total = 2048
	ref := make([]byte, total)
	{
		p, err := New(leapConfig(3, 42))
		if err != nil {
			t.Fatal(err)
		}
		if n, err := p.Fill(ref); err != nil || n != total {
			t.Fatalf("reference fill: n=%d err=%v", n, err)
		}
	}
	for _, jobs := range []int{1, 4} {
		cfg := leapConfig(3, 42)
		cfg.Jobs = jobs
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, total)
		// Deliberately ragged request chunking.
		for off, chunks := 0, []int{1, 100, 255, 256, total}; off < total; {
			k := chunks[0]
			chunks = append(chunks[1:], total)
			if off+k > total {
				k = total - off
			}
			if n, err := p.Fill(got[off : off+k]); err != nil || n != k {
				t.Fatalf("jobs=%d: fill(%d) at %d: n=%d err=%v", jobs, k, off, n, err)
			}
			off += k
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("jobs=%d: leapfrog pool stream differs from reference", jobs)
		}
	}
}

// TestLeapfrogServeProductionRace is the -race witness for leapfrog
// production inside shards: per-shard producer goroutines generate via
// the fast path while a consumer drains ReadBuffered and another
// goroutine polls Stats — the full daemon interleaving.
func TestLeapfrogServeProductionRace(t *testing.T) {
	p, err := New(leapConfig(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			p.Stats()
			time.Sleep(time.Millisecond)
		}
	}()
	buf := make([]byte, 4096)
	for off := 0; off < len(buf); {
		n, err := p.ReadBuffered(buf[off:], 30*time.Second)
		if err != nil {
			t.Fatalf("ReadBuffered at %d: %v", off, err)
		}
		off += n
	}
	<-done
	if allZero(buf) {
		t.Fatal("served leapfrog stream is all zeros")
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
