package entropyd

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sp90b"
)

// fadeSource emits fair PRNG bits, then fades into the deterministic
// 0101… pattern after a set number of bits: balanced (tot never fires,
// bias checks stay blind) but zero-entropy — the class only the
// SP 800-90B layer catches, here with a known onset for latency
// assertions.
type fadeSource struct {
	r     *rng.Source
	after uint64
	n     uint64
}

func (f *fadeSource) NextBit() byte {
	f.n++
	if f.n > f.after {
		return byte(f.n & 1)
	}
	return byte(f.r.Uint64() & 1)
}

// streamHealth is the streaming-surveillance test config: no
// physics-dependent monitor, no startup test, batch assessment off so
// every verdict in these tests is the streaming tracker's.
func streamHealth(threshold float64) HealthConfig {
	return HealthConfig{
		DisableStartup:   true,
		DisableMonitor:   true,
		DisableAssess:    true,
		StreamWindow:     sp90b.MinBits,
		StreamMinEntropy: threshold,
	}
}

// TestStreamingPublishesLiveAssessments: with streaming alongside the
// batch assessment, a healthy pool publishes continuously refreshed
// live reports with sensible bounds and bookkeeping, without alarming.
func TestStreamingPublishesLiveAssessments(t *testing.T) {
	t.Parallel()
	h := assessHealth(0.3)
	h.StreamWindow = sp90b.MinBits
	h.StreamMinEntropy = 0.3
	p, err := New(Config{Shards: 2, Seed: 5, NewSource: goodScript, Health: h})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16384)
	if _, err := p.Fill(buf); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	for i, sh := range st.Shards {
		if sh.LiveAlarms != 0 {
			t.Fatalf("shard %d: %d live alarms on a good source", i, sh.LiveAlarms)
		}
		if sh.LiveAgeSeconds < 0 {
			t.Fatalf("shard %d: no live report after %d raw bits", i, sh.RawBits)
		}
		// The cheap six-estimator minimum on a fair PRNG stream sits
		// well above any plausible watermark.
		if sh.LiveMinEntropy < 0.5 {
			t.Fatalf("shard %d: live min-entropy %.4f < 0.5 on a fair source", i, sh.LiveMinEntropy)
		}
		if sh.StreamNsPerBit <= 0 {
			t.Fatalf("shard %d: surveillance cost not recorded", i)
		}
		a := p.Shard(i).LiveAssessment()
		if a == nil {
			t.Fatalf("shard %d: no live assessment", i)
		}
		if a.Shard != i || a.Epoch != 0 || a.Report.Bits != sp90b.MinBits {
			t.Fatalf("shard %d: live assessment metadata %+v", i, a)
		}
		if len(a.Report.Estimates) != 6 {
			t.Fatalf("shard %d: live report has %d estimates, want 6", i, len(a.Report.Estimates))
		}
		if a.Report.MinEntropy != sh.LiveMinEntropy {
			t.Fatalf("shard %d: stats live min %.4f != report %.4f", i, sh.LiveMinEntropy, a.Report.MinEntropy)
		}
		if a.RawBits < uint64(sp90b.MinBits) || a.RawBits > sh.RawBits {
			t.Fatalf("shard %d: live raw-bit tag %d outside (0, %d]", i, a.RawBits, sh.RawBits)
		}
		if snap := p.Shard(i).StreamCost(); snap == nil || snap.Count() == 0 {
			t.Fatalf("shard %d: empty surveillance-cost histogram", i)
		}
		// Batch assessment keeps running as the deep pass.
		if sh.AssessRuns == 0 {
			t.Fatalf("shard %d: batch assessment stopped while streaming", i)
		}
	}
}

// TestStreamingIsPassive: the tracker only reads raw bits, so the pool
// output stream is bit-identical with streaming enabled, disabled, and
// across worker counts — the same pin the PR-4 batch collector carries.
func TestStreamingIsPassive(t *testing.T) {
	t.Parallel()
	fill := func(h HealthConfig, jobs int) []byte {
		cfg := Config{Shards: 3, Seed: 21, NewSource: goodScript, Health: h, Jobs: jobs}
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 12288)
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	on := fill(streamHealth(0), 1)
	off := streamHealth(0)
	off.StreamWindow = 0
	if !bytes.Equal(on, fill(off, 1)) {
		t.Fatal("streaming surveillance changed the output stream")
	}
	if !bytes.Equal(on, fill(streamHealth(0), 4)) {
		t.Fatal("streaming surveillance broke jobs-width determinism")
	}
}

// TestStreamingWatermarkDrill drills the mid-window low-watermark: a
// shard fades to the zero-entropy 0101… pattern at a known raw-bit
// onset, the live bound crosses the watermark and quarantines the
// shard with ReasonLiveEntropy WITHOUT waiting for a batch sample
// boundary — the journal shows the live-watermark event, the alarm,
// the quarantine, and the paired detection latency for the class.
func TestStreamingWatermarkDrill(t *testing.T) {
	t.Parallel()
	const onset = 20000
	j := NewTestJournal()
	cfg := Config{
		Shards: 2,
		Seed:   9,
		Sink:   j,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			if shard == 0 && epoch == 0 {
				return &fadeSource{r: rng.New(seed), after: onset}, nil
			}
			return goodScript(shard, epoch, seed)
		},
		Health: streamHealth(0.3),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attack.Mark(j, 0, nil) // drill armed: clock starts
	buf := make([]byte, 4096)
	for i := 0; i < 16 && p.Shard(0).State() == StateHealthy; i++ {
		if _, err := p.Fill(buf); err != nil {
			t.Fatal(err)
		}
	}
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined || s0.LastReason() != ReasonLiveEntropy {
		t.Fatalf("shard 0: state %v reason %v, want quarantined/live-low-entropy", s0.State(), s0.LastReason())
	}
	// Mid-window: the degradation was caught before one full sliding
	// window of degraded bits had even accumulated.
	if got := s0.RawBits(); got > onset+uint64(sp90b.MinBits) {
		t.Errorf("caught at raw bit %d, more than a window past the %d onset", got, onset)
	}
	if got := p.Stats().Shards[0].LiveAlarms; got != 1 {
		t.Errorf("live alarms = %d, want 1", got)
	}

	// Journal story: live-watermark (with the crossing value), then the
	// alarm, then the quarantine, all under the live-low-entropy class.
	q := obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeLiveWatermark
	marks, _ := j.Events(q)
	if len(marks) != 1 {
		t.Fatalf("live-watermark events = %d, want 1", len(marks))
	}
	if v := marks[0].Value; v < 0 || v >= 0.3 {
		t.Errorf("watermark value %v, want live min-entropy in [0, 0.3)", v)
	}
	q = obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeAlarm
	alarms, _ := j.Events(q)
	if len(alarms) != 1 || alarms[0].Reason != "live-low-entropy" {
		t.Fatalf("alarm events: %+v, want one live-low-entropy", alarms)
	}
	q = obs.NewQuery()
	q.Shard = 0
	q.Type = obs.TypeQuarantine
	q.Since = marks[0].Seq
	quars, _ := j.Events(q)
	if len(quars) != 1 || quars[0].Reason != "live-low-entropy" {
		t.Fatalf("quarantine after watermark: %+v", quars)
	}
	// The marker→quarantine pairing lands in the PR-7 detection-latency
	// histogram under the new class.
	snap, ok := j.DetectionLatencies()["live-low-entropy"]
	if !ok || snap.Count() != 1 {
		t.Fatalf("live-low-entropy detection latency not recorded: %v", j.DetectionLatencies())
	}
}

// TestStreamingResetOnRecalibrate: the sliding window must not mix
// bits across a rebuild — after a heal the live report disappears
// until a full window of the NEW epoch has been observed.
func TestStreamingResetOnRecalibrate(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 1,
		Seed:   13,
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			if epoch == 0 {
				return &fadeSource{r: rng.New(seed), after: 15000}, nil
			}
			return goodScript(shard, epoch, seed)
		},
		Health: streamHealth(0.3),
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := 0; i < 16 && p.Shard(0).State() == StateHealthy; i++ {
		p.Fill(buf)
	}
	if p.Shard(0).State() != StateQuarantined {
		t.Fatal("epoch-0 degradation not caught")
	}
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("Recalibrate healed %d shards, want 1", healed)
	}
	if a := p.Shard(0).LiveAssessment(); a != nil {
		t.Fatalf("stale live assessment survived recalibration: %+v", a)
	}
	if _, err := p.Fill(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	a := p.Shard(0).LiveAssessment()
	if a == nil {
		t.Fatal("no live assessment after a full window of the new epoch")
	}
	if a.Epoch != 1 || a.Report.MinEntropy < 0.5 {
		t.Fatalf("post-heal live assessment: %+v, want epoch 1 and a healthy bound", a)
	}
}

// TestStreamConfigValidation guards the streaming health knobs.
func TestStreamConfigValidation(t *testing.T) {
	t.Parallel()
	cfg := Config{NewSource: goodScript, Health: streamHealth(0)}
	cfg.Health.StreamWindow = sp90b.MinBits - 1
	if _, err := New(cfg); err == nil {
		t.Error("undersized StreamWindow accepted")
	}
	cfg = Config{NewSource: goodScript, Health: streamHealth(0)}
	cfg.Health.StreamPanes = 3 // does not divide 10000
	if _, err := New(cfg); err == nil {
		t.Error("non-dividing pane count accepted")
	}
	cfg = Config{NewSource: goodScript, Health: streamHealth(1.5)}
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range watermark accepted")
	}
	// Streaming off skips the validation entirely.
	cfg = Config{NewSource: goodScript, Health: HealthConfig{DisableStartup: true, DisableMonitor: true, StreamPanes: 3}}
	if _, err := New(cfg); err != nil {
		t.Errorf("disabled streaming still validated: %v", err)
	}
}

// TestServeStreamingStress runs a serving pool with the inline tracker
// enabled while consumers and status pollers hammer it — the -race
// pin on the live-assessment publication path.
func TestServeStreamingStress(t *testing.T) {
	t.Parallel()
	h := streamHealth(0)
	p, err := New(Config{Shards: 2, Seed: 17, NewSource: goodScript, Health: h, BufBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := p.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := p.Stats()
				for i := range st.Shards {
					p.Shard(i).LiveAssessment()
					p.Shard(i).StreamCost()
				}
			}
		}()
	}
	out := make([]byte, 24*1024)
	got := 0
	for got < len(out) {
		n, err := p.ReadBuffered(out[got:], time.Second)
		if err != nil {
			t.Fatalf("ReadBuffered after %d bytes: %v", got, err)
		}
		got += n
	}
	close(done)
	wg.Wait()
	// Enough raw bits flowed for every shard to carry a live report.
	for i := 0; i < p.NumShards(); i++ {
		if p.Shard(i).LiveAssessment() == nil {
			t.Errorf("shard %d served %d bytes without a live assessment", i, got)
		}
	}
}
