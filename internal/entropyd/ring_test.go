package entropyd

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

func TestRingBasic(t *testing.T) {
	t.Parallel()
	r := newRing(16)
	if r.capacity() != 16 {
		t.Fatalf("capacity %d", r.capacity())
	}
	r.push([]byte{1, 2, 3})
	if r.buffered() != 3 || r.free() != 13 {
		t.Fatalf("buffered %d free %d", r.buffered(), r.free())
	}
	out := make([]byte, 8)
	if n := r.pop(out); n != 3 || !bytes.Equal(out[:3], []byte{1, 2, 3}) {
		t.Fatalf("pop %d %v", n, out[:n])
	}
	if n := r.pop(out); n != 0 {
		t.Fatalf("pop on empty = %d", n)
	}
}

func TestRingWraparound(t *testing.T) {
	t.Parallel()
	r := newRing(8)
	out := make([]byte, 8)
	v := byte(0)
	for round := 0; round < 40; round++ {
		chunk := make([]byte, 5)
		for i := range chunk {
			chunk[i] = v
			v++
		}
		r.push(chunk)
		if n := r.pop(out[:5]); n != 5 {
			t.Fatalf("round %d: pop %d", round, n)
		}
		for i := 0; i < 5; i++ {
			if out[i] != v-5+byte(i) {
				t.Fatalf("round %d: byte %d = %d", round, i, out[i])
			}
		}
	}
}

func TestRingDrainWatermark(t *testing.T) {
	t.Parallel()
	r := newRing(32)
	r.push([]byte{1, 2, 3, 4})
	if n := r.drain(); n != 4 {
		t.Fatalf("drain reported %d", n)
	}
	// Post-drain production must be delivered; pre-drain must not.
	r.push([]byte{9, 8})
	out := make([]byte, 8)
	if n := r.pop(out); n != 2 || out[0] != 9 || out[1] != 8 {
		t.Fatalf("pop after drain: %d %v", n, out[:n])
	}
	// Draining an empty ring is a no-op.
	if n := r.drain(); n != 0 {
		t.Fatalf("empty drain reported %d", n)
	}
}

// TestRingSPSCStream runs a producer and a consumer concurrently (the
// serve-mode topology) and asserts the consumer observes the exact
// produced byte stream — no tearing, duplication or reordering. Run
// under -race this also validates the ring's memory ordering.
func TestRingSPSCStream(t *testing.T) {
	t.Parallel()
	const total = 1 << 16
	r := newRing(1 << 10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 97) // deliberately not a divisor of the capacity
		v := byte(0)
		sent := 0
		for sent < total {
			n := r.free()
			if n == 0 {
				runtime.Gosched()
				continue
			}
			if n > len(chunk) {
				n = len(chunk)
			}
			if n > total-sent {
				n = total - sent
			}
			for i := 0; i < n; i++ {
				chunk[i] = v
				v++
			}
			r.push(chunk[:n])
			sent += n
		}
	}()
	got := 0
	want := byte(0)
	buf := make([]byte, 131)
	for got < total {
		n := r.pop(buf)
		if n == 0 {
			runtime.Gosched()
		}
		for i := 0; i < n; i++ {
			if buf[i] != want {
				t.Fatalf("byte %d: got %d want %d", got+i, buf[i], want)
			}
			want++
		}
		got += n
	}
	wg.Wait()
	if r.buffered() != 0 {
		t.Fatalf("leftover %d", r.buffered())
	}
}

// TestRingSPSCWithDrains interleaves producer-side drains with
// concurrent consumption. The invariant: the delivered stream is a
// monotone subsequence of the produced counter stream — values only
// ever jump FORWARD (by at most the ring capacity, the most a drain
// can discard), never repeat or go back.
func TestRingSPSCWithDrains(t *testing.T) {
	t.Parallel()
	const total = 1 << 15
	const capa = 256
	r := newRing(capa)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		chunk := make([]byte, 64)
		v := byte(0)
		for sent := 0; sent < total; {
			if sent%7937 == 0 && sent > 0 {
				r.drain()
			}
			n := r.free()
			if n == 0 {
				runtime.Gosched()
				continue
			}
			if n > len(chunk) {
				n = len(chunk)
			}
			if n > total-sent {
				n = total - sent
			}
			for i := 0; i < n; i++ {
				chunk[i] = v
				v++
			}
			r.push(chunk[:n])
			sent += n
		}
	}()
	buf := make([]byte, 50)
	virtual := 0 // position in the produced stream, inferred mod-256
	last := byte(0)
	first := true
	delivered := 0
	for {
		n := r.pop(buf)
		if n == 0 {
			if virtual >= total-capa && r.buffered() == 0 {
				// Producer may have finished; one final check.
				if r.pop(buf[:1]) == 0 {
					break
				}
			}
			runtime.Gosched()
			continue
		}
		for i := 0; i < n; i++ {
			b := buf[i]
			if first {
				virtual = int(b) + 1
				first = false
			} else {
				// Forward step in [1, 256], uniquely decodable
				// because a drain can discard at most capa ≤ 256
				// bytes and contiguous delivery steps by exactly 1.
				step := int(b-last-1)%256 + 1
				virtual += step
			}
			last = b
			delivered++
		}
		if virtual > total {
			t.Fatalf("virtual position %d beyond produced %d", virtual, total)
		}
	}
	wg.Wait()
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
}
