package entropyd

import (
	"fmt"

	"repro/internal/multiring"
	"repro/internal/phase"
	"repro/internal/trng"
)

// RawSource is the digitized noise source a shard draws raw (das) bits
// from. Both generator architectures of the repository satisfy it:
// *trng.Generator (the paper's Fig. 4 eRO-TRNG) and
// *multiring.Generator (the Sunar-style multi-ring TRNG of §II).
type RawSource interface {
	NextBit() byte
}

// SourceKind selects the generator architecture behind a shard.
type SourceKind int

// Supported generator architectures.
const (
	// SourceERO is the elementary ring-oscillator TRNG (internal/trng).
	SourceERO SourceKind = iota
	// SourceMultiRing is the Sunar multi-ring TRNG (internal/multiring).
	SourceMultiRing
)

// String names the kind.
func (k SourceKind) String() string {
	switch k {
	case SourceERO:
		return "ero"
	case SourceMultiRing:
		return "multiring"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// SourceConfig describes the entropy source instantiated per shard.
// Model is the PER-RING phase-noise model (as in trng.Config and
// multiring.Config); the relative jitter of an oscillator pair doubles
// the coefficients.
type SourceConfig struct {
	// Kind selects the architecture; default SourceERO.
	Kind SourceKind
	// Model is the per-ring phase-noise model. Required (pool
	// construction fails on the zero value: the health calibration
	// needs physical coefficients).
	Model phase.Model
	// Divider is the eRO sampling divider K (default 64).
	Divider int
	// Mismatch is the eRO relative frequency mismatch (default 0).
	Mismatch float64
	// Rings is the multi-ring ring count R (default 8).
	Rings int
	// SampleRate is the multi-ring output bit rate in Hz
	// (default Model.F0/64).
	SampleRate float64
	// Spread is the multi-ring relative frequency spread
	// (default 2e-3).
	Spread float64
	// Leapfrog runs every shard source on the O(1)-per-window fast
	// path (trng.Config.Leapfrog / multiring.Config.Leapfrog): the
	// cost of a raw bit becomes independent of the sampling divider,
	// which is what lets a pool serve the paper's calibrated physics
	// (amp = 1, K ≈ 10⁵ periods per bit) at real throughput. Streams
	// stay deterministic in (Config, Seed) and invariant to request
	// chunking and worker counts; they are distribution-exact but not
	// bit-identical to the edge-level reference realization.
	Leapfrog bool
}

// withDefaults fills zero fields.
func (c SourceConfig) withDefaults() SourceConfig {
	if c.Divider == 0 {
		c.Divider = 64
	}
	if c.Rings == 0 {
		c.Rings = 8
	}
	if c.SampleRate == 0 {
		c.SampleRate = c.Model.F0 / 64
	}
	if c.Spread == 0 {
		c.Spread = 2e-3
	}
	return c
}

// validate checks the configuration.
func (c SourceConfig) validate() error {
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("entropyd: source model: %w", err)
	}
	switch c.Kind {
	case SourceERO, SourceMultiRing:
		return nil
	default:
		return fmt.Errorf("entropyd: unknown source kind %d", int(c.Kind))
	}
}

// newSource builds one generator instance for the given seed.
func (c SourceConfig) newSource(seed uint64) (RawSource, error) {
	switch c.Kind {
	case SourceERO:
		return trng.New(trng.Config{
			Model:    c.Model,
			Divider:  c.Divider,
			Mismatch: c.Mismatch,
			Seed:     seed,
			Leapfrog: c.Leapfrog,
		})
	case SourceMultiRing:
		return multiring.New(multiring.Config{
			Model:          c.Model,
			Rings:          c.Rings,
			SampleRate:     c.SampleRate,
			RelativeSpread: c.Spread,
			Seed:           seed,
			Leapfrog:       c.Leapfrog,
		})
	default:
		return nil, fmt.Errorf("entropyd: unknown source kind %d", int(c.Kind))
	}
}
