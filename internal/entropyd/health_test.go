package entropyd

import (
	"context"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/osc"
	"repro/internal/rng"
)

// TestHealthCycleTot drives a shard through the full state machine on
// the total-failure path: healthy → tot alarm (source flatlines) →
// quarantined (mid-fill, with the pool degrading instead of failing) →
// recalibration → healthy again.
func TestHealthCycleTot(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 2,
		Seed:   7,
		Health: HealthConfig{DisableMonitor: true, TotWindow: 64},
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			fail := uint64(math.MaxUint64)
			if shard == 0 && epoch == 0 {
				// Dies 3000 bits into service (after the startup
				// test consumed its 20000).
				fail = startupBits + 3000
			}
			return &scriptSource{r: rng.New(seed), failAfter: fail}, nil
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Healthy() != 2 {
		t.Fatalf("healthy = %d before failure", p.Healthy())
	}

	// The fill must complete despite shard 0 dying mid-way: its blocks
	// are redistributed to shard 1.
	buf := make([]byte, 2048)
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill during failure = (%d, %v)", n, err)
	}
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined {
		t.Fatalf("shard 0 state = %v, want quarantined", s0.State())
	}
	if s0.LastReason() != ReasonTot {
		t.Fatalf("shard 0 reason = %v, want tot", s0.LastReason())
	}
	if p.Healthy() != 1 {
		t.Fatalf("healthy = %d after tot alarm", p.Healthy())
	}
	st := p.Stats()
	if st.Shards[0].TotAlarms != 1 || st.Shards[0].Quarantines != 1 {
		t.Fatalf("shard 0 stats: %+v", st.Shards[0])
	}

	// Recalibration: epoch 1 rebuilds the source (healthy in the
	// script), reruns the startup test and re-admits the shard.
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("recalibrate healed %d shards, want 1", healed)
	}
	if s0.State() != StateHealthy || s0.Epoch() != 1 {
		t.Fatalf("shard 0 after heal: state %v epoch %d", s0.State(), s0.Epoch())
	}
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill after heal = (%d, %v)", n, err)
	}
	if p.Healthy() != 2 {
		t.Fatalf("healthy = %d after heal", p.Healthy())
	}
}

// TestStartupGate verifies that a shard whose output fails the AIS31
// startup test is never admitted, while the rest of the pool serves.
func TestStartupGate(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 3,
		Seed:   13,
		Health: HealthConfig{DisableMonitor: true},
		NewSource: func(shard, epoch int, seed uint64) (RawSource, error) {
			s := &scriptSource{r: rng.New(seed), failAfter: math.MaxUint64}
			if shard == 1 && epoch == 0 {
				// 60/40 bias: passes the tot test (no long runs)
				// but flunks T1 monobit decisively.
				s.bias = 0.10
			}
			return s, nil
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1 := p.Shard(1)
	if s1.State() != StateQuarantined || s1.LastReason() != ReasonStartup {
		t.Fatalf("shard 1: state %v reason %v, want quarantined/startup", s1.State(), s1.LastReason())
	}
	if p.Stats().Shards[1].StartupFailures != 1 {
		t.Fatalf("startup failures: %+v", p.Stats().Shards[1])
	}
	buf := make([]byte, 1024)
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("degraded Fill = (%d, %v)", n, err)
	}
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("healed %d, want 1", healed)
	}
	if p.Healthy() != 3 {
		t.Fatalf("healthy = %d after heal", p.Healthy())
	}
}

// TestVonNeumannStarvationGuard: a stuck source behind a von Neumann
// corrector yields no gated bits at all; with the tot test disabled the
// dry-chunk cutoff must still quarantine instead of spinning forever.
func TestVonNeumannStarvationGuard(t *testing.T) {
	t.Parallel()
	cfg := Config{
		Shards: 1,
		Post:   []PostStage{{Op: PostVonNeumann}},
		Health: HealthConfig{DisableMonitor: true, DisableTot: true, DisableStartup: true},
		NewSource: func(_, epoch int, seed uint64) (RawSource, error) {
			if epoch == 0 {
				return &scriptSource{r: rng.New(seed), failAfter: 0}, nil // stuck from bit 0
			}
			return goodScript(0, epoch, seed)
		},
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if n, err := p.Fill(buf); err != ErrStarved || n != 0 {
		t.Fatalf("Fill on stuck VN source = (%d, %v), want (0, ErrStarved)", n, err)
	}
	if s := p.Shard(0); s.State() != StateQuarantined || s.LastReason() != ReasonTot {
		t.Fatalf("state %v reason %v", s.State(), s.LastReason())
	}
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("healed %d", healed)
	}
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill after heal = (%d, %v)", n, err)
	}
}

// thermalConfig builds a pool whose shards use cheap scripted bit
// sources but REAL thermal monitors (Fig. 6 counter on a simulated
// oscillator pair, chi-square bounds calibrated from the model).
func thermalConfig(shards int, seed uint64) Config {
	return Config{
		Shards:    shards,
		Seed:      seed,
		Source:    SourceConfig{Model: testModel()},
		Health:    HealthConfig{MonitorWindow: 16, MonitorEveryBits: 256},
		NewSource: goodScript,
	}
}

// TestThermalMonitorQuarantine is the paper's §V scenario on the
// serving layer: an attack suppresses the thermal jitter of shard 0's
// rings; the embedded monitor sees the small-N variance collapse and
// quarantines the shard WITHOUT stopping the pool; recalibration
// against recovered hardware re-admits it.
func TestThermalMonitorQuarantine(t *testing.T) {
	t.Parallel()
	p, err := New(thermalConfig(2, 31))
	if err != nil {
		t.Fatal(err)
	}
	if p.Healthy() != 2 {
		t.Fatalf("healthy = %d at start", p.Healthy())
	}
	// Cool/lock shard 0's rings: 90% of the thermal amplitude gone.
	// Flicker is untouched — a large-N test would still look lively;
	// only the small-N thermal monitor catches it (the paper's point).
	pair := p.Shard(0).MonitorPair()
	attack.ThermalSuppression{Factor: 0.9}.Arm(pair.Osc1)
	attack.ThermalSuppression{Factor: 0.9}.Arm(pair.Osc2)

	buf := make([]byte, 8192)
	if n, err := p.Fill(buf); err != nil || n != len(buf) {
		t.Fatalf("Fill under attack = (%d, %v)", n, err)
	}
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined || s0.LastReason() != ReasonThermalLow {
		t.Fatalf("shard 0: state %v reason %v, want quarantined/thermal-low", s0.State(), s0.LastReason())
	}
	if p.Healthy() != 1 {
		t.Fatalf("healthy = %d under attack", p.Healthy())
	}

	// The attack ends (fresh epoch hardware); recalibration re-admits.
	if healed := p.Recalibrate(context.Background()); healed != 1 {
		t.Fatalf("healed %d, want 1", healed)
	}
	if s0.State() != StateHealthy {
		t.Fatalf("shard 0 after heal: %v", s0.State())
	}
	if p.Stats().Shards[0].MonitorLow == 0 {
		t.Fatal("no low-side monitor alarm recorded")
	}
}

// TestThermalMonitorPersistentAttack pins the complementary behaviour:
// while the attack persists across epochs, recalibration keeps failing
// and the shard stays out of service.
func TestThermalMonitorPersistentAttack(t *testing.T) {
	t.Parallel()
	cfg := thermalConfig(2, 37)
	cfg.NewMonitorPair = func(shard, epoch int, seed uint64) (*osc.Pair, error) {
		pair, err := osc.NewPair(cfg.Source.Model, 2e-3, osc.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		if shard == 0 {
			attack.ThermalSuppression{Factor: 0.9}.Arm(pair.Osc1)
			attack.ThermalSuppression{Factor: 0.9}.Arm(pair.Osc2)
		}
		return pair, nil
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The monitor alarms during shard 0's very first startup run.
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined || s0.LastReason() != ReasonThermalLow {
		t.Fatalf("shard 0: state %v reason %v", s0.State(), s0.LastReason())
	}
	if healed := p.Recalibrate(context.Background()); healed != 0 {
		t.Fatalf("healed %d under persistent attack, want 0", healed)
	}
	if s0.State() != StateQuarantined || s0.Epoch() != 1 {
		t.Fatalf("shard 0 after failed heal: state %v epoch %d", s0.State(), s0.Epoch())
	}
	if p.Stats().Shards[0].MonitorLow < 2 {
		t.Fatalf("monitor low alarms = %d, want one per epoch", p.Stats().Shards[0].MonitorLow)
	}
}

// TestThermalMonitorHighSide: a flicker-noise burst inflates the
// measured variance past the high bound — the monitor flags the
// measurement fault.
func TestThermalMonitorHighSide(t *testing.T) {
	t.Parallel()
	cfg := thermalConfig(2, 41)
	cfg.NewMonitorPair = func(shard, epoch int, seed uint64) (*osc.Pair, error) {
		pair, err := osc.NewPair(cfg.Source.Model, 2e-3, osc.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		if shard == 0 {
			attack.FlickerBoost{Factor: 30}.Arm(pair.Osc1)
			attack.FlickerBoost{Factor: 30}.Arm(pair.Osc2)
		}
		return pair, nil
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s0 := p.Shard(0)
	if s0.State() != StateQuarantined || s0.LastReason() != ReasonThermalHigh {
		t.Fatalf("shard 0: state %v reason %v, want quarantined/thermal-high", s0.State(), s0.LastReason())
	}
	if p.Healthy() != 1 {
		t.Fatalf("healthy = %d", p.Healthy())
	}
}
