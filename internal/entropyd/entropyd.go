// Package entropyd is the serving layer of the repository: it composes
// the simulated entropy sources (internal/trng, internal/multiring),
// the algebraic post-processing blocks (internal/postproc) and the
// embedded health tests (internal/ais31, internal/onlinetest — the
// paper's §V thermal-noise monitor) into a sharded, health-gated
// entropy pool, following the AIS31 source → digitizer → post-
// processing → online-test pipeline of paper Fig. 1.
//
// # Architecture
//
// A Pool owns S independent shards. Each shard has its own generator
// instance (seeded engine.DeriveSeed(pool seed, shard)), its own
// post-processing chain, and its own embedded test battery:
//
//   - the AIS31 total-failure (tot) test on the raw (das) bits;
//   - the AIS31 startup test (T1–T4, 20000 bits) on the gated output
//     of every calibration epoch, before any output is admitted;
//   - the paper's thermal-noise monitor: a Fig. 6 counter at small
//     accumulation length N (inside the independence region N < N*)
//     whose windowed s_N variance is checked against chi-square bounds
//     calibrated from the model's σ²_N — the generator-specific online
//     test the paper proposes;
//   - a periodic SP 800-90B non-IID assessment (internal/sp90b) of the
//     raw bits: every HealthConfig.AssessEveryBits raw bits the shard
//     copies an AssessBits sample aside and runs the black-box
//     estimator suite on it. The latest per-shard Report is published
//     (LastAssessment, cmd/trngd /assess) and a suite minimum below
//     AssessMinEntropy quarantines the shard like any other alarm;
//   - optionally (HealthConfig.StreamWindow > 0), CONTINUOUS streaming
//     surveillance (internal/sp90b/stream): the cheap half of the
//     estimator suite runs as sliding-window scoreboards over the raw
//     bits, publishing a live min-entropy bound every chunk
//     (Shard.LiveAssessment) and quarantining MID-window when it
//     crosses StreamMinEntropy (ReasonLiveEntropy) — the batch
//     assessment stays on as the periodic deep pass (suffix-array
//     estimators the streaming tracker does not run).
//
// # Health state machine
//
// Every shard runs the machine below; the pool keeps serving from the
// remaining healthy shards whenever one drops out (graceful
// degradation), and returns ErrStarved only when no shard is
// admissible.
//
//	           ┌─────────┐  startup test passes   ┌─────────┐
//	epoch e:   │ startup ├───────────────────────▶│ healthy │
//	           └────┬────┘                        └────┬────┘
//	                │ startup test fails               │ tot alarm /
//	                │ (or alarm during startup)        │ thermal monitor alarm /
//	                ▼                                  │ injected alarm
//	         ┌─────────────┐◀─────────────────────────┘
//	         │ quarantined │   (output ring DRAINED: undelivered
//	         └──────┬──────┘    bytes of the epoch are discarded)
//	                │ recalibrate: epoch e+1 — rebuild source and
//	                │ monitor from fresh derived seeds, re-run the
//	                │ startup test (serve mode retries with backoff)
//	                └──────────▶ back to startup
//
// Quarantine drains undelivered output because bits produced shortly
// before an alarm are suspect: the embedded tests detect a degradation
// only after it has affected the stream for a window.
//
// # Consumption modes
//
// The pool is consumable three ways:
//
//   - Fill(dst): the deterministic batch fast path. Output blocks of
//     fillBlock bytes are assigned round-robin over the healthy
//     shards and produced in parallel on internal/engine; because
//     every shard's stream is private and the block layout is a pure
//     function of (len(dst), healthy set), the output is bit-identical
//     for every worker count (jobs = 1 vs NumCPU).
//   - Read(p): io.Reader over Fill.
//   - Serve/ReadBuffered: the daemon hot path (cmd/trngd). Each shard
//     runs a producer goroutine that keeps a lock-light SPSC ring
//     topped up; consumers drain the rings in the same round-robin
//     block order, so in the healthy steady state the served stream
//     equals the Fill stream of a twin pool.
//
// Quarantined shards heal automatically in serve mode (producer
// goroutines recalibrate with backoff); in batch mode the caller
// triggers healing explicitly with Recalibrate.
package entropyd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/sp90b"
)

// fillBlock is the interleave granularity of the pool output: byte
// block i of a Fill (and of the buffered serve stream) comes from the
// i-th healthy shard in round-robin order. Block-sized interleave keeps
// parallel fills free of false sharing while bounding how much output
// any single shard contributes contiguously.
const fillBlock = 256

// ErrStarved is returned when no healthy shard remains to produce
// output (all quarantined and not yet recalibrated).
var ErrStarved = errors.New("entropyd: all shards quarantined")

// ErrNotServing is returned by ReadBuffered when the pool is not in
// serve mode (never entered, or already stopped/cancelled) — for an
// HTTP front end this is unavailability, not an internal error.
var ErrNotServing = errors.New("entropyd: pool is not serving")

// HealthConfig parameterizes the per-shard embedded tests.
type HealthConfig struct {
	// TotWindow is the total-failure window in raw bits (default 64).
	TotWindow int
	// DisableTot switches the tot test off (tests/benchmarks only).
	DisableTot bool
	// DisableStartup skips the AIS31 startup test (tests/benchmarks
	// only; AIS31 classes require it).
	DisableStartup bool
	// DisableMonitor switches the thermal monitor off.
	DisableMonitor bool
	// MonitorN is the monitor's accumulation length; keep it below
	// the model's independence threshold N* (default 64; paper:
	// N < 281 for r_N > 95%).
	MonitorN int
	// MonitorWindow is the number of s_N samples per variance window
	// (default 64).
	MonitorWindow int
	// MonitorEveryBits is the raw-bit cadence between s_N samples
	// (default 1024): the duty cycle of the embedded counter.
	MonitorEveryBits int
	// MonitorSubdivide is the monitor counter's TDC sub-period
	// resolution (default 64).
	MonitorSubdivide int
	// RefSigmaN2 overrides the monitor's calibrated reference σ²_N;
	// 0 derives it from the source model (relative σ²_N at MonitorN
	// plus the counter quantization floor).
	RefSigmaN2 float64
	// AlphaLow/AlphaHigh are the per-window false-alarm rates
	// (default 1e-6 each, see onlinetest.Config).
	AlphaLow, AlphaHigh float64
	// RecalibrateBackoff is the serve-mode delay between failed
	// recalibration attempts (default 250ms).
	RecalibrateBackoff time.Duration
	// AssessBits is the raw-bit sample size of the periodic
	// SP 800-90B assessment (default 65536; minimum sp90b.MinBits).
	AssessBits int
	// AssessEveryBits is the raw-bit cadence between assessments
	// (default 2^20): after each completed assessment the shard lets
	// this many raw bits pass before collecting the next sample. The
	// collector only copies bits the shard generates anyway, so
	// assessment never perturbs the output stream — only the CPU duty
	// cycle depends on the cadence.
	AssessEveryBits int
	// DisableAssess switches the periodic assessment off.
	DisableAssess bool
	// AssessMinEntropy quarantines the shard when an assessment's
	// suite min-entropy falls below it, like a tot or thermal alarm
	// (ReasonLowEntropy). 0 (the default) monitors only: reports and
	// gauges are published, no alarm. The right threshold depends on
	// the operating point: black-box bounds on the calibrated model at
	// its honest divider sit around 0.75–1 bit (the compression
	// estimator's conservatism sets the floor), so cmd/trngd defaults
	// to 0.3 — far below any healthy assessment, far above a degraded
	// source.
	AssessMinEntropy float64
	// StreamWindow, when > 0, turns on continuous streaming
	// surveillance (sp90b/stream): every raw chunk is additionally fed
	// into a sliding-window tracker running the cheap half of the
	// estimator suite (MCV, Markov and the four predictors) at O(1)
	// amortized cost per bit over the last StreamWindow raw bits. The
	// tracker is passive like the batch collector — the output stream
	// is bit-identical with streaming on or off — but it publishes a
	// LIVE min-entropy bound (Shard.LiveAssessment) that moves every
	// chunk instead of every AssessEveryBits. Minimum sp90b.MinBits;
	// 0 (the default) disables streaming (it costs CPU per raw bit, so
	// the library leaves it to the deployment — cmd/trngd enables it
	// by default).
	StreamWindow int
	// StreamPanes is the number of staggered predictor panes (default
	// 4 when streaming is on). It must divide StreamWindow; predictor
	// estimates refresh every StreamWindow/StreamPanes bits.
	StreamPanes int
	// StreamMinEntropy is the live low-watermark: a live suite minimum
	// below it quarantines the shard MID-window (ReasonLiveEntropy),
	// without waiting for the next batch sample boundary. 0 monitors
	// only, like AssessMinEntropy.
	StreamMinEntropy float64
}

// withDefaults fills zero fields.
func (h HealthConfig) withDefaults() HealthConfig {
	if h.TotWindow == 0 {
		h.TotWindow = 64
	}
	if h.MonitorN == 0 {
		h.MonitorN = 64
	}
	if h.MonitorWindow == 0 {
		h.MonitorWindow = 64
	}
	if h.MonitorEveryBits == 0 {
		h.MonitorEveryBits = 1024
	}
	if h.MonitorSubdivide == 0 {
		h.MonitorSubdivide = 64
	}
	if h.RecalibrateBackoff == 0 {
		h.RecalibrateBackoff = 250 * time.Millisecond
	}
	if h.AssessBits == 0 {
		h.AssessBits = 1 << 16
	}
	if h.AssessEveryBits == 0 {
		h.AssessEveryBits = 1 << 20
	}
	if h.StreamWindow > 0 && h.StreamPanes == 0 {
		h.StreamPanes = 4
	}
	return h
}

// PostOp is one post-processing stage kind.
type PostOp int

// Post-processing operations (see internal/postproc).
const (
	// PostXOR is k:1 XOR decimation.
	PostXOR PostOp = iota
	// PostVonNeumann is the von Neumann corrector.
	PostVonNeumann
)

// PostStage is one element of a shard's post-processing chain, applied
// in order to each raw chunk.
type PostStage struct {
	Op PostOp
	// K is the XOR decimation factor (PostXOR only).
	K int
}

// Config assembles a Pool.
type Config struct {
	// Shards is the number of independent generator lanes
	// (default 4).
	Shards int
	// Seed is the pool root seed; every shard and epoch derives its
	// private seeds from it via engine.DeriveSeed, so pool output is
	// reproducible from (Config, Seed) alone.
	Seed uint64
	// Source describes the per-shard entropy source.
	Source SourceConfig
	// Post is the per-shard post-processing chain (applied chunk-
	// local, in order). Empty = raw gated bits.
	Post []PostStage
	// Health parameterizes the embedded tests.
	Health HealthConfig
	// Jobs is the engine worker-pool width for Fill and construction
	// (0 = NumCPU, 1 = sequential; output identical either way).
	Jobs int
	// BufBytes is the per-shard serve-mode ring capacity (default
	// 64 KiB, rounded up to a power of two, minimum one fill block).
	BufBytes int
	// SeedTapBytes, when > 0, gives every shard a raw seed tap of this
	// capacity (rounded up to a power of two): a passive mirror of the
	// healthy-epoch raw bits, packed MSB-first, that SeedSource drains
	// through a vetted conditioner into DRBG seed material. The tap
	// never changes the output stream, but its contents are raw-stream
	// material: a deployment must serve EITHER the raw stream OR
	// DRBG output, never both from one pool (cmd/trngd's -mode switch
	// enforces this). In serve mode a tapped pool also keeps producing
	// (and discarding) raw bits while its output ring is full, so the
	// embedded tests, assessments and the tap stay live without a raw
	// consumer. Requires assessment (DisableAssess must be false):
	// the assessed min-entropy is the seed accounting input.
	SeedTapBytes int

	// Sink, when non-nil, receives the pool's observability events
	// (shard lifecycle, alarms with the triggering statistic,
	// quarantines, DRBG lane events, seed draws — see internal/obs).
	// Emission is passive: sinks observe state transitions that happen
	// anyway, so the output stream is bit-identical with the sink on or
	// off; a nil sink costs one predictable branch per event site.
	Sink obs.Sink

	// NewSource, when non-nil, replaces the Source-derived generator
	// factory. It receives the shard index, the calibration epoch and
	// the derived seed. Tests and attack experiments use it to script
	// source behaviour per shard and epoch.
	NewSource func(shard, epoch int, seed uint64) (RawSource, error)
	// NewMonitorPair, when non-nil, replaces the default thermal-
	// monitor oscillator pair factory (same hook contract). The
	// default builds a pair of Source.Model rings with a 0.2%
	// mismatch — the simulation stand-in for tapping the physical
	// rings with the embedded counter.
	NewMonitorPair func(shard, epoch int, seed uint64) (*osc.Pair, error)
}

// Pool is a sharded, health-gated entropy pool.
type Pool struct {
	cfg    Config
	shards []*Shard

	mu sync.Mutex // serializes Fill/Read/Recalibrate

	// Serve-mode state. stop cancels the current session; finish is
	// the session's idempotent shutdown (waits the producers out and
	// reopens batch mode), shared by Stop and the context watcher.
	serving atomic.Bool
	stop    context.CancelFunc
	finish  func()
	consMu  sync.Mutex // serializes buffered consumers

	// Persistent output rotation, shared by the batch walk (under mu)
	// and the buffered consumer (under consMu; the modes are mutually
	// exclusive): the shard whose block is currently being emitted and
	// the bytes left of that block. Persistence is what makes the pool
	// a single continuous stream across calls and across modes.
	rrShard  int
	rrLeft   int
	bytesOut atomic.Uint64
}

// New builds the pool and calibrates every shard in parallel (each
// runs its startup test). Shards whose startup test fails begin life
// quarantined; New fails only when the configuration itself is
// unusable or when NO shard could be admitted.
func New(cfg Config) (*Pool, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("entropyd: shards = %d must be >= 1", cfg.Shards)
	}
	cfg.Source = cfg.Source.withDefaults()
	if cfg.NewSource == nil {
		if err := cfg.Source.validate(); err != nil {
			return nil, err
		}
	}
	cfg.Health = cfg.Health.withDefaults()
	if !cfg.Health.DisableAssess {
		if cfg.Health.AssessBits < sp90b.MinBits {
			return nil, fmt.Errorf("entropyd: assessment sample %d below sp90b.MinBits (%d)",
				cfg.Health.AssessBits, sp90b.MinBits)
		}
		if cfg.Health.AssessMinEntropy < 0 || cfg.Health.AssessMinEntropy >= 1 {
			return nil, fmt.Errorf("entropyd: assessment threshold %g out of [0, 1)", cfg.Health.AssessMinEntropy)
		}
	}
	if cfg.Health.StreamWindow > 0 {
		if cfg.Health.StreamWindow < sp90b.MinBits {
			return nil, fmt.Errorf("entropyd: streaming window %d below sp90b.MinBits (%d)",
				cfg.Health.StreamWindow, sp90b.MinBits)
		}
		if cfg.Health.StreamPanes < 1 || cfg.Health.StreamWindow%cfg.Health.StreamPanes != 0 {
			return nil, fmt.Errorf("entropyd: streaming panes %d must be >= 1 and divide the window (%d)",
				cfg.Health.StreamPanes, cfg.Health.StreamWindow)
		}
		if cfg.Health.StreamMinEntropy < 0 || cfg.Health.StreamMinEntropy >= 1 {
			return nil, fmt.Errorf("entropyd: streaming threshold %g out of [0, 1)", cfg.Health.StreamMinEntropy)
		}
	}
	for _, st := range cfg.Post {
		switch st.Op {
		case PostXOR:
			if st.K < 1 || st.K > rawChunk {
				return nil, fmt.Errorf("entropyd: xor decimation factor %d out of [1, %d]", st.K, rawChunk)
			}
		case PostVonNeumann:
		default:
			return nil, fmt.Errorf("entropyd: unknown post-processing op %d", int(st.Op))
		}
	}
	if cfg.BufBytes == 0 {
		cfg.BufBytes = 1 << 16
	}
	if cfg.BufBytes < fillBlock {
		return nil, fmt.Errorf("entropyd: ring capacity %d below one fill block (%d)", cfg.BufBytes, fillBlock)
	}
	if cfg.SeedTapBytes > 0 {
		if cfg.Health.DisableAssess {
			return nil, fmt.Errorf("entropyd: the seed tap needs the SP 800-90B assessment (it is the entropy accounting input); enable assessment or disable the tap")
		}
		if cfg.SeedTapBytes < rawChunk/8 {
			return nil, fmt.Errorf("entropyd: seed tap capacity %d below one packed raw chunk (%d)", cfg.SeedTapBytes, rawChunk/8)
		}
	}

	p := &Pool{cfg: cfg, rrLeft: fillBlock}
	p.shards = make([]*Shard, cfg.Shards)
	for i := range p.shards {
		p.shards[i] = &Shard{
			index: i,
			pool:  p,
			seed:  engine.DeriveSeed(cfg.Seed, uint64(i)),
			ring:  newRing(cfg.BufBytes),
		}
		if cfg.SeedTapBytes > 0 {
			p.shards[i].tap = newRing(cfg.SeedTapBytes)
		}
	}
	err := engine.Run(context.Background(), cfg.Shards, func(_ context.Context, i int) error {
		return p.shards[i].calibrate()
	}, engine.Jobs(cfg.Jobs))
	if err != nil {
		return nil, err
	}
	if p.Healthy() == 0 {
		return nil, fmt.Errorf("entropyd: no shard passed its startup test (%w)", ErrStarved)
	}
	return p, nil
}

// emit forwards an observability event to the configured sink. The
// nil check is the entire cost when observability is off.
func (p *Pool) emit(e obs.Event) {
	if p.cfg.Sink != nil {
		p.cfg.Sink.Emit(e)
	}
}

// newSource dispatches to the configured source factory.
func (p *Pool) newSource(shard, epoch int, seed uint64) (RawSource, error) {
	if p.cfg.NewSource != nil {
		return p.cfg.NewSource(shard, epoch, seed)
	}
	return p.cfg.Source.newSource(seed)
}

// newMonitorPair dispatches to the configured monitor-pair factory.
func (p *Pool) newMonitorPair(shard, epoch int, seed uint64) (*osc.Pair, error) {
	if p.cfg.NewMonitorPair != nil {
		return p.cfg.NewMonitorPair(shard, epoch, seed)
	}
	return osc.NewPair(p.cfg.Source.Model, 2e-3, osc.Options{Seed: seed})
}

// NumShards returns the configured shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Shard returns shard i (for status inspection and attack hooks).
func (p *Pool) Shard(i int) *Shard { return p.shards[i] }

// Healthy counts the shards currently admitted.
func (p *Pool) Healthy() int {
	n := 0
	for _, s := range p.shards {
		if s.State() == StateHealthy {
			n++
		}
	}
	return n
}

// InjectAlarm forces shard i into quarantine at its next production
// step (an operator drill / test hook; races cleanly with serving).
// It refuses shards that are not currently healthy: an alarm injected
// into a quarantined or recalibrating shard would be silently
// discarded by the next calibration, which is worse than an error.
func (p *Pool) InjectAlarm(i int) error {
	if i < 0 || i >= len(p.shards) {
		return fmt.Errorf("entropyd: shard %d out of range [0, %d)", i, len(p.shards))
	}
	if st := p.shards[i].State(); st != StateHealthy {
		return fmt.Errorf("entropyd: shard %d is %v, not healthy", i, st)
	}
	p.shards[i].injected.Store(true)
	// The marker is the detection-latency clock start: the journal
	// pairs it with the shard's next quarantine event.
	p.emit(obs.Event{Type: obs.TypeInjectionMarker, Shard: i, Lane: obs.Any,
		Epoch: p.shards[i].Epoch(), Detail: "InjectAlarm"})
	return nil
}

// span is a half-open byte range of a fill destination.
type span struct{ off, n int }

// Fill produces len(dst) gated bytes across the healthy shards and is
// the deterministic batch fast path: the pool's PERSISTENT round-robin
// rotation assigns blocks of fillBlock bytes to the healthy shards,
// and the per-shard shares are generated in parallel (one engine task
// per shard, Config.Jobs wide). Because every shard's stream is
// private and the rotation is a pure function of the request sizes and
// the healthy set, the output is bit-identical for every worker count
// (jobs = 1 vs NumCPU) and for every request chunking — Fill(300) then
// Fill(724) yields the same 1024 bytes as one Fill(1024), and the same
// stream ReadBuffered serves in daemon mode.
//
// Shards that alarm mid-fill are quarantined and their unproduced
// blocks are redistributed to the survivors, so service degrades
// without failing. Returns the bytes written; n < len(dst) (with
// ErrStarved) happens only when every shard is quarantined before the
// buffer is complete, in which case the filled prefix is compacted to
// dst[:n].
func (p *Pool) Fill(dst []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.serving.Load() {
		return 0, errors.New("entropyd: Fill is unavailable while serving (use ReadBuffered)")
	}
	// Also exclude any buffered consumer still draining out of a
	// just-stopped serve session: a ReadBuffered that was past its
	// serving check when Stop() flipped the flag may hold the
	// rotation cursor for one more poll interval, and the cursor must
	// only ever have one writer.
	p.consMu.Lock()
	defer p.consMu.Unlock()
	n, err := p.fillLocked(dst)
	p.bytesOut.Add(uint64(n))
	return n, err
}

// fillLocked runs fill rounds until the destination is complete or the
// pool starves. Round 0 walks the pool's persistent rotation; later
// rounds (only reached when a shard alarmed) redistribute the
// surrendered spans over the surviving shards with a fresh block walk.
func (p *Pool) fillLocked(dst []byte) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	pending := []span{{0, len(dst)}}
	for round := 0; len(pending) > 0; round++ {
		var admitted []*Shard
		for _, s := range p.shards {
			if s.State() == StateHealthy {
				admitted = append(admitted, s)
			}
		}
		if len(admitted) == 0 {
			n := compact(dst, pending)
			return n, ErrStarved
		}
		perShard := make([][]span, len(p.shards))
		if round == 0 {
			p.walkRotation(pending, perShard)
		} else {
			walkFresh(pending, admitted, perShard)
		}
		leftover := make([][]span, len(admitted))
		err := engine.Run(context.Background(), len(admitted), func(_ context.Context, j int) error {
			sh := admitted[j]
			leftover[j] = produceSpans(dst, sh, perShard[sh.index])
			return nil
		}, engine.Jobs(p.cfg.Jobs))
		if err != nil {
			return 0, err
		}
		pending = pending[:0]
		for _, l := range leftover {
			pending = append(pending, l...)
		}
		sortSpans(pending)
	}
	return len(dst), nil
}

// walkRotation advances the pool's persistent rotation cursor across
// the given spans, appending each shard's assigned sub-spans to
// perShard (indexed by shard). The caller guarantees at least one
// healthy shard.
func (p *Pool) walkRotation(spans []span, perShard [][]span) {
	for _, sp := range spans {
		off, n := sp.off, sp.n
		for n > 0 {
			s := p.shards[p.rrShard]
			if s.State() != StateHealthy || p.rrLeft == 0 {
				if !p.nextHealthy(s.State() != StateHealthy) {
					return
				}
				continue
			}
			t := n
			if t > p.rrLeft {
				t = p.rrLeft
			}
			perShard[p.rrShard] = append(perShard[p.rrShard], span{off, t})
			off += t
			n -= t
			p.rrLeft -= t
		}
	}
}

// walkFresh assigns spans to the admitted shards with a fresh block
// rotation (redistribution rounds after an alarm).
func walkFresh(spans []span, admitted []*Shard, perShard [][]span) {
	j, left := 0, fillBlock
	for _, sp := range spans {
		off, n := sp.off, sp.n
		for n > 0 {
			t := n
			if t > left {
				t = left
			}
			perShard[admitted[j].index] = append(perShard[admitted[j].index], span{off, t})
			off += t
			n -= t
			left -= t
			if left == 0 {
				j = (j + 1) % len(admitted)
				left = fillBlock
			}
		}
	}
}

// produceSpans generates sh's assigned spans in order. On a mid-span
// alarm the WHOLE current span plus everything after it is returned as
// leftover: bytes gated shortly before an alarm are suspect, so the
// partial span is regenerated by a surviving shard (the batch analogue
// of the serve-mode ring drain).
func produceSpans(dst []byte, sh *Shard, spans []span) []span {
	for i, sp := range spans {
		if n := sh.produce(dst[sp.off : sp.off+sp.n]); n < sp.n {
			return append([]span(nil), spans[i:]...)
		}
	}
	return nil
}

// sortSpans orders spans by offset (insertion sort: the lists are
// short — at most one run per alarmed shard).
func sortSpans(s []span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].off < s[j-1].off; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// compact moves the filled bytes of dst to the front, skipping the
// unfilled spans, and returns the filled count.
func compact(dst []byte, unfilled []span) int {
	n := 0
	pos := 0
	for _, sp := range unfilled {
		n += copy(dst[n:], dst[pos:sp.off])
		pos = sp.off + sp.n
	}
	n += copy(dst[n:], dst[pos:])
	return n
}

// Read implements io.Reader over Fill: it fills p completely in the
// healthy case, and returns the compacted partial fill (n > 0, nil
// error) when the pool starved mid-way — the starvation error then
// surfaces on the next call, per io.Reader convention.
func (p *Pool) Read(q []byte) (int, error) {
	if len(q) == 0 {
		return 0, nil
	}
	n, err := p.Fill(q)
	if n > 0 {
		return n, nil
	}
	return n, err
}

// Recalibrate attempts to heal every quarantined shard (in parallel on
// the engine pool) and returns how many came back healthy. It is the
// batch-mode counterpart of the serve-mode self-healing loop. The
// context bounds the attempt: shards not yet re-admitted when it is
// cancelled simply stay quarantined.
func (p *Pool) Recalibrate(ctx context.Context) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.serving.Load() {
		return 0 // serve mode heals itself
	}
	var quarantined []*Shard
	for _, s := range p.shards {
		if s.State() == StateQuarantined {
			quarantined = append(quarantined, s)
		}
	}
	if len(quarantined) == 0 {
		return 0
	}
	healed := make([]bool, len(quarantined))
	_ = engine.Run(ctx, len(quarantined), func(_ context.Context, i int) error {
		healed[i] = quarantined[i].recalibrate()
		return nil
	}, engine.Jobs(p.cfg.Jobs))
	n := 0
	for _, h := range healed {
		if h {
			n++
		}
	}
	return n
}

// ShardStatus is a point-in-time snapshot of one shard's health.
type ShardStatus struct {
	Index           int    `json:"index"`
	State           string `json:"state"`
	Reason          string `json:"reason"`
	Epoch           int64  `json:"epoch"`
	BytesOut        uint64 `json:"bytes_out"`
	RawBits         uint64 `json:"raw_bits"`
	TotAlarms       uint64 `json:"tot_alarms"`
	MonitorLow      uint64 `json:"monitor_low_alarms"`
	MonitorHigh     uint64 `json:"monitor_high_alarms"`
	StartupFailures uint64 `json:"startup_failures"`
	Quarantines     uint64 `json:"quarantines"`
	DrainedBytes    uint64 `json:"drained_bytes"`
	Buffered        int    `json:"buffered"`
	// AssessRuns counts completed SP 800-90B raw-bit assessments;
	// AssessMinEntropy is the latest suite minimum (meaningful only
	// when AssessRuns > 0) and AssessAlarms the low-entropy
	// quarantines it caused. AssessAgeSeconds is the wall-clock age of
	// the latest report (-1 before the first one) and AssessEpoch the
	// calibration epoch it describes — together with State these are
	// the reseed-gating inputs: a shard seeds DRBGs only while
	// healthy with a current-epoch assessment.
	AssessRuns       uint64  `json:"assess_runs"`
	AssessAlarms     uint64  `json:"assess_alarms"`
	AssessMinEntropy float64 `json:"assess_min_entropy"`
	AssessAgeSeconds float64 `json:"assess_age_seconds"`
	AssessEpoch      int64   `json:"assess_epoch"`
	// Streaming-surveillance snapshot (HealthConfig.StreamWindow > 0):
	// LiveMinEntropy is the latest live suite minimum over the sliding
	// window (meaningful only when LiveAgeSeconds >= 0; -1 age means no
	// live report yet, e.g. streaming off or window not yet full),
	// LiveEpoch the calibration epoch it describes, LiveAlarms the
	// mid-window watermark quarantines, and StreamNsPerBit the mean
	// per-raw-bit surveillance cost.
	LiveAlarms     uint64  `json:"live_alarms"`
	LiveMinEntropy float64 `json:"live_min_entropy"`
	LiveAgeSeconds float64 `json:"live_age_seconds"`
	LiveEpoch      int64   `json:"live_epoch"`
	StreamNsPerBit float64 `json:"stream_ns_per_bit"`
	// Seed-tap bookkeeping (zero when the tap is disabled): raw bytes
	// mirrored into the tap, dropped on a full tap, and consumed by
	// seed draws.
	TapBytes      uint64 `json:"tap_bytes"`
	TapDropped    uint64 `json:"tap_dropped"`
	SeedBytesUsed uint64 `json:"seed_bytes_used"`
}

// Stats is a point-in-time snapshot of the pool. BytesServed counts
// bytes delivered to consumers through any mode (Fill, Read,
// ReadBuffered); the per-shard BytesOut counters additionally include
// produced-but-undelivered bytes sitting in (or drained from) rings.
type Stats struct {
	Shards      []ShardStatus `json:"shards"`
	Healthy     int           `json:"healthy"`
	BytesServed uint64        `json:"bytes_served"`
}

// Stats snapshots every shard's counters (atomics: safe while
// serving).
func (p *Pool) Stats() Stats {
	st := Stats{Shards: make([]ShardStatus, len(p.shards)), BytesServed: p.bytesOut.Load()}
	for i, s := range p.shards {
		state := s.State()
		if state == StateHealthy {
			st.Healthy++
		}
		st.Shards[i] = ShardStatus{
			Index:            i,
			State:            state.String(),
			Reason:           s.LastReason().String(),
			Epoch:            s.Epoch(),
			BytesOut:         s.bytesOut.Load(),
			RawBits:          s.rawBits.Load(),
			TotAlarms:        s.totAlarms.Load(),
			MonitorLow:       s.monLow.Load(),
			MonitorHigh:      s.monHigh.Load(),
			StartupFailures:  s.startupFails.Load(),
			Quarantines:      s.quarantines.Load(),
			DrainedBytes:     s.drainedBytes.Load(),
			Buffered:         s.ring.buffered(),
			AssessRuns:       s.assessRuns.Load(),
			AssessAlarms:     s.assessAlarms.Load(),
			AssessAgeSeconds: -1,
			LiveAlarms:       s.liveAlarms.Load(),
			LiveAgeSeconds:   -1,
			TapBytes:         s.tapBytes.Load(),
			TapDropped:       s.tapDropped.Load(),
			SeedBytesUsed:    s.seedBytes.Load(),
		}
		if a := s.LastAssessment(); a != nil {
			st.Shards[i].AssessMinEntropy = a.Report.MinEntropy
			st.Shards[i].AssessAgeSeconds = time.Since(a.At).Seconds()
			st.Shards[i].AssessEpoch = a.Epoch
		}
		if a := s.LiveAssessment(); a != nil {
			st.Shards[i].LiveMinEntropy = a.Report.MinEntropy
			st.Shards[i].LiveAgeSeconds = time.Since(a.At).Seconds()
			st.Shards[i].LiveEpoch = a.Epoch
		}
		if h := s.streamCost; h != nil && h.Count() > 0 {
			st.Shards[i].StreamNsPerBit = float64(h.Sum().Nanoseconds()) / float64(h.Count())
		}
	}
	return st
}
