package entropyd

import "sync/atomic"

// ring is the lock-light single-producer/single-consumer byte queue
// between a shard's producer goroutine and the pool's consumer side.
//
// Synchronization model (no mutexes, no CAS loops):
//
//   - tail is written only by the producer (after the bytes it covers),
//     head only by the consumer, so each index has a single writer;
//   - the producer computes free space from a stale head, the consumer
//     computes availability from a stale tail — both errors are
//     conservative (less space / fewer bytes than truly available);
//   - quarantine "drain" must discard buffered-but-undelivered bytes
//     without the producer touching the consumer-owned head. The
//     producer instead publishes a monotone drainUpTo watermark; the
//     consumer fast-forwards its head past the watermark before the
//     next pop. Bytes below the watermark are never delivered after
//     the drain request is observed.
//
// Capacity is a power of two so index arithmetic wraps with a mask.
// Indices are free-running uint64s (never reduced mod capacity until
// buffer access), so tail-head is always the buffered byte count.
type ring struct {
	buf       []byte
	mask      uint64
	head      atomic.Uint64 // next unread index; consumer-owned
	tail      atomic.Uint64 // next write index; producer-owned
	drainUpTo atomic.Uint64 // producer watermark: discard below this
}

// newRing builds a ring with at least the requested capacity, rounded
// up to a power of two (minimum 8 bytes).
func newRing(capacity int) *ring {
	size := 8
	for size < capacity {
		size <<= 1
	}
	return &ring{buf: make([]byte, size), mask: uint64(size - 1)}
}

// capacity returns the usable byte capacity.
func (r *ring) capacity() int { return len(r.buf) }

// buffered returns the number of undelivered bytes (including any the
// consumer will discard at its next pop due to a pending drain).
func (r *ring) buffered() int {
	return int(r.tail.Load() - r.head.Load())
}

// free returns a lower bound on the writable space. Producer-side.
func (r *ring) free() int {
	return len(r.buf) - int(r.tail.Load()-r.head.Load())
}

// push appends p to the ring. Producer-side; the caller must not push
// more than free() bytes (shard producers size their chunks from
// free(), which only grows under a racing consumer). At most two
// copy() calls: the run up to the wrap point, then the remainder.
func (r *ring) push(p []byte) {
	t := r.tail.Load()
	i := int(t & r.mask)
	n := copy(r.buf[i:], p)
	copy(r.buf, p[n:])
	r.tail.Store(t + uint64(len(p)))
}

// drain requests that every byte produced so far be discarded instead
// of delivered. Producer-side (called on quarantine). Returns the
// number of bytes that were buffered at the request, an upper bound on
// how many actually get discarded (the consumer may already have some
// in flight).
func (r *ring) drain() int {
	t := r.tail.Load()
	buffered := int(t - r.head.Load())
	r.drainUpTo.Store(t)
	return buffered
}

// applyDrain fast-forwards the head past a pending drain watermark and
// returns the new head. Consumer-side. Popping does this implicitly;
// consumers that gate pops on buffered() (the seed tap) call it first,
// because buffered bytes below the watermark are doomed AND keep
// occupying producer-visible space until the head moves past them.
func (r *ring) applyDrain() uint64 {
	h := r.head.Load()
	if d := r.drainUpTo.Load(); d > h {
		if t := r.tail.Load(); d > t {
			d = t
		}
		r.head.Store(d)
		return d
	}
	return h
}

// pop moves up to len(p) bytes into p and returns the count. Consumer-
// side; the pool serializes consumers. A pending drain watermark is
// applied first, so post-quarantine pops never see pre-quarantine
// bytes.
func (r *ring) pop(p []byte) int {
	h := r.applyDrain()
	t := r.tail.Load()
	n := int(t - h)
	if n == 0 {
		return 0
	}
	if n > len(p) {
		n = len(p)
	}
	i := int(h & r.mask)
	first := copy(p[:n], r.buf[i:])
	copy(p[first:n], r.buf)
	r.head.Store(h + uint64(n))
	return n
}
