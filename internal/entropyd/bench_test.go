package entropyd

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkPoolThroughput measures the pool's batch hot path in
// bytes/sec (the SetBytes rate) at 1, 4 and NumCPU shards: the
// scaling trajectory later performance PRs optimize against. The
// source is the jitter-amplified paper model at divider 16, with the
// full health battery (tot + startup + thermal monitor) engaged — the
// gating cost is part of the serving path, so it belongs in the
// measurement.
func BenchmarkPoolThroughput(b *testing.B) {
	shardCounts := []int{1, 4, runtime.NumCPU()}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := New(Config{
				Shards: shards,
				Seed:   1,
				Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
				Health: HealthConfig{MonitorWindow: 16},
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<15)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := p.Fill(buf); err != nil || n != len(buf) {
					b.Fatalf("Fill = (%d, %v)", n, err)
				}
			}
		})
	}
}

// BenchmarkPoolDRBGThroughput measures the expansion layer end to end:
// DRBGPool.Generate over a seeded pool, in bytes/sec, for both
// mechanisms. Scripted sources stand in for the physics so the number
// isolates the serving path (conditioned seeding amortizes to ~0 at
// the default reseed interval); together with BenchmarkPoolThroughput
// (the raw calibrated path) it is the ISSUE-5 trajectory pair: output
// rate bounded by AES/SHA throughput instead of oscillator physics.
func BenchmarkPoolDRBGThroughput(b *testing.B) {
	for _, kind := range []DRBGKind{DRBGCTR, DRBGHMAC} {
		b.Run(kind.String(), func(b *testing.B) {
			p, err := New(Config{
				Shards:       4,
				Seed:         3,
				NewSource:    goodScript,
				Health:       assessHealth(0),
				SeedTapBytes: 1 << 15,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Prime: every shard assessed, every tap charged.
			if _, err := p.Fill(make([]byte, 4*4096)); err != nil {
				b.Fatal(err)
			}
			dp, err := p.DRBGPool(DRBGConfig{
				Kind: kind,
				// One seed per lane for the whole run: the benchmark
				// measures expansion, not physics.
				ReseedInterval: 1 << 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<16)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := dp.Generate(buf, false, 0); err != nil || n != len(buf) {
					b.Fatalf("Generate = (%d, %v)", n, err)
				}
			}
		})
	}
}

// BenchmarkShardProduce isolates one shard's gated generation (no
// pool fan-out): the per-lane cost floor.
func BenchmarkShardProduce(b *testing.B) {
	p, err := New(Config{
		Shards: 1,
		Seed:   2,
		Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
		Health: HealthConfig{MonitorWindow: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := p.Shard(0)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.produce(buf); n != len(buf) {
			b.Fatalf("produce = %d", n)
		}
	}
}
