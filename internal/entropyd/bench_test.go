package entropyd

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkPoolThroughput measures the pool's batch hot path in
// bytes/sec (the SetBytes rate) at 1, 4 and NumCPU shards: the
// scaling trajectory later performance PRs optimize against. The
// source is the jitter-amplified paper model at divider 16, with the
// full health battery (tot + startup + thermal monitor) engaged — the
// gating cost is part of the serving path, so it belongs in the
// measurement.
func BenchmarkPoolThroughput(b *testing.B) {
	shardCounts := []int{1, 4, runtime.NumCPU()}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := New(Config{
				Shards: shards,
				Seed:   1,
				Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
				Health: HealthConfig{MonitorWindow: 16},
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<15)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := p.Fill(buf); err != nil || n != len(buf) {
					b.Fatalf("Fill = (%d, %v)", n, err)
				}
			}
		})
	}
}

// BenchmarkShardProduce isolates one shard's gated generation (no
// pool fan-out): the per-lane cost floor.
func BenchmarkShardProduce(b *testing.B) {
	p, err := New(Config{
		Shards: 1,
		Seed:   2,
		Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
		Health: HealthConfig{MonitorWindow: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := p.Shard(0)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.produce(buf); n != len(buf) {
			b.Fatalf("produce = %d", n)
		}
	}
}
