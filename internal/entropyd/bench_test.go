package entropyd

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/sp90b"
)

// BenchmarkPoolThroughput measures the pool's batch hot path in
// bytes/sec (the SetBytes rate) at 1, 4 and NumCPU shards: the
// scaling trajectory later performance PRs optimize against. The
// source is the jitter-amplified paper model at divider 16, with the
// full health battery (tot + startup + thermal monitor) engaged — the
// gating cost is part of the serving path, so it belongs in the
// measurement.
func BenchmarkPoolThroughput(b *testing.B) {
	shardCounts := []int{1, 4, runtime.NumCPU()}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := New(Config{
				Shards: shards,
				Seed:   1,
				Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
				Health: HealthConfig{MonitorWindow: 16},
			})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, 1<<15)
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n, err := p.Fill(buf); err != nil || n != len(buf) {
					b.Fatalf("Fill = (%d, %v)", n, err)
				}
			}
		})
	}
}

// BenchmarkLiveAssessmentPool is BenchmarkPoolThroughput with the
// streaming surveillance tracker inline on every shard: the fleet-wide
// serving cost of continuous live assessment, to be read against the
// plain-battery baseline (the delta is StreamNsPerBit × 8 raw bits per
// output byte).
func BenchmarkLiveAssessmentPool(b *testing.B) {
	p, err := New(Config{
		Shards: 4,
		Seed:   1,
		Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
		Health: HealthConfig{MonitorWindow: 16, StreamWindow: sp90b.MinBits},
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<15)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := p.Fill(buf); err != nil || n != len(buf) {
			b.Fatalf("Fill = (%d, %v)", n, err)
		}
	}
}

// benchDRBGPool builds a seeded, primed 4-lane expansion layer for the
// throughput benchmarks (scripted sources stand in for the physics so
// the number isolates the serving path; one seed per lane for the whole
// run — the benchmark measures expansion, not physics).
func benchDRBGPool(b *testing.B, kind DRBGKind) *DRBGPool {
	b.Helper()
	p, err := New(Config{
		Shards:       4,
		Seed:         3,
		NewSource:    goodScript,
		Health:       assessHealth(0),
		SeedTapBytes: 1 << 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Prime: every shard assessed, every tap charged.
	if _, err := p.Fill(make([]byte, 4*4096)); err != nil {
		b.Fatal(err)
	}
	dp, err := p.DRBGPool(DRBGConfig{Kind: kind, ReseedInterval: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	// Instantiate every lane outside the timed region.
	if n, err := dp.Generate(make([]byte, 4*4096), false, time.Second); err != nil || n != 4*4096 {
		b.Fatalf("warmup = (%d, %v)", n, err)
	}
	return dp
}

// BenchmarkPoolDRBGThroughput measures the expansion layer end to end:
// DRBGPool.Generate over a seeded pool, in bytes/sec, for both
// mechanisms, at GOMAXPROCS=1 and =NumCPU with b.RunParallel driving
// one caller per proc. Together with BenchmarkPoolThroughput (the raw
// calibrated path) it is the ISSUE-5 trajectory pair — output rate
// bounded by AES/SHA throughput instead of oscillator physics — and
// the gomaxprocs split is the ISSUE-6 multi-core flip: requests span
// 16 blocks, so the per-lane worker pipeline carries the production
// while the callers take turns stitching.
func BenchmarkPoolDRBGThroughput(b *testing.B) {
	maxProcs := runtime.NumCPU()
	for _, kind := range []DRBGKind{DRBGCTR, DRBGHMAC} {
		for i, procs := range []int{1, maxProcs} {
			// Stable sub-benchmark names across hosts: "max" is
			// NumCPU, whatever it is (it can equal 1 in a container).
			label := fmt.Sprintf("%s/gomaxprocs=1", kind)
			if i == 1 {
				label = fmt.Sprintf("%s/gomaxprocs=max", kind)
			}
			procs := procs
			b.Run(label, func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				dp := benchDRBGPool(b, kind)
				b.SetBytes(1 << 16)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					buf := make([]byte, 1<<16)
					for pb.Next() {
						if n, err := dp.Generate(buf, false, time.Second); err != nil || n != len(buf) {
							b.Fatalf("Generate = (%d, %v)", n, err)
						}
					}
				})
			})
		}
	}
}

// nullDRBG is a DRBG whose Generate is a pure memory copy: swapped
// into the lanes, it exposes the pipeline's stitch-and-copy ceiling —
// the aggregate rate the rotation consumer can sustain when block
// production costs nothing. On a single-CPU host (where GOMAXPROCS
// sub-benchmarks cannot show parallel speedup) the scaling headroom is
// this ceiling divided by one real lane's generation rate: lanes
// produce in parallel on bigger hosts until the consumer ceiling, not
// the crypto, binds.
type nullDRBG struct{ pattern [4096]byte }

func (n *nullDRBG) Name() string                            { return "null" }
func (n *nullDRBG) SeedLen() int                            { return 48 }
func (n *nullDRBG) ReseedLen() int                          { return 48 }
func (n *nullDRBG) Reseed(entropy, additional []byte) error { return nil }
func (n *nullDRBG) Generate(out, additional []byte) error {
	for off := 0; off < len(out); {
		off += copy(out[off:], n.pattern[:])
	}
	return nil
}
func (n *nullDRBG) ReseedCounter() uint64 { return 1 }
func (n *nullDRBG) Uninstantiate()        {}

// BenchmarkPoolDRBGConsumerCeiling measures the pipeline with free
// block production (null lanes): the serialized consumer's ceiling.
func BenchmarkPoolDRBGConsumerCeiling(b *testing.B) {
	dp := benchDRBGPool(b, DRBGCTR)
	for _, l := range dp.lanes {
		l.d = &nullDRBG{}
	}
	buf := make([]byte, 1<<16)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := dp.Generate(buf, false, time.Second); err != nil || n != len(buf) {
			b.Fatalf("Generate = (%d, %v)", n, err)
		}
	}
}

// BenchmarkDRBGSingleLane is one real lane with no pipeline (a
// single-shard pool never dispatches workers): the per-lane production
// rate that divides the consumer ceiling into the scaling headroom.
func BenchmarkDRBGSingleLane(b *testing.B) {
	p, err := New(Config{
		Shards:       1,
		Seed:         3,
		NewSource:    goodScript,
		Health:       assessHealth(0),
		SeedTapBytes: 1 << 15,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Fill(make([]byte, 4096)); err != nil {
		b.Fatal(err)
	}
	dp, err := p.DRBGPool(DRBGConfig{Kind: DRBGCTR, ReseedInterval: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	if n, err := dp.Generate(buf, false, time.Second); err != nil || n != len(buf) {
		b.Fatalf("warmup = (%d, %v)", n, err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := dp.Generate(buf, false, time.Second); err != nil || n != len(buf) {
			b.Fatalf("Generate = (%d, %v)", n, err)
		}
	}
}

// BenchmarkShardProduce isolates one shard's gated generation (no
// pool fan-out): the per-lane cost floor.
func BenchmarkShardProduce(b *testing.B) {
	p, err := New(Config{
		Shards: 1,
		Seed:   2,
		Source: SourceConfig{Kind: SourceERO, Model: testModel(), Divider: 16},
		Health: HealthConfig{MonitorWindow: 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	s := p.Shard(0)
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := s.produce(buf); n != len(buf) {
			b.Fatalf("produce = %d", n)
		}
	}
}
