package entropyd

import (
	"context"
	"errors"
	"sync"
	"time"
)

// pollInterval is how long the consumer sleeps waiting for production
// to catch up — short, because it sits on the request latency path.
const pollInterval = 100 * time.Microsecond

// idlePoll is the producer's sleep when its ring is full: an idle
// daemon then costs ~1k wakeups/s/shard instead of 10k, and the
// latency cost is nil — a full ring has at least one whole block
// buffered ahead of the consumer.
const idlePoll = time.Millisecond

// Serve switches the pool into daemon mode: one producer goroutine per
// shard keeps the shard's ring topped up with gated bytes, quarantined
// shards recalibrate themselves with backoff, and consumers drain the
// rings through ReadBuffered. Serve returns immediately; production
// stops — and the pool returns to batch mode — when ctx is cancelled
// or Stop is called, whichever comes first.
//
// Batch mode (Fill/Read/Recalibrate) is unavailable while serving.
func (p *Pool) Serve(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.serving.Swap(true) {
		return errors.New("entropyd: already serving")
	}
	ctx, cancel := context.WithCancel(ctx)
	p.stop = cancel
	// Session-local shutdown: wait out this session's producers, hand
	// the rotation cursor back, and reopen batch mode — exactly once,
	// whether the session ends by Stop or by context cancellation.
	wg := new(sync.WaitGroup)
	var once sync.Once
	finish := func() {
		once.Do(func() {
			wg.Wait()
			p.serving.Store(false)
		})
	}
	p.finish = finish
	for _, s := range p.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			p.runShard(ctx, s)
		}(s)
	}
	go func() {
		<-ctx.Done()
		finish()
	}()
	return nil
}

// Stop halts serve mode and waits for the producer goroutines; the
// pool then accepts batch calls again (shard streams continue where
// the rings left off). Redundant after a context cancellation, but
// harmless.
func (p *Pool) Stop() {
	p.mu.Lock()
	stop, finish := p.stop, p.finish
	p.mu.Unlock()
	if stop == nil {
		return
	}
	stop()
	finish() // blocks until the (possibly concurrent) shutdown completed
}

// runShard is a shard's producer loop: keep the ring full while
// healthy, recalibrate with backoff while quarantined.
func (p *Pool) runShard(ctx context.Context, s *Shard) {
	chunk := make([]byte, fillBlock)
	for ctx.Err() == nil {
		switch s.State() {
		case StateHealthy:
			// Injected alarms must land even when the ring is full
			// and produce() (the other check site) never runs — an
			// idle daemon still honors the operator drill.
			if s.injected.Swap(false) {
				s.quarantine(ReasonInjected)
				continue
			}
			free := s.ring.free()
			if free == 0 {
				if s.tap != nil {
					// Surveillance duty (DRBG mode): nothing drains
					// the raw stream, but the embedded tests, the
					// periodic assessment and the seed tap all live
					// off fresh raw bits — the hardware analogue of a
					// free-running source under continuous health
					// monitoring. Produce a block and discard the
					// gated bytes (the output ring is full; a tapped
					// pool serves DRBG output, not the raw stream).
					s.produce(chunk)
					continue
				}
				if !sleepCtx(ctx, idlePoll) {
					return
				}
				continue
			}
			if free > len(chunk) {
				free = len(chunk)
			}
			n := s.produce(chunk[:free])
			// An alarm mid-produce already drained the ring; the
			// bytes produced just before it are equally suspect
			// and must not be pushed.
			if n > 0 && s.State() == StateHealthy {
				s.ring.push(chunk[:n])
			}
		case StateQuarantined:
			if !sleepCtx(ctx, p.cfg.Health.RecalibrateBackoff) {
				return
			}
			s.recalibrate()
		default:
			if !sleepCtx(ctx, pollInterval) {
				return
			}
		}
	}
}

// sleepCtx sleeps for d unless the context ends first; reports whether
// the context is still alive.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ReadBuffered moves up to len(dst) bytes from the shard rings into
// dst, waiting up to `wait` for production to catch up, and returns
// the byte count; (0, ErrStarved) when nothing could be served within
// the deadline.
//
// Consumption follows the same deterministic rotation as Fill — blocks
// of fillBlock bytes taken round-robin from the healthy shards, each
// block drained from its shard's ring in order — so in the healthy
// steady state the buffered stream is bit-identical to the Fill stream
// of an identically configured pool. When the current shard drops out
// mid-block (its ring was drained at quarantine), the rotation moves
// on to the next healthy shard, which starts a fresh full block;
// re-admitted shards rejoin the rotation at their next turn.
func (p *Pool) ReadBuffered(dst []byte, wait time.Duration) (int, error) {
	if !p.serving.Load() {
		return 0, ErrNotServing
	}
	if len(dst) == 0 {
		return 0, nil
	}
	p.consMu.Lock()
	defer p.consMu.Unlock()
	// The wait budget starts once the consumer is in service, so
	// requests queued behind a slow one are not pre-starved by lock
	// wait (the daemon bounds the queue separately).
	deadline := time.Now().Add(wait)
	n := 0
	for n < len(dst) {
		if !p.serving.Load() {
			// Stop() is waiting on consMu; hand the cursor back.
			break
		}
		s := p.shards[p.rrShard]
		if s.State() != StateHealthy {
			if !p.nextHealthy(true) {
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(pollInterval)
			}
			continue
		}
		want := len(dst) - n
		if want > p.rrLeft {
			want = p.rrLeft
		}
		got := s.ring.pop(dst[n : n+want])
		n += got
		p.rrLeft -= got
		if p.rrLeft == 0 {
			p.nextHealthy(false)
		}
		if got == 0 {
			// Healthy but the producer is behind: the rotation
			// waits for THIS shard (that is what keeps the
			// interleave deterministic) until the deadline.
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(pollInterval)
		}
	}
	p.bytesOut.Add(uint64(n))
	if n == 0 {
		return 0, ErrStarved
	}
	return n, nil
}

// nextHealthy advances the rotation cursor to the next healthy shard
// and resets the block budget. With skipCurrent the current shard is
// excluded (it just dropped out). Reports whether a healthy shard was
// found; on failure the cursor is left in place.
func (p *Pool) nextHealthy(skipCurrent bool) bool {
	k := len(p.shards)
	for d := 1; d <= k; d++ {
		i := (p.rrShard + d) % k
		if i == p.rrShard && skipCurrent {
			continue
		}
		if p.shards[i].State() == StateHealthy {
			p.rrShard = i
			p.rrLeft = fillBlock
			return true
		}
	}
	return false
}
