package entropyd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drbg"
	"repro/internal/obs"
)

// DRBGKind selects the SP 800-90A mechanism behind a DRBGPool lane.
type DRBGKind int

// Supported mechanisms.
const (
	// DRBGCTR is CTR_DRBG-AES-256 without derivation function — the
	// fastest expansion path (AES throughput).
	DRBGCTR DRBGKind = iota
	// DRBGHMAC is HMAC_DRBG over SHA-256.
	DRBGHMAC
)

// String names the kind.
func (k DRBGKind) String() string {
	switch k {
	case DRBGCTR:
		return "ctr-drbg-aes256"
	case DRBGHMAC:
		return "hmac-drbg-sha256"
	default:
		return fmt.Sprintf("DRBGKind(%d)", int(k))
	}
}

// laneQueueDepth bounds each lane's pre-generated block queue: deep
// enough to keep a worker busy while the consumer stitches the other
// lanes, shallow enough that a quarantine never has more than
// laneQueueDepth×BlockBytes of suspect output to drain.
const laneQueueDepth = 4

// DRBGConfig assembles a DRBGPool.
type DRBGConfig struct {
	// Kind selects the mechanism (default DRBGCTR).
	Kind DRBGKind
	// ReseedInterval is the number of Generate calls (= output blocks)
	// each lane serves per seed before it must reseed (default 1024,
	// ceiling 2^48). With the default BlockBytes this is 4 MiB of
	// output per reseed.
	ReseedInterval uint64
	// BlockBytes is the fixed per-lane Generate granularity (default
	// 4096). Requests are sliced out of whole blocks, which is what
	// makes the pool's stream invariant to request chunking: a DRBG's
	// raw output depends on its Generate call boundaries, so the pool
	// pins them.
	BlockBytes int
	// SeedWait bounds how long a single instantiate/reseed waits for
	// seed material before failing closed (default 1s). Generate's
	// caller-supplied wait is capped by it per draw.
	SeedWait time.Duration
	// Seed parameterizes the conditioning seed source.
	Seed SeedConfig
	// Personalization is an optional deployment-level personalization
	// prefix; each lane appends its shard index for domain separation.
	// At most 32 bytes (CTR_DRBG's seedlen bounds the total).
	Personalization []byte
}

// drbgLane is one shard-backed DRBG instance plus its block pipeline.
//
// Ownership protocol: the rotation consumer (the single Generate call
// holding DRBGPool.mu) and the lane's worker goroutine coordinate
// through mu/cond. The DRBG instance d is touched by the worker only
// between working=true and working=false, and by the consumer only
// when it has observed pending==0 && !working under mu — so d needs no
// lock of its own and every handoff carries a happens-before edge.
type drbgLane struct {
	shard int
	d     drbg.DRBG
	buf   []byte // block being sliced to requests
	pos   int    // consumed prefix of buf

	// Pipeline state, owned by mu. queue holds pre-generated blocks in
	// DRBG call order (FIFO — consuming out of order would break the
	// stream pin); free recycles their buffers; pending is the block
	// demand the current request has dispatched to the worker.
	mu       sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	free     [][]byte
	pending  int
	working  bool
	err      error  // first production failure, consumed by the rotation
	seenQuar uint64 // shard quarantine count at the last drain check

	generates atomic.Uint64
	reseeds   atomic.Uint64
	failures  atomic.Uint64
	queuedN   atomic.Uint64
	drainedN  atomic.Uint64
	// live and counter mirror (d != nil) and d.ReseedCounter() as
	// atomics so Stats never has to take the pool lock: /healthz and
	// /metrics must stay responsive while a Generate holds the lock
	// waiting out a seed starvation — exactly the incident an
	// operator needs to observe.
	live    atomic.Bool
	counter atomic.Uint64
}

// DRBGPool is the expansion layer over an entropy pool: one SP 800-90A
// DRBG lane per shard, seeded and reseeded through the pool's vetted
// conditioning SeedSource under the same health gates as the raw
// stream. Output is produced in fixed BlockBytes Generate calls,
// rotated round-robin over the live lanes, and sliced to requests — so
// the served stream is bit-identical across request chunkings given
// the same seed schedule, while its RATE is bounded by AES/SHA
// throughput instead of oscillator physics.
//
// Production is pipelined: a request spanning two or more blocks
// computes, from the round-robin schedule alone, exactly how many
// fresh blocks each lane owes it, and dispatches that demand to
// per-lane worker goroutines filling bounded FIFO queues under the
// lane's own lock. The rotation consumer stitches queued blocks in the
// identical round-robin order the sequential path used, so aggregate
// throughput scales with GOMAXPROCS while the byte stream stays
// bit-identical to sequential rotation: each lane's DRBG calls happen
// in the same order with the same boundaries, and each lane reseeds
// from its own shard's tap (lane affinity), so concurrent lanes never
// race for the same seed bytes while healthy. Demand-driven dispatch
// (rather than free-running production) also keeps the reseed schedule
// exactly request-shaped — no speculative Generate calls — which is
// what lets prediction-resistance accounting stay exact.
//
// Lanes fail closed: a lane whose reseed interval is exhausted and
// whose reseed cannot obtain seed material (its shard and every
// fallback shard quarantined, unassessed or starved) stops producing
// with ErrSeedStarved rather than stretching the stale seed. The pool
// degrades to the remaining live lanes and recovers automatically once
// recalibrated shards publish a fresh same-epoch assessment. A shard
// quarantine additionally drains the lane's queued blocks — output
// pre-generated before the alarm tripped is discarded unserved,
// exactly like the raw bytes below a seed tap's drain watermark.
type DRBGPool struct {
	pool *Pool
	src  *SeedSource
	cfg  DRBGConfig

	mu    sync.Mutex // owns the rotation cursor and serializes consumers
	lanes []*drbgLane
	rr    int

	generates   atomic.Uint64
	reseeds     atomic.Uint64
	reseedFails atomic.Uint64
}

// DRBGPool builds the expansion layer over the pool. The pool must
// have a seed tap (Config.SeedTapBytes > 0).
func (p *Pool) DRBGPool(cfg DRBGConfig) (*DRBGPool, error) {
	if cfg.ReseedInterval == 0 {
		cfg.ReseedInterval = 1024
	}
	if cfg.ReseedInterval > drbg.MaxReseedInterval {
		return nil, fmt.Errorf("entropyd: reseed interval %d exceeds 2^48", cfg.ReseedInterval)
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 4096
	}
	if cfg.BlockBytes < 16 || cfg.BlockBytes > drbg.MaxRequestBytes {
		return nil, fmt.Errorf("entropyd: drbg block %d outside [16, %d]", cfg.BlockBytes, drbg.MaxRequestBytes)
	}
	if cfg.SeedWait == 0 {
		cfg.SeedWait = time.Second
	}
	if len(cfg.Personalization) > 32 {
		return nil, fmt.Errorf("entropyd: personalization prefix %d bytes exceeds 32", len(cfg.Personalization))
	}
	switch cfg.Kind {
	case DRBGCTR, DRBGHMAC:
	default:
		return nil, fmt.Errorf("entropyd: unknown DRBG kind %d", int(cfg.Kind))
	}
	src, err := p.SeedSource(cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &DRBGPool{pool: p, src: src, cfg: cfg}
	d.lanes = make([]*drbgLane, len(p.shards))
	for i := range d.lanes {
		l := &drbgLane{shard: i, buf: make([]byte, 0, cfg.BlockBytes)}
		l.cond = sync.NewCond(&l.mu)
		l.seenQuar = p.shards[i].quarantines.Load()
		d.lanes[i] = l
	}
	return d, nil
}

// SeedSourceStats exposes the underlying seed source counters.
func (d *DRBGPool) SeedSourceStats() SeedSourceStats { return d.src.Stats() }

// personalization builds the lane's domain-separation string.
func (d *DRBGPool) personalization(shard int) []byte {
	return append(append([]byte(nil), d.cfg.Personalization...), fmt.Sprintf("/lane-%d", shard)...)
}

// zeroize wipes seed material once the DRBG has absorbed it (§9.4
// hygiene: no full-entropy seed input lingers in the heap).
func zeroize(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// instantiate brings a lane's DRBG up from full-entropy seed material.
func (d *DRBGPool) instantiate(l *drbgLane, wait time.Duration) error {
	seed := make([]byte, 48) // both mechanisms: 48 bytes (entropy[+nonce] / seedlen)
	if err := d.src.Seed(seed, l.shard, wait); err != nil {
		return err
	}
	defer zeroize(seed)
	var inst drbg.DRBG
	var err error
	switch d.cfg.Kind {
	case DRBGHMAC:
		inst, err = drbg.NewHMAC(seed[:32], seed[32:], d.personalization(l.shard),
			drbg.HMACConfig{ReseedInterval: d.cfg.ReseedInterval})
	case DRBGCTR:
		inst, err = drbg.NewCTR(seed, d.personalization(l.shard),
			drbg.CTRConfig{ReseedInterval: d.cfg.ReseedInterval})
	}
	if err != nil {
		return err
	}
	l.d = inst
	l.live.Store(true)
	d.pool.emit(obs.Event{Type: obs.TypeDRBGInstantiate, Shard: l.shard, Lane: l.shard,
		Detail: d.cfg.Kind.String()})
	return nil
}

// fillInto produces one output block into dst from the lane's DRBG,
// instantiating or reseeding first when required (or when the caller
// demands prediction resistance). Fails closed: on any seed shortfall
// the lane produces nothing. The caller must hold exclusive use of the
// lane's DRBG (either the rotation with no worker active, or the
// worker itself) and must NOT hold the lane lock — seed draws can wait.
func (d *DRBGPool) fillInto(l *drbgLane, dst []byte, pr bool, wait time.Duration) error {
	if l.d == nil {
		if err := d.instantiate(l, wait); err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			d.pool.emit(obs.Event{Type: obs.TypeDRBGReseedFail, Shard: l.shard, Lane: l.shard,
				Reason: err.Error()})
			return err
		}
		d.reseeds.Add(1)
		l.reseeds.Add(1)
	} else if pr || l.d.ReseedCounter() > d.cfg.ReseedInterval {
		seed := make([]byte, l.d.ReseedLen())
		if err := d.src.Seed(seed, l.shard, wait); err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			d.pool.emit(obs.Event{Type: obs.TypeDRBGReseedFail, Shard: l.shard, Lane: l.shard,
				Reason: err.Error()})
			return err
		}
		err := l.d.Reseed(seed, nil)
		zeroize(seed)
		if err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			d.pool.emit(obs.Event{Type: obs.TypeDRBGReseedFail, Shard: l.shard, Lane: l.shard,
				Reason: err.Error()})
			return err
		}
		d.reseeds.Add(1)
		l.reseeds.Add(1)
		d.pool.emit(obs.Event{Type: obs.TypeDRBGReseed, Shard: l.shard, Lane: l.shard})
	}
	if err := l.d.Generate(dst, nil); err != nil {
		// ErrReseedRequired cannot normally reach here (the interval
		// check above reseeds first); fail the lane closed regardless.
		l.counter.Store(l.d.ReseedCounter())
		l.failures.Add(1)
		d.reseedFails.Add(1)
		return err
	}
	l.counter.Store(l.d.ReseedCounter())
	d.generates.Add(1)
	l.generates.Add(1)
	return nil
}

// fillLane refreshes the lane's current block in place (the
// synchronous path: single-block requests, pr rounds, and retry after
// a worker failure).
func (d *DRBGPool) fillLane(l *drbgLane, pr bool, wait time.Duration) error {
	l.buf = l.buf[:d.cfg.BlockBytes]
	if err := d.fillInto(l, l.buf, pr, wait); err != nil {
		l.buf, l.pos = l.buf[:0], 0
		return err
	}
	l.pos = 0
	return nil
}

// dispatch computes, from the round-robin schedule, how many fresh
// blocks each lane must produce for an n-byte request beyond what its
// queue already holds, and starts lane workers for that demand.
// Single-block requests (and single-lane pools) stay on the purely
// synchronous path: no goroutines, no queue traffic.
func (d *DRBGPool) dispatch(n int) {
	if len(d.lanes) < 2 {
		return
	}
	cur := d.lanes[d.rr]
	need := n - (len(cur.buf) - cur.pos)
	if need <= 0 {
		return
	}
	blocks := (need + d.cfg.BlockBytes - 1) / d.cfg.BlockBytes
	if blocks < 2 {
		return
	}
	// The lane serving the first FRESH block: the cursor lane itself
	// when its buffer is spent, otherwise its successor (the rotation
	// advances off the cursor lane once its remainder is consumed).
	first := d.rr
	if cur.pos < len(cur.buf) {
		first = (d.rr + 1) % len(d.lanes)
	}
	for k := 0; k < len(d.lanes) && k < blocks; k++ {
		l := d.lanes[(first+k)%len(d.lanes)]
		visits := (blocks - k + len(d.lanes) - 1) / len(d.lanes)
		l.mu.Lock()
		if fresh := visits - len(l.queue); fresh > 0 {
			l.pending = fresh
			if !l.working {
				l.working = true
				go d.laneWorker(l)
			}
			l.cond.Broadcast()
		}
		l.mu.Unlock()
	}
}

// laneWorker produces the lane's dispatched demand into its queue,
// blocking while the queue is at depth. It exits when the demand is
// settled or on the first production failure (fail closed — the error
// is parked for the rotation to consume; later visits retry
// synchronously).
func (d *DRBGPool) laneWorker(l *drbgLane) {
	l.mu.Lock()
	for {
		for l.pending > 0 && len(l.queue) >= laneQueueDepth {
			l.cond.Wait()
		}
		if l.pending == 0 {
			break
		}
		var block []byte
		if n := len(l.free); n > 0 {
			block = l.free[n-1][:d.cfg.BlockBytes]
			l.free = l.free[:n-1]
		} else {
			block = make([]byte, d.cfg.BlockBytes)
		}
		l.mu.Unlock()
		err := d.fillInto(l, block, false, d.cfg.SeedWait)
		l.mu.Lock()
		if err != nil {
			l.free = append(l.free, block[:0])
			if l.err == nil {
				l.err = err
			}
			l.pending = 0
			break
		}
		l.queue = append(l.queue, block)
		l.queuedN.Store(uint64(len(l.queue)))
		if l.pending > 0 {
			l.pending--
		}
		l.cond.Broadcast()
	}
	l.working = false
	l.cond.Broadcast()
	l.mu.Unlock()
}

// settle withdraws any unconsumed demand at the end of a request so
// workers stop instead of producing blocks nobody asked for (demand
// only outlives a request on failure-redistribution paths).
func (d *DRBGPool) settle() {
	for _, l := range d.lanes {
		l.mu.Lock()
		l.pending = 0
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// drainQuarantinedLocked discards the lane's queued blocks once per
// shard quarantine event: output pre-generated before the alarm
// tripped is suspect the same way raw tap bytes below the drain
// watermark are, and is dropped unserved. The lane's DRBG keeps its
// remaining reseed interval, exactly as in sequential rotation.
// Caller holds l.mu.
func (d *DRBGPool) drainQuarantinedLocked(l *drbgLane) {
	q := d.pool.shards[l.shard].quarantines.Load()
	if q == l.seenQuar {
		return
	}
	l.seenQuar = q
	if n := len(l.queue); n > 0 {
		for _, b := range l.queue {
			l.free = append(l.free, b[:0])
		}
		l.queue = l.queue[:0]
		l.queuedN.Store(0)
		l.drainedN.Add(uint64(n))
		d.pool.emit(obs.Event{Type: obs.TypeDRBGDrain, Shard: l.shard, Lane: l.shard,
			Value: float64(n), Reason: d.pool.shards[l.shard].LastReason().String()})
		l.cond.Broadcast()
	}
}

// ensureBlock hands the rotation the lane's next block: the queue head
// when the pipeline produced one (FIFO — DRBG call order), a parked
// worker error if production failed, or a synchronous fill when no
// worker owes this lane anything.
func (d *DRBGPool) ensureBlock(l *drbgLane, seedWait time.Duration) error {
	l.mu.Lock()
	for {
		d.drainQuarantinedLocked(l)
		if len(l.queue) > 0 {
			block := l.queue[0]
			l.queue = l.queue[1:]
			l.queuedN.Store(uint64(len(l.queue)))
			l.free = append(l.free, l.buf[:0])
			l.buf, l.pos = block, 0
			l.cond.Broadcast()
			l.mu.Unlock()
			return nil
		}
		if l.err != nil {
			err := l.err
			l.err = nil
			l.mu.Unlock()
			return err
		}
		if l.pending > 0 || l.working {
			l.cond.Wait()
			continue
		}
		l.mu.Unlock()
		// Quiesced lane: the consumer owns the DRBG (no worker can
		// start — dispatch happens only under the pool lock we hold).
		return d.fillLane(l, false, seedWait)
	}
}

// prReset quiesces the pipeline for a prediction-resistance round:
// demand is withdrawn, in-flight workers are waited out, and queued
// blocks plus buffered remainders are discarded — PR covers EVERY byte
// of the request, so each served block must be generated after a fresh
// reseed, synchronously.
func (d *DRBGPool) prReset() {
	for _, l := range d.lanes {
		l.mu.Lock()
		l.pending = 0
		l.cond.Broadcast()
		for l.working {
			l.cond.Wait()
		}
		for _, b := range l.queue {
			l.free = append(l.free, b[:0])
		}
		l.queue = l.queue[:0]
		l.queuedN.Store(0)
		l.err = nil
		l.pos = len(l.buf)
		l.mu.Unlock()
	}
}

// Generate fills dst with DRBG output and returns the byte count.
// Blocks of BlockBytes are taken round-robin from the live lanes; a
// lane that cannot (re)seed is skipped for the round, and when every
// lane fails in one rotation the call returns short with the last
// lane's error (errors.Is(err, ErrSeedStarved) in the starved case —
// the partial prefix of dst is valid output). Requests spanning two or
// more blocks are produced by the per-lane worker pipeline and
// stitched in rotation order; the served stream is bit-identical to
// sequential production. With pr set, every lane reseeds with fresh
// conditioned entropy immediately before each Generate block that
// serves the request (SP 800-90A prediction resistance), at
// raw-physics cost and strictly sequentially. wait bounds the total
// time spent waiting on seed material on the synchronous path;
// pipelined blocks bound each draw by Config.SeedWait instead.
func (d *DRBGPool) Generate(dst []byte, pr bool, wait time.Duration) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pr {
		d.prReset()
	} else {
		d.dispatch(len(dst))
		defer d.settle()
	}
	deadline := time.Now().Add(wait)
	n := 0
	fails := 0
	var lastErr error
	for n < len(dst) {
		l := d.lanes[d.rr]
		if l.pos == len(l.buf) {
			seedWait := time.Until(deadline)
			if seedWait > d.cfg.SeedWait {
				seedWait = d.cfg.SeedWait
			}
			if seedWait < 0 {
				seedWait = 0
			}
			var err error
			if pr {
				err = d.fillLane(l, true, seedWait)
			} else {
				err = d.ensureBlock(l, seedWait)
			}
			if err != nil {
				lastErr = err
				d.rr = (d.rr + 1) % len(d.lanes)
				if fails++; fails >= len(d.lanes) {
					d.pool.emit(obs.Event{Type: obs.TypeDRBGFailClosed, Shard: obs.Any, Lane: obs.Any,
						Value: float64(n), Reason: lastErr.Error()})
					return n, lastErr
				}
				continue
			}
			fails = 0
		}
		c := copy(dst[n:], l.buf[l.pos:])
		n += c
		l.pos += c
		if l.pos == len(l.buf) {
			d.rr = (d.rr + 1) % len(d.lanes)
		}
	}
	return n, nil
}

// DRBGLaneStatus is a point-in-time snapshot of one lane.
type DRBGLaneStatus struct {
	Shard        int  `json:"shard"`
	Instantiated bool `json:"instantiated"`
	// ReseedCounter is the lane's Generate calls since its last seed
	// (0 before instantiation).
	ReseedCounter  uint64 `json:"reseed_counter"`
	Generates      uint64 `json:"generates"`
	Reseeds        uint64 `json:"reseeds"`
	ReseedFailures uint64 `json:"reseed_failures"`
	// QueuedBlocks is the lane's current pipeline depth;
	// DrainedBlocks counts pre-generated blocks discarded unserved by
	// shard quarantines.
	QueuedBlocks  uint64 `json:"queued_blocks"`
	DrainedBlocks uint64 `json:"drained_blocks"`
	// SeedRetryRounds counts seed-source backoff rounds on draws
	// preferring this lane's shard: how often the heal path had to
	// wait out an empty tap before reseeding.
	SeedRetryRounds uint64 `json:"seed_retry_rounds"`
}

// DRBGStats is a point-in-time snapshot of the expansion layer.
// Reseeds counts every successful seeding event — lane instantiations
// included — and ReseedFailures every failed one (fail-closed: a
// failed lane produced no output for that turn).
type DRBGStats struct {
	Kind            string           `json:"kind"`
	Conditioner     string           `json:"conditioner"`
	ReseedInterval  uint64           `json:"reseed_interval"`
	BlockBytes      int              `json:"block_bytes"`
	Generates       uint64           `json:"generates"`
	Reseeds         uint64           `json:"reseeds"`
	ReseedFailures  uint64           `json:"reseed_failures"`
	SeedDraws       uint64           `json:"seed_draws"`
	SeedStarves     uint64           `json:"seed_starves"`
	SeedRetryRounds uint64           `json:"seed_retry_rounds"`
	Lanes           []DRBGLaneStatus `json:"lanes"`
}

// Stats snapshots the pool counters. It reads only atomics — never
// the pool lock — so /healthz and /metrics stay responsive while a
// Generate call holds the lock waiting out a seed starvation (the
// exact situation an operator inspects).
func (d *DRBGPool) Stats() DRBGStats {
	ss := d.src.Stats()
	st := DRBGStats{
		Kind:            d.cfg.Kind.String(),
		Conditioner:     ss.Conditioner,
		ReseedInterval:  d.cfg.ReseedInterval,
		BlockBytes:      d.cfg.BlockBytes,
		Generates:       d.generates.Load(),
		Reseeds:         d.reseeds.Load(),
		ReseedFailures:  d.reseedFails.Load(),
		SeedDraws:       ss.Draws,
		SeedStarves:     ss.Starves,
		SeedRetryRounds: ss.RetryRounds,
		Lanes:           make([]DRBGLaneStatus, len(d.lanes)),
	}
	for i, l := range d.lanes {
		st.Lanes[i] = DRBGLaneStatus{
			Shard:           l.shard,
			Instantiated:    l.live.Load(),
			ReseedCounter:   l.counter.Load(),
			Generates:       l.generates.Load(),
			Reseeds:         l.reseeds.Load(),
			ReseedFailures:  l.failures.Load(),
			QueuedBlocks:    l.queuedN.Load(),
			DrainedBlocks:   l.drainedN.Load(),
			SeedRetryRounds: d.src.RetryRounds(l.shard),
		}
	}
	return st
}
