package entropyd

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/drbg"
)

// DRBGKind selects the SP 800-90A mechanism behind a DRBGPool lane.
type DRBGKind int

// Supported mechanisms.
const (
	// DRBGCTR is CTR_DRBG-AES-256 without derivation function — the
	// fastest expansion path (AES throughput).
	DRBGCTR DRBGKind = iota
	// DRBGHMAC is HMAC_DRBG over SHA-256.
	DRBGHMAC
)

// String names the kind.
func (k DRBGKind) String() string {
	switch k {
	case DRBGCTR:
		return "ctr-drbg-aes256"
	case DRBGHMAC:
		return "hmac-drbg-sha256"
	default:
		return fmt.Sprintf("DRBGKind(%d)", int(k))
	}
}

// DRBGConfig assembles a DRBGPool.
type DRBGConfig struct {
	// Kind selects the mechanism (default DRBGCTR).
	Kind DRBGKind
	// ReseedInterval is the number of Generate calls (= output blocks)
	// each lane serves per seed before it must reseed (default 1024,
	// ceiling 2^48). With the default BlockBytes this is 4 MiB of
	// output per reseed.
	ReseedInterval uint64
	// BlockBytes is the fixed per-lane Generate granularity (default
	// 4096). Requests are sliced out of whole blocks, which is what
	// makes the pool's stream invariant to request chunking: a DRBG's
	// raw output depends on its Generate call boundaries, so the pool
	// pins them.
	BlockBytes int
	// SeedWait bounds how long a single instantiate/reseed waits for
	// seed material before failing closed (default 1s). Generate's
	// caller-supplied wait is capped by it per draw.
	SeedWait time.Duration
	// Seed parameterizes the conditioning seed source.
	Seed SeedConfig
	// Personalization is an optional deployment-level personalization
	// prefix; each lane appends its shard index for domain separation.
	// At most 32 bytes (CTR_DRBG's seedlen bounds the total).
	Personalization []byte
}

// drbgLane is one shard-backed DRBG instance plus its block buffer.
type drbgLane struct {
	shard int
	d     drbg.DRBG
	buf   []byte // current output block
	pos   int    // consumed prefix of buf

	generates atomic.Uint64
	reseeds   atomic.Uint64
	failures  atomic.Uint64
	// live and counter mirror (d != nil) and d.ReseedCounter() as
	// atomics so Stats never has to take the pool lock: /healthz and
	// /metrics must stay responsive while a Generate holds the lock
	// waiting out a seed starvation — exactly the incident an
	// operator needs to observe.
	live    atomic.Bool
	counter atomic.Uint64
}

// DRBGPool is the expansion layer over an entropy pool: one SP 800-90A
// DRBG lane per shard, seeded and reseeded through the pool's vetted
// conditioning SeedSource under the same health gates as the raw
// stream. Output is produced in fixed BlockBytes Generate calls,
// rotated round-robin over the live lanes, and sliced to requests — so
// the served stream is bit-identical across request chunkings given
// the same seed schedule, while its RATE is bounded by AES/SHA
// throughput instead of oscillator physics.
//
// Lanes fail closed: a lane whose reseed interval is exhausted and
// whose reseed cannot obtain seed material (its shard and every
// fallback shard quarantined, unassessed or starved) stops producing
// with ErrSeedStarved rather than stretching the stale seed. The pool
// degrades to the remaining live lanes and recovers automatically once
// recalibrated shards publish a fresh same-epoch assessment.
type DRBGPool struct {
	pool *Pool
	src  *SeedSource
	cfg  DRBGConfig

	mu    sync.Mutex // owns lanes and the rotation cursor
	lanes []*drbgLane
	rr    int

	generates   atomic.Uint64
	reseeds     atomic.Uint64
	reseedFails atomic.Uint64
}

// DRBGPool builds the expansion layer over the pool. The pool must
// have a seed tap (Config.SeedTapBytes > 0).
func (p *Pool) DRBGPool(cfg DRBGConfig) (*DRBGPool, error) {
	if cfg.ReseedInterval == 0 {
		cfg.ReseedInterval = 1024
	}
	if cfg.ReseedInterval > drbg.MaxReseedInterval {
		return nil, fmt.Errorf("entropyd: reseed interval %d exceeds 2^48", cfg.ReseedInterval)
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 4096
	}
	if cfg.BlockBytes < 16 || cfg.BlockBytes > drbg.MaxRequestBytes {
		return nil, fmt.Errorf("entropyd: drbg block %d outside [16, %d]", cfg.BlockBytes, drbg.MaxRequestBytes)
	}
	if cfg.SeedWait == 0 {
		cfg.SeedWait = time.Second
	}
	if len(cfg.Personalization) > 32 {
		return nil, fmt.Errorf("entropyd: personalization prefix %d bytes exceeds 32", len(cfg.Personalization))
	}
	switch cfg.Kind {
	case DRBGCTR, DRBGHMAC:
	default:
		return nil, fmt.Errorf("entropyd: unknown DRBG kind %d", int(cfg.Kind))
	}
	src, err := p.SeedSource(cfg.Seed)
	if err != nil {
		return nil, err
	}
	d := &DRBGPool{pool: p, src: src, cfg: cfg}
	d.lanes = make([]*drbgLane, len(p.shards))
	for i := range d.lanes {
		d.lanes[i] = &drbgLane{shard: i, buf: make([]byte, 0, cfg.BlockBytes)}
	}
	return d, nil
}

// SeedSourceStats exposes the underlying seed source counters.
func (d *DRBGPool) SeedSourceStats() SeedSourceStats { return d.src.Stats() }

// personalization builds the lane's domain-separation string.
func (d *DRBGPool) personalization(shard int) []byte {
	return append(append([]byte(nil), d.cfg.Personalization...), fmt.Sprintf("/lane-%d", shard)...)
}

// zeroize wipes seed material once the DRBG has absorbed it (§9.4
// hygiene: no full-entropy seed input lingers in the heap).
func zeroize(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// instantiate brings a lane's DRBG up from full-entropy seed material.
func (d *DRBGPool) instantiate(l *drbgLane, wait time.Duration) error {
	seed := make([]byte, 48) // both mechanisms: 48 bytes (entropy[+nonce] / seedlen)
	if err := d.src.Seed(seed, l.shard, wait); err != nil {
		return err
	}
	defer zeroize(seed)
	var inst drbg.DRBG
	var err error
	switch d.cfg.Kind {
	case DRBGHMAC:
		inst, err = drbg.NewHMAC(seed[:32], seed[32:], d.personalization(l.shard),
			drbg.HMACConfig{ReseedInterval: d.cfg.ReseedInterval})
	case DRBGCTR:
		inst, err = drbg.NewCTR(seed, d.personalization(l.shard),
			drbg.CTRConfig{ReseedInterval: d.cfg.ReseedInterval})
	}
	if err != nil {
		return err
	}
	l.d = inst
	l.live.Store(true)
	return nil
}

// fillLane refreshes a lane's output block, instantiating or reseeding
// first when required (or when the caller demands prediction
// resistance). Fails closed: on any seed shortfall the lane produces
// nothing.
func (d *DRBGPool) fillLane(l *drbgLane, pr bool, wait time.Duration) error {
	if l.d == nil {
		if err := d.instantiate(l, wait); err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			return err
		}
		d.reseeds.Add(1)
		l.reseeds.Add(1)
	} else if pr || l.d.ReseedCounter() > d.cfg.ReseedInterval {
		seed := make([]byte, l.d.ReseedLen())
		if err := d.src.Seed(seed, l.shard, wait); err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			return err
		}
		err := l.d.Reseed(seed, nil)
		zeroize(seed)
		if err != nil {
			l.failures.Add(1)
			d.reseedFails.Add(1)
			return err
		}
		d.reseeds.Add(1)
		l.reseeds.Add(1)
	}
	l.buf = l.buf[:d.cfg.BlockBytes]
	if err := l.d.Generate(l.buf, nil); err != nil {
		// ErrReseedRequired cannot normally reach here (the interval
		// check above reseeds first); fail the lane closed regardless.
		l.buf, l.pos = l.buf[:0], 0
		l.counter.Store(l.d.ReseedCounter())
		l.failures.Add(1)
		d.reseedFails.Add(1)
		return err
	}
	l.pos = 0
	l.counter.Store(l.d.ReseedCounter())
	d.generates.Add(1)
	l.generates.Add(1)
	return nil
}

// Generate fills dst with DRBG output and returns the byte count.
// Blocks of BlockBytes are taken round-robin from the live lanes; a
// lane that cannot (re)seed is skipped for the round, and when every
// lane fails in one rotation the call returns short with the last
// lane's error (errors.Is(err, ErrSeedStarved) in the starved case —
// the partial prefix of dst is valid output). With pr set, every lane
// reseeds with fresh conditioned entropy immediately before each
// Generate block that serves the request (SP 800-90A prediction
// resistance), at raw-physics cost. wait bounds the total time spent
// waiting on seed material.
func (d *DRBGPool) Generate(dst []byte, pr bool, wait time.Duration) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if pr {
		// Prediction resistance covers EVERY byte of the request:
		// discard lane remainders buffered from earlier non-pr blocks
		// so each served block is generated after a fresh reseed.
		for _, l := range d.lanes {
			l.pos = len(l.buf)
		}
	}
	deadline := time.Now().Add(wait)
	n := 0
	fails := 0
	var lastErr error
	for n < len(dst) {
		l := d.lanes[d.rr]
		if l.pos == len(l.buf) {
			seedWait := time.Until(deadline)
			if seedWait > d.cfg.SeedWait {
				seedWait = d.cfg.SeedWait
			}
			if seedWait < 0 {
				seedWait = 0
			}
			if err := d.fillLane(l, pr, seedWait); err != nil {
				lastErr = err
				d.rr = (d.rr + 1) % len(d.lanes)
				if fails++; fails >= len(d.lanes) {
					return n, lastErr
				}
				continue
			}
			fails = 0
		}
		c := copy(dst[n:], l.buf[l.pos:])
		n += c
		l.pos += c
		if l.pos == len(l.buf) {
			d.rr = (d.rr + 1) % len(d.lanes)
		}
	}
	return n, nil
}

// DRBGLaneStatus is a point-in-time snapshot of one lane.
type DRBGLaneStatus struct {
	Shard        int  `json:"shard"`
	Instantiated bool `json:"instantiated"`
	// ReseedCounter is the lane's Generate calls since its last seed
	// (0 before instantiation).
	ReseedCounter  uint64 `json:"reseed_counter"`
	Generates      uint64 `json:"generates"`
	Reseeds        uint64 `json:"reseeds"`
	ReseedFailures uint64 `json:"reseed_failures"`
}

// DRBGStats is a point-in-time snapshot of the expansion layer.
// Reseeds counts every successful seeding event — lane instantiations
// included — and ReseedFailures every failed one (fail-closed: a
// failed lane produced no output for that turn).
type DRBGStats struct {
	Kind           string           `json:"kind"`
	Conditioner    string           `json:"conditioner"`
	ReseedInterval uint64           `json:"reseed_interval"`
	BlockBytes     int              `json:"block_bytes"`
	Generates      uint64           `json:"generates"`
	Reseeds        uint64           `json:"reseeds"`
	ReseedFailures uint64           `json:"reseed_failures"`
	SeedDraws      uint64           `json:"seed_draws"`
	SeedStarves    uint64           `json:"seed_starves"`
	Lanes          []DRBGLaneStatus `json:"lanes"`
}

// Stats snapshots the pool counters. It reads only atomics — never
// the pool lock — so /healthz and /metrics stay responsive while a
// Generate call holds the lock waiting out a seed starvation (the
// exact situation an operator inspects).
func (d *DRBGPool) Stats() DRBGStats {
	ss := d.src.Stats()
	st := DRBGStats{
		Kind:           d.cfg.Kind.String(),
		Conditioner:    ss.Conditioner,
		ReseedInterval: d.cfg.ReseedInterval,
		BlockBytes:     d.cfg.BlockBytes,
		Generates:      d.generates.Load(),
		Reseeds:        d.reseeds.Load(),
		ReseedFailures: d.reseedFails.Load(),
		SeedDraws:      ss.Draws,
		SeedStarves:    ss.Starves,
		Lanes:          make([]DRBGLaneStatus, len(d.lanes)),
	}
	for i, l := range d.lanes {
		st.Lanes[i] = DRBGLaneStatus{
			Shard:          l.shard,
			Instantiated:   l.live.Load(),
			ReseedCounter:  l.counter.Load(),
			Generates:      l.generates.Load(),
			Reseeds:        l.reseeds.Load(),
			ReseedFailures: l.failures.Load(),
		}
	}
	return st
}
