package pll

import (
	"math"
	"testing"

	"repro/internal/postproc"
)

func baseConfig() Config {
	return Config{
		F0:           125e6,
		KM:           157,
		KD:           32,
		SigmaThermal: 8e-12,
		Seed:         1,
	}
}

func TestValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.F0 = 0 },
		func(c *Config) { c.KM = 0 },
		func(c *Config) { c.KD = 0 },
		func(c *Config) { c.KM = 30 }, // gcd(30, 32) != 1
		func(c *Config) { c.SigmaThermal = -1 },
		func(c *Config) { c.FlickerSigma = 1e-12; c.FlickerTau = 0 },
	}
	for i, mutate := range bad {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGCD(t *testing.T) {
	if gcd(157, 32) != 1 || gcd(30, 32) != 2 || gcd(7, 7) != 7 {
		t.Fatal("gcd broken")
	}
}

func TestNoiselessPatternDeterministic(t *testing.T) {
	c := baseConfig()
	c.SigmaThermal = 0
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	p1 := g.Pattern()
	p2 := g.Pattern()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("noiseless patterns differ at %d", i)
		}
	}
	// Noiseless bits are constant.
	bits := g.Bits(100)
	for _, b := range bits[1:] {
		if b != bits[0] {
			t.Fatal("noiseless bits vary")
		}
	}
}

func TestPatternSweepsAllPhases(t *testing.T) {
	// With coprime KM/KD the pattern contains both values whenever
	// KD >= 3 (the sweep crosses both half-periods).
	c := baseConfig()
	c.SigmaThermal = 0
	g, _ := New(c)
	p := g.Pattern()
	var ones int
	for _, v := range p {
		ones += int(v)
	}
	if ones == 0 || ones == len(p) {
		t.Fatalf("pattern did not sweep the waveform: %v", p)
	}
	// Duty cycle of the swept pattern approximates 50 %.
	if ones < len(p)/4 || ones > 3*len(p)/4 {
		t.Fatalf("pattern duty %d/%d", ones, len(p))
	}
}

func TestJitterProducesEntropy(t *testing.T) {
	g, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(20000)
	bias := postproc.Bias(bits)
	// With critical samples flipping, bits vary; bias depends on
	// flip probability — just require non-constant output and
	// agreement with the analytic flip probability.
	model := g.Analyze()
	if model.Critical == 0 {
		t.Fatal("no critical samples at 8 ps jitter")
	}
	if model.FlipProbability <= 0 {
		t.Fatal("zero flip probability")
	}
	var flips int
	for i := 1; i < len(bits); i++ {
		if bits[i] != bits[i-1] {
			flips++
		}
	}
	if flips == 0 {
		t.Fatalf("bits constant despite jitter (bias %g)", bias)
	}
}

func TestAnalyzeMonotoneInSigma(t *testing.T) {
	prev := -1.0
	for _, s := range []float64{1e-12, 4e-12, 16e-12, 64e-12} {
		c := baseConfig()
		c.SigmaThermal = s
		g, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		h := g.Analyze().EntropyPerBit
		if h < prev {
			t.Fatalf("entropy not monotone at σ=%g: %g < %g", s, h, prev)
		}
		prev = h
	}
	if prev < 0.5 {
		t.Fatalf("entropy at 64 ps = %g, expected substantial", prev)
	}
}

func TestEmpiricalFlipMatchesModel(t *testing.T) {
	c := baseConfig()
	c.SigmaThermal = 20e-12
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	model := g.Analyze()
	// Empirical flip probability: compare each bit to the noiseless
	// reference bit (constant), so P(flip) = P(bit != ref).
	cRef := c
	cRef.SigmaThermal = 0
	gr, _ := New(cRef)
	ref := gr.NextBit()
	bits := g.Bits(40000)
	var flips int
	for _, b := range bits {
		if b != ref {
			flips++
		}
	}
	p := float64(flips) / float64(len(bits))
	if math.Abs(p-model.FlipProbability) > 0.02 {
		t.Fatalf("empirical flip %g vs model %g", p, model.FlipProbability)
	}
}

func TestCriticalSamplesGrowWithSigma(t *testing.T) {
	c := baseConfig()
	g1, _ := New(c)
	c.SigmaThermal *= 8
	g2, _ := New(c)
	if g2.CriticalSamples(3) < g1.CriticalSamples(3) {
		t.Fatal("critical count should grow with jitter")
	}
}

func TestFlickerWanderAddsCorrelation(t *testing.T) {
	c := baseConfig()
	c.FlickerSigma = 40e-12
	c.FlickerTau = 2000
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	bits := g.Bits(20000)
	// Lag-1 agreement should exceed 50 % markedly: the wander moves
	// the critical phases coherently across adjacent patterns.
	var same int
	for i := 1; i < len(bits); i++ {
		if bits[i] == bits[i-1] {
			same++
		}
	}
	frac := float64(same) / float64(len(bits)-1)
	if frac < 0.55 {
		t.Fatalf("flicker wander invisible: P(same) = %g", frac)
	}
}

func TestRequiredSigma(t *testing.T) {
	c := baseConfig()
	s, err := RequiredSigma(c, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s > 1/c.F0 {
		t.Fatalf("required σ = %g out of range", s)
	}
	c.SigmaThermal = s
	g, _ := New(c)
	if h := g.Analyze().EntropyPerBit; h < 0.9 {
		t.Fatalf("entropy at required σ = %g", h)
	}
	if _, err := RequiredSigma(c, 2); err == nil {
		t.Fatal("hMin=2 accepted")
	}
}

func TestEquivalentEROModel(t *testing.T) {
	c := baseConfig()
	m := EquivalentEROModel(c)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	f1 := float64(c.KM) * c.F0 / float64(c.KD)
	if math.Abs(m.F0-f1) > 1e-3 {
		t.Fatalf("equivalent f1 = %g, want %g", m.F0, f1)
	}
	// Accumulating KM periods of the equivalent ring reproduces the
	// configured jitter variance.
	acc := m.SigmaN2Thermal(c.KM) / 2
	want := c.SigmaThermal * c.SigmaThermal
	if math.Abs(acc-want) > 1e-9*want {
		t.Fatalf("accumulated %g, want %g", acc, want)
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, _ := New(baseConfig())
	b, _ := New(baseConfig())
	ba := a.Bits(2000)
	bb := b.Bits(2000)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}
