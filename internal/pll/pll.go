// Package pll implements the PLL-based P-TRNG of Bernard, Fischer &
// Valtchanov [5] ("Mathematical model of physical RNGs based on
// coherent sampling"), the first of the modeled generator classes the
// paper's §II surveys. Its randomness extraction differs from the
// eRO-TRNG: a PLL locks the sampled clock CLK1 to the sampling clock
// CLK0 with a rational ratio
//
//	f1/f0 = KM/KD   (KM, KD coprime),
//
// so KD consecutive samples of CLK1 taken at CLK0 edges sweep one full
// pattern period T_Q = KD·T0 = KM·T1 in deterministic phase steps of
// Δ = T1/KD. Jitter only matters at the few "critical" samples that
// land within the jitter amplitude of a CLK1 edge; XOR-ing the KD
// samples of each pattern concentrates that randomness into one raw
// bit per pattern.
//
// The coherent-sampling structure makes the stochastic model tractable
// — and it inherits the paper's warning identically: the exploitable
// per-pattern randomness is the THERMAL jitter accumulated over T_Q,
// not the total measured jitter, because flicker noise is
// autocorrelated across patterns.
package pll

import (
	"fmt"
	"math"

	"repro/internal/phase"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config describes the coherent-sampling pair.
type Config struct {
	// F0 is the sampling clock frequency in Hz.
	F0 float64
	// KM and KD are the PLL multiplication/division factors; they
	// should be coprime so the pattern sweeps all KD phases.
	KM, KD int
	// SigmaThermal is the rms thermal jitter of a CLK1 edge relative
	// to CLK0 at each sample, in seconds. (In hardware this is the
	// accumulated tracking jitter of the PLL loop, white across
	// samples.)
	SigmaThermal float64
	// FlickerSigma, when > 0, adds a slowly wandering phase offset
	// with this rms magnitude (seconds) and correlation length
	// FlickerTau samples — the autocorrelated component.
	FlickerSigma float64
	FlickerTau   int
	// PhaseOffset is the static CLK0→CLK1 phase skew in CLK1 cycles
	// (routing delay). Zero selects 1/(2·KD): half a pattern step,
	// so no nominal sample sits exactly on a waveform edge — with
	// coprime KM/KD and even KD, offset 0 would place samples
	// exactly on the edges, a measure-zero coincidence real skew
	// never realizes. Negative values select exactly 0.
	PhaseOffset float64
	// Seed seeds the jitter streams.
	Seed uint64
}

// phaseOffset resolves the default.
func (c Config) phaseOffset() float64 {
	if c.PhaseOffset < 0 {
		return 0
	}
	if c.PhaseOffset == 0 {
		return 1 / (2 * float64(c.KD))
	}
	return c.PhaseOffset
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.F0 <= 0:
		return fmt.Errorf("pll: f0 = %g must be > 0", c.F0)
	case c.KM < 1 || c.KD < 1:
		return fmt.Errorf("pll: KM=%d, KD=%d must be >= 1", c.KM, c.KD)
	case gcd(c.KM, c.KD) != 1:
		return fmt.Errorf("pll: KM=%d and KD=%d must be coprime", c.KM, c.KD)
	case c.SigmaThermal < 0 || c.FlickerSigma < 0:
		return fmt.Errorf("pll: negative jitter")
	case c.FlickerSigma > 0 && c.FlickerTau < 1:
		return fmt.Errorf("pll: flicker requires FlickerTau >= 1")
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Generator is a running PLL-TRNG.
type Generator struct {
	cfg    Config
	t1     float64 // CLK1 period
	src    *rng.Source
	sample uint64
	wander float64 // current flicker phase offset (s)
	aFl    float64 // AR(1) pole for the wander
	qFl    float64 // innovation rms
}

// New builds the generator.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		cfg: cfg,
		t1:  float64(cfg.KD) / (float64(cfg.KM) * cfg.F0),
		src: rng.New(cfg.Seed),
	}
	if cfg.FlickerSigma > 0 {
		g.aFl = math.Exp(-1 / float64(cfg.FlickerTau))
		g.qFl = cfg.FlickerSigma * math.Sqrt(1-g.aFl*g.aFl)
		g.wander = cfg.FlickerSigma * g.src.Norm()
	}
	return g, nil
}

// PatternLength returns KD, the number of samples per raw bit.
func (g *Generator) PatternLength() int { return g.cfg.KD }

// nextSample returns one sampled value of CLK1 at the current CLK0
// edge: the square waveform evaluated at the jittered relative phase.
func (g *Generator) nextSample() byte {
	t0 := 1 / g.cfg.F0
	tSample := float64(g.sample) * t0
	g.sample++
	if g.cfg.FlickerSigma > 0 {
		g.wander = g.aFl*g.wander + g.qFl*g.src.Norm()
	}
	jitter := g.wander
	if g.cfg.SigmaThermal > 0 {
		jitter += g.cfg.SigmaThermal * g.src.Norm()
	}
	phase := math.Mod((tSample+jitter)/g.t1+g.cfg.phaseOffset(), 1)
	if phase < 0 {
		phase++
	}
	if phase < 0.5 {
		return 1
	}
	return 0
}

// NextBit produces one raw bit: the XOR of the KD samples of one
// pattern period (the decimator of [5]).
func (g *Generator) NextBit() byte {
	var b byte
	for i := 0; i < g.cfg.KD; i++ {
		b ^= g.nextSample()
	}
	return b
}

// Bits produces n raw bits.
func (g *Generator) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = g.NextBit()
	}
	return out
}

// Pattern returns the KD samples of one pattern period without
// decimation — useful for inspecting which samples are critical.
func (g *Generator) Pattern() []byte {
	out := make([]byte, g.cfg.KD)
	for i := range out {
		out[i] = g.nextSample()
	}
	return out
}

// CriticalSamples counts the pattern positions whose nominal sampling
// phase lies within k·sigma of a CLK1 edge — the samples that carry
// randomness. The model of [5] shows the raw-bit entropy is governed
// by this count and the per-sample flip probability.
func (g *Generator) CriticalSamples(k float64) int {
	t0 := 1 / g.cfg.F0
	window := k * g.cfg.SigmaThermal / g.t1 // in CLK1 phase units
	count := 0
	for i := 0; i < g.cfg.KD; i++ {
		ph := math.Mod(float64(i)*t0/g.t1+g.cfg.phaseOffset(), 1)
		// distance to the nearest switching phase (0 or 0.5)
		d := math.Min(distMod(ph, 0), distMod(ph, 0.5))
		if d <= window {
			count++
		}
	}
	return count
}

func distMod(x, c float64) float64 {
	d := math.Abs(math.Mod(x-c+0.5, 1) - 0.5)
	return d
}

// Model is the analytic stochastic description of the raw bit.
type Model struct {
	// FlipProbability is the per-pattern probability that the
	// decimated bit differs from its noiseless value.
	FlipProbability float64
	// EntropyPerBit is the Shannon entropy of the raw bit under the
	// stationary model (flip probability applied to an alternating
	// deterministic pattern).
	EntropyPerBit float64
	// Critical is the number of jitter-sensitive samples.
	Critical int
}

// Analyze evaluates the analytic model: each critical sample flips
// independently with probability derived from the Gaussian phase noise;
// the XOR of the pattern flips when an odd number flip (piling-up).
func (g *Generator) Analyze() Model {
	t0 := 1 / g.cfg.F0
	sigmaPh := g.cfg.SigmaThermal / g.t1
	var pOdd float64 // probability of odd number of flips, via piling-up product
	prod := 1.0
	critical := 0
	for i := 0; i < g.cfg.KD; i++ {
		ph := math.Mod(float64(i)*t0/g.t1+g.cfg.phaseOffset(), 1)
		d := math.Min(distMod(ph, 0), distMod(ph, 0.5))
		var p float64
		if sigmaPh > 0 {
			p = stats.NormalSF(d / sigmaPh)
		}
		if p > 1e-9 {
			critical++
		}
		prod *= 1 - 2*p
	}
	pOdd = (1 - prod) / 2
	h := 0.0
	if pOdd > 0 && pOdd < 1 {
		h = -pOdd*math.Log2(pOdd) - (1-pOdd)*math.Log2(1-pOdd)
	}
	return Model{FlipProbability: pOdd, EntropyPerBit: h, Critical: critical}
}

// RequiredSigma returns the thermal jitter needed for the analytic
// entropy to reach hMin, found by bisection over sigma. It mirrors
// entropy.RequiredDivider for the PLL architecture: the designer's
// question under the REFINED model (thermal jitter only).
func RequiredSigma(cfg Config, hMin float64) (float64, error) {
	if hMin <= 0 || hMin >= 1 {
		return 0, fmt.Errorf("pll: hMin %g out of (0,1)", hMin)
	}
	lo := 0.0
	hi := 1 / cfg.F0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c := cfg
		c.SigmaThermal = mid
		g, err := New(c)
		if err != nil {
			return 0, err
		}
		if g.Analyze().EntropyPerBit >= hMin {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// EquivalentEROModel maps the PLL tracking jitter onto an eRO-style
// phase model for comparison experiments: a ring at f1 whose thermal
// period jitter accumulated over one pattern equals the PLL jitter.
func EquivalentEROModel(cfg Config) phase.Model {
	f1 := 1 / (float64(cfg.KD) / (float64(cfg.KM) * cfg.F0))
	// σ_acc² = KM·σ_period²  ⇒  σ_period = σ/√KM
	sigmaPeriod := cfg.SigmaThermal / math.Sqrt(float64(cfg.KM))
	return phase.Model{
		Bth: sigmaPeriod * sigmaPeriod * f1 * f1 * f1,
		F0:  f1,
	}
}
